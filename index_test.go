package zskyline

import (
	"context"
	"testing"
)

func TestIndexBasics(t *testing.T) {
	if _, err := BuildIndex(nil, 0); err == nil {
		t.Error("empty dataset indexed")
	}
	ds := Generate(Independent, 3000, 4, 21)
	ix, err := BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3000 {
		t.Errorf("Len = %d", ix.Len())
	}
	want := SequentialSkyline(ds.Points)
	if got := ix.Skyline(); len(got) != len(want) {
		t.Errorf("skyline %d, want %d", len(got), len(want))
	}
}

func TestIndexProgressive(t *testing.T) {
	ds := Generate(AntiCorrelated, 2000, 3, 23)
	ix, _ := BuildIndex(ds, 0)
	var got []Point
	for p := range ix.SkylineProgressive(context.Background()) {
		got = append(got, p)
	}
	if len(got) != len(ix.Skyline()) {
		t.Errorf("progressive %d points, batch %d", len(got), len(ix.Skyline()))
	}
}

func TestIndexRangeAndConstrained(t *testing.T) {
	ds := Generate(Independent, 2000, 2, 25)
	ix, _ := BuildIndex(ds, 0)
	lo, hi := Point{0.25, 0.25}, Point{0.75, 0.75}
	inBox, err := ix.Range(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range ds.Points {
		if p[0] >= 0.25 && p[0] <= 0.75 && p[1] >= 0.25 && p[1] <= 0.75 {
			want++
		}
	}
	if len(inBox) != want {
		t.Errorf("range %d, want %d", len(inBox), want)
	}
	sky, err := ix.SkylineWithin(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(sky) == 0 || len(sky) > len(inBox) {
		t.Errorf("constrained skyline %d of %d", len(sky), len(inBox))
	}
	if _, err := ix.SkylineWithin(hi, lo); err == nil {
		t.Error("inverted box accepted")
	}
	if _, err := ix.Range(Point{0}, Point{1}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestIndexExplain(t *testing.T) {
	ds := Generate(Independent, 1000, 3, 27)
	ix, _ := BuildIndex(ds, 0)
	sky := ix.Skyline()
	// A skyline point has no dominators.
	doms, err := ix.Dominators(sky[0])
	if err != nil || len(doms) != 0 {
		t.Errorf("skyline point has dominators: %v %v", doms, err)
	}
	// The worst corner is dominated by everything that is strictly
	// better in all dims.
	doms, err = ix.Dominators(Point{1.1, 1.1, 1.1})
	if err != nil || len(doms) == 0 {
		t.Errorf("worst corner has no dominators: %v", err)
	}
	n, err := ix.DominatedCount(Point{-0.1, -0.1, -0.1})
	if err != nil || n != ix.Len() {
		t.Errorf("best corner dominates %d of %d", n, ix.Len())
	}
	if _, err := ix.Dominators(Point{1}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := ix.DominatedCount(Point{1}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if ix.Stats().RegionTests == 0 {
		t.Error("no stats recorded")
	}
}
