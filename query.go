package zskyline

import (
	"context"
	"fmt"
	"math"
	"sort"

	"zskyline/internal/core"
	"zskyline/internal/point"
)

// Direction states which way an attribute is preferred.
type Direction int

// Preference directions.
const (
	// Min prefers smaller values (price, distance, latency).
	Min Direction = iota
	// Max prefers larger values (rating, throughput).
	Max
	// Ignore excludes the attribute from dominance comparison — the
	// subspace-skyline case.
	Ignore
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return "ignore"
	}
}

// Pref is one attribute preference of a Query.
type Pref struct {
	// Attr is the attribute (column) name.
	Attr string
	// Dir is the preference direction.
	Dir Direction
}

// Relation is a named-attribute dataset: the user-facing counterpart
// to the positional Dataset. Rows are records; attribute order is
// fixed by Attrs.
type Relation struct {
	Attrs []string
	Rows  [][]float64
	index map[string]int
}

// NewRelation validates attribute names (non-empty, unique) and row
// widths and builds a Relation.
func NewRelation(attrs []string, rows [][]float64) (*Relation, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("zskyline: relation needs at least one attribute")
	}
	index := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("zskyline: attribute %d has empty name", i)
		}
		if _, dup := index[a]; dup {
			return nil, fmt.Errorf("zskyline: duplicate attribute %q", a)
		}
		index[a] = i
	}
	for i, r := range rows {
		if len(r) != len(attrs) {
			return nil, fmt.Errorf("zskyline: row %d has %d values, want %d", i, len(r), len(attrs))
		}
		for j, v := range r {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("zskyline: row %d attribute %q is not finite", i, attrs[j])
			}
		}
	}
	return &Relation{Attrs: attrs, Rows: rows, index: index}, nil
}

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// Query is a declarative skyline query over a Relation: which
// attributes participate and in which direction each is preferred.
// Attributes not mentioned are ignored.
type Query struct {
	Prefer []Pref
	// Config optionally overrides the pipeline configuration; the zero
	// value selects sensible defaults for the relation size.
	Config *Config
	// Dominance optionally selects a variant dominance relation (see
	// ParseDominance); the zero value keeps classic Pareto dominance.
	// When both Config and Dominance are set, Dominance wins.
	Dominance DominanceDescriptor
}

// Result is the answer to a Query.
type Result struct {
	// RowIDs indexes the skyline rows in the source relation,
	// ascending.
	RowIDs []int
	// Report is the pipeline report of the underlying run.
	Report *Report
}

// RunQuery executes a skyline query against rel. Max-preferences are
// negated and Ignore attributes projected away before the pipeline
// runs, so the library's smaller-is-better convention never leaks to
// callers. Ties and duplicates follow skyline-set semantics: rows with
// identical preference vectors are all returned.
func RunQuery(ctx context.Context, rel *Relation, q Query) (*Result, error) {
	if rel == nil || rel.Len() == 0 {
		return &Result{Report: &Report{}}, nil
	}
	if len(q.Prefer) == 0 {
		return nil, fmt.Errorf("zskyline: query has no preferences")
	}
	// Resolve the participating attribute columns.
	type col struct {
		idx    int
		negate bool
	}
	var cols []col
	seen := map[string]bool{}
	for _, p := range q.Prefer {
		i, ok := rel.index[p.Attr]
		if !ok {
			return nil, fmt.Errorf("zskyline: unknown attribute %q", p.Attr)
		}
		if seen[p.Attr] {
			return nil, fmt.Errorf("zskyline: attribute %q preferred twice", p.Attr)
		}
		seen[p.Attr] = true
		if p.Dir == Ignore {
			continue
		}
		cols = append(cols, col{idx: i, negate: p.Dir == Max})
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("zskyline: query ignores every attribute")
	}

	// Project rows into preference space.
	pts := make([]point.Point, rel.Len())
	for r, row := range rel.Rows {
		p := make(point.Point, len(cols))
		for k, c := range cols {
			v := row[c.idx]
			if c.negate {
				v = -v
			}
			p[k] = v
		}
		pts[r] = p
	}
	ds, err := point.NewDataset(len(cols), pts)
	if err != nil {
		return nil, err
	}

	cfg := defaultQueryConfig(rel.Len())
	if q.Config != nil {
		cfg = *q.Config
	}
	if q.Dominance.Kind != "" {
		cfg.Dominance = q.Dominance
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	sky, rep, err := eng.Skyline(ctx, ds)
	if err != nil {
		return nil, err
	}

	// Map skyline points back to row ids. Multiple rows can share one
	// preference vector; each skyline copy consumes one matching row.
	byKey := map[string][]int{}
	for r, p := range pts {
		k := p.String()
		byKey[k] = append(byKey[k], r)
	}
	var ids []int
	for _, p := range sky {
		k := point.Point(p).String()
		rows := byKey[k]
		if len(rows) == 0 {
			return nil, fmt.Errorf("zskyline: internal error: skyline point %v has no source row", p)
		}
		ids = append(ids, rows[0])
		byKey[k] = rows[1:]
	}
	sort.Ints(ids)
	return &Result{RowIDs: ids, Report: rep}, nil
}

func defaultQueryConfig(n int) Config {
	cfg := core.Defaults()
	if n < 10000 {
		cfg.M = 8
		cfg.SampleRatio = 0.1
	}
	return cfg
}

// GroupedResult is the answer to a RunGroupedQuery: one skyline per
// distinct value of the grouping attribute.
type GroupedResult struct {
	// Groups maps each distinct key value to the ascending row ids of
	// that group's skyline.
	Groups map[float64][]int
}

// RunGroupedQuery computes a skyline per group: rows are partitioned
// by the value of keyAttr and the preference skyline is evaluated
// inside each partition independently ("best hotels per city"). The
// key attribute must not itself carry a Min/Max preference.
func RunGroupedQuery(ctx context.Context, rel *Relation, keyAttr string, q Query) (*GroupedResult, error) {
	if rel == nil || rel.Len() == 0 {
		return &GroupedResult{Groups: map[float64][]int{}}, nil
	}
	ki, ok := rel.index[keyAttr]
	if !ok {
		return nil, fmt.Errorf("zskyline: unknown grouping attribute %q", keyAttr)
	}
	for _, p := range q.Prefer {
		if p.Attr == keyAttr && p.Dir != Ignore {
			return nil, fmt.Errorf("zskyline: grouping attribute %q cannot carry a preference", keyAttr)
		}
	}
	// Partition row ids by key.
	byKey := map[float64][]int{}
	for r, row := range rel.Rows {
		byKey[row[ki]] = append(byKey[row[ki]], r)
	}
	out := &GroupedResult{Groups: make(map[float64][]int, len(byKey))}
	for key, ids := range byKey {
		sub := make([][]float64, len(ids))
		for i, id := range ids {
			sub[i] = rel.Rows[id]
		}
		subRel, err := NewRelation(rel.Attrs, sub)
		if err != nil {
			return nil, err
		}
		res, err := RunQuery(ctx, subRel, q)
		if err != nil {
			return nil, fmt.Errorf("zskyline: group %v: %w", key, err)
		}
		rows := make([]int, len(res.RowIDs))
		for i, sid := range res.RowIDs {
			rows[i] = ids[sid]
		}
		sort.Ints(rows)
		out.Groups[key] = rows
	}
	return out, nil
}
