package zskyline_test

import (
	"context"
	"fmt"
	"sort"

	"zskyline"
)

// The one-call API: exact skyline of a small dataset.
func ExampleSkyline() {
	pts := []zskyline.Point{
		{1, 9}, // nearest hotel, most expensive
		{4, 4},
		{9, 1}, // farthest, cheapest
		{5, 6}, // dominated by (4,4)
	}
	sky, err := zskyline.Skyline(context.Background(), 2, pts)
	if err != nil {
		panic(err)
	}
	sort.Slice(sky, func(i, j int) bool { return sky[i][0] < sky[j][0] })
	for _, p := range sky {
		fmt.Println(p)
	}
	// Output:
	// (1, 9)
	// (4, 4)
	// (9, 1)
}

// Declarative queries name attributes and preference directions.
func ExampleRunQuery() {
	rel, err := zskyline.NewRelation(
		[]string{"price", "rating"},
		[][]float64{
			{100, 5},
			{50, 3},
			{90, 3}, // dominated: pricier than row 1, no better rating
		})
	if err != nil {
		panic(err)
	}
	res, err := zskyline.RunQuery(context.Background(), rel, zskyline.Query{
		Prefer: []zskyline.Pref{{Attr: "price", Dir: zskyline.Min}, {Attr: "rating", Dir: zskyline.Max}},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.RowIDs)
	// Output:
	// [0 1]
}

// Dominance is the library's core predicate.
func ExampleDominates() {
	fmt.Println(zskyline.Dominates(zskyline.Point{1, 2}, zskyline.Point{2, 2}))
	fmt.Println(zskyline.Dominates(zskyline.Point{1, 2}, zskyline.Point{1, 2}))
	fmt.Println(zskyline.Dominates(zskyline.Point{0, 5}, zskyline.Point{5, 0}))
	// Output:
	// true
	// false
	// false
}

// The Index answers "why is this option not on the list".
func ExampleIndex_Dominators() {
	ds, _ := zskyline.NewDataset(2, []zskyline.Point{{1, 1}, {2, 3}, {3, 2}})
	ix, err := zskyline.BuildIndex(ds, 8)
	if err != nil {
		panic(err)
	}
	doms, _ := ix.Dominators(zskyline.Point{4, 4})
	fmt.Println(len(doms), "points beat (4,4)")
	doms, _ = ix.Dominators(zskyline.Point{1, 1})
	fmt.Println(len(doms), "points beat (1,1)")
	// Output:
	// 3 points beat (4,4)
	// 0 points beat (1,1)
}

// The maintainer keeps a skyline current as data streams in.
func ExampleMaintainer() {
	m, err := zskyline.NewUnitMaintainer(2, 10)
	if err != nil {
		panic(err)
	}
	m.Insert([]zskyline.Point{{0.5, 0.5}, {0.9, 0.9}})
	fmt.Println("size after batch 1:", m.Size())
	m.Insert([]zskyline.Point{{0.1, 0.1}}) // dominates everything so far
	fmt.Println("size after batch 2:", m.Size())
	// Output:
	// size after batch 1: 1
	// size after batch 2: 1
}

// k-dominant skylines shrink unwieldy high-dimensional results.
func ExampleKDominantSkyline() {
	pts := []zskyline.Point{
		{1, 1, 9},
		{2, 2, 0},
		{9, 9, 9},
	}
	full, _ := zskyline.KDominantSkyline(pts, 3) // classic skyline
	k2, _ := zskyline.KDominantSkyline(pts, 2)   // stricter
	fmt.Println(len(full), len(k2))
	// Output:
	// 2 1
}

// WeightedSum ranks skyline points without losing the best option.
func ExampleTopKByScore() {
	score, _ := zskyline.WeightedSum([]float64{1, 1})
	top := zskyline.TopKByScore([]zskyline.Point{{3, 1}, {1, 1}, {1, 3}}, 2, score)
	for _, s := range top {
		fmt.Printf("%v score=%.0f\n", s.P, s.Score)
	}
	// Output:
	// (1, 1) score=2
	// (1, 3) score=4
}
