module zskyline

go 1.22
