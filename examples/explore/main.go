// Explore: interactive-style use of the Index API — progressive
// skyline streaming, constrained skylines over a box, "why is this
// point not in the skyline" explanations, and influence ranking.
package main

import (
	"context"
	"fmt"
	"log"

	"zskyline"
)

func main() {
	// A laptop catalogue: price, weight, battery-drain (all
	// smaller-is-better after normalization).
	ds := zskyline.Generate(zskyline.AntiCorrelated, 50_000, 3, 17)
	ix, err := zskyline.BuildIndex(ds, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Progressive: show the first few answers before the query ends.
	fmt.Println("first skyline results, streamed:")
	ctx, cancel := context.WithCancel(context.Background())
	count := 0
	for p := range ix.SkylineProgressive(ctx) {
		fmt.Printf("  %v\n", p)
		count++
		if count == 5 {
			cancel()
			break
		}
	}
	cancel()

	full := ix.Skyline()
	fmt.Printf("full skyline: %d of %d products\n\n", len(full), ix.Len())

	// Constrained: mid-range budget only.
	lo := zskyline.Point{0.25, 0.0, 0.0}
	hi := zskyline.Point{0.6, 1.0, 1.0}
	constrained, err := ix.SkylineWithin(lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skyline within price band [0.25, 0.6]: %d products\n\n", len(constrained))

	// Explain: why is this mediocre product not on the list?
	probe := zskyline.Point{0.55, 0.55, 0.55}
	doms, err := ix.Dominators(probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v is beaten by %d products; the first few:\n", probe, len(doms))
	for i, d := range doms {
		if i == 3 {
			break
		}
		fmt.Printf("  %v\n", d)
	}

	// Influence: which skyline products beat the most of the market?
	top, err := zskyline.TopKByDominance(full, ds.Points, ds.Dims, 12, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmost dominant skyline products:")
	for _, s := range top {
		fmt.Printf("  %v beats %.0f products\n", s.P, s.Score)
	}
}
