// Distributed: the full three-phase pipeline across real TCP worker
// processes — three workers on loopback, a coordinator driving them,
// and a failover demonstration mid-session.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"zskyline"
)

func main() {
	// Spin up three workers on ephemeral loopback ports. In production
	// these are separate `skyworker` processes on separate machines.
	var addrs []string
	var servers []*zskyline.WorkerServer
	for i := 0; i < 3; i++ {
		ws, err := zskyline.StartWorker("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ws.Close()
		servers = append(servers, ws)
		addrs = append(addrs, ws.Addr())
	}
	fmt.Println("workers:", addrs)

	cfg := zskyline.DefaultCoordinatorConfig()
	cfg.M = 16
	coord, err := zskyline.NewCoordinator(cfg, addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	ds := zskyline.Generate(zskyline.AntiCorrelated, 80_000, 5, 3)
	start := time.Now()
	sky, rep, err := coord.Skyline(context.Background(), ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3 workers: %d points -> %d skyline in %v (candidates %d, filtered %d)\n",
		ds.Len(), len(sky), time.Since(start).Round(time.Millisecond),
		rep.Candidates, rep.Filtered)

	// Kill one worker; the coordinator fails its tasks over.
	servers[2].Close()
	start = time.Now()
	sky2, _, err := coord.Skyline(context.Background(), ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after losing a worker: %d skyline points in %v (identical result: %v)\n",
		len(sky2), time.Since(start).Round(time.Millisecond), len(sky) == len(sky2))
}
