// Flexible: the same dataset and the same pipeline under four
// different dominance relations. A hotel-style trade-off query is run
// with classic Pareto dominance, F-dominance (a family of weighted-sum
// scoring functions encoding "price matters at least as much as
// distance"), k-dominance (a stricter relation that shrinks
// unmanageable high-dimensional skylines), and robust dominance (a
// margin that ignores wins smaller than measurement noise). Each
// variant runs on the simulated cluster AND on real TCP workers and is
// checked against the sequential reference — one descriptor, every
// executor, identical answers.
package main

import (
	"context"
	"fmt"
	"log"

	"zskyline"
	"zskyline/internal/dist"
)

func main() {
	// 8000 five-criteria records, anti-correlated — the adversarial
	// regime where the Pareto skyline balloons.
	ds := zskyline.Generate(zskyline.AntiCorrelated, 8_000, 5, 7)

	// Two real worker processes on loopback; the coordinator's rule
	// broadcast carries the dominance descriptor, so the workers never
	// need to be told which relation a query uses.
	var addrs []string
	for i := 0; i < 2; i++ {
		ws, err := dist.StartWorker("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ws.Close()
		addrs = append(addrs, ws.Addr())
	}

	variants := []struct {
		spelling string
		why      string
	}{
		{"pareto", "the classic skyline"},
		{"flex:1,1,1,1,1;3,1,1,1,1", "scoring functions weight criterion 1 (price) 1x-3x"},
		{"kdom:4", "no worse on any 4 of 5 criteria"},
		{"robust:0.05", "wins below 0.05 are treated as noise"},
	}

	for _, v := range variants {
		desc, err := zskyline.ParseDominance(v.spelling)
		if err != nil {
			log.Fatal(err)
		}

		// The oracle: the sequential reference under this relation.
		want, err := zskyline.SkylineUnder(desc, ds.Points)
		if err != nil {
			log.Fatal(err)
		}

		// The simulated MapReduce cluster under the same descriptor.
		cfg := zskyline.Defaults()
		cfg.M = 16
		cfg.Dominance = desc
		eng, err := zskyline.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		core, _, err := eng.Skyline(context.Background(), ds)
		if err != nil {
			log.Fatal(err)
		}

		// The real TCP deployment under the same descriptor.
		dcfg := dist.DefaultCoordinatorConfig()
		dcfg.M = 16
		dcfg.Dominance = desc
		coord, err := dist.NewCoordinator(dcfg, addrs)
		if err != nil {
			log.Fatal(err)
		}
		tcp, _, err := coord.Skyline(context.Background(), ds)
		coord.Close()
		if err != nil {
			log.Fatal(err)
		}

		if len(core) != len(want) || len(tcp) != len(want) {
			log.Fatalf("%s: executors disagree: seq=%d core=%d tcp=%d",
				v.spelling, len(want), len(core), len(tcp))
		}
		fmt.Printf("%-26s %5d points   (%s)\n", v.spelling, len(want), v.why)
	}

	// The relations are not interchangeable filters; they reshape the
	// answer. Flex returns a subset of the Pareto skyline, robust a
	// superset, and kdom cuts hardest of all — which is why the
	// capability flags, not the kernels, decide what pruning is sound.
	pareto, _ := zskyline.ParseDominance("pareto")
	robust, _ := zskyline.ParseDominance("robust:0.05")
	p, _ := zskyline.SkylineUnder(pareto, ds.Points)
	r, _ := zskyline.SkylineUnder(robust, ds.Points)
	fmt.Printf("\nrobust keeps every Pareto point plus %d near-ties the "+
		"margin refuses to discard\n", len(r)-len(p))
}
