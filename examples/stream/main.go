// Stream: maintain a live skyline over an unbounded feed of points
// with the incremental Maintainer — e.g. a market data feed where each
// tick is (spread, latency, fee) and the trading desk always wants the
// current set of undominated venues.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"zskyline"
	"zskyline/internal/obs"
)

func main() {
	// 3 criteria, all smaller-better: spread (bps), latency (ms), fee.
	m, err := zskyline.NewMaintainer(3, 12,
		[]float64{0, 0, 0}, []float64{100, 50, 10})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	const batches, batchSize = 50, 2_000
	for b := 0; b < batches; b++ {
		batch := make([]zskyline.Point, batchSize)
		for i := range batch {
			// The market slowly improves: later batches are tighter.
			improve := 1 - float64(b)/float64(batches*2)
			batch[i] = zskyline.Point{
				rng.Float64() * 100 * improve,
				rng.Float64() * 50 * improve,
				rng.Float64() * 10,
			}
		}
		accepted, err := m.Insert(batch)
		if err != nil {
			log.Fatal(err)
		}
		if b%10 == 0 {
			fmt.Printf("batch %2d: %6d quotes seen, skyline %4d (this batch contributed %d)\n",
				b, m.Seen(), m.Size(), accepted)
		}
	}
	fmt.Printf("\nfinal: %d quotes -> %d undominated venues\n", m.Seen(), m.Size())

	// Probing before insert: a quote dominated by the current skyline
	// can be dropped at the edge without touching the index.
	probe := zskyline.Point{99, 49, 9.9}
	fmt.Printf("probe %v dominated: %v\n", probe, m.Dominated(probe))

	// Report the work counters through the obs registry — the same
	// exposition every executor and the HTTP server use.
	fmt.Println()
	reg := obs.NewRegistry()
	reg.AbsorbTally(m.Stats())
	reg.Gauge("zsky_skyline_size").Set(float64(m.Size()))
	obs.WriteReport(os.Stdout, nil, reg)
}
