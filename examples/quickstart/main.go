// Quickstart: generate a synthetic dataset, run the default parallel
// skyline pipeline, and print the report — the smallest end-to-end use
// of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"zskyline"
)

func main() {
	// 100k anti-correlated points in 5 dimensions: the hard case, where
	// skylines are large and naive merging is expensive.
	ds := zskyline.Generate(zskyline.AntiCorrelated, 100_000, 5, 42)

	cfg := zskyline.Defaults() // ZDG partitioning + Z-search + Z-merge
	eng, err := zskyline.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sky, report, err := eng.Skyline(context.Background(), ds)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("input points:       %d\n", ds.Len())
	fmt.Printf("skyline points:     %d\n", len(sky))
	fmt.Printf("candidates merged:  %d\n", report.Candidates)
	fmt.Printf("filtered by mapper: %d\n", report.MapperFiltered)
	fmt.Printf("groups / partitions: %d / %d\n", report.Groups, report.Partitions)
	fmt.Printf("preprocess %v | compute %v | merge %v | total %v\n",
		report.Preprocess.Round(1000), report.Phase2.Round(1000),
		report.Phase3.Round(1000), report.Total.Round(1000))
	fmt.Printf("shuffle volume: %.1f KiB\n", float64(report.Job1.ShuffleBytes)/1024)

	// Spot-check three skyline points.
	for i, p := range sky {
		if i == 3 {
			break
		}
		fmt.Printf("  skyline[%d] = %v\n", i, p)
	}
}
