// Hotels: the paper's Figure 1 scenario — pick hotels that are not
// beaten on both price and distance to downtown, with a third
// dimension (review "badness") showing how preference directions are
// mapped onto the library's smaller-is-better convention.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"zskyline"
)

type hotel struct {
	name     string
	distance float64 // km to downtown (smaller is better)
	rate     float64 // USD per night (smaller is better)
	rating   float64 // stars 1..5 (LARGER is better -> negate)
}

func main() {
	hotels := makeHotels(5000)

	// Map each hotel onto a point. Ratings are better when larger, so
	// we store 5-rating: the library minimizes every dimension.
	pts := make([]zskyline.Point, len(hotels))
	for i, h := range hotels {
		pts[i] = zskyline.Point{h.distance, h.rate, 5 - h.rating}
	}

	sky, err := zskyline.Skyline(context.Background(), 3, pts)
	if err != nil {
		log.Fatal(err)
	}

	// Index points back to hotels for display.
	byKey := map[string][]hotel{}
	for i, h := range hotels {
		k := key(pts[i])
		byKey[k] = append(byKey[k], h)
	}
	var winners []hotel
	for _, p := range sky {
		k := key(zskyline.Point(p))
		if hs := byKey[k]; len(hs) > 0 {
			winners = append(winners, hs[0])
			byKey[k] = hs[1:]
		}
	}
	sort.Slice(winners, func(i, j int) bool { return winners[i].rate < winners[j].rate })

	fmt.Printf("%d hotels -> %d skyline hotels (undominated on distance, rate, rating)\n\n",
		len(hotels), len(winners))
	fmt.Printf("%-12s %8s %8s %7s\n", "hotel", "km", "$/night", "stars")
	for i, h := range winners {
		if i == 15 {
			fmt.Printf("... and %d more\n", len(winners)-15)
			break
		}
		fmt.Printf("%-12s %8.1f %8.0f %7.1f\n", h.name, h.distance, h.rate, h.rating)
	}
}

func key(p zskyline.Point) string { return fmt.Sprint([]float64(p)) }

// makeHotels synthesizes a market where location and price correlate
// (downtown is expensive), the anti-correlation that makes skylines
// interesting.
func makeHotels(n int) []hotel {
	r := rand.New(rand.NewSource(7))
	hotels := make([]hotel, n)
	for i := range hotels {
		dist := r.Float64() * 20
		base := 250 - dist*9 + r.NormFloat64()*30 // closer -> pricier
		if base < 40 {
			base = 40 + r.Float64()*20
		}
		hotels[i] = hotel{
			name:     fmt.Sprintf("hotel-%04d", i),
			distance: dist,
			rate:     base,
			rating:   1 + 4*r.Float64(),
		}
	}
	return hotels
}
