// Imagesearch: skyline retrieval over high-dimensional image features,
// the workload behind the paper's NUS-WIDE/Flickr experiments. Each
// image is a feature vector of per-block distances to a query image; a
// skyline image is one that no other image beats on every block — a
// preference-free shortlist for multi-criteria similarity search.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"zskyline"
	"zskyline/internal/gen"
)

func main() {
	// 225-dimensional color-moment features for 3000 simulated images
	// (the real NUS-WIDE crawl is replaced by a seeded simulator; see
	// DESIGN.md §6).
	ds := gen.NUSWideLike(3000, 99)
	fmt.Printf("dataset: %d images x %d feature dims\n", ds.Len(), ds.Dims)

	cfg := zskyline.Defaults()
	cfg.M = 16
	cfg.Bits = 8 // compact Z-addresses for very high dimensionality
	cfg.SampleRatio = 0.05
	eng, err := zskyline.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	sky, rep, err := eng.Skyline(context.Background(), ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skyline shortlist:  %d images (%.1f%% of collection)\n",
		len(sky), 100*float64(len(sky))/float64(ds.Len()))
	fmt.Printf("candidates merged:  %d\n", rep.Candidates)
	fmt.Printf("wall time:          %v (phase2 %v, merge %v)\n",
		time.Since(start).Round(time.Millisecond),
		rep.Phase2.Round(time.Millisecond), rep.Phase3.Round(time.Millisecond))

	// In high dimensions most points are incomparable, so the skyline
	// is a large fraction of the data — exactly the regime the paper's
	// Z-order pipeline is built for (the curse of dimensionality that
	// breaks grid- and angle-based partitioning).
	if len(sky) < ds.Len()/10 {
		fmt.Println("note: unusually small skyline for this dimensionality")
	}
}
