// Cluster: run the same workload on a healthy and on a degraded
// simulated cluster (one straggling worker, flaky tasks) and compare —
// a demonstration of the substrate's straggler/fault injection and of
// why the paper's grouping strategies matter.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"zskyline"
	"zskyline/internal/mapreduce"
	"zskyline/internal/obs"
)

func main() {
	ds := zskyline.Generate(zskyline.AntiCorrelated, 60_000, 5, 11)

	healthy := mapreduce.NewCluster(mapreduce.ClusterConfig{Workers: 8})
	degraded := mapreduce.NewCluster(mapreduce.ClusterConfig{
		Workers: 8,
		// Worker 0 has a "faulty disk": everything it touches runs 4x
		// slower (the paper's §3.3 straggler scenario).
		Slowdown: func(worker int) float64 {
			if worker == 0 {
				return 4
			}
			return 1
		},
		// And 1 in 10 first attempts fails outright, forcing retries.
		MaxAttempts: 3,
		FailTask: func(job string, kind mapreduce.TaskKind, task, attempt int) error {
			if attempt == 1 && task%10 == 0 {
				return errors.New("injected: lost container")
			}
			return nil
		},
	})

	for _, tc := range []struct {
		name    string
		cluster *mapreduce.Cluster
	}{
		{"healthy cluster ", healthy},
		{"degraded cluster", degraded},
	} {
		cfg := zskyline.Defaults()
		cfg.M = 16
		cfg.Cluster = tc.cluster
		eng, err := zskyline.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Trace the run: the same phase spans every executor emits,
		// plus the registry's absorbed work and task-attempt counters
		// (retries show up as zsky_mr_task_attempts_total exceeding
		// zsky_mr_tasks_total).
		tr := obs.NewTrace(tc.name)
		ctx := obs.ContextWithTrace(context.Background(), tr)
		start := time.Now()
		sky, rep, err := eng.Skyline(ctx, ds)
		if err != nil {
			log.Fatal(err)
		}
		tr.Finish()
		fmt.Printf("%s: skyline=%d in %v (reduce-input imbalance: %.2f)\n",
			tc.name, len(sky), time.Since(start).Round(time.Millisecond),
			rep.Job1.ReduceInputBalance().Imbalance)
		reg := obs.NewRegistry()
		reg.AbsorbTally(rep.Tally)
		reg.AbsorbJobStats(rep.Job1)
		reg.AbsorbJobStats(rep.Job2)
		obs.WriteReport(os.Stdout, tr, reg)
		fmt.Println()
	}

	fmt.Println("results are identical under faults; only wall time differs.")
}
