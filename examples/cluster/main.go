// Cluster: run the same workload on a healthy and on a degraded
// simulated cluster (one straggling worker, flaky tasks) and compare —
// a demonstration of the substrate's straggler/fault injection and of
// why the paper's grouping strategies matter. A final act moves from
// simulation to real processes: a TCP worker is killed mid-run and
// restarted, and the distributed answer still matches the sequential
// reference.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"zskyline"
	"zskyline/internal/dist"
	"zskyline/internal/mapreduce"
	"zskyline/internal/obs"
	"zskyline/internal/point"
	"zskyline/internal/seq"
)

func main() {
	ds := zskyline.Generate(zskyline.AntiCorrelated, 60_000, 5, 11)

	healthy := mapreduce.NewCluster(mapreduce.ClusterConfig{Workers: 8})
	degraded := mapreduce.NewCluster(mapreduce.ClusterConfig{
		Workers: 8,
		// Worker 0 has a "faulty disk": everything it touches runs 4x
		// slower (the paper's §3.3 straggler scenario).
		Slowdown: func(worker int) float64 {
			if worker == 0 {
				return 4
			}
			return 1
		},
		// And 1 in 10 first attempts fails outright, forcing retries.
		MaxAttempts: 3,
		FailTask: func(job string, kind mapreduce.TaskKind, task, attempt int) error {
			if attempt == 1 && task%10 == 0 {
				return errors.New("injected: lost container")
			}
			return nil
		},
	})

	for _, tc := range []struct {
		name    string
		cluster *mapreduce.Cluster
	}{
		{"healthy cluster ", healthy},
		{"degraded cluster", degraded},
	} {
		cfg := zskyline.Defaults()
		cfg.M = 16
		cfg.Cluster = tc.cluster
		eng, err := zskyline.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Trace the run: the same phase spans every executor emits,
		// plus the registry's absorbed work and task-attempt counters
		// (retries show up as zsky_mr_task_attempts_total exceeding
		// zsky_mr_tasks_total).
		tr := obs.NewTrace(tc.name)
		ctx := obs.ContextWithTrace(context.Background(), tr)
		start := time.Now()
		sky, rep, err := eng.Skyline(ctx, ds)
		if err != nil {
			log.Fatal(err)
		}
		tr.Finish()
		fmt.Printf("%s: skyline=%d in %v (reduce-input imbalance: %.2f)\n",
			tc.name, len(sky), time.Since(start).Round(time.Millisecond),
			rep.Job1.ReduceInputBalance().Imbalance)
		reg := obs.NewRegistry()
		reg.AbsorbTally(rep.Tally)
		reg.AbsorbJobStats(rep.Job1)
		reg.AbsorbJobStats(rep.Job2)
		obs.WriteReport(os.Stdout, tr, reg)
		fmt.Println()
	}

	fmt.Println("results are identical under faults; only wall time differs.")
	fmt.Println()
	killAndRestart(ds)
}

// killAndRestart runs the TCP deployment against real worker
// processes, kills one mid-query, restarts it, and shows the
// coordinator riding the failure: the in-flight tasks retry on the
// survivor, the resurrector re-dials the restarted worker and
// re-broadcasts the rule, and the skyline equals the sequential
// reference.
func killAndRestart(ds *point.Dataset) {
	fmt.Println("kill-and-restart on real TCP workers:")
	w0, err := dist.StartWorker("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer w0.Close()
	w1, err := dist.StartWorker("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	victim := w1.Addr()

	cfg := dist.DefaultCoordinatorConfig()
	cfg.M = 16
	cfg.ChunkSize = 2000
	cfg.RedialInterval = 25 * time.Millisecond
	coord, err := dist.NewCoordinator(cfg, []string{w0.Addr(), victim})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	// Kill the victim shortly into the query, restart it at the same
	// address a moment later — a crash-and-respawn with an empty rule
	// cache.
	go func() {
		time.Sleep(20 * time.Millisecond)
		w1.Close()
		fmt.Printf("  killed worker %s mid-run\n", victim)
		for {
			time.Sleep(25 * time.Millisecond)
			w, err := dist.StartWorker(victim)
			if err != nil {
				continue // port not yet released
			}
			fmt.Printf("  restarted worker %s (empty rule cache)\n", victim)
			defer w.Close()
			break
		}
	}()

	start := time.Now()
	sky, _, err := coord.Skyline(context.Background(), ds)
	if err != nil {
		log.Fatal(err)
	}
	want := seq.SB(ds.Points, nil)
	if !sameSkyline(sky, want) {
		log.Fatalf("distributed skyline (%d points) != sequential reference (%d points)",
			len(sky), len(want))
	}
	fmt.Printf("  skyline=%d in %v — identical to the sequential reference\n",
		len(sky), time.Since(start).Round(time.Millisecond))
}

func sameSkyline(a, b []point.Point) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(p point.Point) string { return p.String() }
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i], bs[i] = key(a[i]), key(b[i])
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
