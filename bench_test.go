package zskyline

// This file holds one testing.B benchmark per table/figure of the
// paper's evaluation (§6), each driving the corresponding experiment
// from internal/exp, plus micro-benchmarks for the core primitives.
//
// Figure benchmarks run the full experiment once per iteration at a
// reduced scale (default 0.1x of the laptop-scale sizes; override with
// SKY_BENCH_SCALE). For the real evaluation tables use:
//
//	go run ./cmd/skybench -run all -scale 1
//
// For a quick pass:
//
//	go test -bench=. -benchmem -benchtime=1x .

import (
	"context"
	"os"
	"strconv"
	"testing"

	"zskyline/internal/core"
	"zskyline/internal/exp"
	"zskyline/internal/gen"
	"zskyline/internal/gpmrs"
	"zskyline/internal/plan"
	"zskyline/internal/point"
	"zskyline/internal/sample"
	"zskyline/internal/seq"
	"zskyline/internal/zbtree"
	"zskyline/internal/zorder"
)

func benchScale() float64 {
	if s := os.Getenv("SKY_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.1
}

// benchFigure runs one registered experiment per iteration.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	p := exp.Params{Scale: benchScale(), Workers: 8, Seed: 42}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(ctx, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B)  { benchFigure(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { benchFigure(b, "fig4") }
func BenchmarkFig7a(b *testing.B) { benchFigure(b, "fig7a") }
func BenchmarkFig7b(b *testing.B) { benchFigure(b, "fig7b") }
func BenchmarkFig7c(b *testing.B) { benchFigure(b, "fig7c") }
func BenchmarkFig7d(b *testing.B) { benchFigure(b, "fig7d") }
func BenchmarkFig8a(b *testing.B) { benchFigure(b, "fig8a") }
func BenchmarkFig8b(b *testing.B) { benchFigure(b, "fig8b") }
func BenchmarkFig8c(b *testing.B) { benchFigure(b, "fig8c") }
func BenchmarkFig8d(b *testing.B) { benchFigure(b, "fig8d") }
func BenchmarkFig9a(b *testing.B) { benchFigure(b, "fig9a") }
func BenchmarkFig9b(b *testing.B) { benchFigure(b, "fig9b") }
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchFigure(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchFigure(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchFigure(b, "fig13") }

// --- Micro-benchmarks: the primitives behind the figures ---

func BenchmarkZOrderEncode5d(b *testing.B) {
	enc, _ := zorder.NewUnitEncoder(5, 16)
	ds := gen.Synthetic(gen.Independent, 1000, 5, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(ds.Points[i%1000])
	}
}

func BenchmarkZOrderEncode225d(b *testing.B) {
	enc, _ := zorder.NewUnitEncoder(225, 8)
	ds := gen.NUSWideLike(100, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(ds.Points[i%100])
	}
}

func BenchmarkZSearch20k5dIndep(b *testing.B) {
	enc, _ := zorder.NewUnitEncoder(5, 16)
	ds := gen.Synthetic(gen.Independent, 20000, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zbtree.ZSearch(enc, 16, ds.Points, nil)
	}
}

func BenchmarkSB20k5dIndep(b *testing.B) {
	ds := gen.Synthetic(gen.Independent, 20000, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq.SB(ds.Points, nil)
	}
}

func BenchmarkZMergeVsRecompute(b *testing.B) {
	enc, _ := zorder.NewUnitEncoder(4, 16)
	a := gen.Synthetic(gen.AntiCorrelated, 20000, 4, 1)
	c := gen.Synthetic(gen.AntiCorrelated, 20000, 4, 2)
	skyA := zbtree.ZSearch(enc, 16, a.Points, nil)
	skyB := zbtree.ZSearch(enc, 16, c.Points, nil)
	b.Run("zmerge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ta := zbtree.BuildFromPoints(enc, 16, skyA, nil)
			tb := zbtree.BuildFromPoints(enc, 16, skyB, nil)
			zbtree.Merge(ta, tb)
		}
	})
	b.Run("sb-recompute", func(b *testing.B) {
		all := append(append([]Point{}, skyA...), skyB...)
		for i := 0; i < b.N; i++ {
			seq.SB(all, nil)
		}
	})
}

func BenchmarkPipelineZDG50k(b *testing.B) {
	ds := gen.Synthetic(gen.Independent, 50000, 5, 1)
	cfg := core.Defaults()
	eng, err := core.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Skyline(context.Background(), ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineGrid50k(b *testing.B) {
	ds := gen.Synthetic(gen.Independent, 50000, 5, 1)
	cfg := core.Defaults()
	cfg.Strategy = core.Grid
	eng, err := core.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Skyline(context.Background(), ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGPMRS50k(b *testing.B) {
	ds := gen.Synthetic(gen.Independent, 50000, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gpmrs.Skyline(context.Background(), ds, gpmrs.Config{Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks (design-choice studies from DESIGN.md).
func BenchmarkAblSZB(b *testing.B)        { benchFigure(b, "abl-szb") }
func BenchmarkAblDelta(b *testing.B)      { benchFigure(b, "abl-delta") }
func BenchmarkAblBits(b *testing.B)       { benchFigure(b, "abl-bits") }
func BenchmarkAblFanout(b *testing.B)     { benchFigure(b, "abl-fanout") }
func BenchmarkAblWorkers(b *testing.B)    { benchFigure(b, "abl-workers") }
func BenchmarkAblModel(b *testing.B)      { benchFigure(b, "abl-model") }
func BenchmarkAblSkew(b *testing.B)       { benchFigure(b, "abl-skew") }
func BenchmarkAblStragglers(b *testing.B) { benchFigure(b, "abl-stragglers") }
func BenchmarkAblOOC(b *testing.B)        { benchFigure(b, "abl-ooc") }

// Phase-2 map-path memory benchmarks: the per-point MapChunk (one
// ZB-tree entry allocation per routed point) against the flat MapBlock
// (scratch reuse + per-group arenas). Same rule, same data. The local
// algorithm is SB, whose allocations are identical on both paths, so
// the allocs/op delta is the map/route path itself.
func mapPhaseFixture(b *testing.B, n, d int) (*plan.Rule, []point.Point, point.Block) {
	b.Helper()
	ds := gen.Synthetic(gen.AntiCorrelated, n, d, 42)
	smp, err := sample.Ratio(ds.Points, 0.02, 42)
	if err != nil {
		b.Fatal(err)
	}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		b.Fatal(err)
	}
	spec := &plan.Spec{Strategy: plan.ZDG, Local: plan.SB, Merge: plan.MergeZM,
		M: 32, Delta: 4, SampleRatio: 0.02, Bits: 16}
	r, err := plan.Learn(spec, ds.Dims, mins, maxs, smp, nil)
	if err != nil {
		b.Fatal(err)
	}
	return r, ds.Points, point.BlockOf(ds.Dims, ds.Points)
}

func BenchmarkMapPhasePoints50k5d(b *testing.B) {
	r, pts, _ := mapPhaseFixture(b, 50000, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.MapChunk(pts, nil)
	}
}

func BenchmarkMapPhaseBlock50k5d(b *testing.B) {
	r, _, blk := mapPhaseFixture(b, 50000, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.MapBlock(blk, nil)
	}
}

func BenchmarkMapPhasePoints20k20d(b *testing.B) {
	r, pts, _ := mapPhaseFixture(b, 20000, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.MapChunk(pts, nil)
	}
}

func BenchmarkMapPhaseBlock20k20d(b *testing.B) {
	r, _, blk := mapPhaseFixture(b, 20000, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.MapBlock(blk, nil)
	}
}
