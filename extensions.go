package zskyline

import (
	"context"
	"io"

	"zskyline/internal/approx"
	"zskyline/internal/dist"
	"zskyline/internal/dominance"
	"zskyline/internal/estimate"
	"zskyline/internal/kdom"
	"zskyline/internal/maintain"
	"zskyline/internal/ooc"
	"zskyline/internal/parallel"
	"zskyline/internal/point"
	"zskyline/internal/rank"
	"zskyline/internal/seq"
	"zskyline/internal/subspace"
	"zskyline/internal/window"
	"zskyline/internal/zorder"
)

// --- Incremental maintenance ---

// Maintainer keeps the skyline of a stream of inserted points; see
// NewMaintainer.
type Maintainer = maintain.Maintainer

// NewMaintainer creates an incremental skyline maintainer for
// dims-dimensional points over the box [mins, maxs]. Each Insert batch
// is reduced to its skyline and Z-merged into the running result, so
// cost tracks skyline sizes rather than stream length.
func NewMaintainer(dims, bits int, mins, maxs []float64) (*Maintainer, error) {
	return maintain.New(dims, bits, mins, maxs)
}

// NewUnitMaintainer is NewMaintainer over the unit hypercube.
func NewUnitMaintainer(dims, bits int) (*Maintainer, error) {
	return maintain.NewUnit(dims, bits)
}

// --- Ranking ---

// Scored pairs a point with its ranking score.
type Scored = rank.Scored

// TopKByScore ranks points by a user scoring function (smaller is
// better) and returns the best k. With a monotone scorer (such as
// WeightedSum), ranking the skyline is lossless: the global best point
// is always a skyline point.
func TopKByScore(pts []Point, k int, score func(Point) float64) []Scored {
	return rank.TopKByScore(pts, k, score)
}

// WeightedSum builds a monotone linear scorer from non-negative
// weights.
func WeightedSum(weights []float64) (func(Point) float64, error) {
	return rank.WeightedSum(weights)
}

// TopKByDominance ranks skyline points by how many points of data each
// dominates, descending, using ZB-tree pruning.
func TopKByDominance(sky, data []Point, dims, bits, k int) ([]Scored, error) {
	ds := point.Dataset{Dims: dims, Points: data}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		return nil, err
	}
	enc, err := zorder.NewEncoder(dims, bits, mins, maxs)
	if err != nil {
		return nil, err
	}
	return rank.TopKByDominance(sky, data, enc, k, nil), nil
}

// --- Distributed deployment ---

// WorkerServer is a TCP skyline worker; see StartWorker.
type WorkerServer = dist.WorkerServer

// StartWorker launches a distributed skyline worker listening on addr
// ("127.0.0.1:0" picks an ephemeral port). Pair with NewCoordinator.
func StartWorker(addr string) (*WorkerServer, error) {
	return dist.StartWorker(addr)
}

// Coordinator drives distributed skyline queries across TCP workers.
type Coordinator = dist.Coordinator

// CoordinatorConfig parameterizes a distributed run.
type CoordinatorConfig = dist.CoordinatorConfig

// DefaultCoordinatorConfig mirrors Defaults for distributed runs.
func DefaultCoordinatorConfig() CoordinatorConfig {
	return dist.DefaultCoordinatorConfig()
}

// NewCoordinator dials the given workers and returns a coordinator.
func NewCoordinator(cfg CoordinatorConfig, workerAddrs []string) (*Coordinator, error) {
	return dist.NewCoordinator(cfg, workerAddrs)
}

// DistributedSkyline is the one-call distributed API: dial workers,
// run the pipeline, hang up.
func DistributedSkyline(ctx context.Context, ds *Dataset, workerAddrs []string) ([]Point, error) {
	cfg := dist.DefaultCoordinatorConfig()
	if ds != nil && ds.Len() < 10000 {
		cfg.M = 8
		cfg.SampleRatio = 0.1
	}
	coord, err := dist.NewCoordinator(cfg, workerAddrs)
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	sky, _, err := coord.Skyline(ctx, ds)
	return sky, err
}

// --- Dominance variants ---

// DominanceProvider is a pluggable dominance relation; see package
// internal/dominance for the capability contract implementations obey.
type DominanceProvider = dominance.Provider

// DominanceDescriptor is the serializable description of a dominance
// relation. The zero value selects classic Pareto dominance; set it on
// Config.Dominance, ParallelOptions.Dominance,
// CoordinatorConfig.Dominance, or Query.Dominance to run any executor
// under a variant relation.
type DominanceDescriptor = dominance.Descriptor

// ParseDominance parses a dominance-relation spelling:
//
//	pareto                   classic Pareto dominance
//	flex:w1,w2,...;v1,v2,...  F-dominance under a family of weight vectors
//	kdom:k                   k-dominance (Chan et al.)
//	robust:rho               dominance by margin rho in every dimension
func ParseDominance(s string) (DominanceDescriptor, error) {
	return dominance.ParseDescriptor(s)
}

// SkylineUnder computes the exact skyline of pts under the described
// relation with the sequential reference algorithm — the oracle the
// parallel executors are tested against.
func SkylineUnder(desc DominanceDescriptor, pts []Point) ([]Point, error) {
	prov, err := desc.Provider()
	if err != nil {
		return nil, err
	}
	return seq.SkylineUnder(prov, pts, nil), nil
}

// NewMaintainerUnder is NewMaintainer under a variant relation. Only
// transitive relations support incremental maintenance; k-dominance is
// rejected.
func NewMaintainerUnder(desc DominanceDescriptor, dims, bits int, mins, maxs []float64) (*Maintainer, error) {
	prov, err := desc.Provider()
	if err != nil {
		return nil, err
	}
	return maintain.NewUnder(prov, dims, bits, mins, maxs)
}

// NewWindowSkylineUnder is NewWindowSkyline under a variant relation;
// any irreflexive relation is supported (non-transitive ones recompute
// from the retained window on every push).
func NewWindowSkylineUnder(desc DominanceDescriptor, capacity, dims, bits int, mins, maxs []float64) (*WindowSkyline, error) {
	prov, err := desc.Provider()
	if err != nil {
		return nil, err
	}
	return window.NewUnder(prov, capacity, dims, bits, mins, maxs)
}

// --- k-dominant skylines ---

// KDominates reports whether p k-dominates q: no worse on at least k
// dimensions and strictly better on one of them.
func KDominates(p, q Point, k int) bool { return kdom.KDominates(p, q, k) }

// KDominantSkyline computes the k-dominant skyline (Two-Scan
// Algorithm) — the standard way to shrink unmanageably large
// high-dimensional skylines. k == dims reproduces the classic skyline.
func KDominantSkyline(pts []Point, k int) ([]Point, error) {
	return kdom.Skyline(pts, k, nil)
}

// --- Cardinality estimation ---

// SkylineEstimate is a sample-based skyline-size prediction.
type SkylineEstimate = estimate.Estimate

// EstimateSkylineSize predicts |skyline(pts)| from a ratio-sample
// scaled with the independent-dimensions growth model.
func EstimateSkylineSize(pts []Point, ratio float64, seed int64) (*SkylineEstimate, error) {
	return estimate.FromSample(pts, ratio, seed)
}

// ExpectedSkylineSize returns the analytic expected skyline size of n
// independent uniform points in d dimensions.
func ExpectedSkylineSize(n, d int) float64 { return estimate.Independent(n, d) }

// --- Sliding-window skylines ---

// WindowSkyline maintains the skyline of the most recent N stream
// points, with exact expiry semantics.
type WindowSkyline = window.Skyline

// NewWindowSkyline creates a count-based sliding-window skyline over
// the box [mins, maxs].
func NewWindowSkyline(capacity, dims, bits int, mins, maxs []float64) (*WindowSkyline, error) {
	return window.New(capacity, dims, bits, mins, maxs)
}

// --- Shared-memory parallel skyline ---

// ParallelOptions tunes ParallelSkyline.
type ParallelOptions = parallel.Options

// ParallelSkyline computes the exact skyline on shared-memory
// multicores without the MapReduce machinery: shard -> Z-search ->
// parallel Z-merge reduction. The lightweight choice when the input
// already fits in memory on one machine.
func ParallelSkyline(ds *Dataset, opts ParallelOptions) ([]Point, error) {
	return parallel.Skyline(context.Background(), ds, opts)
}

// ParallelSkylineContext is ParallelSkyline honoring ctx: cancellation
// is checked between merge rounds, matching the other substrates.
func ParallelSkylineContext(ctx context.Context, ds *Dataset, opts ParallelOptions) ([]Point, error) {
	return parallel.Skyline(ctx, ds, opts)
}

// --- Subspace skylines & skycube ---

// SubspaceSkyline returns the indices of the rows of ds whose
// projection onto dims is undominated (the subspace-skyline operator).
func SubspaceSkyline(ds *Dataset, dims []int) ([]int, error) {
	return subspace.Skyline(ds, dims, nil)
}

// SkyCube holds a skyline per non-empty dimension subset.
type SkyCube = subspace.Cube

// ComputeSkyCube computes all 2^d - 1 subspace skylines of ds (d <=
// 16) with the given concurrency.
func ComputeSkyCube(ds *Dataset, workers int) (*SkyCube, error) {
	return subspace.SkyCube(ds, workers, nil)
}

// --- Approximate & representative skylines ---

// EpsilonSkyline returns an ε-cover subset of the skyline: every input
// point q has a kept point p with p[i] <= q[i]+eps in all dimensions.
func EpsilonSkyline(pts []Point, eps float64) ([]Point, error) {
	return approx.Epsilon(pts, eps)
}

// RepresentativeSkyline picks k diverse skyline points by greedy
// k-center under the L-infinity metric.
func RepresentativeSkyline(pts []Point, k int) ([]Point, error) {
	return approx.Representative(pts, k)
}

// --- Out-of-core skylines ---

// OutOfCoreOptions tunes streaming skyline computation.
type OutOfCoreOptions = ooc.Options

// SkylineFile computes the skyline of a ZSKY binary file too large to
// load, streaming bounded batches through the incremental maintainer
// (two passes when no bounds are supplied).
func SkylineFile(path string, opts OutOfCoreOptions) ([]Point, error) {
	return ooc.SkylineFile(path, opts)
}

// SaveMaintainer persists a maintainer's state (skyline + metadata) to
// w; restore with LoadMaintainer.
func SaveMaintainer(m *Maintainer, w io.Writer) error { return m.Save(w) }

// LoadMaintainer restores a maintainer written by SaveMaintainer.
func LoadMaintainer(r io.Reader) (*Maintainer, error) { return maintain.Load(r) }
