package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"zskyline/internal/obs"
)

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// Addr is the target skyserve base URL (http://host:port).
	Addr string
	// Dataset, when non-empty, targets the named dataset's routes
	// (/datasets/<name>/...) instead of the legacy single-dataset
	// surface.
	Dataset string
	// Clients is the number of concurrent requesters.
	Clients int
	// N is the total number of operations to issue.
	N int
	// Rate, when positive, is the offered load in queries per second
	// across all clients, generated open-loop: every arrival is
	// scheduled up front and latency is measured from the scheduled
	// arrival, so a slow server queues requests instead of slowing the
	// arrival clock (no coordinated omission). Rate 0 runs closed-loop:
	// each client fires its next query as soon as the previous returns.
	Rate float64
	// Mix selects the routes exercised: "skyline", "query", "mixed"
	// (alternating between the two), or "churn" (mixed, with every
	// IngestEvery-th operation an ingest of IngestBatch random points —
	// the cache-invalidation workload).
	Mix string
	// IngestEvery makes every k-th operation an ingest under the churn
	// mix (default 10).
	IngestEvery int
	// IngestBatch is the points per churn ingest (default 16).
	IngestBatch int
	// Seed drives query-shape randomization.
	Seed int64
	// Timeout bounds each request.
	Timeout time.Duration
}

// basePath is the route prefix the run targets.
func (c LoadConfig) basePath() string {
	if c.Dataset == "" {
		return ""
	}
	return "/datasets/" + c.Dataset
}

// RouteStats is one route's summary after a run.
type RouteStats struct {
	Route  string
	Count  int64
	Errors int64
	// Rejected counts 429 admission rejections — offered load the
	// server declined by design, tracked apart from errors.
	Rejected int64
	Lat      obs.LatencySnapshot
}

// LoadResult is a finished run.
type LoadResult struct {
	Total    int64
	Errors   int64
	Rejected int64
	Wall     time.Duration
	QPS      float64
	Routes   []RouteStats
}

// job is one scheduled request.
type job struct {
	route   string
	body    []byte
	arrival time.Time // zero in closed-loop mode
}

// routeTally accumulates one route's outcomes across clients.
type routeTally struct {
	hist                   *obs.LatencyHistogram
	count, errrs, rejected int64
	mu                     sync.Mutex
}

func (t *routeTally) observe(d time.Duration, failed, rejected bool) {
	t.hist.Observe(d)
	t.mu.Lock()
	t.count++
	if failed {
		t.errrs++
	}
	if rejected {
		t.rejected++
	}
	t.mu.Unlock()
}

// fetchAttrs asks the target's healthz for the dataset's attribute
// names, which seed the randomized /query bodies and churn ingests.
func fetchAttrs(client *http.Client, cfg LoadConfig) ([]string, error) {
	resp, err := client.Get(cfg.Addr + cfg.basePath() + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("healthz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	var health struct {
		Attrs []string `json:"attrs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return nil, fmt.Errorf("healthz: %w", err)
	}
	if len(health.Attrs) == 0 {
		return nil, fmt.Errorf("healthz: no attrs")
	}
	return health.Attrs, nil
}

// queryBody builds a random preference list: a non-empty attr subset,
// each with a random direction.
func queryBody(rng *rand.Rand, attrs []string) []byte {
	k := 1 + rng.Intn(len(attrs))
	idx := rng.Perm(len(attrs))[:k]
	sort.Ints(idx)
	prefer := make([]map[string]string, 0, k)
	for _, i := range idx {
		dir := "min"
		if rng.Intn(2) == 1 {
			dir = "max"
		}
		prefer = append(prefer, map[string]string{"attr": attrs[i], "dir": dir})
	}
	blob, _ := json.Marshal(map[string]any{"prefer": prefer})
	return blob
}

// ingestBody builds a batch of random unit-box points.
func ingestBody(rng *rand.Rand, dims, n int) []byte {
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, dims)
		for d := range row {
			row[d] = rng.Float64()
		}
		pts[i] = row
	}
	blob, _ := json.Marshal(map[string]any{"points": pts})
	return blob
}

// buildJobs materializes the run's full request schedule.
func buildJobs(cfg LoadConfig, attrs []string, start time.Time) ([]job, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ingestEvery := cfg.IngestEvery
	if ingestEvery < 1 {
		ingestEvery = 10
	}
	ingestBatch := cfg.IngestBatch
	if ingestBatch < 1 {
		ingestBatch = 16
	}
	jobs := make([]job, cfg.N)
	for i := range jobs {
		var j job
		switch cfg.Mix {
		case "skyline":
			j.route = "/skyline"
		case "query":
			j.route, j.body = "/query", queryBody(rng, attrs)
		case "mixed", "churn":
			if cfg.Mix == "churn" && i%ingestEvery == ingestEvery-1 {
				j.route, j.body = "/ingest", ingestBody(rng, len(attrs), ingestBatch)
			} else if i%2 == 0 {
				j.route = "/skyline"
			} else {
				j.route, j.body = "/query", queryBody(rng, attrs)
			}
		default:
			return nil, fmt.Errorf("unknown mix %q (want skyline, query, mixed, or churn)", cfg.Mix)
		}
		if cfg.Rate > 0 {
			j.arrival = start.Add(time.Duration(float64(i) / cfg.Rate * float64(time.Second)))
		}
		jobs[i] = j
	}
	return jobs, nil
}

// loadRoutes is the fixed tally/report route order.
var loadRoutes = []string{"/skyline", "/query", "/ingest"}

// runLoad executes the configured load and summarizes per-route
// latency quantiles.
func runLoad(cfg LoadConfig) (*LoadResult, error) {
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("need n >= 1")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Mix == "churn" && cfg.Dataset == "" {
		return nil, fmt.Errorf("churn mix needs -dataset (the legacy surface has no ingest route)")
	}
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Clients * 2,
			MaxIdleConnsPerHost: cfg.Clients * 2,
		},
	}
	attrs, err := fetchAttrs(client, cfg)
	if err != nil {
		return nil, err
	}
	// A short lead keeps the first scheduled arrivals from landing in
	// the past while the workers spin up.
	start := time.Now().Add(50 * time.Millisecond)
	jobs, err := buildJobs(cfg, attrs, start)
	if err != nil {
		return nil, err
	}
	tallies := map[string]*routeTally{}
	for _, route := range loadRoutes {
		tallies[route] = &routeTally{hist: obs.NewLatencyHistogram()}
	}

	jobCh := make(chan job, len(jobs))
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)

	base := cfg.basePath()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				t0 := j.arrival
				if t0.IsZero() {
					t0 = time.Now() // closed loop: measure from send
				} else if d := time.Until(t0); d > 0 {
					time.Sleep(d)
				}
				failed, rejected := doRequest(client, cfg.Addr+base, j)
				tallies[j.route].observe(time.Since(t0), failed, rejected)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if wall <= 0 {
		wall = time.Nanosecond
	}

	res := &LoadResult{Wall: wall}
	for _, route := range loadRoutes {
		t := tallies[route]
		if t.count == 0 {
			continue
		}
		res.Total += t.count
		res.Errors += t.errrs
		res.Rejected += t.rejected
		res.Routes = append(res.Routes, RouteStats{
			Route: route, Count: t.count, Errors: t.errrs, Rejected: t.rejected,
			Lat: t.hist.Snapshot(),
		})
	}
	res.QPS = float64(res.Total) / wall.Seconds()
	return res, nil
}

// doRequest issues one request, draining the body so connections are
// reused; it reports whether the request failed and whether the
// failure was an admission rejection (429).
func doRequest(client *http.Client, base string, j job) (failed, rejected bool) {
	var (
		resp *http.Response
		err  error
	)
	if j.body == nil {
		resp, err = client.Get(base + j.route)
	} else {
		resp, err = client.Post(base+j.route, "application/json", bytes.NewReader(j.body))
	}
	if err != nil {
		return true, false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return false, true
	}
	return resp.StatusCode != http.StatusOK, false
}

// ---- reporting ----

// loadRouteReport is one route's row in LOAD_<tag>.json.
type loadRouteReport struct {
	Route    string  `json:"route"`
	Count    int64   `json:"count"`
	Errors   int64   `json:"errors"`
	Rejected int64   `json:"rejected,omitempty"`
	MeanMS   float64 `json:"mean_ms"`
	P50MS    float64 `json:"p50_ms"`
	P90MS    float64 `json:"p90_ms"`
	P99MS    float64 `json:"p99_ms"`
	MaxMS    float64 `json:"max_ms"`
}

// loadReport is the persisted run summary.
type loadReport struct {
	Tag      string            `json:"tag"`
	Addr     string            `json:"addr"`
	Dataset  string            `json:"dataset,omitempty"`
	Mix      string            `json:"mix"`
	Clients  int               `json:"clients"`
	N        int               `json:"n"`
	RateQPS  float64           `json:"rate_qps"`
	WallMS   float64           `json:"wall_ms"`
	QPS      float64           `json:"qps"`
	Errors   int64             `json:"errors"`
	Rejected int64             `json:"rejected,omitempty"`
	Routes   []loadRouteReport `json:"routes"`
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func buildReport(cfg LoadConfig, tag string, res *LoadResult) loadReport {
	rep := loadReport{
		Tag: tag, Addr: cfg.Addr, Dataset: cfg.Dataset, Mix: cfg.Mix,
		Clients: cfg.Clients, N: cfg.N, RateQPS: cfg.Rate,
		WallMS: ms(res.Wall), QPS: res.QPS, Errors: res.Errors, Rejected: res.Rejected,
	}
	for _, rs := range res.Routes {
		rep.Routes = append(rep.Routes, loadRouteReport{
			Route: rs.Route, Count: rs.Count, Errors: rs.Errors, Rejected: rs.Rejected,
			MeanMS: ms(rs.Lat.Mean), P50MS: ms(rs.Lat.P50),
			P90MS: ms(rs.Lat.P90), P99MS: ms(rs.Lat.P99), MaxMS: ms(rs.Lat.Max),
		})
	}
	return rep
}

// writeTable renders the human-readable quantile table.
func writeTable(w io.Writer, res *LoadResult) {
	fmt.Fprintf(w, "%-10s %8s %6s %6s %10s %10s %10s %10s\n",
		"route", "count", "err", "rej", "p50", "p90", "p99", "max")
	for _, rs := range res.Routes {
		fmt.Fprintf(w, "%-10s %8d %6d %6d %10v %10v %10v %10v\n",
			rs.Route, rs.Count, rs.Errors, rs.Rejected,
			rs.Lat.P50.Round(time.Microsecond), rs.Lat.P90.Round(time.Microsecond),
			rs.Lat.P99.Round(time.Microsecond), rs.Lat.Max.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "total: %d queries in %v (%.1f qps), %d errors, %d rejected\n",
		res.Total, res.Wall.Round(time.Millisecond), res.QPS, res.Errors, res.Rejected)
}
