// Command skyload drives load against a running skyserve and reports
// per-route latency quantiles (p50/p90/p99/max) from the client's side
// of the wire.
//
// Usage:
//
//	skyserve -in hotels.csv -listen :8080 &
//	skyload -addr http://127.0.0.1:8080 -n 5000 -clients 16
//	skyload -addr http://127.0.0.1:8080 -n 5000 -rate 500 -tag nightly
//	skyload -addr http://127.0.0.1:8080 -dataset hotels -mix churn -n 5000
//
// -dataset targets a named dataset's routes; the churn mix
// interleaves ingest batches with queries (every -ingest-every-th
// operation posts -ingest-batch random points), exercising version
// bumps and cache invalidation under load. 429 admission rejections
// are reported separately from errors and do not fail the run.
//
// With -rate the load is generated open-loop: arrivals are scheduled
// at the target rate regardless of how fast the server answers, and
// each latency is measured from its scheduled arrival — so server
// stalls surface as tail latency instead of silently thinning the
// load (no coordinated omission). Without -rate each client runs
// closed-loop, firing its next query when the previous one returns.
//
// With -tag the summary is also written to LOAD_<tag>.json for
// machine consumption alongside skybench's BENCH_<tag>.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	var (
		addr        = flag.String("addr", "", "target skyserve base URL, e.g. http://127.0.0.1:8080 (required)")
		dataset     = flag.String("dataset", "", "target a named dataset's routes (/datasets/<name>/...) instead of the legacy surface")
		clients     = flag.Int("clients", 8, "concurrent client connections")
		n           = flag.Int("n", 1000, "total operations to issue")
		rate        = flag.Float64("rate", 0, "offered load in queries/sec, open-loop (0 = closed-loop)")
		mix         = flag.String("mix", "mixed", "route mix: skyline | query | mixed | churn (mixed + ingest; needs -dataset)")
		ingestEvery = flag.Int("ingest-every", 10, "churn mix: every k-th operation is an ingest")
		ingestBatch = flag.Int("ingest-batch", 16, "churn mix: points per ingest")
		seed        = flag.Int64("seed", 42, "query-shape randomization seed")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		tag         = flag.String("tag", "", "also write the summary to LOAD_<tag>.json")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "skyload: -addr is required")
		os.Exit(2)
	}

	cfg := LoadConfig{
		Addr: *addr, Dataset: *dataset, Clients: *clients, N: *n, Rate: *rate,
		Mix: *mix, IngestEvery: *ingestEvery, IngestBatch: *ingestBatch,
		Seed: *seed, Timeout: *timeout,
	}
	res, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyload: %v\n", err)
		os.Exit(1)
	}
	writeTable(os.Stdout, res)

	if *tag != "" {
		rep := buildReport(cfg, *tag, res)
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "skyload: %v\n", err)
			os.Exit(1)
		}
		path := "LOAD_" + *tag + ".json"
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "skyload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if res.Errors > 0 {
		os.Exit(1)
	}
}
