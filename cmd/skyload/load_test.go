package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zskyline/internal/gen"
	"zskyline/internal/server"
)

func startTarget(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	ds := gen.Synthetic(gen.AntiCorrelated, 800, 3, 7)
	s, err := server.New([]string{"price", "distance", "noise"}, ds, 12)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestClosedLoop(t *testing.T) {
	s, ts := startTarget(t)
	cfg := LoadConfig{Addr: ts.URL, Clients: 4, N: 200, Mix: "mixed", Seed: 1, Timeout: 5 * time.Second}
	res, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 200 || res.Errors != 0 {
		t.Fatalf("total=%d errors=%d, want 200/0", res.Total, res.Errors)
	}
	if len(res.Routes) != 2 {
		t.Fatalf("routes = %+v, want /skyline and /query", res.Routes)
	}
	for _, rs := range res.Routes {
		if rs.Count == 0 || rs.Lat.Count != rs.Count {
			t.Errorf("%s: count=%d lat.count=%d", rs.Route, rs.Count, rs.Lat.Count)
		}
		if rs.Lat.P50 <= 0 || rs.Lat.P99 < rs.Lat.P50 || rs.Lat.Max < rs.Lat.P99 {
			t.Errorf("%s: implausible quantiles %+v", rs.Route, rs.Lat)
		}
	}
	if res.QPS <= 0 {
		t.Errorf("qps = %v", res.QPS)
	}
	// The server side saw every query as an event.
	if got := s.Events().Seen(); got < 200 {
		t.Errorf("server event log saw %d, want >= 200", got)
	}
}

func TestOpenLoopMeasuresFromArrival(t *testing.T) {
	// A server that stalls every request: open-loop latency must
	// include the queueing delay behind the stalls, so with arrivals
	// far faster than service, tail latency >> service time.
	const stall = 20 * time.Millisecond
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"attrs": []string{"a", "b"}})
	})
	mux.HandleFunc("/skyline", func(w http.ResponseWriter, _ *http.Request) {
		time.Sleep(stall)
		w.Write([]byte(`{}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// 1 client, service time 20ms, offered 500 qps: job i queues
	// behind i stalls, so p99 must far exceed one service time.
	cfg := LoadConfig{Addr: ts.URL, Clients: 1, N: 20, Rate: 500, Mix: "skyline", Seed: 1, Timeout: 5 * time.Second}
	res, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 20 || res.Errors != 0 {
		t.Fatalf("total=%d errors=%d", res.Total, res.Errors)
	}
	if p99 := res.Routes[0].Lat.P99; p99 < 3*stall {
		t.Errorf("open-loop p99 = %v, want >> %v (queueing delay must count)", p99, stall)
	}
}

// TestChurnMixAgainstNamedDataset drives the ingest+query workload at
// a named dataset: ingests land (version moves), queries keep
// answering, and the run distinguishes rejections from errors.
func TestChurnMixAgainstNamedDataset(t *testing.T) {
	svc := server.NewService(server.Config{Bits: 10})
	e, err := svc.CreateDataset(server.DatasetSpec{Name: "hot", Attrs: []string{"x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	cfg := LoadConfig{
		Addr: ts.URL, Dataset: "hot", Clients: 4, N: 120, Mix: "churn",
		IngestEvery: 6, IngestBatch: 4, Seed: 2, Timeout: 5 * time.Second,
	}
	res, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 120 || res.Errors != 0 {
		t.Fatalf("total=%d errors=%d, want 120/0", res.Total, res.Errors)
	}
	var sawIngest bool
	for _, rs := range res.Routes {
		if rs.Route == "/ingest" {
			sawIngest = true
			if rs.Count != 20 {
				t.Errorf("ingest count = %d, want 120/6", rs.Count)
			}
		}
	}
	if !sawIngest {
		t.Fatal("churn mix issued no ingests")
	}
	if e.Version() != 20 {
		t.Errorf("dataset version = %d after 20 ingests", e.Version())
	}

	// churn needs a named dataset.
	if _, err := runLoad(LoadConfig{Addr: ts.URL, N: 1, Mix: "churn"}); err == nil {
		t.Error("churn without -dataset accepted")
	}
}

func TestBuildJobsMixAndSchedule(t *testing.T) {
	start := time.Now()
	jobs, err := buildJobs(LoadConfig{N: 10, Mix: "mixed", Rate: 100, Seed: 7}, []string{"x", "y"}, start)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		wantRoute := "/skyline"
		if i%2 == 1 {
			wantRoute = "/query"
		}
		if j.route != wantRoute {
			t.Errorf("job %d route = %s, want %s", i, j.route, wantRoute)
		}
		if want := start.Add(time.Duration(i) * 10 * time.Millisecond); !j.arrival.Equal(want) {
			t.Errorf("job %d arrival = %v, want %v", i, j.arrival.Sub(start), want.Sub(start))
		}
		if j.route == "/query" {
			var body struct {
				Prefer []map[string]string `json:"prefer"`
			}
			if err := json.Unmarshal(j.body, &body); err != nil || len(body.Prefer) == 0 {
				t.Errorf("job %d bad body %s: %v", i, j.body, err)
			}
		}
	}
	if _, err := buildJobs(LoadConfig{N: 1, Mix: "nope"}, []string{"x"}, start); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestReportAndTable(t *testing.T) {
	_, ts := startTarget(t)
	cfg := LoadConfig{Addr: ts.URL, Clients: 2, N: 50, Mix: "query", Seed: 3, Timeout: 5 * time.Second}
	res, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := buildReport(cfg, "t1", res)
	if rep.Tag != "t1" || rep.QPS <= 0 || len(rep.Routes) != 1 || rep.Routes[0].Route != "/query" {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Routes[0].P50MS <= 0 || rep.Routes[0].P99MS < rep.Routes[0].P50MS {
		t.Errorf("report quantiles = %+v", rep.Routes[0])
	}
	var b bytes.Buffer
	writeTable(&b, res)
	out := b.String()
	if !strings.Contains(out, "/query") || !strings.Contains(out, "p99") || !strings.Contains(out, "50 queries") {
		t.Errorf("table output:\n%s", out)
	}
}
