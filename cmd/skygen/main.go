// Command skygen generates benchmark datasets as CSV (one point per
// line, comma-separated coordinates) or in the compact ZSKY binary
// format.
//
// Usage:
//
//	skygen -dist anti -n 100000 -d 5 -seed 7 > anti.csv
//	skygen -dist anti -n 10000000 -format binary -o anti.zsky
//	skygen -dist nba > nba.csv
//
// Distributions: independent, correlated, anti (Börzsönyi synthetic),
// plus the simulated real-world sets nba, hou, nuswide, flickr,
// dbpedia (see DESIGN.md §6 for what each simulates).
package main

import (
	"flag"
	"fmt"
	"os"

	"zskyline/internal/codec"
	"zskyline/internal/gen"
	"zskyline/internal/point"
)

func main() {
	var (
		dist   = flag.String("dist", "independent", "independent|correlated|anti|nba|hou|nuswide|flickr|dbpedia")
		n      = flag.Int("n", 10000, "number of points (synthetic distributions)")
		d      = flag.Int("d", 5, "dimensionality (synthetic distributions)")
		seed   = flag.Int64("seed", 42, "generator seed")
		out    = flag.String("o", "-", "output file ('-' for stdout)")
		format = flag.String("format", "csv", "output format: csv|binary")
	)
	flag.Parse()

	var ds *point.Dataset
	switch *dist {
	case "independent":
		ds = gen.Synthetic(gen.Independent, *n, *d, *seed)
	case "correlated":
		ds = gen.Synthetic(gen.Correlated, *n, *d, *seed)
	case "anti", "anti-correlated":
		ds = gen.Synthetic(gen.AntiCorrelated, *n, *d, *seed)
	case "nba":
		ds = gen.NBALike(*n, *seed)
	case "hou":
		ds = gen.HOULike(*n, *seed)
	case "nuswide":
		ds = gen.NUSWideLike(*n, *seed)
	case "flickr":
		ds = gen.FlickrLike(*n, *seed)
	case "dbpedia":
		ds = gen.DBPediaLike(*n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "skygen: unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skygen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "csv":
		err = codec.WriteCSV(w, ds)
	case "binary":
		err = codec.WriteBinary(w, ds)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "skygen: %v\n", err)
		os.Exit(1)
	}
}
