// Command skyquery runs declarative skyline queries over named-column
// CSV files: each attribute gets a preference direction and the
// undominated rows come back, original columns intact.
//
// Usage:
//
//	skyquery -in hotels.csv -prefer "price:min,rating:max,id:ignore"
//	skyquery -in hotels.csv -prefer "price:min,distance:min" -explain 3
//
// The CSV's first line may be a header (price,rating,...); without one
// the columns are named c0, c1, ... . Attributes not mentioned in
// -prefer are ignored. -explain N prints, for row N of the input, the
// rows that dominate it (empty when N is a skyline row).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"zskyline"
	"zskyline/internal/codec"
)

func parsePrefs(spec string) ([]zskyline.Pref, error) {
	var prefs []zskyline.Pref
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		attr, dir, found := strings.Cut(part, ":")
		if !found {
			return nil, fmt.Errorf("preference %q needs attr:direction", part)
		}
		p := zskyline.Pref{Attr: strings.TrimSpace(attr)}
		switch strings.ToLower(strings.TrimSpace(dir)) {
		case "min":
			p.Dir = zskyline.Min
		case "max":
			p.Dir = zskyline.Max
		case "ignore":
			p.Dir = zskyline.Ignore
		default:
			return nil, fmt.Errorf("unknown direction %q (min|max|ignore)", dir)
		}
		prefs = append(prefs, p)
	}
	if len(prefs) == 0 {
		return nil, fmt.Errorf("no preferences given")
	}
	return prefs, nil
}

func main() {
	var (
		in        = flag.String("in", "-", "input CSV ('-' for stdin); first line may be a header")
		prefer    = flag.String("prefer", "", "comma-separated attr:min|max|ignore preferences (required)")
		header    = flag.Bool("header", true, "print the header line before results")
		explain   = flag.Int("explain", -1, "explain row N instead of printing the skyline")
		dominance = flag.String("dominance", "pareto", "dominance relation: pareto | flex:w1,w2;... | kdom:k | robust:rho")
	)
	flag.Parse()
	if *prefer == "" {
		fmt.Fprintln(os.Stderr, "skyquery: -prefer is required")
		os.Exit(2)
	}
	prefs, err := parsePrefs(*prefer)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyquery: %v\n", err)
		os.Exit(2)
	}
	desc, err := zskyline.ParseDominance(*dominance)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyquery: %v\n", err)
		os.Exit(2)
	}
	prov, err := desc.Provider()
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyquery: %v\n", err)
		os.Exit(2)
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skyquery: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	attrs, rows, err := codec.ReadNamedCSV(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyquery: %v\n", err)
		os.Exit(1)
	}
	rel, err := zskyline.NewRelation(attrs, rows)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyquery: %v\n", err)
		os.Exit(1)
	}
	res, err := zskyline.RunQuery(context.Background(), rel, zskyline.Query{Prefer: prefs, Dominance: desc})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyquery: %v\n", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	writeRow := func(row []float64) {
		for i, v := range row {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		w.WriteByte('\n')
	}

	if *explain >= 0 {
		if *explain >= len(rows) {
			fmt.Fprintf(os.Stderr, "skyquery: row %d out of range (0..%d)\n", *explain, len(rows)-1)
			os.Exit(2)
		}
		inSkyline := false
		for _, id := range res.RowIDs {
			if id == *explain {
				inSkyline = true
				break
			}
		}
		if inSkyline {
			fmt.Fprintf(w, "row %d is in the skyline\n", *explain)
			return
		}
		fmt.Fprintf(w, "row %d is dominated by:\n", *explain)
		target := rows[*explain]
		for _, id := range res.RowIDs {
			if dominatesUnder(prov, rows[id], target, prefs, rel) {
				writeRow(rows[id])
			}
		}
		return
	}

	if *header {
		fmt.Fprintln(w, strings.Join(attrs, ","))
	}
	for _, id := range res.RowIDs {
		writeRow(rows[id])
	}
	fmt.Fprintf(os.Stderr, "skyquery: %d of %d rows in the skyline\n", len(res.RowIDs), len(rows))
}

// dominatesUnder checks preference-space dominance of row a over row b
// under the selected relation: both rows are projected into preference
// space (max negated, ignored attributes dropped) and handed to the
// provider.
func dominatesUnder(prov zskyline.DominanceProvider, a, b []float64, prefs []zskyline.Pref, rel *zskyline.Relation) bool {
	idx := map[string]int{}
	for i, attr := range rel.Attrs {
		idx[attr] = i
	}
	var pa, pb zskyline.Point
	for _, p := range prefs {
		if p.Dir == zskyline.Ignore {
			continue
		}
		i := idx[p.Attr]
		av, bv := a[i], b[i]
		if p.Dir == zskyline.Max {
			av, bv = -av, -bv
		}
		pa = append(pa, av)
		pb = append(pb, bv)
	}
	return prov.Dominates(pa, pb)
}
