// Command skyserve serves skyline queries over a dataset as a JSON
// HTTP API.
//
// Usage:
//
//	skyserve -in hotels.csv -listen :8080
//	curl localhost:8080/healthz
//	curl localhost:8080/skyline
//	curl -X POST localhost:8080/query \
//	     -d '{"prefer":[{"attr":"price","dir":"min"},{"attr":"rating","dir":"max"}]}'
//	curl -X POST localhost:8080/explain -d '{"point":[90,3]}'
//	curl -X POST localhost:8080/topk -d '{"k":5,"weights":[1,2]}'
//
// The CSV's first line may name the attributes; otherwise columns are
// c0, c1, ...
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"zskyline/internal/codec"
	"zskyline/internal/point"
	"zskyline/internal/server"
)

func main() {
	var (
		in     = flag.String("in", "", "input CSV (required; first line may be a header)")
		listen = flag.String("listen", "127.0.0.1:8080", "address to serve on")
		bits   = flag.Int("bits", 16, "Z-order grid resolution")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "skyserve: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
		os.Exit(1)
	}
	attrs, rows, err := codec.ReadNamedCSV(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
		os.Exit(1)
	}
	pts := make([]point.Point, len(rows))
	for i, r := range rows {
		pts[i] = point.Point(r)
	}
	ds, err := point.NewDataset(len(attrs), pts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
		os.Exit(1)
	}
	srv, err := server.New(attrs, ds, *bits)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("skyserve: %d points x %d attrs on http://%s\n", ds.Len(), ds.Dims, *listen)
	if err := http.ListenAndServe(*listen, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
		os.Exit(1)
	}
}
