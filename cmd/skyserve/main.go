// Command skyserve serves skyline queries over one or more named
// datasets as a JSON HTTP API.
//
// Usage:
//
//	skyserve -in hotels.csv -listen :8080
//	skyserve -dataset hotels=hotels.csv -dataset cars=cars.csv
//	curl localhost:8080/datasets
//	curl localhost:8080/datasets/hotels/skyline
//	curl -X POST localhost:8080/datasets/hotels/ingest -d '{"points":[[90,3]]}'
//	curl -X POST localhost:8080/datasets -d '{"name":"live","attrs":["x","y"]}'
//	curl localhost:8080/metrics
//
// -in serves its CSV as the dataset named "default", which also backs
// the single-dataset routes (/healthz, /skyline, /query, /explain,
// /topk):
//
//	curl -X POST localhost:8080/query \
//	     -d '{"prefer":[{"attr":"price","dir":"min"},{"attr":"rating","dir":"max"}]}'
//
// Each CSV's first line may name the attributes; otherwise columns are
// c0, c1, ... Datasets are versioned: every ingest bumps the version,
// invalidates that dataset's cached query results, and wakes
// /datasets/{name}/subscribe long-polls. -cache bounds each dataset's
// result cache; -max-inflight bounds concurrently executing queries
// per dataset (excess load is rejected with 429 + Retry-After).
//
// GET /metrics serves request counters, latency quantiles, per-dataset
// gauges, and cache/admission counters in Prometheus text format; GET
// /debug/events serves the per-query event log (ring capacity -events,
// sampling -event-sample, NDJSON sink -events-out, ?dataset= filter);
// -pprof adds the /debug/pprof/ endpoints. Every response carries an
// X-Request-Id header, each request is logged as one structured line
// (-access-log), and requests slower than -slow carry their full trace
// on the event record. On SIGINT/SIGTERM the server stops accepting
// connections and drains in-flight queries before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"zskyline/internal/codec"
	"zskyline/internal/obs"
	"zskyline/internal/point"
	"zskyline/internal/server"
)

// ingestChunk is the block size dataset CSVs are streamed into the
// engine with — bounded memory per merge, and the skyline stays
// current after every chunk.
const ingestChunk = 4096

type namedCSV struct{ name, path string }

func main() {
	var (
		in          = flag.String("in", "", "CSV served as the \"default\" dataset (first line may be a header)")
		listen      = flag.String("listen", "127.0.0.1:8080", "address to serve on")
		bits        = flag.Int("bits", 16, "Z-order grid resolution")
		dom         = flag.String("dominance", "", "dominance descriptor for loaded datasets (pareto, flex:w1,w2;..., kdom:k, robust[:rho])")
		cacheSize   = flag.Int("cache", 256, "result-cache entries per dataset (0 disables)")
		maxInFlight = flag.Int("max-inflight", 64, "concurrently executing queries per dataset before 429s (0 = unlimited)")
		pprofF      = flag.Bool("pprof", false, "expose /debug/pprof/ endpoints")
		slow        = flag.Duration("slow", 250*time.Millisecond, "promote the trace of requests slower than this onto their event record (0 disables)")
		eventCap    = flag.Int("events", 1024, "per-query event ring capacity served at /debug/events")
		sample      = flag.Int("event-sample", 1, "keep 1 in N query events (errors and slow queries always kept)")
		eventsOut   = flag.String("events-out", "", "also append every event as NDJSON to this file")
		accessLog   = flag.String("access-log", "stderr", "structured per-request log: stderr, off, or a file path")
	)
	var sources []namedCSV
	flag.Func("dataset", "name=path.csv; repeatable — serve this CSV as a named dataset", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path.csv, got %q", v)
		}
		sources = append(sources, namedCSV{name, path})
		return nil
	})
	flag.Parse()
	if *in != "" {
		sources = append([]namedCSV{{server.DefaultDataset, *in}}, sources...)
	}
	if len(sources) == 0 {
		fmt.Fprintln(os.Stderr, "skyserve: -in or -dataset is required")
		os.Exit(2)
	}

	svc := server.NewService(server.Config{
		Bits:        *bits,
		CacheSize:   sizeOrDisabled(*cacheSize),
		MaxInFlight: sizeOrDisabled(*maxInFlight),
	})
	for _, src := range sources {
		if err := load(svc, src, *dom); err != nil {
			fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
			os.Exit(1)
		}
	}

	svc.SetSlowThreshold(*slow)
	if *eventCap > 0 {
		svc.SetEventCapacity(*eventCap)
	}
	if *sample > 1 {
		svc.SetEventSampling(*sample)
	}
	if *eventsOut != "" {
		f, err := os.OpenFile(*eventsOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		svc.Events().SetSink(f)
	}
	switch *accessLog {
	case "off":
	case "stderr":
		svc.SetAccessLog(os.Stderr)
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		svc.SetAccessLog(f)
	}

	handler := svc.Handler()
	if *pprofF {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		obs.RegisterPprof(mux)
		handler = mux
	}
	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           handler,
		ReadTimeout:       30 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	for _, e := range svc.Engines() {
		info := e.Info()
		fmt.Printf("skyserve: dataset %q: %d points x %d attrs, %d on skyline (%s)\n",
			info.Name, info.Points, len(info.Attrs), info.Skyline, info.Dominance)
	}
	fmt.Printf("skyserve: %d dataset(s) on http://%s\n", len(svc.Engines()), *listen)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("skyserve: shutting down, draining in-flight queries")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "skyserve: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}

// sizeOrDisabled maps a CLI "0 disables" value onto the Config
// convention where 0 means default and negative disables.
func sizeOrDisabled(n int) int {
	if n == 0 {
		return -1
	}
	return n
}

// load reads one CSV and serves it as a named dataset, streaming the
// rows in as bounded ingest blocks so the skyline (and its build-time
// gauge) is ready before the listener accepts queries.
func load(svc *server.Service, src namedCSV, dom string) error {
	f, err := os.Open(src.path)
	if err != nil {
		return err
	}
	attrs, rows, err := codec.ReadNamedCSV(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", src.path, err)
	}
	pts := make([]point.Point, len(rows))
	for i, r := range rows {
		pts[i] = point.Point(r)
	}
	ds, err := point.NewDataset(len(attrs), pts)
	if err != nil {
		return fmt.Errorf("%s: %w", src.path, err)
	}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		return fmt.Errorf("%s: %w", src.path, err)
	}
	e, err := svc.CreateDataset(server.DatasetSpec{
		Name:      src.name,
		Attrs:     attrs,
		Dominance: dom,
		Mins:      mins,
		Maxs:      maxs,
	})
	if err != nil {
		return err
	}
	stream := point.NewDatasetSource(ds)
	for {
		b, err := stream.Next(ingestChunk)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if _, err := svc.Ingest(e, b); err != nil {
			return err
		}
	}
}
