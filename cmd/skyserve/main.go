// Command skyserve serves skyline queries over a dataset as a JSON
// HTTP API.
//
// Usage:
//
//	skyserve -in hotels.csv -listen :8080
//	curl localhost:8080/healthz
//	curl localhost:8080/skyline
//	curl localhost:8080/metrics
//	curl -X POST localhost:8080/query \
//	     -d '{"prefer":[{"attr":"price","dir":"min"},{"attr":"rating","dir":"max"}]}'
//	curl -X POST localhost:8080/explain -d '{"point":[90,3]}'
//	curl -X POST localhost:8080/topk -d '{"k":5,"weights":[1,2]}'
//
// The CSV's first line may name the attributes; otherwise columns are
// c0, c1, ...
//
// GET /metrics serves request counters, latency quantiles, and
// pipeline work counters in Prometheus text format; GET /debug/events
// serves the per-query event log (ring capacity -events, sampling
// -event-sample, NDJSON sink -events-out); -pprof adds the
// /debug/pprof/ endpoints. Every response carries an X-Request-Id
// header, each request is logged as one structured line (-access-log),
// and requests slower than -slow carry their full trace on the event
// record. On SIGINT/SIGTERM the server stops accepting connections and
// drains in-flight queries before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zskyline/internal/codec"
	"zskyline/internal/obs"
	"zskyline/internal/point"
	"zskyline/internal/server"
)

func main() {
	var (
		in        = flag.String("in", "", "input CSV (required; first line may be a header)")
		listen    = flag.String("listen", "127.0.0.1:8080", "address to serve on")
		bits      = flag.Int("bits", 16, "Z-order grid resolution")
		pprofF    = flag.Bool("pprof", false, "expose /debug/pprof/ endpoints")
		slow      = flag.Duration("slow", 250*time.Millisecond, "promote the trace of requests slower than this onto their event record (0 disables)")
		eventCap  = flag.Int("events", 1024, "per-query event ring capacity served at /debug/events")
		sample    = flag.Int("event-sample", 1, "keep 1 in N query events (errors and slow queries always kept)")
		eventsOut = flag.String("events-out", "", "also append every event as NDJSON to this file")
		accessLog = flag.String("access-log", "stderr", "structured per-request log: stderr, off, or a file path")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "skyserve: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
		os.Exit(1)
	}
	attrs, rows, err := codec.ReadNamedCSV(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
		os.Exit(1)
	}
	pts := make([]point.Point, len(rows))
	for i, r := range rows {
		pts[i] = point.Point(r)
	}
	ds, err := point.NewDataset(len(attrs), pts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
		os.Exit(1)
	}
	srv, err := server.New(attrs, ds, *bits)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
		os.Exit(1)
	}
	srv.SetSlowThreshold(*slow)
	if *eventCap > 0 {
		srv.SetEventCapacity(*eventCap)
	}
	if *sample > 1 {
		srv.SetEventSampling(*sample)
	}
	if *eventsOut != "" {
		f, err := os.OpenFile(*eventsOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		srv.Events().SetSink(f)
	}
	switch *accessLog {
	case "off":
	case "stderr":
		srv.SetAccessLog(os.Stderr)
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		srv.SetAccessLog(f)
	}

	handler := srv.Handler()
	if *pprofF {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		obs.RegisterPprof(mux)
		handler = mux
	}
	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           handler,
		ReadTimeout:       30 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("skyserve: %d points x %d attrs on http://%s\n", ds.Len(), ds.Dims, *listen)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("skyserve: shutting down, draining in-flight queries")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "skyserve: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}
