// Command skydist coordinates a distributed skyline query across
// skyworker processes: phase 1 runs here (sampling, Z-order
// partitioning, ZDG/ZHG grouping), phases 2 and 3 run on the workers
// over TCP.
//
// Usage:
//
//	skyworker -listen :7071 & skyworker -listen :7072 &
//	skygen -dist anti -n 200000 -d 5 > anti.csv
//	skydist -workers localhost:7071,localhost:7072 -in anti.csv -report
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"zskyline/internal/codec"
	"zskyline/internal/dist"
	dominancepkg "zskyline/internal/dominance"
	"zskyline/internal/obs"
	"zskyline/internal/point"
)

func main() {
	var (
		workers   = flag.String("workers", "", "comma-separated worker addresses (required)")
		in        = flag.String("in", "-", "input file ('-' for stdin)")
		format    = flag.String("format", "csv", "input format: csv|binary")
		m         = flag.Int("m", 32, "number of groups")
		ratio     = flag.Float64("sample", 0.02, "sampling ratio")
		heuristic = flag.Bool("zhg", false, "use heuristic grouping instead of dominance-based")
		useSB     = flag.Bool("sb", false, "use sort-based local skylines instead of Z-search")
		seed      = flag.Int64("seed", 42, "sampling seed")
		dominance = flag.String("dominance", "pareto", "dominance relation: pareto | flex:w1,w2;... | kdom:k | robust:rho")
		report    = flag.Bool("report", false, "print the run report to stderr")
		stream    = flag.Bool("stream", false, "stream a ZSKY binary file to the workers without loading it (requires -format binary and a file path)")
		trace     = flag.Bool("trace", false, "print a per-run trace report (phase + RPC spans, wire bytes) to stderr")
		metrics_  = flag.String("metrics-addr", "", "serve GET /metrics and /debug/pprof/ on this address during the run")
		rpcTO     = flag.Duration("rpc-timeout", 0, "per-attempt RPC deadline (0 = default 15s, negative = no deadline)")
		retries   = flag.Int("retries", 0, "retries after a failed RPC attempt (0 = default 3, negative = none)")
		hedge     = flag.Duration("hedge", 0, "duplicate straggling reduce/merge RPCs on a second worker after this delay (0 = off)")
		redial    = flag.Duration("redial-interval", 0, "interval between redials of suspect/dead workers (0 = default 500ms, negative = off)")
		eventsOut = flag.String("events-out", "", "write the run's event log (query + per-RPC records) as NDJSON to this file ('-' for stderr)")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	if *metrics_ != "" {
		addr, stopMetrics, err := obs.ServeMetrics(*metrics_, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skydist: %v\n", err)
			os.Exit(1)
		}
		defer stopMetrics()
		fmt.Fprintf(os.Stderr, "skydist: metrics on http://%s/metrics\n", addr)
	}

	if *workers == "" {
		fmt.Fprintln(os.Stderr, "skydist: -workers is required")
		os.Exit(2)
	}
	addrs := strings.Split(*workers, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}

	cfg := dist.DefaultCoordinatorConfig()
	cfg.M = *m
	cfg.SampleRatio = *ratio
	cfg.Heuristic = *heuristic
	cfg.UseZS = !*useSB
	cfg.Seed = *seed
	desc, err := dominancepkg.ParseDescriptor(*dominance)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skydist: %v\n", err)
		os.Exit(2)
	}
	cfg.Dominance = desc
	cfg.RPCTimeout = *rpcTO
	cfg.Retries = *retries
	cfg.Hedge = *hedge
	cfg.RedialInterval = *redial
	cfg.Metrics = reg
	coord, err := dist.NewCoordinator(cfg, addrs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skydist: %v\n", err)
		os.Exit(1)
	}
	defer coord.Close()

	ctx := context.Background()
	var tr *obs.Trace
	if *trace {
		tr = obs.NewTrace("skydist-query")
		ctx = obs.ContextWithTrace(ctx, tr)
	}

	var sky []point.Point
	var rep *dist.Report
	var inputSize int
	if *stream {
		if *format != "binary" || *in == "-" {
			fmt.Fprintln(os.Stderr, "skydist: -stream requires -format binary and a file path")
			os.Exit(2)
		}
		sky, rep, err = coord.SkylineFile(ctx, *in)
	} else {
		r := os.Stdin
		if *in != "-" {
			f, ferr := os.Open(*in)
			if ferr != nil {
				fmt.Fprintf(os.Stderr, "skydist: %v\n", ferr)
				os.Exit(1)
			}
			defer f.Close()
			r = f
		}
		var ds *point.Dataset
		switch *format {
		case "csv":
			ds, err = codec.ReadCSV(r)
		case "binary":
			ds, err = codec.ReadBinary(r)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "skydist: %v\n", err)
			os.Exit(1)
		}
		inputSize = ds.Len()
		sky, rep, err = coord.Skyline(ctx, ds)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "skydist: %v\n", err)
		os.Exit(1)
	}
	tr.Finish()
	if *eventsOut != "" {
		out := os.Stderr
		if *eventsOut != "-" {
			f, ferr := os.Create(*eventsOut)
			if ferr != nil {
				fmt.Fprintf(os.Stderr, "skydist: %v\n", ferr)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := coord.Events().WriteNDJSON(out); err != nil {
			fmt.Fprintf(os.Stderr, "skydist: events: %v\n", err)
			os.Exit(1)
		}
	}
	for _, ws := range rep.Wire {
		w := obs.L("worker", ws.Addr)
		reg.Counter("zsky_rpc_wire_bytes_total", w, obs.L("dir", "sent")).Add(ws.Sent)
		reg.Counter("zsky_rpc_wire_bytes_total", w, obs.L("dir", "recv")).Add(ws.Recv)
	}
	if *trace {
		obs.WriteReport(os.Stderr, tr, reg)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, p := range sky {
		for i, v := range p {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		w.WriteByte('\n')
	}
	if *report {
		fmt.Fprintf(os.Stderr,
			"workers=%d groups=%d partitions=%d\n"+
				"points=%d skyline=%d candidates=%d filtered=%d\n"+
				"preprocess=%v phase2=%v phase3=%v total=%v\n",
			rep.Workers, rep.Groups, rep.Partitions,
			inputSize, len(sky), rep.Candidates, rep.Filtered,
			rep.Preprocess.Round(1000), rep.Phase2.Round(1000), rep.Phase3.Round(1000), rep.Total.Round(1000))
	}
}
