// Command skydist coordinates a distributed skyline query across
// skyworker processes: phase 1 runs here (sampling, Z-order
// partitioning, ZDG/ZHG grouping), phases 2 and 3 run on the workers
// over TCP.
//
// Usage:
//
//	skyworker -listen :7071 & skyworker -listen :7072 &
//	skygen -dist anti -n 200000 -d 5 > anti.csv
//	skydist -workers localhost:7071,localhost:7072 -in anti.csv -report
//
// With -shard-groups, skydist instead runs the sharded cluster tier:
// worker groups own contiguous Z-ranges of the dataset, the input is
// inserted (routed + replicated) rather than streamed per query, and
// -handoff moves a shard between groups while the query loop runs —
// a rolling rebalance. See docs/CLUSTER.md.
//
//	skyworker -listen :7071 & skyworker -listen :7072 &
//	skyworker -listen :7073 & skyworker -listen :7074 &
//	skydist -shard-groups 'localhost:7071,localhost:7072;localhost:7073,localhost:7074' \
//	        -in anti.csv -handoff 0:1 -queries 4 -shard-report
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"zskyline/internal/codec"
	"zskyline/internal/dist"
	dominancepkg "zskyline/internal/dominance"
	"zskyline/internal/obs"
	"zskyline/internal/point"
)

func main() {
	var (
		workers   = flag.String("workers", "", "comma-separated worker addresses (required)")
		in        = flag.String("in", "-", "input file ('-' for stdin)")
		format    = flag.String("format", "csv", "input format: csv|binary")
		m         = flag.Int("m", 32, "number of groups")
		ratio     = flag.Float64("sample", 0.02, "sampling ratio")
		heuristic = flag.Bool("zhg", false, "use heuristic grouping instead of dominance-based")
		useSB     = flag.Bool("sb", false, "use sort-based local skylines instead of Z-search")
		seed      = flag.Int64("seed", 42, "sampling seed")
		dominance = flag.String("dominance", "pareto", "dominance relation: pareto | flex:w1,w2;... | kdom:k | robust:rho")
		report    = flag.Bool("report", false, "print the run report to stderr")
		stream    = flag.Bool("stream", false, "stream a ZSKY binary file to the workers without loading it (requires -format binary and a file path)")
		trace     = flag.Bool("trace", false, "print a per-run trace report (phase + RPC spans, wire bytes) to stderr")
		metrics_  = flag.String("metrics-addr", "", "serve GET /metrics and /debug/pprof/ on this address during the run")
		rpcTO     = flag.Duration("rpc-timeout", 0, "per-attempt RPC deadline (0 = default 15s, negative = no deadline)")
		retries   = flag.Int("retries", 0, "retries after a failed RPC attempt (0 = default 3, negative = none)")
		hedge     = flag.Duration("hedge", 0, "duplicate straggling reduce/merge RPCs on a second worker after this delay (0 = off)")
		redial    = flag.Duration("redial-interval", 0, "interval between redials of suspect/dead workers (0 = default 500ms, negative = off)")
		eventsOut = flag.String("events-out", "", "write the run's event log (query + per-RPC records) as NDJSON to this file ('-' for stderr)")

		shardGroups = flag.String("shard-groups", "", "sharded cluster mode: worker groups as 'a,b;c,d' (comma inside a group, semicolon between groups)")
		shards      = flag.Int("shards", 0, "shard count in cluster mode (0 = one per group)")
		handoff     = flag.String("handoff", "", "run a rolling handoff 'shardID:toGroup' concurrently with the query loop (cluster mode)")
		queries     = flag.Int("queries", 1, "number of skyline queries to run in cluster mode")
		shardReport = flag.Bool("shard-report", false, "print the shard map and per-worker residency to stderr (cluster mode)")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	if *metrics_ != "" {
		addr, stopMetrics, err := obs.ServeMetrics(*metrics_, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skydist: %v\n", err)
			os.Exit(1)
		}
		defer stopMetrics()
		fmt.Fprintf(os.Stderr, "skydist: metrics on http://%s/metrics\n", addr)
	}

	desc0, err := dominancepkg.ParseDescriptor(*dominance)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skydist: %v\n", err)
		os.Exit(2)
	}

	if *shardGroups != "" {
		runCluster(clusterRun{
			groups: *shardGroups, shards: *shards, handoff: *handoff,
			queries: *queries, shardReport: *shardReport,
			in: *in, format: *format, useSB: *useSB, seed: *seed,
			dominance: desc0, rpcTO: *rpcTO, retries: *retries,
			hedge: *hedge, redial: *redial,
			report: *report, eventsOut: *eventsOut, reg: reg,
		})
		return
	}

	if *workers == "" {
		fmt.Fprintln(os.Stderr, "skydist: -workers or -shard-groups is required")
		os.Exit(2)
	}
	addrs := strings.Split(*workers, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}

	cfg := dist.DefaultCoordinatorConfig()
	cfg.M = *m
	cfg.SampleRatio = *ratio
	cfg.Heuristic = *heuristic
	cfg.UseZS = !*useSB
	cfg.Seed = *seed
	desc, err := dominancepkg.ParseDescriptor(*dominance)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skydist: %v\n", err)
		os.Exit(2)
	}
	cfg.Dominance = desc
	cfg.RPCTimeout = *rpcTO
	cfg.Retries = *retries
	cfg.Hedge = *hedge
	cfg.RedialInterval = *redial
	cfg.Metrics = reg
	coord, err := dist.NewCoordinator(cfg, addrs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skydist: %v\n", err)
		os.Exit(1)
	}
	defer coord.Close()

	ctx := context.Background()
	var tr *obs.Trace
	if *trace {
		tr = obs.NewTrace("skydist-query")
		ctx = obs.ContextWithTrace(ctx, tr)
	}

	var sky []point.Point
	var rep *dist.Report
	var inputSize int
	if *stream {
		if *format != "binary" || *in == "-" {
			fmt.Fprintln(os.Stderr, "skydist: -stream requires -format binary and a file path")
			os.Exit(2)
		}
		sky, rep, err = coord.SkylineFile(ctx, *in)
	} else {
		r := os.Stdin
		if *in != "-" {
			f, ferr := os.Open(*in)
			if ferr != nil {
				fmt.Fprintf(os.Stderr, "skydist: %v\n", ferr)
				os.Exit(1)
			}
			defer f.Close()
			r = f
		}
		var ds *point.Dataset
		switch *format {
		case "csv":
			ds, err = codec.ReadCSV(r)
		case "binary":
			ds, err = codec.ReadBinary(r)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "skydist: %v\n", err)
			os.Exit(1)
		}
		inputSize = ds.Len()
		sky, rep, err = coord.Skyline(ctx, ds)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "skydist: %v\n", err)
		os.Exit(1)
	}
	tr.Finish()
	if *eventsOut != "" {
		out := os.Stderr
		if *eventsOut != "-" {
			f, ferr := os.Create(*eventsOut)
			if ferr != nil {
				fmt.Fprintf(os.Stderr, "skydist: %v\n", ferr)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := coord.Events().WriteNDJSON(out); err != nil {
			fmt.Fprintf(os.Stderr, "skydist: events: %v\n", err)
			os.Exit(1)
		}
	}
	for _, ws := range rep.Wire {
		w := obs.L("worker", ws.Addr)
		reg.Counter("zsky_rpc_wire_bytes_total", w, obs.L("dir", "sent")).Add(ws.Sent)
		reg.Counter("zsky_rpc_wire_bytes_total", w, obs.L("dir", "recv")).Add(ws.Recv)
	}
	if *trace {
		obs.WriteReport(os.Stderr, tr, reg)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, p := range sky {
		for i, v := range p {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		w.WriteByte('\n')
	}
	if *report {
		fmt.Fprintf(os.Stderr,
			"workers=%d groups=%d partitions=%d\n"+
				"points=%d skyline=%d candidates=%d filtered=%d\n"+
				"preprocess=%v phase2=%v phase3=%v total=%v\n",
			rep.Workers, rep.Groups, rep.Partitions,
			inputSize, len(sky), rep.Candidates, rep.Filtered,
			rep.Preprocess.Round(1000), rep.Phase2.Round(1000), rep.Phase3.Round(1000), rep.Total.Round(1000))
	}
}

// clusterRun carries the flag values the sharded mode consumes.
type clusterRun struct {
	groups      string
	shards      int
	handoff     string
	queries     int
	shardReport bool
	in, format  string
	useSB       bool
	seed        int64
	dominance   dominancepkg.Descriptor
	rpcTO       time.Duration
	retries     int
	hedge       time.Duration
	redial      time.Duration
	report      bool
	eventsOut   string
	reg         *obs.Registry
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "skydist: "+format+"\n", args...)
	os.Exit(1)
}

// runCluster drives the sharded tier: build the cluster, insert the
// dataset, run the query loop (with an optional concurrent rolling
// handoff), and print the final skyline to stdout.
func runCluster(rc clusterRun) {
	var groups [][]string
	for _, g := range strings.Split(rc.groups, ";") {
		var members []string
		for _, a := range strings.Split(g, ",") {
			if a = strings.TrimSpace(a); a != "" {
				members = append(members, a)
			}
		}
		if len(members) > 0 {
			groups = append(groups, members)
		}
	}

	r := os.Stdin
	if rc.in != "-" {
		f, err := os.Open(rc.in)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	}
	var ds *point.Dataset
	var err error
	switch rc.format {
	case "csv":
		ds, err = codec.ReadCSV(r)
	case "binary":
		ds, err = codec.ReadBinary(r)
	default:
		err = fmt.Errorf("unknown format %q", rc.format)
	}
	if err != nil {
		fatalf("%v", err)
	}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		fatalf("%v", err)
	}

	cfg := dist.ClusterConfig{
		Mins: mins, Maxs: maxs,
		UseZS: !rc.useSB, Dominance: rc.dominance,
		Shards:  rc.shards,
		RPCTimeout: rc.rpcTO, Retries: rc.retries, Hedge: rc.hedge,
		RedialInterval: rc.redial,
		Metrics:        rc.reg, Seed: rc.seed,
	}
	ctx := context.Background()
	c, err := dist.NewCluster(ctx, cfg, groups)
	if err != nil {
		fatalf("%v", err)
	}
	defer c.Close()

	const batch = 4096
	for lo := 0; lo < ds.Len(); lo += batch {
		hi := lo + batch
		if hi > ds.Len() {
			hi = ds.Len()
		}
		if err := c.Insert(ctx, ds.Points[lo:hi]); err != nil {
			fatalf("insert: %v", err)
		}
	}

	// Optional rolling handoff, concurrent with the query loop.
	handoffDone := make(chan error, 1)
	if rc.handoff != "" {
		var sid, to int
		if _, err := fmt.Sscanf(rc.handoff, "%d:%d", &sid, &to); err != nil {
			fatalf("bad -handoff %q (want shardID:toGroup): %v", rc.handoff, err)
		}
		go func() {
			rep, err := c.Handoff(ctx, sid, to)
			if err == nil {
				fmt.Fprintf(os.Stderr, "skydist: handoff shard=%d %d->%d rows=%d replicas=%d v=%d\n",
					rep.Shard, rep.FromGroup, rep.ToGroup, rep.Rows, rep.Replicas, rep.MapVersion)
			}
			handoffDone <- err
		}()
	} else {
		handoffDone <- nil
	}

	var sky []point.Point
	var rep *dist.ClusterReport
	n := rc.queries
	if n < 1 {
		n = 1
	}
	for q := 0; q < n; q++ {
		sky, rep, err = c.Skyline(ctx)
		if err != nil {
			fatalf("query %d: %v", q, err)
		}
	}
	if err := <-handoffDone; err != nil {
		fatalf("handoff: %v", err)
	}
	// One more query after the handoff settles, so stdout reflects the
	// post-rebalance map.
	if rc.handoff != "" {
		sky, rep, err = c.Skyline(ctx)
		if err != nil {
			fatalf("final query: %v", err)
		}
	}

	if rc.eventsOut != "" {
		out := os.Stderr
		if rc.eventsOut != "-" {
			f, err := os.Create(rc.eventsOut)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			out = f
		}
		if err := c.Events().WriteNDJSON(out); err != nil {
			fatalf("events: %v", err)
		}
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, p := range sky {
		for i, v := range p {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		w.WriteByte('\n')
	}

	if rc.shardReport {
		m := c.Map()
		fmt.Fprintf(os.Stderr, "shard map v%d: %d shards over %d groups\n",
			m.Version, m.NumShards(), c.Groups())
		rows := c.ShardRows()
		for _, s := range m.Shards {
			fmt.Fprintf(os.Stderr, "  shard %d -> group %d (%d rows)\n", s.ID, s.Group, rows[s.ID])
		}
		for addr, st := range c.ShardStats(ctx) {
			fmt.Fprintf(os.Stderr, "  worker %s v%d:", addr, st.MapVersion)
			for id, n := range st.Rows {
				fmt.Fprintf(os.Stderr, " shard%d=%d", id, n)
			}
			fmt.Fprintln(os.Stderr)
		}
	}
	if rc.report {
		fmt.Fprintf(os.Stderr, "groups=%d shards=%d routed=%d mapversion=%d\npoints=%d skyline=%d queries=%d\n",
			c.Groups(), rep.Shards, rep.Routed, rep.MapVersion, ds.Len(), len(sky), n)
	}
}
