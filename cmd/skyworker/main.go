// Command skyworker runs one distributed skyline worker: an RPC server
// that executes phase-2 map/combine/reduce and phase-3 Z-merge work
// shipped to it by a skydist coordinator.
//
// Usage:
//
//	skyworker -listen :7071 &
//	skyworker -listen :7072 &
//	skydist -workers localhost:7071,localhost:7072 -in data.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"zskyline/internal/dist"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7071", "address to listen on")
	flag.Parse()

	ws, err := dist.StartWorker(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyworker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("skyworker listening on %s\n", ws.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("skyworker: shutting down")
	if err := ws.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "skyworker: close: %v\n", err)
		os.Exit(1)
	}
}
