// Command skyworker runs one distributed skyline worker: an RPC server
// that executes phase-2 map/combine/reduce and phase-3 Z-merge work
// shipped to it by a skydist coordinator.
//
// Usage:
//
//	skyworker -listen :7071 &
//	skyworker -listen :7072 &
//	skydist -workers localhost:7071,localhost:7072 -in data.csv
//
// -metrics-addr serves the worker's RPC counters (request counts,
// request/response bytes, latency histograms per method) in Prometheus
// text format, plus /debug/pprof/; -trace prints the same counters as
// a report on shutdown.
//
// -fault arms a deterministic fault-injection plan (delay, drop, or
// sever the Nth call of an RPC method) for chaos-drilling a
// coordinator's retry/hedging/resurrection machinery; see
// docs/OPERATIONS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"zskyline/internal/dist"
	"zskyline/internal/obs"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7071", "address to listen on")
		trace    = flag.Bool("trace", false, "print the worker's RPC counter report to stderr on shutdown")
		metrics_ = flag.String("metrics-addr", "", "serve GET /metrics and /debug/pprof/ on this address")
		fault    = flag.String("fault", "", "deterministic fault plan for chaos drills, e.g. 'Worker.MergeGroups:1:delay:2s,Worker.MapChunk:2x3:sever,Worker.ReduceGroup:1:drop'")
		maxRes   = flag.Int("max-resident", 0, "cap resident rows per shard in cluster mode; stores past the cap are rejected (0 = unlimited)")
	)
	flag.Parse()

	var faults *dist.FaultPlan
	if *fault != "" {
		fp, perr := dist.ParseFaultPlan(*fault)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "skyworker: %v\n", perr)
			os.Exit(2)
		}
		faults = fp
		fmt.Fprintf(os.Stderr, "skyworker: fault injection armed: %s\n", *fault)
	}
	ws, err := dist.StartWorkerWithOptions(*listen, dist.WorkerOptions{Faults: faults, MaxResidentRows: *maxRes})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyworker: %v\n", err)
		os.Exit(1)
	}
	if *metrics_ != "" {
		addr, stopMetrics, merr := obs.ServeMetrics(*metrics_, ws.Metrics())
		if merr != nil {
			fmt.Fprintf(os.Stderr, "skyworker: %v\n", merr)
			os.Exit(1)
		}
		defer stopMetrics()
		fmt.Printf("skyworker: metrics on http://%s/metrics\n", addr)
	}
	fmt.Printf("skyworker listening on %s\n", ws.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("skyworker: shutting down")
	if *trace {
		obs.WriteReport(os.Stderr, nil, ws.Metrics())
	}
	if err := ws.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "skyworker: close: %v\n", err)
		os.Exit(1)
	}
}
