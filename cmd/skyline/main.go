// Command skyline computes the skyline of a CSV dataset (one point per
// line, comma-separated coordinates; smaller is better in every
// dimension) using the parallel three-phase pipeline.
//
// Usage:
//
//	skygen -dist anti -n 100000 -d 5 > anti.csv
//	skyline -in anti.csv -strategy zdg -local zs -merge zm -m 32
//
// The report flag prints the pipeline's phase timings, candidate
// counts, shuffle volume and balance statistics.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"zskyline/internal/codec"
	"zskyline/internal/core"
	"zskyline/internal/obs"
	"zskyline/internal/ooc"
	"zskyline/internal/point"
)

func parseStrategy(s string) (core.Strategy, error) {
	switch strings.ToLower(s) {
	case "grid":
		return core.Grid, nil
	case "angle":
		return core.Angle, nil
	case "random":
		return core.Random, nil
	case "naivez", "naive-z":
		return core.NaiveZ, nil
	case "zhg":
		return core.ZHG, nil
	case "zdg":
		return core.ZDG, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func main() {
	var (
		in       = flag.String("in", "-", "input file ('-' for stdin)")
		strategy = flag.String("strategy", "zdg", "grid|angle|random|naivez|zhg|zdg")
		local    = flag.String("local", "zs", "local skyline algorithm: sb|zs")
		merge    = flag.String("merge", "zm", "merge algorithm: sb|zs|zm")
		m        = flag.Int("m", 32, "number of groups")
		workers  = flag.Int("workers", 8, "simulated cluster worker slots")
		ratio    = flag.Float64("sample", 0.02, "sampling ratio")
		seed     = flag.Int64("seed", 42, "sampling seed")
		report   = flag.Bool("report", false, "print the pipeline report to stderr")
		format   = flag.String("format", "csv", "input format: csv|binary")
		oocBatch = flag.Int("ooc", 0, "out-of-core mode: stream a binary file in batches of this size (0 = load fully)")
		trace    = flag.Bool("trace", false, "print a per-run trace report (phase spans + counters) to stderr")
		metrics_ = flag.String("metrics-addr", "", "serve GET /metrics and /debug/pprof/ on this address during the run")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	if *metrics_ != "" {
		addr, stopMetrics, err := obs.ServeMetrics(*metrics_, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skyline: %v\n", err)
			os.Exit(1)
		}
		defer stopMetrics()
		fmt.Fprintf(os.Stderr, "skyline: metrics on http://%s/metrics\n", addr)
	}

	if *oocBatch > 0 {
		if *format != "binary" || *in == "-" {
			fmt.Fprintln(os.Stderr, "skyline: -ooc requires -format binary and a file path")
			os.Exit(2)
		}
		sky, err := ooc.SkylineFile(*in, ooc.Options{BatchSize: *oocBatch})
		if err != nil {
			fmt.Fprintf(os.Stderr, "skyline: %v\n", err)
			os.Exit(1)
		}
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, p := range sky {
			for i, v := range p {
				if i > 0 {
					w.WriteByte(',')
				}
				w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
			w.WriteByte('\n')
		}
		return
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skyline: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	var ds *point.Dataset
	var err error
	switch *format {
	case "csv":
		ds, err = codec.ReadCSV(r)
	case "binary":
		ds, err = codec.ReadBinary(r)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyline: %v\n", err)
		os.Exit(1)
	}
	if ds.Len() == 0 {
		return
	}

	st, err := parseStrategy(*strategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyline: %v\n", err)
		os.Exit(2)
	}
	cfg := core.Defaults()
	cfg.Strategy = st
	cfg.M = *m
	cfg.Workers = *workers
	cfg.SampleRatio = *ratio
	cfg.Seed = *seed
	if strings.EqualFold(*local, "sb") {
		cfg.Local = core.SB
	}
	switch strings.ToLower(*merge) {
	case "sb":
		cfg.Merge = core.MergeSB
	case "zs":
		cfg.Merge = core.MergeZS
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyline: %v\n", err)
		os.Exit(2)
	}
	ctx := context.Background()
	var tr *obs.Trace
	if *trace {
		tr = obs.NewTrace("skyline-query")
		ctx = obs.ContextWithTrace(ctx, tr)
	}
	sky, rep, err := eng.Skyline(ctx, ds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyline: %v\n", err)
		os.Exit(1)
	}
	tr.Finish()
	reg.AbsorbTally(rep.Tally)
	reg.AbsorbJobStats(rep.Job1)
	reg.AbsorbJobStats(rep.Job2)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, p := range sky {
		for i, v := range p {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		w.WriteByte('\n')
	}
	if *trace {
		obs.WriteReport(os.Stderr, tr, reg)
	}
	if *report {
		fmt.Fprintf(os.Stderr,
			"strategy=%v local=%v merge=%v\n"+
				"points=%d skyline=%d candidates=%d filtered=%d\n"+
				"groups=%d partitions=%d pruned=%d sample=%d\n"+
				"preprocess=%v phase2=%v phase3=%v total=%v\n"+
				"shuffleBytes=%d dominanceTests=%d regionTests=%d\n"+
				"candidateBalance: %v\n",
			rep.Strategy, rep.Local, rep.Merge,
			ds.Len(), rep.SkylineSize, rep.Candidates, rep.MapperFiltered,
			rep.Groups, rep.Partitions, rep.PrunedPartitions, rep.SampleSize,
			rep.Preprocess.Round(1000), rep.Phase2.Round(1000), rep.Phase3.Round(1000), rep.Total.Round(1000),
			rep.Job1.ShuffleBytes+rep.Job2.ShuffleBytes, rep.Tally.DominanceTests, rep.Tally.RegionTests,
			rep.CandidateBalance())
	}
}
