// Command skybench regenerates the paper's evaluation tables and
// figures (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	skybench -run all                 # every figure, laptop scale
//	skybench -run fig7a,fig12 -scale 0.2
//	skybench -run fig13 -csv          # machine-readable output
//
// The -scale flag multiplies every dataset size; 1.0 corresponds to
// the paper's sizes divided by 1000.
//
// -trace wraps each experiment in a span and prints the run's trace
// report to stderr; -metrics-addr serves GET /metrics and
// /debug/pprof/ for the duration of the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"zskyline/internal/exp"
	"zskyline/internal/obs"
)

func main() {
	var (
		run       = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale     = flag.Float64("scale", 1.0, "dataset size multiplier")
		workers   = flag.Int("workers", 8, "simulated cluster worker slots")
		seed      = flag.Int64("seed", 42, "generator seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		netMBps   = flag.Float64("net-mbps", 0, "simulated shuffle bandwidth in MB/s (0 = free in-process shuffle)")
		overhead  = flag.Int("task-overhead-ms", 0, "simulated per-task startup cost in ms")
		list      = flag.Bool("list", false, "list available experiments and exit")
		outdir    = flag.String("outdir", "", "also write each experiment's table as <outdir>/<id>.csv")
		trace     = flag.Bool("trace", false, "print a per-run trace report (one span tree per experiment) to stderr")
		metrics_  = flag.String("metrics-addr", "", "serve GET /metrics and /debug/pprof/ on this address during the run")
		benchTag  = flag.String("bench-tag", "", "run the pinned cross-executor benchmark suite and write BENCH_<tag>.json to -outdir (default: current directory)")
		benchCfgs = flag.String("bench-configs", "", "comma-separated named bench configs (small|medium|large; default all three)")
		checkBase = flag.String("check-against", "", "compare the fresh -bench-tag run (or -check-file) against this baseline BENCH_*.json; any regression beyond the tolerance bands exits non-zero")
		checkFile = flag.String("check-file", "", "compare this existing BENCH_*.json against -check-against instead of running the suite")
		wallTol   = flag.Float64("check-wall-tol", 1.5, "wall-clock regression band: current may be at most base × this (bases under 1ms are skipped as noise)")
		allocTol  = flag.Float64("check-alloc-tol", 1.4, "allocation-count regression band")
		wireTol   = flag.Float64("check-wire-tol", 1.3, "wire-byte regression band")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %-10s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return
	}

	tol := checkTolerances{wall: *wallTol, allocs: *allocTol, wire: *wireTol}
	if *checkFile != "" {
		if *checkBase == "" {
			fmt.Fprintln(os.Stderr, "skybench: -check-file requires -check-against")
			os.Exit(2)
		}
		cur, err := loadBenchReport(*checkFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
			os.Exit(1)
		}
		ok, err := runCheck(*checkBase, cur, tol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	if *benchTag != "" {
		rep, err := runBenchSuite(*benchTag, *benchCfgs, *workers, *seed, *outdir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
			os.Exit(1)
		}
		if *checkBase != "" {
			ok, err := runCheck(*checkBase, rep, tol)
			if err != nil {
				fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
				os.Exit(1)
			}
			if !ok {
				os.Exit(1)
			}
		}
		return
	}
	if *checkBase != "" {
		fmt.Fprintln(os.Stderr, "skybench: -check-against requires -bench-tag or -check-file")
		os.Exit(2)
	}

	var selected []exp.Experiment
	if *run == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := exp.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "skybench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	reg := obs.NewRegistry()
	if *metrics_ != "" {
		addr, stopMetrics, err := obs.ServeMetrics(*metrics_, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
			os.Exit(1)
		}
		defer stopMetrics()
		fmt.Fprintf(os.Stderr, "skybench: metrics on http://%s/metrics\n", addr)
	}

	params := exp.Params{Scale: *scale, Workers: *workers, Seed: *seed,
		NetworkMBps: *netMBps, TaskOverheadMs: *overhead}
	ctx := context.Background()
	var tr *obs.Trace
	if *trace {
		tr = obs.NewTrace("skybench")
		ctx = obs.ContextWithTrace(ctx, tr)
	}
	for _, e := range selected {
		start := time.Now()
		expSpan, ectx := obs.StartSpan(ctx, "exp/"+e.ID)
		table, err := e.Run(ectx, params)
		expSpan.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		expSpan.SetAttr("rows", len(table.Rows))
		if *csv {
			fmt.Printf("# %s — %s\n%s\n", table.ID, table.Title, table.CSV())
		} else {
			fmt.Println(table.Format())
			fmt.Printf("   (%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*outdir, table.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if *trace {
		tr.Finish()
		obs.WriteReport(os.Stderr, tr, reg)
	}
}
