package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func gateFixture() *benchReport {
	return &benchReport{
		Tag:       "base",
		GoVersion: "go1.22",
		Configs: []benchConfig{
			{
				Name:    "small",
				Dataset: benchDataset{Distribution: "anti", Points: 2500, Dims: 5, Seed: 42},
				Executors: []benchExecutor{
					{Executor: "core", WallMS: 20, Allocs: 25000, AllocBytes: 1 << 20, SkylineSize: 600},
					{Executor: "parallel", WallMS: 11, Allocs: 1100, AllocBytes: 1 << 19, SkylineSize: 600},
					{Executor: "dist", WallMS: 16, Allocs: 15000, AllocBytes: 1 << 21,
						WireSentBytes: 250000, WireRecvBytes: 160000, SkylineSize: 600},
				},
				MapPath: benchMapPath{Points: 2500, Dims: 5, AllocsPerOpPoints: 5000, AllocsPerOpBlock: 40, Ratio: 125},
			},
		},
	}
}

func cloneReport(t *testing.T, rep *benchReport) *benchReport {
	t.Helper()
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var out benchReport
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

var gateTol = checkTolerances{wall: 1.5, allocs: 1.4, wire: 1.3}

func TestCheckIdentityPasses(t *testing.T) {
	base := gateFixture()
	if v := compareBenchReports(base, cloneReport(t, base), gateTol); len(v) != 0 {
		t.Fatalf("identity comparison flagged: %v", v)
	}
}

func TestCheckWallRegressionFails(t *testing.T) {
	base := gateFixture()
	cur := cloneReport(t, base)
	// The acceptance scenario: an injected 2× wall regression on one
	// executor must trip the gate.
	cur.Configs[0].Executors[1].WallMS *= 2
	v := compareBenchReports(base, cur, gateTol)
	if len(v) != 1 || !strings.Contains(v[0], "small/parallel: wall") {
		t.Fatalf("violations = %v, want one wall regression on small/parallel", v)
	}
}

func TestCheckTinyWallSkipped(t *testing.T) {
	base := gateFixture()
	base.Configs[0].Executors[0].WallMS = 0.4 // under minCheckWallMS
	cur := cloneReport(t, base)
	cur.Configs[0].Executors[0].WallMS = 0.9 // >2× but pure noise at this size
	if v := compareBenchReports(base, cur, gateTol); len(v) != 0 {
		t.Fatalf("sub-millisecond wall compared: %v", v)
	}
}

func TestCheckAllocAndWireRegressionsFail(t *testing.T) {
	base := gateFixture()
	cur := cloneReport(t, base)
	cur.Configs[0].Executors[0].Allocs *= 2
	cur.Configs[0].Executors[2].WireSentBytes *= 2
	cur.Configs[0].MapPath.AllocsPerOpBlock *= 3
	v := compareBenchReports(base, cur, gateTol)
	if len(v) != 3 {
		t.Fatalf("violations = %v, want alloc + wire + map-path", v)
	}
	joined := strings.Join(v, "\n")
	for _, want := range []string{"allocs 50000", "wire sent", "map-path block allocs/op"} {
		if !strings.Contains(joined, want) {
			t.Errorf("violations missing %q:\n%s", want, joined)
		}
	}
}

func TestCheckWithinTolerancePasses(t *testing.T) {
	base := gateFixture()
	cur := cloneReport(t, base)
	// 1.3× wall and 1.2× allocs sit inside the 1.5/1.4 bands.
	cur.Configs[0].Executors[0].WallMS *= 1.3
	cur.Configs[0].Executors[0].Allocs = uint64(float64(base.Configs[0].Executors[0].Allocs) * 1.2)
	if v := compareBenchReports(base, cur, gateTol); len(v) != 0 {
		t.Fatalf("in-band drift flagged: %v", v)
	}
}

func TestCheckSubsetRunAgainstFullBaseline(t *testing.T) {
	// CI runs only "small"; the committed baseline holds all three
	// configs. The gate compares the intersection and passes.
	base := gateFixture()
	base.Configs = append(base.Configs, benchConfig{
		Name:      "medium",
		Executors: []benchExecutor{{Executor: "core", WallMS: 200, Allocs: 1 << 20}},
	})
	cur := cloneReport(t, gateFixture())
	if v := compareBenchReports(base, cur, gateTol); len(v) != 0 {
		t.Fatalf("subset run flagged: %v", v)
	}
}

func TestCheckNoOverlapFails(t *testing.T) {
	base := gateFixture()
	cur := cloneReport(t, base)
	cur.Configs[0].Name = "renamed"
	v := compareBenchReports(base, cur, gateTol)
	if len(v) != 1 || !strings.Contains(v[0], "no overlapping") {
		t.Fatalf("violations = %v, want a no-overlap failure", v)
	}
}

func TestLoadBenchReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_x.json")
	blob, err := json.Marshal(gateFixture())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := loadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tag != "base" || len(rep.Configs) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if _, err := loadBenchReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if err := os.WriteFile(path, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBenchReport(path); err == nil {
		t.Error("empty report accepted")
	}
}
