package main

// Benchmark-suite mode (-bench-tag): fixed named dataset configs
// (small / medium / large, all pinned — never scaled) pushed through
// all three executors — the in-process MapReduce simulator, the
// shared-memory parallel path, and the TCP coordinator against
// loopback workers — with wall clock, allocation, wire-byte, and
// skyline-size measurements for every config written to one
// BENCH_<tag>.json. Pinned sizes make the numbers comparable across
// commits; CI uploads the file as an artifact so the repo's perf
// trajectory accumulates.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"zskyline/internal/core"
	"zskyline/internal/dist"
	"zskyline/internal/gen"
	"zskyline/internal/parallel"
	"zskyline/internal/plan"
	"zskyline/internal/point"
	"zskyline/internal/sample"
)

type benchDataset struct {
	Distribution string `json:"distribution"`
	Points       int    `json:"points"`
	Dims         int    `json:"dims"`
	Seed         int64  `json:"seed"`
}

// benchSizes are the pinned named configurations. The sizes are part
// of the measurement contract: changing them breaks cross-commit
// comparability, so add a new name instead of editing one.
var benchSizes = map[string]int{
	"small":  2500,
	"medium": 20000,
	"large":  50000,
}

// benchConfigOrder fixes the emission order of the named configs.
var benchConfigOrder = []string{"small", "medium", "large"}

type benchExecutor struct {
	Executor      string  `json:"executor"`
	WallMS        float64 `json:"wall_ms"`
	Allocs        uint64  `json:"allocs"`
	AllocBytes    uint64  `json:"alloc_bytes"`
	WireSentBytes int64   `json:"wire_sent_bytes"`
	WireRecvBytes int64   `json:"wire_recv_bytes"`
	SkylineSize   int     `json:"skyline_size"`
}

// benchMapPath is the phase-2 map-path allocation comparison: the
// per-point MapChunk against the flat MapBlock over identical data
// (the tentpole's ≥5× target, same fixture as bench_test.go).
type benchMapPath struct {
	Points            int     `json:"points"`
	Dims              int     `json:"dims"`
	AllocsPerOpPoints float64 `json:"allocs_per_op_points"`
	AllocsPerOpBlock  float64 `json:"allocs_per_op_block"`
	Ratio             float64 `json:"ratio"`
}

// benchConfig is one named config's full measurement set.
type benchConfig struct {
	Name      string          `json:"name"`
	Dataset   benchDataset    `json:"dataset"`
	Executors []benchExecutor `json:"executors"`
	MapPath   benchMapPath    `json:"map_path"`
}

type benchReport struct {
	Tag       string        `json:"tag"`
	GoVersion string        `json:"go_version"`
	Configs   []benchConfig `json:"configs"`
}

// measure runs f once and records wall clock plus heap-allocation
// deltas. Single-shot numbers are noisier than testing.B loops but
// cheap enough for a CI smoke job, and alloc counts are deterministic
// enough to track trends.
func measure(name string, f func() (sky int, err error)) (benchExecutor, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	sky, err := f()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return benchExecutor{}, fmt.Errorf("%s: %w", name, err)
	}
	return benchExecutor{
		Executor:    name,
		WallMS:      float64(wall.Microseconds()) / 1000,
		Allocs:      after.Mallocs - before.Mallocs,
		AllocBytes:  after.TotalAlloc - before.TotalAlloc,
		SkylineSize: sky,
	}, nil
}

func runBenchSuite(tag, configs string, workers int, seed int64, outdir string) (*benchReport, error) {
	if strings.ContainsAny(tag, "/\\ ") {
		return nil, fmt.Errorf("bench tag %q must be a plain filename fragment", tag)
	}
	names := benchConfigOrder
	if configs != "" {
		names = nil
		for _, name := range strings.Split(configs, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := benchSizes[name]; !ok {
				return nil, fmt.Errorf("unknown bench config %q (have small, medium, large)", name)
			}
			names = append(names, name)
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("no bench configs selected")
		}
	}
	rep := benchReport{Tag: tag, GoVersion: runtime.Version()}
	for _, name := range names {
		cfg, err := runBenchConfig(name, benchSizes[name], workers, seed)
		if err != nil {
			return nil, fmt.Errorf("config %s: %w", name, err)
		}
		rep.Configs = append(rep.Configs, cfg)
	}

	dir := outdir
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "BENCH_"+tag+".json")
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "skybench: wrote %s\n", path)
	return &rep, nil
}

// runBenchConfig measures one pinned config through every executor.
func runBenchConfig(name string, n, workers int, seed int64) (benchConfig, error) {
	const d = 5
	ds := gen.Synthetic(gen.AntiCorrelated, n, d, seed)
	ctx := context.Background()
	rep := benchConfig{
		Name:    name,
		Dataset: benchDataset{Distribution: gen.AntiCorrelated.String(), Points: n, Dims: d, Seed: seed},
	}

	// Executor 1: the fused MapReduce simulator.
	res, err := measure("core", func() (int, error) {
		cfg := core.Defaults()
		cfg.Workers = workers
		cfg.Seed = seed
		eng, err := core.NewEngine(cfg)
		if err != nil {
			return 0, err
		}
		sky, _, err := eng.Skyline(ctx, ds)
		return len(sky), err
	})
	if err != nil {
		return benchConfig{}, err
	}
	rep.Executors = append(rep.Executors, res)

	// Executor 2: the shared-memory shard-and-merge path.
	res, err = measure("parallel", func() (int, error) {
		sky, err := parallel.Skyline(ctx, ds, parallel.Options{Workers: workers})
		return len(sky), err
	})
	if err != nil {
		return benchConfig{}, err
	}
	rep.Executors = append(rep.Executors, res)

	// Executor 3: the TCP coordinator over loopback workers. Wire
	// totals cover the whole run — rule broadcast, block chunks, and
	// merge replies — which is the communication-volume number the
	// block framing is meant to shrink.
	var wss []*dist.WorkerServer
	defer func() {
		for _, ws := range wss {
			ws.Close()
		}
	}()
	addrs := make([]string, 2)
	for i := range addrs {
		ws, err := dist.StartWorker("127.0.0.1:0")
		if err != nil {
			return benchConfig{}, err
		}
		wss = append(wss, ws)
		addrs[i] = ws.Addr()
	}
	var wire []dist.WireStat
	res, err = measure("dist", func() (int, error) {
		cfg := dist.DefaultCoordinatorConfig()
		cfg.Seed = seed
		coord, err := dist.NewCoordinator(cfg, addrs)
		if err != nil {
			return 0, err
		}
		defer coord.Close()
		sky, _, err := coord.Skyline(ctx, ds)
		wire = coord.WireStats()
		return len(sky), err
	})
	if err != nil {
		return benchConfig{}, err
	}
	for _, w := range wire {
		res.WireSentBytes += w.Sent
		res.WireRecvBytes += w.Recv
	}
	rep.Executors = append(rep.Executors, res)

	mp, err := measureMapPath(ds, seed)
	if err != nil {
		return benchConfig{}, err
	}
	rep.MapPath = mp
	return rep, nil
}

// measureMapPath mirrors bench_test.go's mapPhaseFixture: SB locally
// so the allocs/op delta isolates the map/route path itself.
func measureMapPath(ds *point.Dataset, seed int64) (benchMapPath, error) {
	smp, err := sample.Ratio(ds.Points, 0.02, seed)
	if err != nil {
		return benchMapPath{}, err
	}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		return benchMapPath{}, err
	}
	spec := &plan.Spec{Strategy: plan.ZDG, Local: plan.SB, Merge: plan.MergeZM,
		M: 32, Delta: 4, SampleRatio: 0.02, Bits: 16}
	r, err := plan.Learn(spec, ds.Dims, mins, maxs, smp, nil)
	if err != nil {
		return benchMapPath{}, err
	}
	blk := point.BlockOf(ds.Dims, ds.Points)
	pts := testing.AllocsPerRun(3, func() { _ = r.MapChunk(ds.Points, nil) })
	bl := testing.AllocsPerRun(3, func() { _ = r.MapBlock(blk, nil) })
	mp := benchMapPath{Points: ds.Len(), Dims: ds.Dims,
		AllocsPerOpPoints: pts, AllocsPerOpBlock: bl}
	if bl > 0 {
		mp.Ratio = pts / bl
	}
	return mp, nil
}
