package main

// Benchmark-suite mode (-bench-tag): one fixed dataset pushed through
// all three executors — the in-process MapReduce simulator, the
// shared-memory parallel path, and the TCP coordinator against
// loopback workers — with wall clock, allocation, wire-byte, and
// skyline-size measurements written to BENCH_<tag>.json. CI uploads
// the file as an artifact so the repo's perf trajectory accumulates
// across commits.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"zskyline/internal/core"
	"zskyline/internal/dist"
	"zskyline/internal/gen"
	"zskyline/internal/parallel"
	"zskyline/internal/plan"
	"zskyline/internal/point"
	"zskyline/internal/sample"
)

type benchDataset struct {
	Distribution string `json:"distribution"`
	Points       int    `json:"points"`
	Dims         int    `json:"dims"`
	Seed         int64  `json:"seed"`
}

type benchExecutor struct {
	Executor      string  `json:"executor"`
	WallMS        float64 `json:"wall_ms"`
	Allocs        uint64  `json:"allocs"`
	AllocBytes    uint64  `json:"alloc_bytes"`
	WireSentBytes int64   `json:"wire_sent_bytes"`
	WireRecvBytes int64   `json:"wire_recv_bytes"`
	SkylineSize   int     `json:"skyline_size"`
}

// benchMapPath is the phase-2 map-path allocation comparison: the
// per-point MapChunk against the flat MapBlock over identical data
// (the tentpole's ≥5× target, same fixture as bench_test.go).
type benchMapPath struct {
	Points            int     `json:"points"`
	Dims              int     `json:"dims"`
	AllocsPerOpPoints float64 `json:"allocs_per_op_points"`
	AllocsPerOpBlock  float64 `json:"allocs_per_op_block"`
	Ratio             float64 `json:"ratio"`
}

type benchReport struct {
	Tag       string          `json:"tag"`
	GoVersion string          `json:"go_version"`
	Dataset   benchDataset    `json:"dataset"`
	Executors []benchExecutor `json:"executors"`
	MapPath   benchMapPath    `json:"map_path"`
}

// measure runs f once and records wall clock plus heap-allocation
// deltas. Single-shot numbers are noisier than testing.B loops but
// cheap enough for a CI smoke job, and alloc counts are deterministic
// enough to track trends.
func measure(name string, f func() (sky int, err error)) (benchExecutor, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	sky, err := f()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return benchExecutor{}, fmt.Errorf("%s: %w", name, err)
	}
	return benchExecutor{
		Executor:    name,
		WallMS:      float64(wall.Microseconds()) / 1000,
		Allocs:      after.Mallocs - before.Mallocs,
		AllocBytes:  after.TotalAlloc - before.TotalAlloc,
		SkylineSize: sky,
	}, nil
}

func runBenchSuite(tag string, scale float64, workers int, seed int64, outdir string) error {
	if strings.ContainsAny(tag, "/\\ ") {
		return fmt.Errorf("bench tag %q must be a plain filename fragment", tag)
	}
	n := int(50000 * scale)
	if n < 2000 {
		n = 2000
	}
	const d = 5
	ds := gen.Synthetic(gen.AntiCorrelated, n, d, seed)
	ctx := context.Background()
	rep := benchReport{
		Tag:       tag,
		GoVersion: runtime.Version(),
		Dataset:   benchDataset{Distribution: gen.AntiCorrelated.String(), Points: n, Dims: d, Seed: seed},
	}

	// Executor 1: the fused MapReduce simulator.
	res, err := measure("core", func() (int, error) {
		cfg := core.Defaults()
		cfg.Workers = workers
		cfg.Seed = seed
		eng, err := core.NewEngine(cfg)
		if err != nil {
			return 0, err
		}
		sky, _, err := eng.Skyline(ctx, ds)
		return len(sky), err
	})
	if err != nil {
		return err
	}
	rep.Executors = append(rep.Executors, res)

	// Executor 2: the shared-memory shard-and-merge path.
	res, err = measure("parallel", func() (int, error) {
		sky, err := parallel.Skyline(ctx, ds, parallel.Options{Workers: workers})
		return len(sky), err
	})
	if err != nil {
		return err
	}
	rep.Executors = append(rep.Executors, res)

	// Executor 3: the TCP coordinator over loopback workers. Wire
	// totals cover the whole run — rule broadcast, block chunks, and
	// merge replies — which is the communication-volume number the
	// block framing is meant to shrink.
	var wss []*dist.WorkerServer
	defer func() {
		for _, ws := range wss {
			ws.Close()
		}
	}()
	addrs := make([]string, 2)
	for i := range addrs {
		ws, err := dist.StartWorker("127.0.0.1:0")
		if err != nil {
			return err
		}
		wss = append(wss, ws)
		addrs[i] = ws.Addr()
	}
	var wire []dist.WireStat
	res, err = measure("dist", func() (int, error) {
		cfg := dist.DefaultCoordinatorConfig()
		cfg.Seed = seed
		coord, err := dist.NewCoordinator(cfg, addrs)
		if err != nil {
			return 0, err
		}
		defer coord.Close()
		sky, _, err := coord.Skyline(ctx, ds)
		wire = coord.WireStats()
		return len(sky), err
	})
	if err != nil {
		return err
	}
	for _, w := range wire {
		res.WireSentBytes += w.Sent
		res.WireRecvBytes += w.Recv
	}
	rep.Executors = append(rep.Executors, res)

	mp, err := measureMapPath(ds, seed)
	if err != nil {
		return err
	}
	rep.MapPath = mp

	dir := outdir
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+tag+".json")
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "skybench: wrote %s\n", path)
	return nil
}

// measureMapPath mirrors bench_test.go's mapPhaseFixture: SB locally
// so the allocs/op delta isolates the map/route path itself.
func measureMapPath(ds *point.Dataset, seed int64) (benchMapPath, error) {
	smp, err := sample.Ratio(ds.Points, 0.02, seed)
	if err != nil {
		return benchMapPath{}, err
	}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		return benchMapPath{}, err
	}
	spec := &plan.Spec{Strategy: plan.ZDG, Local: plan.SB, Merge: plan.MergeZM,
		M: 32, Delta: 4, SampleRatio: 0.02, Bits: 16}
	r, err := plan.Learn(spec, ds.Dims, mins, maxs, smp, nil)
	if err != nil {
		return benchMapPath{}, err
	}
	blk := point.BlockOf(ds.Dims, ds.Points)
	pts := testing.AllocsPerRun(3, func() { _ = r.MapChunk(ds.Points, nil) })
	bl := testing.AllocsPerRun(3, func() { _ = r.MapBlock(blk, nil) })
	mp := benchMapPath{Points: ds.Len(), Dims: ds.Dims,
		AllocsPerOpPoints: pts, AllocsPerOpBlock: bl}
	if bl > 0 {
		mp.Ratio = pts / bl
	}
	return mp, nil
}
