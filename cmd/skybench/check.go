package main

// Regression-gate mode (-check-against): compare a bench report — a
// fresh run or an existing file (-check-file) — against a committed
// baseline BENCH_*.json, per (config, executor), with tolerance bands
// for wall clock, allocations, and wire bytes. Any violation exits
// non-zero, so CI can hold the line on perf without a human reading
// the numbers. Comparison covers the intersection of the two reports:
// a baseline with all three configs still gates a small-only CI run.

import (
	"encoding/json"
	"fmt"
	"os"
)

// checkTolerances are multiplicative regression bands: current may be
// at most base × tol.
type checkTolerances struct {
	wall   float64
	allocs float64
	wire   float64
}

// minCheckWallMS is the wall floor below which wall-clock comparisons
// are pure scheduler noise and are skipped. Alloc counts stay gated —
// they are deterministic at any size.
const minCheckWallMS = 1.0

// loadBenchReport reads one BENCH_*.json.
func loadBenchReport(path string) (*benchReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Configs) == 0 {
		return nil, fmt.Errorf("%s: no configs", path)
	}
	return &rep, nil
}

func findBenchConfig(rep *benchReport, name string) *benchConfig {
	for i := range rep.Configs {
		if rep.Configs[i].Name == name {
			return &rep.Configs[i]
		}
	}
	return nil
}

func findBenchExecutor(cfg *benchConfig, name string) *benchExecutor {
	for i := range cfg.Executors {
		if cfg.Executors[i].Executor == name {
			return &cfg.Executors[i]
		}
	}
	return nil
}

// compareBenchReports returns one violation string per regression of
// cur beyond base × tolerance. An empty slice means the gate passes.
func compareBenchReports(base, cur *benchReport, tol checkTolerances) []string {
	var violations []string
	compared := 0
	for i := range cur.Configs {
		cc := &cur.Configs[i]
		bc := findBenchConfig(base, cc.Name)
		if bc == nil {
			continue // new config: nothing to gate against
		}
		for j := range cc.Executors {
			ce := &cc.Executors[j]
			be := findBenchExecutor(bc, ce.Executor)
			if be == nil {
				continue
			}
			compared++
			id := cc.Name + "/" + ce.Executor
			if be.WallMS >= minCheckWallMS && ce.WallMS > be.WallMS*tol.wall {
				violations = append(violations, fmt.Sprintf(
					"%s: wall %.2fms exceeds %.2fms (base %.2fms × %.2f)",
					id, ce.WallMS, be.WallMS*tol.wall, be.WallMS, tol.wall))
			}
			if be.Allocs > 0 && float64(ce.Allocs) > float64(be.Allocs)*tol.allocs {
				violations = append(violations, fmt.Sprintf(
					"%s: allocs %d exceed %.0f (base %d × %.2f)",
					id, ce.Allocs, float64(be.Allocs)*tol.allocs, be.Allocs, tol.allocs))
			}
			if be.WireSentBytes > 0 && float64(ce.WireSentBytes) > float64(be.WireSentBytes)*tol.wire {
				violations = append(violations, fmt.Sprintf(
					"%s: wire sent %dB exceeds %.0fB (base %dB × %.2f)",
					id, ce.WireSentBytes, float64(be.WireSentBytes)*tol.wire, be.WireSentBytes, tol.wire))
			}
			if be.WireRecvBytes > 0 && float64(ce.WireRecvBytes) > float64(be.WireRecvBytes)*tol.wire {
				violations = append(violations, fmt.Sprintf(
					"%s: wire recv %dB exceeds %.0fB (base %dB × %.2f)",
					id, ce.WireRecvBytes, float64(be.WireRecvBytes)*tol.wire, be.WireRecvBytes, tol.wire))
			}
		}
		// The map-path allocs/op ratio is the flat-block data plane's
		// contract; allocs/op is deterministic, so it gates tightly.
		if bc.MapPath.AllocsPerOpBlock > 0 &&
			cc.MapPath.AllocsPerOpBlock > bc.MapPath.AllocsPerOpBlock*tol.allocs {
			violations = append(violations, fmt.Sprintf(
				"%s: map-path block allocs/op %.1f exceeds %.1f (base %.1f × %.2f)",
				cc.Name, cc.MapPath.AllocsPerOpBlock,
				bc.MapPath.AllocsPerOpBlock*tol.allocs,
				bc.MapPath.AllocsPerOpBlock, tol.allocs))
		}
	}
	if compared == 0 {
		violations = append(violations,
			fmt.Sprintf("no overlapping (config, executor) pairs between baseline %q and current %q",
				base.Tag, cur.Tag))
	}
	return violations
}

// runCheck compares cur against the baseline at basePath, reporting
// violations to stderr. It returns true when the gate passes.
func runCheck(basePath string, cur *benchReport, tol checkTolerances) (bool, error) {
	base, err := loadBenchReport(basePath)
	if err != nil {
		return false, err
	}
	violations := compareBenchReports(base, cur, tol)
	if len(violations) == 0 {
		fmt.Fprintf(os.Stderr, "skybench: check passed against %s (wall ×%.2f, allocs ×%.2f, wire ×%.2f)\n",
			basePath, tol.wall, tol.allocs, tol.wire)
		return true, nil
	}
	fmt.Fprintf(os.Stderr, "skybench: %d regression(s) against %s:\n", len(violations), basePath)
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "  REGRESSION %s\n", v)
	}
	return false, nil
}
