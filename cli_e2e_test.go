package zskyline_test

// End-to-end tests for the command-line tools: build each binary into
// a temp dir and drive the documented workflows, including the
// skygen -> skyline round trip, skyquery preferences, and a real
// two-process distributed run over TCP.

import (
	"bytes"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// buildCmds compiles the listed commands once per test run.
func buildCmds(t *testing.T, names ...string) map[string]string {
	t.Helper()
	if testing.Short() {
		t.Skip("e2e builds are not short")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}
	return bins
}

func run(t *testing.T, bin string, stdin []byte, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != nil {
		cmd.Stdin = bytes.NewReader(stdin)
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", filepath.Base(bin), args, err, stderr.String())
	}
	return stdout.String(), stderr.String()
}

func TestCLIGenerateAndQueryRoundTrip(t *testing.T) {
	bins := buildCmds(t, "skygen", "skyline")
	dir := t.TempDir()
	csv := filepath.Join(dir, "anti.csv")
	zsky := filepath.Join(dir, "anti.zsky")

	run(t, bins["skygen"], nil, "-dist", "anti", "-n", "5000", "-d", "3", "-seed", "7", "-o", csv)
	run(t, bins["skygen"], nil, "-dist", "anti", "-n", "5000", "-d", "3", "-seed", "7", "-format", "binary", "-o", zsky)

	fromCSV, _ := run(t, bins["skyline"], nil, "-in", csv, "-m", "8")
	fromBin, _ := run(t, bins["skyline"], nil, "-in", zsky, "-format", "binary", "-m", "8")
	fromOOC, _ := run(t, bins["skyline"], nil, "-in", zsky, "-format", "binary", "-ooc", "512")

	norm := func(s string) string {
		lines := strings.Split(strings.TrimSpace(s), "\n")
		sort.Strings(lines)
		return strings.Join(lines, "\n")
	}
	if norm(fromCSV) != norm(fromBin) {
		t.Error("CSV and binary inputs give different skylines")
	}
	if norm(fromCSV) != norm(fromOOC) {
		t.Error("out-of-core mode gives a different skyline")
	}
	if len(strings.Split(strings.TrimSpace(fromCSV), "\n")) < 10 {
		t.Errorf("implausibly small skyline:\n%s", fromCSV)
	}
}

func TestCLISkyQuery(t *testing.T) {
	bins := buildCmds(t, "skyquery")
	in := []byte("price,rating\n100,5\n50,3\n90,3\n")
	out, stderr := run(t, bins["skyquery"], in, "-prefer", "price:min,rating:max")
	if !strings.Contains(out, "100,5") || !strings.Contains(out, "50,3") || strings.Contains(out, "90,3") {
		t.Errorf("skyquery output:\n%s", out)
	}
	if !strings.Contains(stderr, "2 of 3") {
		t.Errorf("skyquery summary: %s", stderr)
	}
	// Explain mode.
	out, _ = run(t, bins["skyquery"], in, "-prefer", "price:min,rating:max", "-explain", "2")
	if !strings.Contains(out, "dominated by") {
		t.Errorf("explain output:\n%s", out)
	}
}

func TestCLIDistributed(t *testing.T) {
	bins := buildCmds(t, "skygen", "skyline", "skyworker", "skydist")
	dir := t.TempDir()
	csv := filepath.Join(dir, "data.csv")
	run(t, bins["skygen"], nil, "-dist", "independent", "-n", "8000", "-d", "4", "-seed", "3", "-o", csv)

	// Two workers on fixed loopback ports.
	addrs := []string{"127.0.0.1:17771", "127.0.0.1:17772"}
	var workers []*exec.Cmd
	for _, addr := range addrs {
		w := exec.Command(bins["skyworker"], "-listen", addr)
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	defer func() {
		for _, w := range workers {
			w.Process.Kill()
			w.Wait()
		}
	}()
	waitForPorts(t, addrs)

	distOut, _ := run(t, bins["skydist"], nil,
		"-workers", strings.Join(addrs, ","), "-in", csv, "-m", "8")
	localOut, _ := run(t, bins["skyline"], nil, "-in", csv, "-m", "8")
	norm := func(s string) string {
		lines := strings.Split(strings.TrimSpace(s), "\n")
		sort.Strings(lines)
		return strings.Join(lines, "\n")
	}
	if norm(distOut) != norm(localOut) {
		t.Error("distributed and local skylines differ")
	}
}

func waitForPorts(t *testing.T, addrs []string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for _, addr := range addrs {
		for {
			if time.Now().After(deadline) {
				t.Fatalf("worker on %s never came up", addr)
			}
			conn, err := net.DialTimeout("tcp", addr, time.Second)
			if err == nil {
				conn.Close()
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
}

func TestCLISkybenchSingleFigure(t *testing.T) {
	bins := buildCmds(t, "skybench")
	out, _ := run(t, bins["skybench"], nil, "-run", "fig3", "-scale", "0.2")
	if !strings.Contains(out, "fig3") || !strings.Contains(out, "NBA-like") {
		t.Errorf("skybench output:\n%s", out)
	}
	// CSV mode.
	out, _ = run(t, bins["skybench"], nil, "-run", "fig3", "-scale", "0.2", "-csv")
	if !strings.Contains(out, "partition,") {
		t.Errorf("skybench csv output:\n%s", out)
	}
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}

func TestCLISkyServe(t *testing.T) {
	bins := buildCmds(t, "skyserve")
	dir := t.TempDir()
	csv := filepath.Join(dir, "hotels.csv")
	if err := os.WriteFile(csv, []byte("price,rating\n100,5\n50,3\n90,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	addr := "127.0.0.1:18432"
	srv := exec.Command(bins["skyserve"], "-in", csv, "-listen", addr)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	waitForPorts(t, []string{addr})

	resp, err := httpGet("http://" + addr + "/skyline")
	if err != nil {
		t.Fatal(err)
	}
	// The raw /skyline endpoint is all-min: (50,3) dominates both
	// other hotels under smaller-is-better semantics.
	if !strings.Contains(resp, `"count":1`) {
		t.Errorf("skyline response: %s", resp)
	}
	resp, err = httpPost("http://"+addr+"/query",
		`{"prefer":[{"attr":"price","dir":"min"},{"attr":"rating","dir":"max"}]}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp, `"rows":[0,1]`) {
		t.Errorf("query response: %s", resp)
	}
}

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String(), nil
}

func httpPost(url, body string) (string, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String(), nil
}
