package zskyline

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

func mustRelation(t *testing.T, attrs []string, rows [][]float64) *Relation {
	t.Helper()
	rel, err := NewRelation(attrs, rows)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestRelationValidation(t *testing.T) {
	if _, err := NewRelation(nil, nil); err == nil {
		t.Error("no attributes accepted")
	}
	if _, err := NewRelation([]string{"a", "a"}, nil); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewRelation([]string{""}, nil); err == nil {
		t.Error("empty attribute name accepted")
	}
	if _, err := NewRelation([]string{"a"}, [][]float64{{1, 2}}); err == nil {
		t.Error("ragged row accepted")
	}
	inf := 1.0
	inf /= 0
	if _, err := NewRelation([]string{"a"}, [][]float64{{inf}}); err == nil {
		t.Error("infinite value accepted")
	}
}

func TestQueryValidation(t *testing.T) {
	rel := mustRelation(t, []string{"price", "rating"}, [][]float64{{10, 4}})
	ctx := context.Background()
	if _, err := RunQuery(ctx, rel, Query{}); err == nil {
		t.Error("empty preferences accepted")
	}
	if _, err := RunQuery(ctx, rel, Query{Prefer: []Pref{{"nope", Min}}}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := RunQuery(ctx, rel, Query{Prefer: []Pref{{"price", Min}, {"price", Max}}}); err == nil {
		t.Error("duplicate preference accepted")
	}
	if _, err := RunQuery(ctx, rel, Query{Prefer: []Pref{{"price", Ignore}}}); err == nil {
		t.Error("all-ignored query accepted")
	}
}

func TestQueryMinMaxSemantics(t *testing.T) {
	// Hotels: minimize price, maximize rating.
	rel := mustRelation(t, []string{"price", "rating"}, [][]float64{
		{100, 5}, // skyline: best rating
		{50, 3},  // skyline: cheap and decent
		{80, 4},  // skyline: middle tradeoff
		{90, 3},  // dominated by (80,4) and (50,3)
		{50, 2},  // dominated by (50,3)
	})
	res, err := RunQuery(context.Background(), rel, Query{Prefer: []Pref{
		{"price", Min}, {"rating", Max},
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	if len(res.RowIDs) != len(want) {
		t.Fatalf("rows = %v, want %v", res.RowIDs, want)
	}
	for i, id := range want {
		if res.RowIDs[i] != id {
			t.Fatalf("rows = %v, want %v", res.RowIDs, want)
		}
	}
}

func TestQueryIgnoreProjectsSubspace(t *testing.T) {
	rel := mustRelation(t, []string{"a", "b", "noise"}, [][]float64{
		{1, 2, 999},
		{2, 1, 0},
		{3, 3, 0}, // dominated in (a,b)
	})
	res, err := RunQuery(context.Background(), rel, Query{Prefer: []Pref{
		{"a", Min}, {"b", Min}, {"noise", Ignore},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RowIDs) != 2 || res.RowIDs[0] != 0 || res.RowIDs[1] != 1 {
		t.Fatalf("rows = %v", res.RowIDs)
	}
}

func TestQueryDuplicateRowsAllReturned(t *testing.T) {
	rel := mustRelation(t, []string{"x", "y"}, [][]float64{
		{1, 1}, {1, 1}, {2, 2},
	})
	res, err := RunQuery(context.Background(), rel, Query{Prefer: []Pref{
		{"x", Min}, {"y", Min},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RowIDs) != 2 || res.RowIDs[0] != 0 || res.RowIDs[1] != 1 {
		t.Fatalf("duplicate handling: rows = %v", res.RowIDs)
	}
}

func TestQueryEmptyRelation(t *testing.T) {
	res, err := RunQuery(context.Background(), nil, Query{})
	if err != nil || len(res.RowIDs) != 0 {
		t.Fatalf("nil relation: %v %v", res, err)
	}
}

// Property: RunQuery with all-Min preferences equals the sequential
// skyline row set.
func TestQueryMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n, d := 500+rng.Intn(1500), 2+rng.Intn(4)
		rows := make([][]float64, n)
		pts := make([]Point, n)
		for i := range rows {
			row := make([]float64, d)
			for k := range row {
				row[k] = rng.Float64()
			}
			rows[i] = row
			pts[i] = Point(row)
		}
		attrs := make([]string, d)
		prefs := make([]Pref, d)
		for k := range attrs {
			attrs[k] = string(rune('a' + k))
			prefs[k] = Pref{attrs[k], Min}
		}
		rel := mustRelation(t, attrs, rows)
		res, err := RunQuery(context.Background(), rel, Query{Prefer: prefs})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.RowIDs) != len(SequentialSkyline(pts)) {
			t.Fatalf("query rows %d != sequential %d", len(res.RowIDs), len(SequentialSkyline(pts)))
		}
		// Every returned row must be non-dominated.
		for _, id := range res.RowIDs {
			for _, q := range pts {
				if Dominates(q, pts[id]) {
					t.Fatalf("row %d is dominated", id)
				}
			}
		}
	}
}

func TestDirectionString(t *testing.T) {
	if Min.String() != "min" || Max.String() != "max" || Ignore.String() != "ignore" {
		t.Error("direction names")
	}
}

func TestFacadeExtensions(t *testing.T) {
	// Maintainer.
	m, err := NewUnitMaintainer(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert([]Point{{0.5, 0.5}, {0.2, 0.8}}); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 2 {
		t.Errorf("maintainer size = %d", m.Size())
	}

	// Ranking.
	score, err := WeightedSum([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	top := TopKByScore([]Point{{3, 3}, {1, 1}}, 1, score)
	if len(top) != 1 || top[0].Score != 2 {
		t.Errorf("top = %+v", top)
	}
	ranked, err := TopKByDominance([]Point{{0.1, 0.1}}, []Point{{0.1, 0.1}, {0.5, 0.5}}, 2, 8, 1)
	if err != nil || len(ranked) != 1 || ranked[0].Score != 1 {
		t.Errorf("dominance rank = %+v err=%v", ranked, err)
	}

	// Distributed.
	ws, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	ds := Generate(Independent, 2000, 3, 3)
	sky, err := DistributedSkyline(context.Background(), ds, []string{ws.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if len(sky) != len(SequentialSkyline(ds.Points)) {
		t.Errorf("distributed skyline %d points", len(sky))
	}
}

func TestFacadeKDomEstimateWindow(t *testing.T) {
	// k-dominant skyline shrinks the full skyline.
	ds := Generate(AntiCorrelated, 500, 6, 5)
	full, err := KDominantSkyline(ds.Points, 6)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := KDominantSkyline(ds.Points, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(reduced) > len(full) {
		t.Errorf("k=4 grew the skyline: %d > %d", len(reduced), len(full))
	}
	if !KDominates(Point{0, 0, 9}, Point{1, 1, 0}, 2) {
		t.Error("KDominates facade broken")
	}

	// Estimation.
	est, err := EstimateSkylineSize(ds.Points, 0.2, 1)
	if err != nil || est.Scaled <= 0 {
		t.Errorf("estimate: %+v %v", est, err)
	}
	if ExpectedSkylineSize(1000, 3) <= 1 {
		t.Error("analytic estimate degenerate")
	}

	// Sliding window.
	w, err := NewWindowSkyline(100, 2, 10, []float64{0, 0}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Generate(Independent, 300, 2, 9).Points {
		if _, err := w.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 100 || len(w.Current()) == 0 {
		t.Errorf("window: len=%d sky=%d", w.Len(), len(w.Current()))
	}
}

func TestFacadeParallelSkyline(t *testing.T) {
	ds := Generate(AntiCorrelated, 5000, 4, 3)
	got, err := ParallelSkyline(ds, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := SequentialSkyline(ds.Points)
	if len(got) != len(want) {
		t.Fatalf("parallel %d points, want %d", len(got), len(want))
	}
}

func TestFacadeSubspace(t *testing.T) {
	ds := Generate(Independent, 400, 4, 11)
	ids, err := SubspaceSkyline(ds, []int{0, 2})
	if err != nil || len(ids) == 0 {
		t.Fatalf("subspace: %v %v", ids, err)
	}
	cube, err := ComputeSkyCube(ds, 4)
	if err != nil || len(cube.Skylines) != 15 {
		t.Fatalf("cube: %v %v", cube, err)
	}
	full, _ := cube.Of([]int{0, 1, 2, 3})
	if len(full) != len(SequentialSkyline(ds.Points)) {
		t.Errorf("full-space cube slice %d != skyline", len(full))
	}
}

func TestRunGroupedQuery(t *testing.T) {
	rel := mustRelation(t, []string{"city", "price", "rating"}, [][]float64{
		{1, 100, 5}, // city 1
		{1, 50, 3},
		{1, 120, 4}, // dominated within city 1 by (100,5)
		{2, 30, 2},  // city 2
		{2, 40, 5},
		{2, 35, 1}, // dominated by (30,2)
	})
	q := Query{Prefer: []Pref{{"price", Min}, {"rating", Max}}}
	res, err := RunGroupedQuery(context.Background(), rel, "city", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %v", res.Groups)
	}
	want1 := []int{0, 1}
	want2 := []int{3, 4}
	for i, id := range res.Groups[1] {
		if id != want1[i] {
			t.Fatalf("city 1 skyline = %v, want %v", res.Groups[1], want1)
		}
	}
	for i, id := range res.Groups[2] {
		if id != want2[i] {
			t.Fatalf("city 2 skyline = %v, want %v", res.Groups[2], want2)
		}
	}
	// Validation.
	if _, err := RunGroupedQuery(context.Background(), rel, "nope", q); err == nil {
		t.Error("unknown key attribute accepted")
	}
	bad := Query{Prefer: []Pref{{"city", Min}, {"price", Min}}}
	if _, err := RunGroupedQuery(context.Background(), rel, "city", bad); err == nil {
		t.Error("preference on grouping attribute accepted")
	}
	empty, err := RunGroupedQuery(context.Background(), nil, "city", q)
	if err != nil || len(empty.Groups) != 0 {
		t.Errorf("nil relation: %v %v", empty, err)
	}
}

func TestFacadeApproxAndOutOfCore(t *testing.T) {
	ds := Generate(AntiCorrelated, 2000, 3, 15)
	eps, err := EpsilonSkyline(ds.Points, 0.2)
	if err != nil || len(eps) == 0 {
		t.Fatalf("epsilon: %d %v", len(eps), err)
	}
	full := SequentialSkyline(ds.Points)
	if len(eps) >= len(full) && len(full) > 10 {
		t.Errorf("epsilon skyline %d not smaller than full %d", len(eps), len(full))
	}
	reps, err := RepresentativeSkyline(ds.Points, 5)
	if err != nil || len(reps) != 5 {
		t.Fatalf("representative: %d %v", len(reps), err)
	}
}

func TestFacadeMaintainerPersistence(t *testing.T) {
	m, err := NewUnitMaintainer(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	m.Insert([]Point{{0.2, 0.8}, {0.8, 0.2}})
	var buf bytes.Buffer
	if err := SaveMaintainer(m, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMaintainer(&buf)
	if err != nil || got.Size() != 2 {
		t.Fatalf("restored: %v size=%d", err, got.Size())
	}
}
