package zskyline

import (
	"context"
	"testing"
)

func TestFacadeSkyline(t *testing.T) {
	ds := Generate(AntiCorrelated, 2000, 4, 7)
	sky, err := Skyline(context.Background(), ds.Dims, ds.Points)
	if err != nil {
		t.Fatal(err)
	}
	want := SequentialSkyline(ds.Points)
	if len(sky) != len(want) {
		t.Fatalf("facade skyline %d points, want %d", len(sky), len(want))
	}
}

func TestFacadeEngine(t *testing.T) {
	cfg := Defaults()
	cfg.M = 8
	cfg.SampleRatio = 0.05
	cfg.Strategy = ZHG
	cfg.Local = SB
	cfg.Merge = MergeZS
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := Generate(Independent, 3000, 5, 9)
	sky, rep, err := eng.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SkylineSize != len(sky) || rep.Candidates < len(sky) {
		t.Errorf("report inconsistent: %d/%d/%d", rep.SkylineSize, len(sky), rep.Candidates)
	}
}

func TestFacadeGPMRS(t *testing.T) {
	ds := Generate(Independent, 2000, 4, 11)
	sky, rep, err := GPMRSSkyline(context.Background(), ds, GPMRSConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := SequentialSkyline(ds.Points)
	if len(sky) != len(want) {
		t.Fatalf("gpmrs %d points, want %d", len(sky), len(want))
	}
	if rep.Candidates == 0 {
		t.Error("empty gpmrs report")
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := NewDataset(2, []Point{{1}}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if !Dominates(Point{1, 1}, Point{2, 2}) {
		t.Error("Dominates broken")
	}
	if _, err := Skyline(context.Background(), 0, nil); err == nil {
		t.Error("invalid dims accepted")
	}
}
