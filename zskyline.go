// Package zskyline is a parallel skyline query processing library — a
// from-scratch Go reproduction of "Efficient Parallel Skyline Query
// Processing for High-Dimensional Data" (Tang, Yu, Aref, Malluhi,
// Ouzzani; ICDE 2019).
//
// A skyline query returns the points of a multidimensional dataset
// that are not dominated by any other point, where p dominates q when
// p is at least as good in every dimension and strictly better in one
// (smaller is better throughout this library).
//
// The library's centerpiece is the paper's three-phase pipeline:
// Z-order-curve partitioning with dominance-based partition grouping
// (ZDG), per-group skyline computation with Z-search over ZB-trees,
// and candidate merging with Z-merge — all executed on an in-process
// MapReduce substrate whose workers model the paper's Hadoop cluster.
// The classic Grid, Angle, Random and MR-GPMRS schemes are included as
// baselines, as are the sequential BNL/sort-based algorithms.
//
// The same pipeline also runs on a shared-memory goroutine pool and,
// via the skydist/skyworker commands, across real processes over TCP
// with fault tolerance (per-attempt deadlines, retries with backoff,
// worker resurrection with rule re-broadcast, optional hedging); all
// three executors produce identical skylines and identical trace
// structure. docs/OPERATIONS.md covers deploying the TCP form.
//
// Quick start:
//
//	eng, err := zskyline.New(zskyline.Defaults())
//	if err != nil { ... }
//	sky, report, err := eng.Skyline(ctx, dataset)
//
// See examples/ for runnable programs and DESIGN.md for the full
// system inventory.
package zskyline

import (
	"context"

	"zskyline/internal/core"
	"zskyline/internal/gen"
	"zskyline/internal/gpmrs"
	"zskyline/internal/point"
	"zskyline/internal/seq"
)

// Point is a d-dimensional data point; smaller coordinates are better.
type Point = point.Point

// Dataset is a collection of points of one dimensionality.
type Dataset = point.Dataset

// NewDataset validates points and wraps them in a Dataset.
func NewDataset(dims int, pts []Point) (*Dataset, error) {
	return point.NewDataset(dims, pts)
}

// Dominates reports whether p dominates q.
func Dominates(p, q Point) bool { return point.Dominates(p, q) }

// Config parameterizes the pipeline; see Defaults.
type Config = core.Config

// Report describes one pipeline run.
type Report = core.Report

// Engine executes the three-phase pipeline.
type Engine = core.Engine

// Strategy selects the phase-1 partitioning scheme.
type Strategy = core.Strategy

// Partitioning strategies.
const (
	Grid   = core.Grid
	Angle  = core.Angle
	Random = core.Random
	NaiveZ = core.NaiveZ
	ZHG    = core.ZHG
	ZDG    = core.ZDG
)

// LocalAlgo selects the per-group skyline algorithm.
type LocalAlgo = core.LocalAlgo

// Local algorithms.
const (
	SB = core.SB
	ZS = core.ZS
)

// MergeAlgo selects the phase-3 merging algorithm.
type MergeAlgo = core.MergeAlgo

// Merge algorithms.
const (
	MergeZM = core.MergeZM
	MergeZS = core.MergeZS
	MergeSB = core.MergeSB
)

// Defaults returns the paper's default configuration: ZDG partitioning,
// Z-search locally, Z-merge globally, M=32 groups.
func Defaults() Config { return core.Defaults() }

// New builds an Engine from cfg.
func New(cfg Config) (*Engine, error) { return core.NewEngine(cfg) }

// Skyline is the one-call convenience API: it runs the default
// three-phase pipeline over pts and returns the exact skyline.
func Skyline(ctx context.Context, dims int, pts []Point) ([]Point, error) {
	ds, err := point.NewDataset(dims, pts)
	if err != nil {
		return nil, err
	}
	cfg := core.Defaults()
	if n := ds.Len(); n < 10000 {
		// Small inputs need fewer groups and a denser sample.
		cfg.M = 8
		cfg.SampleRatio = 0.1
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	sky, _, err := eng.Skyline(ctx, ds)
	return sky, err
}

// SequentialSkyline computes the skyline with the sort-based
// single-machine algorithm — handy as a reference and for small inputs.
func SequentialSkyline(pts []Point) []Point { return seq.SB(pts, nil) }

// GPMRSConfig parameterizes the MR-GPMRS baseline.
type GPMRSConfig = gpmrs.Config

// GPMRSReport describes an MR-GPMRS run.
type GPMRSReport = gpmrs.Report

// GPMRSSkyline runs the MR-GPMRS baseline pipeline.
func GPMRSSkyline(ctx context.Context, ds *Dataset, cfg GPMRSConfig) ([]Point, *GPMRSReport, error) {
	return gpmrs.Skyline(ctx, ds, cfg)
}

// Distribution selects a synthetic workload for Generate.
type Distribution = gen.Distribution

// Synthetic distributions (Börzsönyi et al.'s standard benchmark set).
const (
	Independent    = gen.Independent
	Correlated     = gen.Correlated
	AntiCorrelated = gen.AntiCorrelated
)

// Generate produces n d-dimensional points of the given distribution,
// deterministically for a seed.
func Generate(dist Distribution, n, d int, seed int64) *Dataset {
	return gen.Synthetic(dist, n, d, seed)
}
