package zskyline

import (
	"context"
	"fmt"

	"zskyline/internal/metrics"
	"zskyline/internal/point"
	"zskyline/internal/zbtree"
	"zskyline/internal/zorder"
)

// Index is a queryable ZB-tree over a dataset: the index form of the
// paper's §3.2 machinery, exposed for repeated interactive queries —
// skyline, progressive skyline, constrained (range) skyline, dominator
// explanations, and dominance counting. Build once, query many times.
// An Index is immutable after construction and safe for concurrent
// reads.
type Index struct {
	tree  *zbtree.Tree
	enc   *zorder.Encoder
	tally *metrics.Tally
}

// BuildIndex indexes ds. bits <= 0 selects a resolution appropriate
// for the dimensionality.
func BuildIndex(ds *Dataset, bits int) (*Index, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("zskyline: cannot index an empty dataset")
	}
	if bits <= 0 {
		switch {
		case ds.Dims <= 16:
			bits = 16
		case ds.Dims <= 64:
			bits = 12
		default:
			bits = 8
		}
	}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		return nil, err
	}
	enc, err := zorder.NewEncoder(ds.Dims, bits, mins, maxs)
	if err != nil {
		return nil, err
	}
	tally := &metrics.Tally{}
	return &Index{
		tree:  zbtree.BuildFromPoints(enc, 0, ds.Points, tally),
		enc:   enc,
		tally: tally,
	}, nil
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.tree.Len() }

// Skyline computes the exact skyline of the indexed points (Z-search).
func (ix *Index) Skyline() []Point { return ix.tree.Skyline() }

// SkylineProgressive streams skyline points as they are found; every
// emitted point is final. The channel closes on completion or when ctx
// is cancelled.
func (ix *Index) SkylineProgressive(ctx context.Context) <-chan Point {
	return ix.tree.SkylineProgressive(ctx)
}

// SkylineWithin computes the constrained skyline over the box
// [lo, hi]: points dominated only by out-of-box points re-enter.
func (ix *Index) SkylineWithin(lo, hi Point) ([]Point, error) {
	if len(lo) != ix.enc.Dims() || len(hi) != ix.enc.Dims() {
		return nil, fmt.Errorf("zskyline: box corners must have %d dims", ix.enc.Dims())
	}
	for k := range lo {
		if lo[k] > hi[k] {
			return nil, fmt.Errorf("zskyline: box corner %d inverted: %v > %v", k, lo[k], hi[k])
		}
	}
	return ix.tree.SkylineWithin(lo, hi), nil
}

// Range returns every indexed point inside the box [lo, hi].
func (ix *Index) Range(lo, hi Point) ([]Point, error) {
	if len(lo) != ix.enc.Dims() || len(hi) != ix.enc.Dims() {
		return nil, fmt.Errorf("zskyline: box corners must have %d dims", ix.enc.Dims())
	}
	return ix.tree.RangeQuery(lo, hi), nil
}

// Dominators answers the "why not" question: the indexed points that
// strictly dominate p. Empty means p would be a skyline point.
func (ix *Index) Dominators(p Point) ([]Point, error) {
	if len(p) != ix.enc.Dims() {
		return nil, fmt.Errorf("zskyline: point has %d dims, want %d", len(p), ix.enc.Dims())
	}
	e := zbtree.NewEntry(ix.enc, point.Point(p))
	return ix.tree.DominatorsOf(e.G, e.P), nil
}

// DominatedCount returns how many indexed points p strictly dominates
// — the influence score used by TopKByDominance.
func (ix *Index) DominatedCount(p Point) (int, error) {
	if len(p) != ix.enc.Dims() {
		return 0, fmt.Errorf("zskyline: point has %d dims, want %d", len(p), ix.enc.Dims())
	}
	e := zbtree.NewEntry(ix.enc, point.Point(p))
	return ix.tree.CountDominatedBy(e.G, e.P), nil
}

// Stats exposes the work counters accumulated by queries so far.
func (ix *Index) Stats() metrics.Snapshot { return ix.tally.Snapshot() }
