package parallel

import (
	"context"
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/metrics"
	"zskyline/internal/point"
	"zskyline/internal/seq"
)

func sameSet(t *testing.T, got, want []point.Point, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d", label, len(got), len(want))
	}
	g := append([]point.Point(nil), got...)
	w := append([]point.Point(nil), want...)
	point.SortLexicographic(g)
	point.SortLexicographic(w)
	for i := range g {
		if !g[i].Equal(w[i]) {
			t.Fatalf("%s: [%d] = %v, want %v", label, i, g[i], w[i])
		}
	}
}

func TestExactAcrossDistributionsAndWorkers(t *testing.T) {
	for _, dist := range []gen.Distribution{gen.Independent, gen.Correlated, gen.AntiCorrelated} {
		ds := gen.Synthetic(dist, 4000, 4, 13)
		want := seq.SB(ds.Points, nil)
		for _, workers := range []int{1, 2, 3, 7, 16} {
			got, err := Skyline(context.Background(), ds, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%v/%d: %v", dist, workers, err)
			}
			sameSet(t, got, want, dist.String())
		}
	}
}

func TestEdgeCases(t *testing.T) {
	if got, err := Skyline(context.Background(), nil, Options{}); err != nil || got != nil {
		t.Errorf("nil dataset: %v %v", got, err)
	}
	ds := point.MustDataset(2, []point.Point{{1, 2}})
	got, err := Skyline(context.Background(), ds, Options{Workers: 64}) // more workers than points
	if err != nil || len(got) != 1 {
		t.Errorf("singleton: %v %v", got, err)
	}
	if _, err := SkylineOf(context.Background(), 2, []point.Point{{1}}, Options{}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds := gen.Synthetic(gen.AntiCorrelated, 4000, 4, 13)
	if _, err := Skyline(ctx, ds, Options{Workers: 4}); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestHighDimensional(t *testing.T) {
	ds := gen.NUSWideLike(400, 3)
	got, err := Skyline(context.Background(), ds, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, seq.BruteForce(ds.Points), "225d")
}

func TestTallyPlumbed(t *testing.T) {
	tal := &metrics.Tally{}
	ds := gen.Synthetic(gen.AntiCorrelated, 2000, 3, 7)
	if _, err := Skyline(context.Background(), ds, Options{Workers: 4, Tally: tal}); err != nil {
		t.Fatal(err)
	}
	if tal.Snapshot().DominanceTests == 0 {
		t.Error("no work recorded")
	}
}

func BenchmarkParallel100k5d(b *testing.B) {
	ds := gen.Synthetic(gen.Independent, 100000, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Skyline(context.Background(), ds, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequential100k5d(b *testing.B) {
	ds := gen.Synthetic(gen.Independent, 100000, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Skyline(context.Background(), ds, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
