// Package parallel computes skylines on shared-memory multicores
// without the MapReduce machinery: the input is sharded across
// goroutines, each shard is solved with Z-search, and the shard
// skylines are combined with a parallel Z-merge reduction tree. This
// is the lightweight entry point for users who want the paper's
// algorithms but run on one machine, not a simulated cluster.
package parallel

import (
	"fmt"
	"runtime"
	"sync"

	"zskyline/internal/metrics"
	"zskyline/internal/point"
	"zskyline/internal/zbtree"
	"zskyline/internal/zorder"
)

// Options tunes Skyline.
type Options struct {
	// Workers is the shard/goroutine count; 0 selects GOMAXPROCS.
	Workers int
	// Bits is the Z-order resolution; 0 selects 16 (capped for very
	// high dimensionality).
	Bits int
	// Fanout is the ZB-tree fanout; 0 selects the default.
	Fanout int
	// Tally receives work counters; may be nil.
	Tally *metrics.Tally
}

func (o Options) normalize(dims int) Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Bits <= 0 {
		switch {
		case dims <= 16:
			o.Bits = 16
		case dims <= 64:
			o.Bits = 12
		default:
			o.Bits = 8
		}
	}
	return o
}

// Skyline computes the exact skyline of ds using opts.Workers
// goroutines.
func Skyline(ds *point.Dataset, opts Options) ([]point.Point, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, nil
	}
	opts = opts.normalize(ds.Dims)
	mins, maxs, err := ds.Bounds()
	if err != nil {
		return nil, err
	}
	enc, err := zorder.NewEncoder(ds.Dims, opts.Bits, mins, maxs)
	if err != nil {
		return nil, err
	}

	// Shard and solve locally.
	shards := opts.Workers
	if shards > ds.Len() {
		shards = ds.Len()
	}
	trees := make([]*zbtree.Tree, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := s * ds.Len() / shards
		hi := (s + 1) * ds.Len() / shards
		wg.Add(1)
		go func(s int, pts []point.Point) {
			defer wg.Done()
			trees[s] = zbtree.BuildFromPoints(enc, opts.Fanout, pts, opts.Tally).SkylineTree()
		}(s, ds.Points[lo:hi:hi])
	}
	wg.Wait()

	// Parallel pairwise Z-merge reduction.
	for len(trees) > 1 {
		half := (len(trees) + 1) / 2
		next := make([]*zbtree.Tree, half)
		for i := 0; i < half; i++ {
			j := i + half
			if j >= len(trees) {
				next[i] = trees[i]
				continue
			}
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				next[i] = zbtree.Merge(trees[i], trees[j])
			}(i, j)
		}
		wg.Wait()
		trees = next
	}
	return trees[0].Points(), nil
}

// SkylineOf is a convenience wrapper over raw points.
func SkylineOf(dims int, pts []point.Point, opts Options) ([]point.Point, error) {
	ds, err := point.NewDataset(dims, pts)
	if err != nil {
		return nil, fmt.Errorf("parallel: %w", err)
	}
	return Skyline(ds, opts)
}
