// Package parallel computes skylines on shared-memory multicores
// without the MapReduce machinery: the input is sharded across
// goroutines, each shard is solved with Z-search, and the shard
// skylines are combined with a parallel Z-merge reduction tree. The
// phase logic and the reduction shape live in internal/plan; this
// package is the thin shared-memory entry point for users who want
// the paper's algorithms but run on one machine, not a simulated
// cluster.
package parallel

import (
	"context"
	"fmt"
	"runtime"

	"zskyline/internal/dominance"
	"zskyline/internal/metrics"
	"zskyline/internal/obs"
	"zskyline/internal/plan"
	"zskyline/internal/point"
	"zskyline/internal/zorder"
)

// Options tunes Skyline.
type Options struct {
	// Workers is the shard/goroutine count; 0 selects GOMAXPROCS.
	Workers int
	// Bits is the Z-order resolution; 0 selects 16 (capped for very
	// high dimensionality).
	Bits int
	// Fanout is the ZB-tree fanout; 0 selects the default.
	Fanout int
	// Tally receives work counters; may be nil.
	Tally *metrics.Tally
	// Dominance selects the dominance relation (see internal/dominance);
	// the zero value is classic Pareto dominance.
	Dominance dominance.Descriptor
}

func (o Options) normalize(dims int) Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Bits <= 0 {
		switch {
		case dims <= 16:
			o.Bits = 16
		case dims <= 64:
			o.Bits = 12
		default:
			o.Bits = 8
		}
	}
	return o
}

// Skyline computes the exact skyline of ds using opts.Workers
// goroutines, honoring ctx between merge rounds.
//
// When ctx carries an obs trace, Skyline emits the library's uniform
// span taxonomy: learn covers encoder construction, map covers the
// positional sharding, local-skyline the per-shard Z-search, and
// merge/round-N the pairwise reduction (via plan.MergePhase).
func Skyline(ctx context.Context, ds *point.Dataset, opts Options) ([]point.Point, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, nil
	}
	opts = opts.normalize(ds.Dims)

	// "Learning" here is only bounds + encoder setup: the shared-memory
	// path shards positionally instead of partitioning by Z-address.
	learnSpan, _ := obs.StartSpan(ctx, "learn")
	learnSpan.SetAttr("strategy", "positional")
	prov, err := opts.Dominance.Provider()
	if err != nil {
		learnSpan.End()
		return nil, err
	}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		learnSpan.End()
		return nil, err
	}
	enc, err := zorder.NewEncoder(ds.Dims, opts.Bits, mins, maxs)
	if err != nil {
		learnSpan.End()
		return nil, err
	}
	r := plan.NewLocalRuleUnder(prov, enc, opts.Fanout, plan.ZS, plan.MergeZM)
	ex := plan.NewLocalExec(opts.Workers)
	learnSpan.SetAttr("groups", opts.Workers)
	learnSpan.End()

	// Shard positionally and solve each shard with Z-search. The input
	// is packed into one contiguous block, Z-encoded once as a single
	// bulk pass, and sharded by re-slicing — every shard is a zero-copy
	// view of the same flat array and the same address column, so the
	// reduce and merge phases never encode a point again.
	mapSpan, _ := obs.StartSpan(ctx, "map")
	block := point.BlockOf(ds.Dims, ds.Points)
	zc := enc.EncodeBlock(zorder.ZCol{}, block)
	parts := block.SplitN(opts.Workers)
	shards := make([]plan.Group, 0, len(parts))
	off := 0
	for s, b := range parts {
		shards = append(shards, plan.Group{Gid: s, Block: b, ZCol: zc.Slice(off, off+b.Len())})
		off += b.Len()
	}
	mapSpan.SetAttr("tasks", len(shards))
	mapSpan.SetAttr("filtered", 0)
	mapSpan.End()

	redSpan, rctx := obs.StartSpan(ctx, "local-skyline")
	redSpan.SetAttr("groups", len(shards))
	skys, err := ex.RunReduces(rctx, r, shards, opts.Tally)
	if err != nil {
		redSpan.End()
		return nil, err
	}
	candidates := 0
	for _, g := range skys {
		candidates += g.Len()
	}
	redSpan.SetAttr("candidates", candidates)
	redSpan.End()

	// Parallel pairwise Z-merge reduction.
	sky, err := plan.MergePhase(ctx, ex, r, skys, true, opts.Tally)
	if err != nil {
		return nil, err
	}

	// Non-transitive relations leave the merge with a candidate
	// superset (an eliminated shard point can still dominate a
	// candidate); close it against the full input. Candidates are
	// compacted copies, so coordinate-equal source rows never
	// self-eliminate.
	if !dominance.IsPareto(prov) && !prov.Caps().Transitive && len(sky) > 0 {
		sp, _ := obs.StartSpan(ctx, "verify")
		sp.SetAttr("candidates", len(sky))
		cand := point.BlockOf(ds.Dims, sky)
		cand = dominance.FilterBlock(prov, cand, block, opts.Tally)
		sp.SetAttr("skyline", cand.Len())
		sp.End()
		sky = cand.Points()
	}
	return sky, nil
}

// SkylineOf is a convenience wrapper over raw points.
func SkylineOf(ctx context.Context, dims int, pts []point.Point, opts Options) ([]point.Point, error) {
	ds, err := point.NewDataset(dims, pts)
	if err != nil {
		return nil, fmt.Errorf("parallel: %w", err)
	}
	return Skyline(ctx, ds, opts)
}
