package subspace

import (
	"math/bits"
	"math/rand"
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/metrics"
	"zskyline/internal/point"
)

// bruteSubspace is the oracle: indices of rows not dominated in dims.
func bruteSubspace(ds *point.Dataset, dims []int) []int {
	dominates := func(a, b int) bool {
		strict := false
		for _, d := range dims {
			if ds.Points[a][d] > ds.Points[b][d] {
				return false
			}
			if ds.Points[a][d] < ds.Points[b][d] {
				strict = true
			}
		}
		return strict
	}
	var out []int
	for i := 0; i < ds.Len(); i++ {
		dominated := false
		for j := 0; j < ds.Len(); j++ {
			if i != j && dominates(j, i) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

func sameInts(t *testing.T, got, want []int, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d, want %d", label, i, got[i], want[i])
		}
	}
}

func TestValidation(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 50, 3, 1)
	if _, err := Skyline(ds, nil, nil); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := Skyline(ds, []int{0, 0}, nil); err == nil {
		t.Error("duplicate dims accepted")
	}
	if _, err := Skyline(ds, []int{5}, nil); err == nil {
		t.Error("out-of-range dim accepted")
	}
	if got, err := Skyline(nil, []int{0}, nil); err != nil || got != nil {
		t.Errorf("nil dataset: %v %v", got, err)
	}
}

func TestSkylineMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(4)
		ds := gen.Synthetic(gen.Distribution(rng.Intn(3)), 100+rng.Intn(200), d, rng.Int63())
		// Random subspace.
		var dims []int
		for k := 0; k < d; k++ {
			if rng.Intn(2) == 0 {
				dims = append(dims, k)
			}
		}
		if len(dims) == 0 {
			dims = []int{0}
		}
		got, err := Skyline(ds, dims, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameInts(t, got, bruteSubspace(ds, dims), "subspace")
	}
}

func TestProjectionDuplicatesAllKept(t *testing.T) {
	// Rows 0 and 1 coincide in dim 0; both must be kept.
	ds := point.MustDataset(2, []point.Point{{1, 5}, {1, 9}, {2, 0}})
	got, err := Skyline(ds, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameInts(t, got, []int{0, 1}, "projection dups")
}

func TestSkyCube(t *testing.T) {
	ds := gen.Synthetic(gen.AntiCorrelated, 150, 4, 7)
	cube, err := SkyCube(ds, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Skylines) != 15 {
		t.Fatalf("cube has %d subspaces, want 15", len(cube.Skylines))
	}
	for mask, ids := range cube.Skylines {
		sameInts(t, ids, bruteSubspace(ds, maskDims(mask)), "cube mask")
		if bits.OnesCount32(mask) == 0 {
			t.Fatal("empty mask in cube")
		}
	}
	// Lookup API.
	ids, ok := cube.Of([]int{1, 3})
	if !ok || len(ids) == 0 {
		t.Errorf("Of lookup failed: %v %v", ids, ok)
	}
	if _, ok := cube.Of([]int{9}); ok {
		t.Error("out-of-range lookup succeeded")
	}
}

func TestSkyCubeGuards(t *testing.T) {
	big := gen.NUSWideLike(10, 1)
	if _, err := SkyCube(big, 2, nil); err == nil {
		t.Error("225-dim skycube accepted")
	}
	empty, err := SkyCube(nil, 2, nil)
	if err != nil || len(empty.Skylines) != 0 {
		t.Errorf("nil dataset cube: %v %v", empty, err)
	}
}

func TestTally(t *testing.T) {
	tal := &metrics.Tally{}
	ds := gen.Synthetic(gen.Independent, 200, 3, 9)
	if _, err := SkyCube(ds, 4, tal); err != nil {
		t.Fatal(err)
	}
	if tal.Snapshot().DominanceTests == 0 {
		t.Error("no tests recorded")
	}
}
