// Package subspace computes subspace skylines and the skycube: the
// skyline of a dataset restricted to a subset of its dimensions, and
// the collection of skylines over every non-empty dimension subset.
// Subspace results are reported as row indices because projections
// collapse points: rows distinct in full space may coincide in a
// subspace, and all non-dominated copies belong to the answer.
package subspace

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"zskyline/internal/metrics"
	"zskyline/internal/point"
)

// MaxCubeDims bounds SkyCube's dimensionality (2^d - 1 subspaces).
const MaxCubeDims = 16

// Skyline returns the indices of rows whose projection onto dims is
// not dominated by any other row's projection, ascending. dims must be
// non-empty, unique and within range.
func Skyline(ds *point.Dataset, dims []int, tally *metrics.Tally) ([]int, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, nil
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("subspace: no dimensions selected")
	}
	seen := map[int]bool{}
	for _, d := range dims {
		if d < 0 || d >= ds.Dims {
			return nil, fmt.Errorf("subspace: dimension %d out of range [0,%d)", d, ds.Dims)
		}
		if seen[d] {
			return nil, fmt.Errorf("subspace: dimension %d selected twice", d)
		}
		seen[d] = true
	}
	return skylineIndices(ds, dims, tally), nil
}

// skylineIndices is the index-tracking sort-filter skyline over the
// projection (the SB algorithm with provenance).
func skylineIndices(ds *point.Dataset, dims []int, tally *metrics.Tally) []int {
	n := ds.Len()
	order := make([]int, n)
	sums := make([]float64, n)
	for i := 0; i < n; i++ {
		order[i] = i
		s := 0.0
		for _, d := range dims {
			s += ds.Points[i][d]
		}
		sums[i] = s
	}
	sort.SliceStable(order, func(a, b int) bool { return sums[order[a]] < sums[order[b]] })

	dominates := func(a, b int) bool {
		strict := false
		for _, d := range dims {
			av, bv := ds.Points[a][d], ds.Points[b][d]
			if av > bv {
				return false
			}
			if av < bv {
				strict = true
			}
		}
		return strict
	}
	var window []int
	var tests int64
	for _, i := range order {
		dominated := false
		for _, j := range window {
			tests++
			if dominates(j, i) {
				dominated = true
				break
			}
		}
		if !dominated {
			window = append(window, i)
		}
	}
	tally.AddDominanceTests(tests)
	sort.Ints(window)
	return window
}

// Cube holds one skyline per non-empty dimension subset; keys are
// bitmasks over the dataset's dimensions (bit d set = dimension d
// participates).
type Cube struct {
	Dims     int
	Skylines map[uint32][]int
}

// SkyCube computes every subspace skyline of ds concurrently. It
// refuses dimensionalities above MaxCubeDims, because 2^d - 1 subspace
// computations stop being a sane request.
func SkyCube(ds *point.Dataset, workers int, tally *metrics.Tally) (*Cube, error) {
	if ds == nil || ds.Len() == 0 {
		return &Cube{Skylines: map[uint32][]int{}}, nil
	}
	if ds.Dims > MaxCubeDims {
		return nil, fmt.Errorf("subspace: skycube over %d dims (max %d)", ds.Dims, MaxCubeDims)
	}
	if workers < 1 {
		workers = 4
	}
	total := uint32(1)<<uint(ds.Dims) - 1
	cube := &Cube{Dims: ds.Dims, Skylines: make(map[uint32][]int, total)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for mask := uint32(1); mask <= total; mask++ {
		mask := mask
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			dims := maskDims(mask)
			ids := skylineIndices(ds, dims, tally)
			mu.Lock()
			cube.Skylines[mask] = ids
			mu.Unlock()
		}()
	}
	wg.Wait()
	return cube, nil
}

// maskDims expands a bitmask into dimension indices.
func maskDims(mask uint32) []int {
	dims := make([]int, 0, bits.OnesCount32(mask))
	for d := 0; mask != 0; d++ {
		if mask&1 != 0 {
			dims = append(dims, d)
		}
		mask >>= 1
	}
	return dims
}

// Of looks up the skyline of the subspace spanned by dims.
func (c *Cube) Of(dims []int) ([]int, bool) {
	var mask uint32
	for _, d := range dims {
		if d < 0 || d >= c.Dims {
			return nil, false
		}
		mask |= 1 << uint(d)
	}
	ids, ok := c.Skylines[mask]
	return ids, ok
}
