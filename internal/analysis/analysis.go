// Package analysis implements the paper's §5.4 analytical model: the
// total dominance volume of a grouped partitioning, the predicted
// number of points pruned by the first MapReduce job under each data
// distribution, and the predicted Z-merge cost class. The experiment
// harness uses it to sanity-check measured pruning against the model.
package analysis

import (
	"fmt"
	"math"

	"zskyline/internal/partition"
	"zskyline/internal/point"
	"zskyline/internal/zorder"
)

// TotalDominanceVolume computes V_t = 1/2 * sum_{i,j} V_dom(Pt_i,
// Pt_j) over the partitions' sample extents (§5.4).
func TotalDominanceVolume(enc *zorder.Encoder, infos []partition.Info) float64 {
	total := 0.0
	for i := range infos {
		for j := i + 1; j < len(infos); j++ {
			total += enc.DominanceVolume(infos[i].Extent, infos[j].Extent)
		}
	}
	return total
}

// DataVolume computes Q, the volume of the dataset's bounding box
// (§5.4's denominator for the independent case).
func DataVolume(ds *point.Dataset) (float64, error) {
	mins, maxs, err := ds.Bounds()
	if err != nil {
		return 0, err
	}
	q := 1.0
	for k := range mins {
		side := maxs[k] - mins[k]
		if side <= 0 {
			// Degenerate dimension contributes no volume but should not
			// zero out the estimate; treat as unit thickness.
			side = 1
		}
		q *= side
	}
	return q, nil
}

// Prediction is the §5.4 pruning estimate for one distribution.
type Prediction struct {
	// PrunedPoints is n_p, the predicted number of points removed
	// before the shuffle.
	PrunedPoints float64
	// Rationale names the §5.4 case applied.
	Rationale string
}

// PredictPruning applies §5.4's case analysis.
//
//   - independent: n_p = n * V_t / Q, points uniform over the box;
//   - correlated: one skyline point per group survives, n_p = n - M;
//   - anti-correlated: between the extremes 0 (every point is skyline)
//     and n - M (one skyline per group); the midpoint is reported and
//     the bounds returned alongside.
func PredictPruning(dist string, n, m int, vt, q float64) (Prediction, error) {
	fn := float64(n)
	switch dist {
	case "independent":
		if q <= 0 {
			return Prediction{}, fmt.Errorf("analysis: non-positive data volume")
		}
		np := fn * vt / q
		if np > fn {
			np = fn
		}
		return Prediction{PrunedPoints: np, Rationale: "uniform density: n*Vt/Q"}, nil
	case "correlated":
		return Prediction{PrunedPoints: fn - float64(m), Rationale: "one skyline point per group survives"}, nil
	case "anti-correlated":
		return Prediction{PrunedPoints: (fn - float64(m)) / 2,
			Rationale: "midpoint of the extremes [0, n-M]"}, nil
	default:
		return Prediction{}, fmt.Errorf("analysis: unknown distribution %q", dist)
	}
}

// ZMergeCost classifies the §5.4 Z-merge processing-time estimate.
type ZMergeCost struct {
	// Operations approximates the number of UDominate invocations times
	// their per-call cost.
	Operations float64
	// Class is the asymptotic form used.
	Class string
}

// PredictZMergeCost applies §5.4's runtime analysis: for independent
// and anti-correlated data most candidates are skyline points and the
// cost is O(n_hat * d * log_f(n_hat)); for correlated data it is
// O(M * d * log_f(|S|)).
func PredictZMergeCost(dist string, candidates, m, d, fanout int) (ZMergeCost, error) {
	if fanout < 2 {
		fanout = 2
	}
	logf := func(x float64) float64 {
		if x < 2 {
			return 1
		}
		return math.Log(x) / math.Log(float64(fanout))
	}
	nhat := float64(candidates)
	switch dist {
	case "independent", "anti-correlated":
		return ZMergeCost{
			Operations: nhat * float64(d) * logf(nhat),
			Class:      "O(n_hat * d * log_f n_hat)",
		}, nil
	case "correlated":
		s := nhat / float64(m)
		if s < 1 {
			s = 1
		}
		return ZMergeCost{
			Operations: float64(m) * float64(d) * logf(s),
			Class:      "O(M * d * log_f |S|)",
		}, nil
	default:
		return ZMergeCost{}, fmt.Errorf("analysis: unknown distribution %q", dist)
	}
}
