package analysis

import (
	"context"
	"testing"

	"zskyline/internal/core"
	"zskyline/internal/gen"
	"zskyline/internal/partition"
	"zskyline/internal/point"
	"zskyline/internal/zorder"
)

func TestDataVolume(t *testing.T) {
	ds := point.MustDataset(2, []point.Point{{0, 0}, {2, 3}})
	q, err := DataVolume(ds)
	if err != nil || q != 6 {
		t.Errorf("volume = %v, err %v", q, err)
	}
	// Degenerate dimension treated as unit thickness.
	flat := point.MustDataset(2, []point.Point{{0, 5}, {2, 5}})
	q, err = DataVolume(flat)
	if err != nil || q != 2 {
		t.Errorf("flat volume = %v, err %v", q, err)
	}
	empty := &point.Dataset{Dims: 2}
	if _, err := DataVolume(empty); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestTotalDominanceVolume(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 3000, 3, 5)
	enc, _ := zorder.NewUnitEncoder(3, 10)
	zc, err := partition.NewZCurve(enc, ds.Points, 16)
	if err != nil {
		t.Fatal(err)
	}
	vt := TotalDominanceVolume(enc, zc.Infos())
	if vt <= 0 {
		t.Errorf("V_t = %v, want positive", vt)
	}
	q, _ := DataVolume(ds)
	if vt > q*float64(len(zc.Infos())) {
		t.Errorf("V_t = %v implausibly large vs Q=%v", vt, q)
	}
}

func TestPredictPruningCases(t *testing.T) {
	p, err := PredictPruning("correlated", 1000, 32, 0, 1)
	if err != nil || p.PrunedPoints != 968 {
		t.Errorf("correlated: %+v %v", p, err)
	}
	p, err = PredictPruning("anti-correlated", 1000, 32, 0, 1)
	if err != nil || p.PrunedPoints != 484 {
		t.Errorf("anti: %+v %v", p, err)
	}
	p, err = PredictPruning("independent", 1000, 32, 0.5, 1)
	if err != nil || p.PrunedPoints != 500 {
		t.Errorf("independent: %+v %v", p, err)
	}
	// Capped at n.
	p, _ = PredictPruning("independent", 1000, 32, 99, 1)
	if p.PrunedPoints != 1000 {
		t.Errorf("cap: %+v", p)
	}
	if _, err := PredictPruning("independent", 10, 2, 1, 0); err == nil {
		t.Error("zero volume accepted")
	}
	if _, err := PredictPruning("weird", 10, 2, 1, 1); err == nil {
		t.Error("unknown distribution accepted")
	}
}

// The model should agree in order of magnitude with the measured
// pruning of the actual pipeline on correlated data (where the case
// analysis is sharpest).
func TestModelTracksMeasuredPruningCorrelated(t *testing.T) {
	ds := gen.Synthetic(gen.Correlated, 20000, 4, 11)
	cfg := core.Defaults()
	cfg.M = 16
	cfg.SampleRatio = 0.02
	cfg.Workers = 4
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := eng.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := PredictPruning("correlated", ds.Len(), rep.Groups, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	measured := float64(rep.MapperFiltered) + float64(ds.Len()-int(rep.MapperFiltered)-rep.Candidates)
	// Within a factor of 1.5 of the model (the model says nearly all
	// points get pruned before or during candidate computation).
	if measured < pred.PrunedPoints*2/3 || measured > pred.PrunedPoints*1.5 {
		t.Errorf("measured pruning %v vs model %v", measured, pred.PrunedPoints)
	}
}

func TestPredictZMergeCost(t *testing.T) {
	ind, err := PredictZMergeCost("independent", 10000, 32, 5, 16)
	if err != nil || ind.Operations <= 0 {
		t.Fatalf("independent: %+v %v", ind, err)
	}
	cor, err := PredictZMergeCost("correlated", 10000, 32, 5, 16)
	if err != nil {
		t.Fatal(err)
	}
	if cor.Operations >= ind.Operations {
		t.Errorf("correlated cost %v should be far below independent %v",
			cor.Operations, ind.Operations)
	}
	if _, err := PredictZMergeCost("weird", 1, 1, 1, 1); err == nil {
		t.Error("unknown distribution accepted")
	}
	// Tiny inputs do not produce negative/zero logs.
	small, _ := PredictZMergeCost("independent", 1, 1, 1, 0)
	if small.Operations <= 0 {
		t.Errorf("small input cost %v", small.Operations)
	}
}
