package maintain

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/point"
	"zskyline/internal/seq"
)

func sameSet(t *testing.T, got, want []point.Point, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d", label, len(got), len(want))
	}
	g := append([]point.Point(nil), got...)
	w := append([]point.Point(nil), want...)
	point.SortLexicographic(g)
	point.SortLexicographic(w)
	for i := range g {
		if !g[i].Equal(w[i]) {
			t.Fatalf("%s: [%d] = %v, want %v", label, i, g[i], w[i])
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewUnit(0, 8); err == nil {
		t.Error("zero dims accepted")
	}
	m, err := NewUnit(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert([]point.Point{{1, 2}}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if n, err := m.Insert(nil); err != nil || n != 0 {
		t.Errorf("empty insert: %d %v", n, err)
	}
}

// Property: after any sequence of batches, the maintained skyline
// equals the brute-force skyline of everything inserted.
func TestIncrementalMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		d := 2 + rng.Intn(4)
		m, err := NewUnit(d, 8)
		if err != nil {
			t.Fatal(err)
		}
		var all []point.Point
		batches := 1 + rng.Intn(6)
		for b := 0; b < batches; b++ {
			ds := gen.Synthetic(gen.Distribution(rng.Intn(3)), 50+rng.Intn(300), d, rng.Int63())
			all = append(all, ds.Points...)
			if _, err := m.Insert(ds.Points); err != nil {
				t.Fatal(err)
			}
			sameSet(t, m.Skyline(), seq.BruteForce(all), "after batch")
		}
		if m.Seen() != int64(len(all)) {
			t.Errorf("seen %d, want %d", m.Seen(), len(all))
		}
	}
}

func TestInsertReturnsAcceptedCount(t *testing.T) {
	m, _ := NewUnit(2, 10)
	if n, _ := m.Insert([]point.Point{{0.5, 0.5}, {0.6, 0.6}}); n != 1 {
		t.Errorf("first batch accepted %d, want 1 (one dominates the other)", n)
	}
	// Entirely dominated batch: zero accepted.
	if n, _ := m.Insert([]point.Point{{0.9, 0.9}, {0.7, 0.7}}); n != 0 {
		t.Errorf("dominated batch accepted %d, want 0", n)
	}
	// A point dominating everything: exactly one accepted, size 1.
	if n, _ := m.Insert([]point.Point{{0.1, 0.1}}); n != 1 {
		t.Errorf("dominating point accepted %d, want 1", n)
	}
	if m.Size() != 1 {
		t.Errorf("size = %d, want 1", m.Size())
	}
}

func TestDominated(t *testing.T) {
	m, _ := NewUnit(2, 10)
	m.Insert([]point.Point{{0.3, 0.3}})
	if !m.Dominated(point.Point{0.5, 0.5}) {
		t.Error("dominated point not detected")
	}
	if m.Dominated(point.Point{0.3, 0.3}) {
		t.Error("equal point wrongly dominated")
	}
	if m.Dominated(point.Point{0.1, 0.9}) {
		t.Error("incomparable point wrongly dominated")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	m, _ := NewUnit(3, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			ds := gen.Synthetic(gen.Independent, 500, 3, seed)
			for i := 0; i < 5; i++ {
				m.Insert(ds.Points[i*100 : (i+1)*100])
				m.Skyline()
				m.Size()
			}
		}(int64(w))
	}
	wg.Wait()
	if m.Seen() != 4*500 {
		t.Errorf("seen = %d", m.Seen())
	}
	// Result still exact.
	var all []point.Point
	for w := 0; w < 4; w++ {
		all = append(all, gen.Synthetic(gen.Independent, 500, 3, int64(w)).Points...)
	}
	sameSet(t, m.Skyline(), seq.BruteForce(all), "concurrent")
}

func TestStatsAccumulate(t *testing.T) {
	m, _ := NewUnit(3, 8)
	ds := gen.Synthetic(gen.AntiCorrelated, 1000, 3, 1)
	m.Insert(ds.Points)
	if m.Stats().DominanceTests == 0 {
		t.Error("no dominance tests recorded")
	}
}

func BenchmarkInsertBatch1k(b *testing.B) {
	m, _ := NewUnit(4, 16)
	batches := make([][]point.Point, 16)
	for i := range batches {
		batches[i] = gen.Synthetic(gen.Independent, 1000, 4, int64(i)).Points
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Insert(batches[i%len(batches)])
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	m, err := New(3, 10, []float64{0, 0, 0}, []float64{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Synthetic(gen.AntiCorrelated, 2000, 3, 3)
	if _, err := m.Insert(ds.Points); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Seen() != m.Seen() || restored.Size() != m.Size() {
		t.Fatalf("restored seen=%d size=%d, want %d/%d",
			restored.Seen(), restored.Size(), m.Seen(), m.Size())
	}
	sameSet(t, restored.Skyline(), m.Skyline(), "restored skyline")
	// Restored maintainer keeps working and stays exact.
	more := gen.Synthetic(gen.Independent, 1000, 3, 4)
	if _, err := restored.Insert(more.Points); err != nil {
		t.Fatal(err)
	}
	all := append(append([]point.Point{}, ds.Points...), more.Points...)
	sameSet(t, restored.Skyline(), seq.BruteForce(all), "after more inserts")
}

func TestViewAndVersion(t *testing.T) {
	m, _ := NewUnit(2, 8)
	if v, version := m.View(); len(v) != 0 || version != 0 {
		t.Fatalf("fresh view = %d points @ v%d", len(v), version)
	}
	m.Insert([]point.Point{{0.5, 0.5}, {0.2, 0.8}})
	v1, ver1 := m.View()
	if ver1 != 1 || len(v1) != 2 {
		t.Fatalf("view after insert = %d points @ v%d, want 2 @ v1", len(v1), ver1)
	}
	// Repeat reads share the cached snapshot — no copy per call.
	v1b, _ := m.View()
	if &v1[0] != &v1b[0] {
		t.Error("View copied despite no intervening insert")
	}
	// An insert bumps the version and invalidates the view; the old
	// snapshot stays intact for readers still holding it.
	m.Insert([]point.Point{{0.1, 0.1}})
	v2, ver2 := m.View()
	if ver2 != 2 || len(v2) != 1 {
		t.Fatalf("view after dominating insert = %d points @ v%d, want 1 @ v2", len(v2), ver2)
	}
	if len(v1) != 2 {
		t.Error("earlier snapshot mutated by insert")
	}
	// Empty inserts do not bump the version.
	m.Insert(nil)
	if m.Version() != 2 {
		t.Errorf("empty insert bumped version to %d", m.Version())
	}
}

func TestLoadCorruption(t *testing.T) {
	m, _ := NewUnit(2, 8)
	m.Insert([]point.Point{{0.5, 0.5}})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Load(bytes.NewReader(raw[:10])); err == nil {
		t.Error("truncated header accepted")
	}
	bad := append([]byte(nil), raw...)
	bad[len(bad)-2] ^= 0xff // corrupt skyline payload/CRC
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted payload accepted")
	}
}
