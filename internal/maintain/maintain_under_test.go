package maintain

import (
	"bytes"
	"math/rand"
	"testing"

	"zskyline/internal/dominance"
	"zskyline/internal/point"
)

// newUnitUnder builds a provider maintainer over the unit hypercube.
func newUnitUnder(t testing.TB, prov dominance.Provider, dims, bits int) *Maintainer {
	t.Helper()
	mins := make([]float64, dims)
	maxs := make([]float64, dims)
	for i := range maxs {
		maxs[i] = 1
	}
	m, err := NewUnder(prov, dims, bits, mins, maxs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// transitiveProviders builds the transitive non-Pareto providers the
// maintainer supports, for d-dimensional data.
func transitiveProviders(t testing.TB, d int) []dominance.Provider {
	t.Helper()
	w1 := make([]float64, d)
	w2 := make([]float64, d)
	for i := range w1 {
		w1[i] = 1
		w2[i] = 1
	}
	w2[0] = 3
	flex, err := dominance.NewFlex([][]float64{w1, w2})
	if err != nil {
		t.Fatal(err)
	}
	robust, err := dominance.NewRobust(0.1)
	if err != nil {
		t.Fatal(err)
	}
	return []dominance.Provider{flex, robust}
}

// TestNewUnderRejectsNonTransitive pins the soundness gate: insert-only
// maintenance discards dominated points forever, which k-dominance's
// cycles would falsify.
func TestNewUnderRejectsNonTransitive(t *testing.T) {
	kdom, err := dominance.NewKDom(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewUnder(kdom, 3, 8, []float64{0, 0, 0}, []float64{1, 1, 1}); err == nil {
		t.Fatal("non-transitive provider accepted")
	}
}

// Property: after any sequence of batches, the maintained provider
// skyline equals the per-provider brute-force skyline of everything
// inserted.
func TestIncrementalUnderMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const d = 3
	for _, prov := range transitiveProviders(t, d) {
		m := newUnitUnder(t, prov, d, 8)
		var all []point.Point
		for batch := 0; batch < 8; batch++ {
			n := 1 + rng.Intn(60)
			pts := make([]point.Point, n)
			for i := range pts {
				p := make(point.Point, d)
				for k := range p {
					p[k] = float64(rng.Intn(10)) / 10 // ties included
				}
				pts[i] = p
			}
			all = append(all, pts...)
			if _, err := m.Insert(pts); err != nil {
				t.Fatal(err)
			}
			sameSet(t, m.Skyline(), dominance.BruteForce(prov, all), prov.Name())
		}
		if m.Seen() != int64(len(all)) {
			t.Fatalf("%s: seen %d, want %d", prov.Name(), m.Seen(), len(all))
		}
	}
}

func TestDominatedUnder(t *testing.T) {
	robust, err := dominance.NewRobust(0.2)
	if err != nil {
		t.Fatal(err)
	}
	m := newUnitUnder(t, robust, 2, 10)
	if _, err := m.Insert([]point.Point{{0.1, 0.1}}); err != nil {
		t.Fatal(err)
	}
	// Within the robustness margin: not dominated under rho=0.2.
	if m.Dominated(point.Point{0.25, 0.25}) {
		t.Error("point inside the margin reported dominated")
	}
	if !m.Dominated(point.Point{0.5, 0.5}) {
		t.Error("point beyond the margin not reported dominated")
	}
}

// TestSaveLoadUnderRoundtrip pins that persistence carries the
// dominance descriptor: a non-Pareto maintainer round-trips through
// Save/Load with an identical skyline, version, and relation — and the
// restored maintainer keeps maintaining under that relation.
func TestSaveLoadUnderRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	const d = 3
	for _, prov := range transitiveProviders(t, d) {
		m := newUnitUnder(t, prov, d, 8)
		var all []point.Point
		for batch := 0; batch < 3; batch++ {
			pts := make([]point.Point, 40)
			for i := range pts {
				p := make(point.Point, d)
				for k := range p {
					p[k] = float64(rng.Intn(10)) / 10
				}
				pts[i] = p
			}
			all = append(all, pts...)
			if _, err := m.Insert(pts); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("%s: Save: %v", prov.Name(), err)
		}
		restored, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: Load: %v", prov.Name(), err)
		}
		if got, want := restored.Descriptor().String(), prov.Descriptor().String(); got != want {
			t.Fatalf("restored descriptor %q, want %q", got, want)
		}
		if restored.Version() != m.Version() || restored.Seen() != m.Seen() {
			t.Fatalf("%s: restored version=%d seen=%d, want %d/%d",
				prov.Name(), restored.Version(), restored.Seen(), m.Version(), m.Seen())
		}
		sameSet(t, restored.Skyline(), m.Skyline(), prov.Name()+" restored skyline")
		// The restored maintainer continues exactly under the restored
		// relation.
		more := make([]point.Point, 40)
		for i := range more {
			p := make(point.Point, d)
			for k := range p {
				p[k] = float64(rng.Intn(10)) / 10
			}
			more[i] = p
		}
		all = append(all, more...)
		if _, err := restored.Insert(more); err != nil {
			t.Fatal(err)
		}
		sameSet(t, restored.Skyline(), dominance.BruteForce(prov, all), prov.Name()+" after restore+insert")
		if restored.Version() != m.Version()+1 {
			t.Fatalf("version after restore+insert = %d, want %d", restored.Version(), m.Version()+1)
		}
	}
}
