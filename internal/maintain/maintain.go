// Package maintain provides incremental skyline maintenance on top of
// the ZB-tree and Z-merge: a Maintainer ingests batches of new points
// and keeps the running skyline available at all times. This is the
// streaming counterpart of the paper's phase 3 — each batch is reduced
// to its own skyline tree and Z-merged into the maintained tree, so
// per-batch cost tracks the batch's skyline size rather than the
// stream length.
//
// Deletions are intentionally unsupported: removing a skyline point
// may resurrect points the maintainer has already discarded, which
// requires keeping the full history. Callers that need deletion should
// rebuild from retained data.
package maintain

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"zskyline/internal/codec"
	"zskyline/internal/dominance"
	"zskyline/internal/metrics"
	"zskyline/internal/point"
	"zskyline/internal/zbtree"
	"zskyline/internal/zorder"
)

// Maintainer keeps the skyline of everything inserted so far. It is
// safe for concurrent use; reads and writes serialize on one mutex
// (batched inserts make the critical section coarse but rare).
type Maintainer struct {
	mu    sync.Mutex
	enc   *zorder.Encoder
	prov  dominance.Provider
	sky   *zbtree.Tree
	tally *metrics.Tally
	seen  int64
	// version counts successful non-empty inserts: it identifies the
	// data state monotonically, so serving layers can key caches by it.
	version uint64
	// view caches the skyline snapshot handed out by View; nil when
	// stale (invalidated on every insert).
	view []point.Point
}

// New creates a Maintainer for dims-dimensional points over the value
// box [mins, maxs]. Points outside the box are still handled exactly
// (quantization clamps; exact float tests decide), but pruning works
// best when the box matches the data.
func New(dims, bits int, mins, maxs []float64) (*Maintainer, error) {
	return NewUnder(nil, dims, bits, mins, maxs)
}

// NewUnder creates a Maintainer that maintains the skyline under the
// given dominance provider (nil selects classic Pareto dominance).
// Insert-only maintenance discards dominated points forever, which is
// exact only when the relation is transitive (a discarded point's
// future victims are also dominated by its surviving dominator); a
// non-transitive provider is rejected — recompute from retained data
// instead (e.g. with internal/window or a pipeline run).
func NewUnder(prov dominance.Provider, dims, bits int, mins, maxs []float64) (*Maintainer, error) {
	if prov != nil && !dominance.IsPareto(prov) && !prov.Caps().Transitive {
		return nil, fmt.Errorf("maintain: relation %q is not transitive; incremental maintenance would be unsound", prov.Name())
	}
	enc, err := zorder.NewEncoder(dims, bits, mins, maxs)
	if err != nil {
		return nil, err
	}
	tally := &metrics.Tally{}
	if prov == nil {
		prov = dominance.Pareto{}
	}
	return &Maintainer{enc: enc, prov: prov, sky: zbtree.New(enc, 0, tally), tally: tally}, nil
}

// NewUnit creates a Maintainer over the unit hypercube.
func NewUnit(dims, bits int) (*Maintainer, error) {
	mins := make([]float64, dims)
	maxs := make([]float64, dims)
	for i := range maxs {
		maxs[i] = 1
	}
	return New(dims, bits, mins, maxs)
}

// Insert merges a batch of points into the maintained skyline and
// returns how many of the batch's points are part of the new skyline.
// It is InsertBlock over a contiguous copy of the batch.
func (m *Maintainer) Insert(batch []point.Point) (int, error) {
	for i, p := range batch {
		if len(p) != m.enc.Dims() {
			return 0, fmt.Errorf("maintain: point %d has %d dims, want %d", i, len(p), m.enc.Dims())
		}
	}
	if len(batch) == 0 {
		return 0, nil
	}
	return m.InsertBlock(point.BlockOf(m.enc.Dims(), batch))
}

// InsertBlock merges every row of a block into the maintained skyline
// and returns how many of them are part of the new skyline. The block
// is Z-encoded once as a bulk columnar pass; the batch skyline runs on
// row indices over that column, and only the surviving rows — already
// compacted into a fresh copy, so the long-lived tree never pins the
// (transient, typically much larger) block's backing array — are
// lifted into a ZB-tree and Z-merged into the maintained skyline.
func (m *Maintainer) InsertBlock(b point.Block) (int, error) {
	if b.Len() == 0 {
		return 0, nil
	}
	if b.Dims != m.enc.Dims() {
		return 0, fmt.Errorf("maintain: block has %d dims, want %d", b.Dims, m.enc.Dims())
	}
	views := b.Points()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seen += int64(b.Len())
	m.version++
	m.view = nil
	if !dominance.IsPareto(m.prov) {
		skyB := zbtree.ZSearchBlockUnder(m.prov, m.enc, 0, b, m.tally)
		if skyB.Len() > 0 {
			batchSky := zbtree.BuildFromPoints(m.enc, 0, skyB.Points(), m.tally)
			m.sky = zbtree.MergeUnder(m.prov, m.sky, batchSky)
		}
		return m.countFromBatch(views), nil
	}
	zc := m.enc.EncodeBlock(zorder.ZCol{}, b)
	skyB, skyZ := zbtree.ZSearchGroup(m.enc, 0, b, zc, m.tally)
	if skyB.Len() > 0 {
		batchSky := zbtree.BuildFromBlockZ(m.enc, 0, skyB, skyZ, m.tally)
		m.sky = zbtree.Merge(m.sky, batchSky)
	}
	return m.countFromBatch(views), nil
}

// countFromBatch reports how many maintained skyline points coordinate-
// match points of batch. Duplicates count once per stored copy.
func (m *Maintainer) countFromBatch(batch []point.Point) int {
	keys := make(map[string]int, len(batch))
	for _, p := range batch {
		keys[p.String()]++
	}
	n := 0
	for _, p := range m.sky.Points() {
		k := p.String()
		if keys[k] > 0 {
			keys[k]--
			n++
		}
	}
	return n
}

// Skyline returns a copy of the current skyline in Z-order.
func (m *Maintainer) Skyline() []point.Point {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sky.Points()
}

// View returns the current skyline (in Z-order) and the data version,
// without copying on repeat calls: the snapshot is cached until the
// next insert, so read-heavy serving layers share one immutable slice.
// Callers must not mutate the returned points.
func (m *Maintainer) View() ([]point.Point, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.view == nil {
		m.view = m.sky.Points()
	}
	return m.view, m.version
}

// Version returns the number of successful non-empty inserts so far —
// a monotonic identifier of the maintained data state.
func (m *Maintainer) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// Dims returns the dimensionality of maintained points.
func (m *Maintainer) Dims() int { return m.enc.Dims() }

// Bits returns the Z-order grid resolution.
func (m *Maintainer) Bits() int { return m.enc.Bits() }

// Descriptor returns the wire form of the maintained dominance
// relation.
func (m *Maintainer) Descriptor() dominance.Descriptor {
	return m.prov.Descriptor()
}

// Size returns the current skyline cardinality.
func (m *Maintainer) Size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sky.Len()
}

// Seen returns how many points have been inserted in total.
func (m *Maintainer) Seen() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seen
}

// Dominated reports whether p is strictly dominated by the current
// skyline (i.e. inserting it would be a no-op).
func (m *Maintainer) Dominated(p point.Point) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := zbtree.NewEntry(m.enc, p)
	return m.sky.DominatesPointUnder(m.prov, e.G, e.P)
}

// Dominators returns the skyline points that dominate p under the
// maintained relation. Because maintained relations are transitive,
// the list is non-empty exactly when p is dominated by *any* inserted
// point — the skyline members are the canonical witnesses.
func (m *Maintainer) Dominators(p point.Point) []point.Point {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []point.Point
	for _, q := range m.sky.Points() {
		if m.prov.Dominates(q, p) {
			out = append(out, q)
		}
	}
	return out
}

// Stats exposes the accumulated dominance/region test counters.
func (m *Maintainer) Stats() metrics.Snapshot {
	return m.tally.Snapshot()
}

// snapMagic opens the versioned snapshot format: a header carrying the
// dominance descriptor and data version alongside the legacy fields
// (bits, box, points seen), followed by the skyline in ZSKY binary
// form. The magic byte 'Z' (0x5A) cannot collide with the legacy
// header, whose first field was bits <= 32.
var snapMagic = [4]byte{'Z', 'M', 'T', '2'}

// Save serializes the maintainer's state: a header (magic, bits, data
// version, points seen, dominance descriptor, encoder box) followed by
// the skyline in ZSKY binary form. The full input stream is NOT
// retained — only the skyline — which is exactly the information
// needed to continue inserting. Any maintainable (transitive) relation
// round-trips: the descriptor travels in the header and Load
// reconstructs the provider from it.
func (m *Maintainer) Save(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	desc := []byte(m.prov.Descriptor().String())
	if len(desc) > math.MaxUint16 {
		return fmt.Errorf("maintain: descriptor too long (%d bytes)", len(desc))
	}
	dims := m.enc.Dims()
	hdr := make([]byte, 0, 4+4+4+8+8+2+len(desc)+16*dims)
	hdr = append(hdr, snapMagic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(m.enc.Bits()))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(dims))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(m.seen))
	hdr = binary.LittleEndian.AppendUint64(hdr, m.version)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(desc)))
	hdr = append(hdr, desc...)
	mins, maxs := m.bounds()
	for k := 0; k < dims; k++ {
		hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(mins[k]))
		hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(maxs[k]))
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	ds := point.Dataset{Dims: dims, Points: m.sky.Points()}
	return codec.WriteBinary(w, &ds)
}

// bounds recovers the encoder's box from cell corners.
func (m *Maintainer) bounds() (mins, maxs []float64) {
	dims := m.enc.Dims()
	zero := make([]uint32, dims)
	top := make([]uint32, dims)
	for k := range top {
		top[k] = m.enc.MaxGrid()
	}
	return m.enc.CellMin(zero), m.enc.CellMax(top)
}

// Load restores a maintainer previously written by Save. Both the
// current descriptor-carrying format and the legacy Pareto-only header
// are accepted.
func Load(r io.Reader) (*Maintainer, error) {
	head := make([]byte, 4)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("maintain: reading header: %w", err)
	}
	var (
		bits, dims int
		seen       int64
		version    uint64
		prov       dominance.Provider
	)
	if [4]byte(head) == snapMagic {
		rest := make([]byte, 4+4+8+8+2)
		if _, err := io.ReadFull(r, rest); err != nil {
			return nil, fmt.Errorf("maintain: reading header: %w", err)
		}
		bits = int(binary.LittleEndian.Uint32(rest[0:4]))
		dims = int(binary.LittleEndian.Uint32(rest[4:8]))
		seen = int64(binary.LittleEndian.Uint64(rest[8:16]))
		version = binary.LittleEndian.Uint64(rest[16:24])
		descLen := int(binary.LittleEndian.Uint16(rest[24:26]))
		descBuf := make([]byte, descLen)
		if _, err := io.ReadFull(r, descBuf); err != nil {
			return nil, fmt.Errorf("maintain: reading descriptor: %w", err)
		}
		var err error
		prov, err = dominance.Parse(string(descBuf))
		if err != nil {
			return nil, fmt.Errorf("maintain: snapshot descriptor: %w", err)
		}
	} else {
		// Legacy header: bits, dims, seen — always Pareto, version
		// unknown (restored as seen inserts collapsed to one state).
		rest := make([]byte, 12)
		if _, err := io.ReadFull(r, rest); err != nil {
			return nil, fmt.Errorf("maintain: reading header: %w", err)
		}
		bits = int(binary.LittleEndian.Uint32(head))
		dims = int(binary.LittleEndian.Uint32(rest[0:4]))
		seen = int64(binary.LittleEndian.Uint64(rest[4:12]))
		if seen > 0 {
			version = 1
		}
	}
	if dims <= 0 || dims > 1<<20 || bits <= 0 || bits > 32 {
		return nil, fmt.Errorf("maintain: implausible header dims=%d bits=%d", dims, bits)
	}
	box := make([]byte, 16*dims)
	if _, err := io.ReadFull(r, box); err != nil {
		return nil, fmt.Errorf("maintain: reading bounds: %w", err)
	}
	mins := make([]float64, dims)
	maxs := make([]float64, dims)
	for k := 0; k < dims; k++ {
		mins[k] = math.Float64frombits(binary.LittleEndian.Uint64(box[16*k:]))
		maxs[k] = math.Float64frombits(binary.LittleEndian.Uint64(box[8+16*k:]))
	}
	m, err := NewUnder(prov, dims, bits, mins, maxs)
	if err != nil {
		return nil, err
	}
	ds, err := codec.ReadBinary(r)
	if err != nil {
		return nil, fmt.Errorf("maintain: reading skyline: %w", err)
	}
	if ds.Dims != dims {
		return nil, fmt.Errorf("maintain: skyline dims %d != header %d", ds.Dims, dims)
	}
	m.sky = zbtree.BuildFromPoints(m.enc, 0, ds.Points, m.tally)
	m.seen = seen
	m.version = version
	return m, nil
}
