// Package maintain provides incremental skyline maintenance on top of
// the ZB-tree and Z-merge: a Maintainer ingests batches of new points
// and keeps the running skyline available at all times. This is the
// streaming counterpart of the paper's phase 3 — each batch is reduced
// to its own skyline tree and Z-merged into the maintained tree, so
// per-batch cost tracks the batch's skyline size rather than the
// stream length.
//
// Deletions are intentionally unsupported: removing a skyline point
// may resurrect points the maintainer has already discarded, which
// requires keeping the full history. Callers that need deletion should
// rebuild from retained data.
package maintain

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"zskyline/internal/codec"
	"zskyline/internal/dominance"
	"zskyline/internal/metrics"
	"zskyline/internal/point"
	"zskyline/internal/zbtree"
	"zskyline/internal/zorder"
)

// Maintainer keeps the skyline of everything inserted so far. It is
// safe for concurrent use; reads and writes serialize on one mutex
// (batched inserts make the critical section coarse but rare).
type Maintainer struct {
	mu    sync.Mutex
	enc   *zorder.Encoder
	prov  dominance.Provider
	sky   *zbtree.Tree
	tally *metrics.Tally
	seen  int64
}

// New creates a Maintainer for dims-dimensional points over the value
// box [mins, maxs]. Points outside the box are still handled exactly
// (quantization clamps; exact float tests decide), but pruning works
// best when the box matches the data.
func New(dims, bits int, mins, maxs []float64) (*Maintainer, error) {
	return NewUnder(nil, dims, bits, mins, maxs)
}

// NewUnder creates a Maintainer that maintains the skyline under the
// given dominance provider (nil selects classic Pareto dominance).
// Insert-only maintenance discards dominated points forever, which is
// exact only when the relation is transitive (a discarded point's
// future victims are also dominated by its surviving dominator); a
// non-transitive provider is rejected — recompute from retained data
// instead (e.g. with internal/window or a pipeline run).
func NewUnder(prov dominance.Provider, dims, bits int, mins, maxs []float64) (*Maintainer, error) {
	if prov != nil && !dominance.IsPareto(prov) && !prov.Caps().Transitive {
		return nil, fmt.Errorf("maintain: relation %q is not transitive; incremental maintenance would be unsound", prov.Name())
	}
	enc, err := zorder.NewEncoder(dims, bits, mins, maxs)
	if err != nil {
		return nil, err
	}
	tally := &metrics.Tally{}
	if prov == nil {
		prov = dominance.Pareto{}
	}
	return &Maintainer{enc: enc, prov: prov, sky: zbtree.New(enc, 0, tally), tally: tally}, nil
}

// NewUnit creates a Maintainer over the unit hypercube.
func NewUnit(dims, bits int) (*Maintainer, error) {
	mins := make([]float64, dims)
	maxs := make([]float64, dims)
	for i := range maxs {
		maxs[i] = 1
	}
	return New(dims, bits, mins, maxs)
}

// Insert merges a batch of points into the maintained skyline and
// returns how many of the batch's points are part of the new skyline.
// It is InsertBlock over a contiguous copy of the batch.
func (m *Maintainer) Insert(batch []point.Point) (int, error) {
	for i, p := range batch {
		if len(p) != m.enc.Dims() {
			return 0, fmt.Errorf("maintain: point %d has %d dims, want %d", i, len(p), m.enc.Dims())
		}
	}
	if len(batch) == 0 {
		return 0, nil
	}
	return m.InsertBlock(point.BlockOf(m.enc.Dims(), batch))
}

// InsertBlock merges every row of a block into the maintained skyline
// and returns how many of them are part of the new skyline. The block
// is Z-encoded once as a bulk columnar pass; the batch skyline runs on
// row indices over that column, and only the surviving rows — already
// compacted into a fresh copy, so the long-lived tree never pins the
// (transient, typically much larger) block's backing array — are
// lifted into a ZB-tree and Z-merged into the maintained skyline.
func (m *Maintainer) InsertBlock(b point.Block) (int, error) {
	if b.Len() == 0 {
		return 0, nil
	}
	if b.Dims != m.enc.Dims() {
		return 0, fmt.Errorf("maintain: block has %d dims, want %d", b.Dims, m.enc.Dims())
	}
	views := b.Points()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seen += int64(b.Len())
	if !dominance.IsPareto(m.prov) {
		skyB := zbtree.ZSearchBlockUnder(m.prov, m.enc, 0, b, m.tally)
		if skyB.Len() > 0 {
			batchSky := zbtree.BuildFromPoints(m.enc, 0, skyB.Points(), m.tally)
			m.sky = zbtree.MergeUnder(m.prov, m.sky, batchSky)
		}
		return m.countFromBatch(views), nil
	}
	zc := m.enc.EncodeBlock(zorder.ZCol{}, b)
	skyB, skyZ := zbtree.ZSearchGroup(m.enc, 0, b, zc, m.tally)
	if skyB.Len() > 0 {
		batchSky := zbtree.BuildFromBlockZ(m.enc, 0, skyB, skyZ, m.tally)
		m.sky = zbtree.Merge(m.sky, batchSky)
	}
	return m.countFromBatch(views), nil
}

// countFromBatch reports how many maintained skyline points coordinate-
// match points of batch. Duplicates count once per stored copy.
func (m *Maintainer) countFromBatch(batch []point.Point) int {
	keys := make(map[string]int, len(batch))
	for _, p := range batch {
		keys[p.String()]++
	}
	n := 0
	for _, p := range m.sky.Points() {
		k := p.String()
		if keys[k] > 0 {
			keys[k]--
			n++
		}
	}
	return n
}

// Skyline returns a copy of the current skyline in Z-order.
func (m *Maintainer) Skyline() []point.Point {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sky.Points()
}

// Size returns the current skyline cardinality.
func (m *Maintainer) Size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sky.Len()
}

// Seen returns how many points have been inserted in total.
func (m *Maintainer) Seen() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seen
}

// Dominated reports whether p is strictly dominated by the current
// skyline (i.e. inserting it would be a no-op).
func (m *Maintainer) Dominated(p point.Point) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := zbtree.NewEntry(m.enc, p)
	return m.sky.DominatesPointUnder(m.prov, e.G, e.P)
}

// Stats exposes the accumulated dominance/region test counters.
func (m *Maintainer) Stats() metrics.Snapshot {
	return m.tally.Snapshot()
}

// Save serializes the maintainer's state: a small header (bits,
// encoder box, points seen) followed by the skyline in ZSKY binary
// form. The full input stream is NOT retained — only the skyline —
// which is exactly the information needed to continue inserting.
func (m *Maintainer) Save(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !dominance.IsPareto(m.prov) {
		return fmt.Errorf("maintain: Save supports only the Pareto relation (have %q)", m.prov.Name())
	}
	dims := m.enc.Dims()
	hdr := make([]byte, 4+4+8+16*dims)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(m.enc.Bits()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(dims))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(m.seen))
	mins, maxs := m.bounds()
	for k := 0; k < dims; k++ {
		binary.LittleEndian.PutUint64(hdr[16+16*k:], math.Float64bits(mins[k]))
		binary.LittleEndian.PutUint64(hdr[24+16*k:], math.Float64bits(maxs[k]))
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	ds := point.Dataset{Dims: dims, Points: m.sky.Points()}
	return codec.WriteBinary(w, &ds)
}

// bounds recovers the encoder's box from cell corners.
func (m *Maintainer) bounds() (mins, maxs []float64) {
	dims := m.enc.Dims()
	zero := make([]uint32, dims)
	top := make([]uint32, dims)
	for k := range top {
		top[k] = m.enc.MaxGrid()
	}
	return m.enc.CellMin(zero), m.enc.CellMax(top)
}

// Load restores a maintainer previously written by Save.
func Load(r io.Reader) (*Maintainer, error) {
	head := make([]byte, 16)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("maintain: reading header: %w", err)
	}
	bits := int(binary.LittleEndian.Uint32(head[0:4]))
	dims := int(binary.LittleEndian.Uint32(head[4:8]))
	seen := int64(binary.LittleEndian.Uint64(head[8:16]))
	if dims <= 0 || dims > 1<<20 || bits <= 0 || bits > 32 {
		return nil, fmt.Errorf("maintain: implausible header dims=%d bits=%d", dims, bits)
	}
	box := make([]byte, 16*dims)
	if _, err := io.ReadFull(r, box); err != nil {
		return nil, fmt.Errorf("maintain: reading bounds: %w", err)
	}
	mins := make([]float64, dims)
	maxs := make([]float64, dims)
	for k := 0; k < dims; k++ {
		mins[k] = math.Float64frombits(binary.LittleEndian.Uint64(box[16*k:]))
		maxs[k] = math.Float64frombits(binary.LittleEndian.Uint64(box[8+16*k:]))
	}
	m, err := New(dims, bits, mins, maxs)
	if err != nil {
		return nil, err
	}
	ds, err := codec.ReadBinary(r)
	if err != nil {
		return nil, fmt.Errorf("maintain: reading skyline: %w", err)
	}
	if ds.Dims != dims {
		return nil, fmt.Errorf("maintain: skyline dims %d != header %d", ds.Dims, dims)
	}
	m.sky = zbtree.BuildFromPoints(m.enc, 0, ds.Points, m.tally)
	m.seen = seen
	return m, nil
}
