package exp

import (
	"context"
	"fmt"

	"zskyline/internal/core"
	"zskyline/internal/gen"
)

// The ablation experiments quantify the design choices DESIGN.md calls
// out: the SZB mapper filter, the partition expansion factor delta,
// the Z-order grid resolution, the ZB-tree fanout, worker scaling, and
// the shuffle I/O model.
func init() {
	register(Experiment{
		ID:       "abl-szb",
		Title:    "Ablation: SZB-tree mapper filter on/off (ZDG)",
		PaperRef: "Algorithm 3 design choice",
		Run:      runAblSZB,
	})
	register(Experiment{
		ID:       "abl-delta",
		Title:    "Ablation: partition expansion factor delta",
		PaperRef: "§4.2 design choice",
		Run:      runAblDelta,
	})
	register(Experiment{
		ID:       "abl-bits",
		Title:    "Ablation: Z-order bits per dimension",
		PaperRef: "§3.2 design choice",
		Run:      runAblBits,
	})
	register(Experiment{
		ID:       "abl-fanout",
		Title:    "Ablation: ZB-tree fanout",
		PaperRef: "§3.2 design choice",
		Run:      runAblFanout,
	})
	register(Experiment{
		ID:       "abl-workers",
		Title:    "Ablation: worker scaling (speedup curve)",
		PaperRef: "§6.5 substrate behaviour",
		Run:      runAblWorkers,
	})
}

func ablConfig(p Params, ds int) core.Config {
	cfg := core.Defaults()
	cfg.M = 32
	cfg.Workers = p.Workers
	cfg.Seed = p.Seed
	cfg.SampleRatio = sampleRatioFor(ds)
	return cfg
}

func runAbl(ctx context.Context, cfg core.Config, p Params, n, d int) (*core.Report, error) {
	cfg.Cluster = p.cluster()
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	_, rep, err := eng.Skyline(ctx, gen.Synthetic(gen.Independent, n, d, p.Seed))
	return rep, err
}

func runAblSZB(ctx context.Context, p Params) (*Table, error) {
	p = p.normalize()
	t := &Table{ID: "abl-szb", Title: "SZB filter contribution",
		Columns: []string{"filter", "total (ms)", "candidates", "shuffled (KiB)", "filtered"}}
	n := p.n(50)
	for _, off := range []bool{false, true} {
		cfg := ablConfig(p, n)
		cfg.DisableSZBFilter = off
		rep, err := runAbl(ctx, cfg, p, n, 5)
		if err != nil {
			return nil, err
		}
		label := "on"
		if off {
			label = "off"
		}
		t.AddRow(label, ms(rep.Total), fmt.Sprint(rep.Candidates),
			fmt.Sprintf("%.0f", float64(rep.Job1.ShuffleBytes)/1024),
			fmt.Sprint(rep.MapperFiltered))
	}
	return t, nil
}

func runAblDelta(ctx context.Context, p Params) (*Table, error) {
	p = p.normalize()
	t := &Table{ID: "abl-delta", Title: "partition expansion factor",
		Columns: []string{"delta", "partitions", "total (ms)", "candidates", "preprocess (ms)"}}
	n := p.n(50)
	for _, delta := range []int{1, 2, 4, 8} {
		cfg := ablConfig(p, n)
		cfg.Delta = delta
		rep, err := runAbl(ctx, cfg, p, n, 5)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(delta), fmt.Sprint(rep.Partitions), ms(rep.Total),
			fmt.Sprint(rep.Candidates), ms(rep.Preprocess))
	}
	return t, nil
}

func runAblBits(ctx context.Context, p Params) (*Table, error) {
	p = p.normalize()
	t := &Table{ID: "abl-bits", Title: "Z-order grid resolution",
		Columns: []string{"bits", "total (ms)", "candidates", "region tests", "dominance tests"}}
	n := p.n(50)
	for _, bits := range []int{4, 8, 16, 24} {
		cfg := ablConfig(p, n)
		cfg.Bits = bits
		rep, err := runAbl(ctx, cfg, p, n, 5)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(bits), ms(rep.Total), fmt.Sprint(rep.Candidates),
			fmt.Sprint(rep.Tally.RegionTests), fmt.Sprint(rep.Tally.DominanceTests))
	}
	return t, nil
}

func runAblFanout(ctx context.Context, p Params) (*Table, error) {
	p = p.normalize()
	t := &Table{ID: "abl-fanout", Title: "ZB-tree fanout",
		Columns: []string{"fanout", "total (ms)", "region tests", "dominance tests"}}
	n := p.n(50)
	for _, fanout := range []int{4, 8, 16, 32, 64} {
		cfg := ablConfig(p, n)
		cfg.Fanout = fanout
		rep, err := runAbl(ctx, cfg, p, n, 5)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(fanout), ms(rep.Total),
			fmt.Sprint(rep.Tally.RegionTests), fmt.Sprint(rep.Tally.DominanceTests))
	}
	return t, nil
}

func runAblWorkers(ctx context.Context, p Params) (*Table, error) {
	p = p.normalize()
	t := &Table{ID: "abl-workers", Title: "speedup vs simulated worker slots",
		Columns: []string{"workers", "total (ms)", "phase2 (ms)"}}
	n := p.n(80)
	for _, w := range []int{1, 2, 4, 8, 16} {
		pw := p
		pw.Workers = w
		cfg := ablConfig(pw, n)
		rep, err := runAbl(ctx, cfg, pw, n, 5)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(w), ms(rep.Total), ms(rep.Phase2))
	}
	return t, nil
}
