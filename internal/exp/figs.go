package exp

import (
	"context"
	"fmt"

	"zskyline/internal/core"
	"zskyline/internal/gen"
	"zskyline/internal/grouping"
	"zskyline/internal/partition"
	"zskyline/internal/point"
	"zskyline/internal/zorder"
)

// The six (strategy, local) series of Figure 7.
var fig7Series = []combo{
	{core.Grid, core.SB, core.MergeZM},
	{core.Grid, core.ZS, core.MergeZM},
	{core.Angle, core.SB, core.MergeZM},
	{core.Angle, core.ZS, core.MergeZM},
	{core.ZDG, core.SB, core.MergeZM},
	{core.ZDG, core.ZS, core.MergeZM},
}

func init() {
	register(Experiment{
		ID:       "fig3",
		Title:    "Skyline distribution across Z-partitions (NBA-like, HOU-like)",
		PaperRef: "Figure 3 / Example 2",
		Run:      runFig3,
	})
	registerFig7()
	registerFig8()
	registerFig9()
	register(Experiment{
		ID:       "fig10",
		Title:    "Effect of the number of groups M (reconstructed)",
		PaperRef: "§6.4 (text missing; reconstructed per DESIGN.md §7)",
		Run:      runFig10,
	})
	register(Experiment{
		ID:       "fig11",
		Title:    "Real-world high-dimensional datasets (simulated; reconstructed)",
		PaperRef: "§6.1/§6.5 (reconstructed per DESIGN.md §7)",
		Run:      runFig11,
	})
	register(Experiment{
		ID:       "fig12",
		Title:    "Scalability vs MR-GPMRS",
		PaperRef: "Figure 12",
		Run:      runFig12,
	})
	register(Experiment{
		ID:       "fig13",
		Title:    "Effect of data sampling ratio",
		PaperRef: "Figure 13",
		Run:      runFig13,
	})
}

func runFig3(ctx context.Context, p Params) (*Table, error) {
	p = p.normalize()
	const parts = 16
	t := &Table{
		ID:      "fig3",
		Title:   "sample skyline points per Z-partition",
		Columns: []string{"partition", "NBA-like (anti-corr)", "HOU-like (indep)"},
		Notes:   "real NBA/HOU data replaced by seeded simulators (DESIGN.md §6)",
	}
	nba := gen.NBALike(int(350*p.Scale)+350, p.Seed)
	hou := gen.HOULike(p.n(1), p.Seed)
	counts := func(ds *point.Dataset) ([]int, error) {
		mins, maxs := mustBounds(ds)
		enc, err := zorder.NewEncoder(ds.Dims, 12, mins, maxs)
		if err != nil {
			return nil, err
		}
		zc, err := partition.NewZCurve(enc, ds.Points, parts)
		if err != nil {
			return nil, err
		}
		out := make([]int, parts)
		for i, in := range zc.Infos() {
			if i < parts {
				out[i] = in.SkyCount
			}
		}
		return out, nil
	}
	nbaCounts, err := counts(nba)
	if err != nil {
		return nil, err
	}
	houCounts, err := counts(hou)
	if err != nil {
		return nil, err
	}
	for i := 0; i < parts; i++ {
		t.AddRow(fmt.Sprint(i), fmt.Sprint(nbaCounts[i]), fmt.Sprint(houCounts[i]))
	}
	return t, nil
}

func mustBounds(ds *point.Dataset) ([]float64, []float64) {
	mins, maxs, err := ds.Bounds()
	if err != nil {
		panic(err)
	}
	return mins, maxs
}

func registerFig7() {
	type variant struct {
		id, title string
		dist      gen.Distribution
		byDim     bool
	}
	for _, v := range []variant{
		{"fig7a", "Total time vs data size, independent, d=5, M=32", gen.Independent, false},
		{"fig7b", "Total time vs data size, anti-correlated, d=5, M=32", gen.AntiCorrelated, false},
		{"fig7c", "Total time vs dimensionality, independent, n=50k*scale", gen.Independent, true},
		{"fig7d", "Total time vs dimensionality, anti-correlated, n=50k*scale", gen.AntiCorrelated, true},
	} {
		v := v
		register(Experiment{
			ID:       v.id,
			Title:    v.title,
			PaperRef: "Figure 7",
			Run: func(ctx context.Context, p Params) (*Table, error) {
				return runFig7(ctx, p, v.id, v.title, v.dist, v.byDim)
			},
		})
	}
}

func runFig7(ctx context.Context, p Params, id, title string, dist gen.Distribution, byDim bool) (*Table, error) {
	p = p.normalize()
	cols := []string{xLabel(byDim)}
	for _, c := range fig7Series {
		cols = append(cols, c.name()+" (ms)")
	}
	t := &Table{ID: id, Title: title, Columns: cols,
		Notes: "paper sizes / 1000; shapes, not absolute seconds, are the target"}
	for _, x := range xValues(byDim) {
		n, d := 50, 5
		if byDim {
			d = x
		} else {
			n = x
		}
		ds := gen.Synthetic(dist, p.n(n), d, p.Seed)
		row := []string{fmt.Sprint(x)}
		for _, c := range fig7Series {
			rep, err := runPipeline(ctx, ds, c, 32, p)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(rep.Total))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func xLabel(byDim bool) string {
	if byDim {
		return "dims"
	}
	return "n (x1000*scale)"
}

func xValues(byDim bool) []int {
	if byDim {
		return []int{2, 4, 6, 8, 10}
	}
	return []int{10, 30, 50, 70, 90, 110}
}

// The merge-algorithm series of Figure 8: partitioning x merge.
var fig8Series = []combo{
	{core.Grid, core.ZS, core.MergeSB},
	{core.Angle, core.ZS, core.MergeSB},
	{core.ZDG, core.ZS, core.MergeSB},
	{core.Grid, core.ZS, core.MergeZS},
	{core.Angle, core.ZS, core.MergeZS},
	{core.ZDG, core.ZS, core.MergeZS},
	{core.ZDG, core.ZS, core.MergeZM},
}

func registerFig8() {
	type variant struct {
		id, title string
		dist      gen.Distribution
		byDim     bool
	}
	for _, v := range []variant{
		{"fig8a", "Merge time vs data size, independent", gen.Independent, false},
		{"fig8b", "Merge time vs data size, anti-correlated", gen.AntiCorrelated, false},
		{"fig8c", "Merge time vs dimensionality, independent", gen.Independent, true},
		{"fig8d", "Merge time vs dimensionality, anti-correlated", gen.AntiCorrelated, true},
	} {
		v := v
		register(Experiment{
			ID:       v.id,
			Title:    v.title,
			PaperRef: "Figure 8",
			Run: func(ctx context.Context, p Params) (*Table, error) {
				return runFig8(ctx, p, v.id, v.title, v.dist, v.byDim)
			},
		})
	}
}

func runFig8(ctx context.Context, p Params, id, title string, dist gen.Distribution, byDim bool) (*Table, error) {
	p = p.normalize()
	cols := []string{xLabel(byDim)}
	for _, c := range fig8Series {
		cols = append(cols, c.st.String()+"/"+c.merge.String()+"-merge (ms)")
	}
	t := &Table{ID: id, Title: title, Columns: cols,
		Notes: "cells are phase-3 (candidate merging) time only"}
	xs := []int{20, 50, 80, 110}
	if byDim {
		xs = []int{4, 6, 8, 10}
	}
	for _, x := range xs {
		n, d := 50, 5
		if byDim {
			d = x
		} else {
			n = x
		}
		ds := gen.Synthetic(dist, p.n(n), d, p.Seed)
		row := []string{fmt.Sprint(x)}
		for _, c := range fig8Series {
			rep, err := runPipeline(ctx, ds, c, 32, p)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(rep.Phase3))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func registerFig9() {
	register(Experiment{
		ID:       "fig9a",
		Title:    "Skyline candidates vs data size (independent, d=5)",
		PaperRef: "Figure 9",
		Run: func(ctx context.Context, p Params) (*Table, error) {
			return runFig9(ctx, p, "fig9a", false)
		},
	})
	register(Experiment{
		ID:       "fig9b",
		Title:    "Skyline candidates vs dimensionality (independent, n=50k*scale)",
		PaperRef: "Figure 9",
		Run: func(ctx context.Context, p Params) (*Table, error) {
			return runFig9(ctx, p, "fig9b", true)
		},
	})
}

func runFig9(ctx context.Context, p Params, id string, byDim bool) (*Table, error) {
	p = p.normalize()
	series := []combo{
		{core.Grid, core.ZS, core.MergeZM},
		{core.Angle, core.ZS, core.MergeZM},
		{core.ZDG, core.ZS, core.MergeZM},
	}
	cols := []string{xLabel(byDim)}
	for _, c := range series {
		cols = append(cols, c.st.String()+" candidates")
	}
	cols = append(cols, "|skyline|")
	t := &Table{ID: id, Title: "phase-2 skyline candidate counts", Columns: cols}
	xs := []int{10, 50, 110}
	if byDim {
		xs = []int{2, 5, 8, 10}
	}
	for _, x := range xs {
		n, d := 50, 5
		if byDim {
			d = x
		} else {
			n = x
		}
		ds := gen.Synthetic(gen.Independent, p.n(n), d, p.Seed)
		row := []string{fmt.Sprint(x)}
		var skySize int
		for _, c := range series {
			rep, err := runPipeline(ctx, ds, c, 32, p)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprint(rep.Candidates))
			skySize = rep.SkylineSize
		}
		row = append(row, fmt.Sprint(skySize))
		t.AddRow(row...)
	}
	return t, nil
}

func runFig10(ctx context.Context, p Params) (*Table, error) {
	p = p.normalize()
	t := &Table{
		ID:      "fig10",
		Title:   "ZDG+ZS+ZM while varying the group count M",
		Columns: []string{"M", "total (ms)", "candidates", "reduce-imbalance", "pruned-parts"},
		Notes:   "reconstructed experiment: §6.4 is missing from the available text",
	}
	ds := gen.Synthetic(gen.Independent, p.n(50), 5, p.Seed)
	for _, m := range []int{8, 16, 32, 64} {
		rep, err := runPipeline(ctx, ds, combo{core.ZDG, core.ZS, core.MergeZM}, m, p)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(m), ms(rep.Total), fmt.Sprint(rep.Candidates),
			fmt.Sprintf("%.2f", rep.Job1.ReduceInputBalance().Imbalance),
			fmt.Sprint(rep.PrunedPartitions))
	}
	return t, nil
}

func runFig11(ctx context.Context, p Params) (*Table, error) {
	p = p.normalize()
	t := &Table{
		ID:      "fig11",
		Title:   "Simulated real-world high-dimensional datasets, scale factor s",
		Columns: []string{"dataset", "dims", "s", "n", "Grid+ZS (ms)", "ZDG+ZS (ms)", "ZDG cands", "|skyline|"},
		Notes:   "NUS-WIDE/Flickr/DBpedia replaced by seeded simulators (DESIGN.md §6); reconstructed",
	}
	type dsSpec struct {
		name string
		base func(n int) *point.Dataset
		unit int
	}
	specs := []dsSpec{
		{"NUS-WIDE-like", func(n int) *point.Dataset { return gen.NUSWideLike(n, p.Seed) }, 60},
		{"Flickr-like", func(n int) *point.Dataset { return gen.FlickrLike(n, p.Seed) }, 30},
		{"DBpedia-like", func(n int) *point.Dataset { return gen.DBPediaLike(n, p.Seed) }, 40},
	}
	for _, spec := range specs {
		for _, s := range []int{5, 15, 25} {
			n := int(float64(spec.unit*s) * p.Scale)
			if n < 50 {
				n = 50
			}
			ds := spec.base(n)
			grid, err := runPipeline(ctx, ds, combo{core.Grid, core.ZS, core.MergeZS}, 16, p)
			if err != nil {
				return nil, err
			}
			zdg, err := runPipeline(ctx, ds, combo{core.ZDG, core.ZS, core.MergeZM}, 16, p)
			if err != nil {
				return nil, err
			}
			t.AddRow(spec.name, fmt.Sprint(ds.Dims), fmt.Sprint(s), fmt.Sprint(n),
				ms(grid.Total), ms(zdg.Total), fmt.Sprint(zdg.Candidates), fmt.Sprint(zdg.SkylineSize))
		}
	}
	return t, nil
}

func runFig12(ctx context.Context, p Params) (*Table, error) {
	p = p.normalize()
	t := &Table{
		ID:      "fig12",
		Title:   "Scalability: Grid+ZS vs Angle+ZS vs MR-GPMRS vs ZDG+ZM",
		Columns: []string{"n (x1000*scale)", "Grid+ZS (ms)", "Angle+ZS (ms)", "MR-GPMRS (ms)", "ZDG+ZM (ms)"},
	}
	for _, x := range []int{2, 10, 20, 30} {
		ds := gen.Synthetic(gen.Independent, p.n(x), 8, p.Seed)
		grid, err := runPipeline(ctx, ds, combo{core.Grid, core.ZS, core.MergeZS}, 32, p)
		if err != nil {
			return nil, err
		}
		angle, err := runPipeline(ctx, ds, combo{core.Angle, core.ZS, core.MergeZS}, 32, p)
		if err != nil {
			return nil, err
		}
		gp, err := runGPMRS(ctx, ds, p)
		if err != nil {
			return nil, err
		}
		zdg, err := runPipeline(ctx, ds, combo{core.ZDG, core.ZS, core.MergeZM}, 32, p)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(x), ms(grid.Total), ms(angle.Total), ms(gp.Total), ms(zdg.Total))
	}
	return t, nil
}

func runFig13(ctx context.Context, p Params) (*Table, error) {
	p = p.normalize()
	t := &Table{
		ID:    "fig13",
		Title: "Sampling ratio vs candidates / total time / preprocessing time (independent)",
		Columns: []string{"ratio",
			"Naive-Z cands", "ZHG cands", "ZDG cands",
			"Naive-Z ms", "ZHG ms", "ZDG ms",
			"Naive-Z prep", "ZHG prep", "ZDG prep"},
	}
	ds := gen.Synthetic(gen.Independent, p.n(50), 5, p.Seed)
	for _, ratio := range []float64{0.005, 0.01, 0.02, 0.04} {
		var cands, totals, preps []string
		for _, st := range []core.Strategy{core.NaiveZ, core.ZHG, core.ZDG} {
			cfg := core.Defaults()
			cfg.Strategy = st
			cfg.M = 32
			cfg.Workers = p.Workers
			cfg.Seed = p.Seed
			cfg.SampleRatio = ratio
			eng, err := core.NewEngine(cfg)
			if err != nil {
				return nil, err
			}
			_, rep, err := eng.Skyline(ctx, ds)
			if err != nil {
				return nil, err
			}
			cands = append(cands, fmt.Sprint(rep.Candidates))
			totals = append(totals, ms(rep.Total))
			preps = append(preps, ms(rep.Preprocess))
		}
		row := append([]string{fmt.Sprintf("%.3f", ratio)}, cands...)
		row = append(row, totals...)
		row = append(row, preps...)
		t.AddRow(row...)
	}
	return t, nil
}

func init() {
	register(Experiment{
		ID:       "fig4",
		Title:    "Sample skyline histogram and dominance power per Z-partition",
		PaperRef: "Figure 4 analysis",
		Run:      runFig4,
	})
}

func runFig4(ctx context.Context, p Params) (*Table, error) {
	p = p.normalize()
	t := &Table{
		ID:      "fig4",
		Title:   "per-partition sample skyline counts and dominance power (anti-correlated, d=4)",
		Columns: []string{"partition", "sample points", "sample skyline", "dominance power"},
	}
	ds := gen.Synthetic(gen.AntiCorrelated, p.n(10), 4, p.Seed)
	enc, err := zorder.NewUnitEncoder(4, 12)
	if err != nil {
		return nil, err
	}
	zc, err := partition.NewZCurve(enc, ds.Points, 16)
	if err != nil {
		return nil, err
	}
	infos := zc.Infos()
	_, power := grouping.DominanceMatrix(enc, infos)
	for i, in := range infos {
		t.AddRow(fmt.Sprint(in.ID), fmt.Sprint(in.Count), fmt.Sprint(in.SkyCount),
			fmt.Sprintf("%.5f", power[i]))
	}
	return t, nil
}
