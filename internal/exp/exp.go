// Package exp is the benchmark harness that regenerates every table
// and figure of the paper's evaluation (§6) at laptop scale. Each
// experiment is registered under the paper's figure id, declares its
// workload, and emits a Table whose series mirror what the paper
// plots. DESIGN.md §3 maps ids to modules; EXPERIMENTS.md records
// paper-claim vs measured shape.
//
// Dataset sizes are the paper's divided by 1000 by default (the paper
// runs 10M-110M points on a cluster; we run goroutine workers), and
// scale linearly with Params.Scale.
package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"zskyline/internal/core"
	"zskyline/internal/gpmrs"
	"zskyline/internal/mapreduce"
	"zskyline/internal/point"
)

// Params controls an experiment run.
type Params struct {
	// Scale multiplies every dataset size. 1.0 reproduces the default
	// laptop-scale sizes (paper sizes / 1000).
	Scale float64
	// Workers is the simulated cluster width. Zero selects 8.
	Workers int
	// Seed drives data generation and sampling.
	Seed int64
	// NetworkMBps, when positive, turns on the substrate's shuffle I/O
	// model: intermediate data costs wall-clock time, as on the paper's
	// Hadoop cluster. Zero leaves the in-process shuffle free.
	NetworkMBps float64
	// TaskOverheadMs, when positive, charges each task attempt a fixed
	// startup cost (container/JVM launch).
	TaskOverheadMs int
}

// cluster builds a cluster honoring the Params I/O model.
func (p Params) cluster() *mapreduce.Cluster {
	return mapreduce.NewCluster(mapreduce.ClusterConfig{
		Workers:      p.Workers,
		NetworkMBps:  p.NetworkMBps,
		TaskOverhead: time.Duration(p.TaskOverheadMs) * time.Millisecond,
	})
}

func (p Params) normalize() Params {
	if p.Scale <= 0 {
		p.Scale = 1
	}
	if p.Workers <= 0 {
		p.Workers = 8
	}
	return p
}

// n scales a base point count (expressed in thousands of points).
func (p Params) n(thousands int) int {
	v := int(float64(thousands) * 1000 * p.Scale)
	if v < 100 {
		v = 100
	}
	return v
}

// Table is one experiment's result: the rows the paper's figure plots.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries caveats (reconstructed experiments, substitutions).
	Notes string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	if t.Notes != "" {
		fmt.Fprintf(&b, "   note: %s\n", t.Notes)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	writeRow(dashes(widths))
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment is one registered paper figure.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string
	Run      func(ctx context.Context, p Params) (*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// Get looks up an experiment by id (e.g. "fig7a").
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// combo names a (strategy, local algorithm) series like the paper:
// "Grid+ZS", "ZDG+SB", ...
type combo struct {
	st    core.Strategy
	local core.LocalAlgo
	merge core.MergeAlgo
}

func (c combo) name() string {
	return c.st.String() + "+" + c.local.String()
}

// runPipeline executes one pipeline configuration and returns its
// report.
func runPipeline(ctx context.Context, ds *point.Dataset, c combo, m int, p Params) (*core.Report, error) {
	cfg := core.Defaults()
	cfg.Strategy = c.st
	cfg.Local = c.local
	cfg.Merge = c.merge
	cfg.M = m
	cfg.Workers = p.Workers
	cfg.Seed = p.Seed
	cfg.SampleRatio = sampleRatioFor(ds.Len())
	cfg.Bits = bitsFor(ds.Dims)
	cfg.Cluster = p.cluster()
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	_, rep, err := eng.Skyline(ctx, ds)
	return rep, err
}

// sampleRatioFor keeps the sample size meaningful at laptop scale: the
// paper uses 0.5%-4% of tens of millions; a fixed 2% of 10k points
// would leave too few pivots.
func sampleRatioFor(n int) float64 {
	switch {
	case n <= 20000:
		return 0.05
	case n <= 200000:
		return 0.02
	default:
		return 0.01
	}
}

// bitsFor shrinks the per-dimension grid for very high-dimensional
// data so Z-addresses stay compact.
func bitsFor(d int) int {
	switch {
	case d <= 16:
		return 16
	case d <= 64:
		return 12
	default:
		return 8
	}
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// runGPMRS executes the MR-GPMRS baseline and returns its report.
func runGPMRS(ctx context.Context, ds *point.Dataset, p Params) (*gpmrs.Report, error) {
	_, rep, err := gpmrs.Skyline(ctx, ds, gpmrs.Config{
		Workers:     p.Workers,
		SampleRatio: sampleRatioFor(ds.Len()),
		Seed:        p.Seed,
		Cluster:     p.cluster(),
	})
	return rep, err
}
