package exp

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3", "fig7a", "fig7b", "fig7c", "fig7d",
		"fig8a", "fig8b", "fig8c", "fig8d",
		"fig4", "fig9a", "fig9b", "fig10", "fig11", "fig12", "fig13",
		"abl-szb", "abl-delta", "abl-bits", "abl-fanout", "abl-workers", "abl-model", "abl-skew", "abl-stragglers", "abl-ooc",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	for _, e := range All() {
		if e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Errorf("experiment %q underspecified", e.ID)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Error("unknown id resolved")
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID > all[i].ID {
			t.Fatalf("All() unsorted at %d: %s > %s", i, all[i-1].ID, all[i].ID)
		}
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}, Notes: "n"}
	tab.AddRow("1", "2")
	text := tab.Format()
	if !strings.Contains(text, "demo") || !strings.Contains(text, "note: n") {
		t.Errorf("Format missing pieces: %q", text)
	}
	csv := tab.CSV()
	if csv != "a,bb\n1,2\n" {
		t.Errorf("CSV = %q", csv)
	}
}

func TestParamsNormalize(t *testing.T) {
	p := Params{}.normalize()
	if p.Scale != 1 || p.Workers != 8 {
		t.Errorf("normalize = %+v", p)
	}
	if got := (Params{Scale: 0.001}).n(10); got != 100 {
		t.Errorf("n floor = %d, want 100", got)
	}
	if got := (Params{Scale: 2}).n(10); got != 20000 {
		t.Errorf("n = %d, want 20000", got)
	}
}

// Smoke-run every experiment at a tiny scale; tables must be fully
// populated with parseable cells.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are not short")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	p := Params{Scale: 0.05, Workers: 4, Seed: 1}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(ctx, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 || len(tab.Columns) < 2 {
				t.Fatalf("table empty: %+v", tab)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("row width %d != %d cols", len(row), len(tab.Columns))
				}
				for i, cell := range row {
					if cell == "" {
						t.Fatalf("empty cell in row %v", row)
					}
					// All cells except the leading label columns must be
					// numeric.
					if i >= 1 && e.ID != "fig11" && e.ID != "abl-szb" && e.ID != "abl-model" && e.ID != "abl-ooc" {
						if _, err := strconv.ParseFloat(cell, 64); err != nil {
							t.Fatalf("non-numeric cell %q in %s", cell, e.ID)
						}
					}
				}
			}
			t.Log("\n" + tab.Format())
		})
	}
}

func TestSampleRatioAndBits(t *testing.T) {
	if sampleRatioFor(1000) != 0.05 || sampleRatioFor(100000) != 0.02 || sampleRatioFor(1e6) != 0.01 {
		t.Error("sampleRatioFor thresholds wrong")
	}
	if bitsFor(5) != 16 || bitsFor(32) != 12 || bitsFor(512) != 8 {
		t.Error("bitsFor thresholds wrong")
	}
}
