package exp

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"zskyline/internal/analysis"
	"zskyline/internal/codec"
	"zskyline/internal/core"
	"zskyline/internal/gen"
	"zskyline/internal/mapreduce"
	"zskyline/internal/metrics"
	"zskyline/internal/ooc"
	"zskyline/internal/partition"
	"zskyline/internal/point"
	"zskyline/internal/sample"
	"zskyline/internal/zorder"
)

func init() {
	register(Experiment{
		ID:       "abl-model",
		Title:    "§5.4 analytical model vs measured pruning",
		PaperRef: "§5.4 data pruning / Z-merge analysis",
		Run:      runAblModel,
	})
}

// runAblModel compares the paper's §5.4 pruning predictions against
// the pipeline's measured behaviour on all three distributions.
func runAblModel(ctx context.Context, p Params) (*Table, error) {
	p = p.normalize()
	t := &Table{
		ID:    "abl-model",
		Title: "predicted vs measured points removed before the merge phase",
		Columns: []string{"distribution", "n", "predicted pruned", "measured pruned",
			"V_t", "Q", "zmerge cost class"},
		Notes: "measured = mapper-filtered + (routed - candidates); prediction per §5.4 case analysis",
	}
	n := p.n(30)
	m := 16
	for _, dist := range []gen.Distribution{gen.Independent, gen.Correlated, gen.AntiCorrelated} {
		ds := gen.Synthetic(dist, n, 4, p.Seed)
		// Model inputs: sample-learned partitions.
		smp, err := sample.Ratio(ds.Points, sampleRatioFor(n), p.Seed)
		if err != nil {
			return nil, err
		}
		mins, maxs := mustBounds(ds)
		enc, err := zorder.NewEncoder(ds.Dims, bitsFor(ds.Dims), mins, maxs)
		if err != nil {
			return nil, err
		}
		zc, err := partition.NewZCurve(enc, smp, m)
		if err != nil {
			return nil, err
		}
		vt := analysis.TotalDominanceVolume(enc, zc.Infos())
		// V_t is computed over the sample; scale densities via Q.
		q, err := analysis.DataVolume(ds)
		if err != nil {
			return nil, err
		}
		pred, err := analysis.PredictPruning(dist.String(), n, m, vt, q)
		if err != nil {
			return nil, err
		}
		cost, err := analysis.PredictZMergeCost(dist.String(), n/10, m, ds.Dims, 16)
		if err != nil {
			return nil, err
		}

		// Measurement: full pipeline run.
		rep, err := runPipeline(ctx, ds, combo{core.ZDG, core.ZS, core.MergeZM}, m, p)
		if err != nil {
			return nil, err
		}
		measured := rep.MapperFiltered + int64(n) - rep.MapperFiltered - int64(rep.Candidates)
		t.AddRow(dist.String(), fmt.Sprint(n),
			fmt.Sprintf("%.0f", pred.PrunedPoints), fmt.Sprint(measured),
			fmt.Sprintf("%.4f", vt), fmt.Sprintf("%.4f", q), cost.Class)
	}
	return t, nil
}

func init() {
	register(Experiment{
		ID:       "abl-skew",
		Title:    "Load balance under data skew: Grid vs Angle vs Z-curve",
		PaperRef: "§3.3 unbalanced partitioning",
		Run:      runAblSkew,
	})
}

// runAblSkew reproduces the paper's data-skew motivation directly: on
// clustered data, equal-width grid cells receive wildly unequal point
// counts while equal-frequency Z-curve cuts stay balanced. Cells are
// the paper's |P|/M ideal; the imbalance column is max/mean.
func runAblSkew(ctx context.Context, p Params) (*Table, error) {
	p = p.normalize()
	t := &Table{
		ID:      "abl-skew",
		Title:   "partition imbalance (max/mean) on clustered data, M=32",
		Columns: []string{"clusters", "spread", "Grid", "Angle", "Z-curve"},
	}
	n := p.n(40)
	const m = 32
	for _, tc := range []struct {
		clusters int
		spread   float64
	}{{2, 0.02}, {4, 0.05}, {8, 0.10}} {
		ds := gen.Clustered(n, 6, tc.clusters, tc.spread, p.Seed)
		smp, err := sample.Ratio(ds.Points, sampleRatioFor(n), p.Seed)
		if err != nil {
			return nil, err
		}
		imb := func(assign func(pt point.Point) int, parts int) string {
			counts := make([]int, parts)
			for _, pt := range ds.Points {
				counts[assign(pt)]++
			}
			return fmt.Sprintf("%.2f", metrics.NewBalance(counts).Imbalance)
		}
		grid, err := partition.NewGrid(smp, m)
		if err != nil {
			return nil, err
		}
		angle, err := partition.NewAngle(smp, m)
		if err != nil {
			return nil, err
		}
		mins, maxs := mustBounds(ds)
		enc, err := zorder.NewEncoder(ds.Dims, bitsFor(ds.Dims), mins, maxs)
		if err != nil {
			return nil, err
		}
		zc, err := partition.NewZCurve(enc, smp, m)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(tc.clusters), fmt.Sprintf("%.2f", tc.spread),
			imb(grid.Assign, grid.N()), imb(angle.Assign, angle.N()), imb(zc.Assign, zc.N()))
	}
	_ = ctx
	return t, nil
}

func init() {
	register(Experiment{
		ID:       "abl-stragglers",
		Title:    "Straggler resistance: reduce-task balance under a slow worker",
		PaperRef: "§3.3 / §4.2 straggler claim",
		Run:      runAblStragglers,
	})
}

// runAblStragglers reproduces the paper's straggler argument without
// injection noise: when one reduce task receives far more (or far
// harder) input than its peers, it becomes the phase straggler. The
// table reports, per strategy, the max/mean ratios of reduce-task
// input and duration — the intrinsic imbalance that a slow node then
// amplifies. Grid partitioning on skewed (clustered) data is the
// pathological row.
func runAblStragglers(ctx context.Context, p Params) (*Table, error) {
	p = p.normalize()
	t := &Table{
		ID:      "abl-stragglers",
		Title:   "reduce-task imbalance (max/mean): clustered data, M=16",
		Columns: []string{"strategy", "reduce-input imbalance", "reduce-duration imbalance", "candidate imbalance"},
	}
	ds := gen.Clustered(p.n(40), 5, 3, 0.05, p.Seed)
	for _, st := range []core.Strategy{core.Grid, core.Angle, core.NaiveZ, core.ZHG, core.ZDG} {
		cfg := core.Defaults()
		cfg.Strategy = st
		cfg.M = 16
		cfg.Seed = p.Seed
		cfg.SampleRatio = sampleRatioFor(ds.Len())
		cfg.Workers = p.Workers
		cfg.Cluster = mapreduce.NewCluster(mapreduce.ClusterConfig{Workers: p.Workers})
		eng, err := core.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		_, rep, err := eng.Skyline(ctx, ds)
		if err != nil {
			return nil, err
		}
		durations := make([]int, len(rep.Job1.ReduceStats))
		for i, stt := range rep.Job1.ReduceStats {
			durations[i] = int(stt.Duration.Microseconds())
		}
		t.AddRow(st.String(),
			fmt.Sprintf("%.2f", rep.Job1.ReduceInputBalance().Imbalance),
			fmt.Sprintf("%.2f", metrics.NewBalance(durations).Imbalance),
			fmt.Sprintf("%.2f", rep.CandidateBalance().Imbalance))
	}
	return t, nil
}

func init() {
	register(Experiment{
		ID:       "abl-ooc",
		Title:    "Out-of-core streaming vs in-memory pipeline",
		PaperRef: "deployment study (HDFS-resident inputs)",
		Run:      runAblOOC,
	})
}

// runAblOOC compares the in-memory ZDG pipeline against the streaming
// maintainer over the same data persisted as a ZSKY file, at several
// batch sizes. Streaming holds only the skyline plus one batch in
// memory — the regime for inputs larger than RAM.
func runAblOOC(ctx context.Context, p Params) (*Table, error) {
	p = p.normalize()
	t := &Table{
		ID:      "abl-ooc",
		Title:   "in-memory vs streaming (anti-correlated, d=4)",
		Columns: []string{"mode", "batch", "time (ms)", "skyline"},
	}
	ds := gen.Synthetic(gen.AntiCorrelated, p.n(30), 4, p.Seed)
	dir, err := os.MkdirTemp("", "skyooc")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "data.zsky")
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := codec.WriteBinary(f, ds); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	start := time.Now()
	rep, err := runPipeline(ctx, ds, combo{core.ZDG, core.ZS, core.MergeZM}, 16, p)
	if err != nil {
		return nil, err
	}
	t.AddRow("in-memory ZDG", "-", ms(time.Since(start)), fmt.Sprint(rep.SkylineSize))

	for _, batch := range []int{1024, 8192, 65536} {
		start := time.Now()
		sky, err := ooc.SkylineFile(path, ooc.Options{BatchSize: batch})
		if err != nil {
			return nil, err
		}
		t.AddRow("streaming", fmt.Sprint(batch), ms(time.Since(start)), fmt.Sprint(len(sky)))
	}
	return t, nil
}
