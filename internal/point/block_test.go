package point

import (
	"bytes"
	"encoding/gob"
	"io"
	"testing"
)

func testBlock(t *testing.T, rows, dims int) Block {
	t.Helper()
	bb := NewBlockBuilder(dims, rows)
	for i := 0; i < rows; i++ {
		r := bb.Extend()
		for k := range r {
			r[k] = float64(i*dims + k)
		}
	}
	b := bb.Build()
	if b.Len() != rows || b.Dims != dims {
		t.Fatalf("built %dx%d, want %dx%d", b.Len(), b.Dims, rows, dims)
	}
	return b
}

func TestBlockRowsAndViews(t *testing.T) {
	b := testBlock(t, 5, 3)
	pts := b.Points()
	for i, p := range pts {
		if !p.Equal(b.Row(i)) {
			t.Fatalf("row %d view mismatch", i)
		}
	}
	// Views alias the backing array (zero copy)...
	b.Row(2)[1] = -7
	if pts[2][1] != -7 {
		t.Error("Points() does not alias the backing array")
	}
	// ...but appending to a view must not clobber the next row.
	grown := append(b.Row(0), 99)
	if b.Row(1)[0] == 99 {
		t.Error("append to a row view clobbered its neighbor")
	}
	_ = grown
}

func TestBlockOfAndClone(t *testing.T) {
	pts := []Point{{1, 2}, {3, 4}, {5, 6}}
	b := BlockOf(2, pts)
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	pts[0][0] = 42 // BlockOf copies
	if b.Row(0)[0] != 1 {
		t.Error("BlockOf aliases its input")
	}
	c := b.Clone()
	b.Data[0] = -1
	if c.Data[0] != 1 {
		t.Error("Clone aliases the original")
	}
	if empty := BlockOf(4, nil); empty.Len() != 0 || empty.Dims != 4 {
		t.Errorf("empty BlockOf = %+v", empty)
	}
}

func TestBlockSliceSplitChunk(t *testing.T) {
	b := testBlock(t, 10, 2)
	s := b.Slice(3, 7)
	if s.Len() != 4 || !s.Row(0).Equal(b.Row(3)) {
		t.Fatalf("Slice(3,7) wrong: %+v", s)
	}
	var total int
	for _, n := range []int{0, 1, 3, 10, 99} {
		total = 0
		for _, c := range b.SplitN(n) {
			total += c.Len()
		}
		if total != 10 {
			t.Errorf("SplitN(%d) covers %d rows", n, total)
		}
	}
	if got := len(b.SplitN(3)); got != 3 {
		t.Errorf("SplitN(3) = %d chunks", got)
	}
	chunks := b.ChunkBy(4)
	if len(chunks) != 3 || chunks[2].Len() != 2 {
		t.Errorf("ChunkBy(4) = %d chunks, last %d rows", len(chunks), chunks[len(chunks)-1].Len())
	}
	// Sub-blocks are views.
	chunks[0].Data[0] = -5
	if b.Data[0] != -5 {
		t.Error("ChunkBy copied")
	}
}

func TestBlockBounds(t *testing.T) {
	b := BlockOf(2, []Point{{3, -1}, {0, 5}, {2, 2}})
	mins, maxs := b.UpdateBounds(nil, nil)
	if mins[0] != 0 || mins[1] != -1 || maxs[0] != 3 || maxs[1] != 5 {
		t.Fatalf("bounds = %v %v", mins, maxs)
	}
	mins, maxs = BlockOf(2, []Point{{-9, 9}}).UpdateBounds(mins, maxs)
	if mins[0] != -9 || maxs[1] != 9 {
		t.Fatalf("accumulated bounds = %v %v", mins, maxs)
	}
}

func TestBlockMarshalRoundTrip(t *testing.T) {
	for _, b := range []Block{
		testBlock(t, 7, 3),
		{Dims: 5},
		{},
		BlockOf(1, []Point{{-0.0}, {1e300}}),
	} {
		raw, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Block
		if err := back.UnmarshalBinary(raw); err != nil {
			t.Fatal(err)
		}
		if back.Len() != b.Len() || (b.Len() > 0 && back.Dims != b.Dims) {
			t.Fatalf("round trip %dx%d -> %dx%d", b.Len(), b.Dims, back.Len(), back.Dims)
		}
		for i := range b.Data {
			if back.Data[i] != b.Data[i] {
				t.Fatalf("coord %d drifted: %v != %v", i, back.Data[i], b.Data[i])
			}
		}
		// Unmarshal must copy out of the caller's buffer.
		if len(raw) > blockHeaderLen && back.Len() > 0 {
			raw[blockHeaderLen] ^= 0xff
			if back.Data[0] != b.Data[0] {
				t.Fatal("UnmarshalBinary aliases its input")
			}
		}
	}
}

func TestBlockUnmarshalRejectsBadFrames(t *testing.T) {
	good, err := testBlock(t, 3, 2).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		good[:4],                                // truncated header
		good[:len(good)-1],                      // truncated payload
		append(append([]byte(nil), good...), 0), // trailing garbage
	}
	for i, data := range bad {
		var b Block
		if err := b.UnmarshalBinary(data); err == nil {
			t.Errorf("bad frame %d accepted", i)
		}
	}
}

func TestBlockGobRoundTrip(t *testing.T) {
	type msg struct {
		ID int
		B  Block
	}
	in := msg{ID: 7, B: testBlock(t, 4, 3)}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var out msg
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID != 7 || out.B.Len() != 4 || out.B.Dims != 3 {
		t.Fatalf("gob round trip = %+v", out)
	}
	for i := range in.B.Data {
		if out.B.Data[i] != in.B.Data[i] {
			t.Fatalf("coord %d drifted", i)
		}
	}
}

func TestBuilderDetaches(t *testing.T) {
	bb := NewBlockBuilder(2, 0)
	bb.Append(Point{1, 2})
	first := bb.Build()
	bb.Append(Point{3, 4})
	second := bb.Build()
	if first.Len() != 1 || second.Len() != 1 {
		t.Fatalf("builds hold %d and %d rows", first.Len(), second.Len())
	}
	if first.Row(0)[0] != 1 || second.Row(0)[0] != 3 {
		t.Error("builder arenas alias across Build")
	}
}

func TestSliceAndBlockSources(t *testing.T) {
	pts := []Point{{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}}
	for name, src := range map[string]Source{
		"slice": NewSliceSource(2, pts),
		"block": NewBlockSource(BlockOf(2, pts)),
	} {
		var rows int
		var batches int
		s := src
		for {
			b, err := s.Next(2)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			rows += b.Len()
			batches++
			if b.Dims != 2 {
				t.Fatalf("%s: dims %d", name, b.Dims)
			}
		}
		if rows != 5 || batches != 3 {
			t.Errorf("%s: drained %d rows in %d batches", name, rows, batches)
		}
	}
	all, err := ReadAll(NewSliceSource(2, pts))
	if err != nil || all.Len() != 5 {
		t.Fatalf("ReadAll = %dx%d, %v", all.Len(), all.Dims, err)
	}
	if !all.Row(4).Equal(pts[4]) {
		t.Error("ReadAll row drifted")
	}
}
