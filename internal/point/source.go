package point

import (
	"fmt"
	"io"
)

// Source streams a dataset as Blocks — the pull interface every bulk
// consumer (the pipeline driver, the out-of-core maintainer, the
// coordinators) reads from, whether the data lives in memory, in a
// ZSKY file, or comes straight out of a generator.
//
// Next returns the next block of at most max rows and io.EOF (with an
// empty block) once the stream is exhausted. Returned blocks are owned
// by the caller: a Source must not reuse their backing arrays.
type Source interface {
	// Dims is the stream's row width.
	Dims() int
	// Next returns up to max rows; io.EOF ends the stream.
	Next(max int) (Block, error)
}

// SliceSource streams an in-memory []Point, copying rows into
// contiguous blocks — the bridge from the pointer-per-point world onto
// the block data plane.
type SliceSource struct {
	dims int
	pts  []Point
	off  int
}

// NewSliceSource wraps pts (each of width dims) without copying; the
// copy into contiguous storage happens block by block in Next.
func NewSliceSource(dims int, pts []Point) *SliceSource {
	return &SliceSource{dims: dims, pts: pts}
}

// NewDatasetSource streams a Dataset.
func NewDatasetSource(ds *Dataset) *SliceSource {
	return &SliceSource{dims: ds.Dims, pts: ds.Points}
}

// Dims implements Source.
func (s *SliceSource) Dims() int { return s.dims }

// Next implements Source.
func (s *SliceSource) Next(max int) (Block, error) {
	if max < 1 {
		return Block{}, fmt.Errorf("point: batch size must be positive, got %d", max)
	}
	if s.off >= len(s.pts) {
		return Block{Dims: s.dims}, io.EOF
	}
	hi := s.off + max
	if hi > len(s.pts) {
		hi = len(s.pts)
	}
	b := BlockOf(s.dims, s.pts[s.off:hi])
	s.off = hi
	return b, nil
}

// BlockSource streams an existing Block by zero-copy slicing.
type BlockSource struct {
	b   Block
	off int
}

// NewBlockSource streams b. The emitted sub-blocks alias b's backing
// array.
func NewBlockSource(b Block) *BlockSource { return &BlockSource{b: b} }

// Dims implements Source.
func (s *BlockSource) Dims() int { return s.b.Dims }

// Next implements Source.
func (s *BlockSource) Next(max int) (Block, error) {
	if max < 1 {
		return Block{}, fmt.Errorf("point: batch size must be positive, got %d", max)
	}
	rows := s.b.Len()
	if s.off >= rows {
		return Block{Dims: s.b.Dims}, io.EOF
	}
	hi := s.off + max
	if hi > rows {
		hi = rows
	}
	b := s.b.Slice(s.off, hi)
	s.off = hi
	return b, nil
}

// ReadAll drains src into a single contiguous Block.
func ReadAll(src Source) (Block, error) {
	dims := src.Dims()
	if dims <= 0 {
		return Block{}, fmt.Errorf("point: source has no dimensionality")
	}
	bb := NewBlockBuilder(dims, 0)
	for {
		b, err := src.Next(1 << 16)
		if err == io.EOF {
			return bb.Build(), nil
		}
		if err != nil {
			return Block{}, err
		}
		bb.AppendBlock(b)
	}
}
