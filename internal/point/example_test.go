package point_test

import (
	"fmt"
	"io"

	"zskyline/internal/point"
)

// A BlockBuilder is the arena for assembling a Block row by row; the
// built Block then hands out zero-copy row views.
func ExampleBlockBuilder() {
	bb := point.NewBlockBuilder(2, 4)
	bb.Append(point.Point{1, 9})
	bb.Append(point.Point{2, 2})
	row := bb.Extend() // zeroed row, filled in place
	row[0], row[1] = 9, 1

	b := bb.Build() // detaches the arena; bb is reusable
	fmt.Println("rows:", b.Len(), "dims:", b.Dims)
	fmt.Println("row 1:", b.Row(1))
	fmt.Println("views:", b.Points())
	// Output:
	// rows: 3 dims: 2
	// row 1: (2, 2)
	// views: [(1, 9) (2, 2) (9, 1)]
}

// A Source streams a dataset as Blocks until io.EOF. Blocks may be
// shorter than max; callers own every returned block.
func ExampleSource() {
	pts := []point.Point{{1, 9}, {2, 2}, {9, 1}, {5, 5}, {3, 8}}
	var src point.Source = point.NewSliceSource(2, pts)

	total := 0
	for {
		b, err := src.Next(2) // at most 2 rows per block
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		total += b.Len()
		fmt.Println("block:", b.Points())
	}
	fmt.Println("streamed:", total)
	// Output:
	// block: [(1, 9) (2, 2)]
	// block: [(9, 1) (5, 5)]
	// block: [(3, 8)]
	// streamed: 5
}
