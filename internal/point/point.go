// Package point defines the multidimensional point model used across
// the library, together with the exact (floating-point) dominance
// tests that every skyline algorithm ultimately relies on.
//
// Convention: smaller is better in every dimension. A point p
// dominates a point q when p is no worse than q in every dimension and
// strictly better in at least one. Datasets that prefer larger values
// on some dimension should negate or invert those coordinates before
// calling into the library (see examples/hotels for a worked case).
package point

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Point is a single d-dimensional data point.
type Point []float64

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders the point as "(x1, x2, ...)" with short float forms.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatFloat(v, 'g', 6, 64))
	}
	b.WriteByte(')')
	return b.String()
}

// Dominates reports whether p dominates q: p[i] <= q[i] for all i and
// p[j] < q[j] for at least one j. Points of unequal dimensionality are
// never comparable.
func Dominates(p, q Point) bool {
	if len(p) != len(q) {
		return false
	}
	strict := false
	for i := range p {
		if p[i] > q[i] {
			return false
		}
		if p[i] < q[i] {
			strict = true
		}
	}
	return strict
}

// DominatesRows reports whether row i of a dominates row j of b,
// reading the flat strides directly — the block-kernel form of
// Dominates, with no row-view headers on the hot path. Blocks of
// unequal dimensionality are never comparable.
func DominatesRows(a Block, i int, b Block, j int) bool {
	dims := a.Dims
	if dims != b.Dims || dims == 0 {
		return false
	}
	pa := a.Data[i*dims : (i+1)*dims]
	pb := b.Data[j*dims : (j+1)*dims]
	strict := false
	for k := 0; k < dims; k++ {
		if pa[k] > pb[k] {
			return false
		}
		if pa[k] < pb[k] {
			strict = true
		}
	}
	return strict
}

// DominatesOrEqual reports whether p[i] <= q[i] in every dimension.
func DominatesOrEqual(p, q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] > q[i] {
			return false
		}
	}
	return true
}

// Compare classifies the dominance relationship between p and q.
type Relation int

// Possible outcomes of Compare.
const (
	Incomparable Relation = iota // neither dominates the other
	PDominatesQ                  // p dominates q
	QDominatesP                  // q dominates p
	Equal                        // identical coordinates
)

// Compare performs a single pass over both points and classifies their
// relationship. It is cheaper than calling Dominates twice.
func Compare(p, q Point) Relation {
	pBetter, qBetter := false, false
	for i := range p {
		switch {
		case p[i] < q[i]:
			pBetter = true
		case p[i] > q[i]:
			qBetter = true
		}
		if pBetter && qBetter {
			return Incomparable
		}
	}
	switch {
	case pBetter:
		return PDominatesQ
	case qBetter:
		return QDominatesP
	default:
		return Equal
	}
}

// Dataset is a collection of points sharing one dimensionality.
type Dataset struct {
	Dims   int
	Points []Point
}

// NewDataset validates that every point has dims coordinates and wraps
// them in a Dataset.
func NewDataset(dims int, pts []Point) (*Dataset, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("point: dimensionality must be positive, got %d", dims)
	}
	for i, p := range pts {
		if len(p) != dims {
			return nil, fmt.Errorf("point: point %d has %d dims, want %d", i, len(p), dims)
		}
		for k, v := range p {
			if math.IsNaN(v) {
				return nil, fmt.Errorf("point: point %d has NaN in dim %d", i, k)
			}
		}
	}
	return &Dataset{Dims: dims, Points: pts}, nil
}

// MustDataset is NewDataset that panics on error; intended for tests
// and examples with literal data.
func MustDataset(dims int, pts []Point) *Dataset {
	ds, err := NewDataset(dims, pts)
	if err != nil {
		panic(err)
	}
	return ds
}

// Len returns the number of points.
func (d *Dataset) Len() int { return len(d.Points) }

// Clone deep-copies the dataset.
func (d *Dataset) Clone() *Dataset {
	pts := make([]Point, len(d.Points))
	for i, p := range d.Points {
		pts[i] = p.Clone()
	}
	return &Dataset{Dims: d.Dims, Points: pts}
}

// Bounds returns the per-dimension minimum and maximum over the
// dataset. It returns an error for an empty dataset, because bounds of
// nothing are undefined and downstream quantizers need real intervals.
func (d *Dataset) Bounds() (mins, maxs []float64, err error) {
	if len(d.Points) == 0 {
		return nil, nil, errors.New("point: bounds of empty dataset")
	}
	mins = make([]float64, d.Dims)
	maxs = make([]float64, d.Dims)
	copy(mins, d.Points[0])
	copy(maxs, d.Points[0])
	for _, p := range d.Points[1:] {
		for k, v := range p {
			if v < mins[k] {
				mins[k] = v
			}
			if v > maxs[k] {
				maxs[k] = v
			}
		}
	}
	return mins, maxs, nil
}

// SortLexicographic orders points by coordinates, first dimension most
// significant. Useful for canonicalizing skyline results in tests.
func SortLexicographic(pts []Point) {
	sort.Slice(pts, func(i, j int) bool {
		return Less(pts[i], pts[j])
	})
}

// Less is the lexicographic order used by SortLexicographic.
func Less(p, q Point) bool {
	for i := range p {
		if i >= len(q) {
			return false
		}
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return len(p) < len(q)
}

// SumCoords returns the L1 norm of p (used by sort-based skyline
// algorithms as a topological order: if p dominates q then
// SumCoords(p) < SumCoords(q)).
func SumCoords(p Point) float64 {
	s := 0.0
	for _, v := range p {
		s += v
	}
	return s
}

// MinCorner returns the componentwise minimum of p and q.
func MinCorner(p, q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = math.Min(p[i], q[i])
	}
	return r
}

// MaxCorner returns the componentwise maximum of p and q.
func MaxCorner(p, q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = math.Max(p[i], q[i])
	}
	return r
}
