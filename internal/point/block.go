package point

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Block is a flat, contiguous batch of points: Len() rows of Dims
// float64 coordinates stored back to back in one backing array. It is
// the bulk-transfer unit of the data plane — map chunks, routed
// groups, and skyline candidates all travel as Blocks — so moving a
// million points costs one allocation and one memcpy instead of a
// million pointer-chased slices.
//
// A Block is a view: Slice, Row, and Points share the backing array
// without copying. Rows handed out by Row and Points use three-index
// slicing, so appending to a row view reallocates instead of
// clobbering its neighbor.
type Block struct {
	// Dims is the row width. A Block with Dims == 0 must be empty.
	Dims int
	// Data holds Len()*Dims coordinates, row-major.
	Data []float64
}

// BlockOf copies pts into a freshly allocated contiguous Block. Every
// point must have dims coordinates.
func BlockOf(dims int, pts []Point) Block {
	if len(pts) == 0 {
		return Block{Dims: dims}
	}
	data := make([]float64, 0, dims*len(pts))
	for _, p := range pts {
		if len(p) != dims {
			panic(fmt.Sprintf("point: BlockOf: row has %d dims, want %d", len(p), dims))
		}
		data = append(data, p...)
	}
	return Block{Dims: dims, Data: data}
}

// Len returns the number of rows.
func (b Block) Len() int {
	if b.Dims <= 0 {
		return 0
	}
	return len(b.Data) / b.Dims
}

// Bytes returns the payload size of the backing array in bytes — the
// wire-accounting estimate for one block.
func (b Block) Bytes() int64 { return int64(len(b.Data)) * 8 }

// Row returns a zero-copy view of row i.
func (b Block) Row(i int) Point {
	lo := i * b.Dims
	return Point(b.Data[lo : lo+b.Dims : lo+b.Dims])
}

// Points materializes zero-copy row views: one slice allocation of
// Len() headers, no coordinate copies. The bridge into code that still
// speaks []Point (ZB-trees, the public API).
func (b Block) Points() []Point {
	if b.Len() == 0 {
		return nil
	}
	pts := make([]Point, b.Len())
	for i := range pts {
		pts[i] = b.Row(i)
	}
	return pts
}

// AppendPoints appends zero-copy row views to dst.
func (b Block) AppendPoints(dst []Point) []Point {
	for i := 0; i < b.Len(); i++ {
		dst = append(dst, b.Row(i))
	}
	return dst
}

// Slice returns the zero-copy sub-block of rows [lo, hi).
func (b Block) Slice(lo, hi int) Block {
	return Block{Dims: b.Dims, Data: b.Data[lo*b.Dims : hi*b.Dims : hi*b.Dims]}
}

// SplitN cuts the block into n near-equal contiguous sub-blocks
// without copying (at least one row each; fewer blocks when the input
// is small) — the positional sharding of the shared-memory executor.
func (b Block) SplitN(n int) []Block {
	rows := b.Len()
	if n < 1 {
		n = 1
	}
	if n > rows {
		n = rows
	}
	if n == 0 {
		return nil
	}
	out := make([]Block, 0, n)
	for i := 0; i < n; i++ {
		lo := i * rows / n
		hi := (i + 1) * rows / n
		if lo < hi {
			out = append(out, b.Slice(lo, hi))
		}
	}
	return out
}

// ChunkBy cuts the block into contiguous sub-blocks of at most size
// rows, without copying.
func (b Block) ChunkBy(size int) []Block {
	if size < 1 {
		size = 1
	}
	rows := b.Len()
	var out []Block
	for lo := 0; lo < rows; lo += size {
		hi := lo + size
		if hi > rows {
			hi = rows
		}
		out = append(out, b.Slice(lo, hi))
	}
	return out
}

// Clone deep-copies the block.
func (b Block) Clone() Block {
	return Block{Dims: b.Dims, Data: append([]float64(nil), b.Data...)}
}

// UpdateBounds folds the block's rows into a running per-dimension
// bounding box. Nil mins/maxs start a fresh box from the first row.
func (b Block) UpdateBounds(mins, maxs []float64) (newMins, newMaxs []float64) {
	rows := b.Len()
	if rows == 0 {
		return mins, maxs
	}
	i := 0
	if mins == nil {
		mins = append([]float64(nil), b.Row(0)...)
		maxs = append([]float64(nil), b.Row(0)...)
		i = 1
	}
	for ; i < rows; i++ {
		lo := i * b.Dims
		for k := 0; k < b.Dims; k++ {
			v := b.Data[lo+k]
			if v < mins[k] {
				mins[k] = v
			}
			if v > maxs[k] {
				maxs[k] = v
			}
		}
	}
	return mins, maxs
}

// blockHeaderLen is the marshaled frame header: dims and rows, both
// little-endian uint32.
const blockHeaderLen = 8

// maxBlockRows bounds a single marshaled frame.
const maxBlockRows = 1<<32 - 1

// hostLittleEndian reports whether this machine stores float64 words
// little-endian, enabling the zero-copy payload path.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// float64Bytes reinterprets f's backing array as raw bytes without
// copying. Only meaningful on little-endian hosts, where the in-memory
// layout already matches the wire format.
func float64Bytes(f []float64) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(f))), len(f)*8)
}

// AppendBinary appends the block's wire frame to dst:
//
//	[dims uint32 LE][rows uint32 LE][rows*dims float64 LE]
//
// On little-endian hosts the payload is one append of the backing
// array — no per-point, per-coordinate encoding.
func (b Block) AppendBinary(dst []byte) ([]byte, error) {
	rows := b.Len()
	if b.Dims < 0 || rows > maxBlockRows {
		return nil, fmt.Errorf("point: block not marshalable: dims=%d rows=%d", b.Dims, rows)
	}
	if b.Dims > 0 && len(b.Data)%b.Dims != 0 {
		return nil, fmt.Errorf("point: ragged block: %d coords, dims=%d", len(b.Data), b.Dims)
	}
	if b.Dims == 0 && len(b.Data) > 0 {
		return nil, fmt.Errorf("point: dimensionless block holds %d coords", len(b.Data))
	}
	var hdr [blockHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(b.Dims))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(rows))
	dst = append(dst, hdr[:]...)
	if hostLittleEndian {
		return append(dst, float64Bytes(b.Data)...), nil
	}
	var buf [8]byte
	for _, v := range b.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		dst = append(dst, buf[:]...)
	}
	return dst, nil
}

// MarshalBinary implements encoding.BinaryMarshaler with the
// AppendBinary frame. gob picks this up automatically, and the framed
// transport appends the same frame directly, so a Block crosses the
// wire as one opaque byte blob either way.
func (b Block) MarshalBinary() ([]byte, error) {
	return b.AppendBinary(make([]byte, 0, blockHeaderLen+8*len(b.Data)))
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The payload
// is copied out of data (decoders reuse their buffers); on
// little-endian hosts the copy is a single memmove.
func (b *Block) UnmarshalBinary(data []byte) error {
	if len(data) < blockHeaderLen {
		return fmt.Errorf("point: block frame truncated: %d bytes", len(data))
	}
	dims := int(binary.LittleEndian.Uint32(data[0:4]))
	rows := int(binary.LittleEndian.Uint32(data[4:8]))
	payload := data[blockHeaderLen:]
	if dims > 1<<20 {
		return fmt.Errorf("point: implausible block dims %d", dims)
	}
	if dims == 0 && rows > 0 {
		return fmt.Errorf("point: dimensionless block frame with %d rows", rows)
	}
	n := dims * rows
	if len(payload) != n*8 {
		return fmt.Errorf("point: block frame has %d payload bytes, want %d", len(payload), n*8)
	}
	b.Dims = dims
	if n == 0 {
		b.Data = nil
		return nil
	}
	b.Data = make([]float64, n)
	if hostLittleEndian {
		copy(float64Bytes(b.Data), payload)
		return nil
	}
	for i := range b.Data {
		b.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return nil
}

// GobEncode delegates to MarshalBinary so gob never falls back to
// field-by-field struct encoding for blocks.
func (b Block) GobEncode() ([]byte, error) { return b.MarshalBinary() }

// GobDecode delegates to UnmarshalBinary.
func (b *Block) GobDecode(data []byte) error { return b.UnmarshalBinary(data) }

// BlockBuilder accumulates rows into one growing arena and hands the
// result off as a Block. It amortizes growth the way bytes.Buffer
// does; Build detaches the arena, so a builder can be reused without
// aliasing previously built blocks.
type BlockBuilder struct {
	dims int
	data []float64
}

// NewBlockBuilder creates a builder for dims-wide rows with capacity
// for capRows rows (0 for lazy growth).
func NewBlockBuilder(dims, capRows int) *BlockBuilder {
	if dims <= 0 {
		panic(fmt.Sprintf("point: builder dims must be positive, got %d", dims))
	}
	bb := &BlockBuilder{dims: dims}
	if capRows > 0 {
		bb.data = make([]float64, 0, dims*capRows)
	}
	return bb
}

// Dims returns the row width.
func (bb *BlockBuilder) Dims() int { return bb.dims }

// Len returns the number of rows accumulated so far.
func (bb *BlockBuilder) Len() int { return len(bb.data) / bb.dims }

// Append copies one point into the arena.
func (bb *BlockBuilder) Append(p Point) {
	if len(p) != bb.dims {
		panic(fmt.Sprintf("point: builder row has %d dims, want %d", len(p), bb.dims))
	}
	bb.data = append(bb.data, p...)
}

// AppendBlock copies all of b's rows into the arena.
func (bb *BlockBuilder) AppendBlock(b Block) {
	if b.Len() == 0 {
		return
	}
	if b.Dims != bb.dims {
		panic(fmt.Sprintf("point: builder appending %d-dim block, want %d", b.Dims, bb.dims))
	}
	bb.data = append(bb.data, b.Data...)
}

// Extend appends one zeroed row and returns its view, for generators
// that fill coordinates in place without a staging allocation. The
// view is valid only until the next builder call (growth may move the
// arena): fill it before appending again.
func (bb *BlockBuilder) Extend() Point {
	lo := len(bb.data)
	for i := 0; i < bb.dims; i++ {
		bb.data = append(bb.data, 0)
	}
	return Point(bb.data[lo : lo+bb.dims : lo+bb.dims])
}

// Build detaches and returns the accumulated Block. The builder is
// left empty and may keep accumulating into a fresh arena.
func (bb *BlockBuilder) Build() Block {
	b := Block{Dims: bb.dims, Data: bb.data}
	bb.data = nil
	return b
}
