package point

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominatesBasics(t *testing.T) {
	cases := []struct {
		name string
		p, q Point
		want bool
	}{
		{"strictly better both dims", Point{1, 1}, Point{2, 2}, true},
		{"better one equal other", Point{1, 2}, Point{2, 2}, true},
		{"equal points", Point{1, 2}, Point{1, 2}, false},
		{"worse one dim", Point{1, 3}, Point{2, 2}, false},
		{"incomparable", Point{0, 5}, Point{5, 0}, false},
		{"dominated direction", Point{2, 2}, Point{1, 1}, false},
		{"mismatched dims", Point{1}, Point{1, 2}, false},
		{"single dim strict", Point{1}, Point{2}, true},
		{"single dim equal", Point{1}, Point{1}, false},
		{"negative coords", Point{-3, -1}, Point{-2, -1}, true},
	}
	for _, c := range cases {
		if got := Dominates(c.p, c.q); got != c.want {
			t.Errorf("%s: Dominates(%v, %v) = %v, want %v", c.name, c.p, c.q, got, c.want)
		}
	}
}

func TestDominatesOrEqual(t *testing.T) {
	if !DominatesOrEqual(Point{1, 2}, Point{1, 2}) {
		t.Error("equal points should be DominatesOrEqual")
	}
	if DominatesOrEqual(Point{1, 3}, Point{1, 2}) {
		t.Error("worse dim should fail DominatesOrEqual")
	}
	if DominatesOrEqual(Point{1}, Point{1, 2}) {
		t.Error("mismatched dims should fail")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		p, q Point
		want Relation
	}{
		{Point{1, 1}, Point{2, 2}, PDominatesQ},
		{Point{2, 2}, Point{1, 1}, QDominatesP},
		{Point{1, 2}, Point{1, 2}, Equal},
		{Point{0, 5}, Point{5, 0}, Incomparable},
	}
	for _, c := range cases {
		if got := Compare(c.p, c.q); got != c.want {
			t.Errorf("Compare(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

// Property: Compare agrees with the two Dominates calls.
func TestCompareAgreesWithDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(6)
		p, q := make(Point, d), make(Point, d)
		for i := 0; i < d; i++ {
			// Small integer domain to generate plenty of ties.
			p[i] = float64(r.Intn(4))
			q[i] = float64(r.Intn(4))
		}
		rel := Compare(p, q)
		pd, qd := Dominates(p, q), Dominates(q, p)
		switch rel {
		case PDominatesQ:
			return pd && !qd
		case QDominatesP:
			return qd && !pd
		case Equal:
			return !pd && !qd && p.Equal(q)
		default:
			return !pd && !qd && !p.Equal(q)
		}
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: dominance is irreflexive, asymmetric, and transitive.
func TestDominanceIsStrictPartialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gen := func(r *rand.Rand, d int) Point {
		p := make(Point, d)
		for i := range p {
			p[i] = float64(r.Intn(5))
		}
		return p
	}
	for iter := 0; iter < 3000; iter++ {
		d := 1 + rng.Intn(5)
		a, b, c := gen(rng, d), gen(rng, d), gen(rng, d)
		if Dominates(a, a) {
			t.Fatalf("irreflexivity violated: %v", a)
		}
		if Dominates(a, b) && Dominates(b, a) {
			t.Fatalf("asymmetry violated: %v %v", a, b)
		}
		if Dominates(a, b) && Dominates(b, c) && !Dominates(a, c) {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
	}
}

// Property: if p dominates q then SumCoords(p) < SumCoords(q).
func TestSumCoordsIsTopologicalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 3000; iter++ {
		d := 1 + rng.Intn(6)
		p, q := make(Point, d), make(Point, d)
		for i := 0; i < d; i++ {
			p[i] = rng.Float64()
			q[i] = rng.Float64()
		}
		if Dominates(p, q) && SumCoords(p) >= SumCoords(q) {
			t.Fatalf("SumCoords order violated: %v %v", p, q)
		}
	}
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(0, nil); err == nil {
		t.Error("zero dims should fail")
	}
	if _, err := NewDataset(2, []Point{{1}}); err == nil {
		t.Error("dim mismatch should fail")
	}
	nan := 0.0
	nan /= nan
	if _, err := NewDataset(1, []Point{{nan}}); err == nil {
		t.Error("NaN coordinate should fail")
	}
	ds, err := NewDataset(2, []Point{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Errorf("Len = %d, want 2", ds.Len())
	}
}

func TestBounds(t *testing.T) {
	ds := MustDataset(2, []Point{{1, 9}, {4, 2}, {3, 5}})
	mins, maxs, err := ds.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if mins[0] != 1 || mins[1] != 2 || maxs[0] != 4 || maxs[1] != 9 {
		t.Errorf("bounds = %v %v", mins, maxs)
	}
	empty := &Dataset{Dims: 2}
	if _, _, err := empty.Bounds(); err == nil {
		t.Error("empty dataset bounds should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	ds := MustDataset(2, []Point{{1, 2}})
	cp := ds.Clone()
	cp.Points[0][0] = 99
	if ds.Points[0][0] != 1 {
		t.Error("Clone shares backing arrays")
	}
}

func TestSortLexicographic(t *testing.T) {
	pts := []Point{{2, 1}, {1, 9}, {1, 3}, {2, 0}}
	SortLexicographic(pts)
	want := []Point{{1, 3}, {1, 9}, {2, 0}, {2, 1}}
	for i := range want {
		if !pts[i].Equal(want[i]) {
			t.Fatalf("sorted[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestMinMaxCorner(t *testing.T) {
	p, q := Point{1, 5}, Point{3, 2}
	if got := MinCorner(p, q); !got.Equal(Point{1, 2}) {
		t.Errorf("MinCorner = %v", got)
	}
	if got := MaxCorner(p, q); !got.Equal(Point{3, 5}) {
		t.Errorf("MaxCorner = %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	if got := (Point{1, 2.5}).String(); got != "(1, 2.5)" {
		t.Errorf("String = %q", got)
	}
}
