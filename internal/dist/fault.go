package dist

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultAction is what an injected fault does to the matched RPC.
type FaultAction int

const (
	// FaultDelay stalls the worker's request loop for Rule.Delay
	// before serving the matched call — a deterministic straggler.
	FaultDelay FaultAction = iota
	// FaultDrop serves the matched call but swallows its response: the
	// client never hears back and only a per-call deadline rescues it.
	FaultDrop
	// FaultSever closes the serving connection before the matched call
	// runs: every in-flight call on that connection dies with a
	// transport error, exactly like a worker crash.
	FaultSever
)

// String names the action for plan listings and errors.
func (a FaultAction) String() string {
	switch a {
	case FaultDelay:
		return "delay"
	case FaultDrop:
		return "drop"
	case FaultSever:
		return "sever"
	}
	return fmt.Sprintf("FaultAction(%d)", int(a))
}

// FaultRule injects one fault into the Nth (1-based) call of Method
// served by the worker, counting across all connections so the
// schedule is deterministic even as coordinators reconnect. Count > 1
// extends the fault to that many consecutive calls of the method.
type FaultRule struct {
	Method string // full RPC name, e.g. "Worker.ReduceGroup"
	Nth    int    // 1-based per-method call ordinal the fault fires on
	Count  int    // consecutive matching calls affected (0 or 1 = one)
	Action FaultAction
	Delay  time.Duration // FaultDelay only
}

func (r FaultRule) span() (lo, hi int) {
	n := r.Count
	if n < 1 {
		n = 1
	}
	return r.Nth, r.Nth + n - 1
}

// FaultPlan is a deterministic fault schedule a worker consults on
// every incoming RPC. It is safe for concurrent use; a nil plan
// injects nothing. Plans exist for tests and operator chaos drills
// (skyworker -fault) — production workers run without one.
type FaultPlan struct {
	mu    sync.Mutex
	rules []FaultRule
	seen  map[string]int
	hits  int
}

// NewFaultPlan builds a plan from rules.
func NewFaultPlan(rules ...FaultRule) *FaultPlan {
	return &FaultPlan{rules: rules, seen: make(map[string]int)}
}

// ParseFaultPlan parses a comma-separated fault spec, one rule per
// entry, each "method:nth[xCount]:action[:delay]":
//
//	Worker.MergeGroups:1:delay:2s    delay the first merge by 2s
//	Worker.MapChunk:2x3:sever        kill the conn on map calls 2-4
//	Worker.ReduceGroup:1:drop        swallow the first reduce reply
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	var rules []FaultRule
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		parts := strings.Split(ent, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("dist: fault %q: want method:nth:action[:delay]", ent)
		}
		var r FaultRule
		r.Method = parts[0]
		nth := parts[1]
		if x := strings.SplitN(nth, "x", 2); len(x) == 2 {
			nth = x[0]
			n, err := strconv.Atoi(x[1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("dist: fault %q: bad count %q", ent, x[1])
			}
			r.Count = n
		}
		n, err := strconv.Atoi(nth)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("dist: fault %q: bad ordinal %q", ent, nth)
		}
		r.Nth = n
		switch parts[2] {
		case "delay":
			if len(parts) != 4 {
				return nil, fmt.Errorf("dist: fault %q: delay needs a duration", ent)
			}
			d, err := time.ParseDuration(parts[3])
			if err != nil {
				return nil, fmt.Errorf("dist: fault %q: %v", ent, err)
			}
			r.Action, r.Delay = FaultDelay, d
		case "drop":
			r.Action = FaultDrop
		case "sever":
			r.Action = FaultSever
		default:
			return nil, fmt.Errorf("dist: fault %q: unknown action %q", ent, parts[2])
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("dist: empty fault spec %q", spec)
	}
	return NewFaultPlan(rules...), nil
}

// match advances the per-method call counter and returns the rule the
// call trips, if any. Nil-safe.
func (p *FaultPlan) match(method string) *FaultRule {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seen[method]++
	n := p.seen[method]
	for i := range p.rules {
		r := &p.rules[i]
		if r.Method != method {
			continue
		}
		if lo, hi := r.span(); n >= lo && n <= hi {
			p.hits++
			rc := *r
			return &rc
		}
	}
	return nil
}

// Injected reports how many calls have tripped a rule so far.
func (p *FaultPlan) Injected() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits
}
