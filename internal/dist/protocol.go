// Package dist executes the paper's three-phase pipeline across real
// processes: a coordinator and N workers that speak net/rpc over TCP
// with gob encoding. It is the share-*nothing* deployment of the same
// phase logic internal/plan defines — phase 1 happens on the
// coordinator (master node), phase 2's map+combine and reduce run on
// the workers, and phase 3's Z-merge runs on one worker, exactly
// mirroring the paper's Hadoop layout (Figure 5).
//
// Workers are stateful only in that they cache the broadcast
// partitioning rule (the distributed-cache step of Algorithm 3) keyed
// by a rule ID, so repeated jobs pay the broadcast once.
//
// # Fault tolerance
//
// The coordinator assumes workers fail: every RPC runs under a policy
// of per-attempt deadlines, bounded retries with jittered exponential
// backoff, and failover, with errors classified as retryable
// (transport casualties: conn reset, timeout, rpc.ErrShutdown) or
// fatal (worker verdicts: bad rule, dims mismatch). Worker liveness is
// a state machine — live → suspect → dead → resurrecting — where
// suspect/dead workers are re-dialed every RedialInterval and rejoin
// the task rotation only after a ping and a re-broadcast of the
// current rule succeed, so a restarted worker process serves
// correctly. Straggling reduce/merge calls can be hedged on a second
// worker. A query fails with ErrClusterDown only once every worker is
// confirmed dead. FaultPlan injects deterministic delay/drop/sever
// faults for tests and chaos drills. docs/OPERATIONS.md is the
// operator-facing guide to all of this.
package dist

import (
	"zskyline/internal/plan"
	"zskyline/internal/point"
)

// RuleBlob is the serialized phase-1 routing rule broadcast to every
// worker: everything a mapper needs to filter and route points.
type RuleBlob struct {
	// ID identifies the rule so workers can cache it across calls.
	ID uint64
	// Data is the backend-agnostic rule payload (encoder bounds, Z-curve
	// pivots, partition->group map, sample skyline, algorithms).
	Data plan.RuleData
}

// LoadRuleArgs asks a worker to install a rule.
type LoadRuleArgs struct {
	Rule RuleBlob
}

// LoadRuleReply acknowledges installation.
type LoadRuleReply struct {
	Cached bool // true if the worker already had this rule
}

// MapArgs carries one input chunk for phase 2's map+combine step. The
// chunk travels as one flat block frame — a single binary write of the
// backing array — instead of a per-point gob encode.
type MapArgs struct {
	RuleID uint64
	Block  point.Block
}

// GroupPoints is a group's worth of routed points or candidates.
type GroupPoints = plan.Group

// MapReply returns the chunk's local skyline candidates per group.
type MapReply struct {
	Groups   []GroupPoints
	Filtered int64 // points dropped by the SZB filter / pruned partitions
}

// ReduceArgs carries all of one group's candidates for the per-group
// skyline (phase 2 reduce).
type ReduceArgs struct {
	RuleID uint64
	Group  GroupPoints
}

// ReduceReply returns the group's skyline candidates as one group:
// the candidate block plus its Z-address column, so the merge phase
// never re-encodes what the reducer already computed.
type ReduceReply struct {
	Candidates GroupPoints
}

// MergeArgs carries candidate groups for a phase-3 Z-merge task.
type MergeArgs struct {
	RuleID uint64
	Groups []GroupPoints
}

// MergeReply returns the merged skyline as one group; tree-merge
// rounds feed it straight back into the next MergeArgs, column and
// all.
type MergeReply struct {
	Skyline GroupPoints
}

// PingArgs/PingReply support liveness checks.
type PingArgs struct{}

// PingReply reports worker identity.
type PingReply struct {
	Addr string
}
