// Package dist executes the paper's three-phase pipeline across real
// processes: a coordinator and N workers that speak the framed binary
// protocol of internal/transport over TCP. Every wire type below
// carries its own AppendTo/DecodeFrom pair, so bulk payloads (point
// blocks, Z-address columns, shard frames) travel as the same flat
// little-endian arrays they occupy in memory; only the two
// control structs with maps inside (the rule blob, the shard-stats
// report) ride an embedded gob payload. It is the share-*nothing*
// deployment of the same phase logic internal/plan defines — phase 1
// happens on the coordinator (master node), phase 2's map+combine and
// reduce run on the workers, and phase 3's Z-merge runs on one worker,
// exactly mirroring the paper's Hadoop layout (Figure 5).
//
// Workers are stateful only in that they cache the broadcast
// partitioning rule (the distributed-cache step of Algorithm 3) keyed
// by a rule ID, so repeated jobs pay the broadcast once.
//
// # Fault tolerance
//
// The coordinator assumes workers fail: every RPC runs under a policy
// of per-attempt deadlines, bounded retries with jittered exponential
// backoff, and failover, with errors classified as retryable
// (transport casualties: conn reset, timeout, transport.ErrShutdown) or
// fatal (worker verdicts: bad rule, dims mismatch). Worker liveness is
// a state machine — live → suspect → dead → resurrecting — where
// suspect/dead workers are re-dialed every RedialInterval and rejoin
// the task rotation only after a ping and a re-broadcast of the
// current rule succeed, so a restarted worker process serves
// correctly. Straggling reduce/merge calls can be hedged on a second
// worker. A query fails with ErrClusterDown only once every worker is
// confirmed dead. FaultPlan injects deterministic delay/drop/sever
// faults for tests and chaos drills. docs/OPERATIONS.md is the
// operator-facing guide to all of this.
package dist

import (
	"zskyline/internal/plan"
	"zskyline/internal/point"
)

// RuleBlob is the serialized phase-1 routing rule broadcast to every
// worker: everything a mapper needs to filter and route points.
type RuleBlob struct {
	// ID identifies the rule so workers can cache it across calls.
	ID uint64
	// Data is the backend-agnostic rule payload (encoder bounds, Z-curve
	// pivots, partition->group map, sample skyline, algorithms).
	Data plan.RuleData
	// Shards, when non-empty, is the sharded tier's ownership table
	// riding the broadcast. Workers install it before the rule-cache
	// check, so a map revision reaches workers even when the rule
	// itself is already cached, and resurrection (which re-broadcasts
	// the last blob) re-installs current ownership on restarted
	// processes for free.
	Shards ShardMap
}

// LoadRuleArgs asks a worker to install a rule.
type LoadRuleArgs struct {
	Rule RuleBlob
}

// LoadRuleReply acknowledges installation.
type LoadRuleReply struct {
	Cached bool // true if the worker already had this rule
}

// MapArgs carries one input chunk for phase 2's map+combine step. The
// chunk travels as one flat block frame — a single binary write of the
// backing array — instead of a per-point gob encode.
type MapArgs struct {
	RuleID uint64
	Block  point.Block
}

// GroupPoints is a group's worth of routed points or candidates.
type GroupPoints = plan.Group

// MapReply returns the chunk's local skyline candidates per group.
type MapReply struct {
	Groups   []GroupPoints
	Filtered int64 // points dropped by the SZB filter / pruned partitions
}

// ReduceArgs carries all of one group's candidates for the per-group
// skyline (phase 2 reduce).
type ReduceArgs struct {
	RuleID uint64
	Group  GroupPoints
}

// ReduceReply returns the group's skyline candidates as one group:
// the candidate block plus its Z-address column, so the merge phase
// never re-encodes what the reducer already computed.
type ReduceReply struct {
	Candidates GroupPoints
}

// MergeArgs carries candidate groups for a phase-3 Z-merge task.
type MergeArgs struct {
	RuleID uint64
	Groups []GroupPoints
}

// MergeReply returns the merged skyline as one group; tree-merge
// rounds feed it straight back into the next MergeArgs, column and
// all.
type MergeReply struct {
	Skyline GroupPoints
}

// PingArgs/PingReply support liveness checks.
type PingArgs struct{}

// PingReply reports worker identity.
type PingReply struct {
	Addr string
}

// ---- sharded-tier wire types ----
//
// The shard data plane ships raw block frames ([]byte produced by
// point.Block.MarshalBinary and zorder.ZCol.MarshalBinary) instead of
// the typed values: gob then moves one opaque byte slice per call, and
// the handoff can forward the exact frames it pulled from the source
// to the staging targets without a decode/re-encode round trip.

// StoreShardArgs appends one routed insert batch to a shard replica.
// Nil frames are legal and store nothing — the residency seed a new
// cluster (or a committed handoff target) uses to mark a shard served
// here even before its first insert.
type StoreShardArgs struct {
	// RuleID names the cluster rule the shard computes under.
	RuleID uint64
	// MapVersion is the coordinator's shard-map version at routing
	// time; workers fold it into their installed version.
	MapVersion uint64
	// ShardID is the stable shard identifier.
	ShardID int
	// BlockFrame is the batch's point.Block frame; ZFrame its
	// zorder.ZCol frame, one address per block row.
	BlockFrame []byte
	ZFrame     []byte
}

// StoreShardReply acknowledges a store with the replica's new resident
// row count for the shard.
type StoreShardReply struct {
	Rows int
}

// ShardSkyArgs asks a replica for the skyline of its resident shard
// data, optionally restricted to the Z-range [Lo, Hi) (nil bounds mean
// the curve's ends). A worker that does not hold the shard answers
// "not resident", which the coordinator classifies as shard-moved and
// answers by refreshing its map snapshot and re-routing.
type ShardSkyArgs struct {
	RuleID     uint64
	MapVersion uint64
	ShardID    int
	Lo, Hi     []uint64
}

// ShardSkyReply returns the shard-local skyline as one group (Gid =
// shard ID) carrying its Z-address column, ready for the cross-shard
// merge rounds.
type ShardSkyReply struct {
	Group GroupPoints
}

// PullShardArgs streams a shard's resident data off a replica in
// resumable batches: Cursor is the replica's group-list position from
// the previous reply (0 to start), MaxRows a soft batch bound (whole
// append batches are never split). Replicas of one shard hold
// identical group lists — they received the same ordered StoreShard
// sequence — so a pull interrupted by a replica's death resumes on
// another replica at the same cursor.
type PullShardArgs struct {
	ShardID int
	Cursor  int
	MaxRows int
}

// PullShardReply carries one pulled batch as raw frames plus the
// resume position.
type PullShardReply struct {
	BlockFrame []byte
	ZFrame     []byte
	// Rows is the batch's row count; Next the cursor for the following
	// pull; Done reports that the shard is fully streamed.
	Rows int
	Next int
	Done bool
}

// StageShardArgs appends one pulled batch to a handoff staging area,
// keyed by (shard, epoch) so a staged-but-aborted handoff can never
// pollute resident data or a later attempt's stage.
type StageShardArgs struct {
	ShardID int
	// Epoch identifies the handoff attempt. It is unique per attempt
	// (not the target map version, which an aborted attempt reuses), so
	// a retry never appends onto a failed attempt's leftover stage.
	Epoch      uint64
	BlockFrame []byte
	ZFrame     []byte
}

// StageShardReply acknowledges staging with the staged row count.
type StageShardReply struct {
	Rows int
}

// CommitShardArgs promotes a fully staged (shard, epoch) to resident,
// replacing any prior resident data for the shard, and folds
// MapVersion into the worker's installed version.
type CommitShardArgs struct {
	ShardID    int
	Epoch      uint64
	MapVersion uint64
}

// CommitShardReply acknowledges the commit with the now-resident rows.
type CommitShardReply struct {
	Rows int
}

// DropStagedArgs discards one staging area — the abort path.
type DropStagedArgs struct {
	ShardID int
	Epoch   uint64
}

// DropStagedReply acknowledges the discard.
type DropStagedReply struct{}

// DropShardArgs removes a shard's resident data from a replica after
// ownership moved away. The version guard makes late or duplicate
// drops harmless: a worker that has since installed a newer map (for
// example the shard moved back to it) rejects the stale drop.
type DropShardArgs struct {
	ShardID    int
	MapVersion uint64
}

// DropShardReply acknowledges the drop.
type DropShardReply struct{}

// ShardStatsArgs asks a worker for its resident shard inventory.
type ShardStatsArgs struct{}

// ShardStatsReply reports the worker's installed shard-map version and
// resident rows per shard ID.
type ShardStatsReply struct {
	MapVersion uint64
	Rows       map[int]int64
}
