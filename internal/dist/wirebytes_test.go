package dist

import (
	"context"
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/zorder"
)

// TestRPCEventBytesMatchTCP pins the exact-accounting contract of the
// framed transport: with one worker and no faults (so no retries,
// hedges, or abandoned legs), the per-RPC events' frame sizes must sum
// to precisely the TCP byte deltas the connection counters measured —
// not an estimate, the same bytes counted two independent ways.
func TestRPCEventBytesMatchTCP(t *testing.T) {
	ws, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ws.Close() })
	cfg := DefaultCoordinatorConfig()
	cfg.M = 8
	cfg.SampleRatio = 0.05
	cfg.ChunkSize = 500
	coord, err := NewCoordinator(cfg, []string{ws.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	before := coord.WireStats()[0]
	ds := gen.Synthetic(gen.Independent, 3000, 3, 7)
	if _, _, err := coord.Skyline(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	after := coord.WireStats()[0]
	var sent, recv int64
	for _, ev := range coord.Events().Snapshot() {
		if ev.Kind == "rpc" {
			sent += ev.WireSentBytes
			recv += ev.WireRecvBytes
		}
	}
	if wantSent := after.Sent - before.Sent; sent != wantSent {
		t.Errorf("rpc events sum sent=%d, TCP counters measured %d", sent, wantSent)
	}
	if wantRecv := after.Recv - before.Recv; recv != wantRecv {
		t.Errorf("rpc events sum recv=%d, TCP counters measured %d", recv, wantRecv)
	}
}

// TestClusterWireBytesRoutedVsBroadcast measures the wire traffic of
// partition-aware routing against the broadcast-to-all baseline on the
// `large` bench config (50000 points, matching skybench): one range
// query per shard count, routed (only overlapping shards contacted)
// vs broadcast (every shard contacted, filtering locally). Both must
// return the exact filtered skyline; routing must move fewer bytes.
// The logged table is the source of the EXPERIMENTS.md numbers.
func TestClusterWireBytesRoutedVsBroadcast(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-point measurement; skipped in -short")
	}
	const n = 50000
	ds := gen.Synthetic(gen.AntiCorrelated, n, 4, 77)
	for _, numShards := range []int{4, 8} {
		g0, _ := startGroup(t, 2)
		g1, _ := startGroup(t, 2)
		cfg := testClusterConfig(4)
		cfg.Shards = numShards
		c, err := NewCluster(context.Background(), cfg, [][]string{g0, g1})
		if err != nil {
			t.Fatal(err)
		}
		insertBatches(t, c, ds.Points, 4096)

		// Query one shard's exact range: the partition-aware router
		// contacts 1 of numShards shards.
		m := c.Map()
		lo, hi := zorder.ZAddr(m.Cuts[0]), zorder.ZAddr(m.Cuts[1])
		want := rangeOracle(t, cfg, ds.Points, zorder.Range{Lo: lo, Hi: hi})

		rGot, rRep, err := c.SkylineRange(context.Background(), lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		bGot, bRep, err := c.SkylineRangeBroadcast(context.Background(), lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, rGot, want, "routed")
		sameSet(t, bGot, want, "broadcast")
		if bRep.WireSentBytes+bRep.WireRecvBytes <= rRep.WireSentBytes+rRep.WireRecvBytes {
			t.Errorf("shards=%d: broadcast moved %d bytes, routed %d: routing should move fewer",
				numShards, bRep.WireSentBytes+bRep.WireRecvBytes, rRep.WireSentBytes+rRep.WireRecvBytes)
		}
		t.Logf("shards=%d routed=%d/%d: routed sent=%d recv=%d total=%d | broadcast sent=%d recv=%d total=%d | ratio=%.1fx",
			numShards, rRep.Routed, rRep.Shards,
			rRep.WireSentBytes, rRep.WireRecvBytes, rRep.WireSentBytes+rRep.WireRecvBytes,
			bRep.WireSentBytes, bRep.WireRecvBytes, bRep.WireSentBytes+bRep.WireRecvBytes,
			float64(bRep.WireSentBytes+bRep.WireRecvBytes)/float64(rRep.WireSentBytes+rRep.WireRecvBytes))
		c.Close()
	}
}
