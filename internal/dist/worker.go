package dist

import (
	"fmt"
	"net"
	"sync"
	"time"

	"zskyline/internal/obs"
	"zskyline/internal/plan"
	"zskyline/internal/transport"
)

// Worker is the service a worker process exposes over the framed
// transport. All phase semantics live in the broadcast plan.Rule; the
// worker caches rules, executes their tasks, and — in the sharded tier
// — holds resident shard data (see worker_shard.go). Every served call
// is recorded in the worker's metrics registry (request counts, exact
// on-wire frame bytes, latency histograms), which skyworker serves at
// --metrics-addr.
type Worker struct {
	mu    sync.RWMutex
	rules map[uint64]*plan.Rule
	addr  string
	reg   *obs.Registry

	// Sharded-tier state: resident shard data, handoff staging areas,
	// and the highest installed shard-map version. maxResident, when
	// positive, caps resident rows per shard (admission control for
	// memory-bounded workers).
	smu         sync.RWMutex
	shardVer    uint64
	resident    map[int]*residentShard
	staged      map[stageKey]*residentShard
	maxResident int
}

// observe records one served call into the worker's registry with the
// exact on-wire request and response frame sizes the transport
// measured (header included) — no payload estimates.
func (w *Worker) observe(method uint16, dur time.Duration, reqBytes, respBytes int64) {
	m := obs.L("method", shortMethodName(method))
	w.reg.Counter("zsky_rpc_requests_total", m).Add(1)
	w.reg.Counter("zsky_rpc_request_bytes_total", m).Add(reqBytes)
	w.reg.Counter("zsky_rpc_response_bytes_total", m).Add(respBytes)
	w.reg.Histogram("zsky_rpc_seconds", nil, m).Observe(dur.Seconds())
}

// ServeFrame implements transport.Handler: decode the method's args
// frame, run the call, and hand the reply back for the server to frame.
// Worker verdicts (returned errors) travel as error frames, which the
// coordinator's classifier sees as transport.ServerError.
func (w *Worker) ServeFrame(method uint16, payload []byte) (transport.Marshaler, error) {
	switch method {
	case mPing:
		var args PingArgs
		if err := args.DecodeFrom(payload); err != nil {
			return nil, err
		}
		var reply PingReply
		if err := w.Ping(args, &reply); err != nil {
			return nil, err
		}
		return reply, nil
	case mLoadRule:
		var args LoadRuleArgs
		if err := args.DecodeFrom(payload); err != nil {
			return nil, err
		}
		var reply LoadRuleReply
		if err := w.LoadRule(args, &reply); err != nil {
			return nil, err
		}
		return reply, nil
	case mMapChunk:
		var args MapArgs
		if err := args.DecodeFrom(payload); err != nil {
			return nil, err
		}
		var reply MapReply
		if err := w.MapChunk(args, &reply); err != nil {
			return nil, err
		}
		return reply, nil
	case mReduceGroup:
		var args ReduceArgs
		if err := args.DecodeFrom(payload); err != nil {
			return nil, err
		}
		var reply ReduceReply
		if err := w.ReduceGroup(args, &reply); err != nil {
			return nil, err
		}
		return reply, nil
	case mMergeGroups:
		var args MergeArgs
		if err := args.DecodeFrom(payload); err != nil {
			return nil, err
		}
		var reply MergeReply
		if err := w.MergeGroups(args, &reply); err != nil {
			return nil, err
		}
		return reply, nil
	case mStoreShard:
		var args StoreShardArgs
		if err := args.DecodeFrom(payload); err != nil {
			return nil, err
		}
		var reply StoreShardReply
		if err := w.StoreShard(args, &reply); err != nil {
			return nil, err
		}
		return reply, nil
	case mShardSkyline:
		var args ShardSkyArgs
		if err := args.DecodeFrom(payload); err != nil {
			return nil, err
		}
		var reply ShardSkyReply
		if err := w.ShardSkyline(args, &reply); err != nil {
			return nil, err
		}
		return reply, nil
	case mPullShard:
		var args PullShardArgs
		if err := args.DecodeFrom(payload); err != nil {
			return nil, err
		}
		var reply PullShardReply
		if err := w.PullShard(args, &reply); err != nil {
			return nil, err
		}
		return reply, nil
	case mStageShard:
		var args StageShardArgs
		if err := args.DecodeFrom(payload); err != nil {
			return nil, err
		}
		var reply StageShardReply
		if err := w.StageShard(args, &reply); err != nil {
			return nil, err
		}
		return reply, nil
	case mCommitShard:
		var args CommitShardArgs
		if err := args.DecodeFrom(payload); err != nil {
			return nil, err
		}
		var reply CommitShardReply
		if err := w.CommitShard(args, &reply); err != nil {
			return nil, err
		}
		return reply, nil
	case mDropStaged:
		var args DropStagedArgs
		if err := args.DecodeFrom(payload); err != nil {
			return nil, err
		}
		var reply DropStagedReply
		if err := w.DropStaged(args, &reply); err != nil {
			return nil, err
		}
		return reply, nil
	case mDropShard:
		var args DropShardArgs
		if err := args.DecodeFrom(payload); err != nil {
			return nil, err
		}
		var reply DropShardReply
		if err := w.DropShard(args, &reply); err != nil {
			return nil, err
		}
		return reply, nil
	case mShardStats:
		var args ShardStatsArgs
		if err := args.DecodeFrom(payload); err != nil {
			return nil, err
		}
		var reply ShardStatsReply
		if err := w.ShardStats(args, &reply); err != nil {
			return nil, err
		}
		return reply, nil
	}
	return nil, fmt.Errorf("dist: unknown method id %d", method)
}

// faultInterceptor adapts a FaultPlan to the transport's frame
// interceptor seam: the plan keeps matching on "Worker.X" names (the
// spec syntax operators and tests use), translated from the frame's
// method id per call.
type faultInterceptor struct {
	plan *FaultPlan
}

// Intercept consults the plan for the incoming call's verdict.
func (fi faultInterceptor) Intercept(method uint16) transport.Verdict {
	rule := fi.plan.match(methodName(method))
	if rule == nil {
		return transport.Verdict{}
	}
	switch rule.Action {
	case FaultSever:
		return transport.Verdict{Sever: true}
	case FaultDelay:
		return transport.Verdict{Delay: rule.Delay}
	case FaultDrop:
		return transport.Verdict{Drop: true}
	}
	return transport.Verdict{}
}

// WorkerServer wraps a Worker with its listener lifecycle. Close
// terminates both the listener and every active connection, so a
// closed worker is immediately dead from a coordinator's perspective.
type WorkerServer struct {
	worker   *Worker
	listener net.Listener
	faults   *FaultPlan
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]struct{}
}

// StartWorker launches a worker server on addr (use "127.0.0.1:0"
// for an ephemeral port) and serves until Close.
func StartWorker(addr string) (*WorkerServer, error) {
	return StartWorkerWithOptions(addr, WorkerOptions{})
}

// StartWorkerWithFaults launches a worker whose serving is routed
// through a deterministic FaultPlan: the plan can delay, drop, or
// sever the Nth call of a method, which is how the fault-injection
// suite (and skyworker -fault chaos drills) exercise the
// coordinator's retry, deadline, hedging, and resurrection machinery.
// A nil plan serves normally.
func StartWorkerWithFaults(addr string, faults *FaultPlan) (*WorkerServer, error) {
	return StartWorkerWithOptions(addr, WorkerOptions{Faults: faults})
}

// WorkerOptions tunes a worker server beyond its address.
type WorkerOptions struct {
	// Faults, when non-nil, routes serving through a deterministic
	// fault-injection plan (see StartWorkerWithFaults).
	Faults *FaultPlan
	// MaxResidentRows, when positive, caps resident rows per shard:
	// StoreShard and StageShard calls that would exceed it are
	// rejected, which the coordinator surfaces as a fatal insert error.
	MaxResidentRows int
}

// StartWorkerWithOptions launches a worker with the full option set.
func StartWorkerWithOptions(addr string, opts WorkerOptions) (*WorkerServer, error) {
	faults := opts.Faults
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	w := &Worker{rules: make(map[uint64]*plan.Rule), addr: ln.Addr().String(),
		reg:      obs.NewRegistry(),
		resident: make(map[int]*residentShard), staged: make(map[stageKey]*residentShard),
		maxResident: opts.MaxResidentRows}
	sopts := transport.ServeOptions{Observe: w.observe}
	if faults != nil {
		sopts.Intercept = faultInterceptor{plan: faults}
	}
	ws := &WorkerServer{worker: w, listener: ln, faults: faults,
		conns: map[net.Conn]struct{}{}}
	ws.wg.Add(1)
	go func() {
		defer ws.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			ws.mu.Lock()
			if ws.closed {
				ws.mu.Unlock()
				conn.Close()
				return
			}
			ws.conns[conn] = struct{}{}
			ws.mu.Unlock()
			ws.wg.Add(1)
			go func() {
				defer ws.wg.Done()
				transport.ServeConn(conn, w, sopts)
				ws.mu.Lock()
				delete(ws.conns, conn)
				ws.mu.Unlock()
			}()
		}
	}()
	return ws, nil
}

// Addr returns the worker's listen address.
func (ws *WorkerServer) Addr() string { return ws.worker.addr }

// Metrics returns the worker's RPC metrics registry.
func (ws *WorkerServer) Metrics() *obs.Registry { return ws.worker.reg }

// Close stops accepting connections and severs every active one.
func (ws *WorkerServer) Close() error {
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		return nil
	}
	ws.closed = true
	for conn := range ws.conns {
		conn.Close()
	}
	ws.conns = map[net.Conn]struct{}{}
	ws.mu.Unlock()
	return ws.listener.Close()
}

// Ping implements liveness checks.
func (w *Worker) Ping(_ PingArgs, reply *PingReply) error {
	reply.Addr = w.addr
	return nil
}

// LoadRule installs (or confirms) a broadcast rule. A shard map riding
// the blob is installed unconditionally, BEFORE the rule-cache check:
// rebalances re-broadcast the same rule ID with a newer map, and a
// cached rule must never swallow an ownership update.
func (w *Worker) LoadRule(args LoadRuleArgs, reply *LoadRuleReply) error {
	if !args.Rule.Shards.Empty() {
		w.installShardMap(args.Rule.Shards.Version)
	}
	w.mu.RLock()
	_, have := w.rules[args.Rule.ID]
	w.mu.RUnlock()
	if have {
		reply.Cached = true
		return nil
	}
	r, err := plan.FromData(&args.Rule.Data)
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.rules[args.Rule.ID] = r
	w.mu.Unlock()
	reply.Cached = false
	return nil
}

func (w *Worker) rule(id uint64) (*plan.Rule, error) {
	w.mu.RLock()
	r := w.rules[id]
	w.mu.RUnlock()
	if r == nil {
		return nil, fmt.Errorf("dist: rule %d not loaded on %s", id, w.addr)
	}
	return r, nil
}

// MapChunk is phase 2's map+combine: filter against the SZB-tree,
// route to groups, and emit the chunk-local skyline per group.
func (w *Worker) MapChunk(args MapArgs, reply *MapReply) error {
	r, err := w.rule(args.RuleID)
	if err != nil {
		return err
	}
	out := r.MapBlock(args.Block, nil)
	reply.Groups = out.Groups
	reply.Filtered = out.Filtered
	return nil
}

// ReduceGroup is phase 2's reduce: the skyline of one group's routed
// points.
func (w *Worker) ReduceGroup(args ReduceArgs, reply *ReduceReply) error {
	r, err := w.rule(args.RuleID)
	if err != nil {
		return err
	}
	reply.Candidates = r.LocalSkylineGroup(args.Group, nil)
	return nil
}

// MergeGroups is one phase-3 merge task: Z-merge the candidate groups
// into a partial (or, with all groups, the global) skyline.
func (w *Worker) MergeGroups(args MergeArgs, reply *MergeReply) error {
	r, err := w.rule(args.RuleID)
	if err != nil {
		return err
	}
	reply.Skyline = r.MergeGroupsZ(args.Groups, nil)
	return nil
}
