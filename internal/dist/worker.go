package dist

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"zskyline/internal/obs"
	"zskyline/internal/plan"
)

// Worker is the RPC service a worker process exposes. All phase
// semantics live in the broadcast plan.Rule; the worker caches rules,
// executes their tasks, and — in the sharded tier — holds resident
// shard data (see worker_shard.go). Every RPC is recorded in the
// worker's metrics registry (request counts, payload bytes, latency
// histograms), which skyworker serves at --metrics-addr.
type Worker struct {
	mu    sync.RWMutex
	rules map[uint64]*plan.Rule
	addr  string
	reg   *obs.Registry

	// Sharded-tier state: resident shard data, handoff staging areas,
	// and the highest installed shard-map version. maxResident, when
	// positive, caps resident rows per shard (admission control for
	// memory-bounded workers).
	smu         sync.RWMutex
	shardVer    uint64
	resident    map[int]*residentShard
	staged      map[stageKey]*residentShard
	maxResident int
}

// observe records one served RPC into the worker's registry.
func (w *Worker) observe(method string, start time.Time, reqBytes, respBytes int64) {
	m := obs.L("method", method)
	w.reg.Counter("zsky_rpc_requests_total", m).Add(1)
	w.reg.Counter("zsky_rpc_request_bytes_total", m).Add(reqBytes)
	w.reg.Counter("zsky_rpc_response_bytes_total", m).Add(respBytes)
	w.reg.Histogram("zsky_rpc_seconds", nil, m).Observe(time.Since(start).Seconds())
}

// WorkerServer wraps a Worker with its listener lifecycle. Close
// terminates both the listener and every active connection, so a
// closed worker is immediately dead from a coordinator's perspective.
type WorkerServer struct {
	worker   *Worker
	listener net.Listener
	server   *rpc.Server
	faults   *FaultPlan
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]struct{}
}

// StartWorker launches a worker RPC server on addr (use "127.0.0.1:0"
// for an ephemeral port) and serves until Close.
func StartWorker(addr string) (*WorkerServer, error) {
	return StartWorkerWithOptions(addr, WorkerOptions{})
}

// StartWorkerWithFaults launches a worker whose RPC serving is routed
// through a deterministic FaultPlan: the plan can delay, drop, or
// sever the Nth call of a method, which is how the fault-injection
// suite (and skyworker -fault chaos drills) exercise the
// coordinator's retry, deadline, hedging, and resurrection machinery.
// A nil plan serves normally.
func StartWorkerWithFaults(addr string, faults *FaultPlan) (*WorkerServer, error) {
	return StartWorkerWithOptions(addr, WorkerOptions{Faults: faults})
}

// WorkerOptions tunes a worker server beyond its address.
type WorkerOptions struct {
	// Faults, when non-nil, routes RPC serving through a deterministic
	// fault-injection plan (see StartWorkerWithFaults).
	Faults *FaultPlan
	// MaxResidentRows, when positive, caps resident rows per shard:
	// StoreShard and StageShard calls that would exceed it are
	// rejected, which the coordinator surfaces as a fatal insert error.
	MaxResidentRows int
}

// StartWorkerWithOptions launches a worker with the full option set.
func StartWorkerWithOptions(addr string, opts WorkerOptions) (*WorkerServer, error) {
	faults := opts.Faults
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	w := &Worker{rules: make(map[uint64]*plan.Rule), addr: ln.Addr().String(),
		reg:      obs.NewRegistry(),
		resident: make(map[int]*residentShard), staged: make(map[stageKey]*residentShard),
		maxResident: opts.MaxResidentRows}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", w); err != nil {
		ln.Close()
		return nil, err
	}
	ws := &WorkerServer{worker: w, listener: ln, server: srv, faults: faults,
		conns: map[net.Conn]struct{}{}}
	ws.wg.Add(1)
	go func() {
		defer ws.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			ws.mu.Lock()
			if ws.closed {
				ws.mu.Unlock()
				conn.Close()
				return
			}
			ws.conns[conn] = struct{}{}
			ws.mu.Unlock()
			ws.wg.Add(1)
			go func() {
				defer ws.wg.Done()
				if faults != nil {
					srv.ServeCodec(newFaultCodec(conn, faults))
				} else {
					srv.ServeConn(conn)
				}
				ws.mu.Lock()
				delete(ws.conns, conn)
				ws.mu.Unlock()
			}()
		}
	}()
	return ws, nil
}

// Addr returns the worker's listen address.
func (ws *WorkerServer) Addr() string { return ws.worker.addr }

// Metrics returns the worker's RPC metrics registry.
func (ws *WorkerServer) Metrics() *obs.Registry { return ws.worker.reg }

// Close stops accepting connections and severs every active one.
func (ws *WorkerServer) Close() error {
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		return nil
	}
	ws.closed = true
	for conn := range ws.conns {
		conn.Close()
	}
	ws.conns = map[net.Conn]struct{}{}
	ws.mu.Unlock()
	return ws.listener.Close()
}

// Ping implements liveness checks.
func (w *Worker) Ping(_ PingArgs, reply *PingReply) error {
	reply.Addr = w.addr
	return nil
}

// LoadRule installs (or confirms) a broadcast rule. A shard map riding
// the blob is installed unconditionally, BEFORE the rule-cache check:
// rebalances re-broadcast the same rule ID with a newer map, and a
// cached rule must never swallow an ownership update.
func (w *Worker) LoadRule(args LoadRuleArgs, reply *LoadRuleReply) error {
	start := time.Now()
	defer func() { w.observe("LoadRule", start, int64(args.Rule.Data.SampleSkyline.Bytes()), 1) }()
	if !args.Rule.Shards.Empty() {
		w.installShardMap(args.Rule.Shards.Version)
	}
	w.mu.RLock()
	_, have := w.rules[args.Rule.ID]
	w.mu.RUnlock()
	if have {
		reply.Cached = true
		return nil
	}
	r, err := plan.FromData(&args.Rule.Data)
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.rules[args.Rule.ID] = r
	w.mu.Unlock()
	reply.Cached = false
	return nil
}

func (w *Worker) rule(id uint64) (*plan.Rule, error) {
	w.mu.RLock()
	r := w.rules[id]
	w.mu.RUnlock()
	if r == nil {
		return nil, fmt.Errorf("dist: rule %d not loaded on %s", id, w.addr)
	}
	return r, nil
}

// MapChunk is phase 2's map+combine: filter against the SZB-tree,
// route to groups, and emit the chunk-local skyline per group.
func (w *Worker) MapChunk(args MapArgs, reply *MapReply) error {
	start := time.Now()
	r, err := w.rule(args.RuleID)
	if err != nil {
		return err
	}
	out := r.MapBlock(args.Block, nil)
	reply.Groups = out.Groups
	reply.Filtered = out.Filtered
	w.observe("MapChunk", start, int64(args.Block.Bytes()), groupBytes(reply.Groups))
	return nil
}

// ReduceGroup is phase 2's reduce: the skyline of one group's routed
// points.
func (w *Worker) ReduceGroup(args ReduceArgs, reply *ReduceReply) error {
	start := time.Now()
	r, err := w.rule(args.RuleID)
	if err != nil {
		return err
	}
	reply.Candidates = r.LocalSkylineGroup(args.Group, nil)
	w.observe("ReduceGroup", start, groupBytes([]plan.Group{args.Group}), groupBytes([]plan.Group{reply.Candidates}))
	return nil
}

// MergeGroups is one phase-3 merge task: Z-merge the candidate groups
// into a partial (or, with all groups, the global) skyline.
func (w *Worker) MergeGroups(args MergeArgs, reply *MergeReply) error {
	start := time.Now()
	r, err := w.rule(args.RuleID)
	if err != nil {
		return err
	}
	reply.Skyline = r.MergeGroupsZ(args.Groups, nil)
	w.observe("MergeGroups", start, groupBytes(args.Groups), groupBytes([]plan.Group{reply.Skyline}))
	return nil
}
