package dist

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"zskyline/internal/plan"
)

// Worker is the RPC service a worker process exposes. All phase
// semantics live in the broadcast plan.Rule; the worker only caches
// rules and executes their tasks.
type Worker struct {
	mu    sync.RWMutex
	rules map[uint64]*plan.Rule
	addr  string
}

// WorkerServer wraps a Worker with its listener lifecycle. Close
// terminates both the listener and every active connection, so a
// closed worker is immediately dead from a coordinator's perspective.
type WorkerServer struct {
	worker   *Worker
	listener net.Listener
	server   *rpc.Server
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]struct{}
}

// StartWorker launches a worker RPC server on addr (use "127.0.0.1:0"
// for an ephemeral port) and serves until Close.
func StartWorker(addr string) (*WorkerServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	w := &Worker{rules: make(map[uint64]*plan.Rule), addr: ln.Addr().String()}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", w); err != nil {
		ln.Close()
		return nil, err
	}
	ws := &WorkerServer{worker: w, listener: ln, server: srv, conns: map[net.Conn]struct{}{}}
	ws.wg.Add(1)
	go func() {
		defer ws.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			ws.mu.Lock()
			if ws.closed {
				ws.mu.Unlock()
				conn.Close()
				return
			}
			ws.conns[conn] = struct{}{}
			ws.mu.Unlock()
			ws.wg.Add(1)
			go func() {
				defer ws.wg.Done()
				srv.ServeConn(conn)
				ws.mu.Lock()
				delete(ws.conns, conn)
				ws.mu.Unlock()
			}()
		}
	}()
	return ws, nil
}

// Addr returns the worker's listen address.
func (ws *WorkerServer) Addr() string { return ws.worker.addr }

// Close stops accepting connections and severs every active one.
func (ws *WorkerServer) Close() error {
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		return nil
	}
	ws.closed = true
	for conn := range ws.conns {
		conn.Close()
	}
	ws.conns = map[net.Conn]struct{}{}
	ws.mu.Unlock()
	return ws.listener.Close()
}

// Ping implements liveness checks.
func (w *Worker) Ping(_ PingArgs, reply *PingReply) error {
	reply.Addr = w.addr
	return nil
}

// LoadRule installs (or confirms) a broadcast rule.
func (w *Worker) LoadRule(args LoadRuleArgs, reply *LoadRuleReply) error {
	w.mu.RLock()
	_, have := w.rules[args.Rule.ID]
	w.mu.RUnlock()
	if have {
		reply.Cached = true
		return nil
	}
	r, err := plan.FromData(&args.Rule.Data)
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.rules[args.Rule.ID] = r
	w.mu.Unlock()
	reply.Cached = false
	return nil
}

func (w *Worker) rule(id uint64) (*plan.Rule, error) {
	w.mu.RLock()
	r := w.rules[id]
	w.mu.RUnlock()
	if r == nil {
		return nil, fmt.Errorf("dist: rule %d not loaded on %s", id, w.addr)
	}
	return r, nil
}

// MapChunk is phase 2's map+combine: filter against the SZB-tree,
// route to groups, and emit the chunk-local skyline per group.
func (w *Worker) MapChunk(args MapArgs, reply *MapReply) error {
	r, err := w.rule(args.RuleID)
	if err != nil {
		return err
	}
	out := r.MapChunk(args.Points, nil)
	reply.Groups = out.Groups
	reply.Filtered = out.Filtered
	return nil
}

// ReduceGroup is phase 2's reduce: the skyline of one group's routed
// points.
func (w *Worker) ReduceGroup(args ReduceArgs, reply *ReduceReply) error {
	r, err := w.rule(args.RuleID)
	if err != nil {
		return err
	}
	reply.Candidates = r.LocalSkyline(args.Group.Points, nil)
	return nil
}

// MergeGroups is one phase-3 merge task: Z-merge the candidate groups
// into a partial (or, with all groups, the global) skyline.
func (w *Worker) MergeGroups(args MergeArgs, reply *MergeReply) error {
	r, err := w.rule(args.RuleID)
	if err != nil {
		return err
	}
	reply.Skyline = r.MergeGroups(args.Groups, nil)
	return nil
}
