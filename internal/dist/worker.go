package dist

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"zskyline/internal/point"
	"zskyline/internal/seq"
	"zskyline/internal/zbtree"
	"zskyline/internal/zorder"
)

// compiledRule is a worker's executable form of a RuleBlob.
type compiledRule struct {
	enc     *zorder.Encoder
	pivots  []zorder.ZAddr
	groupOf map[int]int
	szb     *zbtree.Tree
	fanout  int
	useZS   bool
}

func compile(rb *RuleBlob) (*compiledRule, error) {
	enc, err := zorder.NewEncoder(rb.Dims, rb.Bits, rb.Mins, rb.Maxs)
	if err != nil {
		return nil, err
	}
	cr := &compiledRule{
		enc:     enc,
		groupOf: rb.GroupOf,
		fanout:  rb.Fanout,
		useZS:   rb.UseZS,
	}
	for _, p := range rb.Pivots {
		if len(p) != enc.Words() {
			return nil, fmt.Errorf("dist: pivot has %d words, want %d", len(p), enc.Words())
		}
		cr.pivots = append(cr.pivots, zorder.ZAddr(p))
	}
	if len(rb.SampleSkyline) > 0 {
		cr.szb = zbtree.BuildFromPoints(enc, rb.Fanout, rb.SampleSkyline, nil)
	}
	return cr, nil
}

// assign routes an address to its partition (binary search over the
// pivots, as in Algorithm 3).
func (cr *compiledRule) assign(a zorder.ZAddr) int {
	lo, hi := 0, len(cr.pivots)
	for lo < hi {
		mid := (lo + hi) / 2
		if zorder.Compare(a, cr.pivots[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func (cr *compiledRule) localSkyline(pts []point.Point) []point.Point {
	if cr.useZS {
		return zbtree.ZSearch(cr.enc, cr.fanout, pts, nil)
	}
	return seq.SB(pts, nil)
}

// Worker is the RPC service a worker process exposes.
type Worker struct {
	mu    sync.RWMutex
	rules map[uint64]*compiledRule
	addr  string
}

// WorkerServer wraps a Worker with its listener lifecycle. Close
// terminates both the listener and every active connection, so a
// closed worker is immediately dead from a coordinator's perspective.
type WorkerServer struct {
	worker   *Worker
	listener net.Listener
	server   *rpc.Server
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]struct{}
}

// StartWorker launches a worker RPC server on addr (use "127.0.0.1:0"
// for an ephemeral port) and serves until Close.
func StartWorker(addr string) (*WorkerServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	w := &Worker{rules: make(map[uint64]*compiledRule), addr: ln.Addr().String()}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", w); err != nil {
		ln.Close()
		return nil, err
	}
	ws := &WorkerServer{worker: w, listener: ln, server: srv, conns: map[net.Conn]struct{}{}}
	ws.wg.Add(1)
	go func() {
		defer ws.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			ws.mu.Lock()
			if ws.closed {
				ws.mu.Unlock()
				conn.Close()
				return
			}
			ws.conns[conn] = struct{}{}
			ws.mu.Unlock()
			ws.wg.Add(1)
			go func() {
				defer ws.wg.Done()
				srv.ServeConn(conn)
				ws.mu.Lock()
				delete(ws.conns, conn)
				ws.mu.Unlock()
			}()
		}
	}()
	return ws, nil
}

// Addr returns the worker's listen address.
func (ws *WorkerServer) Addr() string { return ws.worker.addr }

// Close stops accepting connections and severs every active one.
func (ws *WorkerServer) Close() error {
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		return nil
	}
	ws.closed = true
	for conn := range ws.conns {
		conn.Close()
	}
	ws.conns = map[net.Conn]struct{}{}
	ws.mu.Unlock()
	return ws.listener.Close()
}

// Ping implements liveness checks.
func (w *Worker) Ping(_ PingArgs, reply *PingReply) error {
	reply.Addr = w.addr
	return nil
}

// LoadRule installs (or confirms) a broadcast rule.
func (w *Worker) LoadRule(args LoadRuleArgs, reply *LoadRuleReply) error {
	w.mu.RLock()
	_, have := w.rules[args.Rule.ID]
	w.mu.RUnlock()
	if have {
		reply.Cached = true
		return nil
	}
	cr, err := compile(&args.Rule)
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.rules[args.Rule.ID] = cr
	w.mu.Unlock()
	reply.Cached = false
	return nil
}

func (w *Worker) rule(id uint64) (*compiledRule, error) {
	w.mu.RLock()
	cr := w.rules[id]
	w.mu.RUnlock()
	if cr == nil {
		return nil, fmt.Errorf("dist: rule %d not loaded on %s", id, w.addr)
	}
	return cr, nil
}

// MapChunk is phase 2's map+combine: filter against the SZB-tree,
// route to groups, and emit the chunk-local skyline per group.
func (w *Worker) MapChunk(args MapArgs, reply *MapReply) error {
	cr, err := w.rule(args.RuleID)
	if err != nil {
		return err
	}
	byGroup := map[int][]point.Point{}
	var order []int
	for _, p := range args.Points {
		e := zbtree.NewEntry(cr.enc, p)
		if cr.szb != nil && cr.szb.DominatesPoint(e.G, e.P) {
			reply.Filtered++
			continue
		}
		gid, ok := cr.groupOf[cr.assign(e.Z)]
		if !ok {
			reply.Filtered++
			continue
		}
		if _, seen := byGroup[gid]; !seen {
			order = append(order, gid)
		}
		byGroup[gid] = append(byGroup[gid], p)
	}
	for _, gid := range order {
		reply.Groups = append(reply.Groups, GroupPoints{
			Gid:    gid,
			Points: cr.localSkyline(byGroup[gid]),
		})
	}
	return nil
}

// ReduceGroup is phase 2's reduce: the skyline of one group's routed
// points.
func (w *Worker) ReduceGroup(args ReduceArgs, reply *ReduceReply) error {
	cr, err := w.rule(args.RuleID)
	if err != nil {
		return err
	}
	reply.Candidates = cr.localSkyline(args.Group.Points)
	return nil
}

// MergeGroups is phase 3: build one ZB-tree per candidate group and
// Z-merge them into the global skyline.
func (w *Worker) MergeGroups(args MergeArgs, reply *MergeReply) error {
	cr, err := w.rule(args.RuleID)
	if err != nil {
		return err
	}
	trees := make([]*zbtree.Tree, 0, len(args.Groups))
	for _, g := range args.Groups {
		trees = append(trees, zbtree.BuildFromPoints(cr.enc, cr.fanout, g.Points, nil))
	}
	reply.Skyline = zbtree.MergeAll(cr.enc, cr.fanout, trees, nil).Points()
	return nil
}
