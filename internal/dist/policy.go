package dist

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"zskyline/internal/transport"
)

// ErrClusterDown reports that no worker is live (or can become live)
// to serve a call. Callers match it with errors.Is: a coordinator
// returns it wrapped with the failing method so the message stays
// diagnostic while the identity stays typed.
var ErrClusterDown = errors.New("dist: no live workers")

// ErrShardDown reports that a shard has no serving replica left: every
// member of its owning group is dead or marked stale. Match with
// errors.Is; the cluster wraps it with the shard ID.
var ErrShardDown = errors.New("dist: shard has no live replica")

// errCoordinatorClosed is returned by calls racing Close.
var errCoordinatorClosed = errors.New("dist: coordinator closed")

// errAttemptTimeout marks one RPC attempt that exceeded the per-call
// deadline. It is retryable: the straggling worker is suspected and
// the task re-issued elsewhere.
var errAttemptTimeout = errors.New("dist: rpc attempt timed out")

// errNotConnected marks an attempt routed to a worker whose connection
// is currently torn down (awaiting resurrection). Retryable.
var errNotConnected = errors.New("dist: worker not connected")

// policy is the resolved fault-tolerance configuration every RPC
// obeys. Zero values mean "disabled" here; CoordinatorConfig
// normalization maps user-facing defaults onto it.
type policy struct {
	// rpcTimeout bounds one RPC attempt (0 = no per-attempt deadline;
	// the context still applies).
	rpcTimeout time.Duration
	// retries is the number of re-issues after the first failed
	// attempt of a call.
	retries int
	// backoffBase/backoffMax shape the exponential backoff between
	// retries; the actual sleep is jittered in [d/2, d).
	backoffBase, backoffMax time.Duration
	// hedge, when > 0, re-issues a reduce/merge call on a second live
	// worker after this delay and takes whichever answers first.
	hedge time.Duration
	// redial is the interval between resurrection sweeps over
	// suspect/dead workers (0 = resurrection disabled: a suspected
	// worker is immediately dead).
	redial time.Duration
	// dialTimeout bounds every dial (startup and redial).
	dialTimeout time.Duration
}

// errClass is the retry classification of one RPC error.
type errClass int

const (
	// classFatal errors abort the call: the worker executed the
	// request and rejected it (bad rule hash, dims mismatch), or the
	// caller's context ended. Retrying elsewhere would fail the same
	// way.
	classFatal errClass = iota
	// classRetryable errors are transport-level: the request may never
	// have reached the worker (conn reset, timeout,
	// transport.ErrShutdown), so the task is safe to re-issue on
	// another worker.
	classRetryable
	// classRuleMissing is a worker answering "rule not loaded": it is
	// alive but lost (or never received) the broadcast rule, e.g. a
	// fresh process resurrected at an old address. The cure is a
	// re-broadcast to that worker, then retry.
	classRuleMissing
	// classShardMoved is a worker answering "not resident" or "stale
	// shard map": it is alive but no longer (or not yet) owns the shard
	// the call addressed — the caller raced a rebalance. The cure is a
	// shard-map snapshot refresh on the coordinator, then re-routing.
	classShardMoved
)

// classify sorts an RPC error into the retry taxonomy. The framed
// transport surfaces worker-side verdicts as transport.ServerError
// (the call reached the worker and the worker answered) and transport
// failures as everything else, which makes the split crisp: server
// errors are application verdicts (fatal, unless they are the
// rule-cache miss or a shard-residency miss), all other errors mean
// the bytes may never have made it.
func classify(err error) errClass {
	if err == nil {
		return classFatal // not meaningful; callers check err first
	}
	var se transport.ServerError
	if errors.As(err, &se) {
		if strings.Contains(se.Error(), "not loaded") {
			return classRuleMissing
		}
		if strings.Contains(se.Error(), "not resident") ||
			strings.Contains(se.Error(), "stale shard map") {
			return classShardMoved
		}
		return classFatal
	}
	if errors.Is(err, errUnknownMethod) {
		return classFatal // caller bug: no worker could ever serve it
	}
	switch {
	case errors.Is(err, transport.ErrShutdown),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, errAttemptTimeout),
		errors.Is(err, errNotConnected):
		return classRetryable
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return classRetryable
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		return classRetryable
	}
	// Frame decode errors after a half-closed conn, "connection reset
	// by peer" strings from the runtime, etc.: anything that is not a
	// worker verdict is a transport casualty.
	return classRetryable
}

// backoff is a seeded, jittered exponential backoff source. Seeding it
// from the coordinator config keeps retry schedules reproducible in
// tests without synchronizing on the global rand.
type backoff struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newBackoff(seed int64) *backoff {
	return &backoff{rng: rand.New(rand.NewSource(seed))}
}

// delay returns the jittered sleep before retry attempt n (0-based):
// base<<n capped at max, then drawn uniformly from [d/2, d) so
// synchronized failures don't retry in lockstep.
func (b *backoff) delay(pol *policy, n int) time.Duration {
	d := pol.backoffBase << uint(n)
	if d > pol.backoffMax || d <= 0 {
		d = pol.backoffMax
	}
	b.mu.Lock()
	j := time.Duration(b.rng.Int63n(int64(d/2) + 1))
	b.mu.Unlock()
	return d/2 + j
}

// sleep waits for d or until ctx ends, whichever comes first.
func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
