package dist

import (
	"context"
	"fmt"
	"time"

	"zskyline/internal/obs"
)

// HandoffReport describes one completed shard move.
type HandoffReport struct {
	Shard      int
	FromGroup  int
	ToGroup    int
	MapVersion uint64 // version the cluster serves under after the move
	Rows       int    // rows streamed
	Replicas   int    // target members that committed
	WireBytes  int64  // frame bytes pulled (same bytes are pushed per replica)
}

// Handoff moves one shard to another worker group while the cluster
// keeps serving: a rolling rebalance, not a stop-the-world one.
//
// The protocol is pull → stage → commit → flip → drop:
//
//  1. Pull: stream the shard's resident data off a fresh source
//     replica in block frames (PullShard). The cursor is a group-list
//     index and replicas hold identical group lists, so when the
//     source dies or the stream is severed mid-pull, the pull resumes
//     at the same cursor on another member — the resurrection state
//     machine supplies the liveness verdicts.
//  2. Stage: forward each pulled frame pair verbatim (no decode and
//     re-encode on the coordinator) to every member of the target
//     group under a staging epoch. A member that fails staging is
//     dropped from the transfer; at least one must survive.
//  3. Commit: promote the staging area to resident on each surviving
//     target. Staged data was invisible to queries until here.
//  4. Flip: bump the shard map (WithOwner increments the version) so
//     new queries and inserts route to the target group, and
//     re-broadcast the rule blob so resurrection re-installs the new
//     ownership. Targets that failed staging or commit start stale.
//  5. Drop: best-effort DropShard on old members that left the owning
//     group. A query that raced the flip and still hits them gets
//     "not resident", which the coordinator classifies as shard-moved
//     and re-routes from the fresh map.
//
// Inserts to the shard are blocked for the duration (the per-shard
// lock), so the streamed copy is complete; queries are never blocked.
// Handoffs of different shards are serialized (version allocation is
// simplest when single-file, and rebalances are rare admin
// operations). Handing a shard to its own group is the repair path:
// stale replicas are re-streamed a full copy and rejoin fresh.
func (c *Cluster) Handoff(ctx context.Context, sid, toGroup int) (*HandoffReport, error) {
	if toGroup < 0 || toGroup >= len(c.groups) {
		return nil, fmt.Errorf("dist: handoff target group %d of %d", toGroup, len(c.groups))
	}
	c.hmu.Lock()
	defer c.hmu.Unlock()
	lk := c.shardLock(sid)
	lk.Lock()
	defer lk.Unlock()

	c.mu.Lock()
	idx := c.smap.IndexOf(sid)
	if idx < 0 {
		c.mu.Unlock()
		return nil, fmt.Errorf("dist: handoff of unknown shard %d", sid)
	}
	fromGroup := c.smap.Shards[idx].Group
	targetVer := c.smap.Version + 1
	sources, _ := c.freshMembersLocked(sid)
	c.mu.Unlock()
	// The staging epoch is unique per attempt (hmu is held). targetVer
	// would not be: an aborted handoff leaves the version unchanged, and
	// its best-effort DropStaged can fail, so a version-keyed retry
	// could append onto the leftovers of the failed stage.
	c.handoffSeq++
	epoch := c.handoffSeq

	start := time.Now()
	ev := &obs.Event{ID: obs.NewRequestID(), Kind: "handoff", Route: "cluster/handoff",
		Query: fmt.Sprintf("shard=%d,from=%d,to=%d,v=%d", sid, fromGroup, toGroup, targetVer)}
	rep := &HandoffReport{Shard: sid, FromGroup: fromGroup, ToGroup: toGroup, MapVersion: targetVer}

	fail := func(err error) (*HandoffReport, error) {
		// Abort: discard whatever staged. The map never flipped, so the
		// cluster is exactly as before.
		for _, t := range c.groups[toGroup] {
			_ = c.callOn(ctx, t, sid, "Worker.DropStaged",
				DropStagedArgs{ShardID: sid, Epoch: epoch}, &DropStagedReply{})
		}
		ev.DurationMS = float64(time.Since(start).Microseconds()) / 1000
		ev.SetError(className(classify(err)), err.Error())
		c.inner.events.RecordForced(*ev)
		return nil, err
	}

	if len(sources) == 0 {
		return fail(fmt.Errorf("dist: handoff of shard %d: %w", sid, ErrShardDown))
	}

	// Targets still receiving the stream; members drop out on error.
	staging := append([]int(nil), c.groups[toGroup]...)
	drop := func(i int) { staging = append(staging[:i], staging[i+1:]...) }

	// Seed residency on targets even for an empty shard, then stream.
	pullArgs := PullShardArgs{ShardID: sid, MaxRows: c.pullRows}
	for done := false; !done; {
		var reply PullShardReply
		if err := c.pullFrom(ctx, sid, sources, &pullArgs, &reply); err != nil {
			return fail(err)
		}
		rep.Rows += reply.Rows
		rep.WireBytes += int64(len(reply.BlockFrame) + len(reply.ZFrame))
		sargs := StageShardArgs{ShardID: sid, Epoch: epoch,
			BlockFrame: reply.BlockFrame, ZFrame: reply.ZFrame}
		for i := 0; i < len(staging); {
			err := c.callOn(ctx, staging[i], sid, "Worker.StageShard", sargs, &StageShardReply{})
			if err != nil {
				if ctx.Err() != nil {
					return fail(ctx.Err())
				}
				drop(i)
				continue
			}
			i++
		}
		if len(staging) == 0 {
			return fail(fmt.Errorf("dist: handoff of shard %d: no target in group %d accepted the stream",
				sid, toGroup))
		}
		pullArgs.Cursor = reply.Next
		done = reply.Done
	}

	// Commit: staged → resident on every surviving target.
	committed := map[int]bool{}
	for _, t := range staging {
		err := c.callOn(ctx, t, sid, "Worker.CommitShard",
			CommitShardArgs{ShardID: sid, Epoch: epoch, MapVersion: targetVer},
			&CommitShardReply{})
		if err == nil {
			committed[t] = true
		}
	}
	if len(committed) == 0 {
		return fail(fmt.Errorf("dist: handoff of shard %d: no target in group %d committed", sid, toGroup))
	}
	rep.Replicas = len(committed)

	// Flip ownership. Target members that missed the stream or the
	// commit start stale — they rejoin via a repair handoff.
	c.mu.Lock()
	c.smap = c.smap.WithOwner(idx, toGroup)
	if c.smap.Version != targetVer {
		// Unreachable while handoffs are serialized; guard the invariant
		// loudly rather than serving under a torn version.
		c.mu.Unlock()
		return nil, fmt.Errorf("dist: handoff of shard %d: version moved underneath (%d != %d)",
			sid, c.smap.Version, targetVer)
	}
	st := map[int]bool{}
	for _, t := range c.groups[toGroup] {
		if !committed[t] {
			st[t] = true
		}
	}
	c.stale[sid] = st
	newMap := c.smap.Clone()
	c.mu.Unlock()
	c.inner.reg.Gauge("zsky_shard_points", obs.L("shard", fmt.Sprint(sid))).Set(float64(rep.Rows))

	// Re-broadcast so lastRule carries the new map: a worker that dies
	// and resurrects from here on learns the post-move ownership.
	// Best-effort — workers also fold versions forward from query and
	// insert arguments.
	_ = c.inner.broadcast(ctx, RuleBlob{ID: c.ruleID, Data: c.ruleData, Shards: newMap})

	// Drop the shard from old members that left the owning group.
	// Best-effort: a dead member simply resurrects without the shard
	// (resurrection replays the rule, not the data), and the version
	// guard makes a late drop harmless if the shard moves back.
	if fromGroup != toGroup {
		for _, w := range c.groups[fromGroup] {
			_ = c.callOn(ctx, w, sid, "Worker.DropShard",
				DropShardArgs{ShardID: sid, MapVersion: targetVer}, &DropShardReply{})
		}
	}

	c.inner.reg.Counter("zsky_shard_moves_total").Add(1)
	c.inner.reg.Histogram("zsky_shard_handoff_seconds", nil).Observe(time.Since(start).Seconds())
	ev.DurationMS = float64(time.Since(start).Microseconds()) / 1000
	ev.SetResults(rep.Rows)
	c.inner.events.RecordForced(*ev)
	return rep, nil
}

// pullFrom fetches one batch at args.Cursor from any fresh source
// replica, rotating on transport failure. Identical replica group
// lists make the cursor portable across members.
func (c *Cluster) pullFrom(ctx context.Context, sid int, sources []int, args *PullShardArgs, reply *PullShardReply) error {
	pol := c.shardPolicy(sid)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		w, err := c.pickLiveIn(ctx, sources, attempt)
		if err != nil {
			if lastErr != nil {
				return fmt.Errorf("dist: pull shard %d: %v: %w", sid, lastErr, err)
			}
			return fmt.Errorf("dist: pull shard %d: %w", sid, err)
		}
		*reply = PullShardReply{}
		sp, ev, done := c.inner.startRPC(ctx, "Worker.PullShard")
		_, err = c.inner.attempt(ctx, "Worker.PullShard", *args, reply, w,
			callOpts{pol: pol, sp: sp, ev: ev})
		ev.SetAttempts(attempt + 1)
		done(w, err)
		if err == nil {
			return nil
		}
		lastErr = err
		class := classify(err)
		c.inner.reg.Counter("zsky_dist_rpc_errors_total",
			obs.L("method", "Worker.PullShard"), obs.L("class", className(class))).Add(1)
		if class == classFatal || ctx.Err() != nil {
			return err
		}
		if attempt >= pol.retries+len(sources) {
			return fmt.Errorf("dist: pull shard %d: attempts exhausted: %w", sid, lastErr)
		}
		sleep(ctx, c.inner.bo.delay(pol, attempt))
	}
}
