package dist

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"zskyline/internal/codec"
	"zskyline/internal/obs"
	"zskyline/internal/plan"
	"zskyline/internal/point"
	"zskyline/internal/sample"
)

// SkylineFile computes the skyline of a ZSKY binary file without ever
// loading it into the coordinator's memory: pass 1 streams the file to
// learn the bounding box and a reservoir sample (phase 1's input),
// pass 2 streams chunks straight to the workers' MapChunk RPCs. This
// is the deployment shape for datasets larger than the coordinator —
// the same regime the paper's HDFS-resident inputs live in.
func (c *Coordinator) SkylineFile(ctx context.Context, path string) (_ []point.Point, _ *Report, retErr error) {
	rep := &Report{Workers: len(c.addrs)}
	start := time.Now()

	// One "query" event per run, joined by request ID to the "rpc"
	// events the streamed map calls record (same shape as Skyline).
	id := obs.RequestIDFrom(ctx)
	if id == "" {
		id = obs.NewRequestID()
		ctx = obs.ContextWithRequestID(ctx, id)
	}
	ev := &obs.Event{
		ID:        id,
		Kind:      "query",
		Route:     "dist/skyline-file",
		Query:     "file:" + path,
		Dominance: c.cfg.Dominance.String(),
	}
	wireBefore := c.WireStats()
	results := 0
	defer func() {
		ev.DurationMS = float64(time.Since(start).Microseconds()) / 1000
		ev.SetPhase("preprocess", rep.Preprocess)
		ev.SetPhase("phase2", rep.Phase2)
		ev.SetPhase("phase3", rep.Phase3)
		for i, ws := range c.WireStats() {
			ev.WireSentBytes += ws.Sent - wireBefore[i].Sent
			ev.WireRecvBytes += ws.Recv - wireBefore[i].Recv
		}
		ev.SetResults(results)
		if retErr != nil {
			ev.SetError(className(classify(retErr)), retErr.Error())
			c.events.RecordForced(*ev)
			return
		}
		c.events.Record(*ev)
	}()

	// ---- Pass 1: bounds + reservoir sample + count ----
	t0 := time.Now()
	dims, n, mins, maxs, smp, err := c.scanFile(path)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, rep, nil
	}

	// ---- Phase 1 on the sample (identical to the in-memory path) ----
	r, err := plan.Learn(c.cfg.spec(), dims, mins, maxs, smp, nil)
	if err != nil {
		return nil, nil, err
	}
	ex := &rpcExec{c: c}
	if err := ex.Broadcast(ctx, r); err != nil {
		return nil, nil, err
	}
	rep.Preprocess = time.Since(t0)
	rep.Partitions = r.Partitions()
	rep.Groups = r.Groups()

	// ---- Pass 2 / phase 2: stream chunks to workers ----
	t1 := time.Now()
	mapOuts, err := c.streamMap(ctx, path, ex.ruleID)
	if err != nil {
		return nil, nil, err
	}
	groups, filtered := plan.Shuffle(mapOuts)
	rep.Filtered = filtered
	groups, err = ex.RunReduces(ctx, r, groups, nil)
	if err != nil {
		return nil, nil, err
	}
	for _, g := range groups {
		rep.Candidates += g.Len()
	}
	rep.Phase2 = time.Since(t1)

	// ---- Phase 3 ----
	t2 := time.Now()
	sky, err := plan.MergePhase(ctx, ex, r, groups, c.cfg.TreeMerge, nil)
	if err != nil {
		return nil, nil, err
	}
	rep.Phase3 = time.Since(t2)
	rep.Total = time.Since(start)
	rep.Wire = c.WireStats()
	results = len(sky)
	return sky, rep, nil
}

// scanFile streams the file once for dims, count, bounds and a
// reservoir sample sized by the configured ratio (estimated from the
// header's point count).
func (c *Coordinator) scanFile(path string) (dims int, n int64, mins, maxs []float64, smp []point.Point, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, nil, nil, nil, err
	}
	defer f.Close()
	br, err := codec.NewBinaryReader(f)
	if err != nil {
		return 0, 0, nil, nil, nil, err
	}
	dims = br.Dims()
	k := int(c.cfg.SampleRatio * float64(br.Remaining()))
	if k < 64 {
		k = 64
	}
	res, err := sample.NewStream(k, c.cfg.Seed)
	if err != nil {
		return 0, 0, nil, nil, nil, err
	}
	for {
		batch, err := br.NextBlock(c.cfg.ChunkSize)
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, nil, nil, nil, err
		}
		mins, maxs = batch.UpdateBounds(mins, maxs)
		res.AddBlock(batch)
		n += int64(batch.Len())
	}
	if n > 0 && len(res.Sample()) == 0 {
		return 0, 0, nil, nil, nil, fmt.Errorf("dist: empty sample from %d points", n)
	}
	return dims, n, mins, maxs, res.Sample(), nil
}

// streamMap streams the file's chunks to the workers with bounded
// in-flight RPCs (one per worker connection), so coordinator memory
// holds at most workers+1 batches at any moment.
func (c *Coordinator) streamMap(ctx context.Context, path string, ruleID uint64) ([]plan.MapOutput, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br, err := codec.NewBinaryReader(f)
	if err != nil {
		return nil, err
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		outs     []plan.MapOutput
	)
	for {
		batch, err := br.NextBlock(c.cfg.ChunkSize)
		if err == io.EOF {
			break
		}
		if err != nil {
			wg.Wait()
			return nil, err
		}
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		// Admission rides the liveness state machine: a resurrected
		// worker rejoins the streaming rotation mid-file.
		worker, err := c.acquire(ctx)
		if err != nil {
			wg.Wait()
			return nil, err
		}
		wg.Add(1)
		go func(batch point.Block, worker int) {
			defer wg.Done()
			defer c.release(worker)
			sp, ev, done := c.startRPC(ctx, "Worker.MapChunk")
			var reply MapReply
			served, err := c.call(ctx, "Worker.MapChunk",
				MapArgs{RuleID: ruleID, Block: batch}, &reply,
				callOpts{preferred: worker, sp: sp, ev: ev})
			if err != nil {
				done(served, err)
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			done(served, nil)
			mu.Lock()
			outs = append(outs, plan.MapOutput{Groups: reply.Groups, Filtered: reply.Filtered})
			mu.Unlock()
		}(batch, worker)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return outs, nil
}
