package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"zskyline/internal/dominance"
	"zskyline/internal/gen"
	"zskyline/internal/obs"
	"zskyline/internal/plan"
	"zskyline/internal/point"
	"zskyline/internal/seq"
	"zskyline/internal/zorder"
)

// startGroup spins up n plain workers as one group.
func startGroup(t *testing.T, n int) ([]string, []*WorkerServer) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*WorkerServer, n)
	for i := 0; i < n; i++ {
		ws, err := StartWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ws.Close() })
		addrs[i] = ws.Addr()
		servers[i] = ws
	}
	return addrs, servers
}

// testClusterConfig is the base config the cluster tests share: unit
// cube bounds, fast retries, and small handoff batches so streams span
// multiple pulls.
func testClusterConfig(dims int) ClusterConfig {
	mins := make([]float64, dims)
	maxs := make([]float64, dims)
	for i := range maxs {
		maxs[i] = 1
	}
	return ClusterConfig{
		Mins: mins, Maxs: maxs, Bits: 12,
		Retries: 3, RPCTimeout: 5 * time.Second,
		PullRows: 256, Seed: 7,
	}
}

// insertBatches feeds the dataset in several InsertBlock calls so
// shards accumulate multiple append groups (exercising the PullShard
// cursor during handoffs).
func insertBatches(t *testing.T, c *Cluster, pts []point.Point, batch int) {
	t.Helper()
	for lo := 0; lo < len(pts); lo += batch {
		hi := min(lo+batch, len(pts))
		if err := c.Insert(context.Background(), pts[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClusterSkylineExact(t *testing.T) {
	for _, dist := range []gen.Distribution{gen.Independent, gen.Correlated, gen.AntiCorrelated} {
		// Fresh workers per cluster: shard residency is cluster-scoped
		// worker state, and a second cluster reusing the processes would
		// find (and append to) the first one's resident shards.
		g0, _ := startGroup(t, 2)
		g1, _ := startGroup(t, 2)
		ds := gen.Synthetic(dist, 3000, 4, 23)
		want := seq.SB(ds.Points, nil)
		c, err := NewCluster(context.Background(), testClusterConfig(4), [][]string{g0, g1})
		if err != nil {
			t.Fatal(err)
		}
		insertBatches(t, c, ds.Points, 500)
		got, rep, err := c.Skyline(context.Background())
		if err != nil {
			c.Close()
			t.Fatalf("%v: %v", dist, err)
		}
		sameSet(t, got, want, dist.String())
		if rep.Shards != 2 || rep.Routed != 2 {
			t.Errorf("%v: routed %d/%d shards, want 2/2", dist, rep.Routed, rep.Shards)
		}
		if rep.MapVersion != 1 {
			t.Errorf("%v: map version %d, want 1", dist, rep.MapVersion)
		}
		c.Close()
	}
}

func TestClusterEmptyAndSingleShardQueries(t *testing.T) {
	g0, _ := startGroup(t, 1)
	g1, _ := startGroup(t, 1)
	cfg := testClusterConfig(3)
	c, err := NewCluster(context.Background(), cfg, [][]string{g0, g1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Empty cluster answers the empty skyline, not "not resident".
	got, _, err := c.Skyline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty cluster skyline has %d points", len(got))
	}
	// A range inside one shard routes to exactly that shard.
	ds := gen.Synthetic(gen.Independent, 1000, 3, 5)
	insertBatches(t, c, ds.Points, 300)
	cut := c.Map().Cuts[0]
	_, rep, err := c.SkylineRange(context.Background(), nil, zorder.ZAddr(cut))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Routed != 1 || rep.Shards != 2 {
		t.Fatalf("routed %d/%d shards, want 1/2", rep.Routed, rep.Shards)
	}
}

// rangeOracle computes the exact skyline of the points whose Z-address
// falls in rng, using the same encoder geometry as the cluster.
func rangeOracle(t *testing.T, cfg ClusterConfig, pts []point.Point, rng zorder.Range) []point.Point {
	t.Helper()
	enc, err := zorder.NewEncoder(len(cfg.Mins), cfg.Bits, cfg.Mins, cfg.Maxs)
	if err != nil {
		t.Fatal(err)
	}
	var in []point.Point
	for _, p := range pts {
		if rng.Contains(enc.Encode(p)) {
			in = append(in, p)
		}
	}
	return seq.SB(in, nil)
}

func TestClusterRangeQueryExact(t *testing.T) {
	g0, _ := startGroup(t, 2)
	g1, _ := startGroup(t, 2)
	cfg := testClusterConfig(4)
	cfg.Shards = 4 // 2 shards per group: range routing beats broadcast
	c, err := NewCluster(context.Background(), cfg, [][]string{g0, g1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ds := gen.Synthetic(gen.AntiCorrelated, 4000, 4, 11)
	insertBatches(t, c, ds.Points, 600)

	m := c.Map()
	// Query shard 1's range exactly: [cut0, cut1).
	lo, hi := zorder.ZAddr(m.Cuts[0]), zorder.ZAddr(m.Cuts[1])
	want := rangeOracle(t, cfg, ds.Points, zorder.Range{Lo: lo, Hi: hi})

	got, rep, err := c.SkylineRange(context.Background(), lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "routed range")
	if rep.Routed != 1 || rep.Shards != 4 {
		t.Errorf("routed %d/%d shards, want 1/4", rep.Routed, rep.Shards)
	}

	bGot, bRep, err := c.SkylineRangeBroadcast(context.Background(), lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, bGot, want, "broadcast range")
	if bRep.Routed != 4 {
		t.Errorf("broadcast routed %d shards, want 4", bRep.Routed)
	}
	if bRep.WireSentBytes <= rep.WireSentBytes {
		t.Errorf("broadcast sent %d bytes, routed sent %d: routing should move fewer",
			bRep.WireSentBytes, rep.WireSentBytes)
	}
}

func TestClusterHandoffMidRun(t *testing.T) {
	g0, _ := startGroup(t, 2)
	g1, _ := startGroup(t, 2)
	c, err := NewCluster(context.Background(), testClusterConfig(4), [][]string{g0, g1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ds := gen.Synthetic(gen.Independent, 2500, 4, 31)
	want := seq.SB(ds.Points, nil)
	insertBatches(t, c, ds.Points, 400)

	// Queries hammer the cluster while shard 0 moves group 0 -> 1 and
	// back; every answer must be exact whichever map version it routed
	// under.
	stop := make(chan struct{})
	errCh := make(chan error, 16)
	var wg sync.WaitGroup
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, _, err := c.Skyline(context.Background())
				if err != nil {
					errCh <- err
					return
				}
				if len(got) != len(want) {
					errCh <- fmt.Errorf("mid-handoff skyline has %d points, want %d", len(got), len(want))
					return
				}
			}
		}()
	}
	rep, err := c.Handoff(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MapVersion != 2 || rep.ToGroup != 1 {
		t.Fatalf("handoff report %+v", rep)
	}
	if rep.Replicas != 2 {
		t.Errorf("committed on %d replicas, want 2", rep.Replicas)
	}
	if _, err := c.Handoff(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if v := c.Map().Version; v != 3 {
		t.Errorf("map version %d after two handoffs, want 3", v)
	}
	got, _, err := c.Skyline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "post-handoff")

	// Inserts keep routing correctly under the new map.
	extra := gen.Synthetic(gen.Correlated, 800, 4, 41)
	insertBatches(t, c, extra.Points, 300)
	all := append(append([]point.Point(nil), ds.Points...), extra.Points...)
	got, _, err = c.Skyline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, seq.SB(all, nil), "post-handoff insert")
}

func TestClusterHandoffSeveredMidStream(t *testing.T) {
	// Source member A severs the connection on every PullShard; the
	// stream must resume at the same cursor on replica B.
	faults, err := ParseFaultPlan("Worker.PullShard:1x100:sever")
	if err != nil {
		t.Fatal(err)
	}
	wa, err := StartWorkerWithFaults("127.0.0.1:0", faults)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wa.Close() })
	wb, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wb.Close() })
	g1, _ := startGroup(t, 2)

	cfg := testClusterConfig(4)
	cfg.RedialInterval = 50 * time.Millisecond
	c, err := NewCluster(context.Background(), cfg, [][]string{{wa.Addr(), wb.Addr()}, g1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ds := gen.Synthetic(gen.AntiCorrelated, 2000, 4, 13)
	want := seq.SB(ds.Points, nil)
	insertBatches(t, c, ds.Points, 250)

	rep, err := c.Handoff(context.Background(), 0, 1)
	if err != nil {
		t.Fatalf("handoff across severed stream: %v", err)
	}
	rows := c.ShardRows()
	if int64(rep.Rows) != rows[0] {
		t.Errorf("streamed %d rows, shard holds %d", rep.Rows, rows[0])
	}
	got, _, err := c.Skyline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "post-severed-handoff")
	if faults.Injected() == 0 {
		t.Error("fault plan never fired; test exercised nothing")
	}
}

func TestClusterShardMapVersionRace(t *testing.T) {
	g0, _ := startGroup(t, 2)
	g1, _ := startGroup(t, 2)
	c, err := NewCluster(context.Background(), testClusterConfig(3), [][]string{g0, g1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ds := gen.Synthetic(gen.Independent, 1500, 3, 19)
	want := seq.SB(ds.Points, nil)
	insertBatches(t, c, ds.Points, 250)

	stop := make(chan struct{})
	errCh := make(chan error, 16)
	var wg sync.WaitGroup
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The snapshot a query routes under must always be a valid
				// map: every address with exactly one owner.
				m := c.Map()
				if err := m.Validate(c.Groups()); err != nil {
					errCh <- err
					return
				}
				got, rep, err := c.Skyline(context.Background())
				if err != nil {
					errCh <- err
					return
				}
				if len(got) != len(want) {
					errCh <- fmt.Errorf("v%d skyline has %d points, want %d",
						rep.MapVersion, len(got), len(want))
					return
				}
			}
		}()
	}
	var lastVer uint64 = 1
	for i := 0; i < 4; i++ {
		to := (i + 1) % 2
		rep, err := c.Handoff(context.Background(), i%2, to)
		if err != nil {
			t.Fatal(err)
		}
		if rep.MapVersion <= lastVer {
			t.Fatalf("map version went %d -> %d", lastVer, rep.MapVersion)
		}
		lastVer = rep.MapVersion
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func TestClusterMemberDeathAndRepair(t *testing.T) {
	g0a, s0 := startGroup(t, 2)
	g1, _ := startGroup(t, 1)
	cfg := testClusterConfig(3)
	cfg.Retries = 1
	cfg.RPCTimeout = time.Second
	cfg.RedialInterval = -1 // dead stays dead
	c, err := NewCluster(context.Background(), cfg, [][]string{g0a, g1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ds := gen.Synthetic(gen.Independent, 1200, 3, 29)
	insertBatches(t, c, ds.Points, 400)

	// Kill one replica of group 0, then insert: the write fails there
	// after pinned retries, the member goes stale, the insert succeeds
	// on the survivor.
	s0[1].Close()
	extra := gen.Synthetic(gen.Correlated, 400, 3, 37)
	insertBatches(t, c, extra.Points, 200)

	all := append(append([]point.Point(nil), ds.Points...), extra.Points...)
	want := seq.SB(all, nil)
	got, _, err := c.Skyline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "with stale replica")

	// The shard survives on one replica; moving it to group 1 restores
	// replication without the dead member.
	if _, err := c.Handoff(context.Background(), 0, 1); err != nil {
		t.Fatal(err)
	}
	got, _, err = c.Skyline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "post-repair")
}

func TestClusterAllReplicasDown(t *testing.T) {
	g0, s0 := startGroup(t, 1)
	g1, _ := startGroup(t, 1)
	cfg := testClusterConfig(3)
	cfg.Retries = 1
	cfg.RPCTimeout = 500 * time.Millisecond
	cfg.RedialInterval = -1
	c, err := NewCluster(context.Background(), cfg, [][]string{g0, g1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ds := gen.Synthetic(gen.Independent, 300, 3, 3)
	insertBatches(t, c, ds.Points, 300)
	s0[0].Close()
	_, _, err = c.Skyline(context.Background())
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("skyline with a dead shard: %v, want ErrShardDown", err)
	}
}

func TestClusterRejectsNonTransitive(t *testing.T) {
	g0, _ := startGroup(t, 1)
	cfg := testClusterConfig(3)
	cfg.Dominance = dominance.Descriptor{Kind: dominance.KindKDom, K: 2}
	if _, err := NewCluster(context.Background(), cfg, [][]string{g0}); err == nil {
		t.Fatal("k-dominance accepted: shard-local skylines are unsound to merge under a non-transitive relation")
	}
}

func TestClusterRejectsShardsCutsMismatch(t *testing.T) {
	g0, _ := startGroup(t, 1)
	cfg := testClusterConfig(3)
	cfg.Cuts = [][]uint64{{1 << 30}} // 1 cut -> 2 shards
	cfg.Shards = 3
	if _, err := NewCluster(context.Background(), cfg, [][]string{g0}); err == nil {
		t.Fatal("inconsistent Shards/Cuts pair accepted")
	}
	// The consistent pair still constructs.
	cfg.Shards = 2
	c, err := NewCluster(context.Background(), cfg, [][]string{g0})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

// TestWorkerShardSkylineVersionRace hammers ShardSkyline concurrently
// with strictly increasing map versions: folding the version forward
// must happen under the write lock, never under the read lock the
// snapshot takes (the race detector catches the regression).
func TestWorkerShardSkylineVersionRace(t *testing.T) {
	rd := plan.RuleData{
		Dims: 2, Bits: 8, Mins: []float64{0, 0}, Maxs: []float64{1, 1},
		Pivots: [][]uint64{}, GroupOf: map[int]int{}, Groups: 1,
		Local: plan.SB, Merge: plan.MergeZM,
	}
	rule, err := plan.FromData(&rd)
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{rules: map[uint64]*plan.Rule{1: rule}, reg: obs.NewRegistry(),
		resident: map[int]*residentShard{0: {}},
		staged:   make(map[stageKey]*residentShard)}
	const goroutines, iters = 4, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var reply ShardSkyReply
				if err := w.ShardSkyline(ShardSkyArgs{RuleID: 1, ShardID: 0,
					MapVersion: uint64(g*iters + i + 1)}, &reply); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	var stats ShardStatsReply
	if err := w.ShardStats(ShardStatsArgs{}, &stats); err != nil {
		t.Fatal(err)
	}
	if want := uint64(goroutines * iters); stats.MapVersion != want {
		t.Errorf("installed version %d, want %d", stats.MapVersion, want)
	}
}

// TestClusterInsertFatalMarksUnwrittenReplicasStale drives an insert
// into a fatal mid-replication abort (one replica rejects over its
// resident cap after the other stored the batch) and requires the
// rejecting replica to go stale: replicas that silently diverge would
// break PullShard cursor portability and serve short skylines.
func TestClusterInsertFatalMarksUnwrittenReplicasStale(t *testing.T) {
	wa, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wa.Close() })
	wb, err := StartWorkerWithOptions("127.0.0.1:0", WorkerOptions{MaxResidentRows: 60})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wb.Close() })

	c, err := NewCluster(context.Background(), testClusterConfig(3),
		[][]string{{wa.Addr(), wb.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ds := gen.Synthetic(gen.Independent, 100, 3, 53)

	// First 50 rows fit both replicas; the next 50 push the capped one
	// over 60 — a fatal verdict after the uncapped member stored them.
	if err := c.Insert(context.Background(), ds.Points[:50]); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(context.Background(), ds.Points[50:]); err == nil {
		t.Fatal("over-cap insert succeeded")
	}
	c.mu.Lock()
	capped := c.stale[0][1]
	c.mu.Unlock()
	if !capped {
		t.Fatal("replica that rejected the batch is still fresh: the group diverged silently")
	}

	// The surviving replica holds every row, so the skyline over the
	// full dataset is exact, and further inserts land on it alone.
	got, _, err := c.Skyline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, seq.SB(ds.Points, nil), "after fatal insert abort")
	extra := gen.Synthetic(gen.Correlated, 40, 3, 59)
	if err := c.Insert(context.Background(), extra.Points); err != nil {
		t.Fatal(err)
	}
	all := append(append([]point.Point(nil), ds.Points...), extra.Points...)
	got, _, err = c.Skyline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, seq.SB(all, nil), "insert after stale mark")
}

// TestClusterHandoffRetryAfterAbortedStage fails a handoff at commit
// (after the full copy staged) with the abort's DropStaged also
// failing, so the target keeps the leftover staging area. The retry
// must not append onto it: staging epochs are unique per attempt, so
// the shard ends up with exactly one copy.
func TestClusterHandoffRetryAfterAbortedStage(t *testing.T) {
	faults, err := ParseFaultPlan("Worker.CommitShard:1x4:sever,Worker.DropStaged:1x8:sever")
	if err != nil {
		t.Fatal(err)
	}
	src, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	dst, err := StartWorkerWithFaults("127.0.0.1:0", faults)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dst.Close() })

	cfg := testClusterConfig(3)
	cfg.RedialInterval = 50 * time.Millisecond
	c, err := NewCluster(context.Background(), cfg,
		[][]string{{src.Addr()}, {dst.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ds := gen.Synthetic(gen.Independent, 1500, 3, 61)
	want := seq.SB(ds.Points, nil)
	insertBatches(t, c, ds.Points, 250)

	if _, err := c.Handoff(context.Background(), 0, 1); err == nil {
		t.Fatal("handoff with severed commits succeeded")
	}
	if faults.Injected() == 0 {
		t.Fatal("fault plan never fired; test exercised nothing")
	}

	rep, err := c.Handoff(context.Background(), 0, 1)
	if err != nil {
		t.Fatalf("handoff retry: %v", err)
	}
	if rep.MapVersion != 2 {
		t.Errorf("retry flipped to version %d, want 2", rep.MapVersion)
	}
	if got := c.ShardRows()[0]; int64(rep.Rows) != got {
		t.Errorf("retry streamed %d rows, shard holds %d", rep.Rows, got)
	}
	stats := c.ShardStats(context.Background())
	if resident, ok := stats[dst.Addr()]; !ok {
		t.Error("target worker unreachable for stats")
	} else if resident.Rows[0] != int64(rep.Rows) {
		t.Errorf("target resident %d rows for shard 0, want %d: leftover stage polluted the retry",
			resident.Rows[0], rep.Rows)
	}
	got, _, err := c.Skyline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "post-aborted-stage retry")
}

func TestClusterPerShardPolicy(t *testing.T) {
	g0, _ := startGroup(t, 2)
	cfg := testClusterConfig(3)
	cfg.Shards = 2
	cfg.PerShard = map[int]ShardPolicy{1: {Retries: 7, RPCTimeout: time.Minute}}
	c, err := NewCluster(context.Background(), cfg, [][]string{g0})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if p := c.shardPolicy(1); p.retries != 7 || p.rpcTimeout != time.Minute {
		t.Errorf("shard 1 policy = %+v", *p)
	}
	if p := c.shardPolicy(0); p.retries != cfg.Retries {
		t.Errorf("shard 0 inherited retries %d, want %d", p.retries, cfg.Retries)
	}
	// Per-shard overrides must not break serving.
	ds := gen.Synthetic(gen.Independent, 500, 3, 43)
	insertBatches(t, c, ds.Points, 200)
	got, _, err := c.Skyline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, seq.SB(ds.Points, nil), "per-shard policy")
}
