package dist

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"zskyline/internal/metrics"
	"zskyline/internal/obs"
	"zskyline/internal/plan"
	"zskyline/internal/point"
	"zskyline/internal/zbtree"
)

// CoordinatorConfig parameterizes a distributed run; it mirrors
// core.Config where the concepts overlap.
type CoordinatorConfig struct {
	// M is the target group count.
	M int
	// Delta is the partition expansion factor.
	Delta int
	// SampleRatio drives phase-1 reservoir sampling.
	SampleRatio float64
	// Bits is the Z-order resolution per dimension.
	Bits int
	// Fanout is the ZB-tree fanout.
	Fanout int
	// UseZS selects the local skyline algorithm on workers.
	UseZS bool
	// Heuristic selects ZHG instead of ZDG grouping.
	Heuristic bool
	// ChunkSize bounds the points per MapChunk call; 0 selects 8192.
	ChunkSize int
	// TreeMerge, when true, runs phase 3 as a parallel merge reduction
	// across all workers instead of the paper's single merge reducer:
	// each round pairs up partial skylines and Z-merges them on
	// whichever workers are free.
	TreeMerge bool
	// Seed drives sampling.
	Seed int64
}

// spec lowers the config to the backend-agnostic plan parameters.
func (cfg *CoordinatorConfig) spec() *plan.Spec {
	strat := plan.ZDG
	if cfg.Heuristic {
		strat = plan.ZHG
	}
	local := plan.SB
	if cfg.UseZS {
		local = plan.ZS
	}
	return &plan.Spec{
		Strategy:    strat,
		Local:       local,
		Merge:       plan.MergeZM,
		M:           cfg.M,
		Delta:       cfg.Delta,
		SampleRatio: cfg.SampleRatio,
		Bits:        cfg.Bits,
		Fanout:      cfg.Fanout,
		Seed:        cfg.Seed,
		TreeMerge:   cfg.TreeMerge,
		ChunkSize:   cfg.ChunkSize,
	}
}

// DefaultCoordinatorConfig mirrors core.Defaults for the distributed
// deployment.
func DefaultCoordinatorConfig() CoordinatorConfig {
	return CoordinatorConfig{M: 32, Delta: 4, SampleRatio: 0.02, Bits: 16,
		Fanout: zbtree.DefaultFanout, UseZS: true}
}

// Report describes a distributed run.
type Report struct {
	Workers    int
	Groups     int
	Partitions int
	Candidates int
	Filtered   int64
	Preprocess time.Duration
	Phase2     time.Duration
	Phase3     time.Duration
	Total      time.Duration
	// Wire holds per-worker TCP byte totals since the coordinator
	// connected (cumulative across queries on a reused coordinator).
	Wire []WireStat
}

// WireStat is one worker connection's byte totals as measured on the
// coordinator side of the TCP stream.
type WireStat struct {
	Addr string
	Sent int64
	Recv int64
}

// countConn wraps a net.Conn with byte counters for RPC wire
// accounting.
type countConn struct {
	net.Conn
	sent, recv *atomic.Int64
}

func (c countConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.recv.Add(int64(n))
	return n, err
}

func (c countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}

// wireCounter tracks one worker connection's totals.
type wireCounter struct {
	sent, recv atomic.Int64
}

// ruleCounter makes rule IDs unique across coordinators in this
// process; a random salt makes them unique across processes sharing
// workers, so a fresh coordinator can never collide with a stale rule
// cached from another one.
var ruleCounter atomic.Uint64

// Coordinator drives a set of TCP workers through the three phases.
// Workers that fail an RPC are marked dead and their tasks retried on
// the surviving ones; a query only fails once no worker is left.
type Coordinator struct {
	cfg     CoordinatorConfig
	clients []*rpc.Client
	addrs   []string
	wire    []*wireCounter
	salt    uint64
	mu      sync.Mutex
	dead    []bool
}

// NewCoordinator dials every worker address and verifies liveness.
func NewCoordinator(cfg CoordinatorConfig, workerAddrs []string) (*Coordinator, error) {
	if len(workerAddrs) == 0 {
		return nil, fmt.Errorf("dist: no workers")
	}
	if cfg.M < 1 || cfg.Delta < 1 || cfg.SampleRatio <= 0 || cfg.SampleRatio > 1 {
		return nil, fmt.Errorf("dist: invalid config %+v", cfg)
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 8192
	}
	var saltBytes [4]byte
	if _, err := cryptorand.Read(saltBytes[:]); err != nil {
		return nil, fmt.Errorf("dist: salt: %w", err)
	}
	salt := uint64(binary.LittleEndian.Uint32(saltBytes[:]))
	c := &Coordinator{cfg: cfg, addrs: workerAddrs, salt: salt,
		dead: make([]bool, len(workerAddrs))}
	for _, addr := range workerAddrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("dist: dial %s: %w", addr, err)
		}
		// Count wire bytes per worker so runs can report real RPC
		// traffic, not just payload estimates.
		wc := &wireCounter{}
		cl := rpc.NewClient(countConn{Conn: conn, sent: &wc.sent, recv: &wc.recv})
		var pong PingReply
		if err := cl.Call("Worker.Ping", PingArgs{}, &pong); err != nil {
			cl.Close()
			c.Close()
			return nil, fmt.Errorf("dist: ping %s: %w", addr, err)
		}
		c.clients = append(c.clients, cl)
		c.wire = append(c.wire, wc)
	}
	return c, nil
}

// WireStats returns per-worker TCP byte totals since connection.
func (c *Coordinator) WireStats() []WireStat {
	out := make([]WireStat, len(c.wire))
	for i, wc := range c.wire {
		out[i] = WireStat{Addr: c.addrs[i], Sent: wc.sent.Load(), Recv: wc.recv.Load()}
	}
	return out
}

// Close hangs up all worker connections.
func (c *Coordinator) Close() error {
	var first error
	for _, cl := range c.clients {
		if cl != nil {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	c.clients = nil
	return first
}

// Skyline runs the full distributed pipeline and returns the exact
// skyline of ds.
func (c *Coordinator) Skyline(ctx context.Context, ds *point.Dataset) ([]point.Point, *Report, error) {
	rep := &Report{Workers: len(c.clients)}
	if ds == nil || ds.Len() == 0 {
		return nil, rep, nil
	}
	sky, prep, err := plan.Run(ctx, c.cfg.spec(), ds, &rpcExec{c: c}, nil)
	if err != nil {
		return nil, nil, err
	}
	rep.Groups = prep.Groups
	rep.Partitions = prep.Partitions
	rep.Candidates = prep.Candidates
	rep.Filtered = prep.Filtered
	rep.Preprocess = prep.Preprocess
	rep.Phase2 = prep.Phase2
	rep.Phase3 = prep.Phase3
	rep.Total = prep.Total
	rep.Wire = c.WireStats()
	if sp := obs.SpanFrom(ctx); sp != nil {
		sp.SetAttr("workers", len(c.clients))
		for _, ws := range rep.Wire {
			sp.SetAttr("wire."+ws.Addr, fmt.Sprintf("sent=%dB recv=%dB", ws.Sent, ws.Recv))
		}
	}
	return sky, rep, nil
}

// pointBytes estimates the wire payload of a point slice (8 bytes per
// coordinate — what gob transfers, minus framing).
func pointBytes(pts []point.Point) int64 {
	var n int64
	for _, p := range pts {
		n += int64(len(p)) * 8
	}
	return n
}

// groupBytes estimates the wire payload of routed groups (gid plus the
// group's flat block frame).
func groupBytes(gs []plan.Group) int64 {
	var n int64
	for _, g := range gs {
		n += 8 + int64(g.Block.Bytes())
	}
	return n
}

// rpcSpan opens one per-RPC child span under ctx's current span,
// annotated with the request payload size. The returned closure
// records the serving worker (post-failover) and response size, then
// ends the span.
func (c *Coordinator) rpcSpan(ctx context.Context, method string, reqBytes int64) func(worker int, respBytes int64) {
	sp := obs.SpanFrom(ctx).Child("rpc/" + method)
	if sp == nil {
		return func(int, int64) {}
	}
	sp.SetAttr("req_bytes", reqBytes)
	return func(worker int, respBytes int64) {
		if worker >= 0 && worker < len(c.addrs) {
			sp.SetAttr("worker", c.addrs[worker])
		}
		sp.SetAttr("resp_bytes", respBytes)
		sp.End()
	}
}

// rpcExec is the plan.Executor that fans tasks out over the
// coordinator's worker connections, with failover. One rpcExec serves
// one query: Broadcast assigns the query's rule ID.
type rpcExec struct {
	c      *Coordinator
	ruleID uint64
}

// Broadcast serializes the rule and installs it on every live worker
// (the distributed-cache step).
func (ex *rpcExec) Broadcast(ctx context.Context, r *plan.Rule) error {
	rd, err := r.Data()
	if err != nil {
		return err
	}
	ex.ruleID = ex.c.salt<<32 | ruleCounter.Add(1)
	return ex.c.broadcast(ctx, RuleBlob{ID: ex.ruleID, Data: *rd})
}

// RunMaps implements plan.Executor via Worker.MapChunk RPCs.
func (ex *rpcExec) RunMaps(ctx context.Context, _ *plan.Rule, chunks []point.Block, _ *metrics.Tally) ([]plan.MapOutput, error) {
	outs := make([]plan.MapOutput, len(chunks))
	err := ex.c.forEach(ctx, len(chunks), func(i, worker int) error {
		done := ex.c.rpcSpan(ctx, "Worker.MapChunk", int64(chunks[i].Bytes()))
		var reply MapReply
		served, err := ex.c.call("Worker.MapChunk",
			MapArgs{RuleID: ex.ruleID, Block: chunks[i]}, &reply, worker)
		if err != nil {
			done(served, 0)
			return err
		}
		done(served, groupBytes(reply.Groups))
		outs[i] = plan.MapOutput{Groups: reply.Groups, Filtered: reply.Filtered}
		return nil
	})
	return outs, err
}

// RunReduces implements plan.Executor via Worker.ReduceGroup RPCs.
func (ex *rpcExec) RunReduces(ctx context.Context, _ *plan.Rule, groups []plan.Group, _ *metrics.Tally) ([]plan.Group, error) {
	outs := make([]plan.Group, len(groups))
	err := ex.c.forEach(ctx, len(groups), func(i, worker int) error {
		done := ex.c.rpcSpan(ctx, "Worker.ReduceGroup", int64(groups[i].Block.Bytes()))
		var reply ReduceReply
		served, err := ex.c.call("Worker.ReduceGroup",
			ReduceArgs{RuleID: ex.ruleID, Group: groups[i]}, &reply, worker)
		if err != nil {
			done(served, 0)
			return err
		}
		done(served, int64(reply.Candidates.Bytes()))
		outs[i] = plan.Group{Gid: groups[i].Gid, Block: reply.Candidates}
		return nil
	})
	return outs, err
}

// RunMerges implements plan.Executor via Worker.MergeGroups RPCs. A
// single task runs on one worker — the paper's lone merge reducer;
// multiple tasks (tree-merge rounds) fan out across the fleet.
func (ex *rpcExec) RunMerges(ctx context.Context, _ *plan.Rule, tasks [][]plan.Group, _ *metrics.Tally) ([]point.Block, error) {
	outs := make([]point.Block, len(tasks))
	mergeOne := func(i, worker int) error {
		done := ex.c.rpcSpan(ctx, "Worker.MergeGroups", groupBytes(tasks[i]))
		var merged MergeReply
		served, err := ex.c.call("Worker.MergeGroups",
			MergeArgs{RuleID: ex.ruleID, Groups: tasks[i]}, &merged, worker)
		if err != nil {
			done(served, 0)
			return err
		}
		done(served, int64(merged.Skyline.Bytes()))
		outs[i] = merged.Skyline
		return nil
	}
	if len(tasks) == 1 {
		return outs, mergeOne(0, 0)
	}
	return outs, ex.c.forEach(ctx, len(tasks), mergeOne)
}

// countWriter sums bytes written, for measuring gob payload sizes.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// broadcast installs the rule on every live worker; workers that fail
// the broadcast are marked dead. It errors only when nobody is left.
func (c *Coordinator) broadcast(ctx context.Context, blob RuleBlob) error {
	// Measure the serialized rule once so every LoadRule span carries
	// the real broadcast payload size.
	var blobBytes int64
	if obs.SpanFrom(ctx) != nil {
		var cw countWriter
		if err := gob.NewEncoder(&cw).Encode(&blob); err == nil {
			blobBytes = cw.n
		}
	}
	var wg sync.WaitGroup
	for w := range c.clients {
		if c.isDead(w) {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			done := c.rpcSpan(ctx, "Worker.LoadRule", blobBytes)
			var reply LoadRuleReply
			if err := c.clients[w].Call("Worker.LoadRule", LoadRuleArgs{Rule: blob}, &reply); err != nil {
				c.markDead(w)
			}
			// LoadRule replies carry no payload; 0 keeps resp_bytes
			// honest alongside the measured RPC spans.
			done(w, 0)
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	if c.aliveCount() == 0 {
		return fmt.Errorf("dist: all workers failed the rule broadcast")
	}
	return nil
}

func (c *Coordinator) isDead(w int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead[w]
}

func (c *Coordinator) markDead(w int) {
	c.mu.Lock()
	c.dead[w] = true
	c.mu.Unlock()
}

func (c *Coordinator) aliveCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, d := range c.dead {
		if !d {
			n++
		}
	}
	return n
}

// call invokes one worker method with failover: a failed worker is
// marked dead and the call retried on the next live one. It returns
// the index of the worker that served the call.
func (c *Coordinator) call(method string, args, reply any, preferred int) (int, error) {
	tried := 0
	w := preferred % len(c.clients)
	for tried < len(c.clients) {
		if !c.isDead(w) {
			err := c.clients[w].Call(method, args, reply)
			if err == nil {
				return w, nil
			}
			c.markDead(w)
		}
		w = (w + 1) % len(c.clients)
		tried++
	}
	return -1, fmt.Errorf("dist: %s failed on every worker", method)
}

// forEach fans n tasks out over the live workers with bounded
// concurrency (one in-flight call per worker connection) and failover.
func (c *Coordinator) forEach(ctx context.Context, n int, f func(task, worker int) error) error {
	if n == 0 {
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan int, len(c.clients))
	for w := range c.clients {
		sem <- w
	}
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			wg.Wait()
			return ctx.Err()
		case worker := <-sem:
			wg.Add(1)
			go func(i, worker int) {
				defer wg.Done()
				defer func() { sem <- worker }()
				if err := f(i, worker); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("dist: task %d: %w", i, err)
					}
					mu.Unlock()
				}
			}(i, worker)
		}
	}
	wg.Wait()
	return firstErr
}
