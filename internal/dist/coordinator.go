package dist

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"zskyline/internal/grouping"
	"zskyline/internal/partition"
	"zskyline/internal/point"
	"zskyline/internal/sample"
	"zskyline/internal/zbtree"
	"zskyline/internal/zorder"
)

// CoordinatorConfig parameterizes a distributed run; it mirrors
// core.Config where the concepts overlap.
type CoordinatorConfig struct {
	// M is the target group count.
	M int
	// Delta is the partition expansion factor.
	Delta int
	// SampleRatio drives phase-1 reservoir sampling.
	SampleRatio float64
	// Bits is the Z-order resolution per dimension.
	Bits int
	// Fanout is the ZB-tree fanout.
	Fanout int
	// UseZS selects the local skyline algorithm on workers.
	UseZS bool
	// Heuristic selects ZHG instead of ZDG grouping.
	Heuristic bool
	// ChunkSize bounds the points per MapChunk call; 0 selects 8192.
	ChunkSize int
	// TreeMerge, when true, runs phase 3 as a parallel merge reduction
	// across all workers instead of the paper's single merge reducer:
	// each round pairs up partial skylines and Z-merges them on
	// whichever workers are free.
	TreeMerge bool
	// Seed drives sampling.
	Seed int64
}

// DefaultCoordinatorConfig mirrors core.Defaults for the distributed
// deployment.
func DefaultCoordinatorConfig() CoordinatorConfig {
	return CoordinatorConfig{M: 32, Delta: 4, SampleRatio: 0.02, Bits: 16,
		Fanout: zbtree.DefaultFanout, UseZS: true}
}

// Report describes a distributed run.
type Report struct {
	Workers    int
	Groups     int
	Partitions int
	Candidates int
	Filtered   int64
	Preprocess time.Duration
	Phase2     time.Duration
	Phase3     time.Duration
	Total      time.Duration
}

// ruleCounter makes rule IDs unique across coordinators in this
// process; a random salt makes them unique across processes sharing
// workers, so a fresh coordinator can never collide with a stale rule
// cached from another one.
var ruleCounter atomic.Uint64

// Coordinator drives a set of TCP workers through the three phases.
// Workers that fail an RPC are marked dead and their tasks retried on
// the surviving ones; a query only fails once no worker is left.
type Coordinator struct {
	cfg     CoordinatorConfig
	clients []*rpc.Client
	addrs   []string
	salt    uint64
	mu      sync.Mutex
	dead    []bool
}

// NewCoordinator dials every worker address and verifies liveness.
func NewCoordinator(cfg CoordinatorConfig, workerAddrs []string) (*Coordinator, error) {
	if len(workerAddrs) == 0 {
		return nil, fmt.Errorf("dist: no workers")
	}
	if cfg.M < 1 || cfg.Delta < 1 || cfg.SampleRatio <= 0 || cfg.SampleRatio > 1 {
		return nil, fmt.Errorf("dist: invalid config %+v", cfg)
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 8192
	}
	var saltBytes [4]byte
	if _, err := cryptorand.Read(saltBytes[:]); err != nil {
		return nil, fmt.Errorf("dist: salt: %w", err)
	}
	salt := uint64(binary.LittleEndian.Uint32(saltBytes[:]))
	c := &Coordinator{cfg: cfg, addrs: workerAddrs, salt: salt,
		dead: make([]bool, len(workerAddrs))}
	for _, addr := range workerAddrs {
		cl, err := rpc.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("dist: dial %s: %w", addr, err)
		}
		var pong PingReply
		if err := cl.Call("Worker.Ping", PingArgs{}, &pong); err != nil {
			cl.Close()
			c.Close()
			return nil, fmt.Errorf("dist: ping %s: %w", addr, err)
		}
		c.clients = append(c.clients, cl)
	}
	return c, nil
}

// Close hangs up all worker connections.
func (c *Coordinator) Close() error {
	var first error
	for _, cl := range c.clients {
		if cl != nil {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	c.clients = nil
	return first
}

// Skyline runs the full distributed pipeline and returns the exact
// skyline of ds.
func (c *Coordinator) Skyline(ctx context.Context, ds *point.Dataset) ([]point.Point, *Report, error) {
	rep := &Report{Workers: len(c.clients)}
	if ds == nil || ds.Len() == 0 {
		return nil, rep, nil
	}
	start := time.Now()

	// ---- Phase 1 on the coordinator (master node) ----
	t0 := time.Now()
	smp, err := sample.Ratio(ds.Points, c.cfg.SampleRatio, c.cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		return nil, nil, err
	}
	enc, err := zorder.NewEncoder(ds.Dims, c.cfg.Bits, mins, maxs)
	if err != nil {
		return nil, nil, err
	}
	zc, err := partition.NewZCurve(enc, smp, c.cfg.M*c.cfg.Delta)
	if err != nil {
		return nil, nil, err
	}
	skyPts := zbtree.ZSearch(enc, c.cfg.Fanout, smp, nil)
	scons := len(skyPts) / c.cfg.M
	if scons < 1 {
		scons = 1
	}
	zc = zc.Redistribute(smp, scons)
	var pg *grouping.PGMap
	if c.cfg.Heuristic {
		pg, err = grouping.Heuristic(zc.Infos(), c.cfg.M)
	} else {
		pg, err = grouping.Dominance(enc, zc.Infos(), c.cfg.M)
	}
	if err != nil {
		return nil, nil, err
	}
	rep.Partitions = zc.N()
	rep.Groups = pg.Groups

	// Broadcast the rule (distributed cache).
	blob := RuleBlob{
		ID:            c.salt<<32 | ruleCounter.Add(1),
		Dims:          ds.Dims,
		Bits:          c.cfg.Bits,
		Mins:          mins,
		Maxs:          maxs,
		GroupOf:       pg.Assign,
		Groups:        pg.Groups,
		SampleSkyline: skyPts,
		Fanout:        c.cfg.Fanout,
		UseZS:         c.cfg.UseZS,
	}
	for _, piv := range zc.Pivots() {
		blob.Pivots = append(blob.Pivots, piv)
	}
	if err := c.broadcast(ctx, blob); err != nil {
		return nil, nil, err
	}
	rep.Preprocess = time.Since(t0)

	// ---- Phase 2: map+combine chunks across workers, then reduce ----
	t1 := time.Now()
	chunks := chunkPoints(ds.Points, c.cfg.ChunkSize)
	mapOuts := make([]*MapReply, len(chunks))
	if err := c.forEach(ctx, len(chunks), func(i, worker int) error {
		var reply MapReply
		if err := c.call("Worker.MapChunk",
			MapArgs{RuleID: blob.ID, Points: chunks[i]}, &reply, worker); err != nil {
			return err
		}
		mapOuts[i] = &reply
		return nil
	}); err != nil {
		return nil, nil, err
	}
	// Shuffle: gather per-group candidate lists in deterministic order.
	byGroup := map[int][]point.Point{}
	var order []int
	for _, out := range mapOuts {
		rep.Filtered += out.Filtered
		for _, g := range out.Groups {
			if _, seen := byGroup[g.Gid]; !seen {
				order = append(order, g.Gid)
			}
			byGroup[g.Gid] = append(byGroup[g.Gid], g.Points...)
		}
	}
	reduced := make([]GroupPoints, len(order))
	if err := c.forEach(ctx, len(order), func(i, worker int) error {
		gid := order[i]
		var reply ReduceReply
		if err := c.call("Worker.ReduceGroup",
			ReduceArgs{RuleID: blob.ID, Group: GroupPoints{Gid: gid, Points: byGroup[gid]}},
			&reply, worker); err != nil {
			return err
		}
		reduced[i] = GroupPoints{Gid: gid, Points: reply.Candidates}
		return nil
	}); err != nil {
		return nil, nil, err
	}
	for _, g := range reduced {
		rep.Candidates += len(g.Points)
	}
	rep.Phase2 = time.Since(t1)

	// ---- Phase 3: Z-merge, single-reducer or tree reduction ----
	t2 := time.Now()
	sky, err := c.merge(ctx, blob.ID, reduced)
	if err != nil {
		return nil, nil, err
	}
	rep.Phase3 = time.Since(t2)
	rep.Total = time.Since(start)
	return sky, rep, nil
}

// merge runs phase 3. The default mirrors the paper (one merge
// reducer); TreeMerge reduces pairwise across workers, halving the
// partial-skyline count per round.
func (c *Coordinator) merge(ctx context.Context, ruleID uint64, groups []GroupPoints) ([]point.Point, error) {
	if !c.cfg.TreeMerge || len(groups) <= 2 {
		var merged MergeReply
		if err := c.call("Worker.MergeGroups",
			MergeArgs{RuleID: ruleID, Groups: groups}, &merged, 0); err != nil {
			return nil, err
		}
		return merged.Skyline, nil
	}
	parts := groups
	for len(parts) > 1 {
		pairs := (len(parts) + 1) / 2
		next := make([]GroupPoints, pairs)
		if err := c.forEach(ctx, pairs, func(i, worker int) error {
			lo := 2 * i
			if lo+1 >= len(parts) {
				next[i] = parts[lo]
				return nil
			}
			var merged MergeReply
			if err := c.call("Worker.MergeGroups",
				MergeArgs{RuleID: ruleID, Groups: []GroupPoints{parts[lo], parts[lo+1]}},
				&merged, worker); err != nil {
				return err
			}
			next[i] = GroupPoints{Gid: i, Points: merged.Skyline}
			return nil
		}); err != nil {
			return nil, err
		}
		parts = next
	}
	return parts[0].Points, nil
}

// broadcast installs the rule on every live worker; workers that fail
// the broadcast are marked dead. It errors only when nobody is left.
func (c *Coordinator) broadcast(ctx context.Context, blob RuleBlob) error {
	var wg sync.WaitGroup
	for w := range c.clients {
		if c.isDead(w) {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var reply LoadRuleReply
			if err := c.clients[w].Call("Worker.LoadRule", LoadRuleArgs{Rule: blob}, &reply); err != nil {
				c.markDead(w)
			}
		}(w)
	}
	wg.Wait()
	if c.aliveCount() == 0 {
		return fmt.Errorf("dist: all workers failed the rule broadcast")
	}
	return nil
}

func (c *Coordinator) isDead(w int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead[w]
}

func (c *Coordinator) markDead(w int) {
	c.mu.Lock()
	c.dead[w] = true
	c.mu.Unlock()
}

func (c *Coordinator) aliveCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, d := range c.dead {
		if !d {
			n++
		}
	}
	return n
}

// call invokes one worker method with failover: a failed worker is
// marked dead and the call retried on the next live one.
func (c *Coordinator) call(method string, args, reply any, preferred int) error {
	tried := 0
	w := preferred % len(c.clients)
	for tried < len(c.clients) {
		if !c.isDead(w) {
			err := c.clients[w].Call(method, args, reply)
			if err == nil {
				return nil
			}
			c.markDead(w)
		}
		w = (w + 1) % len(c.clients)
		tried++
	}
	return fmt.Errorf("dist: %s failed on every worker", method)
}

// forEach fans n tasks out over the live workers with bounded
// concurrency (one in-flight call per worker connection) and failover.
func (c *Coordinator) forEach(ctx context.Context, n int, f func(task, worker int) error) error {
	if n == 0 {
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan int, len(c.clients))
	for w := range c.clients {
		sem <- w
	}
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			wg.Wait()
			return ctx.Err()
		case worker := <-sem:
			wg.Add(1)
			go func(i, worker int) {
				defer wg.Done()
				defer func() { sem <- worker }()
				if err := f(i, worker); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("dist: task %d: %w", i, err)
					}
					mu.Unlock()
				}
			}(i, worker)
		}
	}
	wg.Wait()
	return firstErr
}

func chunkPoints(pts []point.Point, size int) [][]point.Point {
	var out [][]point.Point
	for lo := 0; lo < len(pts); lo += size {
		hi := lo + size
		if hi > len(pts) {
			hi = len(pts)
		}
		out = append(out, pts[lo:hi:hi])
	}
	return out
}
