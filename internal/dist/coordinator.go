package dist

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"zskyline/internal/dominance"
	"zskyline/internal/metrics"
	"zskyline/internal/obs"
	"zskyline/internal/plan"
	"zskyline/internal/point"
	"zskyline/internal/transport"
	"zskyline/internal/zbtree"
)

// CoordinatorConfig parameterizes a distributed run; it mirrors
// core.Config where the concepts overlap and adds the fault-tolerance
// policy every RPC obeys.
type CoordinatorConfig struct {
	// M is the target group count.
	M int
	// Delta is the partition expansion factor.
	Delta int
	// SampleRatio drives phase-1 reservoir sampling.
	SampleRatio float64
	// Bits is the Z-order resolution per dimension.
	Bits int
	// Fanout is the ZB-tree fanout.
	Fanout int
	// UseZS selects the local skyline algorithm on workers.
	UseZS bool
	// Heuristic selects ZHG instead of ZDG grouping.
	Heuristic bool
	// ChunkSize bounds the points per MapChunk call; 0 selects 8192.
	ChunkSize int
	// TreeMerge, when true, runs phase 3 as a parallel merge reduction
	// across all workers instead of the paper's single merge reducer:
	// each round pairs up partial skylines and Z-merges them on
	// whichever workers are free.
	TreeMerge bool
	// Seed drives sampling (and the retry jitter schedule).
	Seed int64
	// Dominance selects the dominance relation (see internal/dominance);
	// the zero value is classic Pareto dominance. The descriptor rides
	// the rule broadcast, so every worker computes under the same
	// relation.
	Dominance dominance.Descriptor

	// RPCTimeout bounds each RPC attempt. 0 selects 15s; negative
	// disables the per-attempt deadline (the context still applies).
	RPCTimeout time.Duration
	// Retries is how many times a failed call is re-issued on a live
	// worker, with exponential backoff and jitter between attempts.
	// 0 selects 3; negative disables retries.
	Retries int
	// Hedge, when positive, speculatively re-issues a straggling
	// reduce or merge call on a second live worker after this delay
	// and takes whichever reply lands first. 0 disables hedging.
	Hedge time.Duration
	// RedialInterval is the period of the resurrection sweep that
	// re-dials suspect/dead workers, re-broadcasts the current rule,
	// and readmits them. 0 selects 500ms; negative disables
	// resurrection (a failed worker stays dead).
	RedialInterval time.Duration
	// DialTimeout bounds every worker dial (startup and redial).
	// 0 selects 2s.
	DialTimeout time.Duration
	// Metrics, when non-nil, receives the coordinator's
	// fault-tolerance counters (retries, resurrections, hedge wins,
	// RPC error classes) and per-state worker gauges. Nil creates a
	// private registry, readable via Coordinator.Metrics.
	Metrics *obs.Registry
	// Events, when non-nil, receives one structured record per query
	// and per RPC issued on a query's behalf (joined on the query's
	// request ID). Nil creates a private ring, readable via
	// Coordinator.Events.
	Events *obs.EventLog
}

// spec lowers the config to the backend-agnostic plan parameters.
func (cfg *CoordinatorConfig) spec() *plan.Spec {
	strat := plan.ZDG
	if cfg.Heuristic {
		strat = plan.ZHG
	}
	local := plan.SB
	if cfg.UseZS {
		local = plan.ZS
	}
	return &plan.Spec{
		Strategy:    strat,
		Local:       local,
		Merge:       plan.MergeZM,
		M:           cfg.M,
		Delta:       cfg.Delta,
		SampleRatio: cfg.SampleRatio,
		Bits:        cfg.Bits,
		Fanout:      cfg.Fanout,
		Seed:        cfg.Seed,
		TreeMerge:   cfg.TreeMerge,
		ChunkSize:   cfg.ChunkSize,
		Dominance:   cfg.Dominance,
	}
}

// policy resolves the user-facing knobs into the internal policy:
// zero means default, negative means disabled.
func (cfg *CoordinatorConfig) policy() policy {
	pol := policy{
		rpcTimeout:  15 * time.Second,
		retries:     3,
		backoffBase: 25 * time.Millisecond,
		backoffMax:  time.Second,
		redial:      500 * time.Millisecond,
		dialTimeout: 2 * time.Second,
	}
	if cfg.RPCTimeout != 0 {
		pol.rpcTimeout = max(cfg.RPCTimeout, 0)
	}
	if cfg.Retries != 0 {
		pol.retries = max(cfg.Retries, 0)
	}
	if cfg.Hedge > 0 {
		pol.hedge = cfg.Hedge
	}
	if cfg.RedialInterval != 0 {
		pol.redial = max(cfg.RedialInterval, 0)
	}
	if cfg.DialTimeout > 0 {
		pol.dialTimeout = cfg.DialTimeout
	}
	return pol
}

// DefaultCoordinatorConfig mirrors core.Defaults for the distributed
// deployment, with the fault-tolerance defaults spelled out.
func DefaultCoordinatorConfig() CoordinatorConfig {
	return CoordinatorConfig{M: 32, Delta: 4, SampleRatio: 0.02, Bits: 16,
		Fanout: zbtree.DefaultFanout, UseZS: true,
		RPCTimeout: 15 * time.Second, Retries: 3,
		RedialInterval: 500 * time.Millisecond, DialTimeout: 2 * time.Second}
}

// Report describes a distributed run.
type Report struct {
	Workers    int
	Groups     int
	Partitions int
	Candidates int
	Filtered   int64
	Preprocess time.Duration
	Phase2     time.Duration
	Phase3     time.Duration
	Total      time.Duration
	// Wire holds per-worker TCP byte totals since the coordinator
	// connected (cumulative across queries and reconnects on a reused
	// coordinator).
	Wire []WireStat
}

// WireStat is one worker connection's byte totals as measured on the
// coordinator side of the TCP stream.
type WireStat struct {
	Addr string
	Sent int64
	Recv int64
}

// countConn wraps a net.Conn with byte counters for RPC wire
// accounting.
type countConn struct {
	net.Conn
	sent, recv *atomic.Int64
}

func (c countConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.recv.Add(int64(n))
	return n, err
}

func (c countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}

// wireCounter tracks one worker connection's totals.
type wireCounter struct {
	sent, recv atomic.Int64
}

// ruleCounter makes rule IDs unique across coordinators in this
// process; a random salt makes them unique across processes sharing
// workers, so a fresh coordinator can never collide with a stale rule
// cached from another one.
var ruleCounter atomic.Uint64

// workerState is one worker's position in the liveness state machine:
//
//	live ──rpc failure──▶ suspect ──redial fails──▶ dead
//	  ▲                      │                        │
//	  │                      └──────▶ resurrecting ◀──┘  (each sweep)
//	  └── ping + rule re-broadcast succeed ──┘
//
// Only live workers receive tasks. Suspect and dead workers are
// re-dialed every RedialInterval; a successful redial re-broadcasts
// the current rule before the worker rejoins the rotation, so a
// restarted process (empty rule cache) serves correctly. With
// resurrection disabled, suspect collapses into dead.
type workerState int32

const (
	wsLive workerState = iota
	wsSuspect
	wsDead
	wsResurrecting
)

var stateNames = [...]string{"live", "suspect", "dead", "resurrecting"}

// Coordinator drives a set of TCP workers through the three phases.
// Every RPC runs under the configured fault-tolerance policy:
// per-attempt deadlines, bounded retries with jittered backoff, and
// failover to live workers. A worker that fails an RPC is suspected
// and periodically re-dialed; it rejoins the rotation once a redial,
// ping, and rule re-broadcast succeed. A query fails with
// ErrClusterDown only when every worker is confirmed dead.
type Coordinator struct {
	cfg    CoordinatorConfig
	pol    policy
	addrs  []string
	wire   []*wireCounter
	salt   uint64
	reg    *obs.Registry
	events *obs.EventLog
	bo     *backoff

	mu       sync.Mutex
	clients  []*transport.Client
	state    []workerState
	inflight []int
	lastRule *RuleBlob
	changed  chan struct{} // closed+replaced on any state/inflight change
	closed   bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewCoordinator dials every worker address (with the configured dial
// timeout) and verifies liveness. Startup is strict: any unreachable
// worker fails construction. After that, fault handling takes over.
func NewCoordinator(cfg CoordinatorConfig, workerAddrs []string) (*Coordinator, error) {
	if len(workerAddrs) == 0 {
		return nil, fmt.Errorf("dist: no workers")
	}
	if cfg.M < 1 || cfg.Delta < 1 || cfg.SampleRatio <= 0 || cfg.SampleRatio > 1 {
		return nil, fmt.Errorf("dist: invalid config %+v", cfg)
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 8192
	}
	var saltBytes [4]byte
	if _, err := cryptorand.Read(saltBytes[:]); err != nil {
		return nil, fmt.Errorf("dist: salt: %w", err)
	}
	salt := uint64(binary.LittleEndian.Uint32(saltBytes[:]))
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	events := cfg.Events
	if events == nil {
		events = obs.NewEventLog(0)
	}
	c := &Coordinator{cfg: cfg, pol: cfg.policy(), addrs: workerAddrs,
		salt: salt, reg: reg, events: events, bo: newBackoff(cfg.Seed + int64(salt)),
		state:    make([]workerState, len(workerAddrs)),
		inflight: make([]int, len(workerAddrs)),
		changed:  make(chan struct{}),
		stop:     make(chan struct{}),
	}
	for _, addr := range workerAddrs {
		conn, err := net.DialTimeout("tcp", addr, c.pol.dialTimeout)
		if err != nil {
			c.closeClients()
			return nil, fmt.Errorf("dist: dial %s: %w", addr, err)
		}
		// Count wire bytes per worker so runs can report real RPC
		// traffic alongside the per-call frame sizes.
		wc := &wireCounter{}
		cl := transport.NewClient(countConn{Conn: conn, sent: &wc.sent, recv: &wc.recv})
		var pong PingReply
		if err := c.callDirect(cl, "Worker.Ping", PingArgs{}, &pong); err != nil {
			cl.Close()
			c.closeClients()
			return nil, fmt.Errorf("dist: ping %s: %w", addr, err)
		}
		c.clients = append(c.clients, cl)
		c.wire = append(c.wire, wc)
	}
	c.mu.Lock()
	c.updateGaugesLocked()
	c.mu.Unlock()
	if c.pol.redial > 0 {
		c.wg.Add(1)
		go c.resurrector()
	}
	return c, nil
}

// Metrics returns the registry holding the coordinator's
// fault-tolerance counters and per-state worker gauges.
func (c *Coordinator) Metrics() *obs.Registry { return c.reg }

// Events returns the event log holding one record per query and per
// RPC issued on a query's behalf.
func (c *Coordinator) Events() *obs.EventLog { return c.events }

// WireStats returns per-worker TCP byte totals since connection
// (cumulative across reconnects).
func (c *Coordinator) WireStats() []WireStat {
	out := make([]WireStat, len(c.wire))
	for i, wc := range c.wire {
		out[i] = WireStat{Addr: c.addrs[i], Sent: wc.sent.Load(), Recv: wc.recv.Load()}
	}
	return out
}

// closeClients hangs up every current connection (startup error path).
func (c *Coordinator) closeClients() {
	for _, cl := range c.clients {
		if cl != nil {
			cl.Close()
		}
	}
}

// Close stops the resurrector and hangs up all worker connections.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	clients := append([]*transport.Client(nil), c.clients...)
	c.signalLocked()
	c.mu.Unlock()
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	var first error
	for _, cl := range clients {
		if cl != nil {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Skyline runs the full distributed pipeline and returns the exact
// skyline of ds. Each run records one "query" event (joined by request
// ID to the "rpc" events it caused); a ctx without a request ID gets a
// fresh one, so standalone coordinator runs are observable too.
func (c *Coordinator) Skyline(ctx context.Context, ds *point.Dataset) ([]point.Point, *Report, error) {
	rep := &Report{Workers: len(c.addrs)}
	if ds == nil || ds.Len() == 0 {
		return nil, rep, nil
	}
	id := obs.RequestIDFrom(ctx)
	if id == "" {
		id = obs.NewRequestID()
		ctx = obs.ContextWithRequestID(ctx, id)
	}
	ev := &obs.Event{
		ID:        id,
		Kind:      "query",
		Route:     "dist/skyline",
		Query:     fmt.Sprintf("skyline:n=%d,dims=%d", ds.Len(), ds.Dims),
		Dominance: c.cfg.Dominance.String(),
	}
	wireBefore := c.WireStats()
	start := time.Now()
	sky, prep, err := plan.Run(ctx, c.cfg.spec(), ds, &rpcExec{c: c}, nil)
	ev.DurationMS = float64(time.Since(start).Microseconds()) / 1000
	if err != nil {
		ev.SetError(className(classify(err)), err.Error())
		c.events.RecordForced(*ev)
		return nil, nil, err
	}
	rep.Groups = prep.Groups
	rep.Partitions = prep.Partitions
	rep.Candidates = prep.Candidates
	rep.Filtered = prep.Filtered
	rep.Preprocess = prep.Preprocess
	rep.Phase2 = prep.Phase2
	rep.Phase3 = prep.Phase3
	rep.Total = prep.Total
	rep.Wire = c.WireStats()
	ev.SetPhase("preprocess", rep.Preprocess)
	ev.SetPhase("phase2", rep.Phase2)
	ev.SetPhase("phase3", rep.Phase3)
	// Wire totals are cumulative per connection; the event carries this
	// query's delta.
	for i, ws := range rep.Wire {
		ev.WireSentBytes += ws.Sent - wireBefore[i].Sent
		ev.WireRecvBytes += ws.Recv - wireBefore[i].Recv
	}
	ev.SetResults(len(sky))
	c.events.Record(*ev)
	if sp := obs.SpanFrom(ctx); sp != nil {
		sp.SetAttr("workers", len(c.addrs))
		for _, ws := range rep.Wire {
			sp.SetAttr("wire."+ws.Addr, fmt.Sprintf("sent=%dB recv=%dB", ws.Sent, ws.Recv))
		}
	}
	return sky, rep, nil
}

// startRPC opens one per-RPC child span under ctx's current span and
// one "rpc" event joined to the owning query via ctx's request ID.
// The call layer (attempt) annotates both with the exact on-wire
// request and response frame sizes of the serving leg — measured from
// the frame headers, never estimated. The returned closure records the
// serving worker (post-failover) and outcome, ends the span, and
// commits the event (errors bypass sampling); span and event are
// handed to the call layer so retry and hedge attempts show up on
// both. Events record even with tracing off — the span is simply nil
// then, and every span method tolerates that.
func (c *Coordinator) startRPC(ctx context.Context, method string) (*obs.Span, *obs.Event, func(worker int, err error)) {
	sp := obs.SpanFrom(ctx).Child("rpc/" + method)
	ev := &obs.Event{
		ID:     obs.NewRequestID(),
		Parent: obs.RequestIDFrom(ctx),
		Kind:   "rpc",
		Route:  method,
	}
	start := time.Now()
	return sp, ev, func(worker int, err error) {
		if worker >= 0 && worker < len(c.addrs) {
			sp.SetAttr("worker", c.addrs[worker])
			ev.Worker = c.addrs[worker]
		}
		sp.End()
		ev.DurationMS = float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			ev.SetError(className(classify(err)), err.Error())
			c.events.RecordForced(*ev)
			return
		}
		c.events.Record(*ev)
	}
}

// ---- liveness state machine ----

// signalLocked wakes every goroutine waiting for a state or inflight
// change. Callers hold c.mu.
func (c *Coordinator) signalLocked() {
	close(c.changed)
	c.changed = make(chan struct{})
}

// setStateLocked moves worker w to state s, refreshes the per-state
// gauges, and wakes waiters. Callers hold c.mu.
func (c *Coordinator) setStateLocked(w int, s workerState) {
	c.state[w] = s
	c.updateGaugesLocked()
	c.signalLocked()
}

func (c *Coordinator) updateGaugesLocked() {
	var n [len(stateNames)]int
	for _, s := range c.state {
		n[s]++
	}
	for s, name := range stateNames {
		c.reg.Gauge("zsky_dist_workers", obs.L("state", name)).Set(float64(n[s]))
	}
}

// markSuspect demotes a live worker after a transport failure. With
// resurrection disabled the worker is immediately dead.
func (c *Coordinator) markSuspect(w int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.state[w] != wsLive {
		return
	}
	if c.pol.redial > 0 {
		c.setStateLocked(w, wsSuspect)
	} else {
		c.setStateLocked(w, wsDead)
	}
}

// allDownLocked reports whether every worker is confirmed dead (no
// live, suspect, or resurrecting worker can serve or come back before
// the next sweep). Callers hold c.mu.
func (c *Coordinator) allDownLocked() bool {
	for _, s := range c.state {
		if s != wsDead {
			return false
		}
	}
	return true
}

// acquire blocks until a live worker with no in-flight task is
// available and reserves it. It fails with ErrClusterDown once every
// worker is confirmed dead, or with ctx's error.
func (c *Coordinator) acquire(ctx context.Context) (int, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return -1, errCoordinatorClosed
		}
		for w := range c.addrs {
			if c.state[w] == wsLive && c.inflight[w] == 0 {
				c.inflight[w]++
				c.mu.Unlock()
				return w, nil
			}
		}
		if c.allDownLocked() {
			c.mu.Unlock()
			return -1, ErrClusterDown
		}
		ch := c.changed
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return -1, ctx.Err()
		case <-ch:
		}
	}
}

// release returns a worker reserved by acquire to the rotation.
func (c *Coordinator) release(w int) {
	c.mu.Lock()
	if c.inflight[w] > 0 {
		c.inflight[w]--
	}
	c.signalLocked()
	c.mu.Unlock()
}

// pickLiveWait returns a live worker, preferring pref, waiting out
// windows where every worker is suspect/resurrecting. It fails with
// ErrClusterDown once all workers are confirmed dead.
func (c *Coordinator) pickLiveWait(ctx context.Context, pref int) (int, error) {
	n := len(c.addrs)
	if pref < 0 || pref >= n {
		pref = 0
	}
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return -1, errCoordinatorClosed
		}
		for i := 0; i < n; i++ {
			w := (pref + i) % n
			if c.state[w] == wsLive {
				c.mu.Unlock()
				return w, nil
			}
		}
		if c.allDownLocked() {
			c.mu.Unlock()
			return -1, ErrClusterDown
		}
		ch := c.changed
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return -1, ctx.Err()
		case <-ch:
		}
	}
}

// pickLiveExcept returns a live worker other than skip for hedging,
// preferring an idle one; ok is false when none exists right now. A
// non-nil pool restricts candidates to those worker indices (shard
// hedges must stay inside the owning group).
func (c *Coordinator) pickLiveExcept(skip int, pool []int) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	candidates := pool
	if candidates == nil {
		candidates = make([]int, len(c.addrs))
		for w := range c.addrs {
			candidates[w] = w
		}
	}
	pick, found := -1, false
	for _, w := range candidates {
		if w == skip || c.state[w] != wsLive {
			continue
		}
		if c.inflight[w] == 0 {
			return w, true
		}
		if !found {
			pick, found = w, true
		}
	}
	return pick, found
}

// client returns worker w's current connection (nil while severed).
func (c *Coordinator) client(w int) *transport.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clients[w]
}

// ---- resurrection ----

// resurrector periodically sweeps suspect/dead workers: re-dial,
// ping, re-broadcast the current rule, readmit.
func (c *Coordinator) resurrector() {
	defer c.wg.Done()
	t := time.NewTicker(c.pol.redial)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		c.sweep()
	}
}

// sweep attempts one resurrection round over every suspect/dead
// worker, concurrently, and waits for the round to settle.
func (c *Coordinator) sweep() {
	c.mu.Lock()
	var targets []int
	for w := range c.addrs {
		if c.state[w] == wsSuspect || c.state[w] == wsDead {
			c.setStateLocked(w, wsResurrecting)
			targets = append(targets, w)
		}
	}
	c.mu.Unlock()
	var wg sync.WaitGroup
	for _, w := range targets {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c.resurrect(w)
		}(w)
	}
	wg.Wait()
}

// resurrect tries to bring worker w back: dial with timeout, ping,
// re-broadcast the current rule, then swap the connection in and mark
// the worker live. Any failure confirms it dead until the next sweep.
func (c *Coordinator) resurrect(w int) {
	fail := func() {
		c.mu.Lock()
		if !c.closed {
			c.setStateLocked(w, wsDead)
		}
		c.mu.Unlock()
	}
	conn, err := net.DialTimeout("tcp", c.addrs[w], c.pol.dialTimeout)
	if err != nil {
		fail()
		return
	}
	cl := transport.NewClient(countConn{Conn: conn, sent: &c.wire[w].sent, recv: &c.wire[w].recv})
	var pong PingReply
	if err := c.callDirect(cl, "Worker.Ping", PingArgs{}, &pong); err != nil {
		cl.Close()
		fail()
		return
	}
	c.mu.Lock()
	blob := c.lastRule
	c.mu.Unlock()
	if blob != nil {
		// Readmitting a worker without the query's rule would fail its
		// first task (a restarted process has an empty rule cache), so
		// the rule rides along with resurrection.
		var ack LoadRuleReply
		if err := c.callDirect(cl, "Worker.LoadRule", LoadRuleArgs{Rule: *blob}, &ack); err != nil {
			cl.Close()
			fail()
			return
		}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cl.Close()
		return
	}
	old := c.clients[w]
	c.clients[w] = cl
	c.setStateLocked(w, wsLive)
	c.reg.Counter("zsky_dist_resurrections_total", obs.L("worker", c.addrs[w])).Add(1)
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

// callDirect invokes one method on a specific client with the
// per-attempt deadline but no retry/failover — the building block for
// startup pings and resurrection probes.
func (c *Coordinator) callDirect(cl *transport.Client, method string, args transport.Marshaler, reply transport.Unmarshaler) error {
	id, err := methodID(method)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if c.pol.rpcTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.pol.rpcTimeout)
		defer cancel()
	}
	_, _, err = cl.Call(ctx, id, args, reply)
	if errors.Is(err, context.DeadlineExceeded) {
		return errAttemptTimeout
	}
	return err
}

// ---- the retrying, hedging call layer ----

// callOpts tunes one coordinator call.
type callOpts struct {
	// preferred is the worker the scheduler reserved for this task; a
	// retry rotates onward from it.
	preferred int
	// hedge allows a speculative duplicate on a second worker after
	// the policy's hedge delay (reduce/merge tasks only: they are
	// idempotent and few, so duplicates are cheap insurance).
	hedge bool
	// pol, when non-nil, overrides the coordinator's policy for this
	// call — how the sharded tier applies per-shard timeout/retry/hedge
	// settings without forking the call layer.
	pol *policy
	// pool, when non-nil, restricts hedge legs to these worker indices
	// — shard calls must hedge inside the owning group, since only its
	// members hold the data.
	pool []int
	// sp, when non-nil, collects attempt/hedge attributes.
	sp *obs.Span
	// ev, when non-nil, collects attempt/hedge detail on the RPC's
	// event record.
	ev *obs.Event
}

// pickPolicy resolves a call's effective policy.
func (c *Coordinator) pickPolicy(opt callOpts) *policy {
	if opt.pol != nil {
		return opt.pol
	}
	return &c.pol
}

// call invokes one worker method under the full policy: per-attempt
// deadline, classification, bounded retries with jittered backoff,
// failover to live workers, optional hedging, and rule re-broadcast
// when a worker answers "rule not loaded". It returns the index of the
// worker that served the call.
func (c *Coordinator) call(ctx context.Context, method string, args transport.Marshaler, reply transport.Unmarshaler, opt callOpts) (int, error) {
	var lastErr error
	pol := c.pickPolicy(opt)
	pref := opt.preferred
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return -1, err
		}
		w, err := c.pickLiveWait(ctx, pref)
		if err != nil {
			if errors.Is(err, ErrClusterDown) {
				if lastErr != nil {
					return -1, fmt.Errorf("dist: %s: %v: %w", method, lastErr, ErrClusterDown)
				}
				return -1, fmt.Errorf("dist: %s: %w", method, ErrClusterDown)
			}
			return -1, err
		}
		served, err := c.attempt(ctx, method, args, reply, w, opt)
		opt.ev.SetAttempts(attempt + 1)
		if err == nil {
			if attempt > 0 {
				opt.sp.SetAttr("attempts", attempt+1)
			}
			return served, nil
		}
		lastErr = err
		class := classify(err)
		c.reg.Counter("zsky_dist_rpc_errors_total",
			obs.L("method", method), obs.L("class", className(class))).Add(1)
		if class == classFatal || ctx.Err() != nil {
			return served, err
		}
		if class == classRuleMissing && served >= 0 {
			// The worker is alive but lost the rule (e.g. a process
			// restarted at the same address between sweeps): reinstall
			// and let the retry land on it.
			if rerr := c.resendRule(ctx, served); rerr != nil {
				c.markSuspect(served)
			}
		}
		if attempt >= pol.retries {
			return served, fmt.Errorf("dist: %s: attempts exhausted: %w", method, lastErr)
		}
		c.reg.Counter("zsky_dist_retries_total", obs.L("method", method)).Add(1)
		sleep(ctx, c.bo.delay(pol, attempt))
		if served >= 0 {
			pref = (served + 1) % len(c.addrs)
		}
	}
}

func className(class errClass) string {
	switch class {
	case classRetryable:
		return "retryable"
	case classRuleMissing:
		return "rule-missing"
	case classShardMoved:
		return "shard-moved"
	default:
		return "fatal"
	}
}

// legRes is one attempt leg's outcome. call carries the finished
// transport call so the winner's exact frame sizes reach the span and
// event.
type legRes struct {
	w    int
	rv   transport.Unmarshaler
	call *transport.Call
	err  error
}

// attempt runs one (possibly hedged) attempt of a call. Each leg gets
// a fresh reply value so an abandoned straggler reply can never race a
// retry writing the caller's reply; the winner is copied out, along
// with its measured request/response frame sizes.
func (c *Coordinator) attempt(ctx context.Context, method string, args transport.Marshaler, reply transport.Unmarshaler, primary int, opt callOpts) (int, error) {
	id, err := methodID(method)
	if err != nil {
		return -1, err
	}
	pol := c.pickPolicy(opt)
	resCh := make(chan legRes, 2)
	leg := func(w int) {
		cl := c.client(w)
		if cl == nil {
			resCh <- legRes{w: w, err: errNotConnected}
			return
		}
		rv := newReplyLike(reply)
		call := cl.Go(id, args, rv, make(chan *transport.Call, 1))
		var timeout <-chan time.Time
		if pol.rpcTimeout > 0 {
			t := time.NewTimer(pol.rpcTimeout)
			defer t.Stop()
			timeout = t.C
		}
		select {
		case done := <-call.Done:
			resCh <- legRes{w: w, rv: rv, call: done, err: done.Err}
		case <-timeout:
			resCh <- legRes{w: w, err: errAttemptTimeout}
		case <-ctx.Done():
			resCh <- legRes{w: w, err: ctx.Err()}
		}
	}
	go leg(primary)
	legs := 1
	var hedgeC <-chan time.Time
	if opt.hedge && pol.hedge > 0 {
		t := time.NewTimer(pol.hedge)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	lastW := primary
	for {
		select {
		case r := <-resCh:
			if r.err == nil {
				copyReply(reply, r.rv)
				if r.call != nil {
					opt.sp.SetAttr("req_bytes", r.call.ReqBytes)
					opt.sp.SetAttr("resp_bytes", r.call.RespBytes)
					opt.ev.SetWire(r.call.ReqBytes, r.call.RespBytes)
				}
				if r.w != primary {
					c.reg.Counter("zsky_dist_hedge_wins_total", obs.L("method", method)).Add(1)
					opt.sp.SetAttr("hedge_win", c.addrs[r.w])
				}
				return r.w, nil
			}
			if classify(r.err) == classRetryable {
				c.markSuspect(r.w)
			}
			lastErr, lastW = r.err, r.w
			if legs--; legs == 0 {
				return lastW, lastErr
			}
		case <-hedgeC:
			hedgeC = nil
			if w2, ok := c.pickLiveExcept(primary, opt.pool); ok {
				c.reg.Counter("zsky_dist_hedges_total", obs.L("method", method)).Add(1)
				opt.sp.SetAttr("hedged", c.addrs[w2])
				opt.ev.SetHedged()
				go leg(w2)
				legs++
			}
		case <-ctx.Done():
			return lastW, ctx.Err()
		}
	}
}

// newReplyLike allocates a fresh zero value of reply's pointee type.
// Reply values are always pointers to wire structs, so the fresh value
// satisfies the same Unmarshaler interface.
func newReplyLike(reply transport.Unmarshaler) transport.Unmarshaler {
	return reflect.New(reflect.TypeOf(reply).Elem()).Interface().(transport.Unmarshaler)
}

// copyReply copies the winning leg's reply into the caller's.
func copyReply(dst, src transport.Unmarshaler) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}

// resendRule reinstalls the current rule on one worker.
func (c *Coordinator) resendRule(ctx context.Context, w int) error {
	c.mu.Lock()
	blob := c.lastRule
	c.mu.Unlock()
	if blob == nil {
		return fmt.Errorf("dist: no rule to re-broadcast")
	}
	var ack LoadRuleReply
	_, err := c.attempt(ctx, "Worker.LoadRule", LoadRuleArgs{Rule: *blob}, &ack, w, callOpts{})
	return err
}

// ---- executor plumbing ----

// rpcExec is the plan.Executor that fans tasks out over the
// coordinator's worker connections, with failover. One rpcExec serves
// one query: Broadcast assigns the query's rule ID.
type rpcExec struct {
	c      *Coordinator
	ruleID uint64
}

// Broadcast serializes the rule and installs it on every live worker
// (the distributed-cache step).
func (ex *rpcExec) Broadcast(ctx context.Context, r *plan.Rule) error {
	rd, err := r.Data()
	if err != nil {
		return err
	}
	ex.ruleID = ex.c.salt<<32 | ruleCounter.Add(1)
	return ex.c.broadcast(ctx, RuleBlob{ID: ex.ruleID, Data: *rd})
}

// RunMaps implements plan.Executor via Worker.MapChunk RPCs.
func (ex *rpcExec) RunMaps(ctx context.Context, _ *plan.Rule, chunks []point.Block, _ *metrics.Tally) ([]plan.MapOutput, error) {
	outs := make([]plan.MapOutput, len(chunks))
	err := ex.c.forEach(ctx, len(chunks), func(i, worker int) error {
		sp, ev, done := ex.c.startRPC(ctx, "Worker.MapChunk")
		var reply MapReply
		served, err := ex.c.call(ctx, "Worker.MapChunk",
			MapArgs{RuleID: ex.ruleID, Block: chunks[i]}, &reply,
			callOpts{preferred: worker, sp: sp, ev: ev})
		if err != nil {
			done(served, err)
			return err
		}
		done(served, nil)
		outs[i] = plan.MapOutput{Groups: reply.Groups, Filtered: reply.Filtered}
		return nil
	})
	return outs, err
}

// RunReduces implements plan.Executor via Worker.ReduceGroup RPCs.
func (ex *rpcExec) RunReduces(ctx context.Context, _ *plan.Rule, groups []plan.Group, _ *metrics.Tally) ([]plan.Group, error) {
	outs := make([]plan.Group, len(groups))
	err := ex.c.forEach(ctx, len(groups), func(i, worker int) error {
		sp, ev, done := ex.c.startRPC(ctx, "Worker.ReduceGroup")
		var reply ReduceReply
		served, err := ex.c.call(ctx, "Worker.ReduceGroup",
			ReduceArgs{RuleID: ex.ruleID, Group: groups[i]}, &reply,
			callOpts{preferred: worker, hedge: true, sp: sp, ev: ev})
		if err != nil {
			done(served, err)
			return err
		}
		done(served, nil)
		outs[i] = reply.Candidates
		outs[i].Gid = groups[i].Gid
		return nil
	})
	return outs, err
}

// RunMerges implements plan.Executor via Worker.MergeGroups RPCs. A
// single task runs on one worker — the paper's lone merge reducer;
// multiple tasks (tree-merge rounds) fan out across the fleet. Merge
// tasks are the classic straggler magnet (the last round is one call
// on one worker), so they hedge when the policy allows.
func (ex *rpcExec) RunMerges(ctx context.Context, _ *plan.Rule, tasks [][]plan.Group, _ *metrics.Tally) ([]plan.Group, error) {
	outs := make([]plan.Group, len(tasks))
	mergeOne := func(i, worker int) error {
		sp, ev, done := ex.c.startRPC(ctx, "Worker.MergeGroups")
		var merged MergeReply
		served, err := ex.c.call(ctx, "Worker.MergeGroups",
			MergeArgs{RuleID: ex.ruleID, Groups: tasks[i]}, &merged,
			callOpts{preferred: worker, hedge: true, sp: sp, ev: ev})
		if err != nil {
			done(served, err)
			return err
		}
		done(served, nil)
		outs[i] = merged.Skyline
		return nil
	}
	if len(tasks) == 1 {
		return outs, mergeOne(0, 0)
	}
	return outs, ex.c.forEach(ctx, len(tasks), mergeOne)
}

// broadcast installs the rule on every live worker and records it as
// the coordinator's current rule, so resurrection can re-install it.
// The broadcast succeeds once at least one worker holds the rule;
// workers that miss it are suspected and receive it when they rejoin.
// With no worker live, it waits out resurrection and fails with
// ErrClusterDown only when every worker is confirmed dead.
func (c *Coordinator) broadcast(ctx context.Context, blob RuleBlob) error {
	c.mu.Lock()
	c.lastRule = &blob
	c.mu.Unlock()
	for round := 0; ; round++ {
		c.mu.Lock()
		var targets []int
		for w := range c.addrs {
			if c.state[w] == wsLive {
				targets = append(targets, w)
			}
		}
		c.mu.Unlock()
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			okCount  int
			fatalErr error
		)
		for _, w := range targets {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sp, ev, done := c.startRPC(ctx, "Worker.LoadRule")
				// Broadcast offers are single attempts (a worker that
				// misses the rule gets it on resurrection instead).
				ev.SetAttempts(1)
				var ack LoadRuleReply
				served, err := c.attempt(ctx, "Worker.LoadRule",
					LoadRuleArgs{Rule: blob}, &ack, w, callOpts{sp: sp, ev: ev})
				done(served, err)
				mu.Lock()
				defer mu.Unlock()
				if err == nil {
					okCount++
				} else if classify(err) == classFatal && fatalErr == nil {
					fatalErr = err
				}
			}(w)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return err
		}
		if fatalErr != nil {
			return fmt.Errorf("dist: rule broadcast rejected: %w", fatalErr)
		}
		if okCount > 0 {
			return nil
		}
		// Nobody took the rule: wait for a liveness change (a
		// resurrected worker already carries lastRule) and re-offer.
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return errCoordinatorClosed
		}
		if c.allDownLocked() {
			c.mu.Unlock()
			return fmt.Errorf("dist: rule broadcast: %w", ErrClusterDown)
		}
		ch := c.changed
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// forEach fans n tasks out over the live workers with bounded
// concurrency (one in-flight task per live worker) and failover.
// Admission tracks the liveness state machine: resurrected workers
// rejoin the rotation mid-phase, and admission only fails once every
// worker is confirmed dead.
func (c *Coordinator) forEach(ctx context.Context, n int, f func(task, worker int) error) error {
	if n == 0 {
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for i := 0; i < n; i++ {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		worker, err := c.acquire(ctx)
		if err != nil {
			fail(err)
			break
		}
		wg.Add(1)
		go func(i, worker int) {
			defer wg.Done()
			defer c.release(worker)
			if err := f(i, worker); err != nil {
				fail(fmt.Errorf("dist: task %d: %w", i, err))
			}
		}(i, worker)
	}
	wg.Wait()
	return firstErr
}
