package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"strings"

	"zskyline/internal/plan"
)

// ---- method registry ----
//
// The framed transport addresses calls by numeric method id; everything
// above it — metric labels, fault-plan specs, event routes, error
// messages — keeps the stable "Worker.X" names. This table is the only
// place the two meet.

const (
	mPing uint16 = iota + 1
	mLoadRule
	mMapChunk
	mReduceGroup
	mMergeGroups
	mStoreShard
	mShardSkyline
	mPullShard
	mStageShard
	mCommitShard
	mDropStaged
	mDropShard
	mShardStats
)

var methodNames = map[uint16]string{
	mPing:         "Worker.Ping",
	mLoadRule:     "Worker.LoadRule",
	mMapChunk:     "Worker.MapChunk",
	mReduceGroup:  "Worker.ReduceGroup",
	mMergeGroups:  "Worker.MergeGroups",
	mStoreShard:   "Worker.StoreShard",
	mShardSkyline: "Worker.ShardSkyline",
	mPullShard:    "Worker.PullShard",
	mStageShard:   "Worker.StageShard",
	mCommitShard:  "Worker.CommitShard",
	mDropStaged:   "Worker.DropStaged",
	mDropShard:    "Worker.DropShard",
	mShardStats:   "Worker.ShardStats",
}

var methodIDs = func() map[string]uint16 {
	m := make(map[string]uint16, len(methodNames))
	for id, name := range methodNames {
		m[name] = id
	}
	return m
}()

// methodID resolves a "Worker.X" name to its wire id.
func methodID(name string) (uint16, error) {
	id, ok := methodIDs[name]
	if !ok {
		return 0, fmt.Errorf("%w %q", errUnknownMethod, name)
	}
	return id, nil
}

// errUnknownMethod marks a call to a method name outside the registry —
// a caller bug, classified fatal so it is never retried.
var errUnknownMethod = errors.New("dist: unknown rpc method")

// methodName resolves a wire id back to its "Worker.X" name.
func methodName(id uint16) string {
	if name, ok := methodNames[id]; ok {
		return name
	}
	return fmt.Sprintf("Worker.#%d", id)
}

// shortMethodName strips the service prefix — the form worker metric
// labels have always used.
func shortMethodName(id uint16) string {
	return strings.TrimPrefix(methodName(id), "Worker.")
}

// ---- payload encoding primitives ----
//
// Wire types encode to flat little-endian frames by appending onto the
// transport's shared scratch buffer: fixed-width integers, 1-byte
// bools, u32-length-prefixed byte strings, and u32-count-prefixed
// uint64 slices (count 0 decodes to nil — the "no bound" marker
// ShardSkyArgs leans on). Block and ZCol travel as their existing
// binary frames, length-prefixed when they are not the payload's tail.

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendI64(dst []byte, v int64) []byte { return appendU64(dst, uint64(v)) }

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendBytes(dst, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

func appendU64s(dst []byte, v []uint64) []byte {
	dst = appendU32(dst, uint32(len(v)))
	for _, w := range v {
		dst = appendU64(dst, w)
	}
	return dst
}

// appendBlockFrame appends a length-prefixed point.Block frame.
func appendBlockFrame(dst []byte, b interface {
	AppendBinary(dst []byte) ([]byte, error)
}) ([]byte, error) {
	off := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst, err := b.AppendBinary(dst)
	if err != nil {
		return dst, err
	}
	binary.LittleEndian.PutUint32(dst[off:off+4], uint32(len(dst)-off-4))
	return dst, nil
}

// appendGroup appends one plan.Group: gid, then its length-prefixed
// block and Z-column frames.
func appendGroup(dst []byte, g plan.Group) ([]byte, error) {
	dst = appendI64(dst, int64(g.Gid))
	dst, err := appendBlockFrame(dst, g.Block)
	if err != nil {
		return dst, err
	}
	return appendBlockFrame(dst, g.ZCol)
}

// wireReader is a cursor over one payload frame. The first decode
// failure sticks; callers check done() once at the end instead of
// threading errors through every field read.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.fail("dist: payload truncated: want %d bytes, have %d", n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *wireReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *wireReader) i64() int64 { return int64(r.u64()) }

func (r *wireReader) bool() bool {
	b := r.take(1)
	return b != nil && b[0] != 0
}

// bytes reads a u32-length-prefixed byte string, copied out of the
// frame (decode buffers are reused). Length 0 decodes to nil.
func (r *wireReader) bytes() []byte {
	n := int(r.u32())
	b := r.take(n)
	if b == nil || n == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

// u64s reads a u32-count-prefixed uint64 slice; count 0 decodes to nil.
func (r *wireReader) u64s() []uint64 {
	n := int(r.u32())
	b := r.take(n * 8)
	if b == nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

// group reads one appendGroup frame.
func (r *wireReader) group() plan.Group {
	var g plan.Group
	g.Gid = int(r.i64())
	if b := r.take(int(r.u32())); b != nil {
		if err := g.Block.UnmarshalBinary(b); err != nil {
			r.fail("dist: group block frame: %v", err)
		}
	}
	if b := r.take(int(r.u32())); b != nil {
		if err := g.ZCol.UnmarshalBinary(b); err != nil {
			r.fail("dist: group zcol frame: %v", err)
		}
	}
	return g
}

// rest consumes the remainder of the payload — for types whose final
// field is a single self-delimiting frame.
func (r *wireReader) rest() []byte {
	out := r.b
	r.b = nil
	return out
}

// done returns the sticky decode error, or complains about trailing
// bytes a correct encoder would never leave.
func (r *wireReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("dist: payload has %d trailing bytes", len(r.b))
	}
	return nil
}

// gobAppend is the escape hatch for the few small control structs whose
// shape (maps, nested descriptors) is not worth a hand-rolled frame:
// the rule broadcast and the stats inventory. Reflection cost there is
// irrelevant — they are rare, tiny, off the data plane.
func gobAppend(dst []byte, v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return dst, err
	}
	return append(dst, buf.Bytes()...), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// ---- per-type encoders ----
//
// AppendTo/DecodeFrom pair each wire type with its payload frame; the
// transport client and server call them against the shared scratch
// arena. Field order is the wire contract — changing it is a protocol
// break.

// AppendTo encodes an empty payload.
func (PingArgs) AppendTo(dst []byte) ([]byte, error) { return dst, nil }

// DecodeFrom checks the payload is empty.
func (*PingArgs) DecodeFrom(data []byte) error {
	if len(data) != 0 {
		return fmt.Errorf("dist: ping args carry %d bytes", len(data))
	}
	return nil
}

// AppendTo encodes the worker address as the raw payload.
func (p PingReply) AppendTo(dst []byte) ([]byte, error) {
	return append(dst, p.Addr...), nil
}

// DecodeFrom decodes the worker address.
func (p *PingReply) DecodeFrom(data []byte) error {
	p.Addr = string(data)
	return nil
}

// AppendTo encodes the rule broadcast via gob (the control-struct
// escape hatch: RuleData holds maps and a dominance descriptor, and a
// broadcast happens once per query, not per chunk). The embedded
// sample-skyline Block still gob-encodes as its flat binary frame.
func (a LoadRuleArgs) AppendTo(dst []byte) ([]byte, error) { return gobAppend(dst, &a) }

// DecodeFrom decodes the rule broadcast.
func (a *LoadRuleArgs) DecodeFrom(data []byte) error { return gobDecode(data, a) }

// AppendTo encodes the cached flag.
func (a LoadRuleReply) AppendTo(dst []byte) ([]byte, error) {
	return appendBool(dst, a.Cached), nil
}

// DecodeFrom decodes the cached flag.
func (a *LoadRuleReply) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.Cached = r.bool()
	return r.done()
}

// AppendTo encodes the rule ID and the chunk's block frame (the
// payload's tail, so no length prefix).
func (a MapArgs) AppendTo(dst []byte) ([]byte, error) {
	dst = appendU64(dst, a.RuleID)
	return a.Block.AppendBinary(dst)
}

// DecodeFrom decodes a map chunk.
func (a *MapArgs) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.RuleID = r.u64()
	rest := r.rest()
	if err := r.done(); err != nil {
		return err
	}
	return a.Block.UnmarshalBinary(rest)
}

// AppendTo encodes the filtered count and the routed groups.
func (a MapReply) AppendTo(dst []byte) ([]byte, error) {
	dst = appendI64(dst, a.Filtered)
	dst = appendU32(dst, uint32(len(a.Groups)))
	var err error
	for _, g := range a.Groups {
		if dst, err = appendGroup(dst, g); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// DecodeFrom decodes a map reply.
func (a *MapReply) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.Filtered = r.i64()
	n := int(r.u32())
	a.Groups = nil
	for i := 0; i < n && r.err == nil; i++ {
		a.Groups = append(a.Groups, r.group())
	}
	return r.done()
}

// AppendTo encodes the rule ID and the group to reduce.
func (a ReduceArgs) AppendTo(dst []byte) ([]byte, error) {
	dst = appendU64(dst, a.RuleID)
	return appendGroup(dst, a.Group)
}

// DecodeFrom decodes reduce arguments.
func (a *ReduceArgs) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.RuleID = r.u64()
	a.Group = r.group()
	return r.done()
}

// AppendTo encodes the reduced candidates.
func (a ReduceReply) AppendTo(dst []byte) ([]byte, error) {
	return appendGroup(dst, a.Candidates)
}

// DecodeFrom decodes a reduce reply.
func (a *ReduceReply) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.Candidates = r.group()
	return r.done()
}

// AppendTo encodes the rule ID and the merge task's groups.
func (a MergeArgs) AppendTo(dst []byte) ([]byte, error) {
	dst = appendU64(dst, a.RuleID)
	dst = appendU32(dst, uint32(len(a.Groups)))
	var err error
	for _, g := range a.Groups {
		if dst, err = appendGroup(dst, g); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// DecodeFrom decodes merge arguments.
func (a *MergeArgs) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.RuleID = r.u64()
	n := int(r.u32())
	a.Groups = nil
	for i := 0; i < n && r.err == nil; i++ {
		a.Groups = append(a.Groups, r.group())
	}
	return r.done()
}

// AppendTo encodes the merged skyline.
func (a MergeReply) AppendTo(dst []byte) ([]byte, error) {
	return appendGroup(dst, a.Skyline)
}

// DecodeFrom decodes a merge reply.
func (a *MergeReply) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.Skyline = r.group()
	return r.done()
}

// AppendTo encodes a shard store batch; the block/Z frames are shipped
// verbatim, length-prefixed.
func (a StoreShardArgs) AppendTo(dst []byte) ([]byte, error) {
	dst = appendU64(dst, a.RuleID)
	dst = appendU64(dst, a.MapVersion)
	dst = appendI64(dst, int64(a.ShardID))
	dst = appendBytes(dst, a.BlockFrame)
	return appendBytes(dst, a.ZFrame), nil
}

// DecodeFrom decodes a shard store batch.
func (a *StoreShardArgs) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.RuleID = r.u64()
	a.MapVersion = r.u64()
	a.ShardID = int(r.i64())
	a.BlockFrame = r.bytes()
	a.ZFrame = r.bytes()
	return r.done()
}

// AppendTo encodes the replica's resident row count.
func (a StoreShardReply) AppendTo(dst []byte) ([]byte, error) {
	return appendI64(dst, int64(a.Rows)), nil
}

// DecodeFrom decodes a store acknowledgment.
func (a *StoreShardReply) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.Rows = int(r.i64())
	return r.done()
}

// AppendTo encodes a shard skyline request; empty bounds encode as
// count 0 and decode back to nil ("the curve's ends").
func (a ShardSkyArgs) AppendTo(dst []byte) ([]byte, error) {
	dst = appendU64(dst, a.RuleID)
	dst = appendU64(dst, a.MapVersion)
	dst = appendI64(dst, int64(a.ShardID))
	dst = appendU64s(dst, a.Lo)
	return appendU64s(dst, a.Hi), nil
}

// DecodeFrom decodes a shard skyline request.
func (a *ShardSkyArgs) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.RuleID = r.u64()
	a.MapVersion = r.u64()
	a.ShardID = int(r.i64())
	a.Lo = r.u64s()
	a.Hi = r.u64s()
	return r.done()
}

// AppendTo encodes the shard-local skyline.
func (a ShardSkyReply) AppendTo(dst []byte) ([]byte, error) {
	return appendGroup(dst, a.Group)
}

// DecodeFrom decodes a shard skyline reply.
func (a *ShardSkyReply) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.Group = r.group()
	return r.done()
}

// AppendTo encodes a pull request.
func (a PullShardArgs) AppendTo(dst []byte) ([]byte, error) {
	dst = appendI64(dst, int64(a.ShardID))
	dst = appendI64(dst, int64(a.Cursor))
	return appendI64(dst, int64(a.MaxRows)), nil
}

// DecodeFrom decodes a pull request.
func (a *PullShardArgs) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.ShardID = int(r.i64())
	a.Cursor = int(r.i64())
	a.MaxRows = int(r.i64())
	return r.done()
}

// AppendTo encodes one pulled batch.
func (a PullShardReply) AppendTo(dst []byte) ([]byte, error) {
	dst = appendI64(dst, int64(a.Rows))
	dst = appendI64(dst, int64(a.Next))
	dst = appendBool(dst, a.Done)
	dst = appendBytes(dst, a.BlockFrame)
	return appendBytes(dst, a.ZFrame), nil
}

// DecodeFrom decodes one pulled batch.
func (a *PullShardReply) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.Rows = int(r.i64())
	a.Next = int(r.i64())
	a.Done = r.bool()
	a.BlockFrame = r.bytes()
	a.ZFrame = r.bytes()
	return r.done()
}

// AppendTo encodes a staging append.
func (a StageShardArgs) AppendTo(dst []byte) ([]byte, error) {
	dst = appendI64(dst, int64(a.ShardID))
	dst = appendU64(dst, a.Epoch)
	dst = appendBytes(dst, a.BlockFrame)
	return appendBytes(dst, a.ZFrame), nil
}

// DecodeFrom decodes a staging append.
func (a *StageShardArgs) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.ShardID = int(r.i64())
	a.Epoch = r.u64()
	a.BlockFrame = r.bytes()
	a.ZFrame = r.bytes()
	return r.done()
}

// AppendTo encodes the staged row count.
func (a StageShardReply) AppendTo(dst []byte) ([]byte, error) {
	return appendI64(dst, int64(a.Rows)), nil
}

// DecodeFrom decodes a staging acknowledgment.
func (a *StageShardReply) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.Rows = int(r.i64())
	return r.done()
}

// AppendTo encodes a commit request.
func (a CommitShardArgs) AppendTo(dst []byte) ([]byte, error) {
	dst = appendI64(dst, int64(a.ShardID))
	dst = appendU64(dst, a.Epoch)
	return appendU64(dst, a.MapVersion), nil
}

// DecodeFrom decodes a commit request.
func (a *CommitShardArgs) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.ShardID = int(r.i64())
	a.Epoch = r.u64()
	a.MapVersion = r.u64()
	return r.done()
}

// AppendTo encodes the committed row count.
func (a CommitShardReply) AppendTo(dst []byte) ([]byte, error) {
	return appendI64(dst, int64(a.Rows)), nil
}

// DecodeFrom decodes a commit acknowledgment.
func (a *CommitShardReply) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.Rows = int(r.i64())
	return r.done()
}

// AppendTo encodes a stage discard.
func (a DropStagedArgs) AppendTo(dst []byte) ([]byte, error) {
	dst = appendI64(dst, int64(a.ShardID))
	return appendU64(dst, a.Epoch), nil
}

// DecodeFrom decodes a stage discard.
func (a *DropStagedArgs) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.ShardID = int(r.i64())
	a.Epoch = r.u64()
	return r.done()
}

// AppendTo encodes an empty payload.
func (DropStagedReply) AppendTo(dst []byte) ([]byte, error) { return dst, nil }

// DecodeFrom checks the payload is empty.
func (*DropStagedReply) DecodeFrom(data []byte) error {
	if len(data) != 0 {
		return fmt.Errorf("dist: drop-staged reply carries %d bytes", len(data))
	}
	return nil
}

// AppendTo encodes a shard drop.
func (a DropShardArgs) AppendTo(dst []byte) ([]byte, error) {
	dst = appendI64(dst, int64(a.ShardID))
	return appendU64(dst, a.MapVersion), nil
}

// DecodeFrom decodes a shard drop.
func (a *DropShardArgs) DecodeFrom(data []byte) error {
	r := wireReader{b: data}
	a.ShardID = int(r.i64())
	a.MapVersion = r.u64()
	return r.done()
}

// AppendTo encodes an empty payload.
func (DropShardReply) AppendTo(dst []byte) ([]byte, error) { return dst, nil }

// DecodeFrom checks the payload is empty.
func (*DropShardReply) DecodeFrom(data []byte) error {
	if len(data) != 0 {
		return fmt.Errorf("dist: drop-shard reply carries %d bytes", len(data))
	}
	return nil
}

// AppendTo encodes an empty payload.
func (ShardStatsArgs) AppendTo(dst []byte) ([]byte, error) { return dst, nil }

// DecodeFrom checks the payload is empty.
func (*ShardStatsArgs) DecodeFrom(data []byte) error {
	if len(data) != 0 {
		return fmt.Errorf("dist: shard-stats args carry %d bytes", len(data))
	}
	return nil
}

// AppendTo encodes the stats inventory via gob (control-struct escape
// hatch: it is a map keyed by shard ID, read by admin tooling, never on
// the data plane).
func (a ShardStatsReply) AppendTo(dst []byte) ([]byte, error) { return gobAppend(dst, &a) }

// DecodeFrom decodes the stats inventory.
func (a *ShardStatsReply) DecodeFrom(data []byte) error { return gobDecode(data, a) }
