package dist

import (
	"fmt"

	"zskyline/internal/obs"
	"zskyline/internal/plan"
	"zskyline/internal/point"
	"zskyline/internal/zorder"
)

// residentShard is one shard's data on one replica: the ordered list
// of append batches (each a block + its Z-address column) received via
// StoreShard, or — after a handoff commit — via the staging area.
// Replicas of one shard receive the same ordered StoreShard sequence
// (the coordinator serializes inserts per shard), so their group lists
// are identical, which is what makes PullShard cursors resumable
// across replicas.
type residentShard struct {
	groups []plan.Group
	rows   int
}

// stageKey identifies one handoff attempt's staging area.
type stageKey struct {
	shard int
	epoch uint64
}

// installShardMap folds a broadcast shard-map version into the
// worker's installed version (monotone: stale rebroadcasts are
// ignored).
func (w *Worker) installShardMap(version uint64) {
	w.smu.Lock()
	if version > w.shardVer {
		w.shardVer = version
	}
	w.smu.Unlock()
}

// decodeShardFrames rebuilds one append batch from its wire frames.
// Nil frames decode to an empty batch (residency seeding). A non-empty
// block must arrive with a column of exactly one address per row — the
// shard tier's queries and handoffs both lean on that invariant.
func decodeShardFrames(shardID int, blockFrame, zFrame []byte) (plan.Group, error) {
	g := plan.Group{Gid: shardID}
	if len(blockFrame) == 0 && len(zFrame) == 0 {
		return g, nil
	}
	if err := g.Block.UnmarshalBinary(blockFrame); err != nil {
		return g, fmt.Errorf("dist: shard %d block frame: %w", shardID, err)
	}
	if err := g.ZCol.UnmarshalBinary(zFrame); err != nil {
		return g, fmt.Errorf("dist: shard %d zcol frame: %w", shardID, err)
	}
	if g.ZCol.Len() != g.Block.Len() {
		return g, fmt.Errorf("dist: shard %d frames disagree: %d addresses for %d rows",
			shardID, g.ZCol.Len(), g.Block.Len())
	}
	return g, nil
}

// setShardGauge publishes one shard's resident row count.
func (w *Worker) setShardGauge(shardID, rows int) {
	w.reg.Gauge("zsky_shard_points", obs.L("shard", fmt.Sprint(shardID))).Set(float64(rows))
}

// StoreShard appends one routed insert batch to the shard's resident
// data, creating the shard's residency on first store. The coordinator
// replicates a batch by issuing the same StoreShard to every live
// member of the owning group, under a per-shard lock, so replicas stay
// byte-identical.
func (w *Worker) StoreShard(args StoreShardArgs, reply *StoreShardReply) error {
	g, err := decodeShardFrames(args.ShardID, args.BlockFrame, args.ZFrame)
	if err != nil {
		return err
	}
	w.smu.Lock()
	if args.MapVersion > w.shardVer {
		w.shardVer = args.MapVersion
	}
	res := w.resident[args.ShardID]
	if res == nil {
		res = &residentShard{}
		w.resident[args.ShardID] = res
	}
	if w.maxResident > 0 && res.rows+g.Len() > w.maxResident {
		w.smu.Unlock()
		return fmt.Errorf("dist: shard %d on %s over resident cap: %d+%d > %d",
			args.ShardID, w.addr, res.rows, g.Len(), w.maxResident)
	}
	if g.Len() > 0 {
		res.groups = append(res.groups, g)
		res.rows += g.Len()
	}
	reply.Rows = res.rows
	w.smu.Unlock()
	w.setShardGauge(args.ShardID, reply.Rows)
	return nil
}

// ShardSkyline computes the skyline of the shard's resident data,
// restricted to [Lo, Hi) when bounds are given. The error string "not
// resident" is load-bearing: the coordinator classifies it as
// shard-moved and re-routes from a fresh map snapshot, which is how a
// query that raced a rebalance converges on the new owner.
func (w *Worker) ShardSkyline(args ShardSkyArgs, reply *ShardSkyReply) error {
	r, err := w.rule(args.RuleID)
	if err != nil {
		return err
	}
	// Fold the caller's map version forward under the write lock before
	// snapshotting the shard: shardVer must never be written under the
	// read lock below (concurrent queries would race the write).
	w.installShardMap(args.MapVersion)
	w.smu.RLock()
	res := w.resident[args.ShardID]
	var groups []plan.Group
	if res != nil {
		groups = append(groups, res.groups...)
	}
	w.smu.RUnlock()
	if res == nil {
		return fmt.Errorf("dist: shard %d not resident on %s", args.ShardID, w.addr)
	}
	if args.Lo != nil || args.Hi != nil {
		rng := zorder.Range{Lo: args.Lo, Hi: args.Hi}
		filtered := groups[:0:0]
		for _, g := range groups {
			fg := filterGroupRange(g, rng)
			if fg.Len() > 0 {
				filtered = append(filtered, fg)
			}
		}
		groups = filtered
	}
	// Concatenate the append batches into one group and run the
	// shard-local skyline kernel over it. MergeGroupsZ would be wrong
	// here: it assumes its inputs are already candidate skylines and
	// only eliminates across groups.
	out := r.LocalSkylineGroup(concatGroups(args.ShardID, groups), nil)
	out.Gid = args.ShardID
	reply.Group = out
	return nil
}

// concatGroups flattens append batches into one group, carrying the
// Z-address columns along when every batch has one.
func concatGroups(gid int, groups []plan.Group) plan.Group {
	if len(groups) == 1 {
		g := groups[0]
		g.Gid = gid
		return g
	}
	total, withCol := 0, true
	words := 0
	for _, g := range groups {
		total += g.Len()
		if g.ZCol.Len() != g.Block.Len() || g.ZCol.Words == 0 {
			withCol = false
		} else if words == 0 {
			words = g.ZCol.Words
		}
	}
	out := plan.Group{Gid: gid}
	if total == 0 {
		return out
	}
	var dims int
	for _, g := range groups {
		if g.Block.Dims > 0 {
			dims = g.Block.Dims
			break
		}
	}
	bb := point.NewBlockBuilder(dims, total)
	if withCol {
		out.ZCol = zorder.ZCol{Words: words, Data: make([]uint64, 0, total*words)}
	}
	for _, g := range groups {
		bb.AppendBlock(g.Block)
		if withCol {
			out.ZCol.AppendCol(g.ZCol)
		}
	}
	out.Block = bb.Build()
	return out
}

// filterGroupRange subsets one append batch to the rows whose
// Z-address falls inside rng, cutting the column alongside the block.
func filterGroupRange(g plan.Group, rng zorder.Range) plan.Group {
	rows := rng.FilterRows(nil, g.ZCol)
	if len(rows) == g.Block.Len() {
		return g
	}
	out := plan.Group{Gid: g.Gid, ZCol: zorder.ZCol{Words: g.ZCol.Words}}
	bb := point.NewBlockBuilder(g.Block.Dims, len(rows))
	for _, i := range rows {
		bb.Append(g.Block.Row(int(i)))
		out.ZCol.AppendRow(g.ZCol, int(i))
	}
	out.Block = bb.Build()
	return out
}

// PullShard streams one batch of the shard's resident data, resuming
// at Cursor (a group-list index). Batches pack whole append groups up
// to roughly MaxRows rows into a single pair of frames, so the
// transfer path moves flat arrays, not per-point gob.
func (w *Worker) PullShard(args PullShardArgs, reply *PullShardReply) error {
	w.smu.RLock()
	res := w.resident[args.ShardID]
	var groups []plan.Group
	if res != nil {
		groups = append(groups, res.groups...)
	}
	w.smu.RUnlock()
	if res == nil {
		return fmt.Errorf("dist: shard %d not resident on %s", args.ShardID, w.addr)
	}
	maxRows := args.MaxRows
	if maxRows <= 0 {
		maxRows = 4096
	}
	cur := args.Cursor
	if cur < 0 || cur > len(groups) {
		return fmt.Errorf("dist: shard %d pull cursor %d of %d", args.ShardID, cur, len(groups))
	}
	var bb *point.BlockBuilder
	var zc zorder.ZCol
	for cur < len(groups) {
		g := groups[cur]
		if bb == nil {
			bb = point.NewBlockBuilder(g.Block.Dims, g.Block.Len())
			zc = zorder.ZCol{Words: g.ZCol.Words}
		}
		bb.AppendBlock(g.Block)
		zc.AppendCol(g.ZCol)
		cur++
		reply.Rows += g.Len()
		if reply.Rows >= maxRows {
			break
		}
	}
	if bb != nil {
		var err error
		if reply.BlockFrame, err = bb.Build().MarshalBinary(); err != nil {
			return err
		}
		if reply.ZFrame, err = zc.MarshalBinary(); err != nil {
			return err
		}
	}
	reply.Next = cur
	reply.Done = cur >= len(groups)
	return nil
}

// StageShard appends one pulled batch to the (shard, epoch) staging
// area. Staged data is invisible to queries until CommitShard.
func (w *Worker) StageShard(args StageShardArgs, reply *StageShardReply) error {
	g, err := decodeShardFrames(args.ShardID, args.BlockFrame, args.ZFrame)
	if err != nil {
		return err
	}
	key := stageKey{shard: args.ShardID, epoch: args.Epoch}
	w.smu.Lock()
	st := w.staged[key]
	if st == nil {
		st = &residentShard{}
		w.staged[key] = st
	}
	if w.maxResident > 0 && st.rows+g.Len() > w.maxResident {
		w.smu.Unlock()
		return fmt.Errorf("dist: shard %d staging on %s over resident cap: %d+%d > %d",
			args.ShardID, w.addr, st.rows, g.Len(), w.maxResident)
	}
	if g.Len() > 0 {
		st.groups = append(st.groups, g)
		st.rows += g.Len()
	}
	reply.Rows = st.rows
	w.smu.Unlock()
	return nil
}

// CommitShard promotes the (shard, epoch) staging area to resident,
// replacing whatever the replica previously held for the shard, and
// discards every other staging area for the shard. Committing a
// missing staging area yields an empty resident shard — correct for a
// shard that held no rows.
func (w *Worker) CommitShard(args CommitShardArgs, reply *CommitShardReply) error {
	key := stageKey{shard: args.ShardID, epoch: args.Epoch}
	w.smu.Lock()
	st := w.staged[key]
	if st == nil {
		st = &residentShard{}
	}
	for k := range w.staged {
		if k.shard == args.ShardID {
			delete(w.staged, k)
		}
	}
	w.resident[args.ShardID] = st
	if args.MapVersion > w.shardVer {
		w.shardVer = args.MapVersion
	}
	reply.Rows = st.rows
	w.smu.Unlock()
	w.setShardGauge(args.ShardID, reply.Rows)
	return nil
}

// DropStaged discards one staging area (handoff abort).
func (w *Worker) DropStaged(args DropStagedArgs, reply *DropStagedReply) error {
	w.smu.Lock()
	delete(w.staged, stageKey{shard: args.ShardID, epoch: args.Epoch})
	w.smu.Unlock()
	_ = reply
	return nil
}

// DropShard removes the shard's resident data after ownership moved
// away. The guard — reject versions below the installed one — makes a
// delayed drop from an old rebalance harmless if the shard has since
// moved back here under a newer map.
func (w *Worker) DropShard(args DropShardArgs, reply *DropShardReply) error {
	w.smu.Lock()
	if args.MapVersion < w.shardVer {
		w.smu.Unlock()
		return fmt.Errorf("dist: stale shard map v%d on %s (have v%d)",
			args.MapVersion, w.addr, w.shardVer)
	}
	w.shardVer = args.MapVersion
	delete(w.resident, args.ShardID)
	w.smu.Unlock()
	w.setShardGauge(args.ShardID, 0)
	_ = reply
	return nil
}

// ShardStats reports the replica's installed map version and resident
// rows per shard — what skydist -shard-report and the tests read.
func (w *Worker) ShardStats(_ ShardStatsArgs, reply *ShardStatsReply) error {
	w.smu.RLock()
	defer w.smu.RUnlock()
	reply.MapVersion = w.shardVer
	reply.Rows = make(map[int]int64, len(w.resident))
	for id, res := range w.resident {
		reply.Rows[id] = int64(res.rows)
	}
	return nil
}
