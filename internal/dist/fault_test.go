package dist

import (
	"context"
	"errors"
	"io"
	"strconv"
	"strings"
	"testing"
	"time"

	"zskyline/internal/gen"
	"zskyline/internal/obs"
	"zskyline/internal/seq"
	"zskyline/internal/transport"
)

// ftConfig is the fast-recovery coordinator config the fault suite
// uses: tight redial so resurrection happens within a test run, short
// backoff-visible timeouts, everything else default.
func ftConfig() CoordinatorConfig {
	cfg := DefaultCoordinatorConfig()
	cfg.M = 16
	cfg.SampleRatio = 0.05
	cfg.ChunkSize = 500
	cfg.RedialInterval = 10 * time.Millisecond
	return cfg
}

// counterTotal sums a counter family across label sets by scraping the
// registry's Prometheus export — the same view an operator gets.
func counterTotal(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var sb writerBuf
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sumMetric(string(sb), name)
}

type writerBuf []byte

func (w *writerBuf) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

// sumMetric sums every sample of family name in a Prometheus export.
func sumMetric(text, name string) float64 {
	return sumLabeled(text, name, "")
}

// sumLabeled sums samples of family name whose line contains sub
// (empty sub matches all label sets).
func sumLabeled(text, name, sub string) float64 {
	var total float64
	for _, line := range splitLines(text) {
		if len(line) == 0 || line[0] == '#' || !hasMetricName(line, name) {
			continue
		}
		if sub != "" && !strings.Contains(line, sub) {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
			total += v
		}
	}
	return total
}

func splitLines(s string) []string {
	return strings.Split(strings.TrimRight(s, "\n"), "\n")
}

func hasMetricName(line, name string) bool {
	if !strings.HasPrefix(line, name) {
		return false
	}
	rest := line[len(name):]
	return len(rest) > 0 && (rest[0] == '{' || rest[0] == ' ')
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want errClass
	}{
		{transport.ErrShutdown, classRetryable},
		{io.EOF, classRetryable},
		{io.ErrUnexpectedEOF, classRetryable},
		{errAttemptTimeout, classRetryable},
		{errNotConnected, classRetryable},
		{transport.ServerError("dist: rule 5 not loaded on 127.0.0.1:1"), classRuleMissing},
		{transport.ServerError("plan: dims mismatch"), classFatal},
		{transport.ServerError("zorder: bad rule hash"), classFatal},
		{errors.New("read tcp: connection reset by peer"), classRetryable},
	}
	for _, tc := range cases {
		if got := classify(tc.err); got != tc.want {
			t.Errorf("classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("Worker.MergeGroups:1:delay:2s, Worker.MapChunk:2x3:sever,Worker.ReduceGroup:4:drop")
	if err != nil {
		t.Fatal(err)
	}
	if r := p.match("Worker.MergeGroups"); r == nil || r.Action != FaultDelay || r.Delay != 2*time.Second {
		t.Errorf("merge rule: %+v", r)
	}
	// MapChunk calls 2..4 sever, 1 and 5 pass.
	if r := p.match("Worker.MapChunk"); r != nil {
		t.Errorf("map call 1 matched %+v", r)
	}
	for i := 0; i < 3; i++ {
		if r := p.match("Worker.MapChunk"); r == nil || r.Action != FaultSever {
			t.Errorf("map call %d: %+v", i+2, r)
		}
	}
	if r := p.match("Worker.MapChunk"); r != nil {
		t.Errorf("map call 5 matched %+v", r)
	}
	if p.Injected() != 4 {
		t.Errorf("injected = %d, want 4", p.Injected())
	}
	for _, bad := range []string{"", "x", "m:0:drop", "m:1:delay", "m:1:boom", "m:1x0:drop"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// A worker severed after its first successful reduce must be
// resurrected (with the rule re-broadcast) and serve later phase-3
// merge rounds, while the query stays exact.
func TestWorkerDiesMidReduceAndRecovers(t *testing.T) {
	// Worker 2 dies on its second reduce; workers 0 and 1 straggle on
	// their first merge so the resurrected worker 2 demonstrably picks
	// up later merge tasks.
	slow := NewFaultPlan(FaultRule{Method: "Worker.MergeGroups", Nth: 1, Action: FaultDelay, Delay: 150 * time.Millisecond})
	slow2 := NewFaultPlan(FaultRule{Method: "Worker.MergeGroups", Nth: 1, Action: FaultDelay, Delay: 150 * time.Millisecond})
	dying := NewFaultPlan(FaultRule{Method: "Worker.ReduceGroup", Nth: 2, Action: FaultSever})
	var addrs []string
	var servers []*WorkerServer
	for _, p := range []*FaultPlan{slow, slow2, dying} {
		ws, err := StartWorkerWithFaults("127.0.0.1:0", p)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ws.Close() })
		servers = append(servers, ws)
		addrs = append(addrs, ws.Addr())
	}
	ds := gen.Synthetic(gen.AntiCorrelated, 8000, 4, 23)
	want := seq.SB(ds.Points, nil)

	cfg := ftConfig()
	cfg.TreeMerge = true
	coord, err := NewCoordinator(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	got, _, err := coord.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "skyline under sever")
	if dying.Injected() == 0 {
		t.Fatal("sever fault never fired; test exercised nothing")
	}
	reg := coord.Metrics()
	if n := counterTotal(t, reg, "zsky_dist_retries_total"); n < 1 {
		t.Errorf("retries = %v, want >= 1", n)
	}
	waitFor(t, 3*time.Second, "resurrection", func() bool {
		return counterTotal(t, reg, "zsky_dist_resurrections_total") >= 1
	})
	// The resurrected worker received the rule re-broadcast (its
	// LoadRule count exceeds the query's single broadcast)...
	var lr writerBuf
	if err := servers[2].Metrics().WritePrometheus(&lr); err != nil {
		t.Fatal(err)
	}
	if n := sumMetric(string(lr), "zsky_rpc_requests_total"); n < 2 {
		t.Errorf("resurrected worker served %v RPCs total, want >= 2 (LoadRule re-broadcast + later tasks)", n)
	}
	// ...and served later work after dying: phase-3 merges or the
	// retried reduce.
	text := string(lr)
	merges := sumLabeled(text, "zsky_rpc_requests_total", `method="MergeGroups"`)
	reduces := sumLabeled(text, "zsky_rpc_requests_total", `method="ReduceGroup"`)
	if merges < 1 && reduces < 2 {
		t.Errorf("resurrected worker served merges=%v reduces=%v; expected post-resurrection work", merges, reduces)
	}
}

// Every worker flaps at once mid-map: the cluster must ride out the
// window where nobody is live (resurrection readmits the workers and
// re-broadcasts the rule) and still answer exactly.
func TestAllWorkersFlap(t *testing.T) {
	var addrs []string
	var plans []*FaultPlan
	for i := 0; i < 2; i++ {
		p := NewFaultPlan(FaultRule{Method: "Worker.MapChunk", Nth: 2, Action: FaultSever})
		ws, err := StartWorkerWithFaults("127.0.0.1:0", p)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ws.Close() })
		plans = append(plans, p)
		addrs = append(addrs, ws.Addr())
	}
	ds := gen.Synthetic(gen.Independent, 6000, 4, 9)
	want := seq.SB(ds.Points, nil)

	coord, err := NewCoordinator(ftConfig(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	got, _, err := coord.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatalf("query across full flap: %v", err)
	}
	sameSet(t, got, want, "skyline across flap")
	for i, p := range plans {
		if p.Injected() == 0 {
			t.Errorf("worker %d never severed; flap not exercised", i)
		}
	}
	if n := counterTotal(t, coord.Metrics(), "zsky_dist_resurrections_total"); n < 2 {
		t.Errorf("resurrections = %v, want >= 2", n)
	}
}

// A dropped response (the worker computes but the reply vanishes)
// must be rescued by the per-attempt deadline and retried elsewhere.
func TestDropRescuedByDeadline(t *testing.T) {
	p := NewFaultPlan(FaultRule{Method: "Worker.ReduceGroup", Nth: 1, Action: FaultDrop})
	ws, err := StartWorkerWithFaults("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ws.Close() })
	ws2, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ws2.Close() })

	ds := gen.Synthetic(gen.AntiCorrelated, 4000, 3, 3)
	want := seq.SB(ds.Points, nil)
	cfg := ftConfig()
	cfg.RPCTimeout = 150 * time.Millisecond
	coord, err := NewCoordinator(cfg, []string{ws.Addr(), ws2.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	start := time.Now()
	got, _, err := coord.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "skyline with dropped reply")
	if p.Injected() == 0 {
		t.Fatal("drop fault never fired")
	}
	if counterTotal(t, coord.Metrics(), "zsky_dist_retries_total") < 1 {
		t.Error("no retry recorded for the dropped reply")
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Errorf("query took %v; deadline did not rescue the hung call", el)
	}
}

// Hedging must beat an injected straggler: with the only merge task
// delayed 2s on its primary worker, the hedged duplicate on the idle
// worker answers and the query finishes far sooner.
func TestHedgeBeatsStraggler(t *testing.T) {
	p := NewFaultPlan(FaultRule{Method: "Worker.MergeGroups", Nth: 1, Action: FaultDelay, Delay: 2 * time.Second})
	ws, err := StartWorkerWithFaults("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ws.Close() })
	ws2, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ws2.Close() })

	ds := gen.Synthetic(gen.AntiCorrelated, 5000, 4, 13)
	want := seq.SB(ds.Points, nil)
	cfg := ftConfig()
	cfg.Hedge = 50 * time.Millisecond
	// The straggler (worker 0) is first in the list, so the lone
	// phase-3 merge prefers it.
	coord, err := NewCoordinator(cfg, []string{ws.Addr(), ws2.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	start := time.Now()
	got, _, err := coord.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	sameSet(t, got, want, "hedged skyline")
	if p.Injected() == 0 {
		t.Fatal("delay fault never fired")
	}
	if n := counterTotal(t, coord.Metrics(), "zsky_dist_hedge_wins_total"); n < 1 {
		t.Errorf("hedge wins = %v, want >= 1", n)
	}
	if elapsed > 1500*time.Millisecond {
		t.Errorf("query took %v; hedge did not beat the 2s straggler", elapsed)
	}
}

// A worker process replaced wholesale (restart at the same address,
// empty rule cache) must be re-dialed, re-sent the current rule, and
// readmitted.
func TestRuleRebroadcastAfterRestart(t *testing.T) {
	ws, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ws.Addr()
	cfg := ftConfig()
	coord, err := NewCoordinator(cfg, []string{addr})
	if err != nil {
		ws.Close()
		t.Fatal(err)
	}
	defer coord.Close()
	ds := gen.Synthetic(gen.Independent, 2000, 3, 5)
	want := seq.SB(ds.Points, nil)
	got, _, err := coord.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "before restart")

	// Replace the process: the new worker has an empty rule cache.
	ws.Close()
	var ws2 *WorkerServer
	waitFor(t, 5*time.Second, "rebind of worker address", func() bool {
		w, err := StartWorker(addr)
		if err != nil {
			return false
		}
		ws2 = w
		return true
	})
	t.Cleanup(func() { ws2.Close() })

	// Death is detected passively: the next query's first RPC hits the
	// dead connection, suspects the worker, and the resurrector
	// re-dials the fresh process and re-broadcasts the rule before the
	// retry lands.
	got, _, err = coord.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "after restart")
	if n := counterTotal(t, coord.Metrics(), "zsky_dist_resurrections_total"); n < 1 {
		t.Errorf("resurrections = %v, want >= 1", n)
	}
	// Resurrection re-broadcast the current rule into the fresh cache.
	var buf writerBuf
	if err := ws2.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if n := sumLabeled(string(buf), "zsky_rpc_requests_total", `method="LoadRule"`); n < 1 {
		t.Errorf("restarted worker LoadRule count = %v, want >= 1 (resurrection re-broadcast)", n)
	}
}

// With every worker gone for good and resurrection disabled, queries
// must fail fast with the typed ErrClusterDown.
func TestErrClusterDownTyped(t *testing.T) {
	ws, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ftConfig()
	cfg.RedialInterval = -1 // resurrection off: suspect collapses to dead
	cfg.Retries = -1
	coord, err := NewCoordinator(cfg, []string{ws.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ws.Close()
	ds := gen.Synthetic(gen.Independent, 500, 2, 1)
	start := time.Now()
	_, _, err = coord.Skyline(context.Background(), ds)
	if err == nil {
		t.Fatal("query succeeded with no live workers")
	}
	if !errors.Is(err, ErrClusterDown) {
		t.Errorf("error %v is not ErrClusterDown", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("cluster-down detection took %v", el)
	}
}

// Fatal worker verdicts must not be retried into different answers:
// an unknown-rule... is retryable-by-rebroadcast, but a genuinely
// fatal server error (unregistered method) surfaces immediately.
func TestFatalErrorNotRetried(t *testing.T) {
	ws, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ws.Close() })
	cfg := ftConfig()
	coord, err := NewCoordinator(cfg, []string{ws.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	var reply MapReply
	_, err = coord.call(context.Background(), "Worker.NoSuchMethod",
		PingArgs{}, &reply, callOpts{})
	if err == nil {
		t.Fatal("unknown method succeeded")
	}
	if n := counterTotal(t, coord.Metrics(), "zsky_dist_retries_total"); n != 0 {
		t.Errorf("fatal error was retried %v times", n)
	}
}
