package dist

import (
	"context"
	"fmt"
	"sync"
	"time"

	"zskyline/internal/dominance"
	"zskyline/internal/obs"
	"zskyline/internal/partition"
	"zskyline/internal/plan"
	"zskyline/internal/point"
	"zskyline/internal/transport"
	"zskyline/internal/zorder"
)

// ShardPolicy overrides the cluster-wide fault-tolerance policy for
// one shard — a hot shard can run tighter deadlines and more
// aggressive hedging than a cold one. Zero fields inherit the cluster
// policy; negative values disable the knob.
type ShardPolicy struct {
	RPCTimeout time.Duration
	Retries    int
	Hedge      time.Duration
}

// ClusterConfig parameterizes a sharded cluster. Unlike
// CoordinatorConfig there is no sampling or partition learning: the
// dataset lives on the workers, cut by Z-range, and the "rule" is just
// the encoder geometry plus the local/merge algorithms.
type ClusterConfig struct {
	// Mins/Maxs are the data bounds per dimension; their length is the
	// dimensionality. Points outside the box are clamped by the
	// encoder, which degrades routing balance but never correctness.
	Mins, Maxs []float64
	// Bits is the Z-order resolution per dimension (0 selects 16).
	Bits int
	// Fanout is the ZB-tree fanout (0 selects the default).
	Fanout int
	// UseZS selects Z-search as the shard-local skyline algorithm.
	UseZS bool
	// TreeMerge runs the cross-shard merge as rounds of pairwise tasks.
	TreeMerge bool
	// Dominance selects the dominance relation. It must be transitive:
	// shard-local skylines are only sound to merge when elimination
	// composes across shards. Non-transitive descriptors are rejected
	// at construction.
	Dominance dominance.Descriptor

	// Shards is the shard count (0 selects one per worker group).
	Shards int
	// Cuts, when non-nil, are explicit Z-range cut addresses
	// (Shards-1 of them, strictly increasing); nil selects uniform
	// cuts over the curve's leading word.
	Cuts [][]uint64
	// PullRows is the handoff streaming batch size in rows (0 selects
	// 4096).
	PullRows int

	// Fault-tolerance policy, with the CoordinatorConfig semantics
	// (0 = default, negative = disabled).
	RPCTimeout     time.Duration
	Retries        int
	Hedge          time.Duration
	RedialInterval time.Duration
	DialTimeout    time.Duration
	// PerShard overrides the policy for individual shard IDs.
	PerShard map[int]ShardPolicy

	// Metrics/Events as in CoordinatorConfig.
	Metrics *obs.Registry
	Events  *obs.EventLog
	// Seed drives the retry jitter schedule.
	Seed int64
}

// ClusterReport describes one cluster query.
type ClusterReport struct {
	// Shards is the map's shard count; Routed how many shards the
	// query actually contacted (== Shards for full-curve queries,
	// fewer for range queries under partition-aware routing).
	Shards int
	Routed int
	// MapVersion is the shard-map version the query routed under.
	MapVersion uint64
	// SkylineSize is |S|.
	SkylineSize int
	// WireSentBytes/WireRecvBytes are this query's TCP byte deltas
	// summed over all worker connections.
	WireSentBytes int64
	WireRecvBytes int64
}

// Cluster is the sharded distributed tier: worker groups own
// contiguous Z-ranges of the dataset under a versioned ShardMap,
// inserts route to owning groups (replicated to every live member),
// queries fan out to exactly the shards whose range they touch and
// merge cross-shard via the existing tree-merge rounds, and Handoff
// moves a shard between groups while serving. It wraps the unsharded
// Coordinator for everything that is not shard-specific: dialing,
// liveness, resurrection, the retry/hedge call layer, metrics, and
// events.
type Cluster struct {
	cfg      ClusterConfig
	inner    *Coordinator
	groups   [][]int // worker indices per group
	rule     *plan.Rule
	ruleID   uint64
	ruleData plan.RuleData
	enc      *zorder.Encoder
	table    *partition.RangeTable // cuts are immutable across versions
	shardIDs []int                 // range index -> stable shard ID
	pols     map[int]*policy       // resolved per-shard policies
	pullRows int

	mu   sync.Mutex
	smap ShardMap
	// stale marks replicas that missed a replicated write (or were not
	// fully staged by a handoff): shard ID -> worker index -> true.
	// Stale replicas serve no queries and receive no inserts; they
	// rejoin only through a handoff commit, which replaces their
	// resident store wholesale.
	stale map[int]map[int]bool
	rows  map[int]int64
	locks map[int]*sync.Mutex // per-shard insert/handoff serialization

	// hmu serializes handoffs cluster-wide so each allocates a unique
	// map version (see Handoff).
	hmu sync.Mutex
	// handoffSeq issues the staging epoch for each handoff attempt,
	// guarded by hmu. It advances on every attempt — including aborted
	// ones, whose map version is reused — so a retry can never append
	// onto leftovers a failed attempt staged under the same key.
	handoffSeq uint64
}

// NewCluster dials every worker in every group, broadcasts the cluster
// rule with shard-map version 1, and seeds shard residency on each
// owning group. Startup is strict, like NewCoordinator: any
// unreachable worker fails construction.
func NewCluster(ctx context.Context, cfg ClusterConfig, groups [][]string) (*Cluster, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("dist: no worker groups")
	}
	dims := len(cfg.Mins)
	if dims == 0 || len(cfg.Maxs) != dims {
		return nil, fmt.Errorf("dist: cluster bounds %d/%d dims", dims, len(cfg.Maxs))
	}
	if cfg.Bits == 0 {
		cfg.Bits = 16
	}
	if cfg.PullRows <= 0 {
		cfg.PullRows = 4096
	}
	var addrs []string
	groupIdx := make([][]int, len(groups))
	for gi, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("dist: worker group %d is empty", gi)
		}
		for _, a := range g {
			groupIdx[gi] = append(groupIdx[gi], len(addrs))
			addrs = append(addrs, a)
		}
	}

	local := plan.SB
	if cfg.UseZS {
		local = plan.ZS
	}
	rd := plan.RuleData{
		Dims: dims, Bits: cfg.Bits,
		Mins: append([]float64(nil), cfg.Mins...),
		Maxs: append([]float64(nil), cfg.Maxs...),
		Pivots: [][]uint64{}, GroupOf: map[int]int{}, Groups: 1,
		Fanout: cfg.Fanout, Local: local, Merge: plan.MergeZM,
		Dominance: cfg.Dominance,
	}
	rule, err := plan.FromData(&rd)
	if err != nil {
		return nil, err
	}
	if !rule.Provider().Caps().Transitive {
		return nil, fmt.Errorf("dist: cluster requires a transitive dominance relation, %s is not",
			cfg.Dominance.String())
	}
	enc := rule.Encoder()

	shards := cfg.Shards
	if shards <= 0 {
		shards = len(groups)
	}
	var smap ShardMap
	if cfg.Cuts != nil {
		if cfg.Shards > 0 && cfg.Shards != len(cfg.Cuts)+1 {
			return nil, fmt.Errorf("dist: %d explicit cuts make %d shards, config says %d",
				len(cfg.Cuts), len(cfg.Cuts)+1, cfg.Shards)
		}
		smap = ShardMap{Version: 1, Words: enc.Words(), Cuts: cfg.Cuts}
		for i := 0; i <= len(cfg.Cuts); i++ {
			smap.Shards = append(smap.Shards, ShardAssign{ID: i, Group: i % len(groups)})
		}
	} else {
		smap = UniformShardMap(enc.Words(), shards, len(groups))
	}
	if err := smap.Validate(len(groups)); err != nil {
		return nil, err
	}
	table, err := smap.table()
	if err != nil {
		return nil, err
	}

	ccfg := CoordinatorConfig{
		M: 1, Delta: 1, SampleRatio: 1, Bits: cfg.Bits, Fanout: cfg.Fanout,
		UseZS: cfg.UseZS, TreeMerge: cfg.TreeMerge, Seed: cfg.Seed,
		Dominance: cfg.Dominance,
		RPCTimeout: cfg.RPCTimeout, Retries: cfg.Retries, Hedge: cfg.Hedge,
		RedialInterval: cfg.RedialInterval, DialTimeout: cfg.DialTimeout,
		Metrics: cfg.Metrics, Events: cfg.Events,
	}
	inner, err := NewCoordinator(ccfg, addrs)
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		cfg: cfg, inner: inner, groups: groupIdx,
		rule: rule, ruleData: rd, enc: enc, table: table,
		pols:     map[int]*policy{},
		pullRows: cfg.PullRows,
		smap:     smap,
		stale:    map[int]map[int]bool{},
		rows:     map[int]int64{},
		locks:    map[int]*sync.Mutex{},
	}
	for _, s := range smap.Shards {
		c.shardIDs = append(c.shardIDs, s.ID)
		c.locks[s.ID] = &sync.Mutex{}
	}
	for sid, sp := range cfg.PerShard {
		pol := inner.pol
		if sp.RPCTimeout != 0 {
			pol.rpcTimeout = max(sp.RPCTimeout, 0)
		}
		if sp.Retries != 0 {
			pol.retries = max(sp.Retries, 0)
		}
		if sp.Hedge != 0 {
			pol.hedge = max(sp.Hedge, 0)
		}
		c.pols[sid] = &pol
	}
	c.ruleID = inner.salt<<32 | ruleCounter.Add(1)

	if err := inner.broadcast(ctx, RuleBlob{ID: c.ruleID, Data: rd, Shards: smap}); err != nil {
		inner.Close()
		return nil, err
	}
	// Seed residency: every member of a shard's owning group holds the
	// (empty) shard from the start, so queries on never-inserted shards
	// succeed instead of answering "not resident".
	for i, s := range smap.Shards {
		ok := 0
		for _, w := range c.groups[s.Group] {
			err := c.callOn(ctx, w, s.ID, "Worker.StoreShard",
				StoreShardArgs{RuleID: c.ruleID, MapVersion: smap.Version, ShardID: s.ID},
				&StoreShardReply{})
			if err != nil {
				c.markShardStale(s.ID, w)
				continue
			}
			ok++
		}
		if ok == 0 {
			inner.Close()
			return nil, fmt.Errorf("dist: shard %d (range %d): %w", s.ID, i, ErrShardDown)
		}
	}
	return c, nil
}

// Close shuts the underlying coordinator down.
func (c *Cluster) Close() error { return c.inner.Close() }

// Metrics returns the cluster's metrics registry.
func (c *Cluster) Metrics() *obs.Registry { return c.inner.Metrics() }

// Events returns the cluster's event log.
func (c *Cluster) Events() *obs.EventLog { return c.inner.Events() }

// WireStats returns per-worker TCP byte totals since connection.
func (c *Cluster) WireStats() []WireStat { return c.inner.WireStats() }

// Map returns a snapshot of the current shard map.
func (c *Cluster) Map() ShardMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.smap.Clone()
}

// Groups returns the number of worker groups.
func (c *Cluster) Groups() int { return len(c.groups) }

// ShardRows returns the coordinator-side resident row count per shard
// ID (inserted rows; replicas each hold a full copy).
func (c *Cluster) ShardRows() map[int]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]int64, len(c.rows))
	for k, v := range c.rows {
		out[k] = v
	}
	return out
}

// shardPolicy resolves the effective policy for one shard.
func (c *Cluster) shardPolicy(sid int) *policy {
	if p := c.pols[sid]; p != nil {
		return p
	}
	return &c.inner.pol
}

// shardLock returns the per-shard insert/handoff mutex.
func (c *Cluster) shardLock(sid int) *sync.Mutex {
	c.mu.Lock()
	defer c.mu.Unlock()
	lk := c.locks[sid]
	if lk == nil {
		lk = &sync.Mutex{}
		c.locks[sid] = lk
	}
	return lk
}

// markShardStale records that one replica missed a replicated write
// and must not serve the shard until a handoff re-streams it.
func (c *Cluster) markShardStale(sid, w int) {
	c.mu.Lock()
	if c.stale[sid] == nil {
		c.stale[sid] = map[int]bool{}
	}
	c.stale[sid][w] = true
	c.mu.Unlock()
	c.inner.reg.Counter("zsky_shard_stale_replicas_total",
		obs.L("shard", fmt.Sprint(sid))).Add(1)
}

// freshMembers returns the owning group's worker indices minus the
// shard's stale set, under the current map.
func (c *Cluster) freshMembers(sid int) (members []int, version uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.freshMembersLocked(sid)
}

func (c *Cluster) freshMembersLocked(sid int) (members []int, version uint64) {
	idx := c.smap.IndexOf(sid)
	if idx < 0 {
		return nil, c.smap.Version
	}
	st := c.stale[sid]
	for _, w := range c.groups[c.smap.Shards[idx].Group] {
		if !st[w] {
			members = append(members, w)
		}
	}
	return members, c.smap.Version
}

// ---- inserts ----

// Insert routes points to their owning shards and replicates each
// batch to every live member of the owning group.
func (c *Cluster) Insert(ctx context.Context, pts []point.Point) error {
	if len(pts) == 0 {
		return nil
	}
	return c.InsertBlock(ctx, point.BlockOf(c.enc.Dims(), pts))
}

// InsertBlock is Insert over a contiguous block: one bulk encode, one
// owner split, then per-shard replicated appends. The Z-address column
// computed for routing travels with each batch (encode-once), so
// workers never re-encode inserted points.
func (c *Cluster) InsertBlock(ctx context.Context, blk point.Block) error {
	if blk.Len() == 0 {
		return nil
	}
	if blk.Dims != c.enc.Dims() {
		return fmt.Errorf("dist: insert block has %d dims, want %d", blk.Dims, c.enc.Dims())
	}
	zc := c.enc.EncodeBlock(zorder.ZCol{}, blk)
	parts := plan.SplitByOwner(plan.Group{Block: blk, ZCol: zc},
		func(row int) int { return c.table.Locate(zc.At(row)) })
	for _, p := range parts {
		// Cuts never change across map versions, so the range index ->
		// shard ID mapping is stable even while a handoff runs.
		if err := c.insertShard(ctx, c.shardIDs[p.Gid], p); err != nil {
			return err
		}
	}
	return nil
}

// insertShard appends one routed batch to every fresh replica of the
// owning group, under the shard's lock (which also excludes a
// concurrent handoff of this shard). A replica that fails the write
// after retries is marked stale; the insert succeeds as long as one
// replica holds it, and fails with ErrShardDown when none does.
func (c *Cluster) insertShard(ctx context.Context, sid int, g plan.Group) error {
	lk := c.shardLock(sid)
	lk.Lock()
	defer lk.Unlock()
	members, version := c.freshMembers(sid)
	if len(members) == 0 {
		return fmt.Errorf("dist: shard %d: %w", sid, ErrShardDown)
	}
	blockFrame, err := g.Block.MarshalBinary()
	if err != nil {
		return err
	}
	zFrame, err := g.ZCol.MarshalBinary()
	if err != nil {
		return err
	}
	args := StoreShardArgs{RuleID: c.ruleID, MapVersion: version, ShardID: sid,
		BlockFrame: blockFrame, ZFrame: zFrame}
	ok := 0
	for mi, w := range members {
		if err := c.callOn(ctx, w, sid, "Worker.StoreShard", args, &StoreShardReply{}); err != nil {
			fatal := classify(err) == classFatal
			if fatal || ctx.Err() != nil {
				// Aborting mid-replication must not leave replicas that
				// silently diverge: once any member stored the batch,
				// every member not known to hold it — this one and the
				// ones never attempted — goes stale so the fresh set
				// stays byte-identical (PullShard cursors depend on
				// identical group lists). A cancelled call is ambiguous
				// (the write may have landed), so its member goes stale
				// even when no other member stored the batch; a fatal
				// reply means the worker rejected it, so with ok == 0
				// the group is still consistent and nobody goes stale.
				if !fatal || ok > 0 {
					c.markShardStale(sid, w)
				}
				if ok > 0 {
					for _, m := range members[mi+1:] {
						c.markShardStale(sid, m)
					}
				}
				return fmt.Errorf("dist: shard %d store on %s: %w", sid, c.inner.addrs[w], err)
			}
			c.markShardStale(sid, w)
			continue
		}
		ok++
	}
	if ok == 0 {
		return fmt.Errorf("dist: shard %d: %w", sid, ErrShardDown)
	}
	c.mu.Lock()
	c.rows[sid] += int64(g.Len())
	total := c.rows[sid]
	c.mu.Unlock()
	c.inner.reg.Gauge("zsky_shard_points", obs.L("shard", fmt.Sprint(sid))).Set(float64(total))
	return nil
}

// callOn issues one method on one specific worker with bounded retries
// pinned to it — replica-addressed writes have no failover: the write
// must land on that member or the member goes stale.
func (c *Cluster) callOn(ctx context.Context, w, sid int, method string, args transport.Marshaler, reply transport.Unmarshaler) error {
	pol := c.shardPolicy(sid)
	sp, ev, done := c.inner.startRPC(ctx, method)
	var err error
	for attempt := 0; ; attempt++ {
		_, err = c.inner.attempt(ctx, method, args, reply, w, callOpts{pol: pol, sp: sp, ev: ev})
		ev.SetAttempts(attempt + 1)
		if err == nil || ctx.Err() != nil {
			break
		}
		class := classify(err)
		c.inner.reg.Counter("zsky_dist_rpc_errors_total",
			obs.L("method", method), obs.L("class", className(class))).Add(1)
		if class == classFatal || class == classShardMoved || attempt >= pol.retries {
			break
		}
		if class == classRuleMissing {
			if rerr := c.inner.resendRule(ctx, w); rerr != nil {
				break
			}
			continue
		}
		c.inner.reg.Counter("zsky_dist_retries_total", obs.L("method", method)).Add(1)
		sleep(ctx, c.inner.bo.delay(pol, attempt))
	}
	done(w, err)
	return err
}

// ---- queries ----

// Skyline computes the exact global skyline: per-shard skylines on the
// owning groups, then the cross-shard merge.
func (c *Cluster) Skyline(ctx context.Context) ([]point.Point, *ClusterReport, error) {
	return c.skyline(ctx, zorder.Range{}, false)
}

// SkylineRange computes the exact skyline of the points whose
// Z-address falls in [lo, hi) (nil bounds mean the curve's ends), with
// partition-aware routing: only shards whose range overlaps the query
// are contacted.
func (c *Cluster) SkylineRange(ctx context.Context, lo, hi zorder.ZAddr) ([]point.Point, *ClusterReport, error) {
	return c.skyline(ctx, zorder.Range{Lo: lo, Hi: hi}, false)
}

// SkylineRangeBroadcast answers the same query as SkylineRange but
// fans out to every shard, each filtering locally — the
// broadcast-to-all baseline partition-aware routing is measured
// against (see EXPERIMENTS.md). Results are identical; only the wire
// traffic differs.
func (c *Cluster) SkylineRangeBroadcast(ctx context.Context, lo, hi zorder.ZAddr) ([]point.Point, *ClusterReport, error) {
	return c.skyline(ctx, zorder.Range{Lo: lo, Hi: hi}, true)
}

func (c *Cluster) skyline(ctx context.Context, rng zorder.Range, routeAll bool) ([]point.Point, *ClusterReport, error) {
	id := obs.RequestIDFrom(ctx)
	if id == "" {
		id = obs.NewRequestID()
		ctx = obs.ContextWithRequestID(ctx, id)
	}
	filter := rng.Lo != nil || rng.Hi != nil
	route := "cluster/skyline"
	if filter {
		route = "cluster/skyline-range"
	}
	ev := &obs.Event{ID: id, Kind: "query", Route: route,
		Dominance: c.cfg.Dominance.String()}
	c.mu.Lock()
	version := c.smap.Version
	nShards := c.smap.NumShards()
	c.mu.Unlock()
	var targets []int
	if routeAll || !filter {
		for i := 0; i < nShards; i++ {
			targets = append(targets, i)
		}
	} else {
		targets = c.table.Overlapping(rng)
	}
	rep := &ClusterReport{Shards: nShards, Routed: len(targets), MapVersion: version}
	ev.Query = fmt.Sprintf("shards=%d/%d,v=%d", len(targets), nShards, version)
	wireBefore := c.WireStats()
	start := time.Now()

	groups := make([]plan.Group, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, idx := range targets {
		wg.Add(1)
		go func(i, idx int) {
			defer wg.Done()
			groups[i], errs[i] = c.shardSkyline(ctx, c.shardIDs[idx], rng, filter)
		}(i, idx)
	}
	wg.Wait()
	var err error
	for _, e := range errs {
		if e != nil {
			err = e
			break
		}
	}
	var sky []point.Point
	if err == nil {
		if len(groups) == 1 {
			// A single shard's local skyline is already global for its
			// range; skip the merge round.
			sky = groups[0].Points()
		} else {
			sky, err = plan.MergePhase(ctx, &rpcExec{c: c.inner, ruleID: c.ruleID},
				c.rule, groups, c.cfg.TreeMerge, nil)
		}
	}
	ev.DurationMS = float64(time.Since(start).Microseconds()) / 1000
	for i, ws := range c.WireStats() {
		ev.WireSentBytes += ws.Sent - wireBefore[i].Sent
		ev.WireRecvBytes += ws.Recv - wireBefore[i].Recv
	}
	rep.WireSentBytes, rep.WireRecvBytes = ev.WireSentBytes, ev.WireRecvBytes
	if err != nil {
		ev.SetError(className(classify(err)), err.Error())
		c.inner.events.RecordForced(*ev)
		return nil, nil, err
	}
	rep.SkylineSize = len(sky)
	ev.SetResults(len(sky))
	c.inner.events.Record(*ev)
	return sky, rep, nil
}

// shardSkyline asks one fresh replica of the shard's owning group for
// the (optionally range-filtered) shard skyline, retrying inside the
// group with the shard's policy and hedging to another member. When a
// replica answers shard-moved — the query raced a rebalance — the loop
// re-reads the shard map (the handoff updates it before dropping the
// source) and re-routes; every address keeps exactly one owner at
// every version, so convergence takes one hop per concurrent move.
func (c *Cluster) shardSkyline(ctx context.Context, sid int, rng zorder.Range, filter bool) (plan.Group, error) {
	pol := c.shardPolicy(sid)
	const maxHops = 4
	for hop := 0; ; hop++ {
		members, version := c.freshMembers(sid)
		if len(members) == 0 {
			return plan.Group{}, fmt.Errorf("dist: shard %d: %w", sid, ErrShardDown)
		}
		args := ShardSkyArgs{RuleID: c.ruleID, MapVersion: version, ShardID: sid}
		if filter {
			args.Lo, args.Hi = rng.Lo, rng.Hi
		}
		var reply ShardSkyReply
		sp, ev, done := c.inner.startRPC(ctx, "Worker.ShardSkyline")
		served, err := c.callShard(ctx, pol, "Worker.ShardSkyline", args, &reply, members, sp, ev)
		if err == nil {
			done(served, nil)
			return reply.Group, nil
		}
		done(served, err)
		if classify(err) == classShardMoved && hop < maxHops {
			continue
		}
		return plan.Group{}, err
	}
}

// callShard is the group-restricted analogue of Coordinator.call:
// retries rotate over the pool members only, hedge legs stay inside
// the pool, and exhaustion of the pool (all members dead) is
// ErrShardDown rather than ErrClusterDown.
func (c *Cluster) callShard(ctx context.Context, pol *policy, method string, args transport.Marshaler, reply transport.Unmarshaler, pool []int, sp *obs.Span, ev *obs.Event) (int, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return -1, err
		}
		w, err := c.pickLiveIn(ctx, pool, attempt)
		if err != nil {
			if lastErr != nil {
				return -1, fmt.Errorf("dist: %s: %v: %w", method, lastErr, err)
			}
			return -1, fmt.Errorf("dist: %s: %w", method, err)
		}
		served, err := c.inner.attempt(ctx, method, args, reply, w,
			callOpts{pol: pol, hedge: true, pool: pool, sp: sp, ev: ev})
		ev.SetAttempts(attempt + 1)
		if err == nil {
			return served, nil
		}
		lastErr = err
		class := classify(err)
		c.inner.reg.Counter("zsky_dist_rpc_errors_total",
			obs.L("method", method), obs.L("class", className(class))).Add(1)
		if class == classFatal || class == classShardMoved || ctx.Err() != nil {
			return served, err
		}
		if class == classRuleMissing && served >= 0 {
			if rerr := c.inner.resendRule(ctx, served); rerr != nil {
				c.inner.markSuspect(served)
			}
		}
		if attempt >= pol.retries {
			return served, fmt.Errorf("dist: %s: attempts exhausted: %w", method, lastErr)
		}
		c.inner.reg.Counter("zsky_dist_retries_total", obs.L("method", method)).Add(1)
		sleep(ctx, c.inner.bo.delay(pol, attempt))
	}
}

// pickLiveIn returns a live worker from pool, rotating by rotation,
// waiting out windows where members are suspect/resurrecting. It fails
// with ErrShardDown once every pool member is confirmed dead.
func (c *Cluster) pickLiveIn(ctx context.Context, pool []int, rotation int) (int, error) {
	in := c.inner
	for {
		in.mu.Lock()
		if in.closed {
			in.mu.Unlock()
			return -1, errCoordinatorClosed
		}
		for i := 0; i < len(pool); i++ {
			w := pool[(rotation+i)%len(pool)]
			if in.state[w] == wsLive {
				in.mu.Unlock()
				return w, nil
			}
		}
		allDead := true
		for _, w := range pool {
			if in.state[w] != wsDead {
				allDead = false
				break
			}
		}
		if allDead {
			in.mu.Unlock()
			return -1, ErrShardDown
		}
		ch := in.changed
		in.mu.Unlock()
		select {
		case <-ctx.Done():
			return -1, ctx.Err()
		case <-ch:
		}
	}
}

// ShardStats collects every reachable worker's resident shard
// inventory, keyed by worker address — the raw data behind skydist
// -shard-report. Unreachable workers are skipped.
func (c *Cluster) ShardStats(ctx context.Context) map[string]ShardStatsReply {
	out := make(map[string]ShardStatsReply)
	for w, addr := range c.inner.addrs {
		var reply ShardStatsReply
		if _, err := c.inner.attempt(ctx, "Worker.ShardStats", ShardStatsArgs{}, &reply, w, callOpts{}); err == nil {
			out[addr] = reply
		}
	}
	return out
}
