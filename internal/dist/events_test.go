package dist

import (
	"context"
	"strings"
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/obs"
)

// TestQueryAndRPCEvents runs one distributed query and checks the
// event log holds exactly one "query" record plus the "rpc" records it
// caused, all joined on the query's request ID.
func TestQueryAndRPCEvents(t *testing.T) {
	addrs := startCluster(t, 2)
	cfg := DefaultCoordinatorConfig()
	cfg.M = 4
	cfg.SampleRatio = 0.05
	coord, err := NewCoordinator(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ds := gen.Synthetic(gen.AntiCorrelated, 2000, 3, 11)
	ctx := obs.ContextWithRequestID(context.Background(), "test-query-1")
	sky, _, err := coord.Skyline(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}

	events := coord.Events().Snapshot()
	var query *obs.Event
	rpcs := 0
	methods := map[string]int{}
	for i := range events {
		ev := events[i]
		switch ev.Kind {
		case "query":
			if ev.ID != "test-query-1" {
				t.Errorf("query event id = %q, want test-query-1", ev.ID)
			}
			if query != nil {
				t.Error("more than one query event")
			}
			query = &events[i]
		case "rpc":
			if ev.Parent != "test-query-1" {
				t.Errorf("rpc event %s parent = %q, want test-query-1", ev.Route, ev.Parent)
			}
			if ev.Worker == "" || ev.Attempts < 1 {
				t.Errorf("rpc event missing worker/attempts: %+v", ev)
			}
			methods[ev.Route]++
			rpcs++
		default:
			t.Errorf("unexpected event kind %q", ev.Kind)
		}
	}
	if query == nil {
		t.Fatal("no query event recorded")
	}
	if query.Results != len(sky) {
		t.Errorf("query event results = %d, want %d", query.Results, len(sky))
	}
	if query.Dominance != "pareto" || !strings.HasPrefix(query.Query, "skyline:n=2000") {
		t.Errorf("query event shape = %q dominance = %q", query.Query, query.Dominance)
	}
	for _, phase := range []string{"preprocess", "phase2", "phase3"} {
		if _, ok := query.Phases[phase]; !ok {
			t.Errorf("query event missing phase %s: %v", phase, query.Phases)
		}
	}
	if query.WireSentBytes <= 0 || query.WireRecvBytes <= 0 {
		t.Errorf("query event wire bytes = %d/%d, want > 0",
			query.WireSentBytes, query.WireRecvBytes)
	}
	if rpcs == 0 {
		t.Fatal("no rpc events recorded")
	}
	// Every phase's RPC method shows up: the rule broadcast, maps,
	// reduces, and the merge.
	for _, m := range []string{"Worker.LoadRule", "Worker.MapChunk", "Worker.ReduceGroup", "Worker.MergeGroups"} {
		if methods[m] == 0 {
			t.Errorf("no rpc events for %s (got %v)", m, methods)
		}
	}
}

// TestEventsWithoutRequestID checks a bare coordinator run mints its
// own request ID so rpc events still join to the query.
func TestEventsWithoutRequestID(t *testing.T) {
	addrs := startCluster(t, 1)
	cfg := DefaultCoordinatorConfig()
	cfg.M = 2
	cfg.SampleRatio = 0.05
	log := obs.NewEventLog(64)
	cfg.Events = log
	coord, err := NewCoordinator(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if coord.Events() != log {
		t.Fatal("config-supplied event log not used")
	}

	ds := gen.Synthetic(gen.Independent, 500, 2, 3)
	if _, _, err := coord.Skyline(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	var queryID string
	for _, ev := range log.Snapshot() {
		if ev.Kind == "query" {
			queryID = ev.ID
		}
	}
	if queryID == "" {
		t.Fatal("no query event / generated request ID")
	}
	for _, ev := range log.Snapshot() {
		if ev.Kind == "rpc" && ev.Parent != queryID {
			t.Errorf("rpc event %s parent = %q, want %q", ev.Route, ev.Parent, queryID)
		}
	}
}

// TestRPCEventErrorsForced kills the cluster's only worker and checks
// the failed query run leaves error-classed events that bypassed
// sampling.
func TestRPCEventErrorsForced(t *testing.T) {
	ws, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultCoordinatorConfig()
	cfg.M = 2
	cfg.SampleRatio = 0.05
	cfg.Retries = 1
	cfg.RedialInterval = -1 // no resurrection: first failure is final
	coord, err := NewCoordinator(cfg, []string{ws.Addr()})
	if err != nil {
		ws.Close()
		t.Fatal(err)
	}
	defer coord.Close()
	// Sample hard so only forced (error) records can land.
	coord.Events().SetSampleEvery(1 << 20)
	ws.Close()

	ds := gen.Synthetic(gen.Independent, 500, 2, 3)
	if _, _, err := coord.Skyline(context.Background(), ds); err == nil {
		t.Fatal("skyline succeeded against a dead cluster")
	}
	events := coord.Events().Snapshot()
	if len(events) == 0 {
		t.Fatal("no events recorded for the failed run")
	}
	for _, ev := range events {
		if ev.Error == "" {
			t.Errorf("sampled-away event recorded without error: %+v", ev)
		}
	}
	var sawQuery bool
	for _, ev := range events {
		if ev.Kind == "query" && ev.Error != "" {
			sawQuery = true
		}
	}
	if !sawQuery {
		t.Error("failed run left no error-classed query event")
	}
}
