package dist

import (
	"context"
	"testing"
	"time"

	"zskyline/internal/dominance"
	"zskyline/internal/gen"
	"zskyline/internal/seq"
)

// Per provider, a distributed run under injected faults (a severed
// reduce plus a straggling merge, exercising retry, resurrection, and
// the rule re-broadcast that carries the dominance descriptor) must
// return exactly the sequential reference result.
func TestProvidersUnderFaults(t *testing.T) {
	const d = 4
	w1 := []float64{1, 1, 1, 1}
	w2 := []float64{3, 1, 1, 1}
	descs := []dominance.Descriptor{
		{},
		{Kind: dominance.KindFlex, Weights: [][]float64{w1, w2}},
		{Kind: dominance.KindKDom, K: 3},
		{Kind: dominance.KindRobust, Rho: 0.05},
	}
	ds := gen.Synthetic(gen.AntiCorrelated, 6000, d, 29)

	for _, desc := range descs {
		prov, err := desc.Provider()
		if err != nil {
			t.Fatal(err)
		}
		t.Run(prov.Name(), func(t *testing.T) {
			dying := NewFaultPlan(FaultRule{Method: "Worker.ReduceGroup", Nth: 2, Action: FaultSever})
			slow := NewFaultPlan(FaultRule{Method: "Worker.MergeGroups", Nth: 1, Action: FaultDelay, Delay: 100 * time.Millisecond})
			var addrs []string
			for _, p := range []*FaultPlan{dying, slow, nil} {
				ws, err := StartWorkerWithFaults("127.0.0.1:0", p)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { ws.Close() })
				addrs = append(addrs, ws.Addr())
			}
			cfg := ftConfig()
			cfg.TreeMerge = true
			cfg.Dominance = desc
			coord, err := NewCoordinator(cfg, addrs)
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()

			got, _, err := coord.Skyline(context.Background(), ds)
			if err != nil {
				t.Fatal(err)
			}
			want := seq.SkylineUnder(prov, ds.Points, nil)
			sameSet(t, got, want, "skyline under faults")
			if dying.Injected() == 0 {
				t.Fatal("sever fault never fired; test exercised nothing")
			}
		})
	}
}
