package dist

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"zskyline/internal/codec"
	"zskyline/internal/gen"
	"zskyline/internal/point"
	"zskyline/internal/seq"
)

// startCluster spins up n workers on ephemeral ports and returns their
// addresses plus a cleanup func.
func startCluster(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ws, err := StartWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ws.Close() })
		addrs[i] = ws.Addr()
	}
	return addrs
}

func sameSet(t *testing.T, got, want []point.Point, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d", label, len(got), len(want))
	}
	g := append([]point.Point(nil), got...)
	w := append([]point.Point(nil), want...)
	point.SortLexicographic(g)
	point.SortLexicographic(w)
	for i := range g {
		if !g[i].Equal(w[i]) {
			t.Fatalf("%s: [%d] = %v, want %v", label, i, g[i], w[i])
		}
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(DefaultCoordinatorConfig(), nil); err == nil {
		t.Error("no workers accepted")
	}
	cfg := DefaultCoordinatorConfig()
	cfg.M = 0
	if _, err := NewCoordinator(cfg, []string{"127.0.0.1:1"}); err == nil {
		t.Error("bad config accepted")
	}
	// Dead address fails fast.
	if _, err := NewCoordinator(DefaultCoordinatorConfig(), []string{"127.0.0.1:1"}); err == nil {
		t.Error("dead worker accepted")
	}
}

func TestDistributedSkylineExact(t *testing.T) {
	addrs := startCluster(t, 3)
	for _, dist := range []gen.Distribution{gen.Independent, gen.Correlated, gen.AntiCorrelated} {
		ds := gen.Synthetic(dist, 5000, 4, 17)
		want := seq.SB(ds.Points, nil)
		cfg := DefaultCoordinatorConfig()
		cfg.M = 8
		cfg.SampleRatio = 0.05
		cfg.ChunkSize = 700
		coord, err := NewCoordinator(cfg, addrs)
		if err != nil {
			t.Fatal(err)
		}
		got, rep, err := coord.Skyline(context.Background(), ds)
		coord.Close()
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		sameSet(t, got, want, dist.String())
		if rep.Candidates < len(want) || rep.Groups < 1 {
			t.Errorf("%v: report %+v", dist, rep)
		}
		if rep.Filtered == 0 {
			t.Errorf("%v: SZB filter never fired over TCP", dist)
		}
	}
}

func TestDistributedHeuristicAndSB(t *testing.T) {
	addrs := startCluster(t, 2)
	ds := gen.Synthetic(gen.AntiCorrelated, 3000, 3, 5)
	want := seq.SB(ds.Points, nil)
	cfg := DefaultCoordinatorConfig()
	cfg.M = 4
	cfg.SampleRatio = 0.1
	cfg.Heuristic = true
	cfg.UseZS = false
	coord, err := NewCoordinator(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	got, _, err := coord.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "zhg+sb over tcp")
}

func TestRuleCaching(t *testing.T) {
	addrs := startCluster(t, 1)
	cfg := DefaultCoordinatorConfig()
	cfg.M = 4
	cfg.SampleRatio = 0.2
	coord, err := NewCoordinator(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ds := gen.Synthetic(gen.Independent, 1000, 3, 1)
	if _, _, err := coord.Skyline(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	// Second run broadcasts a new rule id; both must work.
	got, _, err := coord.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, seq.SB(ds.Points, nil), "second run")
}

func TestEmptyDataset(t *testing.T) {
	addrs := startCluster(t, 1)
	coord, err := NewCoordinator(DefaultCoordinatorConfig(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	sky, rep, err := coord.Skyline(context.Background(), &point.Dataset{Dims: 2})
	if err != nil || len(sky) != 0 || rep == nil {
		t.Fatalf("empty: %v %v %v", sky, rep, err)
	}
}

func TestUnknownRuleRejected(t *testing.T) {
	ws, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	var reply MapReply
	w := ws.worker
	if err := w.MapChunk(MapArgs{RuleID: 999}, &reply); err == nil {
		t.Error("unknown rule accepted")
	}
}

func TestManyWorkersLargeData(t *testing.T) {
	if testing.Short() {
		t.Skip("large distributed run")
	}
	addrs := startCluster(t, 6)
	ds := gen.Synthetic(gen.Independent, 40000, 5, 77)
	want := seq.SB(ds.Points, nil)
	cfg := DefaultCoordinatorConfig()
	cfg.M = 16
	coord, err := NewCoordinator(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	got, rep, err := coord.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "6 workers 40k")
	if rep.Workers != 6 {
		t.Errorf("workers = %d", rep.Workers)
	}
}

// A worker dying between queries must not fail subsequent queries: its
// tasks fail over to the survivors.
func TestWorkerFailover(t *testing.T) {
	var servers []*WorkerServer
	var addrs []string
	for i := 0; i < 3; i++ {
		ws, err := StartWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, ws)
		addrs = append(addrs, ws.Addr())
	}
	defer func() {
		for _, ws := range servers {
			ws.Close()
		}
	}()
	cfg := DefaultCoordinatorConfig()
	cfg.M = 4
	cfg.SampleRatio = 0.1
	cfg.ChunkSize = 200
	coord, err := NewCoordinator(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ds := gen.Synthetic(gen.AntiCorrelated, 3000, 3, 7)
	want := seq.SB(ds.Points, nil)
	got, _, err := coord.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "before failure")

	// Kill one worker; the coordinator must still answer exactly.
	servers[1].Close()
	got, rep, err := coord.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatalf("query after worker death: %v", err)
	}
	sameSet(t, got, want, "after failure")
	_ = rep
}

// With every worker dead the query must fail, not hang.
func TestAllWorkersDead(t *testing.T) {
	ws, err := StartWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultCoordinatorConfig()
	cfg.M = 4
	cfg.SampleRatio = 0.2
	coord, err := NewCoordinator(cfg, []string{ws.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ws.Close()
	ds := gen.Synthetic(gen.Independent, 500, 2, 1)
	if _, _, err := coord.Skyline(context.Background(), ds); err == nil {
		t.Fatal("query succeeded with no live workers")
	}
}

func TestTreeMergeExact(t *testing.T) {
	addrs := startCluster(t, 3)
	ds := gen.Synthetic(gen.AntiCorrelated, 6000, 4, 31)
	want := seq.SB(ds.Points, nil)
	cfg := DefaultCoordinatorConfig()
	cfg.M = 16
	cfg.SampleRatio = 0.05
	cfg.TreeMerge = true
	coord, err := NewCoordinator(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	got, rep, err := coord.Skyline(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "tree merge")
	if rep.Groups < 3 {
		t.Skipf("only %d groups; reduction path barely exercised", rep.Groups)
	}
}

func TestSkylineFileStreaming(t *testing.T) {
	addrs := startCluster(t, 2)
	ds := gen.Synthetic(gen.AntiCorrelated, 12000, 4, 41)
	want := seq.SB(ds.Points, nil)
	path := filepath.Join(t.TempDir(), "stream.zsky")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.WriteBinary(f, ds); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg := DefaultCoordinatorConfig()
	cfg.M = 8
	cfg.SampleRatio = 0.05
	cfg.ChunkSize = 900
	coord, err := NewCoordinator(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	got, rep, err := coord.SkylineFile(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "file streaming")
	if rep.Filtered == 0 || rep.Candidates < len(want) {
		t.Errorf("report: %+v", rep)
	}
	// Missing file errors cleanly.
	if _, _, err := coord.SkylineFile(context.Background(), "/nope.zsky"); err == nil {
		t.Error("missing file accepted")
	}
}
