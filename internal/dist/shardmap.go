package dist

import (
	"fmt"

	"zskyline/internal/partition"
	"zskyline/internal/zorder"
)

// ShardAssign assigns one shard — a contiguous Z-range — to a worker
// group. The ID is stable across rebalances: a handoff changes a
// shard's Group but never its ID, so routing state (per-shard locks,
// stale-replica sets, metrics series) survives ownership changes.
type ShardAssign struct {
	// ID is the shard's stable identifier.
	ID int
	// Group is the index of the worker group that owns the shard's
	// Z-range in this map version.
	Group int
}

// ShardMap is the versioned ownership table of the sharded tier: the
// Z-order curve cut into len(Shards) contiguous ranges, each assigned
// to a worker group. It rides the rule broadcast (RuleBlob.Shards), so
// the same path that re-installs rules on resurrected workers also
// re-installs current ownership, and it is the unit the rolling
// handoff swaps: a rebalance streams a shard's data to its successor
// group, then publishes a map whose Version is one higher.
//
// Shards[i] owns the half-open Z-range [Cuts[i-1], Cuts[i]) (the first
// and last ranges extend to the curve's ends). Because the ranges come
// from one sorted cut list, every Z-address has exactly one owner by
// construction, at every version.
type ShardMap struct {
	// Version orders map revisions; workers ignore installs that would
	// move their version backward.
	Version uint64
	// Words is the Z-address width in uint64 words.
	Words int
	// Cuts are the len(Shards)-1 strictly increasing cut addresses.
	Cuts [][]uint64
	// Shards assigns each range, in curve order, to a worker group.
	Shards []ShardAssign
}

// Empty reports whether the map carries no shards — the state of a
// RuleBlob from the unsharded tier.
func (m ShardMap) Empty() bool { return len(m.Shards) == 0 }

// NumShards returns the shard count.
func (m ShardMap) NumShards() int { return len(m.Shards) }

// Validate checks structural soundness: cuts strictly increasing and of
// the declared width, one more shard than cuts, IDs unique, groups
// within [0, groups).
func (m ShardMap) Validate(groups int) error {
	if m.Empty() {
		return fmt.Errorf("dist: shard map has no shards")
	}
	if len(m.Cuts) != len(m.Shards)-1 {
		return fmt.Errorf("dist: shard map has %d cuts for %d shards", len(m.Cuts), len(m.Shards))
	}
	if _, err := m.table(); err != nil {
		return err
	}
	ids := map[int]bool{}
	for _, s := range m.Shards {
		if ids[s.ID] {
			return fmt.Errorf("dist: duplicate shard id %d", s.ID)
		}
		ids[s.ID] = true
		if s.Group < 0 || s.Group >= groups {
			return fmt.Errorf("dist: shard %d assigned to group %d of %d", s.ID, s.Group, groups)
		}
	}
	return nil
}

// table compiles the cut list into a range table.
func (m ShardMap) table() (*partition.RangeTable, error) {
	cuts := make([]zorder.ZAddr, len(m.Cuts))
	for i, c := range m.Cuts {
		cuts[i] = zorder.ZAddr(c)
	}
	return partition.NewRangeTable(m.Words, cuts)
}

// Range returns the Z-range shard index i owns.
func (m ShardMap) Range(i int) zorder.Range {
	var r zorder.Range
	if i > 0 {
		r.Lo = zorder.ZAddr(m.Cuts[i-1])
	}
	if i < len(m.Cuts) {
		r.Hi = zorder.ZAddr(m.Cuts[i])
	}
	return r
}

// IndexOf returns the index of the shard with the given stable ID, or
// -1.
func (m ShardMap) IndexOf(shardID int) int {
	for i, s := range m.Shards {
		if s.ID == shardID {
			return i
		}
	}
	return -1
}

// Clone deep-copies the map.
func (m ShardMap) Clone() ShardMap {
	out := ShardMap{Version: m.Version, Words: m.Words,
		Shards: append([]ShardAssign(nil), m.Shards...)}
	out.Cuts = make([][]uint64, len(m.Cuts))
	for i, c := range m.Cuts {
		out.Cuts[i] = append([]uint64(nil), c...)
	}
	return out
}

// WithOwner returns a copy of the map with shard index i reassigned to
// group and the version bumped — the map a completed handoff publishes.
func (m ShardMap) WithOwner(i, group int) ShardMap {
	out := m.Clone()
	out.Shards[i].Group = group
	out.Version = m.Version + 1
	return out
}

// UniformShardMap builds version 1 of an n-shard map over words-wide
// addresses: the curve's leading 64 bits split into n equal prefixes,
// shards assigned to the groups round-robin. Data-driven cuts can be
// supplied instead through ClusterConfig.Cuts.
func UniformShardMap(words, n, groups int) ShardMap {
	m := ShardMap{Version: 1, Words: words}
	for _, c := range partition.UniformCuts(words, n) {
		m.Cuts = append(m.Cuts, c)
	}
	for i := 0; i < n; i++ {
		m.Shards = append(m.Shards, ShardAssign{ID: i, Group: i % groups})
	}
	return m
}
