// handlers.go: the route bodies. Query routes run against one engine
// snapshot through the versioned result cache and behind per-dataset
// admission control; management routes (create/delete/ingest/
// snapshot/restore/subscribe) bypass both.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"zskyline/internal/obs"
	"zskyline/internal/point"
)

// preferTerm is one element of the /query preference list.
type preferTerm struct {
	Attr string `json:"attr"`
	Dir  string `json:"dir"`
}

// queryRequest is the /query body.
type queryRequest struct {
	Prefer []preferTerm `json:"prefer"`
}

// explainRequest is the /explain body.
type explainRequest struct {
	Point []float64 `json:"point"`
}

// topkRequest is the /topk body.
type topkRequest struct {
	K       int       `json:"k"`
	Weights []float64 `json:"weights"`
}

// ingestRequest is the /ingest body.
type ingestRequest struct {
	Points [][]float64 `json:"points"`
}

// cachedJSON serves one query route through e's versioned result
// cache: on a hit the marshaled body is replayed verbatim (X-Cache:
// hit); on a miss compute runs against snap, and its 200 body is
// stored under a key no future version can collide with.
func (s *Service) cachedJSON(w http.ResponseWriter, r *http.Request, e *Engine, snap engineSnap, shape string, compute func() (v any, results int, err error)) {
	ev := tagEvent(r, e, snap.version)
	ev.SetQuery(shape)
	key := shape + "|" + e.desc.String() + "|v" + strconv.FormatUint(snap.version, 10)
	if blob, results, ok := e.cache.Get(key); ok {
		s.reg.Counter("zsky_cache_hits_total", obs.L("dataset", e.name)).Add(1)
		ev.SetCache("hit")
		ev.SetResults(results)
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(blob)
		return
	}
	s.reg.Counter("zsky_cache_misses_total", obs.L("dataset", e.name)).Add(1)
	ev.SetCache("miss")
	v, results, err := compute()
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	blob, err := json.Marshal(v)
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, err)
		return
	}
	blob = append(blob, '\n')
	ev.SetResults(results)
	e.cache.Put(key, blob, results)
	w.Header().Set("X-Cache", "miss")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(blob)
}

// ---- dataset management ----

func (s *Service) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	engines := s.datasets.List()
	infos := make([]DatasetInfo, len(engines))
	for i, e := range engines {
		infos[i] = e.Info()
	}
	obs.EventFrom(r.Context()).SetResults(len(infos))
	writeJSON(w, http.StatusOK, map[string]any{"count": len(infos), "datasets": infos})
}

func (s *Service) handleCreateDataset(w http.ResponseWriter, r *http.Request) {
	var spec DatasetSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	e, err := s.CreateDataset(spec)
	if err != nil {
		status := http.StatusBadRequest
		if s.datasets.Get(spec.Name) != nil {
			status = http.StatusConflict
		}
		writeErr(w, r, status, err)
		return
	}
	tagEvent(r, e, 0)
	writeJSON(w, http.StatusCreated, e.Info())
}

func (s *Service) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.DropDataset(name) {
		writeErr(w, r, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return
	}
	obs.EventFrom(r.Context()).SetDataset(name)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": name})
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request, e *Engine) {
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	pts := make([]point.Point, len(req.Points))
	for i, row := range req.Points {
		if len(row) != e.dims {
			writeErr(w, r, http.StatusBadRequest,
				fmt.Errorf("point %d has %d dims, dataset %q has %d", i, len(row), e.name, e.dims))
			return
		}
		pts[i] = point.Point(row)
	}
	added, err := s.ingest(r, e, point.BlockOf(e.dims, pts))
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	snap := e.snapshot()
	ev := tagEvent(r, e, snap.version)
	ev.SetQuery(fmt.Sprintf("ingest:n=%d", len(pts)))
	ev.SetResults(added)
	writeJSON(w, http.StatusOK, map[string]any{
		"ingested":    len(pts),
		"on_skyline":  added,
		"version":     snap.version,
		"sky_version": snap.skyVersion,
		"points":      snap.seen,
		"skyline":     len(snap.sky),
	})
}

// ---- health ----

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request, e *Engine) {
	snap := e.snapshot()
	tagEvent(r, e, snap.version)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"dataset":     e.name,
		"points":      snap.seen,
		"dims":        e.dims,
		"attrs":       e.attrs,
		"dominance":   e.desc.String(),
		"version":     snap.version,
		"sky_version": snap.skyVersion,
	})
}

// ---- queries ----

func (s *Service) handleSkyline(w http.ResponseWriter, r *http.Request, e *Engine) {
	release, ok := s.admit(w, r, e)
	if !ok {
		return
	}
	defer release()
	snap := e.snapshot()
	s.cachedJSON(w, r, e, snap, "skyline", func() (any, int, error) {
		sp, _ := obs.StartSpan(r.Context(), "solve")
		defer sp.End()
		return map[string]any{"count": len(snap.sky), "points": snap.sky}, len(snap.sky), nil
	})
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request, e *Engine) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	if len(req.Prefer) == 0 {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("no preferences"))
		return
	}
	cols, shape, err := e.resolvePrefs(req.Prefer)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	release, ok := s.admit(w, r, e)
	if !ok {
		return
	}
	defer release()
	snap := e.snapshot()
	s.cachedJSON(w, r, e, snap, "query:"+shape, func() (any, int, error) {
		sp, _ := obs.StartSpan(r.Context(), "solve")
		rows := queryRows(snap.data, cols)
		sp.End()
		return map[string]any{"count": len(rows), "rows": rows}, len(rows), nil
	})
}

func (s *Service) handleExplain(w http.ResponseWriter, r *http.Request, e *Engine) {
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	if len(req.Point) != e.dims {
		writeErr(w, r, http.StatusBadRequest,
			fmt.Errorf("point has %d dims, want %d", len(req.Point), e.dims))
		return
	}
	release, ok := s.admit(w, r, e)
	if !ok {
		return
	}
	defer release()
	snap := e.snapshot()
	shape := "explain:" + point.Point(req.Point).String()
	s.cachedJSON(w, r, e, snap, shape, func() (any, int, error) {
		sp, _ := obs.StartSpan(r.Context(), "solve")
		doms := e.dominatorsOf(snap, point.Point(req.Point))
		sp.End()
		return map[string]any{
			"dominated":  len(doms) > 0,
			"dominators": doms,
		}, len(doms), nil
	})
}

func (s *Service) handleTopK(w http.ResponseWriter, r *http.Request, e *Engine) {
	var req topkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	if req.K < 1 {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("k must be positive"))
		return
	}
	if len(req.Weights) != e.dims {
		writeErr(w, r, http.StatusBadRequest,
			fmt.Errorf("weights have %d dims, want %d", len(req.Weights), e.dims))
		return
	}
	release, ok := s.admit(w, r, e)
	if !ok {
		return
	}
	defer release()
	snap := e.snapshot()
	shape := fmt.Sprintf("topk:k=%d:w=%v", req.K, req.Weights)
	s.cachedJSON(w, r, e, snap, shape, func() (any, int, error) {
		sp, _ := obs.StartSpan(r.Context(), "solve")
		top, err := e.topK(snap, req.K, req.Weights)
		sp.End()
		if err != nil {
			return nil, 0, err
		}
		return map[string]any{"results": top}, len(top), nil
	})
}

// ---- snapshot / restore ----

func (s *Service) handleSnapshot(w http.ResponseWriter, r *http.Request, e *Engine) {
	snap := e.snapshot()
	tagEvent(r, e, snap.version)
	if e.m == nil {
		writeErr(w, r, http.StatusBadRequest,
			fmt.Errorf("dataset %q is windowed; snapshots are unsupported", e.name))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="`+e.name+`.zsnap"`)
	if err := e.Save(w); err != nil {
		// Headers are gone; the truncated stream is the best signal left.
		obs.EventFrom(r.Context()).SetError("internal", err.Error())
	}
}

func (s *Service) handleRestore(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.datasets.Get(name) != nil {
		writeErr(w, r, http.StatusConflict, fmt.Errorf("dataset %q already exists", name))
		return
	}
	e, err := restoreEngine(name, r.Body, s.cfg.Bits, s.cfg.CacheSize, s.cfg.MaxInFlight)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	if err := s.datasets.Add(e); err != nil {
		writeErr(w, r, http.StatusConflict, err)
		return
	}
	s.reg.Gauge("zsky_datasets").Set(float64(s.datasets.Len()))
	snap := e.snapshot()
	ds := obs.L("dataset", e.name)
	s.reg.Gauge("zsky_dataset_points", ds).Set(float64(snap.seen))
	s.reg.Gauge("zsky_skyline_size", ds).Set(float64(len(snap.sky)))
	tagEvent(r, e, snap.version)
	writeJSON(w, http.StatusCreated, e.Info())
}

// ---- subscribe ----

// handleSubscribe long-polls for skyline changes: ?since=N returns
// immediately when the engine's skyline version already exceeds N,
// otherwise blocks until a change, ?wait= (default 25s), or client
// disconnect, then reports the current state.
func (s *Service) handleSubscribe(w http.ResponseWriter, r *http.Request, e *Engine) {
	since := uint64(0)
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, r, http.StatusBadRequest, fmt.Errorf("bad since: %v", err))
			return
		}
		since = n
	}
	wait := 25 * time.Second
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeErr(w, r, http.StatusBadRequest, fmt.Errorf("bad wait %q", v))
			return
		}
		wait = d
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		ch := e.waitChan() // grab the channel BEFORE reading the version
		snap := e.snapshot()
		if snap.skyVersion > since {
			ev := tagEvent(r, e, snap.version)
			ev.SetQuery(fmt.Sprintf("subscribe:since=%d", since))
			ev.SetResults(len(snap.sky))
			writeJSON(w, http.StatusOK, map[string]any{
				"dataset":     e.name,
				"version":     snap.version,
				"sky_version": snap.skyVersion,
				"changed":     true,
				"count":       len(snap.sky),
				"points":      snap.sky,
			})
			return
		}
		select {
		case <-ch:
			// Skyline changed; loop to re-read.
		case <-deadline.C:
			ev := tagEvent(r, e, snap.version)
			ev.SetQuery(fmt.Sprintf("subscribe:since=%d", since))
			writeJSON(w, http.StatusOK, map[string]any{
				"dataset":     e.name,
				"version":     snap.version,
				"sky_version": snap.skyVersion,
				"changed":     false,
				"count":       len(snap.sky),
				"points":      []point.Point{},
			})
			return
		case <-r.Context().Done():
			return
		}
	}
}
