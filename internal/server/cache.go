package server

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU of marshaled JSON response bodies, one
// per dataset. Keys embed the dataset version (plus route, canonical
// query shape, and dominance descriptor — see cacheKey), so an entry
// can never be served against newer data: an ingest bumps the version
// and every subsequent lookup misses. Purge on ingest only reclaims
// memory early; correctness comes from the versioned key.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	blob []byte
	// results is the response's result count, replayed onto the event
	// record on a hit.
	results int
}

// newResultCache builds a cache holding up to max entries; max <= 0
// disables caching (every Get misses, Put is a no-op).
func newResultCache(max int) *resultCache {
	c := &resultCache{max: max}
	if max > 0 {
		c.ll = list.New()
		c.items = make(map[string]*list.Element)
	}
	return c
}

// Get returns the cached body and result count for key, marking it
// most recently used.
func (c *resultCache) Get(key string) (body []byte, results int, ok bool) {
	if c.max <= 0 {
		return nil, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.items[key]
	if !found {
		return nil, 0, false
	}
	c.ll.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	return ent.blob, ent.results, true
}

// Put stores body under key, evicting the least recently used entry
// when full. Callers must not mutate body afterwards.
func (c *resultCache) Put(key string, body []byte, results int) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.blob, ent.results = body, results
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, blob: body, results: results})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Purge drops every entry (called on ingest, scoped to one dataset's
// cache).
func (c *resultCache) Purge() {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

// Len returns the number of live entries.
func (c *resultCache) Len() int {
	if c.max <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
