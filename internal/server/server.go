// Package server exposes skyline engines over HTTP as a multi-tenant
// JSON query service. A Service hosts any number of named datasets,
// each an independently versioned Engine (incrementally maintained
// skyline, or a sliding window) with its own dominance relation,
// result cache, and admission limit:
//
//	GET    /datasets                      list datasets
//	POST   /datasets                      create a dataset (DatasetSpec)
//	DELETE /datasets/{name}               drop a dataset
//	GET    /datasets/{name}/healthz       liveness + shape + version
//	POST   /datasets/{name}/ingest        {"points":[[...],...]} merge a batch
//	GET    /datasets/{name}/skyline       the full skyline
//	POST   /datasets/{name}/query         {"prefer":[{"attr":"price","dir":"min"},...]}
//	POST   /datasets/{name}/explain       {"point":[...]} -> dominators
//	POST   /datasets/{name}/topk          {"k":5,"weights":[...]} -> ranked skyline
//	GET    /datasets/{name}/snapshot      binary state snapshot
//	POST   /datasets/{name}/restore       recreate a dataset from a snapshot
//	GET    /datasets/{name}/subscribe     long-poll for skyline changes
//
// The pre-multi-tenant routes (GET /healthz, GET /skyline, POST
// /query, POST /explain, POST /topk) stay mounted and serve the
// dataset named "default", with their JSON contracts unchanged.
//
// Query responses are cached per dataset under a key embedding the
// dataset version, the canonical query shape, and the dominance
// descriptor, so ingest can never cause a stale read; saturated
// datasets reject queries with 429 + Retry-After instead of queueing.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"zskyline/internal/obs"
	"zskyline/internal/point"
)

// DefaultDataset is the dataset name the legacy single-dataset routes
// resolve to.
const DefaultDataset = "default"

// Config tunes a Service.
type Config struct {
	// Bits is the default Z-order resolution for new datasets (16 when
	// zero).
	Bits int
	// CacheSize bounds each dataset's result cache in entries; 0 means
	// the default (256), negative disables caching.
	CacheSize int
	// MaxInFlight bounds concurrently executing queries per dataset; 0
	// means the default (64), negative means unlimited.
	MaxInFlight int
}

func (c Config) withDefaults() Config {
	if c.Bits <= 0 {
		c.Bits = 16
	}
	switch {
	case c.CacheSize == 0:
		c.CacheSize = 256
	case c.CacheSize < 0:
		c.CacheSize = 0
	}
	switch {
	case c.MaxInFlight == 0:
		c.MaxInFlight = 64
	case c.MaxInFlight < 0:
		c.MaxInFlight = 0
	}
	return c
}

// Service hosts the dataset registry and the shared observability
// surface (one metrics registry and one event log across datasets;
// series carry a dataset label).
type Service struct {
	cfg      Config
	datasets *Registry
	reg      *obs.Registry
	events   *obs.EventLog

	// slow is the latency threshold past which a request's sampled
	// trace is promoted onto its event record.
	slow time.Duration
	// accessLog, when non-nil, receives one structured JSON line per
	// request.
	accessLog   io.Writer
	accessLogMu sync.Mutex
}

// Server is the Service's historical name; the alias keeps existing
// call sites (server.New + methods) compiling unchanged.
type Server = Service

// NewService builds an empty multi-dataset service.
func NewService(cfg Config) *Service {
	return &Service{
		cfg:      cfg.withDefaults(),
		datasets: NewRegistry(),
		reg:      obs.NewRegistry(),
		events:   obs.NewEventLog(0),
		slow:     250 * time.Millisecond,
	}
}

// New builds a service hosting ds as the "default" dataset — the
// legacy single-dataset constructor. The skyline is built eagerly
// here, at load time, so the first query pays no build cliff.
func New(attrs []string, ds *point.Dataset, bits int) (*Service, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("server: empty dataset")
	}
	if len(attrs) != ds.Dims {
		return nil, fmt.Errorf("server: %d attrs for %d dims", len(attrs), ds.Dims)
	}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		return nil, err
	}
	s := NewService(Config{Bits: bits})
	e, err := s.CreateDataset(DatasetSpec{
		Name:  DefaultDataset,
		Attrs: attrs,
		Bits:  bits,
		Mins:  mins,
		Maxs:  maxs,
	})
	if err != nil {
		return nil, err
	}
	if _, err := s.Ingest(e, point.BlockOf(ds.Dims, ds.Points)); err != nil {
		return nil, err
	}
	return s, nil
}

// CreateDataset validates spec, builds its engine, and registers it.
func (s *Service) CreateDataset(spec DatasetSpec) (*Engine, error) {
	e, err := newEngine(spec, s.cfg.Bits, s.cfg.CacheSize, s.cfg.MaxInFlight)
	if err != nil {
		return nil, err
	}
	if err := s.datasets.Add(e); err != nil {
		return nil, err
	}
	s.reg.Gauge("zsky_datasets").Set(float64(s.datasets.Len()))
	return e, nil
}

// DropDataset removes the named dataset, reporting whether it existed.
func (s *Service) DropDataset(name string) bool {
	ok := s.datasets.Delete(name)
	if ok {
		s.reg.Gauge("zsky_datasets").Set(float64(s.datasets.Len()))
	}
	return ok
}

// Dataset returns the named engine, or nil.
func (s *Service) Dataset(name string) *Engine { return s.datasets.Get(name) }

// Ingest merges a block into e, eagerly rebuilding its skyline, and
// refreshes the dataset's gauges (points, skyline size, build time)
// and the absorbed dominance-work counters.
func (s *Service) Ingest(e *Engine, b point.Block) (added int, err error) {
	return s.ingest(nil, e, b)
}

func (s *Service) ingest(r *http.Request, e *Engine, b point.Block) (added int, err error) {
	ctx := contextOf(r)
	start := time.Now()
	added, _, err = e.IngestBlock(ctx, b)
	dur := time.Since(start)
	if err != nil {
		return added, err
	}
	snap := e.snapshot()
	ds := obs.L("dataset", e.name)
	s.reg.Counter("zsky_ingest_rows_total", ds).Add(int64(b.Len()))
	s.reg.Gauge("zsky_dataset_points", ds).Set(float64(snap.seen))
	s.reg.Gauge("zsky_skyline_size", ds).Set(float64(len(snap.sky)))
	s.reg.Gauge("zsky_skyline_build_seconds", ds).Set(dur.Seconds())
	s.reg.AbsorbTally(e.tallyDelta())
	return added, nil
}

// contextOf tolerates the request-free ingest path.
func contextOf(r *http.Request) context.Context {
	if r != nil {
		return r.Context()
	}
	return context.Background()
}

// Metrics returns the service's observability registry (request
// counters, latency histograms, per-dataset gauges, cache and
// admission counters, and the absorbed dominance-work tally).
func (s *Service) Metrics() *obs.Registry { return s.reg }

// Events returns the per-query event log (also served at GET
// /debug/events, filterable by ?dataset=).
func (s *Service) Events() *obs.EventLog { return s.events }

// SetSlowThreshold sets the latency past which a request's trace is
// promoted onto its event record; 0 disables promotion.
func (s *Service) SetSlowThreshold(d time.Duration) { s.slow = d }

// SetEventSampling keeps one in every n query events (errors and slow
// queries are always kept).
func (s *Service) SetEventSampling(n int) { s.events.SetSampleEvery(n) }

// SetEventCapacity replaces the event ring with one holding the last
// n events. Call before Handler — the routes capture the ring.
func (s *Service) SetEventCapacity(n int) { s.events = obs.NewEventLog(n) }

// SetAccessLog directs one structured JSON line per request (request
// ID, route, status, duration) to w; nil disables access logging.
func (s *Service) SetAccessLog(w io.Writer) { s.accessLog = w }

// Handler returns the HTTP routes, each instrumented with request
// counters, latency quantiles, per-request tracing, and event-log
// records, plus GET /metrics (Prometheus text) and GET /debug/events.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		mux.Handle(pattern, s.reg.InstrumentHandler(name, s.observe(name, h)))
	}
	// Legacy single-dataset surface -> the "default" dataset.
	route("GET /healthz", "/healthz", s.forDefault(s.handleHealth))
	route("GET /skyline", "/skyline", s.forDefault(s.handleSkyline))
	route("POST /query", "/query", s.forDefault(s.handleQuery))
	route("POST /explain", "/explain", s.forDefault(s.handleExplain))
	route("POST /topk", "/topk", s.forDefault(s.handleTopK))
	// Multi-tenant surface.
	route("GET /datasets", "/datasets", s.handleListDatasets)
	route("POST /datasets", "/datasets", s.handleCreateDataset)
	route("DELETE /datasets/{name}", "/datasets/{name}", s.handleDeleteDataset)
	route("GET /datasets/{name}/healthz", "/datasets/{name}/healthz", s.forNamed(s.handleHealth))
	route("POST /datasets/{name}/ingest", "/datasets/{name}/ingest", s.forNamed(s.handleIngest))
	route("GET /datasets/{name}/skyline", "/datasets/{name}/skyline", s.forNamed(s.handleSkyline))
	route("POST /datasets/{name}/query", "/datasets/{name}/query", s.forNamed(s.handleQuery))
	route("POST /datasets/{name}/explain", "/datasets/{name}/explain", s.forNamed(s.handleExplain))
	route("POST /datasets/{name}/topk", "/datasets/{name}/topk", s.forNamed(s.handleTopK))
	route("GET /datasets/{name}/snapshot", "/datasets/{name}/snapshot", s.forNamed(s.handleSnapshot))
	route("POST /datasets/{name}/restore", "/datasets/{name}/restore", s.handleRestore)
	route("GET /datasets/{name}/subscribe", "/datasets/{name}/subscribe", s.forNamed(s.handleSubscribe))
	mux.Handle("GET /metrics", s.reg.PrometheusHandler())
	mux.Handle("GET /debug/events", s.events.Handler())
	return mux
}

// engineHandler is a route handler bound to one resolved dataset.
type engineHandler func(w http.ResponseWriter, r *http.Request, e *Engine)

// forDefault resolves the legacy routes to the "default" dataset.
func (s *Service) forDefault(h engineHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e := s.datasets.Get(DefaultDataset)
		if e == nil {
			writeErr(w, r, http.StatusNotFound, fmt.Errorf("no %q dataset", DefaultDataset))
			return
		}
		h(w, r, e)
	}
}

// forNamed resolves {name} from the path.
func (s *Service) forNamed(h engineHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		e := s.datasets.Get(name)
		if e == nil {
			writeErr(w, r, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
			return
		}
		h(w, r, e)
	}
}

// respRecorder captures the response status for the event record and
// the access log (obs.InstrumentHandler keeps its own; this one feeds
// the layers it cannot see).
type respRecorder struct {
	http.ResponseWriter
	status int
}

func (r *respRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *respRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *respRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// observe wraps a route with the query-level observability layer:
//
//   - a request ID (client-supplied X-Request-Id or generated),
//     returned in the X-Request-Id response header and propagated via
//     context so plan spans and downstream RPCs join the query;
//   - a per-request trace whose top-level child spans become the
//     event's phase walls, promoted in full onto the event when the
//     request is slower than the slow threshold;
//   - a structured Event in the ring (errors and slow queries are
//     recorded unsampled), carrying the dataset identity ("name@vN"),
//     dominance descriptor, and cache outcome set by the handler;
//   - a per-(route, dataset) latency quantile family and one
//     access-log line.
func (s *Service) observe(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		ev := &obs.Event{
			ID:    id,
			Kind:  "query",
			Route: route,
		}
		tr := obs.NewTrace(route)
		tr.Root().SetAttr("request_id", id)
		ctx := obs.ContextWithRequestID(r.Context(), id)
		ctx = obs.ContextWithTrace(ctx, tr)
		ctx = obs.ContextWithEvent(ctx, ev)
		rec := &respRecorder{ResponseWriter: w, status: http.StatusOK}

		h(rec, r.WithContext(ctx))

		dur := time.Since(start)
		tr.Finish()
		ev.Status = rec.status
		ev.DurationMS = float64(dur.Microseconds()) / 1000
		for _, phase := range tr.Root().Children() {
			ev.SetPhase(phase.Name(), phase.Duration())
		}
		if rec.status >= 500 && ev.Error == "" {
			ev.SetError("internal", http.StatusText(rec.status))
		}
		slow := s.slow > 0 && dur >= s.slow
		if slow {
			ev.Trace = obs.Report(tr, nil)
		}
		if slow || ev.Error != "" {
			s.events.RecordForced(*ev)
		} else {
			s.events.Record(*ev)
		}
		labels := []obs.Label{obs.L("route", route)}
		if ds := ev.DatasetName(); ds != "" {
			labels = append(labels, obs.L("dataset", ds))
		}
		s.reg.Latency("zsky_query_seconds", labels...).Observe(dur)
		s.logAccess(id, route, rec.status, dur)
	}
}

// logAccess emits one structured line per request.
func (s *Service) logAccess(id, route string, status int, dur time.Duration) {
	if s.accessLog == nil {
		return
	}
	line, err := json.Marshal(map[string]any{
		"time":        time.Now().Format(time.RFC3339Nano),
		"id":          id,
		"route":       route,
		"status":      status,
		"duration_ms": float64(dur.Microseconds()) / 1000,
	})
	if err != nil {
		return
	}
	s.accessLogMu.Lock()
	s.accessLog.Write(append(line, '\n'))
	s.accessLogMu.Unlock()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr reports an error to the client and classifies it on the
// request's event record.
func writeErr(w http.ResponseWriter, r *http.Request, status int, err error) {
	class := "internal"
	switch {
	case status == http.StatusTooManyRequests:
		class = "saturated"
	case status == http.StatusNotFound:
		class = "not-found"
	case status < 500:
		class = "bad-request"
	}
	obs.EventFrom(r.Context()).SetError(class, err.Error())
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// admit reserves an in-flight slot on e, rejecting with 429 +
// Retry-After when the dataset is saturated. Callers must invoke the
// returned release func (when ok) once the query completes.
func (s *Service) admit(w http.ResponseWriter, r *http.Request, e *Engine) (release func(), ok bool) {
	release, ok = e.tryAcquire()
	if !ok {
		s.reg.Counter("zsky_admission_rejects_total", obs.L("dataset", e.name)).Add(1)
		w.Header().Set("Retry-After", "1")
		writeErr(w, r, http.StatusTooManyRequests,
			fmt.Errorf("dataset %q is saturated; retry shortly", e.name))
		return nil, false
	}
	return release, true
}

// tagEvent stamps the request's event with the dataset identity and
// dominance descriptor at the served version.
func tagEvent(r *http.Request, e *Engine, version uint64) *obs.Event {
	ev := obs.EventFrom(r.Context())
	ev.SetDataset(e.name + "@v" + strconv.FormatUint(version, 10))
	if ev != nil {
		ev.Dominance = e.desc.String()
	}
	return ev
}

// Engines returns the registered engines sorted by name.
func (s *Service) Engines() []*Engine { return s.datasets.List()
}
