// Package server exposes a loaded dataset over HTTP as a small JSON
// query service — the shape in which a skyline engine is typically
// consumed by applications:
//
//	GET  /healthz            liveness + dataset shape
//	GET  /skyline            the full skyline
//	POST /query              {"prefer":[{"attr":"price","dir":"min"},...]}
//	POST /explain            {"point":[...]} -> dominators of the point
//	POST /topk               {"k":5,"weights":[...]} -> ranked skyline
//
// The handler set is stateless over an immutable dataset + index, so
// it is safe under concurrent requests.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"zskyline/internal/metrics"
	"zskyline/internal/obs"
	"zskyline/internal/point"
	"zskyline/internal/rank"
	"zskyline/internal/seq"
	"zskyline/internal/zbtree"
	"zskyline/internal/zorder"
)

// Server answers skyline queries over one relation.
type Server struct {
	attrs []string
	index map[string]int
	ds    *point.Dataset
	enc   *zorder.Encoder
	tree  *zbtree.Tree
	tally *metrics.Tally
	reg   *obs.Registry

	once sync.Once
	sky  []point.Point
}

// New builds a server over a named-attribute dataset.
func New(attrs []string, ds *point.Dataset, bits int) (*Server, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("server: empty dataset")
	}
	if len(attrs) != ds.Dims {
		return nil, fmt.Errorf("server: %d attrs for %d dims", len(attrs), ds.Dims)
	}
	idx := map[string]int{}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("server: empty attribute name at %d", i)
		}
		if _, dup := idx[a]; dup {
			return nil, fmt.Errorf("server: duplicate attribute %q", a)
		}
		idx[a] = i
	}
	if bits <= 0 {
		bits = 16
	}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		return nil, err
	}
	enc, err := zorder.NewEncoder(ds.Dims, bits, mins, maxs)
	if err != nil {
		return nil, err
	}
	tally := &metrics.Tally{}
	reg := obs.NewRegistry()
	buildStart := time.Now()
	tree := zbtree.BuildFromPoints(enc, 0, ds.Points, tally)
	reg.Gauge("zsky_index_build_seconds").Set(time.Since(buildStart).Seconds())
	reg.Gauge("zsky_dataset_points").Set(float64(ds.Len()))
	return &Server{
		attrs: attrs,
		index: idx,
		ds:    ds,
		enc:   enc,
		tree:  tree,
		tally: tally,
		reg:   reg,
	}, nil
}

// Metrics returns the server's observability registry (request
// counters, latency histograms, index/skyline build stats, and the
// absorbed pipeline tally).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Handler returns the HTTP routes, each instrumented with request
// counters and latency histograms, plus GET /metrics serving the
// registry in Prometheus text format.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		mux.Handle(pattern, s.reg.InstrumentHandler(name, h))
	}
	route("GET /healthz", "/healthz", s.handleHealth)
	route("GET /skyline", "/skyline", s.handleSkyline)
	route("POST /query", "/query", s.handleQuery)
	route("POST /explain", "/explain", s.handleExplain)
	route("POST /topk", "/topk", s.handleTopK)
	mux.Handle("GET /metrics", s.reg.PrometheusHandler())
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"points": s.ds.Len(),
		"dims":   s.ds.Dims,
		"attrs":  s.attrs,
	})
}

// fullSkyline computes (once) and caches the all-min skyline,
// recording the build duration and the tally work it cost into the
// metrics registry.
func (s *Server) fullSkyline() []point.Point {
	s.once.Do(func() {
		before := s.tally.Snapshot()
		start := time.Now()
		s.sky = s.tree.Skyline()
		s.reg.Gauge("zsky_skyline_build_seconds").Set(time.Since(start).Seconds())
		s.reg.Gauge("zsky_skyline_size").Set(float64(len(s.sky)))
		// The delta is the Z-search work; concurrent /query traffic on
		// the shared tally can bleed in, which we accept for a one-shot
		// recording.
		s.reg.AbsorbTally(s.tally.Snapshot().Sub(before))
	})
	return s.sky
}

func (s *Server) handleSkyline(w http.ResponseWriter, _ *http.Request) {
	sky := s.fullSkyline()
	writeJSON(w, http.StatusOK, map[string]any{"count": len(sky), "points": sky})
}

// queryRequest is the /query body.
type queryRequest struct {
	Prefer []struct {
		Attr string `json:"attr"`
		Dir  string `json:"dir"`
	} `json:"prefer"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Prefer) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("no preferences"))
		return
	}
	type col struct {
		idx    int
		negate bool
	}
	var cols []col
	for _, p := range req.Prefer {
		i, ok := s.index[p.Attr]
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown attribute %q", p.Attr))
			return
		}
		switch p.Dir {
		case "min":
			cols = append(cols, col{i, false})
		case "max":
			cols = append(cols, col{i, true})
		case "ignore":
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("direction %q (want min|max|ignore)", p.Dir))
			return
		}
	}
	if len(cols) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("every attribute ignored"))
		return
	}
	// Project and solve.
	proj := make([]point.Point, s.ds.Len())
	for r0, row := range s.ds.Points {
		p := make(point.Point, len(cols))
		for k, c := range cols {
			v := row[c.idx]
			if c.negate {
				v = -v
			}
			p[k] = v
		}
		proj[r0] = p
	}
	sky := seq.SB(proj, s.tally)
	// Map back to rows (duplicates consume matching rows).
	byKey := map[string][]int{}
	for i, p := range proj {
		byKey[p.String()] = append(byKey[p.String()], i)
	}
	var rows []int
	for _, p := range sky {
		k := p.String()
		ids := byKey[k]
		if len(ids) > 0 {
			rows = append(rows, ids[0])
			byKey[k] = ids[1:]
		}
	}
	sort.Ints(rows)
	writeJSON(w, http.StatusOK, map[string]any{"count": len(rows), "rows": rows})
}

// explainRequest is the /explain body.
type explainRequest struct {
	Point []float64 `json:"point"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Point) != s.ds.Dims {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("point has %d dims, want %d", len(req.Point), s.ds.Dims))
		return
	}
	e := zbtree.NewEntry(s.enc, point.Point(req.Point))
	doms := s.tree.DominatorsOf(e.G, e.P)
	writeJSON(w, http.StatusOK, map[string]any{
		"dominated":  len(doms) > 0,
		"dominators": doms,
	})
}

// topkRequest is the /topk body.
type topkRequest struct {
	K       int       `json:"k"`
	Weights []float64 `json:"weights"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.K < 1 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("k must be positive"))
		return
	}
	if len(req.Weights) != s.ds.Dims {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("weights have %d dims, want %d", len(req.Weights), s.ds.Dims))
		return
	}
	score, err := rank.WeightedSum(req.Weights)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	top := rank.TopKByScore(s.fullSkyline(), req.K, score)
	writeJSON(w, http.StatusOK, map[string]any{"results": top})
}
