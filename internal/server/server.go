// Package server exposes a loaded dataset over HTTP as a small JSON
// query service — the shape in which a skyline engine is typically
// consumed by applications:
//
//	GET  /healthz            liveness + dataset shape
//	GET  /skyline            the full skyline
//	POST /query              {"prefer":[{"attr":"price","dir":"min"},...]}
//	POST /explain            {"point":[...]} -> dominators of the point
//	POST /topk               {"k":5,"weights":[...]} -> ranked skyline
//
// The handler set is stateless over an immutable dataset + index, so
// it is safe under concurrent requests.
package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"zskyline/internal/dominance"
	"zskyline/internal/metrics"
	"zskyline/internal/obs"
	"zskyline/internal/point"
	"zskyline/internal/rank"
	"zskyline/internal/seq"
	"zskyline/internal/zbtree"
	"zskyline/internal/zorder"
)

// Server answers skyline queries over one relation.
type Server struct {
	attrs   []string
	index   map[string]int
	ds      *point.Dataset
	enc     *zorder.Encoder
	tree    *zbtree.Tree
	tally   *metrics.Tally
	reg     *obs.Registry
	events  *obs.EventLog
	version string

	// slow is the latency threshold past which a request's sampled
	// trace is promoted onto its event record.
	slow time.Duration
	// accessLog, when non-nil, receives one structured JSON line per
	// request.
	accessLog   io.Writer
	accessLogMu sync.Mutex

	once sync.Once
	sky  []point.Point
}

// New builds a server over a named-attribute dataset.
func New(attrs []string, ds *point.Dataset, bits int) (*Server, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("server: empty dataset")
	}
	if len(attrs) != ds.Dims {
		return nil, fmt.Errorf("server: %d attrs for %d dims", len(attrs), ds.Dims)
	}
	idx := map[string]int{}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("server: empty attribute name at %d", i)
		}
		if _, dup := idx[a]; dup {
			return nil, fmt.Errorf("server: duplicate attribute %q", a)
		}
		idx[a] = i
	}
	if bits <= 0 {
		bits = 16
	}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		return nil, err
	}
	enc, err := zorder.NewEncoder(ds.Dims, bits, mins, maxs)
	if err != nil {
		return nil, err
	}
	tally := &metrics.Tally{}
	reg := obs.NewRegistry()
	buildStart := time.Now()
	tree := zbtree.BuildFromPoints(enc, 0, ds.Points, tally)
	reg.Gauge("zsky_index_build_seconds").Set(time.Since(buildStart).Seconds())
	reg.Gauge("zsky_dataset_points").Set(float64(ds.Len()))
	return &Server{
		attrs:   attrs,
		index:   idx,
		ds:      ds,
		enc:     enc,
		tree:    tree,
		tally:   tally,
		reg:     reg,
		events:  obs.NewEventLog(0),
		version: datasetVersion(ds, mins, maxs),
		slow:    250 * time.Millisecond,
	}, nil
}

// datasetVersion fingerprints the loaded relation (size, shape, and
// bounds) so event records from different datasets — or a future
// reloaded one — are distinguishable.
func datasetVersion(ds *point.Dataset, mins, maxs []float64) string {
	h := fnv.New32a()
	fmt.Fprintf(h, "%d:%d", ds.Len(), ds.Dims)
	for i := range mins {
		fmt.Fprintf(h, ":%g:%g", mins[i], maxs[i])
	}
	return fmt.Sprintf("v-%08x", h.Sum32())
}

// Metrics returns the server's observability registry (request
// counters, latency histograms, index/skyline build stats, and the
// absorbed pipeline tally).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Events returns the server's per-query event log (also served at
// GET /debug/events).
func (s *Server) Events() *obs.EventLog { return s.events }

// SetSlowThreshold sets the latency past which a request's trace is
// promoted onto its event record; 0 disables promotion.
func (s *Server) SetSlowThreshold(d time.Duration) { s.slow = d }

// SetEventSampling keeps one in every n query events (errors and slow
// queries are always kept).
func (s *Server) SetEventSampling(n int) { s.events.SetSampleEvery(n) }

// SetEventCapacity replaces the event ring with one holding the last
// n events. Call before Handler — the routes capture the ring.
func (s *Server) SetEventCapacity(n int) { s.events = obs.NewEventLog(n) }

// SetAccessLog directs one structured JSON line per request (request
// ID, route, status, duration) to w; nil disables access logging.
func (s *Server) SetAccessLog(w io.Writer) { s.accessLog = w }

// Handler returns the HTTP routes, each instrumented with request
// counters, latency quantiles, per-request tracing, and event-log
// records, plus GET /metrics (Prometheus text) and GET /debug/events
// (the per-query event log).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		mux.Handle(pattern, s.reg.InstrumentHandler(name, s.observe(name, h)))
	}
	route("GET /healthz", "/healthz", s.handleHealth)
	route("GET /skyline", "/skyline", s.handleSkyline)
	route("POST /query", "/query", s.handleQuery)
	route("POST /explain", "/explain", s.handleExplain)
	route("POST /topk", "/topk", s.handleTopK)
	mux.Handle("GET /metrics", s.reg.PrometheusHandler())
	mux.Handle("GET /debug/events", s.events.Handler())
	return mux
}

// respRecorder captures the response status for the event record and
// the access log (obs.InstrumentHandler keeps its own; this one feeds
// the layers it cannot see).
type respRecorder struct {
	http.ResponseWriter
	status int
}

func (r *respRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *respRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *respRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// observe wraps a route with the query-level observability layer:
//
//   - a request ID (client-supplied X-Request-Id or generated),
//     returned in the X-Request-Id response header and propagated via
//     context so plan spans and downstream RPCs join the query;
//   - a per-request trace whose top-level child spans become the
//     event's phase walls, promoted in full onto the event when the
//     request is slower than the slow threshold;
//   - a structured Event in the ring (errors and slow queries are
//     recorded unsampled);
//   - a per-route latency quantile family and one access-log line.
func (s *Server) observe(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		ev := &obs.Event{
			ID:        id,
			Kind:      "query",
			Route:     route,
			Dominance: dominance.Descriptor{}.String(),
			Dataset:   s.version,
		}
		tr := obs.NewTrace(route)
		tr.Root().SetAttr("request_id", id)
		ctx := obs.ContextWithRequestID(r.Context(), id)
		ctx = obs.ContextWithTrace(ctx, tr)
		ctx = obs.ContextWithEvent(ctx, ev)
		rec := &respRecorder{ResponseWriter: w, status: http.StatusOK}

		h(rec, r.WithContext(ctx))

		dur := time.Since(start)
		tr.Finish()
		ev.Status = rec.status
		ev.DurationMS = float64(dur.Microseconds()) / 1000
		for _, phase := range tr.Root().Children() {
			ev.SetPhase(phase.Name(), phase.Duration())
		}
		if rec.status >= 500 && ev.Error == "" {
			ev.SetError("internal", http.StatusText(rec.status))
		}
		slow := s.slow > 0 && dur >= s.slow
		if slow {
			ev.Trace = obs.Report(tr, nil)
		}
		if slow || ev.Error != "" {
			s.events.RecordForced(*ev)
		} else {
			s.events.Record(*ev)
		}
		s.reg.Latency("zsky_query_seconds", obs.L("route", route)).Observe(dur)
		s.logAccess(id, route, rec.status, dur)
	}
}

// logAccess emits one structured line per request.
func (s *Server) logAccess(id, route string, status int, dur time.Duration) {
	if s.accessLog == nil {
		return
	}
	line, err := json.Marshal(map[string]any{
		"time":        time.Now().Format(time.RFC3339Nano),
		"id":          id,
		"route":       route,
		"status":      status,
		"duration_ms": float64(dur.Microseconds()) / 1000,
	})
	if err != nil {
		return
	}
	s.accessLogMu.Lock()
	s.accessLog.Write(append(line, '\n'))
	s.accessLogMu.Unlock()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr reports an error to the client and classifies it on the
// request's event record.
func writeErr(w http.ResponseWriter, r *http.Request, status int, err error) {
	class := "internal"
	if status < 500 {
		class = "bad-request"
	}
	obs.EventFrom(r.Context()).SetError(class, err.Error())
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"points": s.ds.Len(),
		"dims":   s.ds.Dims,
		"attrs":  s.attrs,
	})
}

// fullSkyline computes (once) and caches the all-min skyline,
// recording the build duration and the tally work it cost into the
// metrics registry.
func (s *Server) fullSkyline() []point.Point {
	s.once.Do(func() {
		before := s.tally.Snapshot()
		start := time.Now()
		s.sky = s.tree.Skyline()
		s.reg.Gauge("zsky_skyline_build_seconds").Set(time.Since(start).Seconds())
		s.reg.Gauge("zsky_skyline_size").Set(float64(len(s.sky)))
		// The delta is the Z-search work; concurrent /query traffic on
		// the shared tally can bleed in, which we accept for a one-shot
		// recording.
		s.reg.AbsorbTally(s.tally.Snapshot().Sub(before))
	})
	return s.sky
}

func (s *Server) handleSkyline(w http.ResponseWriter, r *http.Request) {
	sp, _ := obs.StartSpan(r.Context(), "solve")
	sky := s.fullSkyline()
	sp.End()
	ev := obs.EventFrom(r.Context())
	ev.SetQuery("skyline")
	ev.SetResults(len(sky))
	writeJSON(w, http.StatusOK, map[string]any{"count": len(sky), "points": sky})
}

// queryRequest is the /query body.
type queryRequest struct {
	Prefer []struct {
		Attr string `json:"attr"`
		Dir  string `json:"dir"`
	} `json:"prefer"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	if len(req.Prefer) == 0 {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("no preferences"))
		return
	}
	type col struct {
		idx    int
		negate bool
	}
	var cols []col
	var shape strings.Builder
	for _, p := range req.Prefer {
		i, ok := s.index[p.Attr]
		if !ok {
			writeErr(w, r, http.StatusBadRequest, fmt.Errorf("unknown attribute %q", p.Attr))
			return
		}
		switch p.Dir {
		case "min":
			cols = append(cols, col{i, false})
		case "max":
			cols = append(cols, col{i, true})
		case "ignore":
			continue
		default:
			writeErr(w, r, http.StatusBadRequest, fmt.Errorf("direction %q (want min|max|ignore)", p.Dir))
			return
		}
		if shape.Len() > 0 {
			shape.WriteByte(',')
		}
		shape.WriteString(p.Attr + ":" + p.Dir)
	}
	if len(cols) == 0 {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("every attribute ignored"))
		return
	}
	obs.EventFrom(r.Context()).SetQuery(shape.String())
	// Project and solve.
	projSpan, _ := obs.StartSpan(r.Context(), "project")
	proj := make([]point.Point, s.ds.Len())
	for r0, row := range s.ds.Points {
		p := make(point.Point, len(cols))
		for k, c := range cols {
			v := row[c.idx]
			if c.negate {
				v = -v
			}
			p[k] = v
		}
		proj[r0] = p
	}
	projSpan.End()
	solveSpan, _ := obs.StartSpan(r.Context(), "solve")
	sky := seq.SB(proj, s.tally)
	solveSpan.End()
	// Map back to rows (duplicates consume matching rows).
	byKey := map[string][]int{}
	for i, p := range proj {
		byKey[p.String()] = append(byKey[p.String()], i)
	}
	var rows []int
	for _, p := range sky {
		k := p.String()
		ids := byKey[k]
		if len(ids) > 0 {
			rows = append(rows, ids[0])
			byKey[k] = ids[1:]
		}
	}
	sort.Ints(rows)
	obs.EventFrom(r.Context()).SetResults(len(rows))
	writeJSON(w, http.StatusOK, map[string]any{"count": len(rows), "rows": rows})
}

// explainRequest is the /explain body.
type explainRequest struct {
	Point []float64 `json:"point"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	if len(req.Point) != s.ds.Dims {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("point has %d dims, want %d", len(req.Point), s.ds.Dims))
		return
	}
	sp, _ := obs.StartSpan(r.Context(), "solve")
	e := zbtree.NewEntry(s.enc, point.Point(req.Point))
	doms := s.tree.DominatorsOf(e.G, e.P)
	sp.End()
	ev := obs.EventFrom(r.Context())
	ev.SetQuery("explain")
	ev.SetResults(len(doms))
	writeJSON(w, http.StatusOK, map[string]any{
		"dominated":  len(doms) > 0,
		"dominators": doms,
	})
}

// topkRequest is the /topk body.
type topkRequest struct {
	K       int       `json:"k"`
	Weights []float64 `json:"weights"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	if req.K < 1 {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("k must be positive"))
		return
	}
	if len(req.Weights) != s.ds.Dims {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("weights have %d dims, want %d", len(req.Weights), s.ds.Dims))
		return
	}
	score, err := rank.WeightedSum(req.Weights)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	sp, _ := obs.StartSpan(r.Context(), "solve")
	top := rank.TopKByScore(s.fullSkyline(), req.K, score)
	sp.End()
	ev := obs.EventFrom(r.Context())
	ev.SetQuery(fmt.Sprintf("topk:k=%d", req.K))
	ev.SetResults(len(top))
	writeJSON(w, http.StatusOK, map[string]any{"results": top})
}
