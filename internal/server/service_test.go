package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zskyline/internal/point"
	"zskyline/internal/seq"
)

func newTestService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := NewService(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func mustCreate(t *testing.T, url string, spec DatasetSpec) {
	t.Helper()
	b, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/datasets", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("create %s: %d %s", spec.Name, resp.StatusCode, body)
	}
}

func mustIngest(t *testing.T, url, name string, pts [][]float64) map[string]any {
	t.Helper()
	b, _ := json.Marshal(map[string]any{"points": pts})
	resp, err := http.Post(url+"/datasets/"+name+"/ingest", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest into %s: %d %v", name, resp.StatusCode, out)
	}
	return out
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

// TestMultiTenantLifecycle drives two concurrently served datasets
// with different dominance relations through create, ingest, query,
// list, and delete.
func TestMultiTenantLifecycle(t *testing.T) {
	_, ts := newTestService(t, Config{Bits: 10})
	mustCreate(t, ts.URL, DatasetSpec{Name: "hotels", Attrs: []string{"price", "distance"}})
	mustCreate(t, ts.URL, DatasetSpec{
		Name: "cars", Attrs: []string{"cost", "age"}, Dominance: "robust:0.2",
	})

	mustIngest(t, ts.URL, "hotels", [][]float64{{0.2, 0.8}, {0.8, 0.2}, {0.9, 0.9}})
	mustIngest(t, ts.URL, "cars", [][]float64{{0.5, 0.5}, {0.52, 0.51}, {0.1, 0.9}})

	// Each dataset answers from its own engine and relation.
	resp, sky := getJSON(t, ts.URL+"/datasets/hotels/skyline")
	if resp.StatusCode != 200 || int(sky["count"].(float64)) != 2 {
		t.Fatalf("hotels skyline = %v", sky)
	}
	resp, health := getJSON(t, ts.URL+"/datasets/cars/healthz")
	if resp.StatusCode != 200 || health["dominance"] != "robust:0.2" {
		t.Fatalf("cars healthz = %v", health)
	}

	resp, list := getJSON(t, ts.URL+"/datasets")
	if resp.StatusCode != 200 || int(list["count"].(float64)) != 2 {
		t.Fatalf("list = %v", list)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/datasets/cars", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != 200 {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	resp, _ = getJSON(t, ts.URL+"/datasets/cars/healthz")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted dataset still served: %d", resp.StatusCode)
	}
	resp, _ = getJSON(t, ts.URL+"/datasets/hotels/skyline")
	if resp.StatusCode != 200 {
		t.Fatalf("surviving dataset broken by delete: %d", resp.StatusCode)
	}
}

func TestCreateDatasetValidation(t *testing.T) {
	s, ts := newTestService(t, Config{})
	for _, spec := range []DatasetSpec{
		{Name: "", Attrs: []string{"a"}},
		{Name: "bad name", Attrs: []string{"a"}},
		{Name: "ok", Attrs: nil},
		{Name: "ok", Attrs: []string{"a", "a"}},
		{Name: "ok", Attrs: []string{"a", ""}},
		{Name: "ok", Attrs: []string{"a", "b"}, Dominance: "flex:1,2,3"},
		{Name: "ok", Attrs: []string{"a", "b"}, Dominance: "nope"},
		{Name: "ok", Attrs: []string{"a", "b"}, Mins: []float64{0}},
	} {
		b, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/datasets", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %+v accepted with %d", spec, resp.StatusCode)
		}
	}
	if s.datasets.Len() != 0 {
		t.Fatalf("invalid specs registered datasets: %d", s.datasets.Len())
	}
	mustCreate(t, ts.URL, DatasetSpec{Name: "ok", Attrs: []string{"a", "b"}})
	b, _ := json.Marshal(DatasetSpec{Name: "ok", Attrs: []string{"a", "b"}})
	resp, _ := http.Post(ts.URL+"/datasets", "application/json", bytes.NewReader(b))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: %d, want 409", resp.StatusCode)
	}
}

// TestCacheVersioning: a repeated identical query is a cache hit;
// ingest into one dataset invalidates that dataset's cached results
// only.
func TestCacheVersioning(t *testing.T) {
	_, ts := newTestService(t, Config{Bits: 10})
	for _, name := range []string{"a", "b"} {
		mustCreate(t, ts.URL, DatasetSpec{Name: name, Attrs: []string{"x", "y"}})
		mustIngest(t, ts.URL, name, [][]float64{{0.3, 0.7}, {0.7, 0.3}})
	}
	get := func(name string) (cache string, count int) {
		resp, out := getJSON(t, ts.URL+"/datasets/"+name+"/skyline")
		if resp.StatusCode != 200 {
			t.Fatalf("skyline %s: %d", name, resp.StatusCode)
		}
		return resp.Header.Get("X-Cache"), int(out["count"].(float64))
	}
	if c, _ := get("a"); c != "miss" {
		t.Fatalf("first query X-Cache = %q, want miss", c)
	}
	if c, _ := get("a"); c != "hit" {
		t.Fatalf("repeated query X-Cache = %q, want hit", c)
	}
	if c, _ := get("b"); c != "miss" {
		t.Fatalf("dataset b first query X-Cache = %q", c)
	}
	if c, _ := get("b"); c != "hit" {
		t.Fatalf("dataset b repeat X-Cache = %q", c)
	}

	// Ingest into a: its next query misses and sees the new point; b's
	// cache is untouched.
	mustIngest(t, ts.URL, "a", [][]float64{{0.1, 0.1}})
	c, n := get("a")
	if c != "miss" || n != 1 {
		t.Fatalf("post-ingest query = (%q, %d), want (miss, 1)", c, n)
	}
	if c, _ := get("b"); c != "hit" {
		t.Fatalf("ingest into a invalidated b's cache (X-Cache = %q)", c)
	}

	// The hit/miss counters are exposed per dataset.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`zsky_cache_hits_total{dataset="a"} 1`,
		`zsky_cache_misses_total{dataset="a"} 2`,
		`zsky_cache_hits_total{dataset="b"} 2`,
		`zsky_cache_misses_total{dataset="b"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestAdmissionControl: with every in-flight slot held, queries are
// rejected with 429 + Retry-After instead of queueing, and the
// rejection is counted and logged.
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestService(t, Config{MaxInFlight: 1})
	mustCreate(t, ts.URL, DatasetSpec{Name: "busy", Attrs: []string{"x", "y"}})
	mustIngest(t, ts.URL, "busy", [][]float64{{0.5, 0.5}})

	e := s.Dataset("busy")
	release, ok := e.tryAcquire()
	if !ok {
		t.Fatal("fresh engine saturated")
	}
	resp, out := getJSON(t, ts.URL+"/datasets/busy/skyline")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated query: %d %v, want 429", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	release()
	resp, _ = getJSON(t, ts.URL+"/datasets/busy/skyline")
	if resp.StatusCode != 200 {
		t.Fatalf("post-release query: %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(body), `zsky_admission_rejects_total{dataset="busy"} 1`) {
		t.Error("admission reject not counted")
	}
	found := false
	for _, ev := range s.Events().Snapshot() {
		if ev.Error == "saturated" && ev.Status == http.StatusTooManyRequests {
			found = true
		}
	}
	if !found {
		t.Error("saturated rejection not in event log")
	}
}

// TestSnapshotRestoreHTTP round-trips a non-Pareto dataset through
// GET /snapshot and POST /restore.
func TestSnapshotRestoreHTTP(t *testing.T) {
	_, ts := newTestService(t, Config{Bits: 10})
	mustCreate(t, ts.URL, DatasetSpec{
		Name: "src", Attrs: []string{"x", "y"}, Dominance: "flex:1,2;2,1",
	})
	mustIngest(t, ts.URL, "src", [][]float64{{0.2, 0.8}, {0.8, 0.2}, {0.5, 0.5}, {0.9, 0.9}})

	snapResp, err := http.Get(ts.URL + "/datasets/src/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(snapResp.Body)
	snapResp.Body.Close()
	if snapResp.StatusCode != 200 || len(blob) == 0 {
		t.Fatalf("snapshot: %d (%d bytes)", snapResp.StatusCode, len(blob))
	}

	restResp, err := http.Post(ts.URL+"/datasets/copy/restore", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, restResp.Body)
	restResp.Body.Close()
	if restResp.StatusCode != http.StatusCreated {
		t.Fatalf("restore: %d", restResp.StatusCode)
	}

	_, srcH := getJSON(t, ts.URL+"/datasets/src/healthz")
	_, cpH := getJSON(t, ts.URL+"/datasets/copy/healthz")
	if cpH["dominance"] != srcH["dominance"] || cpH["version"] != srcH["version"] {
		t.Fatalf("restored health = %v, want %v", cpH, srcH)
	}
	_, srcSky := getJSON(t, ts.URL+"/datasets/src/skyline")
	_, cpSky := getJSON(t, ts.URL+"/datasets/copy/skyline")
	if fmt.Sprint(srcSky["count"]) != fmt.Sprint(cpSky["count"]) {
		t.Fatalf("restored skyline %v, want %v", cpSky["count"], srcSky["count"])
	}

	// Windowed datasets refuse to snapshot.
	mustCreate(t, ts.URL, DatasetSpec{Name: "win", Attrs: []string{"x", "y"}, Window: 4})
	resp, _ := getJSON(t, ts.URL+"/datasets/win/snapshot")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("windowed snapshot: %d, want 400", resp.StatusCode)
	}
}

// TestWindowedDataset serves a sliding window: old points expire out
// of the served skyline.
func TestWindowedDataset(t *testing.T) {
	_, ts := newTestService(t, Config{Bits: 10})
	mustCreate(t, ts.URL, DatasetSpec{Name: "w", Attrs: []string{"x", "y"}, Window: 2})
	mustIngest(t, ts.URL, "w", [][]float64{{0.1, 0.1}}) // dominator
	mustIngest(t, ts.URL, "w", [][]float64{{0.4, 0.6}, {0.6, 0.4}})
	// Capacity 2: the dominator has expired; both dominated points serve.
	_, sky := getJSON(t, ts.URL+"/datasets/w/skyline")
	if int(sky["count"].(float64)) != 2 {
		t.Fatalf("windowed skyline = %v, want the 2 live points", sky)
	}
	_, health := getJSON(t, ts.URL+"/datasets/w/healthz")
	if health["points"].(float64) != 3 {
		t.Fatalf("windowed seen = %v, want 3", health["points"])
	}
}

// TestSubscribeLongPoll: a subscriber blocked on the current skyline
// version is woken by the next skyline-changing ingest.
func TestSubscribeLongPoll(t *testing.T) {
	_, ts := newTestService(t, Config{Bits: 10})
	mustCreate(t, ts.URL, DatasetSpec{Name: "live", Attrs: []string{"x", "y"}})
	mustIngest(t, ts.URL, "live", [][]float64{{0.5, 0.5}})

	// since=0 with sky_version 1: immediate.
	resp, out := getJSON(t, ts.URL+"/datasets/live/subscribe?since=0&wait=5s")
	if resp.StatusCode != 200 || out["changed"] != true || out["sky_version"].(float64) != 1 {
		t.Fatalf("immediate subscribe = %v", out)
	}

	// since=1: blocks until the dominating ingest below.
	type subResult struct {
		out map[string]any
		err error
	}
	ch := make(chan subResult, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/datasets/live/subscribe?since=1&wait=10s")
		if err != nil {
			ch <- subResult{nil, err}
			return
		}
		defer resp.Body.Close()
		var out map[string]any
		err = json.NewDecoder(resp.Body).Decode(&out)
		ch <- subResult{out, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park
	mustIngest(t, ts.URL, "live", [][]float64{{0.1, 0.1}})
	select {
	case res := <-ch:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if res.out["changed"] != true || res.out["sky_version"].(float64) != 2 || int(res.out["count"].(float64)) != 1 {
			t.Fatalf("woken subscribe = %v", res.out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber not woken by skyline change")
	}

	// A non-changing wait times out with changed=false.
	resp, out = getJSON(t, ts.URL+"/datasets/live/subscribe?since=2&wait=50ms")
	if resp.StatusCode != 200 || out["changed"] != false {
		t.Fatalf("timed-out subscribe = %v", out)
	}
}

// skySetKey canonicalizes a skyline point set for oracle membership
// checks.
func skySetKey(pts []point.Point) string {
	sorted := append([]point.Point(nil), pts...)
	point.SortLexicographic(sorted)
	var b strings.Builder
	for _, p := range sorted {
		b.WriteString(p.String())
		b.WriteByte('|')
	}
	return b.String()
}

// TestConcurrentIngestQueryOracle is the serving-tier torn-read test:
// one goroutine streams ingest blocks into a dataset while query
// goroutines hammer /skyline and /query over HTTP. Every response —
// cached or computed — must equal the brute-force oracle over some
// exact prefix of the ingest stream: no torn reads, and the cache
// never serves a version the data log has moved past without the
// response saying so. Run under -race.
func TestConcurrentIngestQueryOracle(t *testing.T) {
	s := NewService(Config{Bits: 10, MaxInFlight: -1})
	e, err := s.CreateDataset(DatasetSpec{Name: "race", Attrs: []string{"x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(1234))
	const nBlocks = 48
	const perBlock = 6
	blocks := make([]point.Block, nBlocks)
	var all []point.Point
	// validSky / validRows hold the oracle answers for every prefix of
	// the ingest stream (including the empty one).
	validSky := map[string]bool{skySetKey(nil): true}
	validRows := map[string]bool{fmt.Sprint([]int(nil)): true}
	cols := []prefCol{{0, false}, {1, false}}
	for i := range blocks {
		pts := make([]point.Point, perBlock)
		for j := range pts {
			pts[j] = point.Point{rng.Float64(), rng.Float64()}
		}
		blocks[i] = point.BlockOf(2, pts)
		all = append(all, pts...)
		validSky[skySetKey(seq.BruteForce(all))] = true
		validRows[fmt.Sprint(queryRows(point.BlockOf(2, all), cols))] = true
	}

	var ingested atomic.Bool
	go func() {
		for _, b := range blocks {
			if _, err := s.Ingest(e, b); err != nil {
				t.Error(err)
				break
			}
		}
		ingested.Store(true)
	}()

	queryBody, _ := json.Marshal(map[string]any{"prefer": []map[string]string{
		{"attr": "x", "dir": "min"}, {"attr": "y", "dir": "min"},
	}})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				if g%2 == 0 {
					resp, err := http.Get(ts.URL + "/datasets/race/skyline")
					if err != nil {
						t.Error(err)
						return
					}
					var out struct {
						Points []point.Point `json:"points"`
					}
					err = json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
					if err != nil {
						t.Error(err)
						return
					}
					if !validSky[skySetKey(out.Points)] {
						t.Errorf("skyline response matches no ingest prefix: %v", out.Points)
						return
					}
				} else {
					resp, err := http.Post(ts.URL+"/datasets/race/query", "application/json", bytes.NewReader(queryBody))
					if err != nil {
						t.Error(err)
						return
					}
					var out struct {
						Rows []int `json:"rows"`
					}
					err = json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
					if err != nil {
						t.Error(err)
						return
					}
					if !sort.IntsAreSorted(out.Rows) {
						t.Errorf("rows not sorted: %v", out.Rows)
						return
					}
					if !validRows[fmt.Sprint(out.Rows)] {
						t.Errorf("query rows match no ingest prefix: %v", out.Rows)
						return
					}
				}
				if ingested.Load() && i >= 25 {
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Converged state: the full-stream oracle, and a cache hit on
	// repeat.
	resp, err := http.Get(ts.URL + "/datasets/race/skyline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/datasets/race/skyline")
	if err != nil {
		t.Fatal(err)
	}
	var final struct {
		Points []point.Point `json:"points"`
	}
	json.NewDecoder(resp.Body).Decode(&final)
	resp.Body.Close()
	if resp.Header.Get("X-Cache") != "hit" {
		t.Error("settled repeat query not served from cache")
	}
	if skySetKey(final.Points) != skySetKey(seq.BruteForce(all)) {
		t.Fatalf("final skyline diverged from oracle: %d points, want %d",
			len(final.Points), len(seq.BruteForce(all)))
	}
	if got := e.Version(); got != nBlocks {
		t.Fatalf("final version = %d, want %d", got, nBlocks)
	}
}
