package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/point"
	"zskyline/internal/seq"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, *point.Dataset) {
	t.Helper()
	ds := gen.Synthetic(gen.AntiCorrelated, 1000, 3, 7)
	s, err := New([]string{"price", "distance", "noise"}, ds, 12)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, ds
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestNewValidation(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 10, 2, 1)
	if _, err := New([]string{"a"}, ds, 8); err == nil {
		t.Error("attr/dims mismatch accepted")
	}
	if _, err := New([]string{"a", "a"}, ds, 8); err == nil {
		t.Error("duplicate attrs accepted")
	}
	if _, err := New([]string{"a", ""}, ds, 8); err == nil {
		t.Error("empty attr accepted")
	}
	if _, err := New([]string{"a", "b"}, &point.Dataset{Dims: 2}, 8); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestHealthAndSkyline(t *testing.T) {
	_, ts, ds := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	if health["points"].(float64) != 1000 || health["dims"].(float64) != 3 {
		t.Errorf("health = %v", health)
	}

	resp2, err := http.Get(ts.URL + "/skyline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var sky map[string]any
	json.NewDecoder(resp2.Body).Decode(&sky)
	want := len(seq.SB(ds.Points, nil))
	if int(sky["count"].(float64)) != want {
		t.Errorf("skyline count %v, want %d", sky["count"], want)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)

	// Drive some traffic so the request counters and the lazily
	// computed skyline's build gauges have something to show.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/skyline")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Structural validity of the exposition: every non-comment line is
	// "name{labels} value" or "name value", and every family has a
	// TYPE line before its series.
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed series line %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		if !typed[name] && !typed[base] {
			t.Errorf("series %q has no preceding TYPE line", line)
		}
	}

	for _, want := range []string{
		`zsky_http_requests_total{code="200",route="/skyline"} 3`,
		"# TYPE zsky_http_request_seconds histogram",
		"zsky_skyline_build_seconds",
		"zsky_skyline_size",
		"zsky_index_build_seconds",
		"zsky_dataset_points 1000",
		"zsky_dominance_tests_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestQueryEndpoint(t *testing.T) {
	_, ts, ds := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{
		"prefer": []map[string]string{
			{"attr": "price", "dir": "min"},
			{"attr": "distance", "dir": "min"},
			{"attr": "noise", "dir": "ignore"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	// Oracle: 2-d subspace skyline size.
	proj := make([]point.Point, ds.Len())
	for i, p := range ds.Points {
		proj[i] = point.Point{p[0], p[1]}
	}
	want := len(seq.BruteForce(proj))
	if int(out["count"].(float64)) != want {
		t.Errorf("query count %v, want %d", out["count"], want)
	}

	// Error paths.
	for _, bad := range []map[string]any{
		{},
		{"prefer": []map[string]string{{"attr": "nope", "dir": "min"}}},
		{"prefer": []map[string]string{{"attr": "price", "dir": "sideways"}}},
		{"prefer": []map[string]string{{"attr": "price", "dir": "ignore"}}},
	} {
		resp, _ := postJSON(t, ts.URL+"/query", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad request %v got status %d", bad, resp.StatusCode)
		}
	}
}

func TestExplainEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/explain", map[string]any{"point": []float64{2, 2, 2}})
	if resp.StatusCode != http.StatusOK || out["dominated"] != true {
		t.Errorf("explain worst corner: %d %v", resp.StatusCode, out)
	}
	resp, out = postJSON(t, ts.URL+"/explain", map[string]any{"point": []float64{-1, -1, -1}})
	if resp.StatusCode != http.StatusOK || out["dominated"] != false {
		t.Errorf("explain best corner: %d %v", resp.StatusCode, out)
	}
	resp, _ = postJSON(t, ts.URL+"/explain", map[string]any{"point": []float64{1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("dim mismatch accepted: %d", resp.StatusCode)
	}
}

func TestTopKEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/topk", map[string]any{"k": 3, "weights": []float64{1, 1, 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	results := out["results"].([]any)
	if len(results) != 3 {
		t.Errorf("topk returned %d", len(results))
	}
	for _, bad := range []map[string]any{
		{"k": 0, "weights": []float64{1, 1, 1}},
		{"k": 3, "weights": []float64{1}},
		{"k": 3, "weights": []float64{1, -1, 1}},
	} {
		resp, _ := postJSON(t, ts.URL+"/topk", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad topk %v got %d", bad, resp.StatusCode)
		}
	}
}
