package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/obs"
	"zskyline/internal/point"
	"zskyline/internal/seq"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, *point.Dataset) {
	t.Helper()
	ds := gen.Synthetic(gen.AntiCorrelated, 1000, 3, 7)
	s, err := New([]string{"price", "distance", "noise"}, ds, 12)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, ds
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestNewValidation(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 10, 2, 1)
	if _, err := New([]string{"a"}, ds, 8); err == nil {
		t.Error("attr/dims mismatch accepted")
	}
	if _, err := New([]string{"a", "a"}, ds, 8); err == nil {
		t.Error("duplicate attrs accepted")
	}
	if _, err := New([]string{"a", ""}, ds, 8); err == nil {
		t.Error("empty attr accepted")
	}
	if _, err := New([]string{"a", "b"}, &point.Dataset{Dims: 2}, 8); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestHealthAndSkyline(t *testing.T) {
	_, ts, ds := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	if health["points"].(float64) != 1000 || health["dims"].(float64) != 3 {
		t.Errorf("health = %v", health)
	}

	resp2, err := http.Get(ts.URL + "/skyline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var sky map[string]any
	json.NewDecoder(resp2.Body).Decode(&sky)
	want := len(seq.SB(ds.Points, nil))
	if int(sky["count"].(float64)) != want {
		t.Errorf("skyline count %v, want %d", sky["count"], want)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)

	// Drive some traffic so the request counters and the lazily
	// computed skyline's build gauges have something to show.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/skyline")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Structural validity of the exposition: every non-comment line is
	// "name{labels} value" or "name value", and every family has a
	// TYPE line before its series.
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed series line %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		if !typed[name] && !typed[base] {
			t.Errorf("series %q has no preceding TYPE line", line)
		}
	}

	for _, want := range []string{
		`zsky_http_requests_total{code="200",route="/skyline"} 3`,
		"# TYPE zsky_http_request_seconds histogram",
		`zsky_skyline_build_seconds{dataset="default"}`,
		`zsky_skyline_size{dataset="default"}`,
		`zsky_dataset_points{dataset="default"} 1000`,
		// Three identical /skyline requests: one computed, two replayed
		// from the versioned result cache.
		`zsky_cache_misses_total{dataset="default"} 1`,
		`zsky_cache_hits_total{dataset="default"} 2`,
		"zsky_dominance_tests_total",
		"zsky_datasets 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestQueryEndpoint(t *testing.T) {
	_, ts, ds := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{
		"prefer": []map[string]string{
			{"attr": "price", "dir": "min"},
			{"attr": "distance", "dir": "min"},
			{"attr": "noise", "dir": "ignore"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	// Oracle: 2-d subspace skyline size.
	proj := make([]point.Point, ds.Len())
	for i, p := range ds.Points {
		proj[i] = point.Point{p[0], p[1]}
	}
	want := len(seq.BruteForce(proj))
	if int(out["count"].(float64)) != want {
		t.Errorf("query count %v, want %d", out["count"], want)
	}

	// Error paths.
	for _, bad := range []map[string]any{
		{},
		{"prefer": []map[string]string{{"attr": "nope", "dir": "min"}}},
		{"prefer": []map[string]string{{"attr": "price", "dir": "sideways"}}},
		{"prefer": []map[string]string{{"attr": "price", "dir": "ignore"}}},
	} {
		resp, _ := postJSON(t, ts.URL+"/query", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad request %v got status %d", bad, resp.StatusCode)
		}
	}
}

func TestExplainEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/explain", map[string]any{"point": []float64{2, 2, 2}})
	if resp.StatusCode != http.StatusOK || out["dominated"] != true {
		t.Errorf("explain worst corner: %d %v", resp.StatusCode, out)
	}
	resp, out = postJSON(t, ts.URL+"/explain", map[string]any{"point": []float64{-1, -1, -1}})
	if resp.StatusCode != http.StatusOK || out["dominated"] != false {
		t.Errorf("explain best corner: %d %v", resp.StatusCode, out)
	}
	resp, _ = postJSON(t, ts.URL+"/explain", map[string]any{"point": []float64{1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("dim mismatch accepted: %d", resp.StatusCode)
	}
}

func TestRequestIDHeader(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("no X-Request-Id header")
	}

	// A client-supplied ID is echoed back and stamped on the event.
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "client-chosen-1")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	io.Copy(io.Discard, resp2.Body)
	if got := resp2.Header.Get("X-Request-Id"); got != "client-chosen-1" {
		t.Fatalf("X-Request-Id = %q, want client-chosen-1", got)
	}
}

func TestEventsEndpoint(t *testing.T) {
	s, ts, _ := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{
		"prefer": []map[string]string{
			{"attr": "price", "dir": "min"},
			{"attr": "rating", "dir": "max"},
		},
	})
	_ = out
	if resp.StatusCode != http.StatusBadRequest { // rating is not an attr of this dataset
		t.Fatalf("status %d", resp.StatusCode)
	}
	resp2, out2 := postJSON(t, ts.URL+"/query", map[string]any{
		"prefer": []map[string]string{
			{"attr": "price", "dir": "min"},
			{"attr": "distance", "dir": "min"},
		},
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp2.StatusCode, out2)
	}
	id := resp2.Header.Get("X-Request-Id")

	// The event log holds both requests, queryable by request ID.
	respEv, err := http.Get(ts.URL + "/debug/events?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer respEv.Body.Close()
	var evOut struct {
		Events []map[string]any `json:"events"`
	}
	if err := json.NewDecoder(respEv.Body).Decode(&evOut); err != nil {
		t.Fatal(err)
	}
	if len(evOut.Events) != 1 {
		t.Fatalf("events for %s = %d, want 1", id, len(evOut.Events))
	}
	ev := evOut.Events[0]
	if ev["route"] != "/query" || ev["query"] != "query:price:min,distance:min" {
		t.Errorf("event = %v", ev)
	}
	if ev["dominance"] != "pareto" || ev["dataset"] != "default@v1" {
		t.Errorf("event missing dominance/dataset: %v", ev)
	}
	if ev["cache"] != "miss" {
		t.Errorf("first query not a recorded cache miss: %v", ev)
	}
	if int(ev["results"].(float64)) != int(out2["count"].(float64)) {
		t.Errorf("event results %v != response count %v", ev["results"], out2["count"])
	}
	if _, ok := ev["phases"].(map[string]any)["solve"]; !ok {
		t.Errorf("event phases missing solve: %v", ev["phases"])
	}

	// The bad-request event is classified and carries the message.
	var bad *map[string]any
	for _, e := range snapshotEvents(t, s) {
		if e["status"].(float64) == http.StatusBadRequest {
			bad = &e
			break
		}
	}
	if bad == nil {
		t.Fatal("no bad-request event recorded")
	}
	if (*bad)["error"] != "bad-request" || (*bad)["message"] == "" {
		t.Errorf("bad-request event = %v", *bad)
	}
}

func snapshotEvents(t *testing.T, s *Server) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, ev := range s.Events().Snapshot() {
		blob, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		json.Unmarshal(blob, &m)
		out = append(out, m)
	}
	return out
}

func TestSlowQueryTracePromotion(t *testing.T) {
	s, ts, _ := newTestServer(t)
	// Threshold 1ns: every request is "slow" and carries its trace.
	s.SetSlowThreshold(1)
	resp, err := http.Get(ts.URL + "/skyline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	events := s.Events().Snapshot()
	if len(events) == 0 {
		t.Fatal("no events")
	}
	last := events[len(events)-1]
	if last.Trace == "" || !strings.Contains(last.Trace, "solve") {
		t.Fatalf("slow event trace = %q, want span tree with solve", last.Trace)
	}
	if !strings.Contains(last.Trace, "request_id="+last.ID) {
		t.Fatalf("trace not joined to request id:\n%s", last.Trace)
	}
}

func TestAccessLogLine(t *testing.T) {
	s, ts, _ := newTestServer(t)
	var buf bytes.Buffer
	s.SetAccessLog(&buf)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("access log not one JSON line: %q", buf.String())
	}
	if line["route"] != "/healthz" || line["status"].(float64) != 200 {
		t.Errorf("access line = %v", line)
	}
	if line["id"] != resp.Header.Get("X-Request-Id") {
		t.Errorf("access line id %v != header %q", line["id"], resp.Header.Get("X-Request-Id"))
	}
	if line["duration_ms"].(float64) < 0 {
		t.Errorf("bad duration: %v", line)
	}
}

func TestQueryLatencyQuantiles(t *testing.T) {
	s, ts, _ := newTestServer(t)
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/skyline")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	snap := s.Metrics().Latency("zsky_query_seconds",
		obs.L("route", "/skyline"), obs.L("dataset", "default")).Snapshot()
	if snap.Count != 5 || snap.P50 <= 0 || snap.P99 < snap.P50 {
		t.Fatalf("latency snapshot = %+v", snap)
	}
	// And the summary renders in the exposition.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `zsky_query_seconds{dataset="default",route="/skyline",quantile="0.99"}`) {
		t.Fatalf("exposition missing query latency summary:\n%s", body)
	}
}

func TestTopKEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/topk", map[string]any{"k": 3, "weights": []float64{1, 1, 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	results := out["results"].([]any)
	if len(results) != 3 {
		t.Errorf("topk returned %d", len(results))
	}
	for _, bad := range []map[string]any{
		{"k": 0, "weights": []float64{1, 1, 1}},
		{"k": 3, "weights": []float64{1}},
		{"k": 3, "weights": []float64{1, -1, 1}},
	} {
		resp, _ := postJSON(t, ts.URL+"/topk", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad topk %v got %d", bad, resp.StatusCode)
		}
	}
}
