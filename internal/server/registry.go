package server

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is the concurrency-safe set of served datasets. Engines are
// added fully built (never half-initialised), and deletion is
// immediate: in-flight queries holding the engine pointer finish
// against their snapshot, new lookups miss.
type Registry struct {
	mu      sync.RWMutex
	engines map[string]*Engine
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{engines: make(map[string]*Engine)}
}

// Add registers e under its name; an existing name is an error (delete
// first — silently replacing a live dataset would reset versions out
// from under cached clients).
func (r *Registry) Add(e *Engine) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.engines[e.Name()]; ok {
		return fmt.Errorf("server: dataset %q already exists", e.Name())
	}
	r.engines[e.Name()] = e
	return nil
}

// Get returns the named engine, or nil.
func (r *Registry) Get(name string) *Engine {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.engines[name]
}

// Delete removes the named engine, reporting whether it existed.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.engines[name]
	delete(r.engines, name)
	return ok
}

// List returns the engines sorted by name.
func (r *Registry) List() []*Engine {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Engine, 0, len(r.engines))
	for _, e := range r.engines {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.engines)
}
