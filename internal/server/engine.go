// engine.go: one served dataset. An Engine wraps either an
// incremental skyline maintainer (the default: insert-only, the
// skyline is kept current on every ingest, snapshot/restorable) or a
// count-based sliding window (points expire), behind one mutex that
// makes (ingest, version bump, cache purge, notification) atomic with
// respect to queries. Every query reads one consistent snapshot —
// data, skyline, and version taken together — so a response always
// equals the oracle over an exact prefix of the ingest stream.
package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"sync"

	"zskyline/internal/dominance"
	"zskyline/internal/maintain"
	"zskyline/internal/metrics"
	"zskyline/internal/obs"
	"zskyline/internal/point"
	"zskyline/internal/rank"
	"zskyline/internal/seq"
	"zskyline/internal/window"
)

// DatasetSpec describes a dataset to create — the POST /datasets body.
type DatasetSpec struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
	// Bits is the Z-order grid resolution (service default when 0).
	Bits int `json:"bits,omitempty"`
	// Dominance is the dominance descriptor in CLI grammar ("pareto",
	// "flex:1,2;2,1", "robust:0.1", ...); empty means Pareto.
	Dominance string `json:"dominance,omitempty"`
	// Mins/Maxs bound the value box for Z-encoding. Both empty selects
	// the unit hypercube; out-of-box points are still handled exactly
	// (quantization clamps, float tests decide), just pruned less well.
	Mins []float64 `json:"mins,omitempty"`
	Maxs []float64 `json:"maxs,omitempty"`
	// Window, when positive, makes the dataset a count-based sliding
	// window of the most recent Window points instead of an unbounded
	// incrementally-maintained one. Windowed datasets cannot be
	// snapshotted.
	Window int `json:"window,omitempty"`
}

// DatasetInfo is the JSON shape describing one served dataset.
type DatasetInfo struct {
	Name       string   `json:"name"`
	Attrs      []string `json:"attrs"`
	Dominance  string   `json:"dominance"`
	Window     int      `json:"window,omitempty"`
	Points     int64    `json:"points"`
	Version    uint64   `json:"version"`
	SkyVersion uint64   `json:"sky_version"`
	Skyline    int      `json:"skyline"`
	Cached     int      `json:"cached"`
}

var nameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// Engine hosts one named dataset: attrs, dominance relation, the
// maintained (or windowed) skyline, the retained point log that
// subspace preference queries run over, a versioned result cache, and
// a per-dataset admission semaphore.
type Engine struct {
	name  string
	attrs []string
	index map[string]int
	dims  int
	bits  int
	desc  dominance.Descriptor
	prov  dominance.Provider

	cache *resultCache
	sem   chan struct{} // nil = unlimited in-flight queries

	mu  sync.RWMutex
	m   *maintain.Maintainer // unbounded mode
	win *window.Skyline      // windowed mode (guarded by mu, full lock)

	winCap  int
	winSeen int64
	// data is the retained ingest log (row-major), the relation that
	// /query projects and solves over. In window mode the live ring is
	// read from win instead.
	data []float64
	// version counts ingests (the data state); skyVersion counts
	// skyline *changes* and drives /subscribe wakeups.
	version    uint64
	skyVersion uint64
	waitCh     chan struct{} // closed and replaced on every skyline change
	lastTally  metrics.Snapshot
	winChanged bool // scratch flag set by the window subscription
}

// newEngine validates spec and builds an empty engine.
func newEngine(spec DatasetSpec, defBits, cacheSize, maxInFlight int) (*Engine, error) {
	if !nameRe.MatchString(spec.Name) {
		return nil, fmt.Errorf("server: invalid dataset name %q", spec.Name)
	}
	if len(spec.Attrs) == 0 {
		return nil, fmt.Errorf("server: dataset %q has no attributes", spec.Name)
	}
	index := map[string]int{}
	for i, a := range spec.Attrs {
		if a == "" {
			return nil, fmt.Errorf("server: empty attribute name at %d", i)
		}
		if _, dup := index[a]; dup {
			return nil, fmt.Errorf("server: duplicate attribute %q", a)
		}
		index[a] = i
	}
	dims := len(spec.Attrs)
	bits := spec.Bits
	if bits <= 0 {
		bits = defBits
	}
	desc := dominance.Descriptor{Kind: dominance.KindPareto}
	if spec.Dominance != "" {
		var err error
		desc, err = dominance.ParseDescriptor(spec.Dominance)
		if err != nil {
			return nil, err
		}
	}
	prov, err := desc.Provider()
	if err != nil {
		return nil, err
	}
	for _, w := range desc.Weights {
		if len(w) != dims {
			return nil, fmt.Errorf("server: flex weights have %d dims, dataset has %d", len(w), dims)
		}
	}
	mins, maxs := spec.Mins, spec.Maxs
	if len(mins) == 0 && len(maxs) == 0 {
		mins = make([]float64, dims)
		maxs = make([]float64, dims)
		for i := range maxs {
			maxs[i] = 1
		}
	}
	if len(mins) != dims || len(maxs) != dims {
		return nil, fmt.Errorf("server: bounds have %d/%d dims, want %d", len(mins), len(maxs), dims)
	}
	e := &Engine{
		name:   spec.Name,
		attrs:  spec.Attrs,
		index:  index,
		dims:   dims,
		bits:   bits,
		desc:   desc,
		prov:   prov,
		cache:  newResultCache(cacheSize),
		waitCh: make(chan struct{}),
		winCap: spec.Window,
	}
	if maxInFlight > 0 {
		e.sem = make(chan struct{}, maxInFlight)
	}
	if spec.Window > 0 {
		w, err := window.NewUnder(prov, spec.Window, dims, bits, mins, maxs)
		if err != nil {
			return nil, err
		}
		// The subscription makes window maintenance eager and flags
		// skyline changes; it fires inside Push, under e.mu.
		w.Subscribe(func([]point.Point) { e.winChanged = true })
		e.win = w
		return e, nil
	}
	m, err := maintain.NewUnder(prov, dims, bits, mins, maxs)
	if err != nil {
		return nil, err
	}
	e.m = m
	return e, nil
}

// Name returns the dataset name.
func (e *Engine) Name() string { return e.name }

// Attrs returns the attribute names.
func (e *Engine) Attrs() []string { return e.attrs }

// Descriptor returns the dataset's dominance descriptor.
func (e *Engine) Descriptor() dominance.Descriptor { return e.desc }

// Version returns the current data version.
func (e *Engine) Version() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.version
}

// Info snapshots the dataset's public state.
func (e *Engine) Info() DatasetInfo {
	snap := e.snapshot()
	return DatasetInfo{
		Name:       e.name,
		Attrs:      e.attrs,
		Dominance:  e.desc.String(),
		Window:     e.winCap,
		Points:     snap.seen,
		Version:    snap.version,
		SkyVersion: snap.skyVersion,
		Skyline:    len(snap.sky),
		Cached:     e.cache.Len(),
	}
}

// engineSnap is one consistent read of the dataset: the version, the
// skyline, and the retained relation all describe the same prefix of
// the ingest stream.
type engineSnap struct {
	version    uint64
	skyVersion uint64
	seen       int64
	sky        []point.Point // immutable; callers must not mutate
	data       point.Block   // immutable view of the retained relation
}

// snapshot captures a consistent engine state. In maintain mode a read
// lock suffices (the maintainer's View is copy-free and the data log
// is append-only); window reads need the full lock because Current()
// may rebuild lazily.
func (e *Engine) snapshot() engineSnap {
	if e.m != nil {
		e.mu.RLock()
		defer e.mu.RUnlock()
		sky, _ := e.m.View()
		n := len(e.data)
		return engineSnap{
			version:    e.version,
			skyVersion: e.skyVersion,
			seen:       e.m.Seen(),
			sky:        sky,
			data:       point.Block{Dims: e.dims, Data: e.data[:n:n]},
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return engineSnap{
		version:    e.version,
		skyVersion: e.skyVersion,
		seen:       e.winSeen,
		sky:        e.win.Current(),
		data:       point.BlockOf(e.dims, e.win.Live()),
	}
}

// waitChan returns the channel closed on the next skyline change.
func (e *Engine) waitChan() <-chan struct{} {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.waitCh
}

// tryAcquire reserves one in-flight query slot; the release func must
// be called when the query finishes. ok=false means the dataset is
// saturated and the request should be rejected, not queued.
func (e *Engine) tryAcquire() (release func(), ok bool) {
	if e.sem == nil {
		return func() {}, true
	}
	select {
	case e.sem <- struct{}{}:
		return func() { <-e.sem }, true
	default:
		return nil, false
	}
}

// IngestBlock merges a block of points into the dataset under one
// write lock: the skyline update, the retained-log append, the version
// bump, the cache purge, and the subscriber notification are atomic
// with respect to queries. The skyline build time is recorded as a
// "build" span on ctx's trace. Returns how many batch points are on
// the current skyline and the new data version.
func (e *Engine) IngestBlock(ctx context.Context, b point.Block) (added int, version uint64, err error) {
	if b.Dims != e.dims {
		return 0, e.Version(), fmt.Errorf("server: block has %d dims, dataset %q has %d", b.Dims, e.name, e.dims)
	}
	if b.Len() == 0 {
		return 0, e.Version(), nil
	}
	sp, _ := obs.StartSpan(ctx, "build")
	defer sp.End()

	e.mu.Lock()
	defer e.mu.Unlock()
	changed := false
	if e.m != nil {
		added, err = e.m.InsertBlock(b)
		if err != nil {
			return 0, e.version, err
		}
		e.data = append(e.data, b.Data...)
		e.version = e.m.Version()
		changed = added > 0
	} else {
		e.winChanged = false
		for _, p := range b.Points() {
			on, perr := e.win.Push(p)
			if perr != nil {
				return added, e.version, perr
			}
			if on {
				added++
			}
		}
		e.winSeen += int64(b.Len())
		e.version++
		changed = e.winChanged
	}
	if changed {
		e.skyVersion++
		close(e.waitCh)
		e.waitCh = make(chan struct{})
	}
	// Version-keyed entries can no longer be hit; reclaim them now so
	// write-heavy datasets don't carry dead generations until LRU
	// eviction.
	e.cache.Purge()
	return added, e.version, nil
}

// tallyDelta returns the dominance/region work done since the last
// call (absorbed into the service's Prometheus counters).
func (e *Engine) tallyDelta() metrics.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	var snap metrics.Snapshot
	if e.m != nil {
		snap = e.m.Stats()
	} else {
		snap = e.win.Stats()
	}
	delta := snap.Sub(e.lastTally)
	e.lastTally = snap
	return delta
}

// ---- queries over a snapshot ----

// prefCol is one resolved preference column.
type prefCol struct {
	idx    int
	negate bool
}

// resolvePrefs validates a preference list against the dataset's
// attributes and returns the projection columns plus the canonical
// query shape (columns in attribute order, so equivalent preference
// lists share one cache entry).
func (e *Engine) resolvePrefs(prefer []preferTerm) ([]prefCol, string, error) {
	var cols []prefCol
	for _, p := range prefer {
		i, ok := e.index[p.Attr]
		if !ok {
			return nil, "", fmt.Errorf("unknown attribute %q", p.Attr)
		}
		switch p.Dir {
		case "min":
			cols = append(cols, prefCol{i, false})
		case "max":
			cols = append(cols, prefCol{i, true})
		case "ignore":
		default:
			return nil, "", fmt.Errorf("direction %q (want min|max|ignore)", p.Dir)
		}
	}
	if len(cols) == 0 {
		return nil, "", fmt.Errorf("every attribute ignored")
	}
	sort.SliceStable(cols, func(i, j int) bool { return cols[i].idx < cols[j].idx })
	var shape []byte
	for k, c := range cols {
		if k > 0 {
			shape = append(shape, ',')
		}
		shape = append(shape, e.attrs[c.idx]...)
		if c.negate {
			shape = append(shape, ":max"...)
		} else {
			shape = append(shape, ":min"...)
		}
	}
	return cols, string(shape), nil
}

// queryRows computes the preference skyline over the retained relation
// and maps it back to row indices (ingest order; duplicates consume
// matching rows), sorted ascending.
func queryRows(data point.Block, cols []prefCol) []int {
	n := data.Len()
	proj := make([]point.Point, n)
	flat := make([]float64, n*len(cols))
	for i := 0; i < n; i++ {
		row := data.Row(i)
		p := flat[i*len(cols) : (i+1)*len(cols) : (i+1)*len(cols)]
		for k, c := range cols {
			v := row[c.idx]
			if c.negate {
				v = -v
			}
			p[k] = v
		}
		proj[i] = p
	}
	sky := seq.SB(proj, nil)
	byKey := map[string][]int{}
	for i, p := range proj {
		byKey[p.String()] = append(byKey[p.String()], i)
	}
	var rows []int
	for _, p := range sky {
		k := p.String()
		if ids := byKey[k]; len(ids) > 0 {
			rows = append(rows, ids[0])
			byKey[k] = ids[1:]
		}
	}
	sort.Ints(rows)
	return rows
}

// dominatorsOf returns the skyline points dominating p under the
// dataset's relation. Transitivity (required by maintain mode and
// eagerly recomputed in window mode) makes skyline members complete
// witnesses: the list is non-empty iff p is dominated at all.
func (e *Engine) dominatorsOf(snap engineSnap, p point.Point) []point.Point {
	var out []point.Point
	for _, q := range snap.sky {
		if e.prov.Dominates(q, p) {
			out = append(out, q)
		}
	}
	return out
}

// topK ranks the skyline by a weighted sum.
func (e *Engine) topK(snap engineSnap, k int, weights []float64) ([]rank.Scored, error) {
	score, err := rank.WeightedSum(weights)
	if err != nil {
		return nil, err
	}
	return rank.TopKByScore(snap.sky, k, score), nil
}

// ---- snapshot / restore ----

// engineSnapMagic opens the engine snapshot container: a JSON meta
// header (attrs, dominance) followed by the maintainer's own binary
// snapshot.
var engineSnapMagic = [4]byte{'Z', 'S', 'R', '1'}

type engineSnapMeta struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
	Bits  int      `json:"bits"`
}

// Save streams the dataset's state: meta header plus the maintained
// skyline. Windowed datasets are not snapshottable (expiry needs the
// full ring history; retain the source stream instead).
func (e *Engine) Save(w io.Writer) error {
	if e.m == nil {
		return fmt.Errorf("server: dataset %q is windowed; snapshots are unsupported", e.name)
	}
	meta, err := json.Marshal(engineSnapMeta{Name: e.name, Attrs: e.attrs, Bits: e.bits})
	if err != nil {
		return err
	}
	// Hold the read lock so no ingest interleaves between the header
	// and the maintainer payload.
	e.mu.RLock()
	defer e.mu.RUnlock()
	hdr := make([]byte, 0, 8+len(meta))
	hdr = append(hdr, engineSnapMagic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(meta)))
	hdr = append(hdr, meta...)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	return e.m.Save(w)
}

// restoreEngine rebuilds an engine from a Save stream under the given
// name. The restored relation retains the skyline points (exactly what
// the maintainer persists), so preference queries keep working; row
// indices restart from the restored skyline.
func restoreEngine(name string, r io.Reader, defBits, cacheSize, maxInFlight int) (*Engine, error) {
	head := make([]byte, 8)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("server: reading snapshot header: %w", err)
	}
	if [4]byte(head[:4]) != engineSnapMagic {
		return nil, fmt.Errorf("server: not an engine snapshot (bad magic)")
	}
	metaLen := int(binary.LittleEndian.Uint32(head[4:8]))
	if metaLen <= 0 || metaLen > 1<<20 {
		return nil, fmt.Errorf("server: implausible snapshot meta length %d", metaLen)
	}
	metaBuf := make([]byte, metaLen)
	if _, err := io.ReadFull(r, metaBuf); err != nil {
		return nil, fmt.Errorf("server: reading snapshot meta: %w", err)
	}
	var meta engineSnapMeta
	if err := json.Unmarshal(metaBuf, &meta); err != nil {
		return nil, fmt.Errorf("server: snapshot meta: %w", err)
	}
	m, err := maintain.Load(r)
	if err != nil {
		return nil, err
	}
	if len(meta.Attrs) != m.Dims() {
		return nil, fmt.Errorf("server: snapshot has %d attrs for %d dims", len(meta.Attrs), m.Dims())
	}
	spec := DatasetSpec{
		Name:      name,
		Attrs:     meta.Attrs,
		Bits:      m.Bits(),
		Dominance: m.Descriptor().String(),
		// Bounds live inside the maintainer; the spec box is only used
		// to build the maintainer we are about to replace.
	}
	e, err := newEngine(spec, defBits, cacheSize, maxInFlight)
	if err != nil {
		return nil, err
	}
	e.m = m
	sky, version := m.View()
	for _, p := range sky {
		e.data = append(e.data, p...)
	}
	e.version = version
	e.skyVersion = version
	return e, nil
}
