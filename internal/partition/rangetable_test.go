package partition

import (
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/zorder"
)

func TestRangeTableValidation(t *testing.T) {
	if _, err := NewRangeTable(0, nil); err == nil {
		t.Fatal("accepted words=0")
	}
	if _, err := NewRangeTable(1, []zorder.ZAddr{{1, 2}}); err == nil {
		t.Fatal("accepted wrong-width cut")
	}
	if _, err := NewRangeTable(1, []zorder.ZAddr{{5}, {5}}); err == nil {
		t.Fatal("accepted equal cuts")
	}
	if _, err := NewRangeTable(1, []zorder.ZAddr{{9}, {3}}); err == nil {
		t.Fatal("accepted decreasing cuts")
	}
	tab, err := NewRangeTable(2, []zorder.ZAddr{{1, 0}, {1, 7}, {4, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.N() != 4 || tab.Words() != 2 {
		t.Fatalf("N=%d words=%d", tab.N(), tab.Words())
	}
}

// Every address must land in exactly one range, and Locate must agree
// with the Range(i).Contains predicate — the "exactly one owner per
// Z-range" invariant the sharded tier builds on.
func TestRangeTableExactlyOneOwner(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		cuts := UniformCuts(1, n)
		tab, err := NewRangeTable(1, cuts)
		if err != nil {
			t.Fatal(err)
		}
		if tab.N() != n {
			t.Fatalf("n=%d: N()=%d", n, tab.N())
		}
		enc, err := zorder.NewUnitEncoder(4, 8)
		if err != nil {
			t.Fatal(err)
		}
		if enc.Words() != 1 {
			t.Fatalf("unexpected words %d", enc.Words())
		}
		ds := gen.Synthetic(gen.AntiCorrelated, 500, 4, 42)
		for _, p := range ds.Points {
			a := enc.Encode(p)
			got := tab.Locate(a)
			owners := 0
			for i := 0; i < tab.N(); i++ {
				if tab.Range(i).Contains(a) {
					owners++
					if i != got {
						t.Fatalf("n=%d: Locate=%d but range %d contains %v", n, got, i, a)
					}
				}
			}
			if owners != 1 {
				t.Fatalf("n=%d: address %v has %d owners", n, a, owners)
			}
		}
	}
}

func TestRangeTableBoundaryOwnership(t *testing.T) {
	cuts := []zorder.ZAddr{{100}, {200}}
	tab, err := NewRangeTable(1, cuts)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a    uint64
		want int
	}{
		{0, 0}, {99, 0}, {100, 1}, {199, 1}, {200, 2}, {^uint64(0), 2},
	}
	for _, c := range cases {
		if got := tab.Locate(zorder.ZAddr{c.a}); got != c.want {
			t.Fatalf("Locate(%d) = %d, want %d", c.a, got, c.want)
		}
	}
}

func TestRangeTableOverlapping(t *testing.T) {
	tab, err := NewRangeTable(1, []zorder.ZAddr{{100}, {200}, {300}})
	if err != nil {
		t.Fatal(err)
	}
	full := tab.Overlapping(zorder.Range{})
	if len(full) != 4 {
		t.Fatalf("full-curve query overlaps %v", full)
	}
	mid := tab.Overlapping(zorder.Range{Lo: zorder.ZAddr{150}, Hi: zorder.ZAddr{250}})
	if len(mid) != 2 || mid[0] != 1 || mid[1] != 2 {
		t.Fatalf("mid query overlaps %v", mid)
	}
	one := tab.Overlapping(zorder.Range{Lo: zorder.ZAddr{100}, Hi: zorder.ZAddr{101}})
	if len(one) != 1 || one[0] != 1 {
		t.Fatalf("point query overlaps %v", one)
	}
	empty := tab.Overlapping(zorder.Range{Lo: zorder.ZAddr{100}, Hi: zorder.ZAddr{100}})
	if len(empty) != 0 {
		t.Fatalf("empty query overlaps %v", empty)
	}
}

func TestUniformCutsIncreasing(t *testing.T) {
	for _, n := range []int{2, 3, 7, 16} {
		cuts := UniformCuts(2, n)
		if len(cuts) != n-1 {
			t.Fatalf("n=%d: %d cuts", n, len(cuts))
		}
		for i := 1; i < len(cuts); i++ {
			if zorder.Compare(cuts[i-1], cuts[i]) >= 0 {
				t.Fatalf("n=%d: cuts not increasing at %d", n, i)
			}
		}
		if _, err := NewRangeTable(2, cuts); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
	if UniformCuts(1, 1) != nil {
		t.Fatal("n=1 should yield no cuts")
	}
}
