// Package partition implements the data-partitioning schemes the paper
// evaluates: classic equal-width Grid partitioning [9][11], Angle
// partitioning over hyperspherical coordinates [8], Random
// partitioning [18], and the paper's own Z-order-curve partitioning of
// §4.1, which cuts the curve at equal-frequency pivots learned from a
// sample so that every partition receives ~|P|/M points regardless of
// dimensionality.
package partition

import (
	"fmt"
	"math"
	"sort"

	"zskyline/internal/point"
)

// Partitioner assigns points to one of N partitions. Implementations
// are immutable after construction and safe for concurrent use, which
// lets every mapper share one instance.
type Partitioner interface {
	Name() string
	N() int
	Assign(p point.Point) int
}

// factorize splits m into per-dimension split counts whose product is
// >= m and close to m: prime factors of m are dealt, largest first, to
// the dimension with the smallest running product. All dims start at 1.
func factorize(m, dims int) []int {
	splits := make([]int, dims)
	for i := range splits {
		splits[i] = 1
	}
	if m <= 1 || dims == 0 {
		return splits
	}
	var factors []int
	rest := m
	for f := 2; f*f <= rest; f++ {
		for rest%f == 0 {
			factors = append(factors, f)
			rest /= f
		}
	}
	if rest > 1 {
		factors = append(factors, rest)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(factors)))
	for _, f := range factors {
		best := 0
		for i := 1; i < dims; i++ {
			if splits[i] < splits[best] {
				best = i
			}
		}
		splits[best] *= f
	}
	return splits
}

// Grid is the classic equal-width grid partitioner: the value range of
// each used dimension is cut into equal-width stripes and each cell is
// one partition. With skewed or high-dimensional data the cells
// receive very unequal point counts — the imbalance the paper's §3.3
// calls out and that the experiments reproduce.
type Grid struct {
	mins, widths []float64
	splits       []int
	n            int
}

// NewGrid builds a grid partitioner with ~m cells over the bounding
// box of sample (following [7], values are normalized by the observed
// ranges). The sample must be non-empty.
func NewGrid(sample []point.Point, m int) (*Grid, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("partition: grid needs a non-empty sample")
	}
	if m < 1 {
		return nil, fmt.Errorf("partition: need at least one partition, got %d", m)
	}
	d := len(sample[0])
	ds := point.Dataset{Dims: d, Points: sample}
	mins, maxs, err := ds.Bounds()
	if err != nil {
		return nil, err
	}
	g := &Grid{mins: mins, splits: factorize(m, d), widths: make([]float64, d), n: 1}
	for i := 0; i < d; i++ {
		span := maxs[i] - mins[i]
		if span <= 0 {
			g.splits[i] = 1
		}
		g.widths[i] = span / float64(g.splits[i])
		g.n *= g.splits[i]
	}
	return g, nil
}

// Name implements Partitioner.
func (g *Grid) Name() string { return "grid" }

// N implements Partitioner.
func (g *Grid) N() int { return g.n }

// Assign implements Partitioner: locate the cell, row-major.
func (g *Grid) Assign(p point.Point) int {
	id := 0
	for i, w := range g.widths {
		c := 0
		if w > 0 {
			c = int((p[i] - g.mins[i]) / w)
			if c < 0 {
				c = 0
			}
			if c >= g.splits[i] {
				c = g.splits[i] - 1
			}
		}
		id = id*g.splits[i] + c
	}
	return id
}

// Angle is the angle-based partitioner of [8]: points are mapped to
// hyperspherical coordinates and the (d-1)-dimensional angle space is
// cut at equal-frequency boundaries learned from the sample, so that
// each partition receives a similar share of the sample. Skyline
// points, which cluster near the origin, spread across all angular
// partitions.
type Angle struct {
	boundaries [][]float64 // per angle dim: sorted inner boundaries
	splits     []int
	n          int
	dims       int
}

// NewAngle learns an angle partitioner with ~m partitions from sample.
func NewAngle(sample []point.Point, m int) (*Angle, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("partition: angle needs a non-empty sample")
	}
	if m < 1 {
		return nil, fmt.Errorf("partition: need at least one partition, got %d", m)
	}
	d := len(sample[0])
	angleDims := d - 1
	if angleDims == 0 {
		// 1-d data has no angles; a single partition is the only option.
		return &Angle{n: 1, dims: d}, nil
	}
	a := &Angle{splits: factorize(m, angleDims), dims: d, n: 1}
	for _, s := range a.splits {
		a.n *= s
	}
	// Equal-frequency boundaries per angle dimension, independently.
	angles := make([][]float64, angleDims)
	for k := range angles {
		angles[k] = make([]float64, 0, len(sample))
	}
	for _, p := range sample {
		ang := Hyperspherical(p)
		for k := 0; k < angleDims; k++ {
			angles[k] = append(angles[k], ang[k])
		}
	}
	a.boundaries = make([][]float64, angleDims)
	for k := 0; k < angleDims; k++ {
		sort.Float64s(angles[k])
		cuts := make([]float64, 0, a.splits[k]-1)
		for c := 1; c < a.splits[k]; c++ {
			idx := c * len(angles[k]) / a.splits[k]
			cuts = append(cuts, angles[k][idx])
		}
		a.boundaries[k] = cuts
	}
	return a, nil
}

// Hyperspherical maps a point to its d-1 hyperspherical angles:
// phi_i = atan2(|x_{i+1..d}|, x_i). For non-negative data every angle
// lies in [0, pi/2].
func Hyperspherical(p point.Point) []float64 {
	d := len(p)
	ang := make([]float64, d-1)
	// Suffix norms, computed back to front.
	norm := 0.0
	for i := d - 1; i >= 1; i-- {
		norm = math.Hypot(norm, p[i])
		ang[i-1] = math.Atan2(norm, p[i-1])
	}
	return ang
}

// Name implements Partitioner.
func (a *Angle) Name() string { return "angle" }

// N implements Partitioner.
func (a *Angle) N() int { return a.n }

// Assign implements Partitioner.
func (a *Angle) Assign(p point.Point) int {
	if a.n == 1 {
		return 0
	}
	ang := Hyperspherical(p)
	id := 0
	for k, cuts := range a.boundaries {
		c := sort.SearchFloat64s(cuts, ang[k])
		// SearchFloat64s returns the count of boundaries < ang (ties go
		// left, which keeps the cell layout contiguous).
		id = id*a.splits[k] + c
	}
	return id
}

// Random assigns points round-robin-by-hash: the baseline scheme [18]
// where every partition sees the full data distribution.
type Random struct {
	m int
}

// NewRandom builds a random (hash) partitioner over m partitions.
func NewRandom(m int) (*Random, error) {
	if m < 1 {
		return nil, fmt.Errorf("partition: need at least one partition, got %d", m)
	}
	return &Random{m: m}, nil
}

// Name implements Partitioner.
func (r *Random) Name() string { return "random" }

// N implements Partitioner.
func (r *Random) N() int { return r.m }

// Assign implements Partitioner using an FNV-style hash of the
// coordinates, so assignment is deterministic per point.
func (r *Random) Assign(p point.Point) int {
	h := uint64(1469598103934665603)
	for _, v := range p {
		b := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> uint(s)) & 0xff
			h *= 1099511628211
		}
	}
	return int(h % uint64(r.m))
}
