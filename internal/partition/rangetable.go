package partition

import (
	"fmt"
	"sort"

	"zskyline/internal/zorder"
)

// RangeTable maps the whole Z-order curve onto n contiguous,
// non-overlapping ranges, cut at n-1 strictly increasing pivot
// addresses. It is the range-ownership primitive of the sharded
// distributed tier: because the ranges are derived from one sorted cut
// list, every address has exactly one owner by construction — there is
// no overlap or gap to mis-handle during a rebalance.
//
// A RangeTable is immutable after construction and safe for concurrent
// use.
type RangeTable struct {
	cuts  []zorder.ZAddr
	words int
}

// NewRangeTable builds a table over the given inner cut addresses,
// which must be strictly increasing and all of words words. n cuts
// define n+1 ranges; no cuts define the single full-curve range.
func NewRangeTable(words int, cuts []zorder.ZAddr) (*RangeTable, error) {
	if words < 1 {
		return nil, fmt.Errorf("partition: range table needs words >= 1, got %d", words)
	}
	for i, c := range cuts {
		if len(c) != words {
			return nil, fmt.Errorf("partition: cut %d has %d words, want %d", i, len(c), words)
		}
		if i > 0 && zorder.Compare(cuts[i-1], c) >= 0 {
			return nil, fmt.Errorf("partition: cuts not strictly increasing at %d", i)
		}
	}
	t := &RangeTable{words: words}
	for _, c := range cuts {
		t.cuts = append(t.cuts, c.Clone())
	}
	return t, nil
}

// UniformCuts returns n-1 cut addresses splitting the curve's leading
// 64 address bits into n equal prefixes — the data-oblivious default
// shard layout (rebalancing by handoff is how a skewed dataset gets a
// better one). Words is the address width in uint64 words.
func UniformCuts(words, n int) []zorder.ZAddr {
	if n < 2 {
		return nil
	}
	cuts := make([]zorder.ZAddr, 0, n-1)
	for i := 1; i < n; i++ {
		a := make(zorder.ZAddr, words)
		// i * 2^64 / n without overflow: split the multiplication.
		q, r := (^uint64(0))/uint64(n), (^uint64(0))%uint64(n)+1
		a[0] = q*uint64(i) + r*uint64(i)/uint64(n)
		cuts = append(cuts, a)
	}
	return cuts
}

// N returns the number of ranges.
func (t *RangeTable) N() int { return len(t.cuts) + 1 }

// Words returns the address width in uint64 words.
func (t *RangeTable) Words() int { return t.words }

// Locate returns the index of the unique range containing a.
func (t *RangeTable) Locate(a zorder.ZAddr) int {
	return sort.Search(len(t.cuts), func(i int) bool {
		return zorder.Compare(a, t.cuts[i]) < 0
	})
}

// LocateCol locates row i of a Z-address column without materializing
// the address.
func (t *RangeTable) LocateCol(zc zorder.ZCol, i int) int {
	return t.Locate(zc.At(i))
}

// Range returns range i as a zorder.Range (nil ends at the curve's
// extremes).
func (t *RangeTable) Range(i int) zorder.Range {
	var r zorder.Range
	if i > 0 {
		r.Lo = t.cuts[i-1]
	}
	if i < len(t.cuts) {
		r.Hi = t.cuts[i]
	}
	return r
}

// Overlapping returns the indices of every range overlapping q, in
// order — the fan-out set of a range-scoped query.
func (t *RangeTable) Overlapping(q zorder.Range) []int {
	var out []int
	for i := 0; i < t.N(); i++ {
		if t.Range(i).Overlaps(q) {
			out = append(out, i)
		}
	}
	return out
}

// Cuts returns clones of the inner cut addresses, in order.
func (t *RangeTable) Cuts() []zorder.ZAddr {
	out := make([]zorder.ZAddr, len(t.cuts))
	for i, c := range t.cuts {
		out[i] = c.Clone()
	}
	return out
}
