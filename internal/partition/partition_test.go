package partition

import (
	"math"
	"math/rand"
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/metrics"
	"zskyline/internal/point"
	"zskyline/internal/zorder"
)

func TestFactorize(t *testing.T) {
	cases := []struct {
		m, dims int
		product int
	}{
		{32, 5, 32}, {30, 3, 30}, {7, 2, 7}, {1, 4, 1}, {16, 2, 16}, {64, 10, 64},
	}
	for _, c := range cases {
		sp := factorize(c.m, c.dims)
		if len(sp) != c.dims {
			t.Fatalf("factorize(%d,%d) len = %d", c.m, c.dims, len(sp))
		}
		prod := 1
		for _, s := range sp {
			if s < 1 {
				t.Fatalf("factorize(%d,%d) has split %d", c.m, c.dims, s)
			}
			prod *= s
		}
		if prod != c.product {
			t.Errorf("factorize(%d,%d) product = %d, want %d", c.m, c.dims, prod, c.product)
		}
	}
	// Balanced for powers: 32 over 5 dims -> all 2s.
	for _, s := range factorize(32, 5) {
		if s != 2 {
			t.Errorf("factorize(32,5) = %v, want all 2s", factorize(32, 5))
		}
	}
}

func checkCoverage(t *testing.T, p Partitioner, pts []point.Point) []int {
	t.Helper()
	counts := make([]int, p.N())
	for _, pt := range pts {
		id := p.Assign(pt)
		if id < 0 || id >= p.N() {
			t.Fatalf("%s: assignment %d out of range [0,%d)", p.Name(), id, p.N())
		}
		counts[id]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(pts) {
		t.Fatalf("%s: assigned %d of %d points", p.Name(), total, len(pts))
	}
	return counts
}

func TestGridBasics(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 2000, 3, 1)
	g, err := NewGrid(ds.Points, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 {
		t.Fatalf("N = %d, want 8", g.N())
	}
	checkCoverage(t, g, ds.Points)
	if _, err := NewGrid(nil, 4); err == nil {
		t.Error("empty sample should fail")
	}
	if _, err := NewGrid(ds.Points, 0); err == nil {
		t.Error("zero partitions should fail")
	}
}

func TestGridAssignDeterministic(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 100, 4, 2)
	g, _ := NewGrid(ds.Points, 16)
	for _, p := range ds.Points {
		if g.Assign(p) != g.Assign(p) {
			t.Fatal("grid assignment not deterministic")
		}
	}
	// Out-of-box points clamp rather than escape.
	if id := g.Assign(point.Point{-5, -5, -5, -5}); id < 0 || id >= g.N() {
		t.Errorf("clamped assignment out of range: %d", id)
	}
	if id := g.Assign(point.Point{9, 9, 9, 9}); id < 0 || id >= g.N() {
		t.Errorf("clamped assignment out of range: %d", id)
	}
}

// The paper's motivation: equal-width grid on skewed data is highly
// imbalanced, while the Z-curve equal-frequency cuts stay balanced.
func TestGridImbalanceVsZCurveOnSkewedData(t *testing.T) {
	// Strongly clustered data.
	rng := rand.New(rand.NewSource(3))
	pts := make([]point.Point, 4000)
	for i := range pts {
		pts[i] = point.Point{
			math.Min(1, math.Abs(rng.NormFloat64()*0.05)),
			math.Min(1, math.Abs(rng.NormFloat64()*0.05)),
			math.Min(1, math.Abs(rng.NormFloat64()*0.05)),
			rng.Float64(),
		}
	}
	g, _ := NewGrid(pts, 16)
	gridBal := metrics.NewBalance(checkCoverage(t, g, pts))

	enc, _ := zorder.NewUnitEncoder(4, 12)
	z, err := NewZCurve(enc, pts, 16)
	if err != nil {
		t.Fatal(err)
	}
	zBal := metrics.NewBalance(checkCoverage(t, z, pts))
	if zBal.Imbalance >= gridBal.Imbalance {
		t.Errorf("zcurve imbalance %.2f should beat grid %.2f on skewed data",
			zBal.Imbalance, gridBal.Imbalance)
	}
	if zBal.Imbalance > 1.5 {
		t.Errorf("zcurve imbalance %.2f too high", zBal.Imbalance)
	}
}

func TestAngleBasics(t *testing.T) {
	ds := gen.Synthetic(gen.AntiCorrelated, 3000, 4, 5)
	a, err := NewAngle(ds.Points, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 9 {
		t.Fatalf("N = %d, want 9", a.N())
	}
	counts := checkCoverage(t, a, ds.Points)
	bal := metrics.NewBalance(counts)
	// Equal-frequency learned boundaries: reasonable balance.
	if bal.Imbalance > 2.0 {
		t.Errorf("angle imbalance %.2f too high: %v", bal.Imbalance, counts)
	}
}

func TestAngleOneDimensional(t *testing.T) {
	pts := []point.Point{{0.1}, {0.5}, {0.9}}
	a, err := NewAngle(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 1 {
		t.Fatalf("1-d angle N = %d, want 1", a.N())
	}
	if a.Assign(pts[0]) != 0 {
		t.Error("1-d assignment must be 0")
	}
}

func TestHyperspherical(t *testing.T) {
	// 2-d: angle = atan2(y, x).
	ang := Hyperspherical(point.Point{1, 1})
	if math.Abs(ang[0]-math.Pi/4) > 1e-12 {
		t.Errorf("angle of (1,1) = %v, want pi/4", ang[0])
	}
	ang = Hyperspherical(point.Point{1, 0})
	if ang[0] != 0 {
		t.Errorf("angle of (1,0) = %v, want 0", ang[0])
	}
	// 3-d angles lie in [0, pi/2] for non-negative points.
	ang = Hyperspherical(point.Point{0.3, 0.4, 0.5})
	for _, v := range ang {
		if v < 0 || v > math.Pi/2 {
			t.Errorf("angle %v out of [0, pi/2]", v)
		}
	}
}

func TestRandomPartitioner(t *testing.T) {
	r, err := NewRandom(8)
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Synthetic(gen.Independent, 4000, 5, 9)
	counts := checkCoverage(t, r, ds.Points)
	bal := metrics.NewBalance(counts)
	if bal.Imbalance > 1.3 {
		t.Errorf("random imbalance %.2f: %v", bal.Imbalance, counts)
	}
	if _, err := NewRandom(0); err == nil {
		t.Error("zero partitions should fail")
	}
}

func TestZCurveBasics(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 3000, 5, 11)
	enc, _ := zorder.NewUnitEncoder(5, 12)
	z, err := NewZCurve(enc, ds.Points, 32)
	if err != nil {
		t.Fatal(err)
	}
	if z.N() != 32 {
		t.Fatalf("N = %d, want 32", z.N())
	}
	counts := checkCoverage(t, z, ds.Points)
	bal := metrics.NewBalance(counts)
	if bal.Imbalance > 1.35 {
		t.Errorf("zcurve imbalance %.2f on its own sample: %v", bal.Imbalance, counts)
	}
	if _, err := NewZCurve(enc, nil, 4); err == nil {
		t.Error("empty sample should fail")
	}
}

func TestZCurveBalancedOnUnseenData(t *testing.T) {
	// Learn on a sample, apply to fresh data from the same distribution.
	train := gen.Synthetic(gen.AntiCorrelated, 2000, 4, 13)
	test := gen.Synthetic(gen.AntiCorrelated, 20000, 4, 14)
	enc, _ := zorder.NewUnitEncoder(4, 12)
	z, _ := NewZCurve(enc, train.Points, 16)
	bal := metrics.NewBalance(checkCoverage(t, z, test.Points))
	if bal.Imbalance > 1.6 {
		t.Errorf("zcurve generalization imbalance %.2f", bal.Imbalance)
	}
}

func TestZCurveInfos(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 2000, 3, 15)
	enc, _ := zorder.NewUnitEncoder(3, 10)
	z, _ := NewZCurve(enc, ds.Points, 8)
	infos := z.Infos()
	if len(infos) != z.N() {
		t.Fatalf("infos len = %d, want %d", len(infos), z.N())
	}
	totalCount, totalSky := 0, 0
	for i, in := range infos {
		if in.ID != i {
			t.Errorf("info %d has ID %d", i, in.ID)
		}
		totalCount += in.Count
		totalSky += in.SkyCount
		for d := range in.Extent.MinG {
			if in.Extent.MinG[d] < in.Interval.MinG[d] || in.Extent.MaxG[d] > in.Interval.MaxG[d] {
				t.Errorf("partition %d extent escapes interval", i)
			}
		}
	}
	if totalCount != ds.Len() {
		t.Errorf("info counts sum to %d, want %d", totalCount, ds.Len())
	}
	if totalSky == 0 {
		t.Error("no skyline points counted")
	}
}

// Every real point routed to partition i must lie inside the
// partition's interval RZ-region — that is what makes region-level
// partition pruning sound.
func TestZCurveIntervalRegionContainsAssignedPoints(t *testing.T) {
	train := gen.Synthetic(gen.Independent, 500, 3, 17)
	test := gen.Synthetic(gen.Independent, 5000, 3, 18)
	enc, _ := zorder.NewUnitEncoder(3, 8)
	z, _ := NewZCurve(enc, train.Points, 16)
	infos := z.Infos()
	for _, p := range test.Points {
		id := z.Assign(p)
		g := enc.Grid(p)
		r := infos[id].Interval
		for d := range g {
			if g[d] < r.MinG[d] || g[d] > r.MaxG[d] {
				t.Fatalf("point %v grid %v outside interval region [%v,%v] of partition %d",
					p, g, r.MinG, r.MaxG, id)
			}
		}
	}
}

func TestZCurveRedistribute(t *testing.T) {
	// Anti-correlated data: skyline concentrated along the diagonal
	// band; redistribution should split heavy partitions.
	ds := gen.Synthetic(gen.AntiCorrelated, 3000, 3, 19)
	enc, _ := zorder.NewUnitEncoder(3, 10)
	z, _ := NewZCurve(enc, ds.Points, 8)
	maxSky := 0
	totalSky := 0
	for _, in := range z.Infos() {
		totalSky += in.SkyCount
		if in.SkyCount > maxSky {
			maxSky = in.SkyCount
		}
	}
	target := totalSky / 16
	if target < 1 {
		target = 1
	}
	rz := z.Redistribute(ds.Points, target)
	if rz.N() <= z.N() {
		t.Fatalf("redistribute did not split: %d -> %d (maxSky=%d target=%d)",
			z.N(), rz.N(), maxSky, target)
	}
	// All data still routes somewhere valid.
	checkCoverage(t, rz, ds.Points)
	newMax := 0
	for _, in := range rz.Infos() {
		if in.SkyCount > newMax {
			newMax = in.SkyCount
		}
	}
	if newMax > maxSky {
		t.Errorf("redistribute increased max skyline load %d -> %d", maxSky, newMax)
	}
}

func TestZCurveDuplicateHeavySample(t *testing.T) {
	// Many identical points: pivots collapse; partitioner must stay valid.
	pts := make([]point.Point, 200)
	for i := range pts {
		pts[i] = point.Point{0.5, 0.5}
	}
	enc, _ := zorder.NewUnitEncoder(2, 8)
	z, err := NewZCurve(enc, pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if z.N() < 1 {
		t.Fatalf("N = %d", z.N())
	}
	checkCoverage(t, z, pts)
}
