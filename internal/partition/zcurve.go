package partition

import (
	"fmt"
	"sort"

	"zskyline/internal/point"
	"zskyline/internal/zbtree"
	"zskyline/internal/zorder"
)

// Info describes one Z-curve partition as learned from the sample; it
// is the unit the grouping algorithms of §4.2/§4.3 operate on.
type Info struct {
	ID int
	// Interval is the RZ-region of the partition's full Z-address
	// interval [lo, hi], derived from the pivots. Every real data point
	// routed to this partition lies inside it, so it is the region
	// partition pruning must use.
	Interval zorder.Region
	// Extent is the minimum bounding rectangle (componentwise grid
	// min/max) of the partition's actual sample points — a tight
	// estimate used for dominance volumes and pruning witnesses. It is
	// deliberately tighter than the RZ-region of the sample's boundary
	// Z-addresses: the volume signal of §4.3 needs real geometry, and
	// MBR containment of every sample point keeps pruning sound.
	Extent zorder.Region
	// Count is the number of sample points in the partition.
	Count int
	// SkyCount is the number of sample *skyline* points in the
	// partition (the straggler signal of §4.2).
	SkyCount int
}

// ZCurve partitions data by cutting the Z-order curve at pivot
// addresses chosen as equal-frequency quantiles of the sample, the
// paper's §4.1 scheme: each of the m partitions receives roughly
// |sample|/m sample points, independent of dimensionality.
type ZCurve struct {
	enc    *zorder.Encoder
	pivots []zorder.ZAddr // m-1 sorted inner boundaries
	infos  []Info
}

// NewZCurve learns a Z-curve partitioner with m partitions from
// sample. The sample skyline is computed with Z-search to fill the
// per-partition skyline counts.
func NewZCurve(enc *zorder.Encoder, sample []point.Point, m int) (*ZCurve, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("partition: zcurve needs a non-empty sample")
	}
	if m < 1 {
		return nil, fmt.Errorf("partition: need at least one partition, got %d", m)
	}
	// One bulk columnar encode of the sample; the sort permutes row
	// indices over the shared column instead of shuffling addresses.
	zc := enc.EncodeBlock(zorder.ZCol{}, point.BlockOf(enc.Dims(), sample))
	perm := make([]int, zc.Len())
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool { return zc.Compare(perm[i], perm[j]) < 0 })
	z := &ZCurve{enc: enc}
	for c := 1; c < m; c++ {
		// Pivots outlive the column, so they own their storage.
		z.pivots = append(z.pivots, zc.At(perm[c*len(perm)/m]).Clone())
	}
	z.dedupePivots()
	// Sample skyline for the per-partition skyline histogram.
	sky := zbtree.ZSearch(enc, 0, sample, nil)
	z.buildInfos(sample, sky)
	return z, nil
}

// dedupePivots collapses equal pivots (possible when many sample
// points share one Z-address); partitions must be non-degenerate.
func (z *ZCurve) dedupePivots() {
	out := z.pivots[:0]
	for i, p := range z.pivots {
		if i == 0 || zorder.Compare(out[len(out)-1], p) < 0 {
			out = append(out, p)
		}
	}
	z.pivots = out
}

// buildInfos recomputes per-partition sample statistics and regions.
func (z *ZCurve) buildInfos(sample, sky []point.Point) {
	n := len(z.pivots) + 1
	z.infos = make([]Info, n)
	type ext struct {
		lo, hi []uint32
	}
	extents := make([]*ext, n)
	for i := range z.infos {
		z.infos[i].ID = i
		z.infos[i].Interval = z.intervalRegion(i)
	}
	g := make([]uint32, z.enc.Dims())
	a := make(zorder.ZAddr, z.enc.Words())
	for _, p := range sample {
		z.enc.EncodeInto(a, g, p)
		id := z.assignAddr(a)
		z.infos[id].Count++
		if extents[id] == nil {
			lo := append([]uint32(nil), g...)
			hi := append([]uint32(nil), g...)
			extents[id] = &ext{lo: lo, hi: hi}
		} else {
			for d, v := range g {
				if v < extents[id].lo[d] {
					extents[id].lo[d] = v
				}
				if v > extents[id].hi[d] {
					extents[id].hi[d] = v
				}
			}
		}
	}
	for _, p := range sky {
		z.enc.EncodeInto(a, g, p)
		z.infos[z.assignAddr(a)].SkyCount++
	}
	for i := range z.infos {
		if extents[i] != nil {
			z.infos[i].Extent = zorder.Region{MinG: extents[i].lo, MaxG: extents[i].hi}
		} else {
			z.infos[i].Extent = z.infos[i].Interval
		}
	}
}

// intervalRegion computes the RZ-region of partition i's full
// Z-interval, using the curve's global endpoints for the outer
// partitions.
func (z *ZCurve) intervalRegion(i int) zorder.Region {
	lo := make(zorder.ZAddr, z.enc.Words())
	if i > 0 {
		lo = z.pivots[i-1]
	}
	var hi zorder.ZAddr
	if i < len(z.pivots) {
		hi = z.pivots[i]
	} else {
		hi = make(zorder.ZAddr, z.enc.Words())
		for b := 0; b < z.enc.TotalBits(); b++ {
			hi[b/64] |= 1 << uint(63-b%64)
		}
	}
	return z.enc.RegionOf(lo, hi)
}

// Name implements Partitioner.
func (z *ZCurve) Name() string { return "zcurve" }

// N implements Partitioner.
func (z *ZCurve) N() int { return len(z.pivots) + 1 }

// Assign implements Partitioner via binary search over the pivots
// (Algorithm 3's searchPT step).
func (z *ZCurve) Assign(p point.Point) int {
	return z.assignAddr(z.enc.Encode(p))
}

// AssignAddr routes an already-encoded Z-address to its partition —
// the hot path for mappers that have the address at hand.
func (z *ZCurve) AssignAddr(a zorder.ZAddr) int { return z.assignAddr(a) }

func (z *ZCurve) assignAddr(a zorder.ZAddr) int {
	return sort.Search(len(z.pivots), func(i int) bool {
		return zorder.Compare(a, z.pivots[i]) < 0
	})
}

// Encoder returns the encoder the partitioner quantizes with.
func (z *ZCurve) Encoder() *zorder.Encoder { return z.enc }

// Infos returns the per-partition sample statistics, in partition
// order. Callers must not mutate the returned slice.
func (z *ZCurve) Infos() []Info { return z.infos }

// Redistribute implements the redistribute() step of Algorithms 1 and
// 2: every partition holding more than maxSky sample skyline points is
// split at the Z-addresses of its sample skyline quantiles, so the
// greedy grouping can spread skyline load. A new partitioner is
// returned; the receiver is unchanged.
func (z *ZCurve) Redistribute(sample []point.Point, maxSky int) *ZCurve {
	if maxSky < 1 {
		maxSky = 1
	}
	sky := zbtree.ZSearch(z.enc, 0, sample, nil)
	// One bulk encode of the sample skyline; partitions hold row
	// indices into the shared column.
	skyZ := z.enc.EncodeBlock(zorder.ZCol{}, point.BlockOf(z.enc.Dims(), sky))
	perPart := make(map[int][]int)
	for i := 0; i < skyZ.Len(); i++ {
		id := z.assignAddr(skyZ.At(i))
		perPart[id] = append(perPart[id], i)
	}
	newPivots := append([]zorder.ZAddr(nil), z.pivots...)
	for _, rows := range perPart {
		if len(rows) <= maxSky {
			continue
		}
		sort.Slice(rows, func(i, j int) bool { return skyZ.Compare(rows[i], rows[j]) < 0 })
		parts := (len(rows) + maxSky - 1) / maxSky
		for c := 1; c < parts; c++ {
			// New pivots outlive the column: clone out of the arena.
			newPivots = append(newPivots, skyZ.At(rows[c*len(rows)/parts]).Clone())
		}
	}
	sort.Slice(newPivots, func(i, j int) bool { return zorder.Compare(newPivots[i], newPivots[j]) < 0 })
	nz := &ZCurve{enc: z.enc, pivots: newPivots}
	nz.dedupePivots()
	nz.buildInfos(sample, sky)
	return nz
}

// Pivots returns copies of the curve's inner cut addresses, in order —
// what a coordinator broadcasts to remote workers.
func (z *ZCurve) Pivots() []zorder.ZAddr {
	out := make([]zorder.ZAddr, len(z.pivots))
	for i, p := range z.pivots {
		out[i] = p.Clone()
	}
	return out
}
