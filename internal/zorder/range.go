package zorder

// Range is a half-open interval [Lo, Hi) of the Z-order curve. A nil
// Lo means the curve's origin (all-zero address) and a nil Hi means
// past-the-end (every address compares below it), so the full curve is
// Range{} — the zero value. Ranges are the ownership unit of the
// sharded distributed tier: a shard owns every point whose Z-address
// falls inside its range.
type Range struct {
	Lo, Hi ZAddr
}

// Contains reports whether address a falls inside the range.
func (r Range) Contains(a ZAddr) bool {
	if r.Lo != nil && Compare(a, r.Lo) < 0 {
		return false
	}
	return r.Hi == nil || Compare(a, r.Hi) < 0
}

// Overlaps reports whether the two ranges share at least one address.
// Empty ranges (Lo >= Hi) overlap nothing.
func (r Range) Overlaps(o Range) bool {
	if r.empty() || o.empty() {
		return false
	}
	if r.Hi != nil && o.Lo != nil && Compare(o.Lo, r.Hi) >= 0 {
		return false
	}
	if o.Hi != nil && r.Lo != nil && Compare(r.Lo, o.Hi) >= 0 {
		return false
	}
	return true
}

func (r Range) empty() bool {
	return r.Lo != nil && r.Hi != nil && Compare(r.Lo, r.Hi) >= 0
}

// FilterRows appends to dst the indices of column rows whose address
// falls inside the range, in row order — the residency filter a shard
// query applies before computing a range-scoped skyline.
func (r Range) FilterRows(dst []int32, zc ZCol) []int32 {
	n := zc.Len()
	for i := 0; i < n; i++ {
		if r.Contains(zc.At(i)) {
			dst = append(dst, int32(i))
		}
	}
	return dst
}
