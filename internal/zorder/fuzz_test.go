package zorder

import (
	"math/rand"
	"testing"
)

// FuzzEncodeDecode: every grid coordinate vector must roundtrip, and
// monotonicity must hold under arbitrary fuzz-chosen inputs.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(uint16(3), uint16(7), uint32(5), uint32(9))
	f.Fuzz(func(t *testing.T, dRaw, bitsRaw uint16, a, b uint32) {
		dims := int(dRaw%12) + 1
		bits := int(bitsRaw%MaxBits) + 1
		enc, err := NewUnitEncoder(dims, bits)
		if err != nil {
			t.Fatal(err)
		}
		ga := make([]uint32, dims)
		gb := make([]uint32, dims)
		for i := range ga {
			ga[i] = (a + uint32(i)*2654435761) & enc.MaxGrid()
			gb[i] = (b + uint32(i)*40503) & enc.MaxGrid()
		}
		if got := enc.DecodeGrid(enc.EncodeGrid(ga)); !equalU32(got, ga) {
			t.Fatalf("roundtrip %v -> %v", ga, got)
		}
		// Monotonicity: componentwise min encodes <= both.
		lo := make([]uint32, dims)
		for i := range lo {
			lo[i] = ga[i]
			if gb[i] < lo[i] {
				lo[i] = gb[i]
			}
		}
		zlo := enc.EncodeGrid(lo)
		if Compare(zlo, enc.EncodeGrid(ga)) > 0 || Compare(zlo, enc.EncodeGrid(gb)) > 0 {
			t.Fatalf("monotonicity violated: lo=%v a=%v b=%v", lo, ga, gb)
		}
	})
}

// FuzzZColEncode: the columnar bulk encoder must agree with the scalar
// path row for row — identical addresses, identical ordering, and
// identical RZ-regions derived from adjacent rows.
func FuzzZColEncode(f *testing.F) {
	f.Add(uint16(4), uint16(8), int64(1), uint8(9))
	f.Add(uint16(1), uint16(1), int64(42), uint8(1))
	f.Add(uint16(11), uint16(32), int64(-3), uint8(17))
	f.Fuzz(func(t *testing.T, dRaw, bitsRaw uint16, seed int64, nRaw uint8) {
		dims := int(dRaw%12) + 1
		bits := int(bitsRaw%MaxBits) + 1
		n := int(nRaw%40) + 1
		enc, err := NewUnitEncoder(dims, bits)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		b := randBlock(rng, n, dims)
		zc := enc.EncodeBlock(ZCol{}, b)
		if zc.Len() != n || zc.Words != enc.Words() {
			t.Fatalf("EncodeBlock shape %d×%d, want %d×%d", zc.Len(), zc.Words, n, enc.Words())
		}
		for i := 0; i < n; i++ {
			want := enc.Encode(b.Row(i))
			if !Equal(zc.At(i), want) {
				t.Fatalf("row %d: bulk %v != scalar %v", i, zc.At(i), want)
			}
			if j := (i + 1) % n; true {
				if got, wantC := zc.Compare(i, j), Compare(want, enc.Encode(b.Row(j))); got != wantC {
					t.Fatalf("Compare(%d,%d) = %d, scalar says %d", i, j, got, wantC)
				}
			}
		}
		// Regions from column views must equal regions from scalar addrs.
		for i := 0; i+1 < n; i++ {
			alpha, beta := zc.At(i), zc.At(i+1)
			if Compare(alpha, beta) > 0 {
				alpha, beta = beta, alpha
			}
			sa, sb := enc.Encode(b.Row(i)), enc.Encode(b.Row(i+1))
			if Compare(sa, sb) > 0 {
				sa, sb = sb, sa
			}
			got, want := enc.RegionOf(alpha, beta), enc.RegionOf(sa, sb)
			if !equalU32(got.MinG, want.MinG) || !equalU32(got.MaxG, want.MaxG) {
				t.Fatalf("rows %d,%d: region %v/%v, want %v/%v",
					i, i+1, got.MinG, got.MaxG, want.MinG, want.MaxG)
			}
		}
	})
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
