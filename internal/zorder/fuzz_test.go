package zorder

import (
	"testing"
)

// FuzzEncodeDecode: every grid coordinate vector must roundtrip, and
// monotonicity must hold under arbitrary fuzz-chosen inputs.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(uint16(3), uint16(7), uint32(5), uint32(9))
	f.Fuzz(func(t *testing.T, dRaw, bitsRaw uint16, a, b uint32) {
		dims := int(dRaw%12) + 1
		bits := int(bitsRaw%MaxBits) + 1
		enc, err := NewUnitEncoder(dims, bits)
		if err != nil {
			t.Fatal(err)
		}
		ga := make([]uint32, dims)
		gb := make([]uint32, dims)
		for i := range ga {
			ga[i] = (a + uint32(i)*2654435761) & enc.MaxGrid()
			gb[i] = (b + uint32(i)*40503) & enc.MaxGrid()
		}
		if got := enc.DecodeGrid(enc.EncodeGrid(ga)); !equalU32(got, ga) {
			t.Fatalf("roundtrip %v -> %v", ga, got)
		}
		// Monotonicity: componentwise min encodes <= both.
		lo := make([]uint32, dims)
		for i := range lo {
			lo[i] = ga[i]
			if gb[i] < lo[i] {
				lo[i] = gb[i]
			}
		}
		zlo := enc.EncodeGrid(lo)
		if Compare(zlo, enc.EncodeGrid(ga)) > 0 || Compare(zlo, enc.EncodeGrid(gb)) > 0 {
			t.Fatalf("monotonicity violated: lo=%v a=%v b=%v", lo, ga, gb)
		}
	})
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
