package zorder

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"zskyline/internal/point"
)

func randBlock(rng *rand.Rand, n, dims int) point.Block {
	pts := make([]point.Point, n)
	for i := range pts {
		p := make(point.Point, dims)
		for d := range p {
			p[d] = rng.Float64()
		}
		pts[i] = p
	}
	return point.BlockOf(dims, pts)
}

func TestEncodeBlockMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range []int{1, 2, 3, 5, 8, 11} {
		for _, bits := range []int{1, 4, 13, 32} {
			enc, err := NewUnitEncoder(dims, bits)
			if err != nil {
				t.Fatal(err)
			}
			b := randBlock(rng, 97, dims)
			zc := enc.EncodeBlock(ZCol{}, b)
			if zc.Len() != b.Len() || zc.Words != enc.Words() {
				t.Fatalf("dims=%d bits=%d: got %d rows stride %d, want %d rows stride %d",
					dims, bits, zc.Len(), zc.Words, b.Len(), enc.Words())
			}
			for i := 0; i < b.Len(); i++ {
				want := enc.Encode(b.Row(i))
				if !Equal(zc.At(i), want) {
					t.Fatalf("dims=%d bits=%d row %d: EncodeBlock %v != Encode %v",
						dims, bits, i, zc.At(i), want)
				}
			}
		}
	}
}

func TestEncodeBlockGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	enc, err := NewUnitEncoder(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	b := randBlock(rng, 64, 6)
	zc, grid := enc.EncodeBlockGrid(ZCol{}, nil, b)
	if len(grid) != b.Len()*enc.Dims() {
		t.Fatalf("grid arena %d entries, want %d", len(grid), b.Len()*enc.Dims())
	}
	for i := 0; i < b.Len(); i++ {
		wantG := enc.Grid(b.Row(i))
		gotG := grid[i*enc.Dims() : (i+1)*enc.Dims()]
		if !equalU32(gotG, wantG) {
			t.Fatalf("row %d grid %v, want %v", i, gotG, wantG)
		}
		if got := enc.DecodeGrid(zc.At(i)); !equalU32(got, wantG) {
			t.Fatalf("row %d decoded grid %v, want %v", i, got, wantG)
		}
	}
	// Arena reuse: re-encoding into the returned storage must not grow it.
	zc2, grid2 := enc.EncodeBlockGrid(zc, grid, b)
	if &zc2.Data[0] != &zc.Data[0] || &grid2[0] != &grid[0] {
		t.Fatal("EncodeBlockGrid reallocated despite sufficient capacity")
	}
}

func TestEncodeIntoAndRegionInto(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	enc, err := NewUnitEncoder(5, 12)
	if err != nil {
		t.Fatal(err)
	}
	g := make([]uint32, enc.Dims())
	z := make(ZAddr, enc.Words())
	minG := make([]uint32, enc.Dims())
	maxG := make([]uint32, enc.Dims())
	scratch := make(ZAddr, enc.Words())
	for trial := 0; trial < 50; trial++ {
		b := randBlock(rng, 2, 5)
		p, q := b.Row(0), b.Row(1)
		if !Equal(enc.EncodeInto(z, g, p), enc.Encode(p)) {
			t.Fatalf("EncodeInto disagrees with Encode for %v", p)
		}
		zp, zq := enc.Encode(p), enc.Encode(q)
		alpha, beta := zp, zq
		if Compare(alpha, beta) > 0 {
			alpha, beta = beta, alpha
		}
		want := enc.RegionOf(alpha, beta)
		got := enc.RegionInto(minG, maxG, scratch, alpha, beta)
		if !equalU32(got.MinG, want.MinG) || !equalU32(got.MaxG, want.MaxG) {
			t.Fatalf("RegionInto %v/%v, want %v/%v", got.MinG, got.MaxG, want.MinG, want.MaxG)
		}
	}
}

func TestZColSliceAndCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	enc, err := NewUnitEncoder(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	b := randBlock(rng, 40, 4)
	zc := enc.EncodeBlock(ZCol{}, b)
	for i := 0; i < zc.Len(); i++ {
		for j := 0; j < zc.Len(); j++ {
			if got, want := zc.Compare(i, j), Compare(zc.At(i), zc.At(j)); got != want {
				t.Fatalf("Compare(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
	sub := zc.Slice(10, 25)
	if sub.Len() != 15 {
		t.Fatalf("slice len %d, want 15", sub.Len())
	}
	for i := 0; i < sub.Len(); i++ {
		if !Equal(sub.At(i), zc.At(10+i)) {
			t.Fatalf("slice row %d mismatch", i)
		}
	}
	// Three-index slicing: appending to the sub-column must not clobber
	// the parent's row 25.
	before := zc.At(25).Clone()
	sub.AppendAddr(zc.At(0))
	if !Equal(zc.At(25), before) {
		t.Fatal("append to slice clobbered parent column")
	}
}

func TestZColAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	enc, err := NewUnitEncoder(3, 20)
	if err != nil {
		t.Fatal(err)
	}
	b := randBlock(rng, 12, 3)
	zc := enc.EncodeBlock(ZCol{}, b)
	out := ZCol{Words: zc.Words}
	for i := 0; i < 4; i++ {
		out.AppendAddr(zc.At(i))
	}
	for i := 4; i < 8; i++ {
		out.AppendRow(zc, i)
	}
	out.AppendCol(zc.Slice(8, 12))
	if out.Len() != 12 {
		t.Fatalf("appended column has %d rows, want 12", out.Len())
	}
	for i := 0; i < 12; i++ {
		if !Equal(out.At(i), zc.At(i)) {
			t.Fatalf("row %d mismatch after append", i)
		}
	}
	clone := zc.Clone()
	zc.Data[0] ^= 1
	if Equal(clone.At(0), zc.At(0)) {
		t.Fatal("Clone shares storage with source")
	}
}

func TestZColMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	enc, err := NewUnitEncoder(7, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 33} {
		zc := enc.EncodeBlock(ZCol{}, randBlock(rng, n, 7))
		raw, err := zc.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back ZCol
		if err := back.UnmarshalBinary(raw); err != nil {
			t.Fatal(err)
		}
		if back.Len() != zc.Len() || back.Words != zc.Words {
			t.Fatalf("n=%d: roundtrip %d rows stride %d, want %d/%d",
				n, back.Len(), back.Words, zc.Len(), zc.Words)
		}
		for i := 0; i < zc.Len(); i++ {
			if !Equal(back.At(i), zc.At(i)) {
				t.Fatalf("n=%d row %d mismatch after roundtrip", n, i)
			}
		}
		// Gob path (the rule-blob escape hatch).
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(zc); err != nil {
			t.Fatal(err)
		}
		var gback ZCol
		if err := gob.NewDecoder(&buf).Decode(&gback); err != nil {
			t.Fatal(err)
		}
		if gback.Len() != zc.Len() {
			t.Fatalf("n=%d: gob roundtrip %d rows, want %d", n, gback.Len(), zc.Len())
		}
	}
	var zero ZCol
	if err := zero.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated frame decoded without error")
	}
	ragged := ZCol{Words: 2, Data: []uint64{1, 2, 3}}
	if _, err := ragged.MarshalBinary(); err == nil {
		t.Fatal("ragged column marshaled without error")
	}
}
