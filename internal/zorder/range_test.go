package zorder

import "testing"

func TestRangeContains(t *testing.T) {
	full := Range{}
	for _, a := range []ZAddr{{0}, {42}, {^uint64(0)}} {
		if !full.Contains(a) {
			t.Fatalf("full curve misses %v", a)
		}
	}
	r := Range{Lo: ZAddr{10}, Hi: ZAddr{20}}
	cases := []struct {
		a    uint64
		want bool
	}{{9, false}, {10, true}, {19, true}, {20, false}}
	for _, c := range cases {
		if got := r.Contains(ZAddr{c.a}); got != c.want {
			t.Fatalf("Contains(%d) = %v", c.a, got)
		}
	}
	tail := Range{Lo: ZAddr{10}}
	if tail.Contains(ZAddr{9}) || !tail.Contains(ZAddr{^uint64(0)}) {
		t.Fatal("open-ended tail range wrong")
	}
	head := Range{Hi: ZAddr{10}}
	if !head.Contains(ZAddr{0}) || head.Contains(ZAddr{10}) {
		t.Fatal("open-ended head range wrong")
	}
}

func TestRangeOverlaps(t *testing.T) {
	a := Range{Lo: ZAddr{10}, Hi: ZAddr{20}}
	cases := []struct {
		o    Range
		want bool
	}{
		{Range{}, true},                               // full curve
		{Range{Lo: ZAddr{20}, Hi: ZAddr{30}}, false},  // adjacent above
		{Range{Lo: ZAddr{0}, Hi: ZAddr{10}}, false},   // adjacent below
		{Range{Lo: ZAddr{19}, Hi: ZAddr{25}}, true},   // one shared address
		{Range{Lo: ZAddr{12}, Hi: ZAddr{15}}, true},   // nested
		{Range{Lo: ZAddr{15}, Hi: ZAddr{15}}, false},  // empty
		{Range{Lo: ZAddr{15}, Hi: ZAddr{12}}, false},  // inverted = empty
		{Range{Hi: ZAddr{11}}, true},                  // open head
		{Range{Lo: ZAddr{19}}, true},                  // open tail
	}
	for i, c := range cases {
		if got := a.Overlaps(c.o); got != c.want {
			t.Fatalf("case %d: Overlaps = %v, want %v", i, got, c.want)
		}
		if got := c.o.Overlaps(a); got != c.want {
			t.Fatalf("case %d: Overlaps not symmetric", i)
		}
	}
}

func TestRangeFilterRows(t *testing.T) {
	zc := ZCol{Words: 1, Data: []uint64{5, 10, 15, 20, 25}}
	got := Range{Lo: ZAddr{10}, Hi: ZAddr{21}}.FilterRows(nil, zc)
	want := []int32{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if rows := (Range{}).FilterRows(nil, zc); len(rows) != 5 {
		t.Fatalf("full curve kept %d rows", len(rows))
	}
}
