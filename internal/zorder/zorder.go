// Package zorder implements the Z-order (Morton) space-filling curve
// for arbitrary dimensionality, together with the RZ-region machinery
// of Lee et al.'s ZB-tree that the paper builds on (Definitions 2-3,
// Lemma 1).
//
// A point is quantized to a b-bit integer grid per dimension and its
// coordinate bits are interleaved most-significant first, one bit per
// dimension per level, producing a Z-address of d*b bits packed
// big-endian into []uint64 words. Lexicographic comparison of packed
// words is exactly Z-order.
//
// Grid-level dominance tests in this package are deliberately
// conservative with respect to the original float coordinates: they
// only report dominance when strict inequality holds at the grid level
// in every dimension, which (because floor quantization is monotone)
// implies strict float dominance. See DESIGN.md §5.
package zorder

import (
	"fmt"
	"math"
	"math/bits"

	"zskyline/internal/point"
)

// MaxBits is the largest supported grid resolution per dimension.
const MaxBits = 32

// ZAddr is a packed Z-address: d*b bits, big-endian within and across
// uint64 words, padded with zero bits at the tail of the last word.
type ZAddr []uint64

// Encoder quantizes float points into a fixed integer grid and maps
// them onto the Z-order curve. An Encoder is immutable after creation
// and safe for concurrent use.
type Encoder struct {
	dims  int
	bits  int
	mins  []float64
	scale []float64 // multiplier from (v - min) to grid cells
	width []float64 // cell width per dimension (0 if degenerate)
	words int       // number of uint64 words per address
	maxG  uint32    // largest grid coordinate: 2^bits - 1
}

// NewEncoder builds an Encoder for dims dimensions at bits resolution
// over the bounding box [mins, maxs]. Degenerate dimensions (min ==
// max) quantize to cell 0. Values outside the box are clamped; callers
// that need exactness should derive bounds from the full dataset.
func NewEncoder(dims, bitsPerDim int, mins, maxs []float64) (*Encoder, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("zorder: dims must be positive, got %d", dims)
	}
	if bitsPerDim <= 0 || bitsPerDim > MaxBits {
		return nil, fmt.Errorf("zorder: bits per dim must be in [1,%d], got %d", MaxBits, bitsPerDim)
	}
	if len(mins) != dims || len(maxs) != dims {
		return nil, fmt.Errorf("zorder: bounds length %d/%d, want %d", len(mins), len(maxs), dims)
	}
	e := &Encoder{
		dims:  dims,
		bits:  bitsPerDim,
		mins:  append([]float64(nil), mins...),
		scale: make([]float64, dims),
		width: make([]float64, dims),
		words: (dims*bitsPerDim + 63) / 64,
		maxG:  uint32(1)<<uint(bitsPerDim) - 1,
	}
	cells := float64(uint64(1) << uint(bitsPerDim))
	for i := 0; i < dims; i++ {
		span := maxs[i] - mins[i]
		if span < 0 || math.IsNaN(span) || math.IsInf(span, 0) {
			return nil, fmt.Errorf("zorder: invalid bounds on dim %d: [%v,%v]", i, mins[i], maxs[i])
		}
		if span == 0 {
			e.scale[i] = 0
			e.width[i] = 0
			continue
		}
		e.scale[i] = cells / span
		e.width[i] = span / cells
	}
	return e, nil
}

// NewUnitEncoder is NewEncoder over the unit hypercube [0,1]^dims.
func NewUnitEncoder(dims, bitsPerDim int) (*Encoder, error) {
	mins := make([]float64, dims)
	maxs := make([]float64, dims)
	for i := range maxs {
		maxs[i] = 1
	}
	return NewEncoder(dims, bitsPerDim, mins, maxs)
}

// Dims returns the dimensionality the encoder was built for.
func (e *Encoder) Dims() int { return e.dims }

// Bits returns the grid resolution in bits per dimension.
func (e *Encoder) Bits() int { return e.bits }

// Words returns the number of uint64 words in each address.
func (e *Encoder) Words() int { return e.words }

// MaxGrid returns the largest representable grid coordinate.
func (e *Encoder) MaxGrid() uint32 { return e.maxG }

// Grid floor-quantizes a float point to grid coordinates, clamping to
// the encoder's box.
func (e *Encoder) Grid(p point.Point) []uint32 {
	return e.GridInto(make([]uint32, e.dims), p)
}

// GridInto quantizes p into dst (which must have dims entries) and
// returns dst — the allocation-free variant for per-point hot loops
// that reuse one scratch buffer.
func (e *Encoder) GridInto(dst []uint32, p point.Point) []uint32 {
	g := dst
	for i := 0; i < e.dims; i++ {
		g[i] = 0
		if e.scale[i] == 0 {
			continue
		}
		c := (p[i] - e.mins[i]) * e.scale[i]
		switch {
		case c <= 0:
			g[i] = 0
		case c >= float64(e.maxG):
			g[i] = e.maxG
		default:
			g[i] = uint32(c)
		}
	}
	return g
}

// CellMin returns the lower corner of the grid cell in float space.
func (e *Encoder) CellMin(g []uint32) point.Point {
	p := make(point.Point, e.dims)
	for i := range p {
		p[i] = e.mins[i] + float64(g[i])*e.width[i]
	}
	return p
}

// CellMax returns the upper corner of the grid cell in float space.
func (e *Encoder) CellMax(g []uint32) point.Point {
	p := make(point.Point, e.dims)
	for i := range p {
		p[i] = e.mins[i] + float64(g[i]+1)*e.width[i]
	}
	return p
}

// Encode maps a float point to its Z-address.
func (e *Encoder) Encode(p point.Point) ZAddr {
	return e.EncodeGrid(e.Grid(p))
}

// EncodeInto quantizes p into g and interleaves it into z, returning
// z. g must have Dims() entries and z Words() entries; neither
// allocates, making this the scalar building block for hot loops that
// carry their own scratch (see also EncodeBlock for whole blocks).
func (e *Encoder) EncodeInto(z ZAddr, g []uint32, p point.Point) ZAddr {
	return e.EncodeGridInto(z, e.GridInto(g, p))
}

// EncodeGrid interleaves already-quantized grid coordinates.
func (e *Encoder) EncodeGrid(g []uint32) ZAddr {
	return e.EncodeGridInto(make(ZAddr, e.words), g)
}

// EncodeGridInto interleaves g into z (which must have Words()
// entries, and is zeroed first) and returns z — the allocation-free
// variant for hot loops that reuse one scratch address.
func (e *Encoder) EncodeGridInto(z ZAddr, g []uint32) ZAddr {
	for i := range z {
		z[i] = 0
	}
	pos := 0
	for level := e.bits - 1; level >= 0; level-- {
		for d := 0; d < e.dims; d++ {
			bit := (g[d] >> uint(level)) & 1
			if bit != 0 {
				z[pos/64] |= 1 << uint(63-pos%64)
			}
			pos++
		}
	}
	return z
}

// DecodeGrid reverses EncodeGrid, recovering grid coordinates.
func (e *Encoder) DecodeGrid(z ZAddr) []uint32 {
	return e.DecodeGridInto(make([]uint32, e.dims), z)
}

// DecodeGridInto reverses EncodeGrid into g (which must have Dims()
// entries) and returns g — the allocation-free variant.
func (e *Encoder) DecodeGridInto(g []uint32, z ZAddr) []uint32 {
	for i := range g {
		g[i] = 0
	}
	pos := 0
	for level := e.bits - 1; level >= 0; level-- {
		for d := 0; d < e.dims; d++ {
			if z[pos/64]&(1<<uint(63-pos%64)) != 0 {
				g[d] |= 1 << uint(level)
			}
			pos++
		}
	}
	return g
}

// TotalBits returns the number of meaningful bits in an address.
func (e *Encoder) TotalBits() int { return e.dims * e.bits }

// Compare orders two addresses along the Z-curve: -1, 0, or +1.
func Compare(a, b ZAddr) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Equal reports whether two addresses are identical.
func Equal(a, b ZAddr) bool { return Compare(a, b) == 0 }

// Clone copies an address.
func (z ZAddr) Clone() ZAddr { return append(ZAddr(nil), z...) }

// String renders the address as a binary string of totalBits length.
func (z ZAddr) String() string {
	buf := make([]byte, 0, len(z)*64)
	for _, w := range z {
		for i := 63; i >= 0; i-- {
			if w&(1<<uint(i)) != 0 {
				buf = append(buf, '1')
			} else {
				buf = append(buf, '0')
			}
		}
	}
	return string(buf)
}

// CommonPrefixLen returns the number of leading bits shared by a and
// b, capped at totalBits.
func CommonPrefixLen(a, b ZAddr, totalBits int) int {
	n := 0
	for i := range a {
		x := a[i] ^ b[i]
		if x == 0 {
			n += 64
			continue
		}
		n += bits.LeadingZeros64(x)
		break
	}
	if n > totalBits {
		n = totalBits
	}
	return n
}

// Region is an RZ-region (Definition 2/3): the smallest Z-region
// enclosing a set of Z-addresses, encoded by the grid coordinates of
// its min and max corner points. MinG and MaxG are the decoded
// coordinates of minpt and maxpt.
type Region struct {
	MinG []uint32
	MaxG []uint32
}

// RegionOf computes the RZ-region spanned by two boundary addresses
// alpha <= beta: the common prefix padded with zeros gives minpt, with
// ones gives maxpt.
func (e *Encoder) RegionOf(alpha, beta ZAddr) Region {
	return e.RegionInto(make([]uint32, e.dims), make([]uint32, e.dims),
		make(ZAddr, e.words), alpha, beta)
}

// RegionInto computes RegionOf into caller-owned storage: minG and
// maxG (Dims() entries each) receive the corner grids, and scratch
// (Words() entries) holds the intermediate padded address. Nothing
// allocates, so index builds can compute one region per node into
// slab arenas.
func (e *Encoder) RegionInto(minG, maxG []uint32, scratch ZAddr, alpha, beta ZAddr) Region {
	total := e.TotalBits()
	cpl := CommonPrefixLen(alpha, beta, total)
	for i := range scratch {
		scratch[i] = 0
	}
	copyPrefix(scratch, alpha, cpl)
	e.DecodeGridInto(minG, scratch)
	setOnes(scratch, cpl, total)
	e.DecodeGridInto(maxG, scratch)
	return Region{MinG: minG, MaxG: maxG}
}

// RegionOfPoint is the degenerate region covering a single address.
func (e *Encoder) RegionOfPoint(z ZAddr) Region {
	g := e.DecodeGrid(z)
	return Region{MinG: g, MaxG: g}
}

func copyPrefix(dst, src ZAddr, n int) {
	fullWords := n / 64
	copy(dst[:fullWords], src[:fullWords])
	rem := n % 64
	if rem > 0 && fullWords < len(src) {
		mask := ^uint64(0) << uint(64-rem)
		dst[fullWords] = src[fullWords] & mask
	}
}

func setOnes(a ZAddr, from, to int) {
	for i := from; i < to; i++ {
		a[i/64] |= 1 << uint(63-i%64)
	}
}

// --- Conservative grid-level dominance tests (DESIGN.md §5) ---
//
// gridStrictlyLess(a, b) in every dimension implies strict float
// dominance of any float point quantizing to a over any float point
// quantizing to b. All helpers below reduce to that primitive.

// GridStrictDominates reports a[i] < b[i] for every dimension: the
// only grid relation that certifies float dominance.
func GridStrictDominates(a, b []uint32) bool {
	for i := range a {
		if a[i] >= b[i] {
			return false
		}
	}
	return true
}

// GridDominatesWeak reports a[i] <= b[i] for every dimension with at
// least one strict. This does NOT certify float dominance; it is used
// only where an exact leaf-level check follows.
func GridDominatesWeak(a, b []uint32) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// GridSomeGreater reports whether a[i] > b[i] in at least one
// dimension. If region-min a has some dimension strictly above point
// grid b, no float point of the region can dominate any float point of
// b's cell.
func GridSomeGreater(a, b []uint32) bool {
	for i := range a {
		if a[i] > b[i] {
			return true
		}
	}
	return false
}

// RegionDominatesRegion reports that every float point in region a
// strictly dominates every float point in region b (Lemma 1 case 1,
// conservatively): maxpt(a) < minpt(b) strictly in every dimension.
func RegionDominatesRegion(a, b Region) bool {
	return GridStrictDominates(a.MaxG, b.MinG)
}

// RegionsIncomparable reports that no float point of either region can
// dominate a float point of the other (Lemma 1 case 2, conservatively):
// each region's min exceeds the other's max in some dimension.
func RegionsIncomparable(a, b Region) bool {
	return GridSomeGreater(a.MinG, b.MaxG) && GridSomeGreater(b.MinG, a.MaxG)
}

// RegionPartiallyDominates reports Lemma 1 case 3: a is not a full
// dominator of b, but a's best corner could dominate part of b.
func RegionPartiallyDominates(a, b Region) bool {
	return !RegionDominatesRegion(a, b) && !GridSomeGreater(a.MinG, b.MaxG)
}

// PointGridDominatesRegion reports that a float point with grid
// coordinates g strictly dominates every float point in region r.
func PointGridDominatesRegion(g []uint32, r Region) bool {
	return GridStrictDominates(g, r.MinG)
}

// RegionCannotDominatePointGrid reports that no float point in region
// r can dominate any float point with grid coordinates g.
func RegionCannotDominatePointGrid(r Region, g []uint32) bool {
	return GridSomeGreater(r.MinG, g)
}

// DominanceVolume computes V_dom (Definition 5) between two partition
// RZ-regions in float space: the paper takes, per dimension, the
// largest and second-largest of the four corner coordinates and
// integrates their gaps. Commutative by construction; zero for i == j
// is the caller's concern.
func (e *Encoder) DominanceVolume(a, b Region) float64 {
	vol := 1.0
	aMin, aMax := e.CellMin(a.MinG), e.CellMax(a.MaxG)
	bMin, bMax := e.CellMin(b.MinG), e.CellMax(b.MaxG)
	for k := 0; k < e.dims; k++ {
		x := [4]float64{aMin[k], aMax[k], bMin[k], bMax[k]}
		// Find largest and second largest of the four.
		first, second := math.Inf(-1), math.Inf(-1)
		for _, v := range x {
			if v > first {
				second = first
				first = v
			} else if v > second {
				second = v
			}
		}
		side := first - second
		if side <= 0 {
			return 0
		}
		vol *= side
	}
	return vol
}
