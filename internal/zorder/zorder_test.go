package zorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"zskyline/internal/point"
)

func mustEnc(t *testing.T, dims, bits int) *Encoder {
	t.Helper()
	e, err := NewUnitEncoder(dims, bits)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEncoderValidation(t *testing.T) {
	if _, err := NewUnitEncoder(0, 8); err == nil {
		t.Error("zero dims should fail")
	}
	if _, err := NewUnitEncoder(2, 0); err == nil {
		t.Error("zero bits should fail")
	}
	if _, err := NewUnitEncoder(2, 33); err == nil {
		t.Error("bits > 32 should fail")
	}
	if _, err := NewEncoder(2, 8, []float64{0}, []float64{1, 1}); err == nil {
		t.Error("bad bounds length should fail")
	}
	if _, err := NewEncoder(1, 8, []float64{1}, []float64{0}); err == nil {
		t.Error("inverted bounds should fail")
	}
}

func TestGridQuantization(t *testing.T) {
	e := mustEnc(t, 2, 2) // 4 cells per dim over [0,1]
	cases := []struct {
		p    point.Point
		want []uint32
	}{
		{point.Point{0, 0}, []uint32{0, 0}},
		{point.Point{0.24, 0.26}, []uint32{0, 1}},
		{point.Point{0.5, 0.75}, []uint32{2, 3}},
		{point.Point{1, 1}, []uint32{3, 3}},  // clamped to max cell
		{point.Point{-5, 9}, []uint32{0, 3}}, // clamped outside box
		{point.Point{0.999, 0}, []uint32{3, 0}},
	}
	for _, c := range cases {
		g := e.Grid(c.p)
		for i := range g {
			if g[i] != c.want[i] {
				t.Errorf("Grid(%v) = %v, want %v", c.p, g, c.want)
				break
			}
		}
	}
}

func TestDegenerateDimension(t *testing.T) {
	e, err := NewEncoder(2, 4, []float64{0, 5}, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	g := e.Grid(point.Point{0.5, 5})
	if g[1] != 0 {
		t.Errorf("degenerate dim should quantize to 0, got %d", g[1])
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := 1 + r.Intn(12)
		bits := 1 + r.Intn(MaxBits)
		e, err := NewUnitEncoder(dims, bits)
		if err != nil {
			return false
		}
		g := make([]uint32, dims)
		for i := range g {
			g[i] = uint32(r.Int63()) & e.MaxGrid()
		}
		got := e.DecodeGrid(e.EncodeGrid(g))
		for i := range g {
			if got[i] != g[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestKnownInterleaving(t *testing.T) {
	// 2 dims, 2 bits: point (x=1(01), y=2(10)) interleaves MSB-first
	// x-bit then y-bit per level: level1: x=0,y=1; level0: x=1,y=0 ->
	// bits 0110.
	e := mustEnc(t, 2, 2)
	z := e.EncodeGrid([]uint32{1, 2})
	if got := z.String()[:4]; got != "0110" {
		t.Errorf("interleaving = %q, want 0110", got)
	}
}

// Property: componentwise <= on grid coordinates implies Z-address <=.
func TestZOrderMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 4000; iter++ {
		dims := 1 + rng.Intn(8)
		bits := 1 + rng.Intn(16)
		e, _ := NewUnitEncoder(dims, bits)
		a := make([]uint32, dims)
		b := make([]uint32, dims)
		for i := range a {
			a[i] = uint32(rng.Int63()) & e.MaxGrid()
			// b >= a componentwise
			room := e.MaxGrid() - a[i]
			b[i] = a[i]
			if room > 0 {
				b[i] += uint32(rng.Int63n(int64(room) + 1))
			}
		}
		if Compare(e.EncodeGrid(a), e.EncodeGrid(b)) > 0 {
			t.Fatalf("monotonicity violated: a=%v b=%v", a, b)
		}
	}
}

func TestCompareMatchesStringOrder(t *testing.T) {
	e := mustEnc(t, 3, 21) // 63 bits: within one word
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 1000; iter++ {
		a := make([]uint32, 3)
		b := make([]uint32, 3)
		for i := range a {
			a[i] = uint32(rng.Int63()) & e.MaxGrid()
			b[i] = uint32(rng.Int63()) & e.MaxGrid()
		}
		za, zb := e.EncodeGrid(a), e.EncodeGrid(b)
		sa, sb := za.String(), zb.String()
		want := 0
		if sa < sb {
			want = -1
		} else if sa > sb {
			want = 1
		}
		if got := Compare(za, zb); got != want {
			t.Fatalf("Compare=%d want %d for %s vs %s", got, want, sa, sb)
		}
	}
}

func TestCommonPrefixLen(t *testing.T) {
	e := mustEnc(t, 2, 8)
	a := e.EncodeGrid([]uint32{0, 0})
	if got := CommonPrefixLen(a, a, e.TotalBits()); got != e.TotalBits() {
		t.Errorf("identical addrs prefix = %d, want %d", got, e.TotalBits())
	}
	b := a.Clone()
	b[0] |= 1 << 63 // flip the very first bit
	if got := CommonPrefixLen(a, b, e.TotalBits()); got != 0 {
		t.Errorf("first-bit diff prefix = %d, want 0", got)
	}
}

// Paper example, §3.2: Z-addresses 10110, 10011, 10010 share prefix
// "10"; minpt = 10000, maxpt = 10111.
func TestRegionOfPaperExample(t *testing.T) {
	// 5 bits: 1 dim x 5 bits keeps addresses literal.
	e, err := NewUnitEncoder(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	alpha := e.EncodeGrid([]uint32{0b10010})
	beta := e.EncodeGrid([]uint32{0b10110})
	r := e.RegionOf(alpha, beta)
	if r.MinG[0] != 0b10000 || r.MaxG[0] != 0b10111 {
		t.Errorf("region = [%05b, %05b], want [10000, 10111]", r.MinG[0], r.MaxG[0])
	}
}

// Property: RegionOf encloses both boundary addresses componentwise.
func TestRegionEnclosesBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 2000; iter++ {
		dims := 1 + rng.Intn(6)
		bits := 2 + rng.Intn(14)
		e, _ := NewUnitEncoder(dims, bits)
		ga := make([]uint32, dims)
		gb := make([]uint32, dims)
		for i := range ga {
			ga[i] = uint32(rng.Int63()) & e.MaxGrid()
			gb[i] = uint32(rng.Int63()) & e.MaxGrid()
		}
		za, zb := e.EncodeGrid(ga), e.EncodeGrid(gb)
		if Compare(za, zb) > 0 {
			za, zb = zb, za
			ga, gb = gb, ga
		}
		r := e.RegionOf(za, zb)
		for _, g := range [][]uint32{ga, gb} {
			for i := range g {
				if g[i] < r.MinG[i] || g[i] > r.MaxG[i] {
					t.Fatalf("region %v-%v does not enclose %v", r.MinG, r.MaxG, g)
				}
			}
		}
	}
}

// Property: region corners bound every address between the boundaries
// in Z-order (the defining property of an RZ-region).
func TestRegionCoversIntermediateAddresses(t *testing.T) {
	e, _ := NewUnitEncoder(2, 4)
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 300; iter++ {
		ga := []uint32{uint32(rng.Intn(16)), uint32(rng.Intn(16))}
		gb := []uint32{uint32(rng.Intn(16)), uint32(rng.Intn(16))}
		gm := []uint32{uint32(rng.Intn(16)), uint32(rng.Intn(16))}
		za, zb, zm := e.EncodeGrid(ga), e.EncodeGrid(gb), e.EncodeGrid(gm)
		if Compare(za, zb) > 0 {
			za, zb = zb, za
		}
		if Compare(za, zm) <= 0 && Compare(zm, zb) <= 0 {
			r := e.RegionOf(za, zb)
			g := e.DecodeGrid(zm)
			for i := range g {
				if g[i] < r.MinG[i] || g[i] > r.MaxG[i] {
					t.Fatalf("intermediate %v outside region [%v,%v]", g, r.MinG, r.MaxG)
				}
			}
		}
	}
}

func TestGridDominanceHelpers(t *testing.T) {
	if !GridStrictDominates([]uint32{1, 2}, []uint32{3, 4}) {
		t.Error("strict dominate failed")
	}
	if GridStrictDominates([]uint32{1, 4}, []uint32{3, 4}) {
		t.Error("tie should not strict-dominate")
	}
	if !GridDominatesWeak([]uint32{1, 4}, []uint32{3, 4}) {
		t.Error("weak dominate with tie failed")
	}
	if GridDominatesWeak([]uint32{3, 4}, []uint32{3, 4}) {
		t.Error("equal grids should not weak-dominate")
	}
	if !GridSomeGreater([]uint32{5, 0}, []uint32{4, 9}) {
		t.Error("some-greater failed")
	}
	if GridSomeGreater([]uint32{1, 1}, []uint32{1, 1}) {
		t.Error("equal grids have no greater dim")
	}
}

// The soundness property everything rests on: grid-strict dominance of
// quantized points implies float dominance of the originals.
func TestConservativeDominanceSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for iter := 0; iter < 5000; iter++ {
		dims := 1 + rng.Intn(5)
		bits := 1 + rng.Intn(10)
		e, _ := NewUnitEncoder(dims, bits)
		p := make(point.Point, dims)
		q := make(point.Point, dims)
		for i := 0; i < dims; i++ {
			p[i] = rng.Float64()
			q[i] = rng.Float64()
		}
		if GridStrictDominates(e.Grid(p), e.Grid(q)) && !point.Dominates(p, q) {
			t.Fatalf("unsound: grid strict dominance without float dominance: %v %v", p, q)
		}
		// And the no-dominate direction: if region-min grid has a
		// greater dim than q's grid, p cannot dominate q when p lies in
		// a cell at or above that region min.
		if GridSomeGreater(e.Grid(p), e.Grid(q)) && point.Dominates(p, q) {
			t.Fatalf("unsound skip: %v dominates %v but grid says some-greater", p, q)
		}
	}
}

func TestRegionRelations(t *testing.T) {
	a := Region{MinG: []uint32{0, 0}, MaxG: []uint32{1, 1}}
	b := Region{MinG: []uint32{2, 2}, MaxG: []uint32{3, 3}}
	c := Region{MinG: []uint32{2, 0}, MaxG: []uint32{3, 1}}
	if !RegionDominatesRegion(a, b) {
		t.Error("a should dominate b")
	}
	if RegionDominatesRegion(b, a) {
		t.Error("b should not dominate a")
	}
	if !RegionsIncomparable(b, c) {
		// b min (2,2) vs c max (3,1): 2>1 in dim 1; c min (2,0) vs b
		// max (3,3): no dim greater -> actually comparable.
		t.Skip("relation depends on geometry; covered by property test below")
	}
}

// Property: the three Lemma 1 relations are mutually consistent with
// exhaustive float checks over the cells.
func TestLemma1Soundness(t *testing.T) {
	e, _ := NewUnitEncoder(2, 3)
	rng := rand.New(rand.NewSource(41))
	cell := func(g []uint32) point.Point {
		// Random float point inside the cell.
		p := e.CellMin(g)
		q := e.CellMax(g)
		return point.Point{p[0] + rng.Float64()*(q[0]-p[0]), p[1] + rng.Float64()*(q[1]-p[1])}
	}
	for iter := 0; iter < 2000; iter++ {
		mk := func() Region {
			a := []uint32{uint32(rng.Intn(8)), uint32(rng.Intn(8))}
			b := []uint32{uint32(rng.Intn(8)), uint32(rng.Intn(8))}
			za, zb := e.EncodeGrid(a), e.EncodeGrid(b)
			if Compare(za, zb) > 0 {
				za, zb = zb, za
			}
			return e.RegionOf(za, zb)
		}
		ra, rb := mk(), mk()
		if RegionDominatesRegion(ra, rb) {
			// Any sampled float point of ra must dominate any of rb.
			pa := cell([]uint32{ra.MinG[0] + uint32(rng.Intn(int(ra.MaxG[0]-ra.MinG[0])+1)), ra.MinG[1] + uint32(rng.Intn(int(ra.MaxG[1]-ra.MinG[1])+1))})
			pb := cell([]uint32{rb.MinG[0] + uint32(rng.Intn(int(rb.MaxG[0]-rb.MinG[0])+1)), rb.MinG[1] + uint32(rng.Intn(int(rb.MaxG[1]-rb.MinG[1])+1))})
			if !point.Dominates(pa, pb) {
				t.Fatalf("Lemma1 case 1 unsound: %v vs %v (regions %+v %+v)", pa, pb, ra, rb)
			}
		}
		if RegionsIncomparable(ra, rb) {
			pa := cell(ra.MinG)
			pb := cell(rb.MinG)
			if point.Dominates(pa, pb) || point.Dominates(pb, pa) {
				t.Fatalf("Lemma1 case 2 unsound: %v vs %v", pa, pb)
			}
		}
	}
}

func TestDominanceVolume(t *testing.T) {
	e, err := NewEncoder(2, 4, []float64{0, 0}, []float64{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	// Region a = cell block [0,4)x[0,4); region b = [8,12)x[8,12).
	a := Region{MinG: []uint32{0, 0}, MaxG: []uint32{3, 3}}
	b := Region{MinG: []uint32{8, 8}, MaxG: []uint32{11, 11}}
	// Per dim the four corner coords are {0,4,8,12}: largest 12, second
	// 8, gap 4 -> volume 16.
	if got := e.DominanceVolume(a, b); got != 16 {
		t.Errorf("DominanceVolume = %v, want 16", got)
	}
	// Commutativity.
	if e.DominanceVolume(a, b) != e.DominanceVolume(b, a) {
		t.Error("DominanceVolume not commutative")
	}
	// Identical regions: largest appears twice per dim -> gap 0.
	if got := e.DominanceVolume(a, a); got != 0 {
		t.Errorf("self volume = %v, want 0", got)
	}
}

func TestDominanceVolumeCommutativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	e, _ := NewUnitEncoder(3, 6)
	mk := func() Region {
		a := make([]uint32, 3)
		b := make([]uint32, 3)
		for i := range a {
			a[i] = uint32(rng.Intn(64))
			b[i] = uint32(rng.Intn(64))
		}
		za, zb := e.EncodeGrid(a), e.EncodeGrid(b)
		if Compare(za, zb) > 0 {
			za, zb = zb, za
		}
		return e.RegionOf(za, zb)
	}
	for i := 0; i < 1000; i++ {
		ra, rb := mk(), mk()
		v1, v2 := e.DominanceVolume(ra, rb), e.DominanceVolume(rb, ra)
		if v1 != v2 {
			t.Fatalf("volume not commutative: %v vs %v", v1, v2)
		}
		if v1 < 0 {
			t.Fatalf("negative volume %v", v1)
		}
	}
}

func TestMultiWordAddresses(t *testing.T) {
	// 10 dims x 16 bits = 160 bits = 3 words.
	e, err := NewUnitEncoder(10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if e.Words() != 3 {
		t.Fatalf("Words = %d, want 3", e.Words())
	}
	rng := rand.New(rand.NewSource(47))
	for iter := 0; iter < 500; iter++ {
		g := make([]uint32, 10)
		for i := range g {
			g[i] = uint32(rng.Intn(1 << 16))
		}
		got := e.DecodeGrid(e.EncodeGrid(g))
		for i := range g {
			if got[i] != g[i] {
				t.Fatalf("multi-word roundtrip failed at dim %d", i)
			}
		}
	}
}

func TestCellCorners(t *testing.T) {
	e, err := NewEncoder(1, 2, []float64{0}, []float64{8})
	if err != nil {
		t.Fatal(err)
	}
	// 4 cells of width 2.
	if lo := e.CellMin([]uint32{1})[0]; lo != 2 {
		t.Errorf("CellMin = %v, want 2", lo)
	}
	if hi := e.CellMax([]uint32{1})[0]; hi != 4 {
		t.Errorf("CellMax = %v, want 4", hi)
	}
}
