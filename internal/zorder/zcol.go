package zorder

import (
	"encoding/binary"
	"fmt"

	"zskyline/internal/point"
)

// ZCol is a columnar arena of Z-addresses: Len() addresses of a fixed
// Words stride packed back to back in one []uint64. It is the
// Z-address counterpart of point.Block — the unit the pipeline encodes
// exactly once per query and then threads through routing, local
// Z-search, and Z-merge, instead of re-encoding (or cloning) a ZAddr
// per point per phase.
//
// A ZCol is a view the same way a Block is: At and Slice share the
// backing array without copying, and row views use three-index slicing
// so appending to one reallocates instead of clobbering its neighbor.
// Row i of a ZCol built by Encoder.EncodeBlock is always the address of
// row i of the source block.
type ZCol struct {
	// Words is the per-address stride. A ZCol with Words == 0 is empty.
	Words int
	// Data holds Len()*Words packed words, address-major.
	Data []uint64
}

// Len returns the number of addresses.
func (c ZCol) Len() int {
	if c.Words <= 0 {
		return 0
	}
	return len(c.Data) / c.Words
}

// Bytes returns the payload size of the backing array in bytes — the
// wire-accounting estimate for one column.
func (c ZCol) Bytes() int64 { return int64(len(c.Data)) * 8 }

// At returns a zero-copy view of address i.
func (c ZCol) At(i int) ZAddr {
	lo := i * c.Words
	return ZAddr(c.Data[lo : lo+c.Words : lo+c.Words])
}

// Compare orders addresses i and j along the Z-curve without
// materializing views.
func (c ZCol) Compare(i, j int) int {
	a := c.Data[i*c.Words : (i+1)*c.Words]
	b := c.Data[j*c.Words : (j+1)*c.Words]
	for k := range a {
		if a[k] != b[k] {
			if a[k] < b[k] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Slice returns the zero-copy sub-column of addresses [lo, hi).
func (c ZCol) Slice(lo, hi int) ZCol {
	return ZCol{Words: c.Words, Data: c.Data[lo*c.Words : hi*c.Words : hi*c.Words]}
}

// Clone deep-copies the column.
func (c ZCol) Clone() ZCol {
	return ZCol{Words: c.Words, Data: append([]uint64(nil), c.Data...)}
}

// AppendAddr appends one address (which must have Words words) to the
// column's arena.
func (c *ZCol) AppendAddr(z ZAddr) {
	if len(z) != c.Words {
		panic(fmt.Sprintf("zorder: appending %d-word address to %d-word column", len(z), c.Words))
	}
	c.Data = append(c.Data, z...)
}

// AppendRow appends address i of src. Strides must match.
func (c *ZCol) AppendRow(src ZCol, i int) {
	if src.Words != c.Words {
		panic(fmt.Sprintf("zorder: appending row of %d-word column to %d-word column", src.Words, c.Words))
	}
	c.Data = append(c.Data, src.Data[i*src.Words:(i+1)*src.Words]...)
}

// AppendCol appends all of src's addresses. Strides must match.
func (c *ZCol) AppendCol(src ZCol) {
	if src.Len() == 0 {
		return
	}
	if src.Words != c.Words {
		panic(fmt.Sprintf("zorder: appending %d-word column to %d-word column", src.Words, c.Words))
	}
	c.Data = append(c.Data, src.Data...)
}

// EncodeBlock fills dst with one Z-address per row of b — the columnar
// bulk encode of the data plane. dst's backing array is reused when it
// has capacity; quantization scratch is shared across rows, so the
// whole block costs at most one allocation. The returned column has
// Words = e.Words() and row i holding the address of b.Row(i).
func (e *Encoder) EncodeBlock(dst ZCol, b point.Block) ZCol {
	dst, _ = e.encodeBlock(dst, nil, b, false)
	return dst
}

// EncodeBlockGrid is EncodeBlock but additionally fills a columnar
// grid-coordinate arena (Dims() stride per row) in the same
// quantization pass — what index builds consume. grid's backing array
// is reused when it has capacity.
func (e *Encoder) EncodeBlockGrid(dst ZCol, grid []uint32, b point.Block) (ZCol, []uint32) {
	return e.encodeBlock(dst, grid, b, true)
}

func (e *Encoder) encodeBlock(dst ZCol, grid []uint32, b point.Block, wantGrid bool) (ZCol, []uint32) {
	rows := b.Len()
	need := rows * e.words
	if cap(dst.Data) < need {
		dst.Data = make([]uint64, need)
	} else {
		dst.Data = dst.Data[:need]
	}
	dst.Words = e.words
	if wantGrid {
		gneed := rows * e.dims
		if cap(grid) < gneed {
			grid = make([]uint32, gneed)
		} else {
			grid = grid[:gneed]
		}
	}
	var gbuf [8]uint32
	g := gbuf[:0]
	if e.dims <= len(gbuf) {
		g = gbuf[:e.dims]
	} else {
		g = make([]uint32, e.dims)
	}
	for i := 0; i < rows; i++ {
		if wantGrid {
			g = grid[i*e.dims : (i+1)*e.dims]
		}
		e.GridInto(g, b.Row(i))
		e.EncodeGridInto(dst.At(i), g)
	}
	return dst, grid
}

// zcolHeaderLen is the marshaled frame header: words and rows, both
// little-endian uint32.
const zcolHeaderLen = 8

// AppendBinary appends the column's wire frame to dst:
//
//	[words uint32 LE][rows uint32 LE][rows*words uint64 LE]
func (c ZCol) AppendBinary(dst []byte) ([]byte, error) {
	rows := c.Len()
	if c.Words < 0 || c.Words > MaxBits*1024 {
		return nil, fmt.Errorf("zorder: column not marshalable: words=%d", c.Words)
	}
	if c.Words > 0 && len(c.Data)%c.Words != 0 {
		return nil, fmt.Errorf("zorder: ragged column: %d words, stride %d", len(c.Data), c.Words)
	}
	if c.Words == 0 && len(c.Data) > 0 {
		return nil, fmt.Errorf("zorder: strideless column holds %d words", len(c.Data))
	}
	var hdr [zcolHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(c.Words))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(rows))
	dst = append(dst, hdr[:]...)
	var buf [8]byte
	for _, w := range c.Data {
		binary.LittleEndian.PutUint64(buf[:], w)
		dst = append(dst, buf[:]...)
	}
	return dst, nil
}

// MarshalBinary implements encoding.BinaryMarshaler with the
// AppendBinary frame, so gob (and anything else honoring the
// interface) ships a ZCol as one opaque blob instead of a per-element
// encode. The framed transport appends the same frame directly.
func (c ZCol) MarshalBinary() ([]byte, error) {
	return c.AppendBinary(make([]byte, 0, zcolHeaderLen+8*len(c.Data)))
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The payload is
// copied out of data (decoders reuse their buffers).
func (c *ZCol) UnmarshalBinary(data []byte) error {
	if len(data) < zcolHeaderLen {
		return fmt.Errorf("zorder: column frame truncated: %d bytes", len(data))
	}
	words := int(binary.LittleEndian.Uint32(data[0:4]))
	rows := int(binary.LittleEndian.Uint32(data[4:8]))
	payload := data[zcolHeaderLen:]
	if words > MaxBits*1024 {
		return fmt.Errorf("zorder: implausible column stride %d", words)
	}
	if words == 0 && rows > 0 {
		return fmt.Errorf("zorder: strideless column frame with %d rows", rows)
	}
	n := words * rows
	if len(payload) != n*8 {
		return fmt.Errorf("zorder: column frame has %d payload bytes, want %d", len(payload), n*8)
	}
	c.Words = words
	if n == 0 {
		c.Data = nil
		return nil
	}
	c.Data = make([]uint64, n)
	for i := range c.Data {
		c.Data[i] = binary.LittleEndian.Uint64(payload[i*8:])
	}
	return nil
}

// GobEncode delegates to MarshalBinary so gob never falls back to
// field-by-field struct encoding for columns.
func (c ZCol) GobEncode() ([]byte, error) { return c.MarshalBinary() }

// GobDecode delegates to UnmarshalBinary.
func (c *ZCol) GobDecode(data []byte) error { return c.UnmarshalBinary(data) }
