package window

import (
	"math/rand"
	"testing"

	"zskyline/internal/dominance"
	"zskyline/internal/point"
)

// newUnder builds a provider window over the unit hypercube.
func newUnder(t testing.TB, prov dominance.Provider, capacity, dims, bits int) *Skyline {
	t.Helper()
	mins := make([]float64, dims)
	maxs := make([]float64, dims)
	for i := range maxs {
		maxs[i] = 1
	}
	w, err := NewUnder(prov, capacity, dims, bits, mins, maxs)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// windowProviders builds one provider of each kind for d-dimensional
// data — a transitive, a non-transitive, and the classic relation.
func windowProviders(t testing.TB, d int) []dominance.Provider {
	t.Helper()
	w1 := make([]float64, d)
	w2 := make([]float64, d)
	for i := range w1 {
		w1[i] = 1
		w2[i] = 1
	}
	w2[0] = 3
	flex, err := dominance.NewFlex([][]float64{w1, w2})
	if err != nil {
		t.Fatal(err)
	}
	k := d - 1
	if k < 1 {
		k = 1
	}
	kdom, err := dominance.NewKDom(k)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := dominance.NewRobust(0.1)
	if err != nil {
		t.Fatal(err)
	}
	return []dominance.Provider{dominance.Pareto{}, flex, kdom, robust}
}

// Property: at every sampled step, the provider window skyline equals
// the per-provider brute-force skyline of the last capacity points.
func TestSlidingUnderMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const d = 3
	for _, prov := range windowProviders(t, d) {
		capacity := 30 + rng.Intn(50)
		w := newUnder(t, prov, capacity, d, 8)
		var stream []point.Point
		for s := 0; s < 400; s++ {
			p := make(point.Point, d)
			for k := range p {
				p[k] = float64(rng.Intn(12)) / 12 // ties included
			}
			stream = append(stream, p)
			on, err := w.Push(p)
			if err != nil {
				t.Fatal(err)
			}
			if s%23 != 0 {
				continue // checking every step is O(n^2); sample steps
			}
			lo := len(stream) - capacity
			if lo < 0 {
				lo = 0
			}
			live := stream[lo:]
			want := dominance.BruteForce(prov, live)
			sameSet(t, w.Current(), want, prov.Name())
			// Membership report must agree with the oracle on p.
			inOracle := false
			for _, q := range want {
				if q.Equal(p) {
					inOracle = true
					break
				}
			}
			if on != inOracle {
				t.Fatalf("%s: Push reported %v for %v, oracle says %v",
					prov.Name(), on, p, inOracle)
			}
		}
	}
}

func TestSubscribeNotifiesOnChange(t *testing.T) {
	w := newUnder(t, dominance.Pareto{}, 10, 2, 10)
	var fired int
	var last []point.Point
	w.Subscribe(func(sky []point.Point) {
		fired++
		last = append([]point.Point(nil), sky...)
	})
	w.Push(point.Point{0.5, 0.5})
	if fired != 1 {
		t.Fatalf("first push: fired %d, want 1", fired)
	}
	// Dominated arrival changes nothing — no notification.
	w.Push(point.Point{0.9, 0.9})
	if fired != 1 {
		t.Fatalf("dominated push: fired %d, want 1", fired)
	}
	// Dominating arrival replaces the skyline.
	w.Push(point.Point{0.1, 0.1})
	if fired != 2 {
		t.Fatalf("dominating push: fired %d, want 2", fired)
	}
	sameSet(t, last, []point.Point{{0.1, 0.1}}, "notified skyline")
}

func TestSubscribeNonTransitive(t *testing.T) {
	kdom, err := dominance.NewKDom(1)
	if err != nil {
		t.Fatal(err)
	}
	w := newUnder(t, kdom, 5, 2, 10)
	var fired int
	w.Subscribe(func([]point.Point) { fired++ })
	w.Push(point.Point{0.5, 0.5})
	w.Push(point.Point{0.9, 0.9}) // 1-dominated: skyline unchanged
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	w.Push(point.Point{0.5, 0.5}) // duplicate joins: skyline grows
	if fired != 2 {
		t.Fatalf("fired %d, want 2", fired)
	}
}

func TestNewUnderNilIsPareto(t *testing.T) {
	w := newUnder(t, nil, 4, 2, 10)
	w.Push(point.Point{0.3, 0.3})
	w.Push(point.Point{0.7, 0.7})
	sameSet(t, w.Current(), []point.Point{{0.3, 0.3}}, "nil provider")
}
