package window

import (
	"math/rand"
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/point"
	"zskyline/internal/seq"
)

func sameSet(t *testing.T, got, want []point.Point, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d", label, len(got), len(want))
	}
	g := append([]point.Point(nil), got...)
	w := append([]point.Point(nil), want...)
	point.SortLexicographic(g)
	point.SortLexicographic(w)
	for i := range g {
		if !g[i].Equal(w[i]) {
			t.Fatalf("%s: [%d] = %v, want %v", label, i, g[i], w[i])
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewUnit(0, 2, 8); err == nil {
		t.Error("zero capacity accepted")
	}
	w, err := NewUnit(4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Push(point.Point{1}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestLiveTracksWindowContents(t *testing.T) {
	w, err := NewUnit(3, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	stream := []point.Point{{0.1, 0.9}, {0.9, 0.1}, {0.5, 0.5}, {0.2, 0.2}}
	for _, p := range stream {
		if _, err := w.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 3: the first push has expired; live = last three, oldest
	// first.
	live := w.Live()
	sameSet(t, live, stream[1:], "live set")
	if !live[0].Equal(stream[1]) || !live[2].Equal(stream[3]) {
		t.Errorf("live order = %v, want oldest-first %v", live, stream[1:])
	}
	// And the live set is exactly what the skyline is computed over.
	sameSet(t, w.Current(), seq.BruteForce(w.Live()), "skyline of live set")
}

// Property: at every step the window skyline equals the brute-force
// skyline of the last capacity points.
func TestSlidingMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 12; trial++ {
		d := 2 + rng.Intn(3)
		capacity := 20 + rng.Intn(80)
		w, err := NewUnit(capacity, d, 8)
		if err != nil {
			t.Fatal(err)
		}
		var stream []point.Point
		steps := 300 + rng.Intn(300)
		for s := 0; s < steps; s++ {
			p := make(point.Point, d)
			for k := range p {
				p[k] = float64(rng.Intn(12)) / 12 // ties included
			}
			stream = append(stream, p)
			if _, err := w.Push(p); err != nil {
				t.Fatal(err)
			}
			if s%37 != 0 {
				continue // checking every step is O(n^2); sample steps
			}
			lo := len(stream) - capacity
			if lo < 0 {
				lo = 0
			}
			live := stream[lo:]
			sameSet(t, w.Current(), seq.BruteForce(live), "window")
			if w.Len() != len(live) {
				t.Fatalf("window len %d, want %d", w.Len(), len(live))
			}
		}
	}
}

func TestPushReportsSkylineMembership(t *testing.T) {
	w, _ := NewUnit(10, 2, 10)
	in, err := w.Push(point.Point{0.5, 0.5})
	if err != nil || !in {
		t.Fatalf("first point must be skyline: %v %v", in, err)
	}
	in, _ = w.Push(point.Point{0.9, 0.9})
	if in {
		t.Error("dominated arrival reported as skyline")
	}
	in, _ = w.Push(point.Point{0.1, 0.1})
	if !in {
		t.Error("dominating arrival not reported as skyline")
	}
	sameSet(t, w.Current(), []point.Point{{0.1, 0.1}}, "after dominator")
}

func TestExpiryResurrectsDominatedPoints(t *testing.T) {
	// Capacity 3: push a dominator then two dominated points; when the
	// dominator expires, both must resurface.
	w, _ := NewUnit(3, 2, 10)
	w.Push(point.Point{0.1, 0.1}) // dominator
	w.Push(point.Point{0.5, 0.6})
	w.Push(point.Point{0.6, 0.5})
	sameSet(t, w.Current(), []point.Point{{0.1, 0.1}}, "before expiry")
	// This push evicts the dominator.
	w.Push(point.Point{0.9, 0.9})
	sameSet(t, w.Current(), []point.Point{{0.5, 0.6}, {0.6, 0.5}}, "after expiry")
}

func TestDuplicateExpiry(t *testing.T) {
	w, _ := NewUnit(2, 2, 10)
	w.Push(point.Point{0.2, 0.2})
	w.Push(point.Point{0.2, 0.2})
	sameSet(t, w.Current(), []point.Point{{0.2, 0.2}, {0.2, 0.2}}, "dups")
	// Expire one copy; the other remains.
	w.Push(point.Point{0.8, 0.8})
	sameSet(t, w.Current(), []point.Point{{0.2, 0.2}}, "one dup expired")
}

func TestAntiCorrelatedStream(t *testing.T) {
	ds := gen.Synthetic(gen.AntiCorrelated, 2000, 3, 5)
	w, _ := NewUnit(200, 3, 10)
	for _, p := range ds.Points {
		if _, err := w.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	live := ds.Points[len(ds.Points)-200:]
	sameSet(t, w.Current(), seq.BruteForce(live), "anti stream")
	if w.Stats().DominanceTests == 0 {
		t.Error("no work recorded")
	}
}

func BenchmarkWindowPush(b *testing.B) {
	w, _ := NewUnit(2000, 4, 12)
	ds := gen.Synthetic(gen.Independent, 10000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Push(ds.Points[i%ds.Len()])
	}
}
