// Package window maintains the skyline of the most recent N points of
// a stream (a count-based sliding window). Unlike package maintain,
// points expire: an expiring point that was on the skyline may
// "resurrect" points it had been dominating, so the full window must
// be retained.
//
// The implementation keeps the window in a ring buffer and the current
// skyline in a ZB-tree. Arrivals update the tree incrementally (the
// cheap, common case); expiries of non-skyline points are free, while
// expiry of a skyline point triggers a recompute of the skyline from
// the live window — the classic lazy strategy, exact at every step and
// amortized well because most expiring points are not skyline points.
package window

import (
	"fmt"

	"zskyline/internal/dominance"
	"zskyline/internal/metrics"
	"zskyline/internal/point"
	"zskyline/internal/zbtree"
	"zskyline/internal/zorder"
)

// Skyline is a sliding-window skyline maintainer. Not safe for
// concurrent use; wrap with a mutex if shared.
type Skyline struct {
	enc      *zorder.Encoder
	prov     dominance.Provider
	capacity int
	ring     []point.Point
	head     int // index of the oldest point
	size     int
	sky      *zbtree.Tree
	tally    *metrics.Tally
	// dirty marks that the tree must be rebuilt from the ring before
	// the next read (set when a skyline point expired, and on every
	// push under a non-transitive relation — see Push).
	dirty bool
	subs  []func([]point.Point)
}

// New creates a window of the given capacity for dims-dimensional
// points over [mins, maxs].
func New(capacity, dims, bits int, mins, maxs []float64) (*Skyline, error) {
	return NewUnder(nil, capacity, dims, bits, mins, maxs)
}

// NewUnder creates a window that maintains the skyline under the given
// dominance provider (nil selects classic Pareto dominance). Unlike
// package maintain, any irreflexive relation is supported: the window
// retains all live points, so a non-transitive relation simply
// recomputes from the ring on every push instead of updating the tree
// incrementally (the incremental path tests arrivals only against the
// current skyline, which is conclusive only under transitivity).
func NewUnder(prov dominance.Provider, capacity, dims, bits int, mins, maxs []float64) (*Skyline, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("window: capacity must be positive, got %d", capacity)
	}
	enc, err := zorder.NewEncoder(dims, bits, mins, maxs)
	if err != nil {
		return nil, err
	}
	tally := &metrics.Tally{}
	if prov == nil {
		prov = dominance.Pareto{}
	}
	return &Skyline{
		enc:      enc,
		prov:     prov,
		capacity: capacity,
		ring:     make([]point.Point, capacity),
		sky:      zbtree.New(enc, 0, tally),
		tally:    tally,
	}, nil
}

// NewUnit creates a window over the unit hypercube.
func NewUnit(capacity, dims, bits int) (*Skyline, error) {
	mins := make([]float64, dims)
	maxs := make([]float64, dims)
	for i := range maxs {
		maxs[i] = 1
	}
	return New(capacity, dims, bits, mins, maxs)
}

// Len returns the number of live points in the window.
func (w *Skyline) Len() int { return w.size }

// Subscribe registers fn to be called after every Push that changes
// the skyline, with the new skyline (in Z-order; callers must not
// mutate it). Subscribing makes maintenance eager: detecting a change
// forces the lazy rebuild on every push.
func (w *Skyline) Subscribe(fn func([]point.Point)) {
	w.subs = append(w.subs, fn)
}

// Push appends p to the stream, expiring the oldest point if the
// window is full. It returns whether p is currently a skyline point.
func (w *Skyline) Push(p point.Point) (bool, error) {
	if len(p) != w.enc.Dims() {
		return false, fmt.Errorf("window: point has %d dims, want %d", len(p), w.enc.Dims())
	}
	var before []point.Point
	if len(w.subs) > 0 {
		before = w.Current()
	}
	on, err := w.push(p)
	if err != nil {
		return false, err
	}
	if len(w.subs) > 0 {
		after := w.Current()
		if !sameZOrdered(before, after) {
			for _, fn := range w.subs {
				fn(after)
			}
		}
	}
	return on, nil
}

func (w *Skyline) push(p point.Point) (bool, error) {
	// A non-transitive relation invalidates both incremental shortcuts:
	// an arrival undominated by the skyline may still be dominated by a
	// live non-skyline point, and a non-skyline expiry may resurrect
	// points only it was dominating. Recompute from the ring instead.
	if !w.prov.Caps().Transitive {
		w.dirty = true
	}
	// Expire the oldest point first.
	if w.size == w.capacity {
		old := w.ring[w.head]
		w.ring[w.head] = nil
		w.head = (w.head + 1) % w.capacity
		w.size--
		if !w.dirty && w.contains(old) {
			// A skyline point left the window: lazily rebuild.
			w.dirty = true
		}
	}
	w.ring[(w.head+w.size)%w.capacity] = p
	w.size++

	e := zbtree.NewEntry(w.enc, p)
	if w.dirty {
		// The rebuild recomputes the exact skyline of the live window,
		// which already includes p — do not insert it a second time.
		w.rebuild()
		if !w.prov.Caps().Transitive {
			// The tree holds the exact skyline; membership is
			// coordinate-determined, so a coordinate match decides.
			return w.contains(p), nil
		}
		return !w.sky.DominatesPointUnder(w.prov, e.G, e.P), nil
	}
	// Incremental arrival: if p is dominated by the current skyline it
	// changes nothing; otherwise it evicts what it dominates and joins.
	// Sound for transitive relations only (see push's dirty rule).
	if w.sky.DominatesPointUnder(w.prov, e.G, e.P) {
		return false, nil
	}
	w.sky.RemoveDominatedByUnder(w.prov, e.G, e.P)
	// Rebuild-and-insert keeps the tree balanced and sidesteps the
	// append-only Z-order restriction for out-of-order arrivals.
	entries := append(w.sky.Entries(), e)
	w.sky = zbtree.Build(w.enc, 0, entries, w.tally)
	return true, nil
}

// contains reports whether the current skyline holds a point with
// exactly p's coordinates.
func (w *Skyline) contains(p point.Point) bool {
	for _, q := range w.sky.Points() {
		if q.Equal(p) {
			return true
		}
	}
	return false
}

// Live returns the window's live points, oldest first. The serving
// tier queries it directly (subspace preference queries need the full
// live set, not just the skyline).
func (w *Skyline) Live() []point.Point {
	live := make([]point.Point, 0, w.size)
	for i := 0; i < w.size; i++ {
		live = append(live, w.ring[(w.head+i)%w.capacity])
	}
	return live
}

// rebuild recomputes the skyline from the live window.
func (w *Skyline) rebuild() {
	live := w.Live()
	if dominance.IsPareto(w.prov) {
		w.sky = zbtree.BuildFromPoints(w.enc, 0, live, w.tally).SkylineTree()
	} else {
		sky := zbtree.ZSearchUnder(w.prov, w.enc, 0, live, w.tally)
		w.sky = zbtree.BuildFromPoints(w.enc, 0, sky, w.tally)
	}
	w.dirty = false
}

// sameZOrdered compares two skyline snapshots, both read off a ZB-tree
// and therefore in Z-order, so equal sets compare equal element-wise.
func sameZOrdered(a, b []point.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// Current returns the skyline of the live window.
func (w *Skyline) Current() []point.Point {
	if w.dirty {
		w.rebuild()
	}
	return w.sky.Points()
}

// Stats exposes the accumulated test counters.
func (w *Skyline) Stats() metrics.Snapshot { return w.tally.Snapshot() }
