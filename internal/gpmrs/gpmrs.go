// Package gpmrs reimplements the MR-GPMRS baseline the paper compares
// against in §6.5 ([12]: grid-partitioning + bitstring skyline
// computation on MapReduce). The scheme:
//
//  1. Learn a median split per (used) dimension from a sample; each
//     point maps to a binary grid cell, identified by a bitmask with
//     bit i set when the point is above dimension i's median.
//  2. Job 1 computes the global cell bitstring (which cells are
//     non-empty) and drops every point whose cell is fully dominated
//     by a non-empty cell (with two divisions per dimension, cell a
//     fully dominates cell b only when a is all-zeros and b all-ones
//     in the dimensions where they differ in the strict sense below).
//  3. Local skylines are computed per cell (combiners + reducers).
//  4. Job 2 merges globally with MULTIPLE reducers — GPMRS's
//     distinguishing trick: each reducer owns a subset of cells and
//     receives, besides its own candidates, copies of every candidate
//     from subset-cells that could dominate into its territory, so all
//     reducers verify independently and no single-node merge exists.
//
// The result is exact; the baseline's weakness in high dimensions
// (cell pruning degrades, candidate duplication grows) is intrinsic to
// the design, which is precisely what the paper's Figure 12 shows.
package gpmrs

import (
	"context"
	"fmt"
	"sort"
	"time"

	"zskyline/internal/mapreduce"
	"zskyline/internal/metrics"
	"zskyline/internal/point"
	"zskyline/internal/sample"
	"zskyline/internal/seq"
)

// MaxGridDims caps the number of dimensions used for the binary grid
// so the bitstring stays 2^k cells.
const MaxGridDims = 12

// Config parameterizes a GPMRS run.
type Config struct {
	// Reducers is the number of merge reducers (the multi-reducer
	// global skyline). Zero selects Workers.
	Reducers int
	// Workers is the simulated cluster size.
	Workers int
	// MapSplits is the map-task count; zero selects 2x workers.
	MapSplits int
	// SampleRatio feeds the median estimation. Zero selects 0.02.
	SampleRatio float64
	// Seed drives sampling.
	Seed int64
	// Cluster optionally supplies a prebuilt cluster.
	Cluster *mapreduce.Cluster
}

// Report describes a run.
type Report struct {
	UsedDims      int
	NonEmptyCells int
	DroppedCells  int
	// FilteredPoints are points dropped because their cell was
	// dominated.
	FilteredPoints int64
	// Candidates is the number of local-skyline candidates entering the
	// global merge.
	Candidates int
	// DuplicatedRecords counts the candidate copies shipped to foreign
	// reducers during the merge — GPMRS's replication overhead.
	DuplicatedRecords int64
	Job1, Job2        *mapreduce.JobStats
	Preprocess        time.Duration
	Total             time.Duration
	Tally             metrics.Snapshot
}

type cellPoint struct {
	cell uint32
	p    point.Point
}

// Skyline computes the exact skyline of ds with the MR-GPMRS scheme.
func Skyline(ctx context.Context, ds *point.Dataset, cfg Config) ([]point.Point, *Report, error) {
	rep := &Report{}
	if ds == nil || ds.Len() == 0 {
		return nil, rep, nil
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Reducers <= 0 {
		cfg.Reducers = cfg.Workers
	}
	if cfg.SampleRatio <= 0 {
		cfg.SampleRatio = 0.02
	}
	cl := cfg.Cluster
	if cl == nil {
		cl = mapreduce.NewCluster(mapreduce.ClusterConfig{Workers: cfg.Workers})
	}
	splits := cfg.MapSplits
	if splits <= 0 {
		splits = 2 * cfg.Workers
	}
	tally := &metrics.Tally{}
	start := time.Now()

	// ---- Preprocessing: medians from a sample ----
	t0 := time.Now()
	smp, err := sample.Ratio(ds.Points, cfg.SampleRatio, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	k := ds.Dims
	if k > MaxGridDims {
		k = MaxGridDims
	}
	medians := make([]float64, k)
	col := make([]float64, len(smp))
	for d := 0; d < k; d++ {
		for i, p := range smp {
			col[i] = p[d]
		}
		sort.Float64s(col)
		medians[d] = col[len(col)/2]
	}
	rep.UsedDims = k
	cellOf := func(p point.Point) uint32 {
		var c uint32
		for d := 0; d < k; d++ {
			if p[d] > medians[d] {
				c |= 1 << uint(d)
			}
		}
		return c
	}
	rep.Preprocess = time.Since(t0)

	// ---- Job 1: bitstring + dominated-cell filter + local skylines ----
	// First pass (cheap, inline): global bitstring. The original
	// computes it with a tiny MapReduce round; a scan is equivalent and
	// keeps the job count at two, like the paper's pipeline.
	nonEmpty := map[uint32]bool{}
	for _, p := range ds.Points {
		nonEmpty[cellOf(p)] = true
	}
	rep.NonEmptyCells = len(nonEmpty)
	// Cell a fully dominates cell b only when a sits strictly below b
	// in EVERY dimension: with two divisions per dimension that means
	// a is the all-zeros cell and b the all-ones cell. Dropping is only
	// sound when the grid spans all dataset dimensions (k == Dims);
	// otherwise ungridded dimensions could break dominance.
	dominated := map[uint32]bool{}
	full := uint32(1)<<uint(k) - 1
	if k == ds.Dims && nonEmpty[0] && nonEmpty[full] && full != 0 {
		dominated[full] = true
	}
	var filtered metrics.Tally
	job1 := mapreduce.Job[point.Point, uint32, point.Point, cellPoint]{
		Name: "gpmrs-local",
		Map: func(_ *mapreduce.TaskContext, p point.Point, emit func(uint32, point.Point)) error {
			c := cellOf(p)
			if dominated[c] {
				filtered.AddPointsPruned(1)
				return nil
			}
			emit(c, p)
			return nil
		},
		Combine: func(_ *mapreduce.TaskContext, _ uint32, vals []point.Point) []point.Point {
			return seq.SB(vals, tally)
		},
		Reduce: func(_ *mapreduce.TaskContext, c uint32, vals []point.Point, emit func(cellPoint)) error {
			for _, p := range seq.SB(vals, tally) {
				emit(cellPoint{cell: c, p: p})
			}
			return nil
		},
		Partition: func(c uint32, n int) int { return int(c) % n },
		Reducers:  cfg.Reducers,
		SizeOf:    func(_ uint32, p point.Point) int { return 8*len(p) + 8 },
		Tally:     tally,
	}
	cands, j1, err := mapreduce.Run(ctx, cl, job1, mapreduce.SplitSlice(ds.Points, splits))
	if err != nil {
		return nil, nil, err
	}
	rep.Job1 = j1
	rep.FilteredPoints = filtered.Snapshot().PointsPruned
	rep.DroppedCells = len(dominated)
	rep.Candidates = len(cands)

	// ---- Job 2: multi-reducer global merge ----
	// targets[c] = reducers that own a non-empty cell c'' with
	// c subset-of c'' (the cells whose candidates p could dominate),
	// plus p's own reducer.
	reducerOf := func(c uint32) int { return int(c) % cfg.Reducers }
	targets := map[uint32][]int{}
	cells := make([]uint32, 0, len(nonEmpty))
	for c := range nonEmpty {
		if !dominated[c] {
			cells = append(cells, c)
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
	for _, c := range cells {
		seen := map[int]bool{reducerOf(c): true}
		list := []int{reducerOf(c)}
		for _, sup := range cells {
			// c subset-of sup: every dimension where c is "high", sup is
			// too, so points of c can dominate points of sup.
			if c&^sup == 0 && sup != c {
				r := reducerOf(sup)
				if !seen[r] {
					seen[r] = true
					list = append(list, r)
				}
			}
		}
		targets[c] = list
	}
	type taggedPoint struct {
		cell    uint32
		p       point.Point
		primary bool
	}
	var duplicated metrics.Tally
	job2 := mapreduce.Job[cellPoint, int, taggedPoint, point.Point]{
		Name: "gpmrs-merge",
		Map: func(_ *mapreduce.TaskContext, cp cellPoint, emit func(int, taggedPoint)) error {
			own := reducerOf(cp.cell)
			for _, r := range targets[cp.cell] {
				emit(r, taggedPoint{cell: cp.cell, p: cp.p, primary: r == own})
				if r != own {
					duplicated.AddRecordsEmitted(1)
				}
			}
			return nil
		},
		Reduce: func(_ *mapreduce.TaskContext, _ int, vals []taggedPoint, emit func(point.Point)) error {
			for _, cand := range vals {
				if !cand.primary {
					continue
				}
				dominatedPt := false
				for _, other := range vals {
					// Only points from subset cells can dominate.
					if other.cell&^cand.cell == 0 {
						tally.AddDominanceTests(1)
						if point.Dominates(other.p, cand.p) {
							dominatedPt = true
							break
						}
					}
				}
				if !dominatedPt {
					emit(cand.p)
				}
			}
			return nil
		},
		Partition: func(r, n int) int { return r % n },
		Reducers:  cfg.Reducers,
		SizeOf:    func(_ int, tp taggedPoint) int { return 8*len(tp.p) + 9 },
		Tally:     tally,
	}
	sky, j2, err := mapreduce.Run(ctx, cl, job2, mapreduce.SplitSlice(cands, splits))
	if err != nil {
		return nil, nil, err
	}
	rep.Job2 = j2
	rep.DuplicatedRecords = duplicated.Snapshot().RecordsEmitted
	rep.Total = time.Since(start)
	rep.Tally = tally.Snapshot()
	return sky, rep, nil
}

// String summarizes a report.
func (r *Report) String() string {
	return fmt.Sprintf("gpmrs{dims: %d, cells: %d, dropped: %d, candidates: %d, dup: %d}",
		r.UsedDims, r.NonEmptyCells, r.DroppedCells, r.Candidates, r.DuplicatedRecords)
}
