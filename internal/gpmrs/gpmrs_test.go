package gpmrs

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"zskyline/internal/gen"
	"zskyline/internal/point"
	"zskyline/internal/seq"
)

func sameSet(t *testing.T, got, want []point.Point, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d", label, len(got), len(want))
	}
	g := append([]point.Point(nil), got...)
	w := append([]point.Point(nil), want...)
	point.SortLexicographic(g)
	point.SortLexicographic(w)
	for i := range g {
		if !g[i].Equal(w[i]) {
			t.Fatalf("%s: [%d] = %v, want %v", label, i, g[i], w[i])
		}
	}
}

func TestEmptyAndNil(t *testing.T) {
	sky, rep, err := Skyline(context.Background(), nil, Config{})
	if err != nil || sky != nil || rep == nil {
		t.Fatalf("nil dataset: %v %v %v", sky, rep, err)
	}
	sky, _, err = Skyline(context.Background(), &point.Dataset{Dims: 2}, Config{})
	if err != nil || len(sky) != 0 {
		t.Fatalf("empty dataset: %v %v", sky, err)
	}
}

func TestExactAcrossDistributions(t *testing.T) {
	for _, dist := range []gen.Distribution{gen.Independent, gen.Correlated, gen.AntiCorrelated} {
		for _, d := range []int{2, 4, 6} {
			ds := gen.Synthetic(dist, 3000, d, 11)
			want := seq.SB(ds.Points, nil)
			got, rep, err := Skyline(context.Background(), ds, Config{Workers: 4, Reducers: 5, SampleRatio: 0.05})
			if err != nil {
				t.Fatalf("%v/d=%d: %v", dist, d, err)
			}
			sameSet(t, got, want, dist.String())
			if rep.Candidates < len(want) {
				t.Errorf("%v/d=%d: %d candidates < %d skyline", dist, d, rep.Candidates, len(want))
			}
		}
	}
}

func TestExactHighDimensionalCap(t *testing.T) {
	// d > MaxGridDims: the grid covers only a prefix of dimensions; the
	// result must still be exact and no cell may be dropped.
	ds := gen.Synthetic(gen.Independent, 800, 15, 3)
	want := seq.BruteForce(ds.Points)
	got, rep, err := Skyline(context.Background(), ds, Config{Workers: 4, SampleRatio: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, got, want, "d=15")
	if rep.UsedDims != MaxGridDims {
		t.Errorf("used dims = %d, want %d", rep.UsedDims, MaxGridDims)
	}
	if rep.DroppedCells != 0 {
		t.Errorf("dropped %d cells with partial grid; unsound", rep.DroppedCells)
	}
}

func TestCellFilterFires(t *testing.T) {
	// Correlated low-d data populates both extreme cells, so the
	// all-ones cell gets dropped.
	ds := gen.Synthetic(gen.Correlated, 5000, 3, 7)
	_, rep, err := Skyline(context.Background(), ds, Config{Workers: 4, SampleRatio: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedCells == 0 || rep.FilteredPoints == 0 {
		t.Errorf("cell filter never fired: %+v", rep)
	}
}

func TestDuplicationGrowsWithDim(t *testing.T) {
	// GPMRS's replication overhead should grow with dimensionality —
	// the effect that makes it lose in Figure 12.
	dup := map[int]int64{}
	for _, d := range []int{3, 8} {
		ds := gen.Synthetic(gen.Independent, 4000, d, 9)
		_, rep, err := Skyline(context.Background(), ds, Config{Workers: 4, Reducers: 8, SampleRatio: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		dup[d] = rep.DuplicatedRecords
	}
	if dup[8] <= dup[3] {
		t.Errorf("duplication did not grow with dim: %v", dup)
	}
}

func TestReportString(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 500, 3, 1)
	_, rep, err := Skyline(context.Background(), ds, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() == "" || rep.Total <= 0 {
		t.Errorf("report: %+v", rep)
	}
}

func TestDeterministic(t *testing.T) {
	ds := gen.Synthetic(gen.AntiCorrelated, 2000, 4, 13)
	a, _, err := Skyline(context.Background(), ds, Config{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Skyline(context.Background(), ds, Config{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, a, b, "rerun")
}

// quick property: GPMRS is exact for arbitrary sizes, dims and reducer
// counts.
func TestQuickGPMRSExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(6)
		n := 50 + r.Intn(800)
		ds := gen.Synthetic(gen.Distribution(r.Intn(3)), n, d, seed)
		got, _, err := Skyline(context.Background(), ds, Config{
			Workers:     1 + r.Intn(4),
			Reducers:    1 + r.Intn(8),
			SampleRatio: 0.05 + r.Float64()*0.3,
			Seed:        seed,
		})
		if err != nil {
			return false
		}
		return len(got) == len(seq.BruteForce(ds.Points))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
