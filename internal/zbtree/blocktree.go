package zbtree

import (
	"fmt"
	"sort"

	"zskyline/internal/metrics"
	"zskyline/internal/point"
	"zskyline/internal/zorder"
)

// Store is the shared columnar backing of a BlockTree: the flat point
// block, its Z-address column, and the decoded grid coordinates, all
// stride-indexed by row. Trees built over the same Store reference rows
// by index instead of owning Entry copies, which is what lets the
// pipeline encode each point's Z-address exactly once per query and
// merge candidate sets without rematerializing them.
type Store struct {
	enc  *zorder.Encoder
	blk  point.Block
	zc   zorder.ZCol
	grid []uint32 // Dims() stride per row, decoded once at store build
}

// NewStore encodes b's rows into a fresh Z-address column and grid
// arena — one quantization pass for the whole block.
func NewStore(enc *zorder.Encoder, b point.Block) *Store {
	st := &Store{enc: enc, blk: b}
	st.zc, st.grid = enc.EncodeBlockGrid(zorder.ZCol{}, nil, b)
	return st
}

// NewStoreWithZCol builds a Store over a block whose Z-addresses were
// already encoded upstream (the encode-once path). The grid arena is
// recovered by de-interleaving zc — a pure bit operation, so the store
// is exactly what NewStore would have produced from the same encoder.
// zc must have one enc-encoded address per row of b.
func NewStoreWithZCol(enc *zorder.Encoder, b point.Block, zc zorder.ZCol) *Store {
	if zc.Len() != b.Len() || zc.Words != enc.Words() {
		panic(fmt.Sprintf("zbtree: zcol shape %d×%d does not match block %d rows under a %d-word encoder",
			zc.Len(), zc.Words, b.Len(), enc.Words()))
	}
	st := &Store{enc: enc, blk: b, zc: zc}
	d := enc.Dims()
	st.grid = make([]uint32, b.Len()*d)
	for i := 0; i < b.Len(); i++ {
		enc.DecodeGridInto(st.grid[i*d:(i+1)*d], zc.At(i))
	}
	return st
}

// Len returns the number of rows in the store.
func (st *Store) Len() int { return st.blk.Len() }

// Row returns the float point of row i (zero-copy view).
func (st *Store) Row(i int32) point.Point { return st.blk.Row(int(i)) }

// Grid returns the grid coordinates of row i (zero-copy view).
func (st *Store) Grid(i int32) []uint32 {
	d := st.enc.Dims()
	lo := int(i) * d
	return st.grid[lo : lo+d : lo+d]
}

// Z returns the Z-address of row i (zero-copy view).
func (st *Store) Z(i int32) zorder.ZAddr { return st.zc.At(int(i)) }

// CompactRows copies the given rows out into a fresh block and
// Z-column, so results never pin the (potentially much larger) input
// arenas.
func (st *Store) CompactRows(rows []int32) (point.Block, zorder.ZCol) {
	blk := point.Block{Dims: st.blk.Dims}
	zc := zorder.ZCol{Words: st.zc.Words}
	if len(rows) == 0 {
		return blk, zc
	}
	blk.Data = make([]float64, 0, len(rows)*st.blk.Dims)
	zc.Data = make([]uint64, 0, len(rows)*st.zc.Words)
	for _, r := range rows {
		blk.Data = append(blk.Data, st.Row(r)...)
		zc.AppendRow(st.zc, int(r))
	}
	return blk, zc
}

// bnode is one slab-allocated tree node, addressed by index into
// BlockTree.nodes. kids == nil marks a leaf. minRow/maxRow reference
// store rows whose Z-addresses bound the subtree; like the legacy
// tree, they (and the region arenas) are left as stale supersets after
// RemoveDominatedBy compaction — Z-merge re-balances once at the end.
type bnode struct {
	kids   []int32 // child node ids; nil for leaves
	rows   []int32 // leaf rows in Z-order
	count  int32
	minRow int32
	maxRow int32
}

func (n *bnode) isLeaf() bool { return n.kids == nil }

// BlockTree is a ZB-tree whose nodes live in one slab and whose
// entries are (row index into a shared Store) instead of owned
// Entry copies: no per-node heap allocation on the bulk-load path, no
// per-point ZAddr/grid clones anywhere. Structure and pruning mirror
// Tree exactly — same RZ-regions, same conservative grid tests, same
// stale-region-after-delete strategy — so the two implementations are
// interchangeable oracles for one another.
type BlockTree struct {
	st     *Store
	fanout int
	tally  *metrics.Tally
	nodes  []bnode
	// Region corner arenas, Dims() stride per node id.
	regMin, regMax []uint32
	scratch        zorder.ZAddr // RegionInto scratch, Words() wide
	root           int32        // -1 when empty
}

// NewBlockTree returns an empty tree over st. fanout <= 0 selects
// DefaultFanout; tally may be nil.
func NewBlockTree(st *Store, fanout int, tally *metrics.Tally) *BlockTree {
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	if fanout < 2 {
		fanout = 2
	}
	return &BlockTree{st: st, fanout: fanout, tally: tally,
		scratch: make(zorder.ZAddr, st.enc.Words()), root: -1}
}

// newNode appends a zeroed node to the slab and grows the region
// arenas in tandem, returning its id. Callers must re-index t.nodes
// after calling (the slab may move).
func (t *BlockTree) newNode() int32 {
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, bnode{minRow: -1, maxRow: -1})
	d := t.st.enc.Dims()
	for i := 0; i < d; i++ {
		t.regMin = append(t.regMin, 0)
		t.regMax = append(t.regMax, 0)
	}
	return id
}

// region returns node n's RZ-region as views into the corner arenas.
func (t *BlockTree) region(n int32) zorder.Region {
	d := t.st.enc.Dims()
	lo := int(n) * d
	return zorder.Region{MinG: t.regMin[lo : lo+d : lo+d], MaxG: t.regMax[lo : lo+d : lo+d]}
}

// setRegion recomputes node n's RZ-region from the Z-addresses of rows
// a and b, writing straight into the arenas.
func (t *BlockTree) setRegion(n, a, b int32) {
	r := t.region(n)
	t.st.enc.RegionInto(r.MinG, r.MaxG, t.scratch, t.st.Z(a), t.st.Z(b))
}

// setPointRegion sets node n's region to the degenerate region of one
// row.
func (t *BlockTree) setPointRegion(n, row int32) {
	r := t.region(n)
	copy(r.MinG, t.st.Grid(row))
	copy(r.MaxG, t.st.Grid(row))
}

// Len returns the number of rows in the tree.
func (t *BlockTree) Len() int {
	if t.root < 0 {
		return 0
	}
	return int(t.nodes[t.root].count)
}

// Empty reports whether the tree holds no rows.
func (t *BlockTree) Empty() bool { return t.Len() == 0 }

// Store returns the shared backing store.
func (t *BlockTree) Store() *Store { return t.st }

// Rows returns all stored row indices in Z-order.
func (t *BlockTree) Rows() []int32 {
	out := make([]int32, 0, t.Len())
	return t.appendRows(t.root, out)
}

func (t *BlockTree) appendRows(n int32, out []int32) []int32 {
	if n < 0 {
		return out
	}
	nd := &t.nodes[n]
	if nd.isLeaf() {
		return append(out, nd.rows...)
	}
	for _, c := range nd.kids {
		out = t.appendRows(c, out)
	}
	return out
}

// BuildStore bulk-loads a balanced tree over every row of st.
func BuildStore(st *Store, fanout int, tally *metrics.Tally) *BlockTree {
	rows := make([]int32, st.Len())
	for i := range rows {
		rows[i] = int32(i)
	}
	return BuildRows(st, fanout, rows, tally)
}

// BuildRows bulk-loads a balanced tree holding the given store rows,
// sorting them by Z-address first (stably, so ties keep input order —
// the same tie rule as Build). It takes ownership of rows and sorts it
// in place; the slice becomes the leaf-row arena.
func BuildRows(st *Store, fanout int, rows []int32, tally *metrics.Tally) *BlockTree {
	t := NewBlockTree(st, fanout, tally)
	if len(rows) == 0 {
		return t
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return st.zc.Compare(int(rows[i]), int(rows[j])) < 0
	})
	// Leaves: subslices of the sorted permutation arena.
	nLeaves := (len(rows) + t.fanout - 1) / t.fanout
	t.nodes = make([]bnode, 0, nLeaves+nLeaves/(t.fanout-1)+2)
	level := make([]int32, 0, nLeaves)
	for lo := 0; lo < len(rows); lo += t.fanout {
		hi := lo + t.fanout
		if hi > len(rows) {
			hi = len(rows)
		}
		id := t.newNode()
		nd := &t.nodes[id]
		nd.rows = rows[lo:hi:hi]
		nd.count = int32(hi - lo)
		nd.minRow = rows[lo]
		nd.maxRow = rows[hi-1]
		t.setRegion(id, nd.minRow, nd.maxRow)
		level = append(level, id)
	}
	// Internal levels: kid lists are subslices of one per-level arena.
	for len(level) > 1 {
		arena := append([]int32(nil), level...)
		up := level[:0]
		for lo := 0; lo < len(arena); lo += t.fanout {
			hi := lo + t.fanout
			if hi > len(arena) {
				hi = len(arena)
			}
			kids := arena[lo:hi:hi]
			id := t.newNode()
			nd := &t.nodes[id]
			nd.kids = kids
			for _, c := range kids {
				nd.count += t.nodes[c].count
			}
			nd.minRow = t.nodes[kids[0]].minRow
			nd.maxRow = t.nodes[kids[len(kids)-1]].maxRow
			t.setRegion(id, nd.minRow, nd.maxRow)
			up = append(up, id)
		}
		level = up
	}
	t.root = level[0]
	return t
}

// Append inserts a row whose Z-address is >= every address already in
// the tree (rightmost-edge insertion), mirroring Tree.Append. It
// panics on an out-of-order insert for the same reason the legacy tree
// does: a silently corrupted index would invalidate every later
// dominance test.
func (t *BlockTree) Append(row int32) {
	if t.root < 0 {
		id := t.newNode()
		nd := &t.nodes[id]
		nd.rows = make([]int32, 1, t.fanout)
		nd.rows[0] = row
		nd.count = 1
		nd.minRow, nd.maxRow = row, row
		t.setPointRegion(id, row)
		t.root = id
		return
	}
	if t.st.zc.Compare(int(row), int(t.nodes[t.root].maxRow)) < 0 {
		panic(fmt.Sprintf("zbtree: Append out of Z-order: row %d < row %d", row, t.nodes[t.root].maxRow))
	}
	if up := t.appendAt(t.root, row); up >= 0 {
		id := t.newNode()
		old, sib := t.root, up
		nd := &t.nodes[id]
		nd.kids = make([]int32, 2, t.fanout)
		nd.kids[0], nd.kids[1] = old, sib
		nd.count = t.nodes[old].count + t.nodes[sib].count
		nd.minRow = t.nodes[old].minRow
		nd.maxRow = t.nodes[sib].maxRow
		t.setRegion(id, nd.minRow, nd.maxRow)
		t.root = id
	}
}

// appendAt inserts row under node n (rightmost path) and returns the
// id of a new right sibling if n overflowed, else -1.
func (t *BlockTree) appendAt(n, row int32) int32 {
	if t.nodes[n].isLeaf() {
		if len(t.nodes[n].rows) < t.fanout {
			nd := &t.nodes[n]
			nd.rows = append(nd.rows, row)
			nd.count++
			nd.maxRow = row
			t.setRegion(n, nd.minRow, nd.maxRow)
			return -1
		}
		id := t.newNode()
		nd := &t.nodes[id]
		nd.rows = make([]int32, 1, t.fanout)
		nd.rows[0] = row
		nd.count = 1
		nd.minRow, nd.maxRow = row, row
		t.setPointRegion(id, row)
		return id
	}
	last := t.nodes[n].kids[len(t.nodes[n].kids)-1]
	up := t.appendAt(last, row)
	if up >= 0 && len(t.nodes[n].kids) < t.fanout {
		t.nodes[n].kids = append(t.nodes[n].kids, up)
		up = -1
	}
	if up < 0 {
		nd := &t.nodes[n]
		nd.count++
		nd.maxRow = row
		t.setRegion(n, nd.minRow, nd.maxRow)
		return -1
	}
	// n is full: push the new sibling up wrapped in a fresh node.
	id := t.newNode()
	nd := &t.nodes[id]
	nd.kids = make([]int32, 1, t.fanout)
	nd.kids[0] = up
	nd.count = t.nodes[up].count
	nd.minRow = t.nodes[up].minRow
	nd.maxRow = t.nodes[up].maxRow
	r, ur := t.region(id), t.region(up)
	copy(r.MinG, ur.MinG)
	copy(r.MaxG, ur.MaxG)
	return id
}

// DominatesRow reports whether some stored row strictly dominates row
// (exact float semantics; grid tests only prune).
func (t *BlockTree) DominatesRow(row int32) bool {
	return t.dominatesPoint(t.root, t.st.Grid(row), t.st.Row(row))
}

func (t *BlockTree) dominatesPoint(n int32, g []uint32, p point.Point) bool {
	if n < 0 {
		return false
	}
	t.tally.AddRegionTests(1)
	r := t.region(n)
	if zorder.RegionCannotDominatePointGrid(r, g) {
		return false
	}
	if zorder.GridStrictDominates(r.MaxG, g) {
		return true
	}
	nd := &t.nodes[n]
	if nd.isLeaf() {
		t.tally.AddDominanceTests(int64(len(nd.rows)))
		for _, e := range nd.rows {
			if point.Dominates(t.st.Row(e), p) {
				return true
			}
		}
		return false
	}
	for _, c := range nd.kids {
		if t.dominatesPoint(c, g, p) {
			return true
		}
	}
	return false
}

// DominatesAllOfRegion reports whether some single stored row strictly
// dominates every float point that could lie in region r.
func (t *BlockTree) DominatesAllOfRegion(r zorder.Region) bool {
	return t.dominatesRegion(t.root, r)
}

func (t *BlockTree) dominatesRegion(n int32, r zorder.Region) bool {
	if n < 0 {
		return false
	}
	t.tally.AddRegionTests(1)
	nr := t.region(n)
	if !zorder.GridStrictDominates(nr.MinG, r.MinG) {
		return false
	}
	if zorder.GridStrictDominates(nr.MaxG, r.MinG) {
		return true
	}
	nd := &t.nodes[n]
	if nd.isLeaf() {
		for _, e := range nd.rows {
			if zorder.GridStrictDominates(t.st.Grid(e), r.MinG) {
				return true
			}
		}
		return false
	}
	for _, c := range nd.kids {
		if t.dominatesRegion(c, r) {
			return true
		}
	}
	return false
}

// RemoveDominatedBy deletes every stored row strictly dominated by row
// and returns how many were removed. Interior regions are left as-is
// (valid supersets), matching Tree.RemoveDominatedBy.
func (t *BlockTree) RemoveDominatedBy(row int32) int {
	if t.root < 0 {
		return 0
	}
	removed := t.removeDominated(t.root, t.st.Grid(row), t.st.Row(row))
	if t.nodes[t.root].count == 0 {
		t.root = -1
	}
	return removed
}

func (t *BlockTree) removeDominated(n int32, g []uint32, p point.Point) int {
	t.tally.AddRegionTests(1)
	if zorder.GridSomeGreater(g, t.region(n).MaxG) {
		return 0
	}
	nd := &t.nodes[n]
	if nd.isLeaf() {
		kept := nd.rows[:0]
		removed := 0
		t.tally.AddDominanceTests(int64(len(nd.rows)))
		for _, e := range nd.rows {
			if point.Dominates(p, t.st.Row(e)) {
				removed++
				continue
			}
			kept = append(kept, e)
		}
		nd.rows = kept
		nd.count = int32(len(kept))
		return removed
	}
	removed := 0
	kept := nd.kids[:0]
	for _, c := range nd.kids {
		if zorder.PointGridDominatesRegion(g, t.region(c)) {
			removed += int(t.nodes[c].count)
			continue
		}
		removed += t.removeDominated(c, g, p)
		if t.nodes[c].count > 0 {
			kept = append(kept, c)
		}
	}
	nd.kids = kept
	nd.count -= int32(removed)
	return removed
}

// SkylineRows runs Z-search over the tree and returns the skyline's
// row indices in Z-order. Semantics mirror Tree.Skyline: the running
// skyline lives in a second BlockTree over the same store.
func (t *BlockTree) SkylineRows() []int32 {
	sky := NewBlockTree(t.st, t.fanout, t.tally)
	t.zsearch(t.root, sky)
	return sky.Rows()
}

func (t *BlockTree) zsearch(n int32, sky *BlockTree) {
	if n < 0 {
		return
	}
	if sky.DominatesAllOfRegion(t.region(n)) {
		return
	}
	if t.nodes[n].isLeaf() {
		for _, e := range t.nodes[n].rows {
			if sky.DominatesRow(e) {
				continue
			}
			sky.RemoveDominatedBy(e)
			sky.Append(e)
		}
		return
	}
	for _, c := range t.nodes[n].kids {
		t.zsearch(c, sky)
	}
}

// incomparableWith mirrors Tree.incomparableWith: a conservative,
// depth-bounded check that no stored row and no float point of region
// r can dominate one another.
func (t *BlockTree) incomparableWith(n int32, r zorder.Region, depth int) bool {
	if n < 0 {
		return false
	}
	t.tally.AddRegionTests(1)
	if zorder.RegionsIncomparable(t.region(n), r) {
		return true
	}
	nd := &t.nodes[n]
	if depth == 0 || nd.isLeaf() {
		return false
	}
	for _, c := range nd.kids {
		if !t.incomparableWith(c, r, depth-1) {
			return false
		}
	}
	return true
}

// MergeBlock implements Z-merge (Algorithm 4) over two trees sharing
// one Store, mirroring Merge entry for entry: BFS over src, discard
// branches an existing skyline row region-dominates, stash branches
// incomparable with the whole skyline, and let surviving leaf rows
// prune dominated sky rows before the final rebalance. Both inputs
// must individually be skyline candidate sets.
func MergeBlock(sky, src *BlockTree) *BlockTree {
	if sky.st != src.st {
		panic("zbtree: MergeBlock requires both trees to share one Store")
	}
	if src.Empty() {
		return sky
	}
	if sky.Empty() {
		return src
	}
	var stash, survivors []int32
	queue := []int32{src.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if sky.DominatesAllOfRegion(src.region(n)) {
			continue
		}
		if sky.incomparableWith(sky.root, src.region(n), 2) {
			stash = src.appendRows(n, stash)
			continue
		}
		nd := &src.nodes[n]
		if !nd.isLeaf() {
			queue = append(queue, nd.kids...)
			continue
		}
		for _, e := range nd.rows {
			if sky.DominatesRow(e) {
				continue
			}
			sky.RemoveDominatedBy(e)
			survivors = append(survivors, e)
		}
	}
	all := sky.Rows()
	all = append(all, survivors...)
	all = append(all, stash...)
	return BuildRows(sky.st, sky.fanout, all, sky.tally)
}

// ZSearchBlock is the block-native "ZS" entry point: index b's rows
// into a BlockTree and return the exact skyline as a compact block.
func ZSearchBlock(enc *zorder.Encoder, fanout int, b point.Block, tally *metrics.Tally) point.Block {
	out, _ := ZSearchGroup(enc, fanout, b, zorder.ZCol{}, tally)
	return out
}

// ZSearchGroup is ZSearchBlock for callers that already hold b's
// Z-address column (the pipeline's encode-once path): when zc has one
// enc-encoded address per row it is reused verbatim, otherwise the
// block is encoded here. Returns the skyline block and the matching
// sub-column of survivor addresses, both compacted so they never pin
// the input arenas.
func ZSearchGroup(enc *zorder.Encoder, fanout int, b point.Block, zc zorder.ZCol, tally *metrics.Tally) (point.Block, zorder.ZCol) {
	if b.Len() == 0 {
		return point.Block{Dims: b.Dims}, zorder.ZCol{Words: enc.Words()}
	}
	var st *Store
	if zc.Len() == b.Len() && zc.Words == enc.Words() {
		st = NewStoreWithZCol(enc, b, zc)
	} else {
		st = NewStore(enc, b)
	}
	rows := BuildStore(st, fanout, tally).SkylineRows()
	return st.CompactRows(rows)
}

// BuildFromBlockZ builds a legacy Tree over a block whose Z-addresses
// were already encoded (one address per row). Entries reference the
// block's rows and the column's addresses zero-copy; only the decoded
// grid coordinates are materialized, in one arena. This is the bridge
// for long-lived legacy-tree owners (incremental maintenance) to join
// the encode-once path.
func BuildFromBlockZ(enc *zorder.Encoder, fanout int, b point.Block, zc zorder.ZCol, tally *metrics.Tally) *Tree {
	n := b.Len()
	if zc.Len() != n || zc.Words != enc.Words() {
		panic(fmt.Sprintf("zbtree: zcol shape %d×%d does not match block %d rows under a %d-word encoder",
			zc.Len(), zc.Words, n, enc.Words()))
	}
	entries := make([]Entry, n)
	d := enc.Dims()
	garena := make([]uint32, n*d)
	for i := 0; i < n; i++ {
		g := garena[i*d : (i+1)*d : (i+1)*d]
		enc.DecodeGridInto(g, zc.At(i))
		entries[i] = Entry{Z: zc.At(i), G: g, P: b.Row(i)}
	}
	return Build(enc, fanout, entries, tally)
}
