package zbtree

// Validate exposes the structural invariant checker to tests.
func (t *Tree) Validate() error { return t.validate() }
