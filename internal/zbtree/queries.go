package zbtree

import (
	"context"

	"zskyline/internal/point"
	"zskyline/internal/zorder"
)

// SkylineProgressive streams skyline points as Z-search discovers
// them, for first-results-fast consumers. Emission is deferred until
// the traversal's Z-address moves strictly past a point's own address:
// a point can only ever be evicted by an equal-address tie, so every
// emitted point is final. The channel closes when the traversal
// completes or ctx is cancelled.
func (t *Tree) SkylineProgressive(ctx context.Context) <-chan point.Point {
	out := make(chan point.Point)
	go func() {
		defer close(out)
		sky := New(t.enc, t.fanout, t.tally)
		var pending []Entry // accepted entries sharing the current address
		flush := func() bool {
			for _, e := range pending {
				select {
				case out <- e.P:
				case <-ctx.Done():
					return false
				}
			}
			pending = pending[:0]
			return true
		}
		ok := t.progressive(ctx, t.root, sky, &pending, flush)
		if ok {
			flush()
		}
	}()
	return out
}

func (t *Tree) progressive(ctx context.Context, n *node, sky *Tree, pending *[]Entry, flush func() bool) bool {
	if n == nil {
		return true
	}
	select {
	case <-ctx.Done():
		return false
	default:
	}
	if sky.DominatesAllOfRegion(n.region) {
		return true
	}
	if !n.isLeaf() {
		for _, c := range n.children {
			if !t.progressive(ctx, c, sky, pending, flush) {
				return false
			}
		}
		return true
	}
	for _, e := range n.entries {
		// The traversal's address advanced: everything pending is
		// final and can be streamed out.
		if len(*pending) > 0 && zorder.Compare((*pending)[0].Z, e.Z) < 0 {
			if !flush() {
				return false
			}
		}
		if sky.DominatesPoint(e.G, e.P) {
			continue
		}
		if sky.RemoveDominatedBy(e.G, e.P) > 0 {
			// Ties: drop evicted entries from the pending buffer too.
			kept := (*pending)[:0]
			for _, pe := range *pending {
				if !point.Dominates(e.P, pe.P) {
					kept = append(kept, pe)
				}
			}
			*pending = kept
		}
		sky.Append(e)
		*pending = append(*pending, e)
	}
	return true
}

// RangeQuery returns every stored point p with lo <= p <= hi
// componentwise, pruning subtrees whose region cannot intersect the
// box.
func (t *Tree) RangeQuery(lo, hi point.Point) []point.Point {
	gLo := t.enc.Grid(lo)
	gHi := t.enc.Grid(hi)
	var out []point.Point
	t.rangeQuery(t.root, gLo, gHi, lo, hi, &out)
	return out
}

func (t *Tree) rangeQuery(n *node, gLo, gHi []uint32, lo, hi point.Point, out *[]point.Point) {
	if n == nil {
		return
	}
	t.tally.AddRegionTests(1)
	// Conservative disjointness: some dimension of the node's region
	// lies entirely outside the box's grid shadow.
	for k := range gLo {
		if n.region.MinG[k] > gHi[k] || n.region.MaxG[k] < gLo[k] {
			return
		}
	}
	if n.isLeaf() {
		for _, e := range n.entries {
			if inBox(e.P, lo, hi) {
				*out = append(*out, e.P)
			}
		}
		return
	}
	for _, c := range n.children {
		t.rangeQuery(c, gLo, gHi, lo, hi, out)
	}
}

func inBox(p, lo, hi point.Point) bool {
	for k := range p {
		if p[k] < lo[k] || p[k] > hi[k] {
			return false
		}
	}
	return true
}

// SkylineWithin computes the constrained skyline: the skyline of the
// stored points that fall inside the box [lo, hi]. Constraints change
// the answer fundamentally (points dominated by out-of-box points can
// re-enter), so this is a range query followed by a Z-search over the
// survivors.
func (t *Tree) SkylineWithin(lo, hi point.Point) []point.Point {
	pts := t.RangeQuery(lo, hi)
	return BuildFromPoints(t.enc, t.fanout, pts, t.tally).Skyline()
}
