package zbtree

import (
	"zskyline/internal/dominance"
	"zskyline/internal/metrics"
	"zskyline/internal/point"
	"zskyline/internal/zorder"
)

// Provider-aware Z-search and Z-merge. The grid-level cuts of the
// Pareto kernels are Pareto facts, so each is gated on the capability
// that transfers it to the provider's relation (see package dominance):
//
//   - positive cuts ("everything in this region is grid-dominated, so
//     skip/evict it wholesale") eliminate under the provider only when
//     Pareto dominance implies provider dominance (Caps.ParetoImplies);
//   - negative cuts ("nothing in this region can grid-dominate p, so
//     don't descend") skip provider dominators only when provider
//     dominance implies Pareto dominance (Caps.ImpliesPareto);
//   - branch stashing in Z-merge ("these regions are incomparable")
//     needs only ImpliesPareto: grid incomparability rules out Pareto
//     dominance in both directions, hence provider dominance too.
//
// When a capability is absent the walk degrades to exhaustive region
// scans — every entry is tested point-by-point — which is always
// sound. For non-transitive relations the traversal result is a
// candidate superset; SkylineUnder closes it with a verification pass
// against all stored points.

// SkylineUnder computes the exact provider skyline of the stored
// points. The classic relation routes to the hardcoded Skyline fast
// path.
func (t *Tree) SkylineUnder(prov dominance.Provider) []point.Point {
	if dominance.IsPareto(prov) {
		return t.Skyline()
	}
	caps := prov.Caps()
	sky := New(t.enc, t.fanout, t.tally)
	t.zsearchUnder(t.root, sky, prov, caps)
	pts := sky.Points()
	if !caps.Transitive {
		pts = verifyAgainst(prov, pts, t.Points(), t.tally)
	}
	return pts
}

func (t *Tree) zsearchUnder(n *node, sky *Tree, prov dominance.Provider, caps dominance.Caps) {
	if n == nil {
		return
	}
	if caps.ParetoImplies && sky.DominatesAllOfRegion(n.region) {
		return
	}
	if n.isLeaf() {
		for _, e := range n.entries {
			if sky.dominatesPointUnder(sky.root, prov, caps, e.G, e.P) {
				continue
			}
			sky.removeDominatedByUnder(prov, caps, e.G, e.P)
			sky.Append(e)
		}
		return
	}
	for _, c := range n.children {
		t.zsearchUnder(c, sky, prov, caps)
	}
}

// DominatesPointUnder reports whether some stored point
// provider-dominates the point p with grid address g. The classic
// relation routes to the hardcoded DominatesPoint.
func (t *Tree) DominatesPointUnder(prov dominance.Provider, g []uint32, p point.Point) bool {
	if dominance.IsPareto(prov) {
		return t.DominatesPoint(g, p)
	}
	return t.dominatesPointUnder(t.root, prov, prov.Caps(), g, p)
}

// RemoveDominatedByUnder deletes every stored point that the point p
// (grid address g) provider-dominates and returns how many were
// removed. The classic relation routes to the hardcoded
// RemoveDominatedBy.
func (t *Tree) RemoveDominatedByUnder(prov dominance.Provider, g []uint32, p point.Point) int {
	if dominance.IsPareto(prov) {
		return t.RemoveDominatedBy(g, p)
	}
	return t.removeDominatedByUnder(prov, prov.Caps(), g, p)
}

// dominatesPointUnder reports whether some stored point
// provider-dominates p, descending with capability-gated cuts.
func (t *Tree) dominatesPointUnder(n *node, prov dominance.Provider, caps dominance.Caps, g []uint32, p point.Point) bool {
	if n == nil {
		return false
	}
	t.tally.AddRegionTests(1)
	if caps.ImpliesPareto && zorder.RegionCannotDominatePointGrid(n.region, g) {
		return false
	}
	if caps.ParetoImplies && zorder.GridStrictDominates(n.region.MaxG, g) {
		// Every point of this (non-empty) subtree Pareto-dominates p,
		// hence provider-dominates it.
		return true
	}
	if n.isLeaf() {
		t.tally.AddDominanceTests(int64(len(n.entries)))
		for _, e := range n.entries {
			if prov.Dominates(e.P, p) {
				return true
			}
		}
		return false
	}
	for _, c := range n.children {
		if t.dominatesPointUnder(c, prov, caps, g, p) {
			return true
		}
	}
	return false
}

// removeDominatedByUnder deletes every stored point p
// provider-dominates and returns how many were removed.
func (t *Tree) removeDominatedByUnder(prov dominance.Provider, caps dominance.Caps, g []uint32, p point.Point) int {
	if t.root == nil {
		return 0
	}
	removed := t.removeDominatedUnder(t.root, prov, caps, g, p)
	if t.root.count == 0 {
		t.root = nil
	}
	return removed
}

func (t *Tree) removeDominatedUnder(n *node, prov dominance.Provider, caps dominance.Caps, g []uint32, p point.Point) int {
	t.tally.AddRegionTests(1)
	if caps.ImpliesPareto && zorder.GridSomeGreater(g, n.region.MaxG) {
		return 0
	}
	if n.isLeaf() {
		kept := n.entries[:0]
		removed := 0
		t.tally.AddDominanceTests(int64(len(n.entries)))
		for _, e := range n.entries {
			if prov.Dominates(p, e.P) {
				removed++
				continue
			}
			kept = append(kept, e)
		}
		n.entries = kept
		n.count = len(kept)
		return removed
	}
	removed := 0
	kept := n.children[:0]
	for _, c := range n.children {
		if caps.ParetoImplies && zorder.PointGridDominatesRegion(g, c.region) {
			// Entire child Pareto-dominated, hence provider-dominated.
			removed += c.count
			continue
		}
		removed += t.removeDominatedUnder(c, prov, caps, g, p)
		if c.count > 0 {
			kept = append(kept, c)
		}
	}
	n.children = kept
	n.count -= removed
	return removed
}

// MergeUnder is Z-merge under a provider: it merges the candidate tree
// src into sky with capability-gated pruning and returns a freshly
// balanced tree over the survivors. Inputs follow the Merge
// precondition (each tree individually holds mutually non-dominated
// points under prov); for non-transitive relations the result is a
// candidate superset that the pipeline's final verification pass
// closes. The classic relation routes to the hardcoded Merge.
func MergeUnder(prov dominance.Provider, sky, src *Tree) *Tree {
	if dominance.IsPareto(prov) {
		return Merge(sky, src)
	}
	if src.Empty() {
		return sky
	}
	if sky.Empty() {
		return src
	}
	caps := prov.Caps()
	enc, fanout, tally := sky.enc, sky.fanout, sky.tally
	var stash []Entry
	var survivors []Entry
	queue := []*node{src.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if caps.ParetoImplies && sky.DominatesAllOfRegion(n.region) {
			continue
		}
		if caps.ImpliesPareto && sky.incomparableWith(sky.root, n.region, 2) {
			collectEntries(n, &stash)
			continue
		}
		if !n.isLeaf() {
			queue = append(queue, n.children...)
			continue
		}
		for _, e := range n.entries {
			if sky.dominatesPointUnder(sky.root, prov, caps, e.G, e.P) {
				continue
			}
			sky.removeDominatedByUnder(prov, caps, e.G, e.P)
			survivors = append(survivors, e)
		}
	}
	all := sky.Entries()
	all = append(all, survivors...)
	all = append(all, stash...)
	return Build(enc, fanout, all, tally)
}

// ZSearchUnder indexes pts into a ZB-tree and computes the provider
// skyline — the provider-generic form of ZSearch.
func ZSearchUnder(prov dominance.Provider, enc *zorder.Encoder, fanout int, pts []point.Point, tally *metrics.Tally) []point.Point {
	if dominance.IsPareto(prov) {
		return ZSearch(enc, fanout, pts, tally)
	}
	return BuildFromPoints(enc, fanout, pts, tally).SkylineUnder(prov)
}

// ZSearchBlockUnder is ZSearchUnder over a block, compacting survivors
// into a fresh block. The classic relation routes to the block-native
// ZSearchBlock fast path.
func ZSearchBlockUnder(prov dominance.Provider, enc *zorder.Encoder, fanout int, b point.Block, tally *metrics.Tally) point.Block {
	if dominance.IsPareto(prov) {
		return ZSearchBlock(enc, fanout, b, tally)
	}
	sky := ZSearchUnder(prov, enc, fanout, b.Points(), tally)
	return point.BlockOf(b.Dims, sky)
}

// verifyAgainst retests candidates against every point of all,
// dropping candidates some distinct point dominates — the closing scan
// for non-transitive relations. Identity (not coordinate equality)
// exempts a candidate from its own test, so duplicates are compared
// and survive exactly when the relation lets them (coordinate-equal
// points never dominate under an irreflexive relation).
func verifyAgainst(prov dominance.Provider, cands, all []point.Point, tally *metrics.Tally) []point.Point {
	var tests int64
	kept := cands[:0]
	for _, c := range cands {
		ok := true
		for _, q := range all {
			if sameBacking(c, q) {
				continue
			}
			tests++
			if prov.Dominates(q, c) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, c)
		}
	}
	tally.AddDominanceTests(tests)
	return kept
}

// sameBacking reports whether two points share a backing array.
func sameBacking(a, b point.Point) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}
