package zbtree

import (
	"math/rand"
	"testing"

	"zskyline/internal/dominance"
	"zskyline/internal/point"
)

// underProviders builds one provider of each kind for d-dimensional
// unit-cube data.
func underProviders(t testing.TB, d int) []dominance.Provider {
	t.Helper()
	w1 := make([]float64, d)
	w2 := make([]float64, d)
	for i := range w1 {
		w1[i] = 1
		w2[i] = 1
	}
	w2[0] = 3
	flex, err := dominance.NewFlex([][]float64{w1, w2})
	if err != nil {
		t.Fatal(err)
	}
	k := d - 1
	if k < 1 {
		k = 1
	}
	kdom, err := dominance.NewKDom(k)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := dominance.NewRobust(0.1)
	if err != nil {
		t.Fatal(err)
	}
	return []dominance.Provider{dominance.Pareto{}, flex, kdom, robust}
}

// TestSkylineUnderMatchesOracle pins the capability-gated Z-search to
// the per-provider brute-force oracle, duplicates included.
func TestSkylineUnderMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, d := range []int{2, 4} {
		enc := unitEnc(t, d, 6)
		for _, n := range []int{0, 1, 30, 400} {
			pts := randPts(r, n, d, 8)
			for i := 0; i < n/10; i++ {
				pts = append(pts, pts[r.Intn(n)].Clone())
			}
			tr := BuildFromPoints(enc, 4, pts, nil)
			for _, prov := range underProviders(t, d) {
				got := tr.SkylineUnder(prov)
				want := dominance.BruteForce(prov, pts)
				sameSet(t, got, want, prov.Name())
			}
		}
	}
}

// TestSkylineUnderParetoFastPath checks the classic relation routes to
// the hardcoded Z-search and agrees with it exactly.
func TestSkylineUnderParetoFastPath(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	enc := unitEnc(t, 3, 6)
	pts := randPts(r, 200, 3, 16)
	tr := BuildFromPoints(enc, 4, pts, nil)
	sameSet(t, tr.SkylineUnder(nil), tr.Skyline(), "nil provider")
	sameSet(t, tr.SkylineUnder(dominance.Pareto{}), tr.Skyline(), "Pareto{}")
}

// TestMergeUnderMatchesOracle merges two local provider skylines and
// compares against the oracle of the full dataset. Transitive
// providers must be exact directly; the non-transitive provider's
// merge output is a candidate superset that must become exact after
// the closing verification against the full dataset.
func TestMergeUnderMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	const d = 3
	enc := unitEnc(t, d, 6)
	pts := randPts(r, 300, d, 8)
	half := len(pts) / 2
	for _, prov := range underProviders(t, d) {
		left := BuildFromPoints(enc, 4, pts[:half], nil).SkylineUnder(prov)
		right := BuildFromPoints(enc, 4, pts[half:], nil).SkylineUnder(prov)
		merged := MergeUnder(prov,
			BuildFromPoints(enc, 4, left, nil),
			BuildFromPoints(enc, 4, right, nil)).Points()
		want := dominance.BruteForce(prov, pts)
		if prov.Caps().Transitive {
			sameSet(t, merged, want, prov.Name())
			continue
		}
		// Candidate superset: every true result point must survive the
		// pipeline, and verification closes it.
		closed := verifyAgainst(prov, merged, pts, nil)
		sameSet(t, closed, want, prov.Name()+" after verify")
	}
}

// TestZSearchBlockUnderMatchesSlice pins the block adapter to the
// slice path.
func TestZSearchBlockUnderMatchesSlice(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	const d = 4
	enc := unitEnc(t, d, 6)
	pts := randPts(r, 250, d, 8)
	b := point.BlockOf(d, pts)
	for _, prov := range underProviders(t, d) {
		got := ZSearchBlockUnder(prov, enc, 4, b, nil).Points()
		want := ZSearchUnder(prov, enc, 4, pts, nil)
		sameSet(t, got, want, prov.Name())
	}
}
