package zbtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"zskyline/internal/point"
	"zskyline/internal/seq"
	"zskyline/internal/zorder"
)

// quick-generated workloads: each property gets a seed and builds a
// deterministic random dataset from it, so failures reproduce.

func quickPoints(seed int64, maxN, maxD int) ([]point.Point, *zorder.Encoder) {
	r := rand.New(rand.NewSource(seed))
	d := 1 + r.Intn(maxD)
	n := r.Intn(maxN)
	pts := make([]point.Point, n)
	for i := range pts {
		p := make(point.Point, d)
		for k := range p {
			if r.Intn(2) == 0 {
				p[k] = float64(r.Intn(6)) / 6
			} else {
				p[k] = r.Float64()
			}
		}
		pts[i] = p
	}
	enc, _ := zorder.NewUnitEncoder(d, 2+r.Intn(12))
	return pts, enc
}

// Property: the tree is a faithful container — build and read back
// yields a permutation of the input.
func TestQuickBuildIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		pts, enc := quickPoints(seed, 300, 5)
		tr := BuildFromPoints(enc, 2+int(seed%13+13)%13, pts, nil)
		got := tr.Points()
		if len(got) != len(pts) {
			return false
		}
		g := append([]point.Point(nil), got...)
		w := append([]point.Point(nil), pts...)
		point.SortLexicographic(g)
		point.SortLexicographic(w)
		for i := range g {
			if !g[i].Equal(w[i]) {
				return false
			}
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the skyline is invariant under input permutation.
func TestQuickSkylinePermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		pts, enc := quickPoints(seed, 200, 4)
		a := ZSearch(enc, 8, pts, nil)
		shuffled := append([]point.Point(nil), pts...)
		r := rand.New(rand.NewSource(seed ^ 0x5a5a))
		r.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		b := ZSearch(enc, 8, shuffled, nil)
		if len(a) != len(b) {
			return false
		}
		point.SortLexicographic(a)
		point.SortLexicographic(b)
		for i := range a {
			if !a[i].Equal(b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge is order-insensitive — merging A into B and B into A
// yield the same skyline set.
func TestQuickMergeCommutes(t *testing.T) {
	f := func(seed int64) bool {
		ptsA, enc := quickPoints(seed, 150, 4)
		r := rand.New(rand.NewSource(seed ^ 0x77))
		d := enc.Dims()
		ptsB := make([]point.Point, r.Intn(150))
		for i := range ptsB {
			p := make(point.Point, d)
			for k := range p {
				p[k] = r.Float64()
			}
			ptsB[i] = p
		}
		skyA := seq.BruteForce(ptsA)
		skyB := seq.BruteForce(ptsB)
		ab := Merge(BuildFromPoints(enc, 8, skyA, nil), BuildFromPoints(enc, 8, skyB, nil)).Points()
		ba := Merge(BuildFromPoints(enc, 8, skyB, nil), BuildFromPoints(enc, 8, skyA, nil)).Points()
		if len(ab) != len(ba) {
			return false
		}
		point.SortLexicographic(ab)
		point.SortLexicographic(ba)
		for i := range ab {
			if !ab[i].Equal(ba[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: skyline is idempotent — skyline(skyline(P)) == skyline(P).
func TestQuickSkylineIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		pts, enc := quickPoints(seed, 250, 5)
		once := ZSearch(enc, 8, pts, nil)
		twice := ZSearch(enc, 8, once, nil)
		return len(once) == len(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
