package zbtree

import (
	"zskyline/internal/metrics"
	"zskyline/internal/point"
	"zskyline/internal/zorder"
)

// Skyline runs Z-search over the tree: a depth-first traversal in
// Z-order that maintains the running skyline in a second ZB-tree.
// Because Z-order is a topological order for dominance (a dominator's
// Z-address is never larger than its dominatee's), each point only
// needs to be tested against already-accepted points; the only
// exception is grid-level ties, which the per-acceptance
// RemoveDominatedBy sweep repairs. The result is the exact skyline of
// the stored float points.
func (t *Tree) Skyline() []point.Point {
	sky := New(t.enc, t.fanout, t.tally)
	t.zsearch(t.root, sky)
	return sky.Points()
}

func (t *Tree) zsearch(n *node, sky *Tree) {
	if n == nil {
		return
	}
	if sky.DominatesAllOfRegion(n.region) {
		return
	}
	if n.isLeaf() {
		for _, e := range n.entries {
			if sky.DominatesPoint(e.G, e.P) {
				continue
			}
			sky.RemoveDominatedBy(e.G, e.P)
			sky.Append(e)
		}
		return
	}
	for _, c := range n.children {
		t.zsearch(c, sky)
	}
}

// SkylineTree is Skyline but returns the result as a fresh balanced
// ZB-tree, which is what the merge phase consumes.
func (t *Tree) SkylineTree() *Tree {
	sky := New(t.enc, t.fanout, t.tally)
	t.zsearch(t.root, sky)
	return Build(t.enc, t.fanout, sky.Entries(), t.tally)
}

// ZSearch is the convenience entry point for the "ZS" algorithm of the
// paper's evaluation: index pts into a ZB-tree and compute the skyline.
// It is a thin adapter over the block-native path (ZSearchBlock), so
// the slice and columnar kernels cannot drift apart.
func ZSearch(enc *zorder.Encoder, fanout int, pts []point.Point, tally *metrics.Tally) []point.Point {
	return ZSearchBlock(enc, fanout, point.BlockOf(enc.Dims(), pts), tally).Points()
}

// Merge implements Z-merge (Algorithm 4): it merges the skyline tree
// src ("new coming data points") into sky ("the existing skyline set")
// and returns a freshly balanced tree holding the skyline of the union.
//
// Precondition: each input tree individually holds a set of mutually
// non-dominated points (a skyline candidate set), which is exactly
// what phase 2 of the pipeline produces. The traversal is BFS over
// src; whole src branches are discarded when an existing skyline point
// dominates their RZ-region, appended wholesale when they are
// incomparable with the skyline tree, and opened otherwise. Surviving
// leaf points prune dominated sky entries (the UDominate step) before
// the final rebalance.
func Merge(sky, src *Tree) *Tree {
	if src.Empty() {
		return sky
	}
	if sky.Empty() {
		return src
	}
	enc, fanout, tally := sky.enc, sky.fanout, sky.tally
	var stash []Entry
	var survivors []Entry
	queue := []*node{src.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if sky.DominatesAllOfRegion(n.region) {
			continue
		}
		if sky.incomparableWith(sky.root, n.region, 2) {
			collectEntries(n, &stash)
			continue
		}
		if !n.isLeaf() {
			queue = append(queue, n.children...)
			continue
		}
		for _, e := range n.entries {
			if sky.DominatesPoint(e.G, e.P) {
				continue
			}
			sky.RemoveDominatedBy(e.G, e.P)
			survivors = append(survivors, e)
		}
	}
	all := sky.Entries()
	all = append(all, survivors...)
	all = append(all, stash...)
	return Build(enc, fanout, all, tally)
}

// incomparableWith reports (conservatively, descending at most depth
// levels) that no point under skyN and no float point in region r can
// dominate one another, so a whole src branch can be stashed without
// opening it — the fast path that gives Z-merge its speed.
func (t *Tree) incomparableWith(skyN *node, r zorder.Region, depth int) bool {
	if skyN == nil {
		return false
	}
	t.tally.AddRegionTests(1)
	if zorder.RegionsIncomparable(skyN.region, r) {
		return true
	}
	if depth == 0 || skyN.isLeaf() {
		return false
	}
	for _, c := range skyN.children {
		if !t.incomparableWith(c, r, depth-1) {
			return false
		}
	}
	return true
}

func collectEntries(n *node, out *[]Entry) {
	if n.isLeaf() {
		*out = append(*out, n.entries...)
		return
	}
	for _, c := range n.children {
		collectEntries(c, out)
	}
}

// MergeAll left-folds Merge over a list of candidate trees, returning
// the skyline tree of their union. Empty input yields an empty tree
// built on enc.
func MergeAll(enc *zorder.Encoder, fanout int, trees []*Tree, tally *metrics.Tally) *Tree {
	acc := New(enc, fanout, tally)
	for _, t := range trees {
		acc = Merge(acc, t)
	}
	return acc
}
