// Package zbtree implements the ZB-tree of Lee et al. [5] that the
// paper builds on: a balanced tree over Z-addresses whose leaf nodes
// hold data points and whose internal nodes hold the RZ-region of
// their subtree. On top of it the package provides
//
//   - ZSearch: the state-of-the-art centralized skyline algorithm
//     ("ZS" in the paper's evaluation), which visits points in Z-order
//     and prunes whole subtrees with RZ-region dominance tests; and
//   - Merge: the paper's Z-merge (Algorithm 4) for merging skyline
//     candidate sets, the third-phase workhorse.
//
// All region-level pruning uses the conservative grid tests of package
// zorder, so results are exact with respect to the original float
// coordinates (see DESIGN.md §5).
package zbtree

import (
	"fmt"
	"sort"

	"zskyline/internal/metrics"
	"zskyline/internal/point"
	"zskyline/internal/zorder"
)

// DefaultFanout is the node capacity used when callers pass 0.
const DefaultFanout = 16

// Entry is one indexed point: its Z-address, quantized grid
// coordinates, and the original float point.
type Entry struct {
	Z zorder.ZAddr
	G []uint32
	P point.Point
}

// NewEntry quantizes and encodes p with enc.
func NewEntry(enc *zorder.Encoder, p point.Point) Entry {
	g := enc.Grid(p)
	return Entry{Z: enc.EncodeGrid(g), G: g, P: p}
}

type node struct {
	minZ, maxZ zorder.ZAddr
	region     zorder.Region
	children   []*node
	entries    []Entry
	count      int
}

func (n *node) isLeaf() bool { return n.children == nil }

// Tree is a ZB-tree. It is not safe for concurrent mutation; the
// pipeline uses one tree per worker.
type Tree struct {
	enc    *zorder.Encoder
	fanout int
	root   *node
	tally  *metrics.Tally
}

// New returns an empty ZB-tree. fanout <= 0 selects DefaultFanout;
// tally may be nil.
func New(enc *zorder.Encoder, fanout int, tally *metrics.Tally) *Tree {
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	if fanout < 2 {
		fanout = 2
	}
	return &Tree{enc: enc, fanout: fanout, tally: tally}
}

// Build bulk-loads a balanced tree bottom-up from entries, sorting
// them by Z-address first (a stable sort, so ties keep input order).
func Build(enc *zorder.Encoder, fanout int, entries []Entry, tally *metrics.Tally) *Tree {
	t := New(enc, fanout, tally)
	if len(entries) == 0 {
		return t
	}
	es := make([]Entry, len(entries))
	copy(es, entries)
	sort.SliceStable(es, func(i, j int) bool { return zorder.Compare(es[i].Z, es[j].Z) < 0 })
	// Leaves.
	var level []*node
	for lo := 0; lo < len(es); lo += t.fanout {
		hi := lo + t.fanout
		if hi > len(es) {
			hi = len(es)
		}
		leaf := &node{entries: es[lo:hi:hi], count: hi - lo}
		leaf.minZ = leaf.entries[0].Z
		leaf.maxZ = leaf.entries[len(leaf.entries)-1].Z
		leaf.region = enc.RegionOf(leaf.minZ, leaf.maxZ)
		level = append(level, leaf)
	}
	// Internal levels.
	for len(level) > 1 {
		var up []*node
		for lo := 0; lo < len(level); lo += t.fanout {
			hi := lo + t.fanout
			if hi > len(level) {
				hi = len(level)
			}
			kids := level[lo:hi:hi]
			n := &node{children: kids}
			for _, c := range kids {
				n.count += c.count
			}
			n.minZ = kids[0].minZ
			n.maxZ = kids[len(kids)-1].maxZ
			n.region = enc.RegionOf(n.minZ, n.maxZ)
			up = append(up, n)
		}
		level = up
	}
	t.root = level[0]
	return t
}

// BuildFromPoints encodes pts and bulk-loads them. Z-addresses and
// grid coordinates go into two shared arenas rather than per-point
// allocations; entries hold views into them.
func BuildFromPoints(enc *zorder.Encoder, fanout int, pts []point.Point, tally *metrics.Tally) *Tree {
	entries := make([]Entry, len(pts))
	w, d := enc.Words(), enc.Dims()
	zarena := make([]uint64, len(pts)*w)
	garena := make([]uint32, len(pts)*d)
	for i, p := range pts {
		z := zorder.ZAddr(zarena[i*w : (i+1)*w : (i+1)*w])
		g := garena[i*d : (i+1)*d : (i+1)*d]
		enc.EncodeInto(z, g, p)
		entries[i] = Entry{Z: z, G: g, P: p}
	}
	return Build(enc, fanout, entries, tally)
}

// Len returns the number of points in the tree.
func (t *Tree) Len() int {
	if t.root == nil {
		return 0
	}
	return t.root.count
}

// Empty reports whether the tree holds no points.
func (t *Tree) Empty() bool { return t.Len() == 0 }

// Encoder returns the encoder the tree was built with.
func (t *Tree) Encoder() *zorder.Encoder { return t.enc }

// Entries returns all entries in Z-order.
func (t *Tree) Entries() []Entry {
	out := make([]Entry, 0, t.Len())
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.isLeaf() {
			out = append(out, n.entries...)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Points returns all stored points in Z-order.
func (t *Tree) Points() []point.Point {
	es := t.Entries()
	pts := make([]point.Point, len(es))
	for i, e := range es {
		pts[i] = e.P
	}
	return pts
}

// Append inserts an entry whose Z-address is >= every address already
// in the tree (insertion at the rightmost edge). This is the only
// mutation ZSearch needs: skyline points arrive in Z-order. It panics
// if the ordering precondition is violated, because silent corruption
// of the index would invalidate every later dominance test.
func (t *Tree) Append(e Entry) {
	if t.root == nil {
		t.root = &node{entries: []Entry{e}, count: 1, minZ: e.Z, maxZ: e.Z,
			region: t.enc.RegionOfPoint(e.Z)}
		return
	}
	if zorder.Compare(e.Z, t.root.maxZ) < 0 {
		panic(fmt.Sprintf("zbtree: Append out of Z-order: %s < %s", e.Z, t.root.maxZ))
	}
	if up := t.appendAt(t.root, e); up != nil {
		old := t.root
		t.root = &node{children: []*node{old, up}, count: old.count + up.count,
			minZ: old.minZ, maxZ: up.maxZ}
		t.root.region = t.enc.RegionOf(t.root.minZ, t.root.maxZ)
	}
}

// appendAt inserts e under n (rightmost path) and returns a new right
// sibling if n overflowed.
func (t *Tree) appendAt(n *node, e Entry) *node {
	if n.isLeaf() {
		if len(n.entries) < t.fanout {
			n.entries = append(n.entries, e)
			n.count++
			n.maxZ = e.Z
			n.region = t.enc.RegionOf(n.minZ, n.maxZ)
			return nil
		}
		return &node{entries: []Entry{e}, count: 1, minZ: e.Z, maxZ: e.Z,
			region: t.enc.RegionOfPoint(e.Z)}
	}
	last := n.children[len(n.children)-1]
	up := t.appendAt(last, e)
	if up != nil {
		if len(n.children) < t.fanout {
			n.children = append(n.children, up)
			up = nil
		}
	}
	if up == nil {
		n.count++
		n.maxZ = e.Z
		n.region = t.enc.RegionOf(n.minZ, n.maxZ)
		return nil
	}
	// n is full: push the new sibling up wrapped in a fresh node.
	return &node{children: []*node{up}, count: up.count, minZ: up.minZ, maxZ: up.maxZ,
		region: up.region}
}

// DominatesPoint reports whether some point in the tree strictly
// dominates p (exact float semantics; grid tests only prune).
func (t *Tree) DominatesPoint(g []uint32, p point.Point) bool {
	return t.dominatesPoint(t.root, g, p)
}

func (t *Tree) dominatesPoint(n *node, g []uint32, p point.Point) bool {
	if n == nil {
		return false
	}
	t.tally.AddRegionTests(1)
	if zorder.RegionCannotDominatePointGrid(n.region, g) {
		return false
	}
	if zorder.GridStrictDominates(n.region.MaxG, g) {
		// Every point of this (non-empty) subtree dominates p.
		return true
	}
	if n.isLeaf() {
		t.tally.AddDominanceTests(int64(len(n.entries)))
		for _, e := range n.entries {
			if point.Dominates(e.P, p) {
				return true
			}
		}
		return false
	}
	for _, c := range n.children {
		if t.dominatesPoint(c, g, p) {
			return true
		}
	}
	return false
}

// DominatesAllOfRegion reports whether some single tree point strictly
// dominates every float point that could lie in region r.
func (t *Tree) DominatesAllOfRegion(r zorder.Region) bool {
	return t.dominatesRegion(t.root, r)
}

func (t *Tree) dominatesRegion(n *node, r zorder.Region) bool {
	if n == nil {
		return false
	}
	t.tally.AddRegionTests(1)
	// Every point in this subtree has grid >= region.MinG per dim; if
	// the subtree's best corner is not strictly below r's min corner in
	// every dim, no point here qualifies.
	if !zorder.GridStrictDominates(n.region.MinG, r.MinG) {
		return false
	}
	if zorder.GridStrictDominates(n.region.MaxG, r.MinG) {
		return true
	}
	if n.isLeaf() {
		for _, e := range n.entries {
			if zorder.GridStrictDominates(e.G, r.MinG) {
				return true
			}
		}
		return false
	}
	for _, c := range n.children {
		if t.dominatesRegion(c, r) {
			return true
		}
	}
	return false
}

// RemoveDominatedBy deletes every stored point strictly dominated by p
// and returns how many were removed. Interior regions are left as-is
// (they remain valid supersets), matching the paper's strategy of
// re-balancing once at the end of a merge.
func (t *Tree) RemoveDominatedBy(g []uint32, p point.Point) int {
	if t.root == nil {
		return 0
	}
	removed := t.removeDominated(t.root, g, p)
	if t.root.count == 0 {
		t.root = nil
	}
	return removed
}

func (t *Tree) removeDominated(n *node, g []uint32, p point.Point) int {
	t.tally.AddRegionTests(1)
	// p cannot dominate anything here if p's grid exceeds the region's
	// max corner in some dimension.
	if zorder.GridSomeGreater(g, n.region.MaxG) {
		return 0
	}
	if n.isLeaf() {
		kept := n.entries[:0]
		removed := 0
		t.tally.AddDominanceTests(int64(len(n.entries)))
		for _, e := range n.entries {
			if point.Dominates(p, e.P) {
				removed++
				continue
			}
			kept = append(kept, e)
		}
		n.entries = kept
		n.count = len(kept)
		return removed
	}
	removed := 0
	kept := n.children[:0]
	for _, c := range n.children {
		if zorder.PointGridDominatesRegion(g, c.region) {
			// Entire child dominated: certified at grid level.
			removed += c.count
			continue
		}
		removed += t.removeDominated(c, g, p)
		if c.count > 0 {
			kept = append(kept, c)
		}
	}
	n.children = kept
	n.count -= removed
	return removed
}

// Height returns the number of levels (0 for an empty tree). Used by
// invariant tests.
func (t *Tree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.isLeaf() {
			break
		}
		n = n.children[0]
	}
	return h
}

// validate checks structural invariants; tests call it via export_test.
func (t *Tree) validate() error {
	if t.root == nil {
		return nil
	}
	var check func(n *node, depth int) (int, error)
	leafDepth := -1
	check = func(n *node, depth int) (int, error) {
		if n.isLeaf() {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return 0, fmt.Errorf("unbalanced: leaf at depth %d and %d", leafDepth, depth)
			}
			if len(n.entries) == 0 {
				return 0, fmt.Errorf("empty leaf")
			}
			prev := n.entries[0]
			for _, e := range n.entries[1:] {
				if zorder.Compare(prev.Z, e.Z) > 0 {
					return 0, fmt.Errorf("leaf entries out of Z-order")
				}
				prev = e
			}
			for _, e := range n.entries {
				for d := range e.G {
					if e.G[d] < n.region.MinG[d] || e.G[d] > n.region.MaxG[d] {
						return 0, fmt.Errorf("entry %v outside region [%v,%v]", e.G, n.region.MinG, n.region.MaxG)
					}
				}
			}
			if n.count != len(n.entries) {
				return 0, fmt.Errorf("leaf count %d != %d", n.count, len(n.entries))
			}
			return n.count, nil
		}
		if len(n.children) == 0 {
			return 0, fmt.Errorf("empty internal node")
		}
		total := 0
		for i, c := range n.children {
			cnt, err := check(c, depth+1)
			if err != nil {
				return 0, err
			}
			total += cnt
			if i > 0 && zorder.Compare(n.children[i-1].maxZ, c.minZ) > 0 {
				return 0, fmt.Errorf("children out of Z-order")
			}
			for d := range c.region.MinG {
				if c.region.MinG[d] < n.region.MinG[d] || c.region.MaxG[d] > n.region.MaxG[d] {
					return 0, fmt.Errorf("child region escapes parent")
				}
			}
		}
		if total != n.count {
			return 0, fmt.Errorf("internal count %d != %d", n.count, total)
		}
		return total, nil
	}
	_, err := check(t.root, 0)
	return err
}

// CountDominatedBy returns how many stored points p strictly
// dominates, without mutating the tree. Whole subtrees are counted at
// once when their region is certifiably dominated at the grid level.
func (t *Tree) CountDominatedBy(g []uint32, p point.Point) int {
	if t.root == nil {
		return 0
	}
	return t.countDominated(t.root, g, p)
}

func (t *Tree) countDominated(n *node, g []uint32, p point.Point) int {
	t.tally.AddRegionTests(1)
	if zorder.GridSomeGreater(g, n.region.MaxG) {
		return 0
	}
	if zorder.PointGridDominatesRegion(g, n.region) {
		return n.count
	}
	if n.isLeaf() {
		t.tally.AddDominanceTests(int64(len(n.entries)))
		c := 0
		for _, e := range n.entries {
			if point.Dominates(p, e.P) {
				c++
			}
		}
		return c
	}
	c := 0
	for _, child := range n.children {
		c += t.countDominated(child, g, p)
	}
	return c
}

// DominatorsOf returns every stored point that strictly dominates p —
// the "why is p not in the skyline" explanation query. Subtrees whose
// region cannot contain a dominator are pruned.
func (t *Tree) DominatorsOf(g []uint32, p point.Point) []point.Point {
	var out []point.Point
	t.dominatorsOf(t.root, g, p, &out)
	return out
}

func (t *Tree) dominatorsOf(n *node, g []uint32, p point.Point, out *[]point.Point) {
	if n == nil {
		return
	}
	t.tally.AddRegionTests(1)
	if zorder.RegionCannotDominatePointGrid(n.region, g) {
		return
	}
	if n.isLeaf() {
		t.tally.AddDominanceTests(int64(len(n.entries)))
		for _, e := range n.entries {
			if point.Dominates(e.P, p) {
				*out = append(*out, e.P)
			}
		}
		return
	}
	for _, c := range n.children {
		t.dominatorsOf(c, g, p, out)
	}
}
