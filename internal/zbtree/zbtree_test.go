package zbtree

import (
	"math/rand"
	"sort"
	"testing"

	"zskyline/internal/metrics"
	"zskyline/internal/point"
	"zskyline/internal/seq"
	"zskyline/internal/zorder"
)

func unitEnc(t testing.TB, dims, bits int) *zorder.Encoder {
	t.Helper()
	e, err := zorder.NewUnitEncoder(dims, bits)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func randPts(r *rand.Rand, n, d, domain int) []point.Point {
	pts := make([]point.Point, n)
	for i := range pts {
		p := make(point.Point, d)
		for k := range p {
			if domain > 0 {
				p[k] = float64(r.Intn(domain)) / float64(domain)
			} else {
				p[k] = r.Float64()
			}
		}
		pts[i] = p
	}
	return pts
}

func sameSet(t *testing.T, got, want []point.Point, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d", label, len(got), len(want))
	}
	g := append([]point.Point(nil), got...)
	w := append([]point.Point(nil), want...)
	point.SortLexicographic(g)
	point.SortLexicographic(w)
	for i := range g {
		if !g[i].Equal(w[i]) {
			t.Fatalf("%s: [%d] = %v, want %v", label, i, g[i], w[i])
		}
	}
}

func TestBuildEmptyAndSmall(t *testing.T) {
	enc := unitEnc(t, 2, 8)
	tr := Build(enc, 4, nil, nil)
	if !tr.Empty() || tr.Len() != 0 || tr.Height() != 0 {
		t.Errorf("empty tree: len=%d h=%d", tr.Len(), tr.Height())
	}
	tr = BuildFromPoints(enc, 4, []point.Point{{0.5, 0.5}}, nil)
	if tr.Len() != 1 || tr.Height() != 1 {
		t.Errorf("singleton: len=%d h=%d", tr.Len(), tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 3, 4, 5, 16, 17, 64, 100, 257, 1000} {
		for _, fanout := range []int{2, 3, 4, 16} {
			enc := unitEnc(t, 3, 10)
			tr := BuildFromPoints(enc, fanout, randPts(rng, n, 3, 0), nil)
			if tr.Len() != n {
				t.Fatalf("n=%d fanout=%d: Len=%d", n, fanout, tr.Len())
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("n=%d fanout=%d: %v", n, fanout, err)
			}
		}
	}
}

func TestEntriesAreZSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	enc := unitEnc(t, 4, 8)
	tr := BuildFromPoints(enc, 8, randPts(rng, 500, 4, 0), nil)
	es := tr.Entries()
	if len(es) != 500 {
		t.Fatalf("Entries len = %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if zorder.Compare(es[i-1].Z, es[i].Z) > 0 {
			t.Fatalf("entries out of Z-order at %d", i)
		}
	}
}

func TestAppendMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	enc := unitEnc(t, 3, 8)
	for _, n := range []int{1, 2, 7, 33, 200, 1025} {
		pts := randPts(rng, n, 3, 0)
		entries := make([]Entry, n)
		for i, p := range pts {
			entries[i] = NewEntry(enc, p)
		}
		sort.SliceStable(entries, func(i, j int) bool { return zorder.Compare(entries[i].Z, entries[j].Z) < 0 })
		tr := New(enc, 4, nil)
		for _, e := range entries {
			tr.Append(e)
		}
		if tr.Len() != n {
			t.Fatalf("append n=%d: Len=%d", n, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("append n=%d: %v", n, err)
		}
		got := tr.Points()
		want := Build(enc, 4, entries, nil).Points()
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("append vs build mismatch at %d", i)
			}
		}
	}
}

func TestAppendOutOfOrderPanics(t *testing.T) {
	enc := unitEnc(t, 2, 8)
	tr := New(enc, 4, nil)
	tr.Append(NewEntry(enc, point.Point{0.9, 0.9}))
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Append did not panic")
		}
	}()
	tr.Append(NewEntry(enc, point.Point{0.1, 0.1}))
}

func TestDominatesPoint(t *testing.T) {
	enc := unitEnc(t, 2, 8)
	tr := BuildFromPoints(enc, 4, []point.Point{{0.5, 0.5}, {0.1, 0.9}}, nil)
	cases := []struct {
		p    point.Point
		want bool
	}{
		{point.Point{0.6, 0.6}, true},  // dominated by (0.5,0.5)
		{point.Point{0.5, 0.5}, false}, // equal, not dominated
		{point.Point{0.4, 0.4}, false}, // dominates the tree point
		{point.Point{0.2, 0.95}, true}, // dominated by (0.1,0.9)
		{point.Point{0.05, 0.05}, false},
	}
	for _, c := range cases {
		e := NewEntry(enc, c.p)
		if got := tr.DominatesPoint(e.G, e.P); got != c.want {
			t.Errorf("DominatesPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

// Property: DominatesPoint agrees with a linear scan.
func TestDominatesPointAgreesWithScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 60; iter++ {
		d := 1 + rng.Intn(5)
		enc := unitEnc(t, d, 6) // coarse grid: exercise tie handling
		pts := randPts(rng, 150, d, 8)
		tr := BuildFromPoints(enc, 4, pts, nil)
		for probe := 0; probe < 30; probe++ {
			q := randPts(rng, 1, d, 8)[0]
			want := false
			for _, p := range pts {
				if point.Dominates(p, q) {
					want = true
					break
				}
			}
			e := NewEntry(enc, q)
			if got := tr.DominatesPoint(e.G, e.P); got != want {
				t.Fatalf("DominatesPoint(%v) = %v, want %v", q, got, want)
			}
		}
	}
}

// Property: RemoveDominatedBy removes exactly the dominated points.
func TestRemoveDominatedBy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		d := 1 + rng.Intn(4)
		enc := unitEnc(t, d, 6)
		pts := randPts(rng, 120, d, 6)
		tr := BuildFromPoints(enc, 4, pts, nil)
		q := randPts(rng, 1, d, 6)[0]
		var want []point.Point
		wantRemoved := 0
		for _, p := range pts {
			if point.Dominates(q, p) {
				wantRemoved++
			} else {
				want = append(want, p)
			}
		}
		e := NewEntry(enc, q)
		got := tr.RemoveDominatedBy(e.G, e.P)
		if got != wantRemoved {
			t.Fatalf("removed %d, want %d", got, wantRemoved)
		}
		sameSet(t, tr.Points(), want, "survivors")
		if tr.Len() != len(want) {
			t.Fatalf("Len=%d want %d", tr.Len(), len(want))
		}
	}
}

func TestRemoveAllThenEmpty(t *testing.T) {
	enc := unitEnc(t, 2, 8)
	tr := BuildFromPoints(enc, 2, []point.Point{{0.5, 0.5}, {0.6, 0.6}, {0.9, 0.9}}, nil)
	e := NewEntry(enc, point.Point{0.01, 0.01})
	if got := tr.RemoveDominatedBy(e.G, e.P); got != 3 {
		t.Fatalf("removed %d, want 3", got)
	}
	if !tr.Empty() {
		t.Error("tree should be empty")
	}
}

func TestDominatesAllOfRegion(t *testing.T) {
	enc := unitEnc(t, 2, 8)
	tr := BuildFromPoints(enc, 4, []point.Point{{0.1, 0.1}}, nil)
	// Region well above the point.
	lo := NewEntry(enc, point.Point{0.5, 0.5})
	hi := NewEntry(enc, point.Point{0.6, 0.6})
	r := enc.RegionOf(lo.Z, hi.Z)
	if !tr.DominatesAllOfRegion(r) {
		t.Error("point should dominate the whole region")
	}
	// Region containing the point itself can never be fully dominated.
	r2 := enc.RegionOf(NewEntry(enc, point.Point{0, 0}).Z, hi.Z)
	if tr.DominatesAllOfRegion(r2) {
		t.Error("region containing the dominator cannot be fully dominated")
	}
}

func TestSkylineMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 80; iter++ {
		d := 1 + rng.Intn(6)
		bits := []int{4, 8, 16}[rng.Intn(3)]
		n := rng.Intn(300)
		domain := 0
		if iter%3 == 0 {
			domain = 2 + rng.Intn(8) // tie-heavy
		}
		enc := unitEnc(t, d, bits)
		pts := randPts(rng, n, d, domain)
		want := seq.BruteForce(pts)
		got := ZSearch(enc, 4+rng.Intn(12), pts, nil)
		sameSet(t, got, want, "zsearch")
	}
}

func TestSkylineAntiChain(t *testing.T) {
	enc := unitEnc(t, 2, 16)
	var pts []point.Point
	for i := 0; i < 64; i++ {
		pts = append(pts, point.Point{float64(i) / 64, float64(63-i) / 64})
	}
	got := ZSearch(enc, 8, pts, nil)
	if len(got) != 64 {
		t.Fatalf("anti-chain skyline = %d, want 64", len(got))
	}
}

func TestSkylineDuplicates(t *testing.T) {
	enc := unitEnc(t, 2, 8)
	pts := []point.Point{{0.3, 0.3}, {0.3, 0.3}, {0.7, 0.7}}
	got := ZSearch(enc, 4, pts, nil)
	if len(got) != 2 {
		t.Fatalf("duplicates: skyline = %v, want both copies of (0.3,0.3)", got)
	}
}

func TestSkylineTreeValidatesAndMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	enc := unitEnc(t, 4, 10)
	pts := randPts(rng, 400, 4, 0)
	tr := BuildFromPoints(enc, 8, pts, nil)
	skyTree := tr.SkylineTree()
	if err := skyTree.Validate(); err != nil {
		t.Fatal(err)
	}
	sameSet(t, skyTree.Points(), seq.BruteForce(pts), "skyline tree")
}

func TestMergeTwoSkylines(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 60; iter++ {
		d := 1 + rng.Intn(5)
		enc := unitEnc(t, d, 8)
		a := randPts(rng, 100+rng.Intn(100), d, 0)
		b := randPts(rng, 100+rng.Intn(100), d, 0)
		skyA := BuildFromPoints(enc, 8, seq.BruteForce(a), nil)
		skyB := BuildFromPoints(enc, 8, seq.BruteForce(b), nil)
		merged := Merge(skyA, skyB)
		if err := merged.Validate(); err != nil {
			t.Fatal(err)
		}
		want := seq.BruteForce(append(append([]point.Point{}, a...), b...))
		sameSet(t, merged.Points(), want, "merge")
	}
}

func TestMergeWithEmpty(t *testing.T) {
	enc := unitEnc(t, 2, 8)
	empty := New(enc, 4, nil)
	sky := BuildFromPoints(enc, 4, []point.Point{{0.1, 0.9}, {0.9, 0.1}}, nil)
	if got := Merge(empty, sky); got.Len() != 2 {
		t.Errorf("merge(empty, sky) len = %d", got.Len())
	}
	if got := Merge(sky, empty); got.Len() != 2 {
		t.Errorf("merge(sky, empty) len = %d", got.Len())
	}
}

func TestMergeDisjointIncomparableSets(t *testing.T) {
	// Two anti-chain halves that are mutually incomparable: stash path.
	enc := unitEnc(t, 2, 10)
	var a, b []point.Point
	for i := 0; i < 20; i++ {
		a = append(a, point.Point{float64(i) / 100, float64(40-i) / 100})
		b = append(b, point.Point{float64(60+i) / 100, float64(20-i) / 1000})
	}
	skyA := BuildFromPoints(enc, 4, seq.BruteForce(a), nil)
	skyB := BuildFromPoints(enc, 4, seq.BruteForce(b), nil)
	merged := Merge(skyA, skyB)
	want := seq.BruteForce(append(append([]point.Point{}, a...), b...))
	sameSet(t, merged.Points(), want, "disjoint merge")
}

func TestMergeAllManyGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 20; iter++ {
		d := 2 + rng.Intn(4)
		enc := unitEnc(t, d, 8)
		var all []point.Point
		var trees []*Tree
		groups := 2 + rng.Intn(6)
		for g := 0; g < groups; g++ {
			pts := randPts(rng, 50+rng.Intn(100), d, 0)
			all = append(all, pts...)
			trees = append(trees, BuildFromPoints(enc, 8, seq.BruteForce(pts), nil))
		}
		merged := MergeAll(enc, 8, trees, nil)
		sameSet(t, merged.Points(), seq.BruteForce(all), "merge-all")
	}
}

func TestTallyCountsRegionTests(t *testing.T) {
	tal := &metrics.Tally{}
	rng := rand.New(rand.NewSource(23))
	enc := unitEnc(t, 5, 10)
	ZSearch(enc, 8, randPts(rng, 500, 5, 0), tal)
	s := tal.Snapshot()
	if s.RegionTests == 0 || s.DominanceTests == 0 {
		t.Errorf("tally = %+v, want nonzero region and dominance tests", s)
	}
}

// Z-merge should do far fewer point dominance tests than recomputing
// the union skyline with SB when the sets are large and incomparable.
func TestMergeCheaperThanRecompute(t *testing.T) {
	enc := unitEnc(t, 2, 16)
	var a, b []point.Point
	for i := 0; i < 400; i++ {
		a = append(a, point.Point{float64(i) / 1000, float64(999-i) / 1000})
		b = append(b, point.Point{float64(500+i/2) / 1000, float64(400-i) / 1000})
	}
	talM := &metrics.Tally{}
	skyA := BuildFromPoints(enc, 16, seq.BruteForce(a), talM)
	skyB := BuildFromPoints(enc, 16, seq.BruteForce(b), talM)
	Merge(skyA, skyB)
	talS := &metrics.Tally{}
	seq.SB(append(append([]point.Point{}, a...), b...), talS)
	if talM.Snapshot().DominanceTests >= talS.Snapshot().DominanceTests {
		t.Errorf("Z-merge used %d point tests vs SB %d; expected fewer",
			talM.Snapshot().DominanceTests, talS.Snapshot().DominanceTests)
	}
}

func BenchmarkZSearch5k5d(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	enc := unitEnc(b, 5, 16)
	pts := randPts(rng, 5000, 5, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ZSearch(enc, 16, pts, nil)
	}
}

func BenchmarkMergeAnti(b *testing.B) {
	enc := unitEnc(b, 2, 16)
	var a2, b2 []point.Point
	for i := 0; i < 2000; i++ {
		a2 = append(a2, point.Point{float64(i) / 4000, float64(3999-i) / 4000})
		b2 = append(b2, point.Point{float64(2000+i) / 4000, float64(1999-i) / 4000})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skyA := BuildFromPoints(enc, 16, a2, nil)
		skyB := BuildFromPoints(enc, 16, b2, nil)
		Merge(skyA, skyB)
	}
}

func TestDominatorsOf(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for iter := 0; iter < 40; iter++ {
		d := 2 + rng.Intn(3)
		enc := unitEnc(t, d, 8)
		pts := randPts(rng, 200, d, 6)
		tr := BuildFromPoints(enc, 8, pts, nil)
		q := randPts(rng, 1, d, 6)[0]
		var want []point.Point
		for _, p := range pts {
			if point.Dominates(p, q) {
				want = append(want, p)
			}
		}
		e := NewEntry(enc, q)
		got := tr.DominatorsOf(e.G, e.P)
		sameSet(t, got, want, "dominators")
	}
}

func TestCountDominatedByMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for iter := 0; iter < 40; iter++ {
		d := 2 + rng.Intn(3)
		enc := unitEnc(t, d, 8)
		pts := randPts(rng, 200, d, 6)
		tr := BuildFromPoints(enc, 8, pts, nil)
		q := randPts(rng, 1, d, 6)[0]
		want := 0
		for _, p := range pts {
			if point.Dominates(q, p) {
				want++
			}
		}
		e := NewEntry(enc, q)
		if got := tr.CountDominatedBy(e.G, e.P); got != want {
			t.Fatalf("count = %d, want %d", got, want)
		}
	}
}
