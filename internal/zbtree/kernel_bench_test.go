package zbtree

import (
	"math/rand"
	"testing"

	"zskyline/internal/point"
	"zskyline/internal/zorder"
)

// kernelBenchInput builds the standard kernel workload: n anti-
// correlated points in d dims plus their bulk-encoded Z-address
// column — the shape the pipeline hands the reduce and merge kernels.
func kernelBenchInput(tb testing.TB, n, d int) (*zorder.Encoder, point.Block, zorder.ZCol) {
	rng := rand.New(rand.NewSource(97))
	blk := genBlock(rng, "anti", n, d)
	enc := unitEnc(tb, d, 16)
	return enc, blk, enc.EncodeBlock(zorder.ZCol{}, blk)
}

// The columnar ZS path must allocate at least 5x less than the legacy
// pointer-per-entry path on identical data — the kernel refactor's
// headline number. The column is precomputed on the block side (the
// pipeline's encode-once contract); the legacy side encodes inside,
// as every pre-refactor query did.
func TestKernelAllocReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is slow")
	}
	const n, d = 20000, 8
	enc, blk, zc := kernelBenchInput(t, n, d)
	pts := blk.Points()

	perSlice := testing.AllocsPerRun(3, func() {
		_ = BuildFromPoints(enc, 0, pts, nil).Skyline()
	})
	perBlock := testing.AllocsPerRun(3, func() {
		_, _ = ZSearchGroup(enc, 0, blk, zc, nil)
	})
	if perBlock <= 0 {
		t.Fatalf("implausible block allocs %v", perBlock)
	}
	ratio := perSlice / perBlock
	t.Logf("ZS allocs at %dx%dd: slice %.0f, block %.0f, ratio %.1fx", n, d, perSlice, perBlock, ratio)
	if ratio < 5 {
		t.Errorf("block ZS path saves only %.1fx allocations, want >= 5x", ratio)
	}
}

func BenchmarkLocalSkylineSlice(b *testing.B) {
	enc, blk, _ := kernelBenchInput(b, 20000, 8)
	pts := blk.Points()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildFromPoints(enc, 0, pts, nil).Skyline()
	}
}

func BenchmarkLocalSkylineBlock(b *testing.B) {
	enc, blk, zc := kernelBenchInput(b, 20000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ZSearchGroup(enc, 0, blk, zc, nil)
	}
}

// The merge benchmarks Z-merge two candidate halves, rebuilding the
// trees every iteration because Merge consumes them — exactly what a
// phase-3 task pays per query.
func BenchmarkZMergeSlice(b *testing.B) {
	enc, blk, _ := kernelBenchInput(b, 20000, 8)
	pts := blk.Points()
	half := len(pts) / 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ta := BuildFromPoints(enc, 0, pts[:half], nil).SkylineTree()
		tb := BuildFromPoints(enc, 0, pts[half:], nil).SkylineTree()
		_ = Merge(ta, tb)
	}
}

func BenchmarkZMergeBlock(b *testing.B) {
	enc, blk, zc := kernelBenchInput(b, 20000, 8)
	st := NewStoreWithZCol(enc, blk, zc)
	half := st.Len() / 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := make([]int32, half)
		hi := make([]int32, st.Len()-half)
		for r := range lo {
			lo[r] = int32(r)
		}
		for r := range hi {
			hi[r] = int32(half + r)
		}
		skyA := BuildRows(st, 0, BuildRows(st, 0, lo, nil).SkylineRows(), nil)
		skyB := BuildRows(st, 0, BuildRows(st, 0, hi, nil).SkylineRows(), nil)
		_ = MergeBlock(skyA, skyB)
	}
}
