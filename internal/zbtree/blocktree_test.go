package zbtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"zskyline/internal/point"
	"zskyline/internal/seq"
	"zskyline/internal/zorder"
)

// genBlock produces n points of d dims under one of three correlation
// profiles — the standard skyline benchmark families.
func genBlock(rng *rand.Rand, kind string, n, d int) point.Block {
	bb := point.NewBlockBuilder(d, n)
	for i := 0; i < n; i++ {
		row := bb.Extend()
		switch kind {
		case "correlated":
			base := rng.Float64()
			for k := range row {
				row[k] = 0.8*base + 0.2*rng.Float64()
			}
		case "anti":
			sum := 0.5 + 0.5*rng.Float64()
			for k := range row {
				row[k] = sum * rng.Float64()
			}
		default: // independent
			for k := range row {
				row[k] = rng.Float64()
			}
		}
	}
	return bb.Build()
}

func sortedPoints(pts []point.Point) []point.Point {
	out := append([]point.Point(nil), pts...)
	point.SortLexicographic(out)
	return out
}

func samePointSet(t *testing.T, label string, got, want []point.Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
	}
	g, w := sortedPoints(got), sortedPoints(want)
	for i := range g {
		if !g[i].Equal(w[i]) {
			t.Fatalf("%s: point %d = %v, want %v", label, i, g[i], w[i])
		}
	}
}

// The block-native ZS path must agree point for point with the legacy
// slice kernel and the brute-force oracle across correlation profiles
// and dimensionalities (satellite: kernel equivalence).
func TestZSearchBlockMatchesLegacyAndBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, kind := range []string{"correlated", "independent", "anti"} {
		for _, d := range []int{2, 3, 5, 7, 10} {
			b := genBlock(rng, kind, 400, d)
			enc, err := zorder.NewUnitEncoder(d, 12)
			if err != nil {
				t.Fatal(err)
			}
			pts := b.Points()
			oracle := seq.BruteForce(pts)
			legacy := BuildFromPoints(enc, 8, pts, nil).Skyline()
			block := ZSearchBlock(enc, 8, b, nil)
			samePointSet(t, kind+"/legacy", legacy, oracle)
			samePointSet(t, kind+"/block", block.Points(), oracle)

			// Encode-once path: a pre-built column must give the same
			// answer and a consistent survivor column.
			zc := enc.EncodeBlock(zorder.ZCol{}, b)
			gBlk, gZC := ZSearchGroup(enc, 8, b, zc, nil)
			samePointSet(t, kind+"/group", gBlk.Points(), oracle)
			if gZC.Len() != gBlk.Len() {
				t.Fatalf("%s: survivor zcol %d rows, block %d", kind, gZC.Len(), gBlk.Len())
			}
			for i := 0; i < gBlk.Len(); i++ {
				if !zorder.Equal(gZC.At(i), enc.Encode(gBlk.Row(i))) {
					t.Fatalf("%s: survivor %d carries wrong z-address", kind, i)
				}
			}
		}
	}
}

// MergeBlock over a shared store must agree with legacy Merge and the
// brute-force skyline of the union.
func TestMergeBlockMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, kind := range []string{"correlated", "independent", "anti"} {
		for _, d := range []int{2, 4, 8} {
			enc, err := zorder.NewUnitEncoder(d, 10)
			if err != nil {
				t.Fatal(err)
			}
			a := genBlock(rng, kind, 300, d)
			b := genBlock(rng, kind, 250, d)
			skyA := seq.BruteForce(a.Points())
			skyB := seq.BruteForce(b.Points())
			want := Merge(BuildFromPoints(enc, 8, skyA, nil),
				BuildFromPoints(enc, 8, skyB, nil)).Points()

			// Shared store over the concatenation of both candidate sets.
			bb := point.NewBlockBuilder(d, len(skyA)+len(skyB))
			for _, p := range skyA {
				bb.Append(p)
			}
			for _, p := range skyB {
				bb.Append(p)
			}
			st := NewStore(enc, bb.Build())
			rowsA := make([]int32, len(skyA))
			for i := range rowsA {
				rowsA[i] = int32(i)
			}
			rowsB := make([]int32, len(skyB))
			for i := range rowsB {
				rowsB[i] = int32(len(skyA) + i)
			}
			ta := BuildRows(st, 8, rowsA, nil)
			tb := BuildRows(st, 8, rowsB, nil)
			merged := MergeBlock(ta, tb)
			got, _ := st.CompactRows(merged.Rows())
			samePointSet(t, kind+"/merge", got.Points(), want)
		}
	}
}

// BuildFromBlockZ must produce a legacy tree indistinguishable from
// BuildFromPoints over the same rows.
func TestBuildFromBlockZ(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	b := genBlock(rng, "independent", 200, 6)
	enc, err := zorder.NewUnitEncoder(6, 14)
	if err != nil {
		t.Fatal(err)
	}
	zc := enc.EncodeBlock(zorder.ZCol{}, b)
	tr := BuildFromBlockZ(enc, 8, b, zc, nil)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	want := BuildFromPoints(enc, 8, b.Points(), nil)
	samePointSet(t, "entries", tr.Points(), want.Points())
	samePointSet(t, "skyline", tr.Skyline(), want.Skyline())
}

// NewStoreWithZCol must reproduce NewStore's grid arena exactly: the
// decoded grids are a pure de-interleave of the shared addresses.
func TestStoreWithZColMatchesNewStore(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	b := genBlock(rng, "anti", 150, 5)
	enc, err := zorder.NewUnitEncoder(5, 11)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewStore(enc, b)
	reused := NewStoreWithZCol(enc, b, enc.EncodeBlock(zorder.ZCol{}, b))
	for i := int32(0); i < int32(b.Len()); i++ {
		if !zorder.Equal(fresh.Z(i), reused.Z(i)) {
			t.Fatalf("row %d: z mismatch", i)
		}
		fg, rg := fresh.Grid(i), reused.Grid(i)
		for k := range fg {
			if fg[k] != rg[k] {
				t.Fatalf("row %d dim %d: grid %d vs %d", i, k, fg[k], rg[k])
			}
		}
	}
}

// Quick property: block ZS equals brute force for arbitrary seeds
// (mirrors TestQuickSkylinePermutationInvariant's generator).
func TestQuickBlockSkylineMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		pts, enc := quickPoints(seed, 250, 6)
		want := seq.BruteForce(pts)
		got := ZSearchBlock(enc, 2+int(uint64(seed)%13), point.BlockOf(enc.Dims(), pts), nil)
		if got.Len() != len(want) {
			return false
		}
		g, w := sortedPoints(got.Points()), sortedPoints(want)
		for i := range g {
			if !g[i].Equal(w[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Quick property: folding MergeBlock over many candidate sets sharing
// one store equals the brute-force skyline of the union.
func TestQuickMergeBlockFoldMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		pts, enc := quickPoints(seed, 300, 5)
		if len(pts) == 0 {
			return true
		}
		b := point.BlockOf(enc.Dims(), pts)
		st := NewStore(enc, b)
		// Partition rows into up to 4 contiguous runs, skyline each, fold.
		r := rand.New(rand.NewSource(seed ^ 0x9e37))
		parts := 1 + r.Intn(4)
		acc := NewBlockTree(st, 8, nil)
		for i := 0; i < parts; i++ {
			lo, hi := i*len(pts)/parts, (i+1)*len(pts)/parts
			rows := make([]int32, 0, hi-lo)
			for j := lo; j < hi; j++ {
				rows = append(rows, int32(j))
			}
			part := BuildRows(st, 8, rows, nil)
			skyRows := part.SkylineRows()
			acc = MergeBlock(acc, BuildRows(st, 8, skyRows, nil))
		}
		got, _ := st.CompactRows(acc.Rows())
		want := seq.BruteForce(pts)
		if got.Len() != len(want) {
			return false
		}
		g, w := sortedPoints(got.Points()), sortedPoints(want)
		for i := range g {
			if !g[i].Equal(w[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Appending in Z-order must keep the accumulator equivalent to a bulk
// build over the same rows.
func TestBlockTreeAppendMatchesBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	b := genBlock(rng, "independent", 120, 4)
	enc, err := zorder.NewUnitEncoder(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(enc, b)
	bulk := BuildStore(st, 4, nil)
	inc := NewBlockTree(st, 4, nil)
	for _, row := range bulk.Rows() {
		inc.Append(row)
	}
	if inc.Len() != bulk.Len() {
		t.Fatalf("incremental %d rows, bulk %d", inc.Len(), bulk.Len())
	}
	bi, bu := inc.Rows(), bulk.Rows()
	for i := range bi {
		if st.zc.Compare(int(bi[i]), int(bu[i])) != 0 {
			t.Fatalf("row %d: incremental z-order diverges from bulk", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Append did not panic")
		}
	}()
	inc.Append(bulk.Rows()[0])
}
