package zbtree

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"zskyline/internal/point"
	"zskyline/internal/seq"
)

func TestSkylineProgressiveMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 40; iter++ {
		d := 2 + rng.Intn(4)
		enc := unitEnc(t, d, 6) // coarse grid: force same-address ties
		pts := randPts(rng, 250, d, 5)
		tr := BuildFromPoints(enc, 8, pts, nil)
		var got []point.Point
		for p := range tr.SkylineProgressive(context.Background()) {
			got = append(got, p)
		}
		sameSet(t, got, seq.BruteForce(pts), "progressive")
	}
}

func TestSkylineProgressiveCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	enc := unitEnc(t, 2, 16)
	// Anti-chain: everything is skyline, so the stream is long.
	var pts []point.Point
	for i := 0; i < 5000; i++ {
		pts = append(pts, point.Point{float64(i) / 5000, float64(4999-i) / 5000})
	}
	_ = rng
	tr := BuildFromPoints(enc, 8, pts, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := tr.SkylineProgressive(ctx)
	got := 0
	for range ch {
		got++
		if got == 10 {
			cancel()
			break
		}
	}
	// Channel must close promptly after cancellation.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, open := <-ch:
			if !open {
				return
			}
		case <-deadline:
			t.Fatal("progressive stream did not close after cancel")
		}
	}
}

func TestSkylineProgressiveEmpty(t *testing.T) {
	enc := unitEnc(t, 2, 8)
	tr := New(enc, 4, nil)
	count := 0
	for range tr.SkylineProgressive(context.Background()) {
		count++
	}
	if count != 0 {
		t.Errorf("empty tree streamed %d points", count)
	}
}

func TestRangeQueryMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 40; iter++ {
		d := 2 + rng.Intn(3)
		enc := unitEnc(t, d, 8)
		pts := randPts(rng, 300, d, 10)
		tr := BuildFromPoints(enc, 8, pts, nil)
		lo := make(point.Point, d)
		hi := make(point.Point, d)
		for k := 0; k < d; k++ {
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			lo[k], hi[k] = a, b
		}
		var want []point.Point
		for _, p := range pts {
			if inBox(p, lo, hi) {
				want = append(want, p)
			}
		}
		sameSet(t, tr.RangeQuery(lo, hi), want, "range")
	}
}

func TestSkylineWithinMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for iter := 0; iter < 30; iter++ {
		d := 2 + rng.Intn(3)
		enc := unitEnc(t, d, 8)
		pts := randPts(rng, 300, d, 0)
		tr := BuildFromPoints(enc, 8, pts, nil)
		lo := make(point.Point, d)
		hi := make(point.Point, d)
		for k := 0; k < d; k++ {
			lo[k], hi[k] = 0.2, 0.9
		}
		var inside []point.Point
		for _, p := range pts {
			if inBox(p, lo, hi) {
				inside = append(inside, p)
			}
		}
		sameSet(t, tr.SkylineWithin(lo, hi), seq.BruteForce(inside), "constrained")
	}
}

// A point dominated globally can re-enter the constrained skyline when
// its dominator is outside the box.
func TestConstrainedResurrection(t *testing.T) {
	enc := unitEnc(t, 2, 10)
	pts := []point.Point{{0.05, 0.05}, {0.5, 0.5}}
	tr := BuildFromPoints(enc, 4, pts, nil)
	if n := len(tr.Skyline()); n != 1 {
		t.Fatalf("global skyline = %d", n)
	}
	got := tr.SkylineWithin(point.Point{0.3, 0.3}, point.Point{1, 1})
	if len(got) != 1 || !got[0].Equal(point.Point{0.5, 0.5}) {
		t.Fatalf("constrained skyline = %v", got)
	}
}
