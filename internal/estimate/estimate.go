// Package estimate predicts skyline cardinality. The paper's grouping
// algorithms need |S| to set their per-group ceilings but "the number
// of skyline points |S| cannot be accurately estimated" (§4.3), so
// they substitute the sample skyline size. This package provides that
// substitution as a first-class, testable estimator plus the classic
// analytic model it is calibrated against:
//
//   - Independent-dimension model (Bentley et al. / Godfrey): for n
//     points with i.i.d. coordinates, E|S| follows the recurrence
//     H(n,1)=1, H(n,d) = H(n,d-1) + H(n-1,d)·(n-1)/n, asymptotically
//     (ln n)^(d-1)/(d-1)!.
//   - Sample scaling: observe the skyline of a k-sample and scale it
//     by the model's growth ratio from k to n.
package estimate

import (
	"fmt"
	"math"

	"zskyline/internal/point"
	"zskyline/internal/sample"
	"zskyline/internal/seq"
)

// Independent returns the asymptotic expected skyline size of n
// independent uniform points in d dimensions: (ln n)^(d-1) / (d-1)!.
func Independent(n, d int) float64 {
	if n <= 0 || d <= 0 {
		return 0
	}
	if n == 1 {
		return 1
	}
	if d == 1 {
		return 1
	}
	ln := math.Log(float64(n))
	v := 1.0
	for i := 1; i < d; i++ {
		v *= ln / float64(i)
	}
	if v < 1 {
		v = 1
	}
	if v > float64(n) {
		v = float64(n)
	}
	return v
}

// GrowthRatio predicts how much the skyline grows when an independent
// dataset grows from k to n points: Independent(n,d)/Independent(k,d).
func GrowthRatio(k, n, d int) float64 {
	ek := Independent(k, d)
	if ek == 0 {
		return 1
	}
	return Independent(n, d) / ek
}

// Estimate is the result of a sample-based estimation.
type Estimate struct {
	// SampleSize and SampleSkyline are the observed values.
	SampleSize    int
	SampleSkyline int
	// Scaled extrapolates the sample skyline with the independent-model
	// growth ratio — the estimator the pipeline's ceilings want.
	Scaled float64
	// Naive is the proportional extrapolation n*s/k, shown because it
	// wildly overestimates (skylines grow polylogarithmically, not
	// linearly); kept for the ablation comparison.
	Naive float64
}

// FromSample estimates the skyline size of pts by computing the exact
// skyline of a ratio-sample and scaling it with the independence
// model. The estimate is deterministic for a given seed.
func FromSample(pts []point.Point, ratio float64, seed int64) (*Estimate, error) {
	if len(pts) == 0 {
		return &Estimate{}, nil
	}
	smp, err := sample.Ratio(pts, ratio, seed)
	if err != nil {
		return nil, err
	}
	if len(smp) == 0 {
		return nil, fmt.Errorf("estimate: empty sample")
	}
	d := len(pts[0])
	sky := seq.SB(smp, nil)
	e := &Estimate{
		SampleSize:    len(smp),
		SampleSkyline: len(sky),
		Naive:         float64(len(sky)) * float64(len(pts)) / float64(len(smp)),
	}
	e.Scaled = float64(len(sky)) * GrowthRatio(len(smp), len(pts), d)
	if e.Scaled > float64(len(pts)) {
		e.Scaled = float64(len(pts))
	}
	return e, nil
}
