package estimate

import (
	"math"
	"testing"

	"zskyline/internal/gen"
	"zskyline/internal/seq"
)

func TestIndependentModelBasics(t *testing.T) {
	if got := Independent(0, 3); got != 0 {
		t.Errorf("n=0: %v", got)
	}
	if got := Independent(1, 3); got != 1 {
		t.Errorf("n=1: %v", got)
	}
	if got := Independent(1000, 1); got != 1 {
		t.Errorf("d=1: %v", got)
	}
	// Monotone in both n and d (within plausible ranges).
	if Independent(10000, 4) <= Independent(1000, 4) {
		t.Error("not monotone in n")
	}
	if Independent(10000, 5) <= Independent(10000, 3) {
		t.Error("not monotone in d")
	}
	// Clamped to n.
	if got := Independent(10, 10); got > 10 {
		t.Errorf("exceeds n: %v", got)
	}
	// Closed form check: d=3, n=e^6 -> 6^2/2! = 18.
	n := int(math.Round(math.Exp(6)))
	if got := Independent(n, 3); math.Abs(got-18) > 0.2 {
		t.Errorf("closed form: %v, want ~18", got)
	}
}

// The analytic model should be in the right ballpark for actual
// independent data (within 2.5x across sizes and dims).
func TestModelTracksReality(t *testing.T) {
	for _, tc := range []struct{ n, d int }{
		{2000, 2}, {5000, 3}, {10000, 4}, {10000, 5},
	} {
		ds := gen.Synthetic(gen.Independent, tc.n, tc.d, 7)
		truth := float64(len(seq.SB(ds.Points, nil)))
		model := Independent(tc.n, tc.d)
		ratio := model / truth
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("n=%d d=%d: model %.0f vs truth %.0f (ratio %.2f)",
				tc.n, tc.d, model, truth, ratio)
		}
	}
}

func TestFromSampleBeatsNaive(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 40000, 4, 21)
	truth := float64(len(seq.SB(ds.Points, nil)))
	est, err := FromSample(ds.Points, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	scaledErr := math.Abs(est.Scaled - truth)
	naiveErr := math.Abs(est.Naive - truth)
	if scaledErr >= naiveErr {
		t.Errorf("scaled %.0f (err %.0f) should beat naive %.0f (err %.0f); truth %.0f",
			est.Scaled, scaledErr, est.Naive, naiveErr, truth)
	}
	// Within 3x of truth.
	if est.Scaled < truth/3 || est.Scaled > truth*3 {
		t.Errorf("scaled %.0f outside 3x of truth %.0f", est.Scaled, truth)
	}
}

func TestFromSampleEdges(t *testing.T) {
	est, err := FromSample(nil, 0.5, 1)
	if err != nil || est.SampleSize != 0 {
		t.Errorf("empty: %+v %v", est, err)
	}
	ds := gen.Synthetic(gen.Independent, 100, 3, 1)
	if _, err := FromSample(ds.Points, 0, 1); err == nil {
		t.Error("ratio 0 accepted")
	}
	// Full-ratio sample: scaled equals the exact skyline.
	est, err = FromSample(ds.Points, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if int(est.Scaled) != est.SampleSkyline {
		t.Errorf("full sample: scaled %.0f != sample skyline %d", est.Scaled, est.SampleSkyline)
	}
}

func TestGrowthRatio(t *testing.T) {
	if r := GrowthRatio(1000, 1000, 4); math.Abs(r-1) > 1e-12 {
		t.Errorf("k=n ratio = %v", r)
	}
	if r := GrowthRatio(1000, 100000, 4); r <= 1 {
		t.Errorf("growth ratio should exceed 1: %v", r)
	}
}
