package codec

import (
	"bytes"
	"testing"

	"zskyline/internal/point"
)

// FuzzReadBinary hardens the binary parser: arbitrary input must never
// panic, and valid-looking prefixes must fail cleanly.
func FuzzReadBinary(f *testing.F) {
	// Seed with a real encoding and mutations of it.
	ds := mustTinyDataset()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err == nil {
			// Anything accepted must re-encode cleanly.
			var out bytes.Buffer
			if err := WriteBinary(&out, got); err != nil {
				t.Fatalf("accepted dataset fails to re-encode: %v", err)
			}
		}
	})
}

// FuzzReadCSV hardens the CSV parser the same way.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("# comment\n\n1\n")
	f.Add("a,b\n1,2\n")
	f.Fuzz(func(t *testing.T, s string) {
		ds, err := ReadCSV(bytes.NewReader([]byte(s)))
		if err == nil && ds.Len() > 0 && len(ds.Points[0]) != ds.Dims {
			t.Fatal("inconsistent dims accepted")
		}
		_, _, _ = ReadNamedCSV(bytes.NewReader([]byte(s)))
	})
}

func mustTinyDataset() *point.Dataset {
	return point.MustDataset(2, []point.Point{{1, 2}, {3, 4}})
}

// FuzzBlockRoundTrip hardens the length-prefixed block frame decoder:
// arbitrary bytes must never panic, truncated frames and dims/payload
// mismatches must fail cleanly, and anything accepted must round-trip.
func FuzzBlockRoundTrip(f *testing.F) {
	// Seed with a valid frame plus the corpus of classic corruptions.
	var buf bytes.Buffer
	b := point.BlockOf(3, []point.Point{{1, 2, 3}, {4, 5, 6}})
	if err := WriteBlock(&buf, b); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:3])                                   // truncated length prefix
	f.Add(valid[:7])                                   // truncated frame header
	f.Add(valid[:len(valid)-5])                        // truncated payload
	f.Add(append(append([]byte(nil), valid...), 0xAA)) // trailing garbage
	// Dims mismatch: header claims 3 dims but the payload holds a
	// non-multiple number of coordinates.
	mismatch := append([]byte(nil), valid...)
	mismatch[0] -= 8 // shrink the length prefix by one float64
	f.Add(mismatch[:len(mismatch)-8])
	// Huge declared dims with no payload.
	f.Add([]byte{8, 0, 0, 0, 0xff, 0xff, 0x0f, 0x00, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		got, err := ReadBlock(r)
		if err != nil {
			return
		}
		if got.Dims > 0 && len(got.Data)%got.Dims != 0 {
			t.Fatalf("accepted ragged block: %d coords, %d dims", len(got.Data), got.Dims)
		}
		var out bytes.Buffer
		if err := WriteBlock(&out, got); err != nil {
			t.Fatalf("accepted block fails to re-encode: %v", err)
		}
		back, err := ReadBlock(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded block fails to decode: %v", err)
		}
		if back.Len() != got.Len() || back.Dims != got.Dims {
			t.Fatalf("round trip drifted: %dx%d -> %dx%d", got.Len(), got.Dims, back.Len(), back.Dims)
		}
	})
}
