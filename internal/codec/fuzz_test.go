package codec

import (
	"bytes"
	"testing"

	"zskyline/internal/point"
)

// FuzzReadBinary hardens the binary parser: arbitrary input must never
// panic, and valid-looking prefixes must fail cleanly.
func FuzzReadBinary(f *testing.F) {
	// Seed with a real encoding and mutations of it.
	ds := mustTinyDataset()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err == nil {
			// Anything accepted must re-encode cleanly.
			var out bytes.Buffer
			if err := WriteBinary(&out, got); err != nil {
				t.Fatalf("accepted dataset fails to re-encode: %v", err)
			}
		}
	})
}

// FuzzReadCSV hardens the CSV parser the same way.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("# comment\n\n1\n")
	f.Add("a,b\n1,2\n")
	f.Fuzz(func(t *testing.T, s string) {
		ds, err := ReadCSV(bytes.NewReader([]byte(s)))
		if err == nil && ds.Len() > 0 && len(ds.Points[0]) != ds.Dims {
			t.Fatal("inconsistent dims accepted")
		}
		_, _, _ = ReadNamedCSV(bytes.NewReader([]byte(s)))
	})
}

func mustTinyDataset() *point.Dataset {
	return point.MustDataset(2, []point.Point{{1, 2}, {3, 4}})
}
