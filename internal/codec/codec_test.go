package codec

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"zskyline/internal/gen"
	"zskyline/internal/point"
)

func TestBinaryRoundtrip(t *testing.T) {
	for _, n := range []int{0, 1, 17, 1000} {
		ds := gen.Synthetic(gen.AntiCorrelated, n, 5, 7)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, ds); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Len() != n || got.Dims != 5 {
			t.Fatalf("n=%d: got %d x %d", n, got.Len(), got.Dims)
		}
		for i := range got.Points {
			if !got.Points[i].Equal(ds.Points[i]) {
				t.Fatalf("point %d mismatch", i)
			}
		}
	}
}

func TestBinaryPreservesExtremeValues(t *testing.T) {
	ds := point.MustDataset(2, []point.Point{
		{0, -0.0},
		{math.MaxFloat64, math.SmallestNonzeroFloat64},
		{-123.456e-30, 1e300},
	})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Points {
		for k := range got.Points[i] {
			if math.Float64bits(got.Points[i][k]) != math.Float64bits(ds.Points[i][k]) {
				t.Fatalf("bit-level mismatch at %d/%d", i, k)
			}
		}
	}
}

func TestBinaryCorruptionDetected(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 100, 3, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip a payload byte.
	corrupted := append([]byte(nil), raw...)
	corrupted[30] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(corrupted)); err == nil {
		t.Error("corruption not detected")
	}
	// Truncate.
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-10])); err == nil {
		t.Error("truncation not detected")
	}
	// Bad magic.
	bad := append([]byte("NOPE"), raw[4:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic not detected")
	}
	// Bad version.
	badv := append([]byte(nil), raw...)
	badv[4] = 0xff
	if _, err := ReadBinary(bytes.NewReader(badv)); err == nil {
		t.Error("bad version not detected")
	}
}

func TestWriteBinaryValidation(t *testing.T) {
	if err := WriteBinary(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestCSVRoundtrip(t *testing.T) {
	ds := gen.Synthetic(gen.Correlated, 200, 4, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 200 || got.Dims != 4 {
		t.Fatalf("got %d x %d", got.Len(), got.Dims)
	}
	for i := range got.Points {
		if !got.Points[i].Equal(ds.Points[i]) {
			t.Fatalf("point %d mismatch after CSV roundtrip", i)
		}
	}
}

func TestCSVCommentsAndBlanks(t *testing.T) {
	in := "# header comment\n1,2\n\n  \n3,4\n# trailing\n"
	ds, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 || ds.Dims != 2 {
		t.Fatalf("got %d x %d", ds.Len(), ds.Dims)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,abc\n")); err == nil {
		t.Error("non-numeric accepted")
	}
}

// Property: binary roundtrip preserves arbitrary finite float bit
// patterns exactly.
func TestQuickBinaryRoundtrip(t *testing.T) {
	f := func(rows [][3]float64) bool {
		pts := make([]point.Point, 0, len(rows))
		for _, r := range rows {
			p := point.Point{r[0], r[1], r[2]}
			ok := true
			for _, v := range p {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					ok = false
				}
			}
			if !ok {
				continue
			}
			pts = append(pts, p)
		}
		ds := point.Dataset{Dims: 3, Points: pts}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, &ds); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if got.Len() != len(pts) {
			return false
		}
		for i := range pts {
			for k := range pts[i] {
				if math.Float64bits(got.Points[i][k]) != math.Float64bits(pts[i][k]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSV roundtrip preserves values (full precision format).
func TestQuickCSVRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		d := 1 + r.Intn(6)
		pts := make([]point.Point, n)
		for i := range pts {
			p := make(point.Point, d)
			for k := range p {
				p[k] = (r.Float64() - 0.5) * math.Pow(10, float64(r.Intn(20)-10))
			}
			pts[i] = p
		}
		ds := point.Dataset{Dims: d, Points: pts}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, &ds); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil || got.Len() != n {
			return false
		}
		for i := range pts {
			if !got.Points[i].Equal(pts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadNamedCSVWithHeader(t *testing.T) {
	in := "price,rating\n10,4.5\n20,3\n"
	attrs, rows, err := ReadNamedCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 2 || attrs[0] != "price" || attrs[1] != "rating" {
		t.Errorf("attrs = %v", attrs)
	}
	if len(rows) != 2 || rows[0][0] != 10 || rows[1][1] != 3 {
		t.Errorf("rows = %v", rows)
	}
}

func TestReadNamedCSVWithoutHeader(t *testing.T) {
	attrs, rows, err := ReadNamedCSV(strings.NewReader("1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if attrs[0] != "c0" || attrs[1] != "c1" || len(rows) != 2 {
		t.Errorf("attrs=%v rows=%v", attrs, rows)
	}
}

func TestReadNamedCSVErrors(t *testing.T) {
	if _, _, err := ReadNamedCSV(strings.NewReader("")); err == nil {
		t.Error("empty accepted")
	}
	if _, _, err := ReadNamedCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged accepted")
	}
	if _, _, err := ReadNamedCSV(strings.NewReader("a,b\n1,zzz\n")); err == nil {
		t.Error("non-numeric data accepted")
	}
	// Header only, no rows: attrs come back but zero rows is fine.
	attrs, rows, err := ReadNamedCSV(strings.NewReader("a,b\n"))
	if err != nil || len(attrs) != 2 || len(rows) != 0 {
		t.Errorf("header-only: %v %v %v", attrs, rows, err)
	}
}

// NextBlock must yield exactly the same points as the per-point Next
// path, verify the CRC at EOF, and feed the Source adapter.
func TestBinaryReaderNextBlock(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 257, 3, 21)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	br, err := NewBinaryReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	for {
		b, err := br.NextBlock(100)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Dims != 3 {
			t.Fatalf("block dims = %d", b.Dims)
		}
		for i := 0; i < b.Len(); i++ {
			if !b.Row(i).Equal(ds.Points[rows+i]) {
				t.Fatalf("row %d drifted", rows+i)
			}
		}
		rows += b.Len()
	}
	if rows != ds.Len() {
		t.Fatalf("streamed %d rows, want %d", rows, ds.Len())
	}

	// Corrupt payload: the CRC check at EOF must catch it.
	bad := append([]byte(nil), raw...)
	bad[20] ^= 0xff
	br, err = NewBinaryReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err = br.NextBlock(64); err != nil {
			break
		}
	}
	if err == io.EOF {
		t.Error("corrupted stream passed the checksum")
	}

	// Source adapter drains through plan-agnostic point.ReadAll.
	br, err = NewBinaryReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	all, err := point.ReadAll(br.Source())
	if err != nil || all.Len() != ds.Len() {
		t.Fatalf("Source ReadAll = %dx%d, %v", all.Len(), all.Dims, err)
	}
}

// WriteBlock/ReadBlock must carry consecutive frames of varying shape
// on one stream and end with a clean io.EOF.
func TestBlockFrameStream(t *testing.T) {
	blocks := []point.Block{
		point.BlockOf(2, []point.Point{{1, 2}, {3, 4}}),
		point.BlockOf(5, nil),
		point.BlockOf(1, []point.Point{{-0.5}}),
	}
	var buf bytes.Buffer
	for _, b := range blocks {
		if err := WriteBlock(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range blocks {
		got, err := ReadBlock(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Len() != want.Len() || (want.Len() > 0 && got.Dims != want.Dims) {
			t.Fatalf("frame %d: %dx%d, want %dx%d", i, got.Len(), got.Dims, want.Len(), want.Dims)
		}
		for k := range want.Data {
			if got.Data[k] != want.Data[k] {
				t.Fatalf("frame %d coord %d drifted", i, k)
			}
		}
	}
	if _, err := ReadBlock(r); err != io.EOF {
		t.Fatalf("stream end = %v, want io.EOF", err)
	}
	// A truncated tail frame must not be io.EOF.
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	var err error
	for err == nil {
		_, err = ReadBlock(trunc)
	}
	if err == io.EOF {
		t.Error("truncated tail frame reported clean EOF")
	}
}
