package codec

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"zskyline/internal/gen"
	"zskyline/internal/point"
)

func TestBinaryRoundtrip(t *testing.T) {
	for _, n := range []int{0, 1, 17, 1000} {
		ds := gen.Synthetic(gen.AntiCorrelated, n, 5, 7)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, ds); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Len() != n || got.Dims != 5 {
			t.Fatalf("n=%d: got %d x %d", n, got.Len(), got.Dims)
		}
		for i := range got.Points {
			if !got.Points[i].Equal(ds.Points[i]) {
				t.Fatalf("point %d mismatch", i)
			}
		}
	}
}

func TestBinaryPreservesExtremeValues(t *testing.T) {
	ds := point.MustDataset(2, []point.Point{
		{0, -0.0},
		{math.MaxFloat64, math.SmallestNonzeroFloat64},
		{-123.456e-30, 1e300},
	})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Points {
		for k := range got.Points[i] {
			if math.Float64bits(got.Points[i][k]) != math.Float64bits(ds.Points[i][k]) {
				t.Fatalf("bit-level mismatch at %d/%d", i, k)
			}
		}
	}
}

func TestBinaryCorruptionDetected(t *testing.T) {
	ds := gen.Synthetic(gen.Independent, 100, 3, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip a payload byte.
	corrupted := append([]byte(nil), raw...)
	corrupted[30] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(corrupted)); err == nil {
		t.Error("corruption not detected")
	}
	// Truncate.
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-10])); err == nil {
		t.Error("truncation not detected")
	}
	// Bad magic.
	bad := append([]byte("NOPE"), raw[4:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic not detected")
	}
	// Bad version.
	badv := append([]byte(nil), raw...)
	badv[4] = 0xff
	if _, err := ReadBinary(bytes.NewReader(badv)); err == nil {
		t.Error("bad version not detected")
	}
}

func TestWriteBinaryValidation(t *testing.T) {
	if err := WriteBinary(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestCSVRoundtrip(t *testing.T) {
	ds := gen.Synthetic(gen.Correlated, 200, 4, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 200 || got.Dims != 4 {
		t.Fatalf("got %d x %d", got.Len(), got.Dims)
	}
	for i := range got.Points {
		if !got.Points[i].Equal(ds.Points[i]) {
			t.Fatalf("point %d mismatch after CSV roundtrip", i)
		}
	}
}

func TestCSVCommentsAndBlanks(t *testing.T) {
	in := "# header comment\n1,2\n\n  \n3,4\n# trailing\n"
	ds, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 || ds.Dims != 2 {
		t.Fatalf("got %d x %d", ds.Len(), ds.Dims)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,abc\n")); err == nil {
		t.Error("non-numeric accepted")
	}
}

// Property: binary roundtrip preserves arbitrary finite float bit
// patterns exactly.
func TestQuickBinaryRoundtrip(t *testing.T) {
	f := func(rows [][3]float64) bool {
		pts := make([]point.Point, 0, len(rows))
		for _, r := range rows {
			p := point.Point{r[0], r[1], r[2]}
			ok := true
			for _, v := range p {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					ok = false
				}
			}
			if !ok {
				continue
			}
			pts = append(pts, p)
		}
		ds := point.Dataset{Dims: 3, Points: pts}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, &ds); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if got.Len() != len(pts) {
			return false
		}
		for i := range pts {
			for k := range pts[i] {
				if math.Float64bits(got.Points[i][k]) != math.Float64bits(pts[i][k]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSV roundtrip preserves values (full precision format).
func TestQuickCSVRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		d := 1 + r.Intn(6)
		pts := make([]point.Point, n)
		for i := range pts {
			p := make(point.Point, d)
			for k := range p {
				p[k] = (r.Float64() - 0.5) * math.Pow(10, float64(r.Intn(20)-10))
			}
			pts[i] = p
		}
		ds := point.Dataset{Dims: d, Points: pts}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, &ds); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil || got.Len() != n {
			return false
		}
		for i := range pts {
			if !got.Points[i].Equal(pts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadNamedCSVWithHeader(t *testing.T) {
	in := "price,rating\n10,4.5\n20,3\n"
	attrs, rows, err := ReadNamedCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 2 || attrs[0] != "price" || attrs[1] != "rating" {
		t.Errorf("attrs = %v", attrs)
	}
	if len(rows) != 2 || rows[0][0] != 10 || rows[1][1] != 3 {
		t.Errorf("rows = %v", rows)
	}
}

func TestReadNamedCSVWithoutHeader(t *testing.T) {
	attrs, rows, err := ReadNamedCSV(strings.NewReader("1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if attrs[0] != "c0" || attrs[1] != "c1" || len(rows) != 2 {
		t.Errorf("attrs=%v rows=%v", attrs, rows)
	}
}

func TestReadNamedCSVErrors(t *testing.T) {
	if _, _, err := ReadNamedCSV(strings.NewReader("")); err == nil {
		t.Error("empty accepted")
	}
	if _, _, err := ReadNamedCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged accepted")
	}
	if _, _, err := ReadNamedCSV(strings.NewReader("a,b\n1,zzz\n")); err == nil {
		t.Error("non-numeric data accepted")
	}
	// Header only, no rows: attrs come back but zero rows is fine.
	attrs, rows, err := ReadNamedCSV(strings.NewReader("a,b\n"))
	if err != nil || len(attrs) != 2 || len(rows) != 0 {
		t.Errorf("header-only: %v %v %v", attrs, rows, err)
	}
}
