// Package codec reads and writes datasets. Two formats:
//
//   - CSV: one point per line, comma-separated coordinates; blank
//     lines and '#' comments ignored. The interchange format of the
//     skygen/skyline CLIs.
//   - ZSKY binary: a compact self-describing format (magic, version,
//     dims, count, little-endian float64 payload, CRC-32 of the
//     payload) for large benchmark datasets where CSV parsing would
//     dominate load time. Truncation and corruption are detected.
package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"strconv"
	"strings"

	"zskyline/internal/point"
)

// Magic identifies the binary format.
const Magic = "ZSKY"

// Version is the current binary format version.
const Version uint16 = 1

// WriteBinary serializes ds in ZSKY format.
func WriteBinary(w io.Writer, ds *point.Dataset) error {
	if ds == nil || ds.Dims <= 0 {
		return fmt.Errorf("codec: nil or dimensionless dataset")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	hdr := make([]byte, 14)
	binary.LittleEndian.PutUint16(hdr[0:2], Version)
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(ds.Dims))
	binary.LittleEndian.PutUint64(hdr[6:14], uint64(ds.Len()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	buf := make([]byte, 8)
	for _, p := range ds.Points {
		for _, v := range p {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
			crc.Write(buf)
		}
	}
	binary.LittleEndian.PutUint32(buf[:4], crc.Sum32())
	if _, err := bw.Write(buf[:4]); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary parses a ZSKY stream, validating magic, version, payload
// length and checksum.
func ReadBinary(r io.Reader) (*point.Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("codec: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("codec: bad magic %q", magic)
	}
	hdr := make([]byte, 14)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("codec: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:2]); v != Version {
		return nil, fmt.Errorf("codec: unsupported version %d", v)
	}
	dims := int(binary.LittleEndian.Uint32(hdr[2:6]))
	count := binary.LittleEndian.Uint64(hdr[6:14])
	if dims <= 0 || dims > 1<<20 {
		return nil, fmt.Errorf("codec: implausible dims %d", dims)
	}
	if count > 1<<40 {
		return nil, fmt.Errorf("codec: implausible count %d", count)
	}
	crc := crc32.NewIEEE()
	pts := make([]point.Point, count)
	buf := make([]byte, 8)
	for i := range pts {
		p := make(point.Point, dims)
		for k := 0; k < dims; k++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("codec: truncated payload at point %d: %w", i, err)
			}
			crc.Write(buf)
			p[k] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
		pts[i] = p
	}
	if _, err := io.ReadFull(br, buf[:4]); err != nil {
		return nil, fmt.Errorf("codec: missing checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(buf[:4]); got != crc.Sum32() {
		return nil, fmt.Errorf("codec: checksum mismatch: stored %08x, computed %08x", got, crc.Sum32())
	}
	return point.NewDataset(dims, pts)
}

// WriteCSV serializes ds as CSV with full float64 round-trip precision.
func WriteCSV(w io.Writer, ds *point.Dataset) error {
	bw := bufio.NewWriter(w)
	for _, p := range ds.Points {
		for i, v := range p {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses CSV points; every line must have the same number of
// fields. Blank lines and lines starting with '#' are skipped.
func ReadCSV(r io.Reader) (*point.Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pts []point.Point
	dims := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if dims == -1 {
			dims = len(fields)
		}
		if len(fields) != dims {
			return nil, fmt.Errorf("codec: line %d has %d fields, want %d", lineNo, len(fields), dims)
		}
		p := make(point.Point, dims)
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("codec: line %d field %d: %w", lineNo, i+1, err)
			}
			p[i] = v
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if dims == -1 {
		return nil, fmt.Errorf("codec: no data rows")
	}
	return point.NewDataset(dims, pts)
}

// ReadNamedCSV parses a CSV whose first data line may be a header of
// attribute names (detected by any non-numeric field). When no header
// is present, attributes are named c0, c1, ... in column order.
func ReadNamedCSV(r io.Reader) (attrs []string, rows [][]float64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if attrs == nil && rows == nil {
			// First data line: header if any field fails to parse.
			numeric := true
			for _, f := range fields {
				if _, err := strconv.ParseFloat(strings.TrimSpace(f), 64); err != nil {
					numeric = false
					break
				}
			}
			if !numeric {
				attrs = make([]string, len(fields))
				for i, f := range fields {
					attrs[i] = strings.TrimSpace(f)
				}
				continue
			}
			attrs = make([]string, len(fields))
			for i := range attrs {
				attrs[i] = fmt.Sprintf("c%d", i)
			}
		}
		if len(fields) != len(attrs) {
			return nil, nil, fmt.Errorf("codec: line %d has %d fields, want %d", lineNo, len(fields), len(attrs))
		}
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("codec: line %d field %d: %w", lineNo, i+1, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if attrs == nil {
		return nil, nil, fmt.Errorf("codec: no data rows")
	}
	return attrs, rows, nil
}

// BinaryReader streams a ZSKY file incrementally, for datasets too
// large to hold in memory. The CRC is verified when the stream is
// fully consumed.
type BinaryReader struct {
	br        *bufio.Reader
	dims      int
	remaining uint64
	crc       hash.Hash32
	buf       []byte
}

// NewBinaryReader validates the header and prepares to stream points.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("codec: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("codec: bad magic %q", magic)
	}
	hdr := make([]byte, 14)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("codec: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:2]); v != Version {
		return nil, fmt.Errorf("codec: unsupported version %d", v)
	}
	dims := int(binary.LittleEndian.Uint32(hdr[2:6]))
	count := binary.LittleEndian.Uint64(hdr[6:14])
	if dims <= 0 || dims > 1<<20 {
		return nil, fmt.Errorf("codec: implausible dims %d", dims)
	}
	return &BinaryReader{br: br, dims: dims, remaining: count,
		crc: crc32.NewIEEE(), buf: make([]byte, 8)}, nil
}

// Dims returns the stream's dimensionality.
func (b *BinaryReader) Dims() int { return b.dims }

// Remaining returns how many points are left to read.
func (b *BinaryReader) Remaining() uint64 { return b.remaining }

// Next reads up to max points; it returns io.EOF (with zero points)
// once the stream is exhausted and the checksum verified.
func (b *BinaryReader) Next(max int) ([]point.Point, error) {
	if max < 1 {
		return nil, fmt.Errorf("codec: batch size must be positive")
	}
	if b.remaining == 0 {
		if b.crc != nil {
			if _, err := io.ReadFull(b.br, b.buf[:4]); err != nil {
				return nil, fmt.Errorf("codec: missing checksum: %w", err)
			}
			if got := binary.LittleEndian.Uint32(b.buf[:4]); got != b.crc.Sum32() {
				return nil, fmt.Errorf("codec: checksum mismatch")
			}
			b.crc = nil
		}
		return nil, io.EOF
	}
	n := uint64(max)
	if n > b.remaining {
		n = b.remaining
	}
	pts := make([]point.Point, n)
	for i := range pts {
		p := make(point.Point, b.dims)
		for k := 0; k < b.dims; k++ {
			if _, err := io.ReadFull(b.br, b.buf); err != nil {
				return nil, fmt.Errorf("codec: truncated payload: %w", err)
			}
			b.crc.Write(b.buf)
			p[k] = math.Float64frombits(binary.LittleEndian.Uint64(b.buf))
		}
		pts[i] = p
	}
	b.remaining -= n
	return pts, nil
}

// NextBlock reads up to max points into one contiguous block. It is
// Next on the block data plane: the batch payload is read and
// checksummed in a single bulk transfer, and the batch costs two
// allocations regardless of row count. io.EOF (with an empty block)
// signals exhaustion after checksum verification.
func (b *BinaryReader) NextBlock(max int) (point.Block, error) {
	if max < 1 {
		return point.Block{}, fmt.Errorf("codec: batch size must be positive")
	}
	if b.remaining == 0 {
		if b.crc != nil {
			if _, err := io.ReadFull(b.br, b.buf[:4]); err != nil {
				return point.Block{}, fmt.Errorf("codec: missing checksum: %w", err)
			}
			if got := binary.LittleEndian.Uint32(b.buf[:4]); got != b.crc.Sum32() {
				return point.Block{}, fmt.Errorf("codec: checksum mismatch")
			}
			b.crc = nil
		}
		return point.Block{}, io.EOF
	}
	n := uint64(max)
	if n > b.remaining {
		n = b.remaining
	}
	payload := make([]byte, int(n)*b.dims*8)
	if _, err := io.ReadFull(b.br, payload); err != nil {
		return point.Block{}, fmt.Errorf("codec: truncated payload: %w", err)
	}
	b.crc.Write(payload)
	data := make([]float64, int(n)*b.dims)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	b.remaining -= n
	return point.Block{Dims: b.dims, Data: data}, nil
}

// Source adapts the reader to the point.Source streaming interface, so
// a ZSKY file can feed any block-oriented consumer directly.
func (b *BinaryReader) Source() point.Source { return readerSource{b} }

type readerSource struct{ br *BinaryReader }

func (s readerSource) Dims() int                         { return s.br.dims }
func (s readerSource) Next(max int) (point.Block, error) { return s.br.NextBlock(max) }

// WriteBlock writes one length-prefixed block frame — b's flat
// [dims][rows][payload] encoding preceded by its uint32 byte length —
// so a stream can carry consecutive blocks of varying sizes.
func WriteBlock(w io.Writer, b point.Block) error {
	frame, err := b.MarshalBinary()
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// ReadBlock reads one length-prefixed block frame written by
// WriteBlock. io.EOF is returned unwrapped at a clean stream end.
func ReadBlock(r io.Reader) (point.Block, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return point.Block{}, io.EOF
		}
		return point.Block{}, fmt.Errorf("codec: reading block length: %w", err)
	}
	size := binary.LittleEndian.Uint32(hdr[:])
	if size > 1<<30 {
		return point.Block{}, fmt.Errorf("codec: implausible block frame size %d", size)
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(r, frame); err != nil {
		return point.Block{}, fmt.Errorf("codec: truncated block frame: %w", err)
	}
	var b point.Block
	if err := b.UnmarshalBinary(frame); err != nil {
		return point.Block{}, err
	}
	return b, nil
}
