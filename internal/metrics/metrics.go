// Package metrics provides the lightweight counters the library
// threads through its algorithms so experiments can report dominance
// tests, shuffle volume, and load-balance statistics the way the
// paper's evaluation does.
package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Tally accumulates counters that several goroutines may bump
// concurrently. The zero value is ready to use. A nil *Tally is valid
// everywhere and counts nothing, so hot paths can stay branch-cheap.
type Tally struct {
	dominanceTests atomic.Int64
	regionTests    atomic.Int64
	pointsPruned   atomic.Int64
	bytesShuffled  atomic.Int64
	recordsEmitted atomic.Int64
}

// AddDominanceTests records n exact point-vs-point dominance tests.
func (t *Tally) AddDominanceTests(n int64) {
	if t != nil {
		t.dominanceTests.Add(n)
	}
}

// AddRegionTests records n grid-level RZ-region tests.
func (t *Tally) AddRegionTests(n int64) {
	if t != nil {
		t.regionTests.Add(n)
	}
}

// AddPointsPruned records n points eliminated before local processing.
func (t *Tally) AddPointsPruned(n int64) {
	if t != nil {
		t.pointsPruned.Add(n)
	}
}

// AddBytesShuffled records n bytes moved between map and reduce tasks.
func (t *Tally) AddBytesShuffled(n int64) {
	if t != nil {
		t.bytesShuffled.Add(n)
	}
}

// AddRecordsEmitted records n key/value records emitted.
func (t *Tally) AddRecordsEmitted(n int64) {
	if t != nil {
		t.recordsEmitted.Add(n)
	}
}

// Snapshot is an immutable copy of a Tally's counters.
type Snapshot struct {
	DominanceTests int64
	RegionTests    int64
	PointsPruned   int64
	BytesShuffled  int64
	RecordsEmitted int64
}

// Snapshot captures the current counter values.
func (t *Tally) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	return Snapshot{
		DominanceTests: t.dominanceTests.Load(),
		RegionTests:    t.regionTests.Load(),
		PointsPruned:   t.pointsPruned.Load(),
		BytesShuffled:  t.bytesShuffled.Load(),
		RecordsEmitted: t.recordsEmitted.Load(),
	}
}

// Add merges another snapshot into s.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		DominanceTests: s.DominanceTests + o.DominanceTests,
		RegionTests:    s.RegionTests + o.RegionTests,
		PointsPruned:   s.PointsPruned + o.PointsPruned,
		BytesShuffled:  s.BytesShuffled + o.BytesShuffled,
		RecordsEmitted: s.RecordsEmitted + o.RecordsEmitted,
	}
}

// Sub returns the counter deltas from o to s — the work done between
// two snapshots of the same tally.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		DominanceTests: s.DominanceTests - o.DominanceTests,
		RegionTests:    s.RegionTests - o.RegionTests,
		PointsPruned:   s.PointsPruned - o.PointsPruned,
		BytesShuffled:  s.BytesShuffled - o.BytesShuffled,
		RecordsEmitted: s.RecordsEmitted - o.RecordsEmitted,
	}
}

// Balance summarizes how evenly a quantity (points per worker, skyline
// candidates per group, ...) is spread — the data-skew and straggler
// metrics of the paper's §3.3.
type Balance struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	StdDev float64
	// Imbalance is Max/Mean; 1.0 is a perfect spread. Straggler risk
	// grows with this ratio.
	Imbalance float64
}

// NewBalance computes balance statistics over per-worker loads.
func NewBalance(loads []int) Balance {
	if len(loads) == 0 {
		return Balance{}
	}
	b := Balance{N: len(loads), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, v := range loads {
		f := float64(v)
		sum += f
		if f < b.Min {
			b.Min = f
		}
		if f > b.Max {
			b.Max = f
		}
	}
	b.Mean = sum / float64(len(loads))
	var sq float64
	for _, v := range loads {
		d := float64(v) - b.Mean
		sq += d * d
	}
	b.StdDev = math.Sqrt(sq / float64(len(loads)))
	if b.Mean > 0 {
		b.Imbalance = b.Max / b.Mean
	}
	return b
}

// String renders the balance as "n=8 min=10 max=14 mean=12.0 imb=1.17".
func (b Balance) String() string {
	return fmt.Sprintf("n=%d min=%.0f max=%.0f mean=%.1f sd=%.1f imb=%.2f",
		b.N, b.Min, b.Max, b.Mean, b.StdDev, b.Imbalance)
}
