package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilTallyIsSafe(t *testing.T) {
	var tal *Tally
	tal.AddDominanceTests(5)
	tal.AddRegionTests(5)
	tal.AddPointsPruned(5)
	tal.AddBytesShuffled(5)
	tal.AddRecordsEmitted(5)
	if s := tal.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil tally snapshot = %+v, want zero", s)
	}
}

func TestTallyConcurrent(t *testing.T) {
	tal := &Tally{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tal.AddDominanceTests(1)
				tal.AddBytesShuffled(2)
			}
		}()
	}
	wg.Wait()
	s := tal.Snapshot()
	if s.DominanceTests != 8000 || s.BytesShuffled != 16000 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestSnapshotAdd(t *testing.T) {
	a := Snapshot{DominanceTests: 1, RegionTests: 2, PointsPruned: 3, BytesShuffled: 4, RecordsEmitted: 5}
	b := a.Add(a)
	if b.DominanceTests != 2 || b.RecordsEmitted != 10 {
		t.Errorf("Add = %+v", b)
	}
}

func TestBalance(t *testing.T) {
	b := NewBalance([]int{10, 14, 12, 12})
	if b.N != 4 || b.Min != 10 || b.Max != 14 || b.Mean != 12 {
		t.Errorf("balance = %+v", b)
	}
	if math.Abs(b.Imbalance-14.0/12.0) > 1e-12 {
		t.Errorf("imbalance = %v", b.Imbalance)
	}
	if got := NewBalance(nil); got.N != 0 {
		t.Errorf("empty balance = %+v", got)
	}
	if !strings.Contains(b.String(), "imb=") {
		t.Errorf("String = %q", b.String())
	}
}

func TestBalanceUniform(t *testing.T) {
	b := NewBalance([]int{5, 5, 5})
	if b.StdDev != 0 || b.Imbalance != 1 {
		t.Errorf("uniform balance = %+v", b)
	}
}
