// Package gen produces the datasets of the paper's evaluation (§6.1):
// the standard Börzsönyi synthetic distributions (independent,
// correlated, anti-correlated) plus deterministic simulators for the
// real-world datasets the paper uses but that we cannot ship (NBA,
// HOU, NUS-WIDE, Flickr GIST, DBpedia LDA). Every generator is pure:
// the same seed always yields the same dataset. All coordinates lie in
// [0,1] with smaller-is-better semantics.
package gen

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"zskyline/internal/point"
)

// Distribution selects one of the standard synthetic workloads.
type Distribution int

// The three synthetic distributions used throughout the paper.
const (
	Independent Distribution = iota
	Correlated
	AntiCorrelated
)

// String names the distribution the way the paper does.
func (d Distribution) String() string {
	switch d {
	case Independent:
		return "independent"
	case Correlated:
		return "correlated"
	case AntiCorrelated:
		return "anti-correlated"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Synthetic generates n d-dimensional points with the given
// distribution. Correlated points hug the main diagonal (tiny
// skylines); anti-correlated points hug the hyperplane sum(x)=d/2
// (huge skylines); independent points are uniform. All n points share
// one contiguous backing array (the dataset's points are block rows).
func Synthetic(dist Distribution, n, d int, seed int64) *point.Dataset {
	r := rand.New(rand.NewSource(seed))
	bb := point.NewBlockBuilder(d, n)
	for i := 0; i < n; i++ {
		synthInto(r, dist, bb.Extend())
	}
	return point.MustDataset(d, bb.Build().Points())
}

// synthInto fills one pre-allocated d-wide row. It consumes r exactly
// as the historical per-point generator did, so seeds keep producing
// the same datasets.
func synthInto(r *rand.Rand, dist Distribution, p point.Point) {
	switch dist {
	case Independent:
		for k := range p {
			p[k] = r.Float64()
		}
	case Correlated:
		// One latent quality value, small independent jitter: points
		// concentrate along the diagonal.
		v := r.Float64()
		for k := range p {
			p[k] = clamp01(v + r.NormFloat64()*0.05)
		}
	case AntiCorrelated:
		// Points near the hyperplane sum(x) = d * c with a zero-sum
		// perturbation: being good in one dimension costs in others.
		c := clamp01(0.5 + r.NormFloat64()*0.08)
		e := make([]float64, len(p))
		mean := 0.0
		for k := range e {
			e[k] = r.Float64()
			mean += e[k]
		}
		mean /= float64(len(p))
		for k := range p {
			p[k] = clamp01(c + (e[k]-mean)*0.9)
		}
	default:
		panic(fmt.Sprintf("gen: unknown distribution %d", dist))
	}
}

// Source streams a synthetic dataset as contiguous blocks without ever
// materializing it whole — the generator-backed point.Source for
// out-of-core pipelines and benchmarks. Its rows reproduce
// Synthetic(dist, n, d, seed) exactly, in order.
type Source struct {
	r         *rand.Rand
	dist      Distribution
	d         int
	remaining int
}

// NewSource creates a streaming generator of n d-dimensional points.
func NewSource(dist Distribution, n, d int, seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed)), dist: dist, d: d, remaining: n}
}

// Dims implements point.Source.
func (s *Source) Dims() int { return s.d }

// Next generates up to max points into one freshly built block.
func (s *Source) Next(max int) (point.Block, error) {
	if s.remaining == 0 {
		return point.Block{}, io.EOF
	}
	if max < 1 {
		max = 1
	}
	n := max
	if n > s.remaining {
		n = s.remaining
	}
	bb := point.NewBlockBuilder(s.d, n)
	for i := 0; i < n; i++ {
		synthInto(s.r, s.dist, bb.Extend())
	}
	s.remaining -= n
	return bb.Build(), nil
}

// NBALike simulates the paper's NBA dataset: n player seasons with 7
// per-game statistics (scoring, rebounds, assists, steals, blocks,
// shooting, minutes), anti-correlated through role archetypes — a
// player excelling at scoring rarely also leads rebounds. Values are
// mapped so that smaller is better (rank-like), as the paper's skyline
// convention requires. The paper uses n = 350.
func NBALike(n int, seed int64) *point.Dataset {
	const d = 7
	// Archetypes: how strongly each role produces each stat.
	archetypes := [][d]float64{
		{0.9, 0.3, 0.5, 0.4, 0.1, 0.7, 0.8}, // scoring guard
		{0.4, 0.9, 0.2, 0.2, 0.7, 0.6, 0.7}, // big man
		{0.5, 0.4, 0.9, 0.7, 0.1, 0.5, 0.8}, // playmaker
		{0.3, 0.5, 0.3, 0.8, 0.5, 0.4, 0.6}, // defensive specialist
		{0.6, 0.6, 0.5, 0.5, 0.4, 0.6, 0.9}, // all-rounder
	}
	r := rand.New(rand.NewSource(seed))
	pts := make([]point.Point, n)
	for i := range pts {
		a := archetypes[r.Intn(len(archetypes))]
		talent := 0.2 + 0.8*r.Float64()
		p := make(point.Point, d)
		for k := 0; k < d; k++ {
			produced := clamp01(talent*a[k] + r.NormFloat64()*0.08)
			p[k] = 1 - produced // smaller is better
		}
		pts[i] = p
	}
	return point.MustDataset(d, pts)
}

// HOULike simulates the paper's HOU dataset: n households, each a
// 6-way percentage split of annual expenses (electricity, gas, water,
// heating, food, other). Dirichlet shares sum to one and the marginals
// behave near-independently. The paper uses n = 1000.
func HOULike(n int, seed int64) *point.Dataset {
	const d = 6
	r := rand.New(rand.NewSource(seed))
	pts := make([]point.Point, n)
	for i := range pts {
		pts[i] = dirichlet(r, d, 2.0)
	}
	return point.MustDataset(d, pts)
}

// dirichlet samples a symmetric Dirichlet(alpha) vector via gamma
// normalization.
func dirichlet(r *rand.Rand, d int, alpha float64) point.Point {
	p := make(point.Point, d)
	sum := 0.0
	for k := range p {
		g := gammaSample(r, alpha)
		p[k] = g
		sum += g
	}
	for k := range p {
		p[k] = clamp01(p[k] / sum)
	}
	return p
}

// gammaSample draws Gamma(shape, 1) with Marsaglia-Tsang; for shape <
// 1 it boosts the shape and rescales.
func gammaSample(r *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := r.Float64()
		if u == 0 {
			u = 1e-12
		}
		return gammaSample(r, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// NUSWideLike simulates 225-dimensional block-wise color moments: a
// mixture of image clusters, each cluster a Gaussian around its own
// block profile. The paper's NUS-WIDE slice has 269,648 images.
func NUSWideLike(n int, seed int64) *point.Dataset {
	return clusteredHighDim(n, 225, 12, 0.08, seed)
}

// DBPediaLike simulates 250-topic LDA document vectors: sparse
// Dirichlet weights with a handful of active topics per document.
// Smaller is better (a small topic weight means "closer" under the
// paper's preference transform).
func DBPediaLike(n int, seed int64) *point.Dataset {
	const d = 250
	r := rand.New(rand.NewSource(seed))
	pts := make([]point.Point, n)
	for i := range pts {
		p := make(point.Point, d)
		for k := range p {
			p[k] = 1 // inactive topics sit at the worst value
		}
		active := 3 + r.Intn(6)
		w := dirichlet(r, active, 0.7)
		for j := 0; j < active; j++ {
			topic := r.Intn(d)
			p[topic] = clamp01(1 - w[j])
		}
		pts[i] = p
	}
	return point.MustDataset(d, pts)
}

// FlickrLike simulates 512-dimensional GIST descriptors: natural-image
// GIST vectors concentrate near a low intrinsic-dimension manifold, so
// we embed an 8-d latent uniformly and push it through a fixed random
// smooth map plus noise.
func FlickrLike(n int, seed int64) *point.Dataset {
	const d, latent = 512, 8
	r := rand.New(rand.NewSource(seed))
	// Fixed random projection (depends only on seed).
	w := make([][]float64, d)
	bias := make([]float64, d)
	for j := range w {
		w[j] = make([]float64, latent)
		for k := range w[j] {
			w[j][k] = r.NormFloat64()
		}
		bias[j] = r.NormFloat64() * 0.5
	}
	pts := make([]point.Point, n)
	for i := range pts {
		z := make([]float64, latent)
		for k := range z {
			z[k] = r.Float64()*2 - 1
		}
		p := make(point.Point, d)
		for j := 0; j < d; j++ {
			s := bias[j]
			for k := 0; k < latent; k++ {
				s += w[j][k] * z[k]
			}
			p[j] = clamp01(1/(1+math.Exp(-s)) + r.NormFloat64()*0.02)
		}
		pts[i] = p
	}
	return point.MustDataset(d, pts)
}

// Clustered generates n points drawn from a Gaussian mixture with the
// given cluster count and spread — the skewed workload where
// equal-width grid partitioning collapses (§3.3's data-skew setting).
func Clustered(n, d, clusters int, spread float64, seed int64) *point.Dataset {
	return clusteredHighDim(n, d, clusters, spread, seed)
}

func clusteredHighDim(n, d, clusters int, spread float64, seed int64) *point.Dataset {
	r := rand.New(rand.NewSource(seed))
	centers := make([]point.Point, clusters)
	for c := range centers {
		centers[c] = make(point.Point, d)
		for k := range centers[c] {
			centers[c][k] = r.Float64()
		}
	}
	pts := make([]point.Point, n)
	for i := range pts {
		c := centers[r.Intn(clusters)]
		p := make(point.Point, d)
		for k := range p {
			p[k] = clamp01(c[k] + r.NormFloat64()*spread)
		}
		pts[i] = p
	}
	return point.MustDataset(d, pts)
}

// Scale synthetically enlarges ds by factor s while preserving its
// distribution (the paper's §6.1 trick, after [24], [26]): each new
// point is an existing point with a small relative jitter.
func Scale(ds *point.Dataset, s int, seed int64) *point.Dataset {
	if s <= 1 || ds.Len() == 0 {
		return ds.Clone()
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]point.Point, 0, ds.Len()*s)
	for _, p := range ds.Points {
		out = append(out, p.Clone())
	}
	for len(out) < ds.Len()*s {
		src := ds.Points[r.Intn(ds.Len())]
		p := make(point.Point, ds.Dims)
		for k := range p {
			p[k] = clamp01(src[k] + r.NormFloat64()*0.01)
		}
		out = append(out, p)
	}
	return point.MustDataset(ds.Dims, out)
}
