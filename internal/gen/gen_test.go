package gen

import (
	"io"
	"math"
	"testing"

	"zskyline/internal/point"
	"zskyline/internal/seq"
)

func TestDeterminism(t *testing.T) {
	a := Synthetic(Independent, 500, 5, 42)
	b := Synthetic(Independent, 500, 5, 42)
	for i := range a.Points {
		if !a.Points[i].Equal(b.Points[i]) {
			t.Fatalf("same seed produced different data at %d", i)
		}
	}
	c := Synthetic(Independent, 500, 5, 43)
	same := true
	for i := range a.Points {
		if !a.Points[i].Equal(c.Points[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestShapesAndBounds(t *testing.T) {
	for _, dist := range []Distribution{Independent, Correlated, AntiCorrelated} {
		ds := Synthetic(dist, 1000, 6, 7)
		if ds.Len() != 1000 || ds.Dims != 6 {
			t.Fatalf("%v: n=%d d=%d", dist, ds.Len(), ds.Dims)
		}
		for _, p := range ds.Points {
			for _, v := range p {
				if v < 0 || v > 1 {
					t.Fatalf("%v: coordinate %v out of [0,1]", dist, v)
				}
			}
		}
	}
}

// pearson computes the mean pairwise-dimension correlation coefficient.
func meanPairwiseCorrelation(ds *point.Dataset) float64 {
	d := ds.Dims
	n := float64(ds.Len())
	mean := make([]float64, d)
	for _, p := range ds.Points {
		for k, v := range p {
			mean[k] += v
		}
	}
	for k := range mean {
		mean[k] /= n
	}
	va := make([]float64, d)
	for _, p := range ds.Points {
		for k, v := range p {
			va[k] += (v - mean[k]) * (v - mean[k])
		}
	}
	total, pairs := 0.0, 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			cov := 0.0
			for _, p := range ds.Points {
				cov += (p[i] - mean[i]) * (p[j] - mean[j])
			}
			denom := math.Sqrt(va[i] * va[j])
			if denom > 0 {
				total += cov / denom
				pairs++
			}
		}
	}
	return total / float64(pairs)
}

func TestCorrelationStructure(t *testing.T) {
	ind := meanPairwiseCorrelation(Synthetic(Independent, 4000, 4, 1))
	cor := meanPairwiseCorrelation(Synthetic(Correlated, 4000, 4, 1))
	ant := meanPairwiseCorrelation(Synthetic(AntiCorrelated, 4000, 4, 1))
	if math.Abs(ind) > 0.1 {
		t.Errorf("independent correlation = %v, want ~0", ind)
	}
	if cor < 0.7 {
		t.Errorf("correlated correlation = %v, want strongly positive", cor)
	}
	if ant > -0.15 {
		t.Errorf("anti-correlated correlation = %v, want negative", ant)
	}
}

// The defining skyline behaviour: |S| anti >> |S| indep >> |S| corr.
func TestSkylineSizeOrdering(t *testing.T) {
	n, d := 2000, 5
	sizes := map[Distribution]int{}
	for _, dist := range []Distribution{Independent, Correlated, AntiCorrelated} {
		ds := Synthetic(dist, n, d, 3)
		sizes[dist] = len(seq.SB(ds.Points, nil))
	}
	if !(sizes[AntiCorrelated] > sizes[Independent] && sizes[Independent] > sizes[Correlated]) {
		t.Errorf("skyline sizes anti=%d indep=%d corr=%d; want anti > indep > corr",
			sizes[AntiCorrelated], sizes[Independent], sizes[Correlated])
	}
	if sizes[Correlated] > n/50 {
		t.Errorf("correlated skyline %d too large", sizes[Correlated])
	}
}

func TestDistributionString(t *testing.T) {
	if Independent.String() != "independent" || AntiCorrelated.String() != "anti-correlated" {
		t.Error("distribution names wrong")
	}
	if Distribution(99).String() == "" {
		t.Error("unknown distribution should still render")
	}
}

func TestNBALike(t *testing.T) {
	ds := NBALike(350, 5)
	if ds.Len() != 350 || ds.Dims != 7 {
		t.Fatalf("NBA: n=%d d=%d", ds.Len(), ds.Dims)
	}
	// Role archetypes should induce anti-correlation between the
	// scoring-dominant and rebound-dominant dimensions.
	if c := meanPairwiseCorrelation(ds); c > 0.6 {
		t.Errorf("NBA mean correlation = %v; want weak/negative structure", c)
	}
	// Skyline should be a modest fraction but clearly plural.
	sky := seq.SB(ds.Points, nil)
	if len(sky) < 5 || len(sky) == ds.Len() {
		t.Errorf("NBA skyline = %d of %d", len(sky), ds.Len())
	}
}

func TestHOULike(t *testing.T) {
	ds := HOULike(1000, 5)
	if ds.Len() != 1000 || ds.Dims != 6 {
		t.Fatalf("HOU: n=%d d=%d", ds.Len(), ds.Dims)
	}
	for _, p := range ds.Points {
		sum := 0.0
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("HOU shares sum to %v, want 1", sum)
		}
	}
}

func TestHighDimSimulators(t *testing.T) {
	nus := NUSWideLike(200, 7)
	if nus.Dims != 225 || nus.Len() != 200 {
		t.Errorf("NUS-WIDE: n=%d d=%d", nus.Len(), nus.Dims)
	}
	fl := FlickrLike(100, 7)
	if fl.Dims != 512 || fl.Len() != 100 {
		t.Errorf("Flickr: n=%d d=%d", fl.Len(), fl.Dims)
	}
	db := DBPediaLike(150, 7)
	if db.Dims != 250 || db.Len() != 150 {
		t.Errorf("DBpedia: n=%d d=%d", db.Len(), db.Dims)
	}
	for _, ds := range []*point.Dataset{nus, fl, db} {
		for _, p := range ds.Points {
			for _, v := range p {
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("coordinate %v out of range", v)
				}
			}
		}
	}
}

func TestDBPediaSparsity(t *testing.T) {
	ds := DBPediaLike(100, 9)
	for _, p := range ds.Points {
		active := 0
		for _, v := range p {
			if v < 0.999 {
				active++
			}
		}
		if active == 0 || active > 10 {
			t.Fatalf("document has %d active topics, want 1..10", active)
		}
	}
}

func TestScale(t *testing.T) {
	base := Synthetic(Independent, 100, 4, 11)
	big := Scale(base, 5, 12)
	if big.Len() != 500 {
		t.Fatalf("Scale(5) len = %d, want 500", big.Len())
	}
	// Originals come first, untouched.
	for i := range base.Points {
		if !big.Points[i].Equal(base.Points[i]) {
			t.Fatalf("Scale mutated original %d", i)
		}
	}
	// s<=1 clones.
	same := Scale(base, 1, 12)
	if same.Len() != 100 {
		t.Errorf("Scale(1) len = %d", same.Len())
	}
	same.Points[0][0] = 99
	if base.Points[0][0] == 99 {
		t.Error("Scale(1) shares memory with base")
	}
}

func TestGammaSamplePositive(t *testing.T) {
	ds := HOULike(50, 1)
	_ = ds
	// Directly exercise small-shape path via DBPediaLike's alpha 0.7.
	db := DBPediaLike(50, 1)
	if db.Len() != 50 {
		t.Fatal("DBPedia generation failed")
	}
}

// NewSource must reproduce Synthetic row-for-row regardless of batch
// size, and end with a clean io.EOF.
func TestSourceMatchesSynthetic(t *testing.T) {
	const n, d, seed = 1234, 5, 77
	want := Synthetic(AntiCorrelated, n, d, seed)
	src := NewSource(AntiCorrelated, n, d, seed)
	if src.Dims() != d {
		t.Fatalf("Dims = %d", src.Dims())
	}
	var rows int
	for {
		b, err := src.Next(97)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < b.Len(); i++ {
			if !b.Row(i).Equal(want.Points[rows+i]) {
				t.Fatalf("row %d drifted from Synthetic", rows+i)
			}
		}
		rows += b.Len()
	}
	if rows != n {
		t.Fatalf("streamed %d rows, want %d", rows, n)
	}
	if _, err := src.Next(1); err != io.EOF {
		t.Fatalf("exhausted source = %v, want io.EOF", err)
	}
}
