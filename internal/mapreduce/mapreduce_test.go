package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"zskyline/internal/metrics"
)

// wordCount is the canonical smoke test.
func wordCountJob(tally *metrics.Tally) Job[string, string, int, string] {
	return Job[string, string, int, string]{
		Name: "wordcount",
		Map: func(_ *TaskContext, line string, emit func(string, int)) error {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
			return nil
		},
		Combine: func(_ *TaskContext, _ string, vals []int) []int {
			sum := 0
			for _, v := range vals {
				sum += v
			}
			return []int{sum}
		},
		Reduce: func(_ *TaskContext, key string, vals []int, emit func(string)) error {
			sum := 0
			for _, v := range vals {
				sum += v
			}
			emit(fmt.Sprintf("%s=%d", key, sum))
			return nil
		},
		Reducers: 3,
		Tally:    tally,
	}
}

func TestWordCount(t *testing.T) {
	c := NewCluster(ClusterConfig{Workers: 4})
	lines := []string{"a b a", "b c", "a c c c"}
	out, stats, err := Run(context.Background(), c, wordCountJob(nil), SplitSlice(lines, 2))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, o := range out {
		got[o] = true
	}
	for _, want := range []string{"a=3", "b=2", "c=4"} {
		if !got[want] {
			t.Errorf("missing %q in %v", want, out)
		}
	}
	if len(stats.MapStats) != 2 || len(stats.ReduceStats) != 3 {
		t.Errorf("stats: %d map, %d reduce tasks", len(stats.MapStats), len(stats.ReduceStats))
	}
	if stats.ShuffleBytes == 0 {
		t.Error("no shuffle bytes accounted")
	}
}

func TestDeterministicOutputOrder(t *testing.T) {
	c := NewCluster(ClusterConfig{Workers: 8})
	var lines []string
	for i := 0; i < 50; i++ {
		lines = append(lines, fmt.Sprintf("w%d w%d w%d", i%7, i%11, i%13))
	}
	var first []string
	for trial := 0; trial < 5; trial++ {
		out, _, err := Run(context.Background(), c, wordCountJob(nil), SplitSlice(lines, 8))
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = out
			continue
		}
		if len(out) != len(first) {
			t.Fatalf("trial %d: %d outputs vs %d", trial, len(out), len(first))
		}
		for i := range out {
			if out[i] != first[i] {
				t.Fatalf("nondeterministic output at %d: %q vs %q", i, out[i], first[i])
			}
		}
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	c := NewCluster(ClusterConfig{Workers: 2})
	lines := make([]string, 100)
	for i := range lines {
		lines[i] = "x x x x x x x x"
	}
	with := wordCountJob(nil)
	without := wordCountJob(nil)
	without.Combine = nil
	_, sWith, err := Run(context.Background(), c, with, SplitSlice(lines, 4))
	if err != nil {
		t.Fatal(err)
	}
	_, sWithout, err := Run(context.Background(), c, without, SplitSlice(lines, 4))
	if err != nil {
		t.Fatal(err)
	}
	if sWith.ShuffleBytes >= sWithout.ShuffleBytes {
		t.Errorf("combiner did not reduce shuffle: %d vs %d", sWith.ShuffleBytes, sWithout.ShuffleBytes)
	}
}

func TestCustomPartitioner(t *testing.T) {
	c := NewCluster(ClusterConfig{Workers: 2})
	job := Job[int, int, int, string]{
		Name: "routed",
		Map: func(_ *TaskContext, rec int, emit func(int, int)) error {
			emit(rec%4, rec)
			return nil
		},
		Reduce: func(ctx *TaskContext, key int, vals []int, emit func(string)) error {
			emit(fmt.Sprintf("r%d-k%d-n%d", ctx.Task, key, len(vals)))
			return nil
		},
		Partition: func(key, n int) int { return key % n },
		Reducers:  4,
	}
	in := make([]int, 40)
	for i := range in {
		in[i] = i
	}
	out, _, err := Run(context.Background(), c, job, SplitSlice(in, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Key k must land on reducer k%4 = k.
	for _, o := range out {
		var r, k, n int
		if _, err := fmt.Sscanf(o, "r%d-k%d-n%d", &r, &k, &n); err != nil {
			t.Fatal(err)
		}
		if r != k || n != 10 {
			t.Errorf("bad routing: %s", o)
		}
	}
}

func TestBadPartitionerFails(t *testing.T) {
	c := NewCluster(ClusterConfig{Workers: 1})
	job := Job[int, int, int, int]{
		Name:      "bad",
		Map:       func(_ *TaskContext, rec int, emit func(int, int)) error { emit(rec, rec); return nil },
		Reduce:    func(_ *TaskContext, _ int, _ []int, _ func(int)) error { return nil },
		Partition: func(key, n int) int { return -1 },
	}
	_, _, err := Run(context.Background(), c, job, SplitSlice([]int{1}, 1))
	if err == nil {
		t.Fatal("out-of-range partitioner should fail the job")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	c := NewCluster(ClusterConfig{Workers: 2, MaxAttempts: 1})
	boom := errors.New("boom")
	job := Job[int, int, int, int]{
		Name:   "maperr",
		Map:    func(_ *TaskContext, rec int, _ func(int, int)) error { return boom },
		Reduce: func(_ *TaskContext, _ int, _ []int, _ func(int)) error { return nil },
	}
	_, _, err := Run(context.Background(), c, job, SplitSlice([]int{1, 2}, 2))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestFaultInjectionRetries(t *testing.T) {
	var calls atomic.Int32
	c := NewCluster(ClusterConfig{
		Workers:     2,
		MaxAttempts: 3,
		FailTask: func(job string, kind TaskKind, task, attempt int) error {
			if kind == MapTask && task == 0 && attempt < 3 {
				calls.Add(1)
				return fmt.Errorf("injected fault attempt %d", attempt)
			}
			return nil
		},
	})
	out, stats, err := Run(context.Background(), c, wordCountJob(nil), SplitSlice([]string{"a", "b"}, 2))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("injected %d faults, want 2", calls.Load())
	}
	if stats.MapStats[0].Attempts != 3 {
		t.Errorf("task 0 attempts = %d, want 3", stats.MapStats[0].Attempts)
	}
	if len(out) != 2 {
		t.Errorf("out = %v", out)
	}
}

func TestFaultExhaustionFailsJob(t *testing.T) {
	c := NewCluster(ClusterConfig{
		Workers:     1,
		MaxAttempts: 2,
		FailTask: func(_ string, kind TaskKind, _, _ int) error {
			if kind == ReduceTask {
				return errors.New("disk on fire")
			}
			return nil
		},
	})
	_, _, err := Run(context.Background(), c, wordCountJob(nil), SplitSlice([]string{"a"}, 1))
	if err == nil || !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("err = %v", err)
	}
}

func TestStragglerInjectionStretchesTask(t *testing.T) {
	slow := NewCluster(ClusterConfig{
		Workers:  1,
		Slowdown: func(worker int) float64 { return 50 },
	})
	job := Job[int, int, int, int]{
		Name: "sleepy",
		Map: func(_ *TaskContext, rec int, emit func(int, int)) error {
			time.Sleep(2 * time.Millisecond)
			emit(0, rec)
			return nil
		},
		Reduce: func(_ *TaskContext, _ int, vals []int, emit func(int)) error {
			emit(len(vals))
			return nil
		},
		Reducers: 1,
	}
	_, stats, err := Run(context.Background(), slow, job, SplitSlice([]int{1}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.MapStats[0].Duration < 50*time.Millisecond {
		t.Errorf("straggler stretch not applied: %v", stats.MapStats[0].Duration)
	}
}

func TestContextCancellation(t *testing.T) {
	c := NewCluster(ClusterConfig{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	job := Job[int, int, int, int]{
		Name: "cancel",
		Map: func(_ *TaskContext, rec int, emit func(int, int)) error {
			time.Sleep(5 * time.Millisecond)
			emit(rec, rec)
			return nil
		},
		Reduce: func(_ *TaskContext, _ int, _ []int, _ func(int)) error { return nil },
	}
	go func() {
		time.Sleep(1 * time.Millisecond)
		cancel()
	}()
	// Many splits on one worker: later acquisitions observe cancellation.
	in := make([]int, 64)
	_, _, err := Run(ctx, c, job, SplitSlice(in, 64))
	if err == nil {
		t.Fatal("cancelled run should fail")
	}
}

func TestDistributedCacheVisible(t *testing.T) {
	c := NewCluster(ClusterConfig{Workers: 2})
	job := Job[int, int, int, string]{
		Name: "cache",
		Map: func(ctx *TaskContext, rec int, emit func(int, int)) error {
			bonus := ctx.Cache["bonus"].(int)
			emit(0, rec+bonus)
			return nil
		},
		Reduce: func(ctx *TaskContext, _ int, vals []int, emit func(string)) error {
			if ctx.Cache["bonus"].(int) != 100 {
				return errors.New("cache missing in reducer")
			}
			sum := 0
			for _, v := range vals {
				sum += v
			}
			emit(fmt.Sprint(sum))
			return nil
		},
		Reducers: 1,
		Cache:    map[string]any{"bonus": 100},
	}
	out, _, err := Run(context.Background(), c, job, SplitSlice([]int{1, 2, 3}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "306" {
		t.Errorf("out = %v, want [306]", out)
	}
}

func TestTallyAccounting(t *testing.T) {
	tal := &metrics.Tally{}
	c := NewCluster(ClusterConfig{Workers: 2})
	_, stats, err := Run(context.Background(), c, wordCountJob(tal), SplitSlice([]string{"a b", "c d"}, 2))
	if err != nil {
		t.Fatal(err)
	}
	s := tal.Snapshot()
	if s.BytesShuffled != stats.ShuffleBytes {
		t.Errorf("tally bytes %d != stats %d", s.BytesShuffled, stats.ShuffleBytes)
	}
	if s.RecordsEmitted == 0 {
		t.Error("no emitted records tallied")
	}
}

func TestSplitSlice(t *testing.T) {
	in := []int{1, 2, 3, 4, 5, 6, 7}
	cases := []struct{ n, wantSplits int }{{1, 1}, {2, 2}, {3, 3}, {7, 7}, {10, 7}, {0, 1}}
	for _, c := range cases {
		sp := SplitSlice(in, c.n)
		if len(sp) != c.wantSplits {
			t.Errorf("SplitSlice(n=%d) gave %d splits, want %d", c.n, len(sp), c.wantSplits)
		}
		total := 0
		for _, s := range sp {
			total += len(s)
		}
		if total != len(in) {
			t.Errorf("SplitSlice(n=%d) lost records: %d", c.n, total)
		}
	}
	if got := SplitSlice([]int{}, 3); len(got) != 0 {
		t.Errorf("empty input: %v", got)
	}
}

func TestReduceInputBalance(t *testing.T) {
	s := &JobStats{ReduceStats: []TaskStat{{InputRecords: 10}, {InputRecords: 30}}}
	b := s.ReduceInputBalance()
	if b.Max != 30 || b.Mean != 20 {
		t.Errorf("balance = %+v", b)
	}
	if len((&JobStats{MapStats: []TaskStat{{Duration: time.Second}}}).MapDurations()) != 1 {
		t.Error("MapDurations wrong")
	}
}

func TestTaskKindString(t *testing.T) {
	if MapTask.String() != "map" || ReduceTask.String() != "reduce" {
		t.Error("kind names wrong")
	}
}

func TestManyTasksFewWorkers(t *testing.T) {
	c := NewCluster(ClusterConfig{Workers: 3})
	in := make([]int, 1000)
	for i := range in {
		in[i] = i
	}
	job := Job[int, int, int64, int64]{
		Name: "sum",
		Map: func(_ *TaskContext, rec int, emit func(int, int64)) error {
			emit(rec%5, int64(rec))
			return nil
		},
		Reduce: func(_ *TaskContext, _ int, vals []int64, emit func(int64)) error {
			var sum int64
			for _, v := range vals {
				sum += v
			}
			emit(sum)
			return nil
		},
		Reducers: 5,
	}
	out, stats, err := Run(context.Background(), c, job, SplitSlice(in, 100))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, v := range out {
		total += v
	}
	if total != 999*1000/2 {
		t.Errorf("sum = %d", total)
	}
	// Worker IDs stay within the pool.
	for _, st := range append(stats.MapStats, stats.ReduceStats...) {
		if st.Worker < 0 || st.Worker >= 3 {
			t.Errorf("worker %d out of pool", st.Worker)
		}
	}
}

func TestNetworkModelSlowsShuffleHeavyJobs(t *testing.T) {
	// Identical job on a free-network and a slow-network cluster: the
	// slow one must take at least the simulated transfer time.
	lines := make([]string, 200)
	for i := range lines {
		lines[i] = "alpha beta gamma delta"
	}
	job := wordCountJob(nil)
	job.Combine = nil // keep the shuffle fat
	fast := NewCluster(ClusterConfig{Workers: 4})
	slow := NewCluster(ClusterConfig{Workers: 4, NetworkMBps: 0.5})
	_, sFast, err := Run(context.Background(), fast, job, SplitSlice(lines, 4))
	if err != nil {
		t.Fatal(err)
	}
	_, sSlow, err := Run(context.Background(), slow, job, SplitSlice(lines, 4))
	if err != nil {
		t.Fatal(err)
	}
	// 200 lines x 4 words x 16 bytes ~ 12.8KB; at 0.5 MB/s that is
	// ~25ms each way. Wall must reflect it.
	if sSlow.Wall < sFast.Wall+20*time.Millisecond {
		t.Errorf("network model had no effect: fast %v slow %v", sFast.Wall, sSlow.Wall)
	}
	if sSlow.ShuffleBytes != sFast.ShuffleBytes {
		t.Errorf("byte accounting changed: %d vs %d", sSlow.ShuffleBytes, sFast.ShuffleBytes)
	}
}

func TestTaskOverheadApplied(t *testing.T) {
	c := NewCluster(ClusterConfig{Workers: 4, TaskOverhead: 10 * time.Millisecond})
	out, stats, err := Run(context.Background(), c, wordCountJob(nil), SplitSlice([]string{"a", "b"}, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	for _, st := range stats.MapStats {
		if st.Duration < 10*time.Millisecond {
			t.Errorf("map task duration %v misses overhead", st.Duration)
		}
	}
}

// Speculative execution: with one pathologically slow worker, a
// speculative duplicate on a healthy worker should win and cut wall
// time well below the straggler's stretched duration.
func TestSpeculativeExecutionBeatsStraggler(t *testing.T) {
	mk := func(specAfter time.Duration) *JobStats {
		c := NewCluster(ClusterConfig{
			Workers: 2,
			// Worker 0 stretches everything 100x.
			Slowdown: func(worker int) float64 {
				if worker == 0 {
					return 100
				}
				return 1
			},
			SpeculativeAfter: specAfter,
		})
		job := Job[int, int, int, int]{
			Name: "spec",
			Map: func(_ *TaskContext, rec int, emit func(int, int)) error {
				time.Sleep(3 * time.Millisecond)
				emit(0, rec)
				return nil
			},
			Reduce: func(_ *TaskContext, _ int, vals []int, emit func(int)) error {
				emit(len(vals))
				return nil
			},
			Reducers: 1,
		}
		out, stats, err := Run(context.Background(), c, job, SplitSlice([]int{1}, 1))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || out[0] != 1 {
			t.Fatalf("out = %v", out)
		}
		return stats
	}
	slow := mk(0)                     // no speculation: straggler decides
	fast := mk(10 * time.Millisecond) // duplicate wins
	if fast.Wall >= slow.Wall {
		t.Errorf("speculation did not help: %v vs %v", fast.Wall, slow.Wall)
	}
	// The winning map attempt should be marked speculated when the
	// straggler held the first slot.
	anySpec := false
	for _, st := range append(fast.MapStats, fast.ReduceStats...) {
		if st.Speculated {
			anySpec = true
		}
	}
	if !anySpec {
		t.Error("no task recorded as speculated")
	}
}

// Speculation must not break determinism or correctness of results.
func TestSpeculativeDeterministicResults(t *testing.T) {
	c := NewCluster(ClusterConfig{Workers: 4, SpeculativeAfter: time.Microsecond})
	var lines []string
	for i := 0; i < 30; i++ {
		lines = append(lines, fmt.Sprintf("w%d w%d", i%5, i%3))
	}
	var first []string
	for trial := 0; trial < 4; trial++ {
		out, _, err := Run(context.Background(), c, wordCountJob(nil), SplitSlice(lines, 6))
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = out
			continue
		}
		for i := range out {
			if out[i] != first[i] {
				t.Fatalf("speculation broke determinism at %d", i)
			}
		}
	}
}
