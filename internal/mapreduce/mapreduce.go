// Package mapreduce is the share-nothing execution substrate the
// pipeline runs on — an in-process stand-in for the paper's Hadoop
// cluster. It models the pieces of MapReduce the paper's evaluation
// depends on:
//
//   - map tasks over input splits, executed on a bounded pool of
//     simulated worker slots;
//   - per-map-task combiners (the paper uses combiners to compute
//     local skyline candidates before the shuffle, §5.2);
//   - a hash/custom-partitioned shuffle with byte accounting, so
//     experiments can report intermediate data volume;
//   - reduce tasks with a strict map->reduce barrier, as in Hadoop;
//   - a read-only distributed cache broadcast to every task
//     (Algorithm 3 loads pivots, the sample skyline and PGmap this
//     way);
//   - straggler injection (per-worker slowdown factors) and fault
//     injection with bounded retry, to reproduce the "data straggler"
//     conditions of §3.3.
//
// The engine is deterministic for a fixed input and job definition:
// map outputs are merged in task order, keys in first-seen order, so
// runs are reproducible even though tasks execute concurrently.
package mapreduce

import (
	"context"
	"fmt"
	"sync"
	"time"

	"zskyline/internal/metrics"
)

// TaskKind distinguishes map from reduce tasks in stats.
type TaskKind int

// Task kinds.
const (
	MapTask TaskKind = iota
	ReduceTask
)

// String names the kind.
func (k TaskKind) String() string {
	if k == MapTask {
		return "map"
	}
	return "reduce"
}

// ClusterConfig describes the simulated cluster.
type ClusterConfig struct {
	// Workers is the number of concurrent task slots (think: total
	// cores across the cluster). Zero or negative selects 1.
	Workers int
	// Slowdown, if non-nil, returns a wall-clock stretch factor for a
	// worker slot (>= 1). A factor f makes every task on that slot take
	// f times as long, modelling the faulty-disk / slow-node stragglers
	// of §3.3. Nil means no stretching.
	Slowdown func(worker int) float64
	// FailTask, if non-nil, is consulted before each task attempt and
	// may return an error to simulate a task failure; the engine
	// retries on another attempt up to MaxAttempts.
	FailTask func(job string, kind TaskKind, task, attempt int) error
	// MaxAttempts bounds task retries. Zero selects 3, like Hadoop's
	// default of 4 attempts total being overkill for a simulation.
	MaxAttempts int
	// NetworkMBps, when positive, models the cluster interconnect and
	// spill disks: every map task sleeps emittedBytes/NetworkMBps after
	// running and every reduce task sleeps inputBytes/NetworkMBps
	// before running, so jobs that shuffle more intermediate data pay
	// for it in wall-clock time the way Hadoop jobs do. Zero disables
	// the model (in-process shuffle is free).
	NetworkMBps float64
	// TaskOverhead, when positive, is slept at the start of every task
	// attempt, modelling container launch / JVM startup cost.
	TaskOverhead time.Duration
	// SpeculativeAfter, when positive, enables speculative execution:
	// if a task attempt has not finished after this duration, a
	// duplicate attempt is launched on another worker slot and the
	// first completion wins — Hadoop's classic straggler mitigation.
	// Task functions must be side-effect free (ours are).
	SpeculativeAfter time.Duration
}

// Cluster is a reusable simulated cluster.
type Cluster struct {
	cfg   ClusterConfig
	slots chan int
}

// NewCluster builds a cluster with the given config.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	c := &Cluster{cfg: cfg, slots: make(chan int, cfg.Workers)}
	for i := 0; i < cfg.Workers; i++ {
		c.slots <- i
	}
	return c
}

// Workers returns the number of task slots.
func (c *Cluster) Workers() int { return c.cfg.Workers }

// TaskContext is handed to every map/combine/reduce invocation.
type TaskContext struct {
	Job    string
	Kind   TaskKind
	Task   int
	Worker int
	// Cache is the job's read-only distributed cache.
	Cache map[string]any
	// Tally receives the task's metric increments.
	Tally *metrics.Tally
}

// TaskStat records one completed task for the experiment reports.
type TaskStat struct {
	Kind          TaskKind
	Task          int
	Worker        int
	Attempts      int
	Duration      time.Duration
	InputRecords  int
	OutputRecords int
	// Speculated is true when a duplicate attempt was raced against a
	// straggling one (the stat describes the winner).
	Speculated bool
}

// JobStats aggregates a finished job.
type JobStats struct {
	Name          string
	MapStats      []TaskStat
	ReduceStats   []TaskStat
	ShuffleBytes  int64
	MapOutRecords int64
	Wall          time.Duration
	// MapWall covers the map phase up to the shuffle barrier;
	// ReduceWall covers the reduce phase after it. The two sum to Wall
	// (minus shuffle accounting, which MapWall includes).
	MapWall    time.Duration
	ReduceWall time.Duration
}

// MapDurations returns per-map-task durations in task order.
func (s *JobStats) MapDurations() []time.Duration {
	out := make([]time.Duration, len(s.MapStats))
	for i, st := range s.MapStats {
		out[i] = st.Duration
	}
	return out
}

// ReduceInputBalance summarizes reduce input sizes, the straggler
// signal the experiments report.
func (s *JobStats) ReduceInputBalance() metrics.Balance {
	loads := make([]int, len(s.ReduceStats))
	for i, st := range s.ReduceStats {
		loads[i] = st.InputRecords
	}
	return metrics.NewBalance(loads)
}

// Job defines one MapReduce job over records of type I, intermediate
// key/value pairs (K, V) and outputs O.
type Job[I any, K comparable, V any, O any] struct {
	Name string
	// Map processes one input record, emitting zero or more pairs.
	Map func(ctx *TaskContext, rec I, emit func(K, V)) error
	// Combine, if non-nil, folds one map task's values for a key before
	// the shuffle — Hadoop's combiner.
	Combine func(ctx *TaskContext, key K, vals []V) []V
	// Reduce folds all values of one key into outputs.
	Reduce func(ctx *TaskContext, key K, vals []V, emit func(O)) error
	// Partition routes a key to one of n reducers. Nil selects a
	// deterministic hash of the key's formatted form.
	Partition func(key K, n int) int
	// Reducers is the reduce-task count; zero selects the cluster's
	// worker count.
	Reducers int
	// SizeOf estimates the wire size of one pair for shuffle-byte
	// accounting. Nil selects a flat 16 bytes per record.
	SizeOf func(key K, val V) int
	// Cache is broadcast read-only to every task.
	Cache map[string]any
	// Tally receives metric increments from all tasks; may be nil.
	Tally *metrics.Tally
}

// defaultPartition hashes the key's printed form — adequate for the
// small key domains (group IDs) this library shuffles.
func defaultPartition[K comparable](key K, n int) int {
	s := fmt.Sprint(key)
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// keyedValues is one map task's combined output for one reducer.
type keyedValues[K comparable, V any] struct {
	keys []K // first-seen order
	vals map[K][]V
}

func newKeyed[K comparable, V any]() *keyedValues[K, V] {
	return &keyedValues[K, V]{vals: make(map[K][]V)}
}

func (kv *keyedValues[K, V]) add(k K, v V) {
	if _, ok := kv.vals[k]; !ok {
		kv.keys = append(kv.keys, k)
	}
	kv.vals[k] = append(kv.vals[k], v)
}

// Run executes the job on the cluster: one map task per input split,
// then job.Reducers reduce tasks after a full barrier. It returns the
// reduce outputs in deterministic (reducer, key-first-seen) order.
func Run[I any, K comparable, V any, O any](
	ctx context.Context, c *Cluster, job Job[I, K, V, O], splits [][]I,
) ([]O, *JobStats, error) {
	start := time.Now()
	stats := &JobStats{Name: job.Name}
	nRed := job.Reducers
	if nRed <= 0 {
		nRed = c.cfg.Workers
	}
	part := job.Partition
	if part == nil {
		part = defaultPartition[K]
	}
	sizeOf := job.SizeOf
	if sizeOf == nil {
		sizeOf = func(K, V) int { return 16 }
	}

	// ---- Map phase ----
	// buckets[task][reducer] holds the task's combined shuffle output.
	buckets := make([][]*keyedValues[K, V], len(splits))
	stats.MapStats = make([]TaskStat, len(splits))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for t := range splits {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			stat, out, err := runMapTask(ctx, c, &job, t, splits[t], nRed, part, sizeOf)
			if err != nil {
				setErr(fmt.Errorf("mapreduce: job %q map task %d: %w", job.Name, t, err))
				return
			}
			buckets[t] = out
			stats.MapStats[t] = stat
		}(t)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, stats, firstErr
	}
	for _, st := range stats.MapStats {
		stats.MapOutRecords += int64(st.OutputRecords)
	}
	// Shuffle byte accounting.
	var shuffle int64
	for _, taskOut := range buckets {
		for _, kv := range taskOut {
			if kv == nil {
				continue
			}
			for _, k := range kv.keys {
				for _, v := range kv.vals[k] {
					shuffle += int64(sizeOf(k, v))
				}
			}
		}
	}
	stats.ShuffleBytes = shuffle
	job.Tally.AddBytesShuffled(shuffle)
	stats.MapWall = time.Since(start)

	// ---- Reduce phase (after the barrier) ----
	type redResult struct {
		out  []O
		stat TaskStat
	}
	results := make([]redResult, nRed)
	for r := 0; r < nRed; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Deterministic merge: task order, then first-seen key order.
			merged := newKeyed[K, V]()
			for _, taskOut := range buckets {
				kv := taskOut[r]
				if kv == nil {
					continue
				}
				for _, k := range kv.keys {
					for _, v := range kv.vals[k] {
						merged.add(k, v)
					}
				}
			}
			stat, out, err := runReduceTask(ctx, c, &job, r, merged, sizeOf)
			if err != nil {
				setErr(fmt.Errorf("mapreduce: job %q reduce task %d: %w", job.Name, r, err))
				return
			}
			results[r] = redResult{out: out, stat: stat}
		}(r)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, stats, firstErr
	}
	var outs []O
	for r := 0; r < nRed; r++ {
		outs = append(outs, results[r].out...)
		stats.ReduceStats = append(stats.ReduceStats, results[r].stat)
	}
	stats.Wall = time.Since(start)
	stats.ReduceWall = stats.Wall - stats.MapWall
	return outs, stats, nil
}

// attemptResult carries one completed attempt through the speculation
// race.
type attemptResult[T any] struct {
	stat TaskStat
	out  T
	err  error
}

// speculate runs attempt once, and if it is still unfinished after the
// cluster's SpeculativeAfter delay, races a duplicate against it; the
// first completion wins. With speculation disabled it is a plain call.
func speculate[T any](c *Cluster, attempt func() (TaskStat, T, error)) (TaskStat, T, error) {
	if c.cfg.SpeculativeAfter <= 0 {
		return attempt()
	}
	ch := make(chan attemptResult[T], 2)
	launch := func() {
		go func() {
			stat, out, err := attempt()
			ch <- attemptResult[T]{stat: stat, out: out, err: err}
		}()
	}
	launch()
	timer := time.NewTimer(c.cfg.SpeculativeAfter)
	defer timer.Stop()
	launched := 1
	var firstErr error
	got := 0
	for {
		select {
		case r := <-ch:
			got++
			if r.err == nil {
				r.stat.Speculated = launched > 1
				return r.stat, r.out, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if got == launched {
				var zero T
				return TaskStat{}, zero, firstErr
			}
		case <-timer.C:
			if launched == 1 {
				launch()
				launched = 2
			}
		}
	}
}

// acquire takes a worker slot, respecting cancellation.
func (c *Cluster) acquire(ctx context.Context) (int, error) {
	select {
	case w := <-c.slots:
		return w, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func (c *Cluster) release(w int) { c.slots <- w }

// simulateIO sleeps for the simulated transfer time of n bytes.
func (c *Cluster) simulateIO(n int64) time.Duration {
	if c.cfg.NetworkMBps <= 0 || n <= 0 {
		return 0
	}
	d := time.Duration(float64(n) / (c.cfg.NetworkMBps * 1e6) * float64(time.Second))
	time.Sleep(d)
	return d
}

// stretch models a straggling worker by sleeping the extra fraction of
// the task's real duration.
func (c *Cluster) stretch(worker int, elapsed time.Duration) time.Duration {
	if c.cfg.Slowdown == nil {
		return elapsed
	}
	f := c.cfg.Slowdown(worker)
	if f <= 1 {
		return elapsed
	}
	extra := time.Duration(float64(elapsed) * (f - 1))
	time.Sleep(extra)
	return elapsed + extra
}

func runMapTask[I any, K comparable, V any, O any](
	ctx context.Context, c *Cluster, job *Job[I, K, V, O], task int, split []I,
	nRed int, part func(K, int) int, sizeOf func(K, V) int,
) (TaskStat, []*keyedValues[K, V], error) {
	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		attempt := attempt
		stat, out, err := speculate(c, func() (TaskStat, []*keyedValues[K, V], error) {
			worker, err := c.acquire(ctx)
			if err != nil {
				return TaskStat{}, nil, err
			}
			defer c.release(worker)
			return mapAttempt(c, job, task, worker, attempt, split, nRed, part, sizeOf)
		})
		if err == nil {
			return stat, out, nil
		}
		lastErr = err
	}
	return TaskStat{}, nil, fmt.Errorf("failed after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

func mapAttempt[I any, K comparable, V any, O any](
	c *Cluster, job *Job[I, K, V, O], task, worker, attempt int, split []I,
	nRed int, part func(K, int) int, sizeOf func(K, V) int,
) (TaskStat, []*keyedValues[K, V], error) {
	tctx := &TaskContext{Job: job.Name, Kind: MapTask, Task: task, Worker: worker,
		Cache: job.Cache, Tally: job.Tally}
	if c.cfg.FailTask != nil {
		if err := c.cfg.FailTask(job.Name, MapTask, task, attempt); err != nil {
			return TaskStat{}, nil, err
		}
	}
	begin := time.Now()
	if c.cfg.TaskOverhead > 0 {
		time.Sleep(c.cfg.TaskOverhead)
	}
	local := newKeyed[K, V]()
	emit := func(k K, v V) { local.add(k, v) }
	for _, rec := range split {
		if err := job.Map(tctx, rec, emit); err != nil {
			return TaskStat{}, nil, err
		}
	}
	// Combiner, per key, before the shuffle.
	outRecords := 0
	out := make([]*keyedValues[K, V], nRed)
	for _, k := range local.keys {
		vals := local.vals[k]
		if job.Combine != nil {
			vals = job.Combine(tctx, k, vals)
		}
		r := part(k, nRed)
		if r < 0 || r >= nRed {
			return TaskStat{}, nil, fmt.Errorf("partitioner returned %d for %d reducers", r, nRed)
		}
		if out[r] == nil {
			out[r] = newKeyed[K, V]()
		}
		for _, v := range vals {
			out[r].add(k, v)
			outRecords++
		}
	}
	job.Tally.AddRecordsEmitted(int64(outRecords))
	var emittedBytes int64
	for _, kv := range out {
		if kv == nil {
			continue
		}
		for _, k := range kv.keys {
			for _, v := range kv.vals[k] {
				emittedBytes += int64(sizeOf(k, v))
			}
		}
	}
	c.simulateIO(emittedBytes)
	dur := c.stretch(worker, time.Since(begin))
	return TaskStat{Kind: MapTask, Task: task, Worker: worker, Attempts: attempt,
		Duration: dur, InputRecords: len(split), OutputRecords: outRecords}, out, nil
}

func runReduceTask[I any, K comparable, V any, O any](
	ctx context.Context, c *Cluster, job *Job[I, K, V, O], task int, merged *keyedValues[K, V],
	sizeOf func(K, V) int,
) (TaskStat, []O, error) {
	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		attempt := attempt
		stat, out, err := speculate(c, func() (TaskStat, []O, error) {
			worker, err := c.acquire(ctx)
			if err != nil {
				return TaskStat{}, nil, err
			}
			defer c.release(worker)
			return reduceAttempt(c, job, task, worker, attempt, merged, sizeOf)
		})
		if err == nil {
			return stat, out, nil
		}
		lastErr = err
	}
	return TaskStat{}, nil, fmt.Errorf("failed after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

func reduceAttempt[I any, K comparable, V any, O any](
	c *Cluster, job *Job[I, K, V, O], task, worker, attempt int, merged *keyedValues[K, V],
	sizeOf func(K, V) int,
) (TaskStat, []O, error) {
	tctx := &TaskContext{Job: job.Name, Kind: ReduceTask, Task: task, Worker: worker,
		Cache: job.Cache, Tally: job.Tally}
	if c.cfg.FailTask != nil {
		if err := c.cfg.FailTask(job.Name, ReduceTask, task, attempt); err != nil {
			return TaskStat{}, nil, err
		}
	}
	begin := time.Now()
	if c.cfg.TaskOverhead > 0 {
		time.Sleep(c.cfg.TaskOverhead)
	}
	var inBytes int64
	for _, k := range merged.keys {
		for _, v := range merged.vals[k] {
			inBytes += int64(sizeOf(k, v))
		}
	}
	c.simulateIO(inBytes)
	var out []O
	emit := func(o O) { out = append(out, o) }
	inRecords := 0
	for _, k := range merged.keys {
		vals := merged.vals[k]
		inRecords += len(vals)
		if err := job.Reduce(tctx, k, vals, emit); err != nil {
			return TaskStat{}, nil, err
		}
	}
	dur := c.stretch(worker, time.Since(begin))
	return TaskStat{Kind: ReduceTask, Task: task, Worker: worker, Attempts: attempt,
		Duration: dur, InputRecords: inRecords, OutputRecords: len(out)}, out, nil
}

// SplitSlice cuts input into n near-equal contiguous splits (at least
// one record per split; fewer splits when input is small).
func SplitSlice[I any](in []I, n int) [][]I {
	if n < 1 {
		n = 1
	}
	if n > len(in) {
		n = len(in)
	}
	if n == 0 {
		return nil
	}
	out := make([][]I, 0, n)
	for i := 0; i < n; i++ {
		lo := i * len(in) / n
		hi := (i + 1) * len(in) / n
		if lo < hi {
			out = append(out, in[lo:hi:hi])
		}
	}
	return out
}
