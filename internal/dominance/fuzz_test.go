package dominance

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// FuzzProviderDescriptor feeds arbitrary strings through the CLI
// grammar and requires every accepted descriptor to round-trip: text
// -> Descriptor -> String -> Descriptor must be a fixed point after
// one normalization, the descriptor must reconstruct a provider whose
// own descriptor matches, and the gob wire form must decode to the
// same descriptor.
func FuzzProviderDescriptor(f *testing.F) {
	f.Add("pareto")
	f.Add("flex:1,2,1")
	f.Add("flex:1,0;0,1;2,3")
	f.Add("kdom:3")
	f.Add("robust")
	f.Add("robust:0.25")
	f.Add("flex:0.1,1e-3")
	f.Add("kdom:999")
	f.Add("bogus:stuff")
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDescriptor(s)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		// Text round trip: String must re-parse to the same descriptor.
		d2, err := ParseDescriptor(d.String())
		if err != nil {
			t.Fatalf("String %q of accepted input %q does not re-parse: %v", d.String(), s, err)
		}
		if !reflect.DeepEqual(d2, d) {
			t.Fatalf("text round trip drifted: %q -> %+v -> %q -> %+v", s, d, d.String(), d2)
		}
		// Provider round trip: descriptor must build a provider that
		// reports an equal descriptor.
		prov, err := d.Provider()
		if err != nil {
			t.Fatalf("accepted descriptor %+v does not build a provider: %v", d, err)
		}
		if got := prov.Descriptor(); !reflect.DeepEqual(got, d) {
			t.Fatalf("provider round trip drifted: %+v -> %+v", d, got)
		}
		// Wire round trip: gob encode/decode must be exact.
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(d); err != nil {
			t.Fatalf("gob encode %+v: %v", d, err)
		}
		var d3 Descriptor
		if err := gob.NewDecoder(&buf).Decode(&d3); err != nil {
			t.Fatalf("gob decode: %v", err)
		}
		if !reflect.DeepEqual(d3, d) {
			t.Fatalf("gob round trip drifted: %+v -> %+v", d, d3)
		}
	})
}
