package dominance

import (
	"fmt"
	"sort"
	"sync"
)

// Factory reconstructs a provider from its wire descriptor, validating
// the parameters.
type Factory func(Descriptor) (Provider, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{
		KindPareto: func(d Descriptor) (Provider, error) { return Pareto{}, nil },
		KindFlex:   func(d Descriptor) (Provider, error) { return NewFlex(d.Weights) },
		KindKDom:   func(d Descriptor) (Provider, error) { return NewKDom(d.K) },
		KindRobust: func(d Descriptor) (Provider, error) { return NewRobust(d.Rho) },
	}
)

// Register adds (or replaces) a provider kind in the registry, making
// descriptors of that kind reconstructible on this process. Every peer
// that may receive the descriptor over the wire must register the same
// kind.
func Register(kind string, f Factory) error {
	if kind == "" || f == nil {
		return fmt.Errorf("dominance: Register needs a kind and a factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[kind] = f
	return nil
}

// Kinds lists the registered provider kinds, sorted.
func Kinds() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// lookup resolves a kind to its factory; the empty kind means Pareto.
func lookup(kind string) (Factory, bool) {
	if kind == "" {
		kind = KindPareto
	}
	registryMu.RLock()
	defer registryMu.RUnlock()
	f, ok := registry[kind]
	return f, ok
}
