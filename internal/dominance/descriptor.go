package dominance

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Registry kinds of the built-in providers.
const (
	KindPareto = "pareto"
	KindFlex   = "flex"
	KindKDom   = "kdom"
	KindRobust = "robust"
)

// Descriptor is the serializable wire form of a provider: a plain
// struct of plain fields, so it crosses process boundaries embedded in
// the rule broadcast (the gob-encoded rule blob) without custom
// codecs. Unused
// parameter fields stay at their zero value for kinds that do not need
// them.
//
// The textual form (String/Parse) doubles as the CLI flag grammar:
//
//	pareto
//	flex:w1,w2,...[;w1,w2,...]*   (one weight vector per ';' group)
//	kdom:k
//	robust[:rho]
type Descriptor struct {
	// Kind is the registry kind ("pareto", "flex", "kdom", "robust").
	// An empty Kind means Pareto, so zero-valued rule payloads from
	// older peers keep their meaning.
	Kind string
	// K is the k-dominance parameter (Kind "kdom").
	K int
	// Rho is the robustness margin (Kind "robust").
	Rho float64
	// Weights is the scoring family, one weight vector per entry (Kind
	// "flex").
	Weights [][]float64
}

// validate checks the parameter ranges for the descriptor's kind.
func (d Descriptor) validate() error {
	switch d.Kind {
	case "", KindPareto:
		return nil
	case KindFlex:
		if len(d.Weights) == 0 {
			return fmt.Errorf("dominance: flex needs at least one weight vector")
		}
		dims := len(d.Weights[0])
		if dims == 0 {
			return fmt.Errorf("dominance: flex weight vector 0 is empty")
		}
		for i, w := range d.Weights {
			if len(w) != dims {
				return fmt.Errorf("dominance: flex weight vector %d has %d weights, want %d", i, len(w), dims)
			}
			positive := false
			for j, v := range w {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					return fmt.Errorf("dominance: flex weight %d[%d] = %v is not a finite non-negative number", i, j, v)
				}
				if v > 0 {
					positive = true
				}
			}
			if !positive {
				return fmt.Errorf("dominance: flex weight vector %d is all-zero", i)
			}
		}
		return nil
	case KindKDom:
		if d.K < 1 {
			return fmt.Errorf("dominance: kdom k must be >= 1, got %d", d.K)
		}
		return nil
	case KindRobust:
		if math.IsNaN(d.Rho) || math.IsInf(d.Rho, 0) || d.Rho < 0 {
			return fmt.Errorf("dominance: robust rho must be a finite non-negative number, got %v", d.Rho)
		}
		return nil
	default:
		return fmt.Errorf("dominance: unknown provider kind %q", d.Kind)
	}
}

// Provider reconstructs the provider the descriptor describes by
// consulting the registry, validating its parameters. The inverse of
// Provider.Descriptor.
func (d Descriptor) Provider() (Provider, error) {
	f, ok := lookup(d.Kind)
	if !ok {
		return nil, fmt.Errorf("dominance: unknown provider kind %q (registered: %v)", d.Kind, Kinds())
	}
	return f(d)
}

// String renders the descriptor in the CLI grammar, exactly
// re-parseable by Parse (floats use the shortest exact decimal form).
func (d Descriptor) String() string {
	switch d.Kind {
	case "", KindPareto:
		return KindPareto
	case KindFlex:
		var b strings.Builder
		b.WriteString(KindFlex)
		b.WriteByte(':')
		for i, w := range d.Weights {
			if i > 0 {
				b.WriteByte(';')
			}
			for j, v := range w {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		return b.String()
	case KindKDom:
		return fmt.Sprintf("%s:%d", KindKDom, d.K)
	case KindRobust:
		if d.Rho == 0 {
			return KindRobust
		}
		return KindRobust + ":" + strconv.FormatFloat(d.Rho, 'g', -1, 64)
	default:
		return d.Kind
	}
}

// ParseDescriptor parses the CLI grammar (see Descriptor) into a
// validated descriptor.
func ParseDescriptor(s string) (Descriptor, error) {
	kind, arg := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		kind, arg = s[:i], s[i+1:]
	}
	kind = strings.TrimSpace(kind)
	var d Descriptor
	switch kind {
	case "", KindPareto:
		d.Kind = KindPareto
		if arg != "" {
			return d, fmt.Errorf("dominance: pareto takes no parameter, got %q", arg)
		}
	case KindFlex:
		d.Kind = KindFlex
		if strings.TrimSpace(arg) == "" {
			return d, fmt.Errorf("dominance: flex needs weight vectors, e.g. flex:1,2,1")
		}
		for _, group := range strings.Split(arg, ";") {
			var w []float64
			for _, f := range strings.Split(group, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if err != nil {
					return d, fmt.Errorf("dominance: flex weight %q: %v", f, err)
				}
				w = append(w, v)
			}
			d.Weights = append(d.Weights, w)
		}
	case KindKDom:
		d.Kind = KindKDom
		k, err := strconv.Atoi(strings.TrimSpace(arg))
		if err != nil {
			return d, fmt.Errorf("dominance: kdom needs an integer k, got %q", arg)
		}
		d.K = k
	case KindRobust:
		d.Kind = KindRobust
		if strings.TrimSpace(arg) != "" {
			rho, err := strconv.ParseFloat(strings.TrimSpace(arg), 64)
			if err != nil {
				return d, fmt.Errorf("dominance: robust rho %q: %v", arg, err)
			}
			d.Rho = rho
		}
	default:
		return d, fmt.Errorf("dominance: unknown provider kind %q (want pareto|flex:w1,w2,…|kdom:k|robust[:rho])", kind)
	}
	if err := d.validate(); err != nil {
		return d, err
	}
	return d, nil
}

// Parse parses the CLI grammar directly into a provider.
func Parse(s string) (Provider, error) {
	d, err := ParseDescriptor(s)
	if err != nil {
		return nil, err
	}
	return d.Provider()
}
