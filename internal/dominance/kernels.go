package dominance

import (
	"sort"

	"zskyline/internal/metrics"
	"zskyline/internal/point"
)

// Generic skyline kernels parameterized by a Provider. They are the
// fallback path for non-Pareto relations: callers on a hot path should
// route IsPareto providers to the hardcoded kernels of package seq /
// zbtree, which these kernels match point-for-point on the classic
// relation (pinned by the property tests).

// SkylineBlock computes the exact provider skyline of b, compacting
// survivors into a fresh block.
//
// When the relation implies Pareto, rows are processed in coordinate-
// sum order, which is then a topological order for the provider (a
// dominator always has a strictly smaller sum), so the window is
// append-only — the seq.SB strategy. Otherwise rows are processed in
// input order with window eviction — the seq.BNL strategy. For
// non-transitive relations the window is a candidate superset, so a
// final verification pass retests every candidate against the full
// block; elimination by a real row is sound under any irreflexive
// relation, which makes the combined result exact.
func SkylineBlock(prov Provider, b point.Block, tally *metrics.Tally) point.Block {
	n := b.Len()
	if n == 0 {
		return point.Block{Dims: b.Dims}
	}
	caps := prov.Caps()
	var window []int32
	var tests int64
	if caps.ImpliesPareto {
		sums := make([]float64, n)
		perm := make([]int32, n)
		for i := 0; i < n; i++ {
			sums[i] = point.SumCoords(b.Row(i))
			perm[i] = int32(i)
		}
		sort.SliceStable(perm, func(i, j int) bool { return sums[perm[i]] < sums[perm[j]] })
		window = make([]int32, 0, 64)
		for _, ri := range perm {
			dominated := false
			for _, wi := range window {
				tests++
				if prov.DominatesRows(b, int(wi), b, int(ri)) {
					dominated = true
					break
				}
			}
			if !dominated {
				window = append(window, ri)
			}
		}
	} else {
		window = make([]int32, 0, 64)
		for i := 0; i < n; i++ {
			dominated := false
			w := window[:0]
			for k, wi := range window {
				tests++
				if prov.DominatesRows(b, int(wi), b, i) {
					dominated = true
					w = append(w, window[k:]...)
					break
				}
				tests++
				if prov.DominatesRows(b, i, b, int(wi)) {
					continue // evict the window row
				}
				w = append(w, wi)
			}
			window = w
			if !dominated {
				window = append(window, int32(i))
			}
		}
	}
	if !caps.Transitive {
		window, tests = verifyRows(prov, b, window, tests)
	}
	tally.AddDominanceTests(tests)
	return compactRows(b, window)
}

// verifyRows retests candidate rows against the full block, dropping
// any candidate dominated by a different row — the second scan of the
// Two-Scan Algorithm, required whenever the relation is not
// transitive.
func verifyRows(prov Provider, b point.Block, cands []int32, tests int64) ([]int32, int64) {
	n := b.Len()
	kept := cands[:0]
	for _, ci := range cands {
		ok := true
		for j := 0; j < n; j++ {
			if j == int(ci) {
				continue
			}
			tests++
			if prov.DominatesRows(b, j, b, int(ci)) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, ci)
		}
	}
	return kept, tests
}

// VerifyBlock retests every row of cands against the full block all,
// keeping only rows no row of all dominates. Rows of cands are matched
// to rows of all by coordinate equality so a candidate is never
// eliminated by its own copy; across all four built-in providers (and
// any irreflexive relation) coordinate-equal points never dominate
// each other, so one surviving copy in all suffices to certify the
// candidate. This is the pipeline-level verification pass for
// non-transitive providers: local/merge phases produce candidate
// supersets, and elimination against the full dataset makes the final
// result exact.
func VerifyBlock(prov Provider, cands, all point.Block, tally *metrics.Tally) point.Block {
	n := cands.Len()
	if n == 0 {
		return point.Block{Dims: cands.Dims}
	}
	m := all.Len()
	kept := make([]int32, 0, n)
	var tests int64
	for i := 0; i < n; i++ {
		ok := true
		for j := 0; j < m; j++ {
			tests++
			if prov.DominatesRows(all, j, cands, i) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, int32(i))
		}
	}
	tally.AddDominanceTests(tests)
	return compactRows(cands, kept)
}

// FilterBlock removes from candidates every row dominated by some row
// of against, compacting survivors — the provider-generic counterpart
// of seq.FilterBlock. Because eliminations cite a real point, the
// filter is membership-sound under any irreflexive relation,
// transitive or not.
func FilterBlock(prov Provider, candidates, against point.Block, tally *metrics.Tally) point.Block {
	n := candidates.Len()
	if n == 0 {
		return point.Block{Dims: candidates.Dims}
	}
	m := against.Len()
	kept := make([]int32, 0, n)
	var tests int64
	for i := 0; i < n; i++ {
		dominated := false
		for j := 0; j < m; j++ {
			tests++
			if prov.DominatesRows(against, j, candidates, i) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, int32(i))
		}
	}
	tally.AddDominanceTests(tests)
	return compactRows(candidates, kept)
}

// Skyline is the slice adapter of SkylineBlock.
func Skyline(prov Provider, pts []point.Point, tally *metrics.Tally) []point.Point {
	if len(pts) == 0 {
		return nil
	}
	return SkylineBlock(prov, point.BlockOf(len(pts[0]), pts), tally).Points()
}

// BruteForce is the quadratic per-provider oracle: keep p iff no other
// point dominates it under prov. The reference that every executor is
// property-tested against.
func BruteForce(prov Provider, pts []point.Point) []point.Point {
	var out []point.Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if prov.Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// compactRows copies the selected rows of b into a fresh block, so
// results never pin the input arena.
func compactRows(b point.Block, rows []int32) point.Block {
	out := point.Block{Dims: b.Dims}
	if len(rows) == 0 {
		return out
	}
	out.Data = make([]float64, 0, len(rows)*b.Dims)
	for _, r := range rows {
		out.Data = append(out.Data, b.Row(int(r))...)
	}
	return out
}
