package dominance

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"

	"zskyline/internal/point"
)

// testProviders returns one instance of each built-in provider,
// parameterized for d-dimensional data.
func testProviders(t testing.TB, d int) []Provider {
	t.Helper()
	flex, err := NewFlex([][]float64{allOnes(d), firstHeavy(d)})
	if err != nil {
		t.Fatalf("NewFlex: %v", err)
	}
	k := d - 1
	if k < 1 {
		k = 1
	}
	kdom, err := NewKDom(k)
	if err != nil {
		t.Fatalf("NewKDom: %v", err)
	}
	robust, err := NewRobust(0.05)
	if err != nil {
		t.Fatalf("NewRobust: %v", err)
	}
	return []Provider{Pareto{}, flex, kdom, robust}
}

func allOnes(d int) []float64 {
	w := make([]float64, d)
	for i := range w {
		w[i] = 1
	}
	return w
}

func firstHeavy(d int) []float64 {
	w := allOnes(d)
	w[0] = 4
	return w
}

func randomPoints(rng *rand.Rand, n, d int) []point.Point {
	pts := make([]point.Point, n)
	for i := range pts {
		p := make(point.Point, d)
		for j := range p {
			// A coarse grid provokes ties, duplicates, and margin
			// boundary cases.
			p[j] = float64(rng.Intn(8)) / 4
		}
		pts[i] = p
	}
	// Add exact duplicates of a few points.
	for i := 0; i < n/10; i++ {
		pts = append(pts, pts[rng.Intn(n)].Clone())
	}
	return pts
}

// TestProviderCapsSound checks the declared capability flags against
// their definitions on random pairs and triples: ParetoImplies,
// ImpliesPareto, transitivity, and irreflexivity (including
// coordinate-equal copies).
func TestProviderCapsSound(t *testing.T) {
	const d = 4
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 300, d)
	for _, prov := range testProviders(t, d) {
		caps := prov.Caps()
		for trial := 0; trial < 4000; trial++ {
			p := pts[rng.Intn(len(pts))]
			q := pts[rng.Intn(len(pts))]
			r := pts[rng.Intn(len(pts))]
			if caps.ParetoImplies && point.Dominates(p, q) && !prov.Dominates(p, q) {
				t.Fatalf("%s: ParetoImplies violated: %v pareto-dominates %v but provider disagrees", prov.Name(), p, q)
			}
			if caps.ImpliesPareto && prov.Dominates(p, q) && !point.Dominates(p, q) {
				t.Fatalf("%s: ImpliesPareto violated: %v provider-dominates %v but not pareto", prov.Name(), p, q)
			}
			if caps.Transitive && prov.Dominates(p, q) && prov.Dominates(q, r) && !prov.Dominates(p, r) {
				t.Fatalf("%s: transitivity violated on %v, %v, %v", prov.Name(), p, q, r)
			}
			if prov.Dominates(p, p) {
				t.Fatalf("%s: relation is not irreflexive at %v", prov.Name(), p)
			}
			if p.Equal(q) && prov.Dominates(p, q) {
				t.Fatalf("%s: coordinate-equal points %v dominate each other", prov.Name(), p)
			}
		}
	}
}

// TestKDomNotTransitiveWitness pins the reason KDom declares
// Transitive=false with a concrete 3-cycle.
func TestKDomNotTransitiveWitness(t *testing.T) {
	kd, err := NewKDom(2)
	if err != nil {
		t.Fatal(err)
	}
	// Classic k-dominance cycle for k=2, d=3.
	a := point.Point{1, 1, 3}
	b := point.Point{1, 3, 1}
	c := point.Point{3, 1, 1}
	if !kd.Dominates(a, b) || !kd.Dominates(b, c) || !kd.Dominates(c, a) {
		t.Fatalf("expected a 2-dominance cycle among %v %v %v", a, b, c)
	}
}

// TestDominatesRowsMatchesDominates pins the stride test to the
// point-pair test for every provider.
func TestDominatesRowsMatchesDominates(t *testing.T) {
	const d = 4
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(rng, 200, d)
	b := point.BlockOf(d, pts)
	for _, prov := range testProviders(t, d) {
		for trial := 0; trial < 3000; trial++ {
			i, j := rng.Intn(len(pts)), rng.Intn(len(pts))
			want := prov.Dominates(pts[i], pts[j])
			if got := prov.DominatesRows(b, i, b, j); got != want {
				t.Fatalf("%s: DominatesRows(%d,%d)=%v, Dominates=%v", prov.Name(), i, j, got, want)
			}
		}
	}
}

// TestSkylineBlockMatchesBruteForce is the kernel-level oracle test:
// the generic window kernel (sum-order or BNL, plus verification for
// non-transitive relations) must agree with the quadratic oracle as a
// multiset for every provider.
func TestSkylineBlockMatchesBruteForce(t *testing.T) {
	const d = 4
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 17, 120} {
		pts := randomPoints(rng, n, d)
		if n == 0 {
			pts = nil
		}
		b := point.BlockOf(d, pts)
		for _, prov := range testProviders(t, d) {
			got := SkylineBlock(prov, b, nil).Points()
			want := BruteForce(prov, pts)
			assertSameMultiset(t, prov.Name(), got, want)
		}
	}
}

// TestFilterBlockSound checks that FilterBlock removes exactly the
// rows dominated by some row of against.
func TestFilterBlockSound(t *testing.T) {
	const d = 3
	rng := rand.New(rand.NewSource(4))
	cands := randomPoints(rng, 60, d)
	against := randomPoints(rng, 40, d)
	cb := point.BlockOf(d, cands)
	ab := point.BlockOf(d, against)
	for _, prov := range testProviders(t, d) {
		got := FilterBlock(prov, cb, ab, nil).Points()
		var want []point.Point
		for _, p := range cands {
			dominated := false
			for _, q := range against {
				if prov.Dominates(q, p) {
					dominated = true
					break
				}
			}
			if !dominated {
				want = append(want, p)
			}
		}
		assertSameMultiset(t, prov.Name(), got, want)
	}
}

// TestVerifyBlockExact checks that verifying an inflated candidate set
// (the full dataset) against itself yields exactly the oracle result.
func TestVerifyBlockExact(t *testing.T) {
	const d = 4
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 90, d)
	b := point.BlockOf(d, pts)
	for _, prov := range testProviders(t, d) {
		got := VerifyBlock(prov, b, b, nil).Points()
		want := BruteForce(prov, pts)
		assertSameMultiset(t, prov.Name(), got, want)
	}
}

// TestDescriptorRoundTrip pins Provider -> Descriptor -> Provider and
// the textual grammar Descriptor -> String -> Parse.
func TestDescriptorRoundTrip(t *testing.T) {
	for _, prov := range testProviders(t, 4) {
		d := prov.Descriptor()
		back, err := d.Provider()
		if err != nil {
			t.Fatalf("%s: Descriptor().Provider(): %v", prov.Name(), err)
		}
		if !reflect.DeepEqual(back.Descriptor(), d) {
			t.Fatalf("%s: descriptor drifted: %+v -> %+v", prov.Name(), d, back.Descriptor())
		}
		if back.Caps() != prov.Caps() {
			t.Fatalf("%s: caps drifted over the wire", prov.Name())
		}
		d2, err := ParseDescriptor(d.String())
		if err != nil {
			t.Fatalf("%s: Parse(%q): %v", prov.Name(), d.String(), err)
		}
		if !reflect.DeepEqual(d2, d) {
			t.Fatalf("%s: text round trip drifted: %+v -> %q -> %+v", prov.Name(), d, d.String(), d2)
		}
	}
}

// TestDescriptorGobRoundTrip checks the wire form survives gob — the
// encoding the rule broadcast uses.
func TestDescriptorGobRoundTrip(t *testing.T) {
	for _, prov := range testProviders(t, 4) {
		d := prov.Descriptor()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(d); err != nil {
			t.Fatalf("%s: gob encode: %v", prov.Name(), err)
		}
		var got Descriptor
		if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
			t.Fatalf("%s: gob decode: %v", prov.Name(), err)
		}
		if !reflect.DeepEqual(got, d) {
			t.Fatalf("%s: gob round trip drifted: %+v -> %+v", prov.Name(), d, got)
		}
	}
}

// TestParseRejectsBadInput enumerates grammar and validation errors.
func TestParseRejectsBadInput(t *testing.T) {
	for _, s := range []string{
		"nope", "pareto:1", "flex", "flex:", "flex:a,b", "flex:1,2;3",
		"flex:0,0", "flex:-1,2", "kdom", "kdom:x", "kdom:0", "kdom:-3",
		"robust:x", "robust:-0.5", "robust:NaN",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error, got none", s)
		}
	}
}

// TestParseAccepts covers the documented grammar.
func TestParseAccepts(t *testing.T) {
	for s, kind := range map[string]string{
		"pareto":       KindPareto,
		"":             KindPareto,
		"flex:1,2,1":   KindFlex,
		"flex:1,0;0,1": KindFlex,
		"flex: 1 , 2":  KindFlex,
		"kdom:3":       KindKDom,
		"robust":       KindRobust,
		"robust:0.25":  KindRobust,
	} {
		prov, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if prov.Name() != kind {
			t.Fatalf("Parse(%q) = %s, want %s", s, prov.Name(), kind)
		}
	}
}

// TestRegistryExtension registers a custom kind and reconstructs it
// from a descriptor.
func TestRegistryExtension(t *testing.T) {
	if err := Register("test-custom", func(d Descriptor) (Provider, error) {
		return Pareto{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	prov, err := Descriptor{Kind: "test-custom"}.Provider()
	if err != nil {
		t.Fatalf("custom kind: %v", err)
	}
	if prov == nil {
		t.Fatal("custom kind returned nil provider")
	}
	found := false
	for _, k := range Kinds() {
		if k == "test-custom" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Kinds() = %v missing test-custom", Kinds())
	}
}

// TestIsPareto pins the fast-path detection.
func TestIsPareto(t *testing.T) {
	if !IsPareto(nil) || !IsPareto(Pareto{}) {
		t.Fatal("nil and Pareto{} must be the fast path")
	}
	kd, _ := NewKDom(2)
	if IsPareto(kd) {
		t.Fatal("kdom must not take the Pareto fast path")
	}
}

func assertSameMultiset(t *testing.T, label string, got, want []point.Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	count := map[string]int{}
	for _, p := range want {
		count[p.String()]++
	}
	for _, p := range got {
		count[p.String()]--
		if count[p.String()] < 0 {
			t.Fatalf("%s: unexpected point %v in result", label, p)
		}
	}
}
