// Package dominance makes the dominance relation — the innermost
// predicate of every skyline kernel — pluggable. A Provider bundles a
// point-pair test, a block-row test over flat []float64 strides, a set
// of capability flags that tell index structures which Z-region pruning
// rules remain sound, and a serializable wire descriptor so a relation
// chosen on the coordinator reaches every distributed worker.
//
// Four providers ship with the library:
//
//   - Pareto: the classic relation (smaller is better, no worse
//     everywhere, strictly better somewhere). The zero-overhead default:
//     kernels detect it with IsPareto and keep their hardcoded fast
//     paths.
//   - Flex: F-dominance under a family of monotone weighted-sum scoring
//     functions (De Lorenzis & Martinenghi): p F-dominates q when every
//     scoring function weakly prefers p and at least one strictly does.
//     The flexible skyline is a subset of the Pareto skyline.
//   - KDom: k-dominance (Chan et al., SIGMOD 2006): no worse on at
//     least k of d dimensions, strictly better on one of them. Not
//     transitive — pipelines must re-verify candidates against the full
//     dataset.
//   - Robust: margin dominance: p dominates q only when p beats q by
//     more than Rho in every dimension, the skyline under measurement
//     uncertainty. The robust skyline is a superset of the Pareto
//     skyline.
//
// Capability soundness (the contract index structures rely on):
//
//   - ParetoImplies: Pareto dominance implies provider dominance.
//     Gates every *positive* grid cut: "this region's max corner is
//     grid-dominated, so everything inside is Pareto-dominated" only
//     eliminates under the provider if Pareto elimination transfers.
//   - ImpliesPareto: provider dominance implies Pareto dominance.
//     Gates every *negative* grid cut: "nothing in this region can
//     Pareto-dominate p, so skip it" only skips provider dominators if
//     every provider dominator is also a Pareto dominator. It also
//     makes coordinate-sum order a topological order for the provider,
//     which the sort-based kernels' append-only window requires.
//   - Transitive: the relation is a strict partial order. Without it,
//     window algorithms and partition/merge pipelines produce candidate
//     supersets that must be verified against the full dataset
//     (elimination by a real dataset point is always sound; skipping
//     the final verification is not).
package dominance

import (
	"zskyline/internal/point"
)

// Caps declares which structural properties of Pareto dominance a
// provider preserves; index structures consult them before reusing
// Pareto-derived pruning rules. See the package comment for the exact
// soundness contract of each flag.
type Caps struct {
	// ParetoImplies: if p Pareto-dominates q then p provider-dominates
	// q. Enables positive region cuts and Pareto-based pre-filters
	// (e.g. the sample-skyline map filter).
	ParetoImplies bool
	// ImpliesPareto: if p provider-dominates q then p Pareto-dominates
	// q. Enables negative region cuts and sum-order windows.
	ImpliesPareto bool
	// Transitive: the relation is transitive (with irreflexivity, a
	// strict partial order). Required to skip the final full-dataset
	// verification pass.
	Transitive bool
}

// ZPrunable reports whether both directions of grid pruning are sound,
// i.e. the provider agrees with Pareto on every comparable pair.
func (c Caps) ZPrunable() bool { return c.ParetoImplies && c.ImpliesPareto }

// Provider is a pluggable dominance relation. Implementations must be
// irreflexive (no point dominates itself or a coordinate-equal copy)
// and must answer identically through Dominates and DominatesRows.
// Providers are immutable after construction and safe for concurrent
// use.
type Provider interface {
	// Name returns the registry kind ("pareto", "flex", ...).
	Name() string
	// Dominates reports whether p dominates q under this relation.
	Dominates(p, q point.Point) bool
	// DominatesRows reports whether row i of a dominates row j of b,
	// reading the flat strides directly.
	DominatesRows(a point.Block, i int, b point.Block, j int) bool
	// Caps declares which Pareto pruning rules stay sound.
	Caps() Caps
	// Descriptor returns the serializable wire form; it must
	// reconstruct an equivalent provider via Descriptor.Provider.
	Descriptor() Descriptor
}

// Pareto is the classic skyline dominance relation — the default
// provider and the zero-overhead fast path (kernels special-case it via
// IsPareto and keep their hardcoded loops).
type Pareto struct{}

// Name implements Provider.
func (Pareto) Name() string { return KindPareto }

// Dominates implements Provider via the exact float test of package
// point.
func (Pareto) Dominates(p, q point.Point) bool { return point.Dominates(p, q) }

// DominatesRows implements Provider over flat strides.
func (Pareto) DominatesRows(a point.Block, i int, b point.Block, j int) bool {
	return point.DominatesRows(a, i, b, j)
}

// Caps implements Provider: Pareto trivially preserves every Pareto
// property.
func (Pareto) Caps() Caps {
	return Caps{ParetoImplies: true, ImpliesPareto: true, Transitive: true}
}

// Descriptor implements Provider.
func (Pareto) Descriptor() Descriptor { return Descriptor{Kind: KindPareto} }

// IsPareto reports whether prov is the classic relation (or nil, which
// every layer treats as Pareto). Kernels use it to route to their
// hardcoded fast path, keeping the default configuration allocation-
// and branch-identical to the pre-provider code.
func IsPareto(prov Provider) bool {
	if prov == nil {
		return true
	}
	_, ok := prov.(Pareto)
	return ok
}

// Flex is F-dominance under a finite family of monotone weighted-sum
// scoring functions: p F-dominates q when w·p <= w·q for every weight
// vector w in the family and w·p < w·q for at least one. All weights
// must be non-negative (so the functions are monotone) and every
// vector must have at least one positive weight.
type Flex struct {
	weights [][]float64
	caps    Caps
}

// NewFlex validates the weight family and builds a Flex provider. At
// least one vector is required; vectors must share one length, contain
// only finite non-negative weights, and not be all-zero.
func NewFlex(weights [][]float64) (*Flex, error) {
	d := Descriptor{Kind: KindFlex, Weights: weights}
	if err := d.validate(); err != nil {
		return nil, err
	}
	ws := make([][]float64, len(weights))
	for i, w := range weights {
		ws[i] = append([]float64(nil), w...)
	}
	return &Flex{weights: ws, caps: flexCaps(ws)}, nil
}

// flexCaps derives the capability flags from the weight family.
// ParetoImplies needs every dimension to carry positive weight in some
// vector: a Pareto improvement strict only in dimension j yields a
// strict score improvement only through a vector with w[j] > 0.
// ImpliesPareto holds exactly when the family constrains every
// dimension independently, which a weighted-sum family cannot certify
// in general, so it is left false. F-dominance is transitive: weak
// inequalities compose per function and strictness survives through
// the strict function of the first pair.
func flexCaps(ws [][]float64) Caps {
	dims := len(ws[0])
	covered := make([]bool, dims)
	for _, w := range ws {
		for j, v := range w {
			if v > 0 {
				covered[j] = true
			}
		}
	}
	paretoImplies := true
	for _, c := range covered {
		if !c {
			paretoImplies = false
			break
		}
	}
	return Caps{ParetoImplies: paretoImplies, ImpliesPareto: false, Transitive: true}
}

// Name implements Provider.
func (f *Flex) Name() string { return KindFlex }

// Dominates implements Provider: all scores no worse, one strictly
// better. Points whose dimensionality does not match the weight
// vectors are never comparable.
func (f *Flex) Dominates(p, q point.Point) bool {
	if len(p) != len(q) || len(p) != len(f.weights[0]) {
		return false
	}
	strict := false
	for _, w := range f.weights {
		sp, sq := 0.0, 0.0
		for i, wi := range w {
			sp += wi * p[i]
			sq += wi * q[i]
		}
		if sp > sq {
			return false
		}
		if sp < sq {
			strict = true
		}
	}
	return strict
}

// DominatesRows implements Provider over flat strides.
func (f *Flex) DominatesRows(a point.Block, i int, b point.Block, j int) bool {
	dims := a.Dims
	if dims != b.Dims || dims != len(f.weights[0]) {
		return false
	}
	pa, pb := a.Data[i*dims:(i+1)*dims], b.Data[j*dims:(j+1)*dims]
	strict := false
	for _, w := range f.weights {
		sp, sq := 0.0, 0.0
		for k, wk := range w {
			sp += wk * pa[k]
			sq += wk * pb[k]
		}
		if sp > sq {
			return false
		}
		if sp < sq {
			strict = true
		}
	}
	return strict
}

// Caps implements Provider.
func (f *Flex) Caps() Caps { return f.caps }

// Descriptor implements Provider.
func (f *Flex) Descriptor() Descriptor {
	ws := make([][]float64, len(f.weights))
	for i, w := range f.weights {
		ws[i] = append([]float64(nil), w...)
	}
	return Descriptor{Kind: KindFlex, Weights: ws}
}

// KDom is k-dominance (Chan et al., SIGMOD 2006): p k-dominates q when
// p is no worse than q in at least K dimensions and strictly better in
// at least one of those K. Lowering K below the dimensionality shrinks
// the result set aggressively — the standard remedy for skyline
// explosion in high dimensions — at the price of transitivity.
type KDom struct {
	k int
}

// NewKDom validates k >= 1 and builds a KDom provider. The
// dimensionality bound (k <= d) is checked per comparison, since the
// provider is constructed before data is seen; k >= d degenerates to
// classic Pareto behavior on d-dimensional data.
func NewKDom(k int) (*KDom, error) {
	if err := (Descriptor{Kind: KindKDom, K: k}).validate(); err != nil {
		return nil, err
	}
	return &KDom{k: k}, nil
}

// K returns the parameter k.
func (kd *KDom) K() int { return kd.k }

// Name implements Provider.
func (kd *KDom) Name() string { return KindKDom }

// Dominates implements Provider.
func (kd *KDom) Dominates(p, q point.Point) bool {
	if len(p) != len(q) || kd.k > len(p) {
		return false
	}
	noWorse, better := 0, false
	for i := range p {
		if p[i] <= q[i] {
			noWorse++
			if p[i] < q[i] {
				better = true
			}
		}
	}
	return noWorse >= kd.k && better
}

// DominatesRows implements Provider over flat strides.
func (kd *KDom) DominatesRows(a point.Block, i int, b point.Block, j int) bool {
	dims := a.Dims
	if dims != b.Dims || kd.k > dims {
		return false
	}
	pa, pb := a.Data[i*dims:(i+1)*dims], b.Data[j*dims:(j+1)*dims]
	noWorse, better := 0, false
	for k := 0; k < dims; k++ {
		if pa[k] <= pb[k] {
			noWorse++
			if pa[k] < pb[k] {
				better = true
			}
		}
	}
	return noWorse >= kd.k && better
}

// Caps implements Provider. Pareto dominance (no worse everywhere,
// better somewhere) is a fortiori k-dominance for any k <= d, so
// positive cuts transfer; a k-dominator may be worse on d-k
// dimensions, so negative cuts do not; and k-dominance is famously not
// transitive (it admits cycles), so every pipeline result is a
// candidate set until verified.
func (kd *KDom) Caps() Caps {
	return Caps{ParetoImplies: true, ImpliesPareto: false, Transitive: false}
}

// Descriptor implements Provider.
func (kd *KDom) Descriptor() Descriptor { return Descriptor{Kind: KindKDom, K: kd.k} }

// Robust is margin dominance: p dominates q only when p[i] + Rho <
// q[i] in every dimension — p beats q by more than Rho everywhere.
// Points that are Pareto-dominated, but only within the margin,
// survive: the robust skyline is a superset of the Pareto skyline and
// is stable under coordinate perturbations smaller than Rho/2. Rho = 0
// degenerates to the strict product order (better everywhere).
type Robust struct {
	rho float64
}

// NewRobust validates rho >= 0 (finite) and builds a Robust provider.
func NewRobust(rho float64) (*Robust, error) {
	if err := (Descriptor{Kind: KindRobust, Rho: rho}).validate(); err != nil {
		return nil, err
	}
	return &Robust{rho: rho}, nil
}

// Rho returns the margin.
func (r *Robust) Rho() float64 { return r.rho }

// Name implements Provider.
func (r *Robust) Name() string { return KindRobust }

// Dominates implements Provider.
func (r *Robust) Dominates(p, q point.Point) bool {
	if len(p) != len(q) || len(p) == 0 {
		return false
	}
	for i := range p {
		if !(p[i]+r.rho < q[i]) {
			return false
		}
	}
	return true
}

// DominatesRows implements Provider over flat strides.
func (r *Robust) DominatesRows(a point.Block, i int, b point.Block, j int) bool {
	dims := a.Dims
	if dims != b.Dims || dims == 0 {
		return false
	}
	pa, pb := a.Data[i*dims:(i+1)*dims], b.Data[j*dims:(j+1)*dims]
	for k := 0; k < dims; k++ {
		if !(pa[k]+r.rho < pb[k]) {
			return false
		}
	}
	return true
}

// Caps implements Provider. Strictly-better-everywhere-by-Rho implies
// Pareto dominance (negative cuts and sum order stay sound) but is not
// implied by it (a Pareto dominator may win by less than the margin,
// so positive cuts must not fire). The relation is transitive for any
// Rho >= 0.
func (r *Robust) Caps() Caps {
	return Caps{ParetoImplies: false, ImpliesPareto: true, Transitive: true}
}

// Descriptor implements Provider.
func (r *Robust) Descriptor() Descriptor { return Descriptor{Kind: KindRobust, Rho: r.rho} }
