package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zskyline/internal/mapreduce"
	"zskyline/internal/metrics"
)

// Label is one Prometheus-style label pair.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative buckets, Prometheus
// style.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	counts  []int64   // len(bounds)+1; last is the +Inf bucket
	sum     float64
	observd int64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.observd++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.observd
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// DurationBuckets are the default latency histogram bounds in seconds.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// series is one (name, labels) instrument in a family.
type series struct {
	labels string // rendered `k="v",...`, sorted by key; "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
	l      *LatencyHistogram
}

// family groups all series of one metric name under one TYPE.
type family struct {
	name   string
	kind   string // "counter" | "gauge" | "histogram"
	order  []string
	series map[string]*series
}

// Registry holds named counters, gauges, and histograms and renders
// them as Prometheus text exposition. The zero value is not usable —
// call NewRegistry — but a nil *Registry is valid everywhere and
// records nothing, like a nil *Trace.
type Registry struct {
	mu  sync.Mutex
	fam map[string]*family
	ord []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fam: map[string]*family{}}
}

// renderLabels builds the canonical sorted label string.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: exactly
// backslash, double quote, and newline — nothing else. (Go's %q is not
// equivalent: it escapes tabs and non-printables into sequences the
// Prometheus parser rejects, and combined with a pre-pass it
// double-escaped newlines into a literal backslash-n.)
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// lookup finds or creates the series for (name, labels), checking the
// family kind.
func (r *Registry) lookup(name, kind string, labels []Label) *series {
	f := r.fam[name]
	if f == nil {
		f = &family{name: name, kind: kind, series: map[string]*series{}}
		r.fam[name] = f
		r.ord = append(r.ord, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	ls := renderLabels(labels)
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls}
		f.series[ls] = s
		f.order = append(f.order, ls)
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, "counter", labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for (name, labels), creating it on first
// use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, "gauge", labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket bounds on first use (nil selects DurationBuckets).
// A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DurationBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, "histogram", labels)
	if s.h == nil {
		s.h = &Histogram{bounds: buckets, counts: make([]int64, len(buckets)+1)}
	}
	return s.h
}

// Latency returns the log-scale latency histogram for (name, labels),
// creating it on first use. It renders as a Prometheus summary —
// quantile series (0.5, 0.9, 0.99) plus _sum and _count — and the
// trace report prints its p50/p90/p99/max snapshot. A nil registry
// returns a nil (no-op) histogram.
func (r *Registry) Latency(name string, labels ...Label) *LatencyHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, "summary", labels)
	if s.l == nil {
		s.l = NewLatencyHistogram()
	}
	return s.l
}

// AbsorbTally adds a metrics.Tally snapshot into the pipeline
// counters. Pass a per-run snapshot (or delta) exactly once; values
// accumulate.
func (r *Registry) AbsorbTally(s metrics.Snapshot) {
	if r == nil {
		return
	}
	r.Counter("zsky_dominance_tests_total").Add(s.DominanceTests)
	r.Counter("zsky_region_tests_total").Add(s.RegionTests)
	r.Counter("zsky_points_pruned_total").Add(s.PointsPruned)
	r.Counter("zsky_shuffle_bytes_total").Add(s.BytesShuffled)
	r.Counter("zsky_records_emitted_total").Add(s.RecordsEmitted)
}

// AbsorbJobStats adds one finished MapReduce job's statistics, labeled
// by job name.
func (r *Registry) AbsorbJobStats(js *mapreduce.JobStats) {
	if r == nil || js == nil {
		return
	}
	job := L("job", js.Name)
	r.Counter("zsky_mr_jobs_total", job).Add(1)
	r.Counter("zsky_mr_shuffle_bytes_total", job).Add(js.ShuffleBytes)
	r.Counter("zsky_mr_map_records_total", job).Add(js.MapOutRecords)
	var mapAtt, redAtt int64
	for _, st := range js.MapStats {
		mapAtt += int64(st.Attempts)
	}
	for _, st := range js.ReduceStats {
		redAtt += int64(st.Attempts)
	}
	r.Counter("zsky_mr_tasks_total", job, L("kind", "map")).Add(int64(len(js.MapStats)))
	r.Counter("zsky_mr_tasks_total", job, L("kind", "reduce")).Add(int64(len(js.ReduceStats)))
	r.Counter("zsky_mr_task_attempts_total", job, L("kind", "map")).Add(mapAtt)
	r.Counter("zsky_mr_task_attempts_total", job, L("kind", "reduce")).Add(redAtt)
}

// famView is a point-in-time copy of one family's structure, taken
// under the registry lock so exporters never touch the live maps and
// slices that Counter/Gauge/Histogram mutate. The series pointers are
// safe to read afterwards: counter and gauge values are atomics, and
// histograms carry their own mutex.
type famView struct {
	name   string
	kind   string
	series []*series
}

// snapshot copies every family's name, kind, and ordered series
// pointers while holding r.mu, families sorted by name.
func (r *Registry) snapshot() []famView {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.ord...)
	sort.Strings(names)
	out := make([]famView, len(names))
	for i, n := range names {
		f := r.fam[n]
		ss := make([]*series, len(f.order))
		for j, ls := range f.order {
			ss[j] = f.series[ls]
		}
		out[i] = famView{name: f.name, kind: f.kind, series: ss}
	}
	return out
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format, families sorted by name, series in
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.snapshot() {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f famView, s *series) error {
	suffix := func(extra string) string {
		if s.labels == "" && extra == "" {
			return ""
		}
		l := s.labels
		if extra != "" {
			if l != "" {
				l += ","
			}
			l += extra
		}
		return "{" + l + "}"
	}
	switch f.kind {
	case "counter":
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, suffix(""), s.c.Value())
		return err
	case "gauge":
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, suffix(""), formatFloat(s.g.Value()))
		return err
	case "histogram":
		h := s.h
		h.mu.Lock()
		bounds := h.bounds
		counts := append([]int64(nil), h.counts...)
		sum, n := h.sum, h.observd
		h.mu.Unlock()
		var cum int64
		for i, b := range bounds {
			cum += counts[i]
			le := fmt.Sprintf("le=%q", formatFloat(b))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, suffix(le), cum); err != nil {
				return err
			}
		}
		cum += counts[len(bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, suffix(`le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, suffix(""), formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, suffix(""), n)
		return err
	case "summary":
		snap := s.l.Snapshot()
		for _, q := range [...]struct {
			q string
			v time.Duration
		}{{"0.5", snap.P50}, {"0.9", snap.P90}, {"0.99", snap.P99}} {
			qs := fmt.Sprintf("quantile=%q", q.q)
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, suffix(qs), formatFloat(q.v.Seconds())); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, suffix(""), formatFloat(s.l.sumSeconds())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, suffix(""), snap.Count)
		return err
	}
	return nil
}
