package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"zskyline/internal/mapreduce"
	"zskyline/internal/metrics"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits", L("route", "/q"))
	c.Add(2)
	r.Counter("hits", L("route", "/q")).Add(3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("hits", L("route", "/other")).Value() != 0 {
		t.Fatal("label sets must be distinct series")
	}
	g := r.Gauge("temp")
	g.Set(1.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	if h.Count() != 3 || h.Sum() != 55.5 {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c").Add(1)
				r.Histogram("h", nil).Observe(0.01)
				// Fresh label sets force lazy series creation while the
				// exporters below iterate — the scrape-time race.
				r.Counter("lazy", L("w", strconv.Itoa(i)), L("j", strconv.Itoa(j))).Add(1)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
				}
				Report(nil, r)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 3200 {
		t.Fatalf("counter = %d, want 3200", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 3200 {
		t.Fatalf("histogram count = %d, want 3200", got)
	}
}

func TestAbsorbTallyAndJobStats(t *testing.T) {
	r := NewRegistry()
	r.AbsorbTally(metrics.Snapshot{DominanceTests: 10, BytesShuffled: 99})
	r.AbsorbTally(metrics.Snapshot{DominanceTests: 5})
	if got := r.Counter("zsky_dominance_tests_total").Value(); got != 15 {
		t.Fatalf("dominance counter = %d, want 15", got)
	}
	js := &mapreduce.JobStats{
		Name:         "skyline-candidates",
		ShuffleBytes: 1024,
		MapStats: []mapreduce.TaskStat{
			{Attempts: 1}, {Attempts: 2},
		},
		ReduceStats: []mapreduce.TaskStat{{Attempts: 1}},
	}
	r.AbsorbJobStats(js)
	job := L("job", "skyline-candidates")
	if got := r.Counter("zsky_mr_shuffle_bytes_total", job).Value(); got != 1024 {
		t.Fatalf("shuffle bytes = %d", got)
	}
	if got := r.Counter("zsky_mr_task_attempts_total", job, L("kind", "map")).Value(); got != 3 {
		t.Fatalf("map attempts = %d", got)
	}
}

// TestPrometheusGolden pins the full exposition output for a small
// registry: family TYPE lines, label rendering (including a value
// needing every escape the format defines — backslash, quote, and
// newline), and histogram bucket/sum/count series.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zsky_http_requests_total", L("route", "/query"), L("code", "200")).Add(3)
	r.Counter("zsky_http_requests_total", L("route", "/query"), L("code", "400")).Add(1)
	r.Gauge("zsky_skyline_size").Set(42)
	h := r.Histogram("zsky_http_request_seconds", []float64{0.01, 0.1}, L("route", "/query"))
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	// One label value exercising all three escapes at once: a
	// backslash, a double quote, and a real newline.
	r.Counter("zsky_errors_total", L("msg", "path\\to \"file\"\nline2")).Add(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE zsky_errors_total counter
zsky_errors_total{msg="path\\to \"file\"\nline2"} 1
# TYPE zsky_http_request_seconds histogram
zsky_http_request_seconds_bucket{route="/query",le="0.01"} 1
zsky_http_request_seconds_bucket{route="/query",le="0.1"} 2
zsky_http_request_seconds_bucket{route="/query",le="+Inf"} 3
zsky_http_request_seconds_sum{route="/query"} 0.555
zsky_http_request_seconds_count{route="/query"} 3
# TYPE zsky_http_requests_total counter
zsky_http_requests_total{code="200",route="/query"} 3
zsky_http_requests_total{code="400",route="/query"} 1
# TYPE zsky_skyline_size gauge
zsky_skyline_size 42
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEscapeLabel pins the three exposition escapes and that nothing
// else is touched (tabs and unicode pass through raw — Go-style %q
// escaping of them is a Prometheus parse error).
func TestEscapeLabel(t *testing.T) {
	for in, want := range map[string]string{
		`plain`:    `plain`,
		`a\b`:      `a\\b`,
		`a"b`:      `a\"b`,
		"a\nb":     `a\nb`,
		"\\\"\n":   `\\\"\n`,
		"tab\tüñî": "tab\tüñî",
	} {
		if got := escapeLabel(in); got != want {
			t.Errorf("escapeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestInstrumentHandlerAndMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	h := r.InstrumentHandler("/hello", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/hello", nil))
		if rec.Code != http.StatusTeapot {
			t.Fatalf("status = %d", rec.Code)
		}
	}
	if got := r.Counter("zsky_http_requests_total", L("route", "/hello"), L("code", "418")).Value(); got != 2 {
		t.Fatalf("request counter = %d, want 2", got)
	}
	if got := r.Histogram("zsky_http_request_seconds", nil, L("route", "/hello")).Count(); got != 2 {
		t.Fatalf("latency observations = %d, want 2", got)
	}

	rec := httptest.NewRecorder()
	r.PrometheusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, `zsky_http_requests_total{code="418",route="/hello"} 2`) {
		t.Fatalf("metrics body missing request counter:\n%s", body)
	}
	if !strings.Contains(rec.Header().Get("Content-Type"), "text/plain") {
		t.Fatalf("content type = %q", rec.Header().Get("Content-Type"))
	}
}

func TestServeMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("zsky_test_total").Add(1)
	addr, stop, err := ServeMetrics("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "zsky_test_total 1") {
		t.Fatalf("metrics body = %q", string(buf[:n]))
	}
}
