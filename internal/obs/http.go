package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// statusRecorder captures the response status for request counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so instrumented handlers can
// still stream responses.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// capabilities we don't wrap (hijacking, deadlines) keep working.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// InstrumentHandler wraps next with per-endpoint observability: a
// request counter labeled by route and status code, and a latency
// histogram labeled by route. A nil registry returns next unchanged.
func (r *Registry) InstrumentHandler(route string, next http.Handler) http.Handler {
	if r == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, req)
		r.Counter("zsky_http_requests_total",
			L("route", route), L("code", fmt.Sprintf("%d", rec.status))).Add(1)
		r.Histogram("zsky_http_request_seconds", nil, L("route", route)).
			Observe(time.Since(start).Seconds())
	})
}

// PrometheusHandler serves the registry in text exposition format —
// mount it at GET /metrics.
func (r *Registry) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// RegisterPprof mounts the runtime profiling endpoints under
// /debug/pprof/ without touching http.DefaultServeMux.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeMetrics starts a sidecar HTTP listener exposing GET /metrics
// for the registry plus the pprof endpoints — the CLIs' --metrics-addr
// backend. It returns the bound address and a closer.
func ServeMetrics(addr string, r *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", r.PrometheusHandler())
	RegisterPprof(mux)
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
