package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// maxReportChildren caps how many children of one span a report prints
// before eliding the rest, keeping reports readable for runs with
// hundreds of per-task spans.
const maxReportChildren = 64

// WriteReport renders a per-run trace report: the span tree with
// durations and attributes, followed by the registry's counters and
// gauges. Either argument may be nil; a nil trace prints counters
// only, a nil registry prints the tree only.
func WriteReport(w io.Writer, t *Trace, r *Registry) error {
	if root := t.Root(); root != nil {
		if _, err := fmt.Fprintf(w, "TRACE %s  total=%v\n", root.Name(), round(root.Duration())); err != nil {
			return err
		}
		if err := writeAttrs(w, "  ", root); err != nil {
			return err
		}
		if err := writeChildren(w, "", root); err != nil {
			return err
		}
	}
	if r != nil {
		if err := writeRegistry(w, r); err != nil {
			return err
		}
	}
	return nil
}

// Report renders WriteReport to a string.
func Report(t *Trace, r *Registry) string {
	var b strings.Builder
	WriteReport(&b, t, r)
	return b.String()
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(time.Microsecond)
	}
}

func writeAttrs(w io.Writer, indent string, s *Span) error {
	attrs := s.Attrs()
	if len(attrs) == 0 {
		return nil
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a.Key + "=" + a.Value
	}
	_, err := fmt.Fprintf(w, "%s· %s\n", indent, strings.Join(parts, " "))
	return err
}

func writeChildren(w io.Writer, prefix string, s *Span) error {
	children := s.Children()
	elided := 0
	if len(children) > maxReportChildren {
		elided = len(children) - maxReportChildren
		children = children[:maxReportChildren]
	}
	for i, c := range children {
		last := i == len(children)-1 && elided == 0
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		if _, err := fmt.Fprintf(w, "%s%s%-18s %8v\n", prefix, branch, c.Name(), round(c.Duration())); err != nil {
			return err
		}
		if err := writeAttrs(w, prefix+cont+"  ", c); err != nil {
			return err
		}
		if err := writeChildren(w, prefix+cont, c); err != nil {
			return err
		}
	}
	if elided > 0 {
		if _, err := fmt.Fprintf(w, "%s└─ … (+%d more spans)\n", prefix, elided); err != nil {
			return err
		}
	}
	return nil
}

func writeRegistry(w io.Writer, r *Registry) error {
	wrote := false
	for _, f := range r.snapshot() {
		for _, s := range f.series {
			if !wrote {
				if _, err := fmt.Fprintln(w, "COUNTERS"); err != nil {
					return err
				}
				wrote = true
			}
			name := f.name
			if s.labels != "" {
				name += "{" + s.labels + "}"
			}
			var val string
			switch f.kind {
			case "counter":
				val = fmt.Sprintf("%d", s.c.Value())
			case "gauge":
				val = formatFloat(s.g.Value())
			case "histogram":
				n := s.h.Count()
				mean := 0.0
				if n > 0 {
					mean = s.h.Sum() / float64(n)
				}
				val = fmt.Sprintf("count=%d mean=%s", n, formatFloat(mean))
			case "summary":
				snap := s.l.Snapshot()
				val = fmt.Sprintf("count=%d p50=%v p90=%v p99=%v max=%v",
					snap.Count, round(snap.P50), round(snap.P90), round(snap.P99), round(snap.Max))
			}
			if _, err := fmt.Fprintf(w, "  %-48s %s\n", name, val); err != nil {
				return err
			}
		}
	}
	return nil
}
