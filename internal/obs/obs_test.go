package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"zskyline/internal/metrics"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTrace("run")
	learn := tr.Root().Child("learn")
	learn.SetAttr("sample", 100)
	learn.End()
	m := tr.Root().Child("map")
	m.Child("rpc").End()
	m.End()
	tr.Finish()

	kids := tr.Root().Children()
	if len(kids) != 2 {
		t.Fatalf("root children = %d, want 2", len(kids))
	}
	if kids[0].Name() != "learn" || kids[1].Name() != "map" {
		t.Fatalf("children = %q, %q", kids[0].Name(), kids[1].Name())
	}
	if got := kids[0].Attrs(); len(got) != 1 || got[0].Key != "sample" || got[0].Value != "100" {
		t.Fatalf("learn attrs = %v", got)
	}
	if sub := kids[1].Children(); len(sub) != 1 || sub[0].Name() != "rpc" {
		t.Fatalf("map children = %v", sub)
	}
}

func TestSpanSetAttrOverwrites(t *testing.T) {
	sp := NewTrace("t").Root()
	sp.SetAttr("k", 1)
	sp.SetAttr("k", 2)
	if attrs := sp.Attrs(); len(attrs) != 1 || attrs[0].Value != "2" {
		t.Fatalf("attrs = %v, want single k=2", attrs)
	}
}

func TestSpanChildAt(t *testing.T) {
	tr := NewTrace("run")
	start := time.Now().Add(-time.Second)
	c := tr.Root().ChildAt("map", start, 250*time.Millisecond)
	if c.Duration() != 250*time.Millisecond {
		t.Fatalf("duration = %v", c.Duration())
	}
	if !c.Start().Equal(start) {
		t.Fatalf("start = %v, want %v", c.Start(), start)
	}
}

// TestSpanConcurrency hammers one parent from many goroutines; run
// with -race to check the locking.
func TestSpanConcurrency(t *testing.T) {
	tr := NewTrace("run")
	parent := tr.Root().Child("map")
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := parent.Child("task")
			c.SetAttr("i", i)
			c.End()
			parent.SetAttr("last", i)
			_ = parent.Children()
			_ = c.Duration()
		}(i)
	}
	wg.Wait()
	parent.End()
	if got := len(parent.Children()); got != 64 {
		t.Fatalf("children = %d, want 64", got)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	var sp *Span
	var reg *Registry
	// None of these may panic.
	tr.Finish()
	sp = tr.Root().Child("x")
	sp.SetAttr("k", "v")
	sp.ChildAt("y", time.Now(), 0).End()
	sp.End()
	_ = sp.Children()
	_ = sp.Attrs()
	_ = sp.Name()
	_ = sp.Duration()
	reg.Counter("c").Add(1)
	reg.Gauge("g").Set(1)
	reg.Histogram("h", nil).Observe(1)
	reg.AbsorbTally(metrics.Snapshot{})
	reg.AbsorbJobStats(nil)
}

func TestContextHelpers(t *testing.T) {
	ctx := context.Background()
	if sp, _ := StartSpan(ctx, "x"); sp != nil {
		t.Fatal("StartSpan without a trace must return nil")
	}
	tr := NewTrace("run")
	ctx = ContextWithTrace(ctx, tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}
	sp, ctx2 := StartSpan(ctx, "learn")
	if sp == nil || SpanFrom(ctx2) != sp {
		t.Fatal("StartSpan did not set the current span")
	}
	sp.End()
	if kids := tr.Root().Children(); len(kids) != 1 || kids[0] != sp {
		t.Fatalf("root children = %v", kids)
	}
}

func TestReportRendersTreeAndCounters(t *testing.T) {
	tr := NewTrace("pipeline")
	l := tr.Root().Child("learn")
	l.SetAttr("sample", 20)
	l.End()
	tr.Root().Child("map").End()
	tr.Finish()
	reg := NewRegistry()
	reg.Counter("zsky_dominance_tests_total").Add(7)

	out := Report(tr, reg)
	for _, want := range []string{"TRACE pipeline", "learn", "map", "sample=20",
		"COUNTERS", "zsky_dominance_tests_total", "7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportElidesLongChildLists(t *testing.T) {
	tr := NewTrace("run")
	for i := 0; i < maxReportChildren+10; i++ {
		tr.Root().Child("task").End()
	}
	tr.Finish()
	out := Report(tr, nil)
	if !strings.Contains(out, "+10 more spans") {
		t.Fatalf("report did not elide:\n%s", out)
	}
}
